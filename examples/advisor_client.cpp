// Client of the capacity-advisor service: sends one or more pipelined
// queries over framed TCP and prints each typed outcome — ok (with the
// advice summary), shed (with the reason), or error. Exercises every
// rung of the server's overload ladder from the command line:
//
//   advisor_client --port=7077 --workload=EP.S --machine=test-numa4
//   advisor_client --port=7077 --count=32 --deadline-ms=50   # force sheds

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "common/backoff.hpp"
#include "exec/chaos/chaos_transport.hpp"
#include "exec/frame_transport.hpp"
#include "serve/protocol.hpp"

namespace {

struct Args {
  std::string host = "127.0.0.1";
  int port = 7077;
  std::string workload = "EP.S";
  std::string machine = "test-numa4";
  int coreMin = 0;
  int coreMax = 0;
  std::uint32_t deadlineMs = 0;
  occm::serve::TierPreference tier = occm::serve::TierPreference::kAuto;
  double efficiency = 0.5;
  int count = 1;
  int connectRetries = 0;
  std::uint32_t recvTimeoutMs = 60'000;
  occm::exec::chaos::ChaosConfig chaos;
};

void usage(std::FILE* to, const char* argv0) {
  std::fprintf(
      to,
      "usage: %s [--host=ADDR] [--port=N] [--workload=PROG.CLASS]\n"
      "          [--machine=PRESET] [--cores=A-B] [--deadline-ms=N]\n"
      "          [--tier=auto|0|1] [--efficiency=F] [--count=N]\n"
      "          [--connect-retries=N] [--chaos-seed=N] [--chaos-plan=SPEC]\n"
      "  --cores=A-B      advise over core counts A..B (default: whole "
      "machine)\n"
      "  --deadline-ms=N  per-request deadline (0 = none)\n"
      "  --tier=auto|0|1  tier preference (0 analytic, 1 refined)\n"
      "  --count=N        pipelined copies of the request\n"
      "  --connect-retries=N  transient-connect retries with backoff "
      "(default 0)\n"
      "  --recv-timeout-ms=N  per-response read deadline "
      "(default 60000)\n"
      "  --chaos-seed=N   seeded network-fault schedule on this client's "
      "transport\n"
      "  --chaos-plan=SPEC  explicit chaos plan (see exec/chaos)\n",
      argv0);
}

Args parseArgs(int argc, char** argv) {
  const auto die = [&](const std::string& why) {
    std::fprintf(stderr, "error: %s\n", why.c_str());
    usage(stderr, argv[0]);
    std::exit(2);
  };
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    const std::string flag = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    const auto intValue = [&](long lo, long hi) {
      char* end = nullptr;
      const long v = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0' || v < lo || v > hi) {
        die("bad value in \"" + arg + "\"");
      }
      return v;
    };
    if (flag == "--help" || flag == "-h") {
      usage(stdout, argv[0]);
      std::exit(0);
    } else if (flag == "--host") {
      args.host = value;
    } else if (flag == "--port") {
      args.port = static_cast<int>(intValue(1, 65535));
    } else if (flag == "--workload") {
      args.workload = value;
    } else if (flag == "--machine") {
      args.machine = value;
    } else if (flag == "--cores") {
      const std::size_t dash = value.find('-');
      if (dash == std::string::npos) {
        die("--cores wants A-B, got \"" + arg + "\"");
      }
      args.coreMin = std::atoi(value.substr(0, dash).c_str());
      args.coreMax = std::atoi(value.substr(dash + 1).c_str());
      if (args.coreMin < 1 || args.coreMax < args.coreMin) {
        die("bad core range in \"" + arg + "\"");
      }
    } else if (flag == "--deadline-ms") {
      args.deadlineMs = static_cast<std::uint32_t>(intValue(0, 1 << 30));
    } else if (flag == "--tier") {
      if (value == "auto") {
        args.tier = occm::serve::TierPreference::kAuto;
      } else if (value == "0") {
        args.tier = occm::serve::TierPreference::kTier0;
      } else if (value == "1") {
        args.tier = occm::serve::TierPreference::kTier1;
      } else {
        die("--tier wants auto|0|1, got \"" + arg + "\"");
      }
    } else if (flag == "--efficiency") {
      char* end = nullptr;
      args.efficiency = std::strtod(value.c_str(), &end);
      if (value.empty() || *end != '\0' || args.efficiency <= 0.0 ||
          args.efficiency > 1.0) {
        die("bad value in \"" + arg + "\" (want a number in (0, 1])");
      }
    } else if (flag == "--count") {
      args.count = static_cast<int>(intValue(1, 1 << 16));
    } else if (flag == "--connect-retries") {
      args.connectRetries = static_cast<int>(intValue(0, 1 << 10));
    } else if (flag == "--recv-timeout-ms") {
      args.recvTimeoutMs = static_cast<std::uint32_t>(intValue(1, 1 << 30));
    } else if (flag == "--chaos-seed") {
      args.chaos.seed = static_cast<std::uint64_t>(intValue(0, 1L << 62));
      args.chaos.plan = occm::exec::chaos::planFromSeed(args.chaos.seed);
    } else if (flag == "--chaos-plan") {
      auto plan = occm::exec::chaos::parseNetFaultPlan(value);
      if (!plan) {
        die(plan.error());
      }
      args.chaos.plan = std::move(*plan);
    } else {
      die("unrecognized argument \"" + arg + "\"");
    }
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace occm;
  // Half-closed peers must surface as typed send failures, not SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
  const Args args = parseArgs(argc, argv);

  // Transient-connect retry on the shared backoff policy: bounded
  // attempts, capped exponential delays with seeded jitter, and a typed
  // give-up naming the last error — the worker reconnect loop's shape,
  // applied to the client's first dial.
  const BackoffPolicy retryBackoff{.base = 100, .cap = 2'000,
                                   .jitterPct256 = 64, .seed = args.chaos.seed};
  int attempt = 0;
  Expected<int, std::string> connected = makeUnexpected(std::string());
  for (;;) {
    connected = exec::connectTcp(args.host, args.port, /*timeoutMs=*/5000);
    if (connected) {
      break;
    }
    if (attempt >= args.connectRetries) {
      std::fprintf(stderr, "error: connect gave up after %d attempt%s: %s\n",
                   attempt + 1, attempt == 0 ? "" : "s",
                   connected.error().c_str());
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(
        retryBackoff.delay(static_cast<std::uint32_t>(attempt))));
    ++attempt;
  }
  auto transport =
      args.chaos.enabled()
          ? exec::chaos::makeChaosSocketTransport(*connected, args.chaos,
                                                  /*connectionId=*/0)
          : exec::makeSocketTransport(*connected);

  serve::ServeMessage message;
  message.kind = serve::ServeMessage::Kind::kRequest;
  const std::size_t dot = args.workload.find('.');
  message.request.program =
      dot == std::string::npos ? args.workload : args.workload.substr(0, dot);
  message.request.problemClass =
      dot == std::string::npos ? "" : args.workload.substr(dot + 1);
  message.request.machine = args.machine;
  message.request.coreMin = args.coreMin;
  message.request.coreMax = args.coreMax;
  message.request.deadlineMs = args.deadlineMs;
  message.request.tier = args.tier;
  message.request.efficiencyThreshold = args.efficiency;

  // Pipelined: all requests go out before the first response is read —
  // exactly the burst shape that exercises the server's admission queue.
  for (int i = 0; i < args.count; ++i) {
    message.request.requestId = static_cast<std::uint64_t>(i) + 1;
    if (!transport->sendFrame(serve::encodeServeMessage(message))) {
      std::fprintf(stderr, "error: send: %s\n",
                   transport->lastError().c_str());
      return 1;
    }
  }

  int failures = 0;
  for (int i = 0; i < args.count; ++i) {
    std::string payload;
    const auto status =
        transport->recvFrame(payload, static_cast<int>(args.recvTimeoutMs));
    if (status != exec::FrameTransport::RecvStatus::kFrame) {
      std::fprintf(stderr, "error: recv failed (%s)\n",
                   transport->lastError().c_str());
      return 1;
    }
    const auto decoded = serve::decodeServeMessage(payload);
    if (!decoded ||
        decoded->kind != serve::ServeMessage::Kind::kResponse) {
      std::fprintf(stderr, "error: bad response frame\n");
      return 1;
    }
    const serve::AdvisorResponse& r = decoded->response;
    switch (r.status) {
      case serve::ResponseStatus::kOk:
        std::printf(
            "request %llu: ok tier=%u%s%s cache=%s rows=%zu "
            "best=%dx%.2f efficient<=%d\n",
            static_cast<unsigned long long>(r.requestId), r.tier,
            r.degraded ? " degraded=" : "",
            r.degraded ? toString(r.degradeReason) : "",
            r.cacheHit ? "hit" : "miss", r.rows.size(), r.bestCores,
            r.bestSpeedup, r.efficientCores);
        break;
      case serve::ResponseStatus::kShed:
        std::printf("request %llu: shed %s (queue depth %u)\n",
                    static_cast<unsigned long long>(r.requestId),
                    toString(r.shedReason), r.queueDepth);
        ++failures;
        break;
      case serve::ResponseStatus::kError:
        std::printf("request %llu: error %s\n",
                    static_cast<unsigned long long>(r.requestId),
                    r.error.c_str());
        ++failures;
        break;
    }
  }
  return failures == args.count && args.count > 0 ? 1 : 0;
}
