// papiex_sim: run any (program.class, machine, cores) configuration on the
// simulator and print a papiex-style hardware-counter report plus optional
// CSV export — the workflow the paper's measurement methodology used, as a
// single command.
//
// Usage: papiex_sim [program.class] [machine] [cores] [--csv file.csv]
//   machine: uma8 | numa24 | amd48   (default numa24)
//   cores:   active cores            (default all)
// Examples:
//   papiex_sim SP.C numa24 12
//   papiex_sim x264.native amd48 48 --csv x264.csv

#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/csv.hpp"
#include "analysis/experiment.hpp"
#include "core/occm.hpp"

namespace {

using namespace occm;

workloads::WorkloadSpec parseWorkload(const std::string& arg) {
  workloads::WorkloadSpec spec;
  const auto dot = arg.find('.');
  if (dot == std::string::npos) {
    std::fprintf(stderr, "expected program.class, got '%s'\n", arg.c_str());
    std::exit(1);
  }
  const std::string program = arg.substr(0, dot);
  const std::string cls = arg.substr(dot + 1);
  using workloads::ProblemClass;
  using workloads::Program;
  if (program == "EP") spec.program = Program::kEP;
  else if (program == "IS") spec.program = Program::kIS;
  else if (program == "FT") spec.program = Program::kFT;
  else if (program == "CG") spec.program = Program::kCG;
  else if (program == "SP") spec.program = Program::kSP;
  else if (program == "x264") spec.program = Program::kX264;
  else {
    std::fprintf(stderr, "unknown program '%s'\n", program.c_str());
    std::exit(1);
  }
  if (cls == "S") spec.problemClass = ProblemClass::kS;
  else if (cls == "W") spec.problemClass = ProblemClass::kW;
  else if (cls == "A") spec.problemClass = ProblemClass::kA;
  else if (cls == "B") spec.problemClass = ProblemClass::kB;
  else if (cls == "C") spec.problemClass = ProblemClass::kC;
  else if (cls == "simsmall") spec.problemClass = ProblemClass::kSimSmall;
  else if (cls == "simmedium") spec.problemClass = ProblemClass::kSimMedium;
  else if (cls == "simlarge") spec.problemClass = ProblemClass::kSimLarge;
  else if (cls == "native") spec.problemClass = ProblemClass::kNative;
  else {
    std::fprintf(stderr, "unknown class '%s'\n", cls.c_str());
    std::exit(1);
  }
  return spec;
}

topology::MachineSpec parseMachine(const std::string& name) {
  if (name == "uma8") return topology::intelUma8();
  if (name == "numa24") return topology::intelNuma24();
  if (name == "amd48") return topology::amdNuma48();
  std::fprintf(stderr, "unknown machine '%s' (uma8|numa24|amd48)\n",
               name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  workloads::WorkloadSpec workload;  // CG.C default
  topology::MachineSpec machine = topology::intelNuma24();
  int cores = 0;
  std::string csvPath;

  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csvPath = argv[++i];
      continue;
    }
    switch (positional++) {
      case 0:
        workload = parseWorkload(argv[i]);
        break;
      case 1:
        machine = parseMachine(argv[i]);
        break;
      case 2:
        cores = std::atoi(argv[i]);
        break;
      default:
        std::fprintf(stderr, "too many arguments\n");
        return 1;
    }
  }
  if (cores <= 0) {
    cores = machine.logicalCores();
  }

  const perf::RunProfile profile =
      analysis::runOnce(machine, workload, cores);
  std::printf("%s", perf::formatReport(profile).c_str());

  if (!csvPath.empty()) {
    analysis::SweepResult single;
    single.profiles.push_back(profile);
    analysis::writeFile(csvPath, analysis::sweepToCsv(single));
    std::printf("  CSV written : %s\n", csvPath.c_str());
  }
  return 0;
}
