// Burstiness profile: sample a workload's off-chip traffic with the 5 us
// miss sampler and classify it (the paper's section III-B.2 methodology).
//
// Usage: burstiness_profile [program] [class...]
//   e.g. burstiness_profile CG S C
//        burstiness_profile x264 simsmall native
// Defaults to CG with all five NPB classes.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "core/occm.hpp"

namespace {

using namespace occm;

workloads::Program parseProgram(const std::string& name) {
  using workloads::Program;
  if (name == "EP") return Program::kEP;
  if (name == "IS") return Program::kIS;
  if (name == "FT") return Program::kFT;
  if (name == "CG") return Program::kCG;
  if (name == "SP") return Program::kSP;
  if (name == "x264") return Program::kX264;
  std::fprintf(stderr, "unknown program '%s'\n", name.c_str());
  std::exit(1);
}

workloads::ProblemClass parseClass(const std::string& name) {
  using workloads::ProblemClass;
  if (name == "S") return ProblemClass::kS;
  if (name == "W") return ProblemClass::kW;
  if (name == "A") return ProblemClass::kA;
  if (name == "B") return ProblemClass::kB;
  if (name == "C") return ProblemClass::kC;
  if (name == "simsmall") return ProblemClass::kSimSmall;
  if (name == "simmedium") return ProblemClass::kSimMedium;
  if (name == "simlarge") return ProblemClass::kSimLarge;
  if (name == "native") return ProblemClass::kNative;
  std::fprintf(stderr, "unknown class '%s'\n", name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  workloads::Program program = workloads::Program::kCG;
  std::vector<workloads::ProblemClass> classes = {
      workloads::ProblemClass::kS, workloads::ProblemClass::kW,
      workloads::ProblemClass::kA, workloads::ProblemClass::kB,
      workloads::ProblemClass::kC};
  if (argc > 1) {
    program = parseProgram(argv[1]);
    if (argc > 2) {
      classes.clear();
      for (int i = 2; i < argc; ++i) {
        classes.push_back(parseClass(argv[i]));
      }
    } else if (program == workloads::Program::kX264) {
      classes = {workloads::ProblemClass::kSimSmall,
                 workloads::ProblemClass::kSimMedium,
                 workloads::ProblemClass::kSimLarge,
                 workloads::ProblemClass::kNative};
    }
  }

  const auto machine = topology::intelNuma24();
  std::printf("Sampling LLC misses every 5 us on %s (%d threads, %d cores)\n",
              machine.name.c_str(), machine.logicalCores(),
              machine.logicalCores());

  for (workloads::ProblemClass cls : classes) {
    analysis::SweepConfig config;
    config.machine = machine;
    config.workload.program = program;
    config.workload.problemClass = cls;
    config.sim.enableSampler = true;
    config.coreCounts = {machine.logicalCores()};
    const auto sweep = analysis::runSweep(config);
    const auto& profile = sweep.profiles.front();
    const model::BurstinessReport report =
        model::analyzeBurstiness(profile.missWindows);
    std::printf("\n%s:\n", profile.program.c_str());
    std::printf("  %llu misses over %llu windows; idle fraction %.3f\n",
                static_cast<unsigned long long>(profile.counters.llcMisses),
                static_cast<unsigned long long>(report.totalWindows),
                report.idleFraction);
    std::printf("  burst sizes: mean %.1f, max %.0f, cv %.2f -> %s\n",
                report.meanBurst, report.maxBurst, report.cv,
                report.bursty ? "BURSTY" : "NON-BURSTY");
  }
  return 0;
}
