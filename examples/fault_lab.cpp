// Fault lab: what memory contention looks like when the machine is not
// healthy. Runs CG on the simulated Intel NUMA machine across a set of
// scripted degraded-mode scenarios and compares, per scenario:
//
//   - omega(n) at the paper's regression core counts,
//   - the fitted model parameters mu/r and L/r (service rate and demand
//     per core), showing how each fault class shifts them,
//   - the degraded-mode counters (rerouted/retried/background transfers,
//     throttled cycles).
//
// Every scenario is deterministic: identical FaultPlan + seed reproduce
// bit-identical counters. Scenarios that leave the model unfittable
// (e.g. a saturated regime) print the typed FitError diagnosis instead
// of crashing — the same Expected<.., FitError> channel the sweep
// harness relies on.
//
// Usage: fault_lab [program.class] [--workers=N] [--deadline=SECONDS]
//        [--isolate] [--mem-limit=MB]
// (default CG.S)
//
// --deadline caps each run's wall time: an overrunning scenario is
// reported as a timeout while the remaining scenarios still execute.
// Ctrl-C stops gracefully between cancellation points instead of killing
// the process mid-scenario. --isolate forks each attempt so a crashing
// scenario is contained as RunFailure{crash} (required for any plan with
// crash-injection events) and appends a deterministic crash-injection
// scenario to the lab; --mem-limit=MB adds a per-attempt RLIMIT_AS
// budget and implies --isolate.

#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "core/occm.hpp"
#include "fault/fault_plan.hpp"

namespace {

// requestStop() is a lock-free atomic store — safe from a signal handler.
occm::CancellationSource gStop;

extern "C" void onSigint(int /*signum*/) { gStop.requestStop(); }

struct Scenario {
  std::string name;
  occm::fault::FaultPlan plan;
};

/// Builds the scenario list with windows positioned relative to the
/// baseline max-core makespan, so every fault actually overlaps the run.
/// `withCrash` appends a crash-injection scenario — only offered under
/// --isolate, because runSweep refuses crash plans in-process.
std::vector<Scenario> makeScenarios(occm::Cycles makespan, bool withCrash) {
  using occm::Cycles;
  const Cycles q1 = makespan / 4;
  const Cycles q3 = 3 * (makespan / 4);
  std::vector<Scenario> scenarios;
  scenarios.push_back({"baseline", {}});
  {
    occm::fault::FaultPlan plan;
    plan.controllerOutage(1, q1, q3);
    scenarios.push_back({"outage(node1)", plan});
  }
  {
    occm::fault::FaultPlan plan;
    plan.controllerDegrade(1, q1, q3, 2.0);
    scenarios.push_back({"degrade(node1,2x)", plan});
  }
  {
    occm::fault::FaultPlan plan;
    plan.eccSpike(1, q1, q3, 0.05, 500);
    scenarios.push_back({"ecc(node1,p=.05)", plan});
  }
  {
    occm::fault::FaultPlan plan;
    for (occm::CoreId core = 0; core < 6; ++core) {
      plan.coreThrottle(core, q1, q3, 2.0);
    }
    scenarios.push_back({"throttle(6 cores,2x)", plan});
  }
  {
    occm::fault::FaultPlan plan;
    plan.backgroundTraffic(0, q1, q3, 400);
    scenarios.push_back({"background(node0)", plan});
  }
  if (withCrash) {
    // Every run of this scenario segfaults mid-simulation; isolation
    // contains each death as RunFailure{crash} and the lab moves on.
    occm::fault::FaultPlan plan;
    plan.crashSegv(q1);
    scenarios.push_back({"crash(segv,all runs)", plan});
  }
  return scenarios;
}

occm::workloads::Program parseProgram(const std::string& name) {
  using occm::workloads::Program;
  if (name == "EP") return Program::kEP;
  if (name == "IS") return Program::kIS;
  if (name == "FT") return Program::kFT;
  if (name == "CG") return Program::kCG;
  if (name == "SP") return Program::kSP;
  if (name == "x264") return Program::kX264;
  std::fprintf(stderr, "unknown program '%s'\n", name.c_str());
  std::exit(1);
}

occm::workloads::ProblemClass parseClass(const std::string& name) {
  using occm::workloads::ProblemClass;
  if (name == "S") return ProblemClass::kS;
  if (name == "W") return ProblemClass::kW;
  if (name == "A") return ProblemClass::kA;
  if (name == "B") return ProblemClass::kB;
  if (name == "C") return ProblemClass::kC;
  std::fprintf(stderr, "unknown problem class '%s'\n", name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace occm;

  workloads::WorkloadSpec workload;
  workload.problemClass = workloads::ProblemClass::kS;
  int workers = 0;  // 0 = OCCM_SWEEP_WORKERS or hardware concurrency
  double deadline = 0.0;
  bool isolate = false;
  std::uint64_t memLimitMb = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--workers=", 0) == 0) {
      workers = std::max(1, std::atoi(arg.c_str() + 10));
      continue;
    }
    if (arg.rfind("--deadline=", 0) == 0) {
      deadline = std::atof(arg.c_str() + 11);
      continue;
    }
    if (arg == "--isolate") {
      isolate = true;
      continue;
    }
    if (arg.rfind("--mem-limit=", 0) == 0) {
      memLimitMb = std::strtoull(arg.c_str() + 12, nullptr, 10);
      isolate = true;
      continue;
    }
    const auto dot = arg.find('.');
    if (dot == std::string::npos) {
      std::fprintf(stderr,
                   "usage: %s [program.class] [--workers=N] "
                   "[--deadline=SECONDS] [--isolate] [--mem-limit=MB]\n",
                   argv[0]);
      return 1;
    }
    workload.program = parseProgram(arg.substr(0, dot));
    workload.problemClass = parseClass(arg.substr(dot + 1));
  }

  analysis::SweepConfig config;
  config.machine = topology::intelNuma24();
  config.workload = workload;
  config.parallel.workers = workers;
  config.limits.wallSeconds = deadline;
  config.isolation.enabled = isolate;
  config.isolation.memoryBytes = memLimitMb << 20;
  config.cancel = gStop.token();
  std::signal(SIGINT, onSigint);
  const model::MachineShape shape = model::shapeOf(config.machine);
  config.coreCounts = model::defaultFitCores(shape);
  config.coreCounts.push_back(shape.totalCores());

  std::printf("Fault lab: %s on %s, n in {",
              workloads::workloadName(workload.program, workload.problemClass)
                  .c_str(),
              config.machine.name.c_str());
  for (std::size_t i = 0; i < config.coreCounts.size(); ++i) {
    std::printf("%s%d", i == 0 ? "" : ", ", config.coreCounts[i]);
  }
  std::printf("}\n\n");

  // Healthy run first: its makespan anchors the fault windows, its fit is
  // the reference the degraded fits are compared against.
  const analysis::SweepResult baseline = analysis::runSweep(config);
  if (baseline.stopped || !baseline.pendingCoreCounts().empty()) {
    std::printf("%s\n", baseline.diagnostics().c_str());
    return baseline.stopped ? 130 : 1;
  }
  const Cycles makespan = baseline.profiles.back().makespan;
  double baseMu = 0.0;
  double baseL = 0.0;

  std::printf("%-22s %9s %9s %12s %12s  %s\n", "scenario", "omega(13)",
              "omega(24)", "mu/r", "L/r", "degraded-mode counters");
  for (const Scenario& scenario : makeScenarios(makespan, isolate)) {
    analysis::SweepConfig run = config;
    run.sim.faultPlan = scenario.plan;
    const analysis::SweepResult sweep = analysis::runSweep(run);
    if (sweep.stopped) {
      std::printf("%s\n", sweep.diagnostics().c_str());
      return 130;
    }
    if (!sweep.failures.empty()) {
      std::printf("%-22s %s\n", scenario.name.c_str(),
                  sweep.diagnostics().c_str());
      continue;
    }

    const auto fitPoints =
        analysis::pointsAt(sweep, model::defaultFitCores(shape));
    const auto fitted = model::ContentionModel::tryFit(shape, fitPoints);
    const auto omegas = sweep.omegas();
    const std::size_t last = sweep.profiles.size() - 1;

    char muText[64];
    char lText[64];
    if (fitted) {
      const auto& single = fitted->singleProcessor();
      const double mu = single.muOverR();
      const double l = single.lOverR();
      if (scenario.plan.empty()) {
        baseMu = mu;
        baseL = l;
        std::snprintf(muText, sizeof muText, "%12.4e", mu);
        std::snprintf(lText, sizeof lText, "%12.4e", l);
      } else {
        std::snprintf(muText, sizeof muText, "%+11.1f%%",
                      100.0 * (mu - baseMu) / baseMu);
        std::snprintf(lText, sizeof lText, "%+11.1f%%",
                      100.0 * (l - baseL) / baseL);
      }
    } else {
      std::snprintf(muText, sizeof muText, "unfittable");
      std::snprintf(lText, sizeof lText, "%s",
                    toString(fitted.error().kind));
    }

    const perf::RunProfile& worst = sweep.profiles[last];
    std::uint64_t eccRetries = 0;
    for (const mem::ControllerStats& stats : worst.controllerStats) {
      eccRetries += stats.eccRetries;
    }
    std::printf("%-22s %9.3f %9.3f %12s %12s  ", scenario.name.c_str(),
                omegas[omegas.size() - 2], omegas[last], muText, lText);
    std::printf("rerouted=%llu retries=%llu ecc=%llu bg=%llu throttled=%llu\n",
                static_cast<unsigned long long>(worst.reroutedRequests),
                static_cast<unsigned long long>(worst.faultRetries),
                static_cast<unsigned long long>(eccRetries),
                static_cast<unsigned long long>(worst.backgroundRequests),
                static_cast<unsigned long long>(worst.throttledCycles));
  }

  std::printf(
      "\nReading: omega rows show contention at the second-processor "
      "boundary (n=13)\nand the full machine (n=24); mu/r and L/r rows are "
      "the fitted shift vs the\nbaseline single-controller service rate and "
      "per-core demand.\n");
  return 0;
}
