// Trace explorer: runs a workload at increasing active-core counts with
// the observability layer enabled and exports, per run,
//   - a Chrome trace_event JSON (open in https://ui.perfetto.dev or
//     chrome://tracing): controller service spans, per-core memory
//     stalls, context switches, plus every windowed metric as a counter
//     track, and
//   - a tidy CSV time series of the windowed metrics (controller
//     utilization / queueing / row-hit split, per-core work/stall,
//     machine-wide LLC-miss rate) for plotting.
//
// The stdout summary shows the paper's central observable from the
// metric side: per-controller utilization climbing toward saturation as
// cores activate.
//
// Usage: trace_explorer [program.class] [outdir] [cores,cores,...]
//        (defaults: CG.A, current directory, 1,6,12,18,24)

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/csv.hpp"
#include "analysis/experiment.hpp"
#include "common/error.hpp"
#include "core/occm.hpp"
#include "obs/chrome_trace.hpp"

namespace {

occm::workloads::Program parseProgram(const std::string& name) {
  using occm::workloads::Program;
  if (name == "EP") return Program::kEP;
  if (name == "IS") return Program::kIS;
  if (name == "FT") return Program::kFT;
  if (name == "CG") return Program::kCG;
  if (name == "SP") return Program::kSP;
  if (name == "x264") return Program::kX264;
  std::fprintf(stderr, "unknown program '%s'\n", name.c_str());
  std::exit(1);
}

occm::workloads::ProblemClass parseClass(const std::string& name) {
  using occm::workloads::ProblemClass;
  if (name == "S") return ProblemClass::kS;
  if (name == "W") return ProblemClass::kW;
  if (name == "A") return ProblemClass::kA;
  if (name == "B") return ProblemClass::kB;
  if (name == "C") return ProblemClass::kC;
  if (name == "simsmall") return ProblemClass::kSimSmall;
  if (name == "simmedium") return ProblemClass::kSimMedium;
  if (name == "simlarge") return ProblemClass::kSimLarge;
  if (name == "native") return ProblemClass::kNative;
  std::fprintf(stderr, "unknown problem class '%s'\n", name.c_str());
  std::exit(1);
}

std::vector<int> parseCores(const std::string& list) {
  std::vector<int> cores;
  std::size_t pos = 0;
  while (pos < list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::string item = list.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    cores.push_back(std::stoi(item));
    if (comma == std::string::npos) {
      break;
    }
    pos = comma + 1;
  }
  return cores;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace occm;

  workloads::WorkloadSpec workload;
  workload.problemClass = workloads::ProblemClass::kA;
  std::string outdir = ".";
  std::vector<int> coreCounts = {1, 6, 12, 18, 24};
  if (argc > 1) {
    const std::string arg = argv[1];
    const auto dot = arg.find('.');
    if (dot == std::string::npos) {
      std::fprintf(stderr, "usage: %s [program.class] [outdir] [cores,...]\n",
                    argv[0]);
      return 1;
    }
    workload.program = parseProgram(arg.substr(0, dot));
    workload.problemClass = parseClass(arg.substr(dot + 1));
  }
  if (argc > 2) {
    outdir = argv[2];
  }
  if (argc > 3) {
    coreCounts = parseCores(argv[3]);
  }

  const topology::MachineSpec machine = topology::intelNuma24();
  const std::string name =
      workloads::workloadName(workload.program, workload.problemClass);
  std::printf("Tracing %s on %s ...\n", name.c_str(), machine.name.c_str());

  sim::SimConfig simConfig;
  simConfig.observability.metrics = true;
  simConfig.observability.trace = true;

  std::printf("\n%6s  %10s  %10s  %10s  %9s  %8s\n", "cores", "util(mc0)",
              "util(mc1)", "row-hit", "mean wait", "events");
  for (int cores : coreCounts) {
    const perf::RunProfile profile =
        analysis::runOnce(machine, workload, cores, simConfig);
    OCCM_REQUIRE_MSG(profile.trace != nullptr, "run carried no trace");

    const std::string stem =
        outdir + "/" + name + "_" + std::to_string(cores) + "cores";
    analysis::writeFile(stem + ".trace.json",
                        obs::toChromeTraceJson(*profile.trace));
    analysis::writeFile(
        stem + ".metrics.csv",
        analysis::metricsToCsv(profile.trace->metrics, machine.clockGhz));

    double rowHit = 0.0;
    double meanWait = 0.0;
    std::uint64_t requests = 0;
    for (std::size_t i = 0; i < profile.controllerStats.size(); ++i) {
      const auto& c = profile.controllerStats[i];
      rowHit += c.rowHitRatio() * static_cast<double>(c.requests);
      meanWait += c.meanWait() * static_cast<double>(c.requests);
      requests += c.requests;
    }
    const double denom = requests == 0 ? 1.0 : static_cast<double>(requests);
    std::printf("%6d  %9.1f%%  %9.1f%%  %9.1f%%  %9.1f  %8zu\n", cores,
                100.0 * profile.controllerUtilization(0),
                100.0 * profile.controllerUtilization(1),
                100.0 * rowHit / denom, meanWait / denom,
                profile.trace->events.size());
  }
  std::printf(
      "\nWrote *.trace.json (drag into https://ui.perfetto.dev) and\n"
      "*.metrics.csv (tidy per-window series) to %s\n",
      outdir.c_str());
  return 0;
}
