// Quickstart: fit the contention model to a handful of measured runs and
// predict the degree of memory contention at every core count.
//
// This example uses the pure-model API (no simulator): the "measurements"
// are total-cycle counts like the ones PAPI would report — here, the
// paper's protocol on a 2-socket, 12-cores-per-socket NUMA machine using
// the four regression inputs C(1), C(2), C(12), C(13).

#include <cstdio>
#include <cstring>

#include "core/contention_model.hpp"

int main(int argc, char** argv) {
  using namespace occm;

  // Strict arguments: this example takes none; anything but --help is an
  // error (usage on stderr, exit 2) instead of a silent ignore.
  for (int i = 1; i < argc; ++i) {
    const bool help = std::strcmp(argv[i], "--help") == 0 ||
                      std::strcmp(argv[i], "-h") == 0;
    std::fprintf(help ? stdout : stderr, "usage: %s\n  (no arguments)\n",
                 argv[0]);
    if (!help) {
      std::fprintf(stderr, "error: unrecognized argument \"%s\"\n", argv[i]);
    }
    return help ? 0 : 2;
  }

  // Machine shape: what the model needs to know about the topology.
  model::MachineShape shape;
  shape.coresPerProcessor = 12;
  shape.processors = 2;
  shape.architecture = topology::MemoryArchitecture::kNuma;

  // Four measured runs (total cycles across all active cores).
  const model::MeasuredPoint measured[] = {
      {1, 4.10e11},
      {2, 4.35e11},
      {12, 9.80e11},
      {13, 9.15e11},  // second controller comes online: contention drops
  };

  const model::ContentionModel m = model::ContentionModel::fit(shape, measured);

  std::printf("Fitted single-processor M/M/1: mu/r = %.3e, L/r = %.3e\n",
              m.singleProcessor().muOverR(), m.singleProcessor().lOverR());
  std::printf("Queue saturates at n = %.1f cores\n",
              m.singleProcessor().saturationCores());
  std::printf("Colinearity R^2 of 1/C(n): %.3f\n\n",
              m.singleProcessor().fitInfo().r2);

  std::printf("%6s  %14s  %10s\n", "cores", "C(n) predicted", "omega(n)");
  for (int n = 1; n <= shape.totalCores(); ++n) {
    std::printf("%6d  %14.4e  %10.3f\n", n, m.predictCycles(n),
                m.predictOmega(n));
  }
  return 0;
}
