// Quickstart: fit the contention model to a handful of measured runs and
// predict the degree of memory contention at every core count.
//
// This example uses the pure-model API (no simulator): the "measurements"
// are total-cycle counts like the ones PAPI would report — here, the
// paper's protocol on a 2-socket, 12-cores-per-socket NUMA machine using
// the four regression inputs C(1), C(2), C(12), C(13).

#include <cstdio>

#include "core/contention_model.hpp"

int main() {
  using namespace occm;

  // Machine shape: what the model needs to know about the topology.
  model::MachineShape shape;
  shape.coresPerProcessor = 12;
  shape.processors = 2;
  shape.architecture = topology::MemoryArchitecture::kNuma;

  // Four measured runs (total cycles across all active cores).
  const model::MeasuredPoint measured[] = {
      {1, 4.10e11},
      {2, 4.35e11},
      {12, 9.80e11},
      {13, 9.15e11},  // second controller comes online: contention drops
  };

  const model::ContentionModel m = model::ContentionModel::fit(shape, measured);

  std::printf("Fitted single-processor M/M/1: mu/r = %.3e, L/r = %.3e\n",
              m.singleProcessor().muOverR(), m.singleProcessor().lOverR());
  std::printf("Queue saturates at n = %.1f cores\n",
              m.singleProcessor().saturationCores());
  std::printf("Colinearity R^2 of 1/C(n): %.3f\n\n",
              m.singleProcessor().fitInfo().r2);

  std::printf("%6s  %14s  %10s\n", "cores", "C(n) predicted", "omega(n)");
  for (int n = 1; n <= shape.totalCores(); ++n) {
    std::printf("%6d  %14.4e  %10.3f\n", n, m.predictCycles(n),
                m.predictOmega(n));
  }
  return 0;
}
