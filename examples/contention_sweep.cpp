// Contention sweep: the paper's full measure -> fit -> validate pipeline
// on the simulated Intel NUMA machine.
//
//   1. Build the CG.C workload with one thread per logical core.
//   2. Run it on 1..24 active cores (fill-processor-first, fixed threads).
//   3. Fit the contention model from the paper's four regression inputs.
//   4. Print measured vs. modelled omega(n) and the mean relative error.
//
// Usage: contention_sweep [program.class] [--workers=N] [--deadline=SECONDS]
//        [--budget-cycles=N] [--checkpoint=PATH] [--isolate] [--mem-limit=MB]
//        [--listen=PORT] [--grace=SECONDS] [--csv=PATH]
//        [--connect=HOST:PORT] [--worker-id=NAME] [--straggle-ms=N]
//        [--max-tasks=N] [--chaos-seed=N] [--chaos-plan=SPEC]
// (default CG.C, pool size from OCCM_SWEEP_WORKERS or hardware concurrency)
//
// Lifecycle controls: --deadline caps each run's wall time and
// --budget-cycles caps its simulated cycles — an overrunning run becomes a
// RunFailure{timeout} while the rest of the sweep completes. Ctrl-C stops
// the sweep gracefully: in-flight runs wind down at their next cancellation
// point, a valid checkpoint is flushed (with --checkpoint), and rerunning
// the same command resumes from it.
//
// Crash containment: --isolate forks every attempt into its own process,
// so a crashing run is recorded as RunFailure{crash} (signal, rlimit,
// stderr tail) instead of killing the sweep; successful runs stay
// bit-identical to the in-process path. --mem-limit=MB adds a per-attempt
// RLIMIT_AS budget (implies --isolate).
//
// Distributed sweeps: --listen=PORT turns this process into the fleet
// coordinator (PORT 0 picks an ephemeral port, printed on stdout), and
// --connect=HOST:PORT turns it into a worker that executes assigned core
// counts and reports results back. The merged output is bit-identical to
// a serial run regardless of fleet size, worker deaths, or re-dispatch
// order; --csv=PATH writes it with a CRC-32 fingerprint for comparison.
// --straggle-ms / --max-tasks are fault-drill knobs for smoke tests.
//
// Chaos drills: --chaos-seed=N (or an explicit --chaos-plan=SPEC, see
// exec/chaos) arms a deterministic network-fault schedule — frame drops,
// duplication, reordering, corruption, stalls, partitions, half-closes —
// on this process's transports: every accepted worker connection in
// coordinator mode, every dialled connection in worker mode. The sweep
// must still converge to the same CSV fingerprint or fail typed.

#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/csv.hpp"
#include "analysis/distributed_sweep.hpp"
#include "analysis/experiment.hpp"
#include "common/crc32.hpp"
#include "core/occm.hpp"

namespace {

// Signal handlers may only touch signal-safe state; requestStop() is a
// lock-free atomic store, designed for exactly this call site.
occm::CancellationSource gStop;

extern "C" void onSigint(int /*signum*/) { gStop.requestStop(); }

occm::workloads::Program parseProgram(const std::string& name) {
  using occm::workloads::Program;
  if (name == "EP") return Program::kEP;
  if (name == "IS") return Program::kIS;
  if (name == "FT") return Program::kFT;
  if (name == "CG") return Program::kCG;
  if (name == "SP") return Program::kSP;
  if (name == "x264") return Program::kX264;
  std::fprintf(stderr, "unknown program '%s'\n", name.c_str());
  std::exit(1);
}

occm::workloads::ProblemClass parseClass(const std::string& name) {
  using occm::workloads::ProblemClass;
  if (name == "S") return ProblemClass::kS;
  if (name == "W") return ProblemClass::kW;
  if (name == "A") return ProblemClass::kA;
  if (name == "B") return ProblemClass::kB;
  if (name == "C") return ProblemClass::kC;
  if (name == "simsmall") return ProblemClass::kSimSmall;
  if (name == "simmedium") return ProblemClass::kSimMedium;
  if (name == "simlarge") return ProblemClass::kSimLarge;
  if (name == "native") return ProblemClass::kNative;
  std::fprintf(stderr, "unknown problem class '%s'\n", name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace occm;

  workloads::WorkloadSpec workload;  // default CG.C
  int workers = 0;  // 0 = OCCM_SWEEP_WORKERS or hardware concurrency
  double deadline = 0.0;
  Cycles budgetCycles = 0;
  std::string checkpointPath;
  bool isolate = false;
  std::uint64_t memLimitMb = 0;
  int listenPort = -1;  // -1 = not a coordinator
  std::string connectHost;
  int connectPort = 0;
  std::string workerId = "worker";
  double grace = 5.0;
  double leaseSeconds = 0.0;      // 0 = library default
  int maxExpiries = -1;           // -1 = library default
  std::uint64_t idleTimeoutMs = 0;
  std::uint64_t straggleMs = 0;
  std::uint64_t maxTasks = 0;
  std::string csvPath;
  exec::chaos::ChaosConfig chaos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--workers=", 0) == 0) {
      workers = std::max(1, std::atoi(arg.c_str() + 10));
      continue;
    }
    if (arg.rfind("--deadline=", 0) == 0) {
      deadline = std::atof(arg.c_str() + 11);
      continue;
    }
    if (arg.rfind("--budget-cycles=", 0) == 0) {
      budgetCycles = std::strtoull(arg.c_str() + 16, nullptr, 10);
      continue;
    }
    if (arg.rfind("--checkpoint=", 0) == 0) {
      checkpointPath = arg.substr(13);
      continue;
    }
    if (arg == "--isolate") {
      isolate = true;
      continue;
    }
    if (arg.rfind("--mem-limit=", 0) == 0) {
      // Per-attempt RLIMIT_AS budget in MiB; only meaningful for a
      // forked child, so it implies --isolate.
      memLimitMb = std::strtoull(arg.c_str() + 12, nullptr, 10);
      isolate = true;
      continue;
    }
    if (arg.rfind("--listen=", 0) == 0) {
      listenPort = std::atoi(arg.c_str() + 9);  // 0 = ephemeral
      continue;
    }
    if (arg.rfind("--connect=", 0) == 0) {
      const std::string hostPort = arg.substr(10);
      const auto colon = hostPort.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "--connect expects HOST:PORT, got '%s'\n",
                     hostPort.c_str());
        return 1;
      }
      connectHost = hostPort.substr(0, colon);
      connectPort = std::atoi(hostPort.c_str() + colon + 1);
      continue;
    }
    if (arg.rfind("--worker-id=", 0) == 0) {
      workerId = arg.substr(12);
      continue;
    }
    if (arg.rfind("--grace=", 0) == 0) {
      grace = std::atof(arg.c_str() + 8);
      continue;
    }
    if (arg.rfind("--lease=", 0) == 0) {
      leaseSeconds = std::atof(arg.c_str() + 8);
      continue;
    }
    if (arg.rfind("--max-expiries=", 0) == 0) {
      maxExpiries = std::atoi(arg.c_str() + 15);
      continue;
    }
    if (arg.rfind("--idle-timeout-ms=", 0) == 0) {
      idleTimeoutMs = std::strtoull(arg.c_str() + 18, nullptr, 10);
      continue;
    }
    if (arg.rfind("--straggle-ms=", 0) == 0) {
      straggleMs = std::strtoull(arg.c_str() + 14, nullptr, 10);
      continue;
    }
    if (arg.rfind("--max-tasks=", 0) == 0) {
      maxTasks = std::strtoull(arg.c_str() + 12, nullptr, 10);
      continue;
    }
    if (arg.rfind("--csv=", 0) == 0) {
      csvPath = arg.substr(6);
      continue;
    }
    if (arg.rfind("--chaos-seed=", 0) == 0) {
      chaos.seed = std::strtoull(arg.c_str() + 13, nullptr, 10);
      chaos.plan = exec::chaos::planFromSeed(chaos.seed);
      continue;
    }
    if (arg.rfind("--chaos-plan=", 0) == 0) {
      auto plan = exec::chaos::parseNetFaultPlan(arg.substr(13));
      if (!plan) {
        std::fprintf(stderr, "bad --chaos-plan: %s\n", plan.error().c_str());
        return 1;
      }
      chaos.plan = std::move(*plan);
      continue;
    }
    const auto dot = arg.find('.');
    if (dot == std::string::npos) {
      std::fprintf(stderr,
                   "usage: %s [program.class] [--workers=N] "
                   "[--deadline=SECONDS] [--budget-cycles=N] "
                   "[--checkpoint=PATH] [--isolate] [--mem-limit=MB] "
                   "[--listen=PORT] [--grace=SECONDS] [--lease=SECONDS] "
                   "[--max-expiries=N] [--csv=PATH] "
                   "[--connect=HOST:PORT] [--worker-id=NAME] "
                   "[--idle-timeout-ms=N] "
                   "[--straggle-ms=N] [--max-tasks=N] "
                   "[--chaos-seed=N] [--chaos-plan=SPEC]\n",
                   argv[0]);
      return 1;
    }
    workload.program = parseProgram(arg.substr(0, dot));
    workload.problemClass = parseClass(arg.substr(dot + 1));
  }

  std::signal(SIGINT, onSigint);
  // Chaos schedules half-close peers on purpose; writes into them must
  // come back as typed errors, not SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);

  if (chaos.enabled()) {
    // Log the resolved plan so a seeded drill is replayable from the log
    // alone (pass this spec back via --chaos-plan).
    std::printf("chaos plan: %s\n", chaos.plan.toSpec().c_str());
  }

  if (!connectHost.empty()) {
    // Worker mode: execute core counts for a remote coordinator and exit.
    analysis::SweepWorkerOptions options;
    options.host = connectHost;
    options.port = connectPort;
    options.workerId = workerId;
    options.isolation.enabled = isolate;
    options.isolation.memoryBytes = memLimitMb << 20;
    options.cancel = gStop.token();
    options.straggleMs = straggleMs;
    options.maxTasks = maxTasks;
    options.idleTimeoutMs = idleTimeoutMs;
    options.chaos = chaos;
    const exec::dist::WorkerReport report = analysis::runSweepWorker(options);
    std::printf("worker '%s': %llu task(s), %llu reconnect(s), stopped: %s\n",
                workerId.c_str(),
                static_cast<unsigned long long>(report.tasksCompleted),
                static_cast<unsigned long long>(report.reconnects),
                report.stopReason.c_str());
    return report.ok ? 0 : 1;
  }

  analysis::SweepConfig config;
  config.machine = topology::intelNuma24();
  config.workload = workload;
  config.parallel.workers = workers;
  config.limits.wallSeconds = deadline;
  config.limits.cycleBudget = budgetCycles;
  config.checkpointPath = checkpointPath;
  config.isolation.enabled = isolate;
  config.isolation.memoryBytes = memLimitMb << 20;
  config.cancel = gStop.token();
  if (listenPort >= 0) {
    config.distributed.listen = true;
    config.distributed.port = listenPort;
    config.distributed.graceWindowSeconds = grace;
    if (leaseSeconds > 0.0) {
      config.distributed.leaseSeconds = leaseSeconds;
      // Chaos drills shrink every recovery deadline together: detecting
      // a lost lease quickly is pointless if eviction still waits the
      // production 15 s.
      config.distributed.heartbeatTimeoutSeconds =
          std::min(config.distributed.heartbeatTimeoutSeconds,
                   4.0 * leaseSeconds);
      config.distributed.speculativeAfterSeconds =
          std::min(config.distributed.speculativeAfterSeconds, leaseSeconds);
    }
    if (maxExpiries >= 0) {
      config.distributed.maxLeaseExpiries = maxExpiries;
    }
    config.distributed.chaos = chaos;
    config.distributed.onListening = [](int port) {
      // The smoke script scrapes this line for the ephemeral port.
      std::printf("coordinator listening on port %d\n", port);
      std::fflush(stdout);
    };
  }

  std::printf("Sweeping %s on %s ...\n",
              workloads::workloadName(workload.program, workload.problemClass)
                  .c_str(),
              config.machine.name.c_str());
  const analysis::SweepResult sweep = analysis::runSweep(config);
  if (sweep.restoredRuns > 0) {
    std::printf("(%u runs restored from checkpoint)\n",
                static_cast<unsigned>(sweep.restoredRuns));
  }
  if (sweep.dist.used) {
    std::printf("fleet: %zu worker(s) seen, %zu task(s) completed remotely, "
                "%llu re-dispatch(es), %llu speculative, %llu duplicate(s) "
                "discarded%s\n",
                sweep.dist.workersSeen, sweep.dist.fleetCompleted,
                static_cast<unsigned long long>(sweep.dist.leases.redispatches),
                static_cast<unsigned long long>(
                    sweep.dist.leases.speculativeLeases),
                static_cast<unsigned long long>(
                    sweep.dist.leases.duplicatesDiscarded),
                sweep.dist.degradedToLocal ? " (degraded to local pool)" : "");
    if (!sweep.dist.error.empty()) {
      std::printf("fleet error: %s\n", sweep.dist.error.c_str());
    }
  }
  if (sweep.stopped) {
    // Graceful Ctrl-C: completed runs are checkpointed (with --checkpoint);
    // rerunning the same command resumes where this one stopped.
    std::printf("%s\n", sweep.diagnostics().c_str());
    if (!checkpointPath.empty()) {
      std::printf("checkpoint flushed to %s — rerun to resume\n",
                  checkpointPath.c_str());
    }
    return 130;  // conventional SIGINT exit
  }
  if (!csvPath.empty()) {
    const std::string csv = analysis::sweepToCsv(sweep);
    std::FILE* out = std::fopen(csvPath.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", csvPath.c_str());
      return 1;
    }
    std::fwrite(csv.data(), 1, csv.size(), out);
    std::fclose(out);
    // The fingerprint is what the distributed smoke test compares across
    // fleet shapes: same bytes <=> same crc.
    std::printf("csv fingerprint: %08x (%s)\n", crc32(csv), csvPath.c_str());
  }
  if (!sweep.failures.empty()) {
    std::printf("%s\n", sweep.diagnostics().c_str());
    if (!sweep.pendingCoreCounts().empty()) {
      // Timed-out or failed core counts leave holes the fit below would
      // trip over; the completed subset was still reported faithfully.
      return 1;
    }
  }

  // Fit from the paper's regression inputs for this machine shape.
  const model::MachineShape shape = model::shapeOf(config.machine);
  const auto fitCores = model::defaultFitCores(shape);
  const auto fitPoints = analysis::pointsAt(sweep, fitCores);
  const model::ContentionModel m = model::ContentionModel::fit(shape, fitPoints);

  const auto allPoints = sweep.points();
  const model::ValidationReport report = model::validate(m, allPoints);

  std::printf("\n%6s  %12s  %12s  %9s  %9s  %8s\n", "cores", "measured C(n)",
              "model C(n)", "omega(m)", "omega(p)", "relerr");
  for (const model::ValidationRow& row : report.rows) {
    std::printf("%6d  %13.4e  %12.4e  %9.3f  %9.3f  %7.1f%%\n", row.cores,
                row.measuredCycles, row.predictedCycles, row.measuredOmega,
                row.predictedOmega, 100.0 * row.relativeError);
  }
  std::printf("\nmean relative error: %.1f%%  (paper reports 5-14%% for "
              "high-contention programs)\n",
              100.0 * report.meanRelativeError);

  const auto& profile1 = sweep.at(1);
  const auto& profileN = sweep.profiles.back();
  std::printf("\nwork cycles:  C(1) %llu -> C(max) %llu (should stay flat)\n",
              static_cast<unsigned long long>(profile1.counters.workCycles()),
              static_cast<unsigned long long>(profileN.counters.workCycles()));
  std::printf("LLC misses :  C(1) %llu -> C(max) %llu\n",
              static_cast<unsigned long long>(profile1.counters.llcMisses),
              static_cast<unsigned long long>(profileN.counters.llcMisses));
  return 0;
}
