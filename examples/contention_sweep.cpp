// Contention sweep: the paper's full measure -> fit -> validate pipeline
// on the simulated Intel NUMA machine.
//
//   1. Build the CG.C workload with one thread per logical core.
//   2. Run it on 1..24 active cores (fill-processor-first, fixed threads).
//   3. Fit the contention model from the paper's four regression inputs.
//   4. Print measured vs. modelled omega(n) and the mean relative error.
//
// Usage: contention_sweep [program.class] [--workers=N]   (default CG.C,
// pool size from OCCM_SWEEP_WORKERS or hardware concurrency)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "analysis/experiment.hpp"
#include "core/occm.hpp"

namespace {

occm::workloads::Program parseProgram(const std::string& name) {
  using occm::workloads::Program;
  if (name == "EP") return Program::kEP;
  if (name == "IS") return Program::kIS;
  if (name == "FT") return Program::kFT;
  if (name == "CG") return Program::kCG;
  if (name == "SP") return Program::kSP;
  if (name == "x264") return Program::kX264;
  std::fprintf(stderr, "unknown program '%s'\n", name.c_str());
  std::exit(1);
}

occm::workloads::ProblemClass parseClass(const std::string& name) {
  using occm::workloads::ProblemClass;
  if (name == "S") return ProblemClass::kS;
  if (name == "W") return ProblemClass::kW;
  if (name == "A") return ProblemClass::kA;
  if (name == "B") return ProblemClass::kB;
  if (name == "C") return ProblemClass::kC;
  if (name == "simsmall") return ProblemClass::kSimSmall;
  if (name == "simmedium") return ProblemClass::kSimMedium;
  if (name == "simlarge") return ProblemClass::kSimLarge;
  if (name == "native") return ProblemClass::kNative;
  std::fprintf(stderr, "unknown problem class '%s'\n", name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace occm;

  workloads::WorkloadSpec workload;  // default CG.C
  int workers = 0;  // 0 = OCCM_SWEEP_WORKERS or hardware concurrency
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--workers=", 0) == 0) {
      workers = std::max(1, std::atoi(arg.c_str() + 10));
      continue;
    }
    const auto dot = arg.find('.');
    if (dot == std::string::npos) {
      std::fprintf(stderr, "usage: %s [program.class] [--workers=N]\n",
                   argv[0]);
      return 1;
    }
    workload.program = parseProgram(arg.substr(0, dot));
    workload.problemClass = parseClass(arg.substr(dot + 1));
  }

  analysis::SweepConfig config;
  config.machine = topology::intelNuma24();
  config.workload = workload;
  config.parallel.workers = workers;

  std::printf("Sweeping %s on %s ...\n",
              workloads::workloadName(workload.program, workload.problemClass)
                  .c_str(),
              config.machine.name.c_str());
  const analysis::SweepResult sweep = analysis::runSweep(config);

  // Fit from the paper's regression inputs for this machine shape.
  const model::MachineShape shape = model::shapeOf(config.machine);
  const auto fitCores = model::defaultFitCores(shape);
  const auto fitPoints = analysis::pointsAt(sweep, fitCores);
  const model::ContentionModel m = model::ContentionModel::fit(shape, fitPoints);

  const auto allPoints = sweep.points();
  const model::ValidationReport report = model::validate(m, allPoints);

  std::printf("\n%6s  %12s  %12s  %9s  %9s  %8s\n", "cores", "measured C(n)",
              "model C(n)", "omega(m)", "omega(p)", "relerr");
  for (const model::ValidationRow& row : report.rows) {
    std::printf("%6d  %13.4e  %12.4e  %9.3f  %9.3f  %7.1f%%\n", row.cores,
                row.measuredCycles, row.predictedCycles, row.measuredOmega,
                row.predictedOmega, 100.0 * row.relativeError);
  }
  std::printf("\nmean relative error: %.1f%%  (paper reports 5-14%% for "
              "high-contention programs)\n",
              100.0 * report.meanRelativeError);

  const auto& profile1 = sweep.at(1);
  const auto& profileN = sweep.profiles.back();
  std::printf("\nwork cycles:  C(1) %llu -> C(max) %llu (should stay flat)\n",
              static_cast<unsigned long long>(profile1.counters.workCycles()),
              static_cast<unsigned long long>(profileN.counters.workCycles()));
  std::printf("LLC misses :  C(1) %llu -> C(max) %llu\n",
              static_cast<unsigned long long>(profile1.counters.llcMisses),
              static_cast<unsigned long long>(profileN.counters.llcMisses));
  return 0;
}
