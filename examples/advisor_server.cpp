// Capacity-advisor service (DESIGN.md §15): serves speedup / efficiency /
// C(n) queries over framed TCP with the full overload ladder — bounded
// admission, per-request deadlines, graceful tier-0 degradation, warm
// model cache, SIGTERM drain.
//
//   ./advisor_server --port=7077 &
//   ./advisor_client --port=7077 --workload=EP.S --machine=test-numa4
//   kill -TERM %1   # drain: finish in-flight work, then exit 0
//
// SIGTERM/SIGINT fire the drain token from the signal handler
// (requestStop is async-signal-safe); the server stops accepting, sheds
// new requests with kDraining, completes in-flight work and returns — the
// process then prints the serve.* ground-truth counters and exits 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/cancellation.hpp"
#include "exec/chaos/chaos_transport.hpp"
#include "serve/advisor_server.hpp"

namespace {

occm::CancellationSource& drainSource() {
  static occm::CancellationSource source;
  return source;
}

void onSignal(int) { drainSource().requestStop(); }

struct Args {
  std::string host = "127.0.0.1";
  int port = 7077;
  std::size_t queueCapacity = 16;
  std::size_t degradeDepth = 8;
  double minSlackMs = 0.0;
  double maxEwmaMs = 0.0;
  std::size_t cacheCapacity = 16;
  int workers = 2;
  std::uint64_t stallTimeoutMs = 10'000;
  std::size_t maxConnections = 256;
  occm::exec::chaos::ChaosConfig chaos;
};

void usage(std::FILE* to, const char* argv0) {
  std::fprintf(
      to,
      "usage: %s [--host=ADDR] [--port=N] [--queue-capacity=N]\n"
      "          [--degrade-depth=N] [--min-slack-ms=F] [--max-ewma-ms=F]\n"
      "          [--cache-capacity=N] [--workers=N]\n"
      "          [--stall-timeout-ms=N] [--max-connections=N]\n"
      "          [--chaos-seed=N] [--chaos-plan=SPEC]\n"
      "  --port=N            listen port; 0 picks an ephemeral port\n"
      "  --queue-capacity=N  admission bound; beyond it requests shed\n"
      "  --degrade-depth=N   queue depth that downgrades to tier 0 "
      "(0=never)\n"
      "  --min-slack-ms=F    deadline slack floor for tier 1 (0=never)\n"
      "  --max-ewma-ms=F     tier-1 latency EWMA ceiling (0=never)\n"
      "  --cache-capacity=N  fitted-model LRU capacity\n"
      "  --workers=N         fit/refinement pool size\n"
      "  --stall-timeout-ms=N  drop connections with no read progress "
      "(slowloris guard; 0=never)\n"
      "  --max-connections=N   admission cap on concurrent connections\n"
      "  --chaos-seed=N      seeded network-fault schedule on every "
      "accepted connection\n"
      "  --chaos-plan=SPEC   explicit chaos plan (see exec/chaos)\n",
      argv0);
}

Args parseArgs(int argc, char** argv) {
  const auto die = [&](const std::string& why) {
    std::fprintf(stderr, "error: %s\n", why.c_str());
    usage(stderr, argv[0]);
    std::exit(2);
  };
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    const std::string flag = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    const auto intValue = [&](long lo, long hi) {
      char* end = nullptr;
      const long v = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0' || v < lo || v > hi) {
        die("bad value in \"" + arg + "\"");
      }
      return v;
    };
    const auto doubleValue = [&]() {
      char* end = nullptr;
      const double v = std::strtod(value.c_str(), &end);
      if (value.empty() || *end != '\0' || v < 0.0) {
        die("bad value in \"" + arg + "\"");
      }
      return v;
    };
    if (flag == "--help" || flag == "-h") {
      usage(stdout, argv[0]);
      std::exit(0);
    } else if (flag == "--host") {
      if (value.empty()) {
        die("--host needs a value");
      }
      args.host = value;
    } else if (flag == "--port") {
      args.port = static_cast<int>(intValue(0, 65535));
    } else if (flag == "--queue-capacity") {
      args.queueCapacity = static_cast<std::size_t>(intValue(1, 1 << 20));
    } else if (flag == "--degrade-depth") {
      args.degradeDepth = static_cast<std::size_t>(intValue(0, 1 << 20));
    } else if (flag == "--min-slack-ms") {
      args.minSlackMs = doubleValue();
    } else if (flag == "--max-ewma-ms") {
      args.maxEwmaMs = doubleValue();
    } else if (flag == "--cache-capacity") {
      args.cacheCapacity = static_cast<std::size_t>(intValue(1, 1 << 20));
    } else if (flag == "--workers") {
      args.workers = static_cast<int>(intValue(1, 1024));
    } else if (flag == "--stall-timeout-ms") {
      args.stallTimeoutMs = static_cast<std::uint64_t>(intValue(0, 1L << 31));
    } else if (flag == "--max-connections") {
      args.maxConnections = static_cast<std::size_t>(intValue(1, 1 << 20));
    } else if (flag == "--chaos-seed") {
      args.chaos.seed = static_cast<std::uint64_t>(intValue(0, 1L << 62));
      args.chaos.plan = occm::exec::chaos::planFromSeed(args.chaos.seed);
    } else if (flag == "--chaos-plan") {
      auto plan = occm::exec::chaos::parseNetFaultPlan(value);
      if (!plan) {
        die(plan.error());
      }
      args.chaos.plan = std::move(*plan);
    } else {
      die("unrecognized argument \"" + arg + "\"");
    }
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace occm;
  const Args args = parseArgs(argc, argv);

  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);
  // Abruptly-closed clients must surface as typed send failures on their
  // own connection, never as a process-killing SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);

  serve::AdvisorServerConfig config;
  config.host = args.host;
  config.port = args.port;
  config.degrade.queueCapacity = args.queueCapacity;
  config.degrade.degradeQueueDepth = args.degradeDepth;
  config.degrade.minTier1SlackMs = args.minSlackMs;
  config.degrade.maxTier1EwmaMs = args.maxEwmaMs;
  config.cacheCapacity = args.cacheCapacity;
  config.workers = args.workers;
  config.readProgressTimeoutMs = args.stallTimeoutMs;
  config.maxConnections = args.maxConnections;
  if (args.chaos.enabled()) {
    // Print the resolved plan so any seeded drill is reproducible from
    // the log alone (--chaos-plan of this spec replays it exactly).
    std::printf("chaos plan: %s\n", args.chaos.plan.toSpec().c_str());
    config.transportFactory = exec::chaos::chaosTransportFactory(args.chaos);
  }
  config.drain = drainSource().token();
  config.onListening = [](int port) {
    std::printf("advisor server listening on port %d\n", port);
    std::fflush(stdout);
  };

  const serve::AdvisorServerStats stats = serve::runAdvisorServer(config);
  if (!stats.error.empty()) {
    std::fprintf(stderr, "error: %s\n", stats.error.c_str());
    return 1;
  }

  std::printf("drained: %s\n", stats.drained ? "yes" : "no");
  std::printf("  connections accepted   %llu\n",
              static_cast<unsigned long long>(stats.connectionsAccepted));
  std::printf("  connections refused    %llu\n",
              static_cast<unsigned long long>(stats.connectionsRefused));
  std::printf("  connections stalled    %llu\n",
              static_cast<unsigned long long>(stats.connectionsStalled));
  std::printf("  requests decoded       %llu\n",
              static_cast<unsigned long long>(stats.requestsDecoded));
  std::printf("  responses sent         %llu\n",
              static_cast<unsigned long long>(stats.responsesSent));
  std::printf("  tier-0 / tier-1 served %llu / %llu\n",
              static_cast<unsigned long long>(stats.tier0Served),
              static_cast<unsigned long long>(stats.tier1Served));
  std::printf("  degraded               %llu\n",
              static_cast<unsigned long long>(stats.degraded));
  std::printf("  shed queue-full        %llu\n",
              static_cast<unsigned long long>(stats.shedQueueFull));
  std::printf("  shed deadline          %llu\n",
              static_cast<unsigned long long>(stats.shedDeadlineInfeasible));
  std::printf("  shed draining          %llu\n",
              static_cast<unsigned long long>(stats.shedDraining));
  std::printf("  shed bad-request       %llu\n",
              static_cast<unsigned long long>(stats.shedBadRequest));
  std::printf("  deadline misses        %llu\n",
              static_cast<unsigned long long>(stats.deadlineMisses));
  std::printf("  max queue depth        %llu\n",
              static_cast<unsigned long long>(stats.maxQueueDepth));
  std::printf("  cache hits/misses      %llu / %llu (evicted %llu, "
              "coalesced %llu)\n",
              static_cast<unsigned long long>(stats.cache.hits),
              static_cast<unsigned long long>(stats.cache.misses),
              static_cast<unsigned long long>(stats.cache.evictions),
              static_cast<unsigned long long>(stats.cache.coalesced));
  std::printf("  tier-1 latency EWMA    %.1f ms\n", stats.tier1EwmaMs);
  return stats.drained ? 0 : 1;
}
