// Capacity advisor: use the fitted contention model to choose how many
// cores to give a memory-bound program. The model needs only a handful of
// measured runs (the paper's point: predictive analysis from 3-5
// measurements instead of a full sweep).
//
// Speedup(n) = C(1) / (C(n)/n): total cycles spread over n cores.
// Efficiency(n) = Speedup(n) / n. The advisor reports the core count that
// maximises speedup and the largest count whose efficiency stays above a
// threshold — on contended machines those differ substantially.
//
// Thin client of analysis::fitAdvisorModel — the same fit the advisor
// server's warm cache is filled with (DESIGN.md §15).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/advisor.hpp"
#include "core/occm.hpp"
#include "topology/presets.hpp"

namespace {

struct Args {
  std::string workload = "SP.C";
  std::string machine = "intel-numa24";
  double efficiency = 0.5;
  int workers = 0;
};

void usage(std::FILE* to, const char* argv0) {
  std::fprintf(
      to,
      "usage: %s [--workload=PROG.CLASS] [--machine=PRESET] "
      "[--efficiency=F] [--workers=N]\n"
      "  --workload=P.C   program.class to advise on (default SP.C)\n"
      "  --machine=NAME   topology preset (default intel-numa24)\n"
      "  --efficiency=F   efficiency threshold in (0,1] (default 0.5)\n"
      "  --workers=N      sweep pool size (default: OCCM_SWEEP_WORKERS)\n",
      argv0);
  std::fprintf(to, "  machine presets:");
  for (const std::string& name : occm::topology::presetNames()) {
    std::fprintf(to, " %s", name.c_str());
  }
  std::fprintf(to, "\n");
}

/// Strict parser: usage on stderr and exit 2 on anything unrecognized.
Args parseArgs(int argc, char** argv) {
  const auto die = [&](const std::string& why) {
    std::fprintf(stderr, "error: %s\n", why.c_str());
    usage(stderr, argv[0]);
    std::exit(2);
  };
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    const std::string flag = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (flag == "--help" || flag == "-h") {
      usage(stdout, argv[0]);
      std::exit(0);
    } else if (flag == "--workload") {
      args.workload = value;
    } else if (flag == "--machine") {
      args.machine = value;
    } else if (flag == "--efficiency") {
      char* end = nullptr;
      args.efficiency = std::strtod(value.c_str(), &end);
      if (value.empty() || *end != '\0' || args.efficiency <= 0.0 ||
          args.efficiency > 1.0) {
        die("bad value in \"" + arg + "\" (want a number in (0, 1])");
      }
    } else if (flag == "--workers") {
      char* end = nullptr;
      const long workers = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0' || workers < 1 || workers > 1024) {
        die("bad value in \"" + arg + "\" (want an integer >= 1)");
      }
      args.workers = static_cast<int>(workers);
    } else {
      die("unrecognized argument \"" + arg + "\"");
    }
    if (eq == std::string::npos && (flag == "--workload" ||
                                    flag == "--machine" ||
                                    flag == "--efficiency" ||
                                    flag == "--workers")) {
      die("\"" + arg + "\" needs a value: " + flag + "=...");
    }
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace occm;
  const Args args = parseArgs(argc, argv);

  const auto machine = topology::presetByName(args.machine);
  if (!machine.has_value()) {
    std::fprintf(stderr, "error: unknown machine preset \"%s\"\n",
                 args.machine.c_str());
    usage(stderr, argv[0]);
    return 2;
  }
  const std::size_t dot = args.workload.find('.');
  const auto program = workloads::parseProgram(
      dot == std::string::npos ? args.workload : args.workload.substr(0, dot));
  const auto problemClass = workloads::parseProblemClass(
      dot == std::string::npos ? "" : args.workload.substr(dot + 1));
  if (!program.has_value() || !problemClass.has_value() ||
      !workloads::classValidFor(*program, *problemClass)) {
    std::fprintf(stderr, "error: unknown workload \"%s\"\n",
                 args.workload.c_str());
    usage(stderr, argv[0]);
    return 2;
  }

  analysis::AdvisorFitConfig config;
  config.machine = *machine;
  config.workload.program = *program;
  config.workload.problemClass = *problemClass;
  config.workers = args.workers;

  const model::MachineShape shape = model::shapeOf(*machine);
  std::printf("Measuring %s on %s at n =", args.workload.c_str(),
              machine->name.c_str());
  for (int n : model::defaultFitCores(shape)) {
    std::printf(" %d", n);
  }
  std::printf(" ...\n");

  const auto fitted = analysis::fitAdvisorModel(config);
  if (!fitted) {
    std::fprintf(stderr, "error: model fit failed: %s\n",
                 fitted.error().describe().c_str());
    return 1;
  }
  const model::ContentionModel& m = fitted->model;

  std::printf("\n%6s  %10s  %9s  %11s\n", "cores", "omega(n)", "speedup",
              "efficiency");
  for (int n = 1; n <= shape.totalCores(); ++n) {
    std::printf("%6d  %10.2f  %9.2f  %10.1f%%\n", n, m.predictOmega(n),
                model::predictSpeedup(m, n),
                100.0 * model::predictEfficiency(m, n));
  }
  const model::SpeedupAdvice advice = model::adviseCores(m, args.efficiency);
  std::printf("\nadvice: peak predicted speedup %.2fx at %d cores;\n"
              "        last core count with >= %.0f%% efficiency: %d\n",
              advice.bestSpeedup, advice.bestCores, 100.0 * args.efficiency,
              advice.efficientCores);
  std::printf("(model fit from %zu runs instead of a %d-run sweep)\n",
              fitted->measuredRuns, shape.totalCores());
  return 0;
}
