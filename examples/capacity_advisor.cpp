// Capacity advisor: use the fitted contention model to choose how many
// cores to give a memory-bound program. The model needs only a handful of
// measured runs (the paper's point: predictive analysis from 3-5
// measurements instead of a full sweep).
//
// Speedup(n) = C(1) / (C(n)/n): total cycles spread over n cores.
// Efficiency(n) = Speedup(n) / n. The advisor reports the core count that
// maximises speedup and the largest count whose efficiency stays above a
// threshold — on contended machines those differ substantially.
//
// Usage: capacity_advisor [program.class]   (default SP.C)

#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/experiment.hpp"
#include "core/occm.hpp"

int main(int argc, char** argv) {
  using namespace occm;

  workloads::WorkloadSpec workload;
  workload.program = workloads::Program::kSP;
  workload.problemClass = workloads::ProblemClass::kC;
  if (argc > 1 && std::strcmp(argv[1], "CG.C") == 0) {
    workload.program = workloads::Program::kCG;
  }

  const auto machine = topology::intelNuma24();
  const model::MachineShape shape = model::shapeOf(machine);

  // Measure only the model's regression inputs.
  const auto fitCores = model::defaultFitCores(shape);
  std::printf("Measuring %s on %s at n =",
              workloads::workloadName(workload.program, workload.problemClass)
                  .c_str(),
              machine.name.c_str());
  for (int n : fitCores) {
    std::printf(" %d", n);
  }
  std::printf(" ...\n");

  analysis::SweepConfig config;
  config.machine = machine;
  config.workload = workload;
  config.coreCounts = fitCores;
  const auto sweep = analysis::runSweep(config);
  const model::ContentionModel m =
      model::ContentionModel::fit(shape, sweep.points());

  std::printf("\n%6s  %10s  %9s  %11s\n", "cores", "omega(n)", "speedup",
              "efficiency");
  for (int n = 1; n <= shape.totalCores(); ++n) {
    std::printf("%6d  %10.2f  %9.2f  %10.1f%%\n", n, m.predictOmega(n),
                model::predictSpeedup(m, n),
                100.0 * model::predictEfficiency(m, n));
  }
  const model::SpeedupAdvice advice = model::adviseCores(m, 0.5);
  std::printf("\nadvice: peak predicted speedup %.2fx at %d cores;\n"
              "        last core count with >= 50%% efficiency: %d\n",
              advice.bestSpeedup, advice.bestCores, advice.efficientCores);
  std::printf("(model fit from %zu runs instead of a %d-run sweep)\n",
              sweep.profiles.size(), shape.totalCores());
  return 0;
}
