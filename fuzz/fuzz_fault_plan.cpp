// Fuzzes fault::planFromJson — scripted fault scenarios are loaded from
// files next to a sweep's checkpoint, so the parser must turn any byte
// sequence into a plan or a typed PlanParseError without crashing, and
// accepted plans must round-trip byte-identically.

#include <cstdint>
#include <cstdlib>
#include <string>

#include "fault/fault_plan_io.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace occm::fault;
  const std::string text(reinterpret_cast<const char*>(data), size);

  const auto plan = planFromJson(text);
  if (plan.hasValue()) {
    const std::string json = toJson(plan.value());
    const auto again = planFromJson(json);
    if (!again.hasValue() || toJson(again.value()) != json) {
      std::abort();
    }
  } else {
    (void)plan.error().message();
  }
  return 0;
}
