// Fuzzes the capacity-advisor service's wire layer: decodeServeMessage
// must turn arbitrary bytes into either a valid message or a typed
// IpcError — never throw — and any payload it accepts must be a
// re-encode fixed point (the same canonical-form pin the fleet's
// decodeMessage carries).

#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

#include "serve/protocol.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace occm::serve;
  const std::string_view payload(reinterpret_cast<const char*>(data), size);
  const auto message = decodeServeMessage(payload);
  if (message.hasValue()) {
    // Accepted payloads are pinned to canonical form: re-encoding the
    // decoded message must reproduce the bytes exactly.
    if (encodeServeMessage(message.value()) != payload) {
      std::abort();
    }
  } else {
    (void)message.error().message();
  }
  return 0;
}
