// Fuzzes the distributed fleet's wire layer end to end: the stream
// reassembler that turns arbitrary TCP chunks back into frames, and
// decodeMessage on both the extracted payloads and the raw input. The
// reassembler must extract frames or report a typed IpcError — never
// throw, never mis-extract — and any payload decodeMessage accepts must
// be a re-encode fixed point.

#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

#include "exec/distributed/protocol.hpp"
#include "exec/frame_transport.hpp"
#include "exec/ipc.hpp"

namespace {

void checkDecodedPayload(std::string_view payload) {
  using namespace occm::exec::dist;
  const auto message = decodeMessage(payload);
  if (message.hasValue()) {
    // Accepted payloads are pinned to canonical form: re-encoding the
    // decoded message must reproduce the bytes exactly.
    if (encodeMessage(message.value()) != payload) {
      std::abort();
    }
  } else {
    (void)message.error().message();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using occm::exec::FrameReassembler;
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);

  // The first byte picks a chunking stride so the corpus exercises
  // reassembly across arbitrary TCP segmentation, not just one-shot
  // delivery. stride 0 means "feed everything at once".
  const std::size_t stride = size == 0 ? 0 : data[0] % 7;
  const std::string_view stream = size == 0 ? bytes : bytes.substr(1);

  FrameReassembler reassembler;
  if (stride == 0) {
    (void)reassembler.feed(stream);
  } else {
    for (std::size_t at = 0; at < stream.size(); at += stride) {
      if (!reassembler.feed(stream.substr(at, stride))) {
        break;
      }
    }
  }
  if (reassembler.corrupt()) {
    (void)reassembler.error().message();
  }
  while (const auto payload = reassembler.next()) {
    checkDecodedPayload(*payload);
  }

  // The raw input doubles as a direct message-decoder probe (payloads
  // reach decodeMessage without framing in the tests too).
  checkDecodedPayload(stream);
  return 0;
}
