// Fuzzes the isolation-mode wire format end to end: decodeFrame on
// arbitrary bytes (must yield a payload or a typed IpcError, never crash)
// and decodeChildMessage on the same bytes. Successful decodes are pinned
// to canonical form: a frame that decodes must be exactly what
// encodeFrame(payload) produces, and a message that decodes must be a
// re-encode fixed point.

#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>

#include "exec/ipc.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace occm::exec;
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);

  const auto frame = decodeFrame(bytes);
  if (frame.hasValue()) {
    // decodeFrame rejects trailing bytes, so acceptance means the input
    // is the one canonical encoding of its payload.
    if (encodeFrame(frame.value()) != bytes) {
      std::abort();
    }
  } else {
    (void)frame.error().message();
  }

  const auto message = decodeChildMessage(bytes);
  if (message.hasValue()) {
    const std::string reencoded = encodeChildMessage(message.value());
    const auto again = decodeChildMessage(reencoded);
    if (!again.hasValue() ||
        encodeChildMessage(again.value()) != reencoded) {
      std::abort();
    }
  } else {
    (void)message.error().message();
  }
  return 0;
}
