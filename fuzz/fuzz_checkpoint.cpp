// Fuzzes SweepCheckpoint::parse — the loader that re-ingests whatever a
// previous (possibly crashed) invocation left on disk. Arbitrary bytes
// must parse or be rejected, never crash; anything that parses must be a
// serialize/reparse fixed point.

#include <cstdint>
#include <cstdlib>
#include <string>

#include "analysis/sweep_state.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using occm::analysis::SweepCheckpoint;
  const std::string text(reinterpret_cast<const char*>(data), size);

  const auto parsed = SweepCheckpoint::parse(text);
  if (parsed.has_value()) {
    const std::string json = parsed->toJson();
    const auto again = SweepCheckpoint::parse(json);
    if (!again.has_value() || again->toJson() != json) {
      std::abort();
    }
  }
  return 0;
}
