// Fuzzes analysis::parseSweepCsv — exported sweep tables get re-ingested
// by plotting and comparison tooling, so the strict-shape parser must
// reject or accept any byte sequence without crashing.

#include <cstdint>
#include <cstdlib>
#include <string>

#include "analysis/csv.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  const auto rows = occm::analysis::parseSweepCsv(text);
  if (rows.hasValue()) {
    // Strict shape validation promised cores >= 1 on every accepted row.
    for (const auto& row : rows.value()) {
      if (row.cores < 1) {
        std::abort();
      }
    }
  } else {
    (void)rows.error().message();
  }
  return 0;
}
