// Replay driver for toolchains without libFuzzer (gcc): feeds each argv
// file to LLVMFuzzerTestOneInput so corpus and regression inputs replay
// on any compiler. `clang -fsanitize=fuzzer` provides its own main and
// this file is not built there.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", argv[i]);
      return 1;
    }
    const std::string bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    (void)LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
    ++replayed;
  }
  std::printf("replayed %d input(s) without crashing\n", replayed);
  return 0;
}
