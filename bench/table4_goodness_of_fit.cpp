// Table IV — colinearity goodness-of-fit R^2 of 1/C(n) vs n for six
// programs on the three machines (n = 1..4 on Intel UMA, n = 1..12 on the
// NUMA machines). The paper's observation: R^2 correlates with the degree
// of contention — high-contention programs (whose traffic is non-bursty)
// fit the M/M/1 line almost perfectly; low-contention bursty programs
// (EP, x264) fit worst.

#include <algorithm>

#include "bench_util.hpp"

namespace {

using namespace occm;

struct PaperR2 {
  const char* program;
  double uma;
  double numa;
  double amd;
};

constexpr PaperR2 kPaper[] = {
    {"EP.C", 0.86, 0.91, 0.90},   {"IS.C", 0.97, 0.98, 0.99},
    {"FT.B/C", 1.00, 0.99, 1.00}, {"CG.C", 0.96, 0.94, 0.97},
    {"SP.C", 0.97, 0.96, 0.99},   {"x264.native", 0.87, 0.85, 0.81},
};

}  // namespace

int main(int argc, char** argv) {
  bench::parseBenchArgs(argc, argv);
  using workloads::ProblemClass;
  using workloads::Program;
  const std::vector<Program> programs = {Program::kEP, Program::kIS,
                                         Program::kFT, Program::kCG,
                                         Program::kSP, Program::kX264};
  const auto machines = topology::paperMachines();

  bench::printHeading(
      "Table IV — colinearity goodness-of-fit R^2 of 1/C(n) "
      "(n = 1..4 on UMA, 1..12 on NUMA)");

  analysis::TextTable table;
  table.header({"Program", "UMA R^2", "(paper)", "NUMA R^2", "(paper)",
                "AMD R^2", "(paper)"});
  for (std::size_t i = 0; i < programs.size(); ++i) {
    const Program program = programs[i];
    std::vector<std::string> row{kPaper[i].program};
    const double paperValues[] = {kPaper[i].uma, kPaper[i].numa,
                                  kPaper[i].amd};
    for (std::size_t mi = 0; mi < machines.size(); ++mi) {
      const auto& machine = machines[mi];
      const ProblemClass cls = bench::largeClassFor(program, machine);
      const int maxN = std::min(
          machine.logicalCoresPerSocket(),
          machine.memoryArchitecture == topology::MemoryArchitecture::kUma
              ? 4
              : 12);
      std::vector<int> counts;
      for (int n = 1; n <= maxN; ++n) {
        counts.push_back(n);
      }
      const auto sweep = bench::sweep(machine, program, cls, counts);
      row.push_back(analysis::fmt(model::colinearityR2(sweep.points()), 3));
      row.push_back(analysis::fmt(paperValues[mi], 2));
      std::printf(".");
      std::fflush(stdout);
    }
    table.row(std::move(row));
  }
  std::printf("\n\n%s", table.str().c_str());
  std::printf(
      "\nPaper's correlation to check: EP and x264 (low contention, bursty\n"
      "traffic) have the lowest R^2; the high-contention dwarfs are nearly\n"
      "perfectly colinear, confirming the M/M/1 behaviour of saturated,\n"
      "non-bursty memory traffic.\n");
  return 0;
}
