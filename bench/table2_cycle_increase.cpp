// Table II — normalized increase in number of cycles for small (W) and
// large (C) problem sizes in the HPC dwarfs, at half and all cores of the
// three machines: (C(n) - C(1)) / C(1).
//
// The "paper" columns reproduce Table II of Tudor, Teo & See (ICPP 2011)
// for side-by-side comparison; absolute agreement is not expected (our
// substrate is a scaled simulator), the ordering and magnitudes are.

#include "bench_util.hpp"

namespace {

using namespace occm;

struct PaperRow {
  const char* program;
  // Intel UMA n=4, n=8; Intel NUMA n=12, n=24; AMD n=24, n=48.
  double values[6];
};

constexpr PaperRow kPaperSmall[] = {
    {"EP", {0.00, 0.00, 0.03, 0.57, 0.01, 0.59}},
    {"IS", {0.10, 0.57, 0.33, 0.33, 0.21, 0.44}},
    {"FT", {0.32, 0.58, 0.18, 0.34, 0.11, 0.23}},
    {"CG", {0.01, 0.04, 0.10, 0.43, 0.11, 0.13}},
    {"SP", {0.32, 0.58, 0.10, 0.50, 0.13, 0.21}},
};

constexpr PaperRow kPaperLarge[] = {
    {"EP", {0.00, 0.00, 0.01, 0.54, 0.06, 0.55}},
    {"IS", {0.07, 0.56, 0.26, 0.85, 0.40, 0.70}},
    {"FT", {0.70, 1.80, 1.62, 3.94, 0.39, 0.46}},
    {"CG", {0.91, 2.41, 1.43, 3.31, 0.83, 1.91}},
    {"SP", {3.34, 7.05, 6.55, 11.59, 4.69, 9.84}},
};

void runSize(bool large) {
  const auto machines = topology::paperMachines();
  const PaperRow* paper = large ? kPaperLarge : kPaperSmall;

  analysis::TextTable table;
  table.header({"Program", "UMA n=4", "(paper)", "UMA n=8", "(paper)",
                "NUMA n=12", "(paper)", "NUMA n=24", "(paper)",
                "AMD n=24", "(paper)", "AMD n=48", "(paper)"});

  for (std::size_t p = 0; p < bench::kDwarfs.size(); ++p) {
    const workloads::Program program = bench::kDwarfs[p];
    std::vector<std::string> row{programName(program)};
    int column = 0;
    for (const auto& machine : machines) {
      const workloads::ProblemClass cls =
          large ? bench::largeClassFor(program, machine)
                : workloads::ProblemClass::kW;
      const int full = machine.logicalCores();
      const int half = full / 2;
      const auto sweep =
          bench::sweep(machine, program, cls, {1, half, full});
      const double c1 = sweep.at(1).totalCyclesD();
      for (int n : {half, full}) {
        row.push_back(analysis::fmt(
            model::degreeOfContention(sweep.at(n).totalCyclesD(), c1)));
        row.push_back(analysis::fmt(paper[p].values[column]));
        ++column;
      }
    }
    table.row(std::move(row));
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n%s problem size (%s):\n\n%s",
              large ? "Large" : "Small (W)", large ? "C; FT.B on UMA" : "W",
              table.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  occm::bench::parseBenchArgs(argc, argv);
  occm::bench::printHeading(
      "Table II — normalized increase in number of cycles, "
      "(C(n) - C(1)) / C(1)");
  runSize(/*large=*/false);
  runSize(/*large=*/true);
  return 0;
}
