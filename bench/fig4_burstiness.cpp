// Figure 4 (and Table III) — burstiness of off-chip memory traffic on the
// Intel NUMA machine with 24 threads on 24 cores: P(BurstSize > x) where
// a burst is the number of cache lines requested in one 5 us sampler
// window. The paper's observation: small problem sizes are highly bursty
// (long-tailed CCDF, a straight diagonal in log-log); large sizes
// saturate the memory system and are not bursty.

#include "bench_util.hpp"

namespace {

using namespace occm;

void profileOne(const topology::MachineSpec& machine,
                workloads::Program program, workloads::ProblemClass cls) {
  workloads::WorkloadSpec spec;
  spec.program = program;
  spec.problemClass = cls;
  spec.threads = machine.logicalCores();
  const auto name = workloads::workloadName(program, cls);

  const auto sweep = bench::sweep(machine, program, cls,
                                  {machine.logicalCores()}, /*sampler=*/true);
  const perf::RunProfile& profile = sweep.profiles.front();
  const model::BurstinessReport report =
      model::analyzeBurstiness(profile.missWindows);

  // Table III row: the problem-size description.
  const auto instance = workloads::makeWorkload(spec);
  std::printf("\n%-14s %s\n", name.c_str(), instance.sizeDescription.c_str());
  std::printf("  windows: %llu total, %llu active (idle fraction %.3f)\n",
              static_cast<unsigned long long>(report.totalWindows),
              static_cast<unsigned long long>(report.activeWindows),
              report.idleFraction);
  if (report.activeWindows == 0) {
    std::printf("  no off-chip traffic at all\n");
    return;
  }
  std::printf("  burst size: mean %.1f, max %.0f, cv %.2f\n", report.meanBurst,
              report.maxBurst, report.cv);
  std::printf("  log-log tail: slope %.2f, R^2 %.3f over %zu points\n",
              report.tail.slope, report.tail.r2, report.tail.points);
  std::printf("  classification: %s\n",
              report.bursty ? "BURSTY (long-tailed)" : "NON-BURSTY (saturated)");
  std::printf("  P(BurstSize > x):");
  for (const stats::CcdfPoint& point : report.ccdf) {
    if (point.probability > 0.0) {
      std::printf("  %g:%.1e", point.x, point.probability);
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  occm::bench::parseBenchArgs(argc, argv);
  using occm::workloads::ProblemClass;
  using occm::workloads::Program;
  const auto machine = occm::topology::intelNuma24();

  occm::bench::printHeading(
      "Fig. 4(a) — burstiness of CG across problem sizes (Intel NUMA, "
      "24 threads / 24 cores)");
  for (ProblemClass cls : {ProblemClass::kS, ProblemClass::kW,
                           ProblemClass::kA, ProblemClass::kB,
                           ProblemClass::kC}) {
    profileOne(machine, Program::kCG, cls);
  }

  occm::bench::printHeading("Fig. 4(b) — burstiness of x264 across inputs");
  for (ProblemClass cls :
       {ProblemClass::kSimSmall, ProblemClass::kSimMedium,
        ProblemClass::kSimLarge, ProblemClass::kNative}) {
    profileOne(machine, Program::kX264, cls);
  }

  std::printf(
      "\nPaper's conclusion to check above: S/W (and sim*) inputs show the\n"
      "long-tail property; B/C lose it because the bandwidth is saturated\n"
      "(no significant idle intervals, bursts concentrate near the mean).\n");
  return 0;
}
