// perf_baseline: the simulator's self-benchmark — the source of the
// checked-in BENCH_baseline.json throughput trajectory.
//
// Runs a (workload x topology x pool size) grid of sweeps; each grid cell
// is timed over `--repeats` measured repeats after `--warmup` discarded
// ones and reported as median/IQR/min/max wall time plus the derived
// simulated-cycles/sec and requests/sec. Before anything is reported the
// harness *verifies determinism*: within a cell every repeat must produce
// the same CRC-32 fingerprint of the sweep's CSV, across the cell's pool
// sizes the fingerprints must match, and a control run with the
// self-profiler detached must match too — profiling and parallelism are
// observers, never inputs (DESIGN.md §12).
//
// --quick runs the small test-topology cells only (CI smoke); the full
// grid is a superset, so a quick run's fingerprints can be checked
// against the checked-in baseline via scripts/bench_compare.py.

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/csv.hpp"
#include "bench_util.hpp"
#include "common/crc32.hpp"
#include "obs/profiler.hpp"
#include "perf/bench_record.hpp"
#include "topology/presets.hpp"

namespace {

using namespace occm;

struct GridCell {
  workloads::Program program;
  workloads::ProblemClass problemClass;
  std::string topology;  ///< preset name, as recorded in the JSON
  bool quick;            ///< part of the CI smoke grid
};

topology::MachineSpec presetByName(const std::string& name) {
  if (name == "testUma4") {
    return topology::testUma4();
  }
  if (name == "testNuma4") {
    return topology::testNuma4();
  }
  if (name == "intelUma8") {
    return topology::intelUma8();
  }
  if (name == "intelNuma24") {
    return topology::intelNuma24();
  }
  OCCM_REQUIRE_MSG(false, "unknown topology preset: " + name);
}

/// The benchmark grid. Quick cells use the tiny test machines (seconds in
/// CI); full cells add the paper's machines. Every quick cell is also in
/// the full baseline, which is what lets bench_compare.py check a CI
/// quick run's fingerprints against the checked-in full report.
std::vector<GridCell> gridCells(bool quickOnly) {
  std::vector<GridCell> cells;
  for (const workloads::Program p :
       {workloads::Program::kEP, workloads::Program::kIS,
        workloads::Program::kCG}) {
    for (const char* topo : {"testUma4", "testNuma4"}) {
      cells.push_back({p, workloads::ProblemClass::kS, topo, true});
    }
  }
  if (!quickOnly) {
    for (const workloads::Program p :
         {workloads::Program::kEP, workloads::Program::kIS,
          workloads::Program::kCG}) {
      for (const char* topo : {"intelUma8", "intelNuma24"}) {
        cells.push_back({p, workloads::ProblemClass::kW, topo, false});
      }
    }
  }
  return cells;
}

std::vector<int> coreCountsFor(const topology::MachineSpec& machine) {
  std::vector<int> counts;
  for (const int n : {1, 2, 4, 8}) {
    if (n <= machine.logicalCores()) {
      counts.push_back(n);
    }
  }
  return counts;
}

/// One sweep of the cell. The profiler (nullable) observes host time;
/// the returned sweep is the simulated result.
analysis::SweepResult runCell(const GridCell& cell,
                              const topology::MachineSpec& machine,
                              int poolSize, obs::Profiler* profiler) {
  analysis::SweepConfig config;
  config.machine = machine;
  config.workload.program = cell.program;
  config.workload.problemClass = cell.problemClass;
  config.coreCounts = coreCountsFor(machine);
  config.parallel.workers = poolSize;
  config.sim.profiler = profiler;
  analysis::SweepResult sweep = analysis::runSweep(config);
  OCCM_REQUIRE_MSG(sweep.failures.empty(),
                   "baseline sweep must not have failures: " +
                       sweep.diagnostics());
  return sweep;
}

std::uint32_t fingerprintOf(const analysis::SweepResult& sweep) {
  return crc32(analysis::sweepToCsv(sweep));
}

std::string compilerString() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

std::string buildTypeString() {
#if defined(NDEBUG)
  return "release";
#else
  return "debug";
#endif
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = occm::bench::parseBenchArgs(argc, argv);
  const int repeats = args.repeats > 0 ? args.repeats : (args.quick ? 2 : 5);
  const int warmup = args.warmup >= 0 ? args.warmup : 1;

  perf::BenchReport report;
  report.quick = args.quick;
  report.repeats = repeats;
  report.warmup = warmup;
  report.compiler = compilerString();
  report.buildType = buildTypeString();
  report.obsEnabled = obs::kCompiledIn;
  report.hardwareThreads = perf::detectHardwareThreads();

  bench::printHeading("perf_baseline: simulator throughput grid (" +
                      std::string(args.quick ? "quick" : "full") +
                      ", repeats=" + std::to_string(repeats) +
                      ", warmup=" + std::to_string(warmup) + ")");

  const std::vector<int> poolSizes =
      args.quick ? std::vector<int>{1, 2} : std::vector<int>{1, 4};

  for (const GridCell& cell : gridCells(args.quick)) {
    const topology::MachineSpec machine = presetByName(cell.topology);
    const std::string name =
        workloads::workloadName(cell.program, cell.problemClass);

    // Determinism control: the same cell, serial, with no profiler.
    const std::uint32_t unprofiled =
        fingerprintOf(runCell(cell, machine, 1, nullptr));

    for (const int poolSize : poolSizes) {
      obs::Profiler profiler;
      std::uint32_t fingerprint = 0;
      std::uint64_t simCycles = 0;
      std::uint64_t requests = 0;
      int coreCountsRun = 0;
      std::vector<double> wallMsSamples;
      for (int rep = 0; rep < warmup + repeats; ++rep) {
        const bool measured = rep >= warmup;
        const std::uint64_t t0 = obs::steadyNowNs();
        const analysis::SweepResult sweep =
            runCell(cell, machine, poolSize, measured ? &profiler : nullptr);
        const std::uint64_t wallNs = obs::steadyNowNs() - t0;
        const std::uint32_t fp = fingerprintOf(sweep);
        OCCM_REQUIRE_MSG(fp == unprofiled,
                         "fingerprint diverged from the unprofiled serial "
                         "control in " + name + "@" + cell.topology +
                         " at pool size " + std::to_string(poolSize) +
                         " — profiling or the pool changed the result");
        if (!measured) {
          continue;
        }
        wallMsSamples.push_back(static_cast<double>(wallNs) / 1e6);
        fingerprint = fp;
        simCycles = 0;
        requests = 0;
        coreCountsRun = static_cast<int>(sweep.profiles.size());
        for (const perf::RunProfile& p : sweep.profiles) {
          simCycles += p.counters.totalCycles;
          for (const mem::ControllerStats& c : p.controllerStats) {
            requests += c.requests;
          }
        }
      }

      perf::BenchPoint point;
      point.program = name;
      point.topology = cell.topology;
      point.poolSize = poolSize;
      point.coreCountsRun = coreCountsRun;
      point.repeats = repeats;
      point.fingerprint = fingerprint;
      point.simCycles = simCycles;
      point.requests = requests;
      point.wallMs = perf::summarizeSamples(wallMsSamples);
      const double medianSec = point.wallMs.median / 1e3;
      if (medianSec > 0.0) {
        point.simCyclesPerSec =
            static_cast<double>(simCycles) / medianSec;
        point.requestsPerSec = static_cast<double>(requests) / medianSec;
      }
      for (const obs::PhaseSnapshot& phase : profiler.phases()) {
        point.phases.push_back(
            {phase.name, phase.calls, phase.wallNs, phase.cpuNs});
      }
      report.points.push_back(point);

      std::printf(
          "%-6s %-12s pool=%d  fp=%08x  wall %8.2f ms (iqr %6.2f)  "
          "%10.3g simcyc/s  %10.3g req/s\n",
          name.c_str(), cell.topology.c_str(), poolSize, fingerprint,
          point.wallMs.median, point.wallMs.iqr, point.simCyclesPerSec,
          point.requestsPerSec);
    }
  }

  if (!args.jsonPath.empty()) {
    analysis::writeFile(args.jsonPath, perf::toJson(report));
    std::printf("\nwrote %zu point(s) to %s\n", report.points.size(),
                args.jsonPath.c_str());
  }
  return 0;
}
