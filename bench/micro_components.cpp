// Component microbenchmarks (google-benchmark): throughput of the
// building blocks the experiment harnesses stress — cache lookups, the
// full hierarchy path, memory-system requests, workload stream
// generation, regression fitting and CCDF construction.

#include <benchmark/benchmark.h>

#include <vector>

#include "cache/hierarchy.hpp"
#include "cache/set_assoc_cache.hpp"
#include "common/rng.hpp"
#include "mem/memory_system.hpp"
#include "sim/machine_sim.hpp"
#include "stats/distribution.hpp"
#include "stats/regression.hpp"
#include "topology/presets.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace occm;

void BM_CacheAccessHit(benchmark::State& state) {
  cache::SetAssocCache cache(32 * kKiB, 64, 8);
  for (Addr a = 0; a < 16 * kKiB; a += 64) {
    (void)cache.insert(a, false);
  }
  Addr addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addr, false));
    addr = (addr + 64) % (16 * kKiB);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccessHit);

void BM_CacheAccessMissInsert(benchmark::State& state) {
  cache::SetAssocCache cache(32 * kKiB, 64, 8);
  Addr addr = 0;
  for (auto _ : state) {
    if (!cache.access(addr, false)) {
      (void)cache.insert(addr, false);
    }
    addr += 64;  // endless stream: every access a miss after warmup
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccessMissInsert);

void BM_HierarchyAccess(benchmark::State& state) {
  topology::TopologyMap topo(topology::intelNuma24());
  cache::CacheHierarchy hierarchy(topo);
  Rng rng(1);
  for (auto _ : state) {
    const Addr addr = rng.below(16 * kMiB) & ~Addr{7};
    benchmark::DoNotOptimize(hierarchy.access(0, addr, false));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HierarchyAccess);

void BM_MemoryRequest(benchmark::State& state) {
  topology::TopologyMap topo(topology::intelNuma24());
  mem::MemoryConfig config;
  mem::MemorySystem memory(topo, config, {0, 1});
  Cycles now = 0;
  Rng rng(2);
  for (auto _ : state) {
    now += 100;
    benchmark::DoNotOptimize(
        memory.request(now, 0, rng.below(64 * kMiB)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemoryRequest);

void BM_WorkloadStreamGeneration(benchmark::State& state) {
  workloads::WorkloadSpec spec;
  spec.program = workloads::Program::kCG;
  spec.problemClass = workloads::ProblemClass::kW;
  spec.threads = 1;
  const auto instance = workloads::makeWorkload(spec);
  trace::Op op;
  for (auto _ : state) {
    if (!instance.threads[0]->next(op)) {
      instance.threads[0]->reset();
    }
    benchmark::DoNotOptimize(op);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorkloadStreamGeneration);

void BM_LinearFit(benchmark::State& state) {
  Rng rng(3);
  std::vector<stats::Point> points;
  for (int i = 0; i < 64; ++i) {
    points.push_back({static_cast<double>(i),
                      2.0 * i + rng.uniform(-1.0, 1.0), 1.0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::fitLinear(points));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LinearFit);

void BM_EmpiricalCcdf(benchmark::State& state) {
  Rng rng(4);
  std::vector<double> samples;
  for (int i = 0; i < 10000; ++i) {
    samples.push_back(rng.boundedPareto(1.3, 1.0, 10000.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::empiricalCcdf(samples));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(samples.size()));
}
BENCHMARK(BM_EmpiricalCcdf);

void BM_FullSmallSimulation(benchmark::State& state) {
  workloads::WorkloadSpec spec;
  spec.program = workloads::Program::kCG;
  spec.problemClass = workloads::ProblemClass::kS;
  spec.threads = 4;
  const auto instance = workloads::makeWorkload(spec);
  sim::MachineSim sim(topology::testNuma4());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(instance.threads, 4, instance.name));
  }
}
BENCHMARK(BM_FullSmallSimulation)->Unit(benchmark::kMillisecond);

// Observability overhead proof: the three cases below run the identical
// simulation with (a) tracing compiled in but disabled at runtime — the
// default every other benchmark and test pays, expected within 2% of
// BM_FullSmallSimulation since the hooks reduce to never-taken branches —
// (b) windowed metrics on, and (c) metrics plus the event trace.
void BM_FullSmallSimulationObsDisabled(benchmark::State& state) {
  workloads::WorkloadSpec spec;
  spec.program = workloads::Program::kCG;
  spec.problemClass = workloads::ProblemClass::kS;
  spec.threads = 4;
  const auto instance = workloads::makeWorkload(spec);
  sim::SimConfig config;
  config.observability = obs::ObsConfig{};  // explicit: all off
  sim::MachineSim sim(topology::testNuma4(), config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(instance.threads, 4, instance.name));
  }
}
BENCHMARK(BM_FullSmallSimulationObsDisabled)->Unit(benchmark::kMillisecond);

void BM_FullSmallSimulationObsMetrics(benchmark::State& state) {
  workloads::WorkloadSpec spec;
  spec.program = workloads::Program::kCG;
  spec.problemClass = workloads::ProblemClass::kS;
  spec.threads = 4;
  const auto instance = workloads::makeWorkload(spec);
  sim::SimConfig config;
  config.observability.metrics = true;
  sim::MachineSim sim(topology::testNuma4(), config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(instance.threads, 4, instance.name));
  }
}
BENCHMARK(BM_FullSmallSimulationObsMetrics)->Unit(benchmark::kMillisecond);

void BM_FullSmallSimulationObsFull(benchmark::State& state) {
  workloads::WorkloadSpec spec;
  spec.program = workloads::Program::kCG;
  spec.problemClass = workloads::ProblemClass::kS;
  spec.threads = 4;
  const auto instance = workloads::makeWorkload(spec);
  sim::SimConfig config;
  config.observability.metrics = true;
  config.observability.trace = true;
  sim::MachineSim sim(topology::testNuma4(), config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(instance.threads, 4, instance.name));
  }
}
BENCHMARK(BM_FullSmallSimulationObsFull)->Unit(benchmark::kMillisecond);

// Fault-injection overhead proof: an explicit empty FaultPlan must cost
// nothing — the engine reports idle() and the per-request advanceTo hook
// reduces to a never-taken branch. Expected within noise of
// BM_FullSmallSimulation; the Faulty variant shows what a live scenario
// (outage + throttle + background traffic) actually costs.
void BM_FullSmallSimulationNullFaultPlan(benchmark::State& state) {
  workloads::WorkloadSpec spec;
  spec.program = workloads::Program::kCG;
  spec.problemClass = workloads::ProblemClass::kS;
  spec.threads = 4;
  const auto instance = workloads::makeWorkload(spec);
  sim::SimConfig config;
  config.faultPlan = fault::FaultPlan{};  // explicit: no faults scripted
  sim::MachineSim sim(topology::testNuma4(), config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(instance.threads, 4, instance.name));
  }
}
BENCHMARK(BM_FullSmallSimulationNullFaultPlan)->Unit(benchmark::kMillisecond);

void BM_FullSmallSimulationFaultActive(benchmark::State& state) {
  workloads::WorkloadSpec spec;
  spec.program = workloads::Program::kCG;
  spec.problemClass = workloads::ProblemClass::kS;
  spec.threads = 4;
  const auto instance = workloads::makeWorkload(spec);
  sim::SimConfig config;
  config.faultPlan.controllerOutage(1, 20'000, 120'000)
      .coreThrottle(0, 10'000, 60'000, 2.0)
      .backgroundTraffic(0, 0, 50'000, 500);
  sim::MachineSim sim(topology::testNuma4(), config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(instance.threads, 4, instance.name));
  }
}
BENCHMARK(BM_FullSmallSimulationFaultActive)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
