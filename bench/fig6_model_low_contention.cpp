// Figure 6 — model vs. measured omega(n) for the low-contention program
// EP.C on the three machines. The paper's observations: contention is
// negligible on UMA; on the NUMA machines the model cannot capture the
// contention rise beyond one processor because EP's LLC misses *grow*
// with active cores (false sharing), violating the model's constant-r(n)
// assumption — model accuracy is intentionally worse here.

#include "bench_util.hpp"

namespace {

using namespace occm;

void runMachine(const topology::MachineSpec& machine) {
  bench::printHeading("Fig. 6 — EP.C model vs. measurement on " +
                      machine.name);
  const auto sweep = bench::sweep(machine, workloads::Program::kEP,
                                  workloads::ProblemClass::kC,
                                  bench::allCores(machine));
  const model::MachineShape shape = model::shapeOf(machine);
  const auto fitPoints =
      analysis::pointsAt(sweep, model::defaultFitCores(shape));
  const model::ContentionModel m =
      model::ContentionModel::fit(shape, fitPoints);
  const model::ValidationReport report = model::validate(m, sweep.points());

  analysis::TextTable table;
  table.header({"cores", "omega measured", "omega model", "LLC misses",
                "coherence misses"});
  for (const model::ValidationRow& row : report.rows) {
    const perf::RunProfile& p = sweep.at(row.cores);
    table.row({std::to_string(row.cores), analysis::fmt(row.measuredOmega),
               analysis::fmt(row.predictedOmega),
               std::to_string(p.counters.llcMisses),
               std::to_string(p.coherenceMisses)});
  }
  std::printf("%s", table.str().c_str());
  std::printf("\nmean relative error: %.1f%% (the paper's model is also "
              "least accurate here)\n",
              100.0 * report.meanRelativeError);
  const auto& first = sweep.profiles.front();
  const auto& last = sweep.profiles.back();
  std::printf("LLC misses grow %llu -> %llu with active cores "
              "(paper: 1.8e3 -> 3.1e7 on Intel NUMA) — the violated "
              "model assumption\n",
              static_cast<unsigned long long>(first.counters.llcMisses),
              static_cast<unsigned long long>(last.counters.llcMisses));
}

}  // namespace

int main(int argc, char** argv) {
  occm::bench::parseBenchArgs(argc, argv);
  for (const auto& machine : occm::topology::paperMachines()) {
    runMachine(machine);
  }
  return 0;
}
