#pragma once

// Shared helpers for the experiment harnesses in bench/: the paper's
// machine list, program sets and printing conventions.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/text_table.hpp"
#include "core/occm.hpp"
#include "exec/thread_pool.hpp"

namespace occm::bench {

/// Sweep pool size shared by the drivers: 0 (the default) resolves to
/// OCCM_SWEEP_WORKERS or hardware concurrency; parseWorkers overrides it
/// from the command line.
inline int& sweepWorkers() {
  static int workers = 0;
  return workers;
}

/// Command-line arguments shared by every bench driver. Drivers that only
/// need the pool size may ignore the returned struct — parseBenchArgs
/// also stores workers into sweepWorkers().
struct BenchArgs {
  int workers = 0;       ///< sweep pool size; 0 resolves via env/hardware
  int repeats = 0;       ///< measured repeats; 0 = driver default
  int warmup = -1;       ///< warmup repeats; -1 = driver default
  bool quick = false;    ///< reduced CI grid (perf_baseline)
  std::string jsonPath;  ///< BENCH_*.json output path; empty = none
};

/// Strict shared argument parser: accepts --workers=N, --repeats=N,
/// --warmup=N, --json=PATH, --quick and --help, and *errors out* (usage
/// on stderr, exit code 2) on anything unrecognized or malformed —
/// replacing the old parseWorkers, which silently ignored every flag it
/// did not know, typos included.
inline BenchArgs parseBenchArgs(int argc, char** argv) {
  const auto usage = [&](std::FILE* to) {
    std::fprintf(
        to,
        "usage: %s [--workers=N] [--repeats=N] [--warmup=N] [--json=PATH] "
        "[--quick]\n"
        "  --workers=N  sweep pool size (default: OCCM_SWEEP_WORKERS or "
        "hardware concurrency)\n"
        "  --repeats=N  measured repeats per grid point (default: driver)\n"
        "  --warmup=N   discarded warmup repeats (default: driver)\n"
        "  --json=PATH  write a BENCH_*.json report to PATH\n"
        "  --quick      reduced grid for CI smoke runs\n",
        argc > 0 ? argv[0] : "bench");
  };
  const auto die = [&](const std::string& why) {
    std::fprintf(stderr, "error: %s\n", why.c_str());
    usage(stderr);
    std::exit(2);
  };
  // Positive-integer flag value; dies on garbage, zero or trailing bytes.
  const auto intValue = [&](const std::string& arg, std::size_t eq) {
    const std::string digits = arg.substr(eq + 1);
    char* end = nullptr;
    const long value = std::strtol(digits.c_str(), &end, 10);
    if (digits.empty() || *end != '\0' || value < 1 || value > 1 << 20) {
      die("bad value in \"" + arg + "\" (want an integer >= 1)");
    }
    return static_cast<int>(value);
  };
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    const std::string flag = arg.substr(0, eq);
    if (flag == "--help" || flag == "-h") {
      usage(stdout);
      std::exit(0);
    } else if (flag == "--quick") {
      if (eq != std::string::npos) {
        die("--quick takes no value: \"" + arg + "\"");
      }
      args.quick = true;
    } else if (flag == "--workers" || flag == "--repeats" ||
               flag == "--warmup" || flag == "--json") {
      if (eq == std::string::npos) {
        die("\"" + arg + "\" needs a value: " + flag + "=...");
      }
      if (flag == "--json") {
        args.jsonPath = arg.substr(eq + 1);
        if (args.jsonPath.empty()) {
          die("--json needs a non-empty path");
        }
      } else if (flag == "--workers") {
        args.workers = intValue(arg, eq);
      } else if (flag == "--repeats") {
        args.repeats = intValue(arg, eq);
      } else {
        args.warmup = intValue(arg, eq);
      }
    } else {
      die("unrecognized argument \"" + arg + "\"");
    }
  }
  sweepWorkers() = args.workers;
  std::printf("sweep pool size: %d\n",
              exec::resolveWorkerCount(sweepWorkers()));
  return args;
}

/// The five NPB dwarfs of Table I, in the paper's row order.
inline const std::vector<workloads::Program> kDwarfs = {
    workloads::Program::kEP, workloads::Program::kIS,
    workloads::Program::kFT, workloads::Program::kCG,
    workloads::Program::kSP};

/// Large problem class per program and machine: class C, except FT.B on
/// the UMA machine (the paper: FT.C swaps on the 4 GB UMA box).
inline workloads::ProblemClass largeClassFor(workloads::Program program,
                                             const topology::MachineSpec& m) {
  if (program == workloads::Program::kFT &&
      m.memoryArchitecture == topology::MemoryArchitecture::kUma) {
    return workloads::ProblemClass::kB;
  }
  if (program == workloads::Program::kX264) {
    return workloads::ProblemClass::kNative;
  }
  return workloads::ProblemClass::kC;
}

/// Runs one (program, class, machine, cores) grid and returns the sweep.
/// Runs the core counts on the shared sweepWorkers() pool (bit-identical
/// output for any pool size).
inline analysis::SweepResult sweep(const topology::MachineSpec& machine,
                                   workloads::Program program,
                                   workloads::ProblemClass cls,
                                   std::vector<int> coreCounts,
                                   bool sampler = false) {
  analysis::SweepConfig config;
  config.machine = machine;
  config.workload.program = program;
  config.workload.problemClass = cls;
  config.coreCounts = std::move(coreCounts);
  config.sim.enableSampler = sampler;
  config.parallel.workers = sweepWorkers();
  return analysis::runSweep(config);
}

/// All core counts 1..max for a machine.
inline std::vector<int> allCores(const topology::MachineSpec& machine) {
  std::vector<int> counts;
  for (int n = 1; n <= machine.logicalCores(); ++n) {
    counts.push_back(n);
  }
  return counts;
}

/// Observability column group shared by the experiment drivers: the
/// per-controller snapshot (busiest-controller utilization, aggregate
/// row-hit ratio, request-weighted mean queue wait) that pairs the
/// paper's cycle counters with the memory-system view.
inline std::vector<std::string> obsHeader() {
  return {"util", "row-hit", "wait [cyc]"};
}

inline std::vector<std::string> obsRow(const perf::RunProfile& p) {
  double util = 0.0;
  for (std::size_t i = 0; i < p.controllerStats.size(); ++i) {
    util = std::max(util, p.controllerUtilization(i));
  }
  double rowHit = 0.0;
  double wait = 0.0;
  std::uint64_t requests = 0;
  for (const mem::ControllerStats& c : p.controllerStats) {
    rowHit += c.rowHitRatio() * static_cast<double>(c.requests);
    wait += c.meanWait() * static_cast<double>(c.requests);
    requests += c.requests;
  }
  const double denom = requests == 0 ? 1.0 : static_cast<double>(requests);
  return {analysis::fmt(100.0 * util, 1) + "%",
          analysis::fmt(100.0 * rowHit / denom, 1) + "%",
          analysis::fmt(wait / denom, 1)};
}

/// Appends the obs column group to a header/row cell list.
inline std::vector<std::string> withObs(std::vector<std::string> cells,
                                        std::vector<std::string> obsCells) {
  for (std::string& cell : obsCells) {
    cells.push_back(std::move(cell));
  }
  return cells;
}

inline void printHeading(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace occm::bench
