#pragma once

// Shared helpers for the experiment harnesses in bench/: the paper's
// machine list, program sets and printing conventions.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/text_table.hpp"
#include "core/occm.hpp"

namespace occm::bench {

/// The five NPB dwarfs of Table I, in the paper's row order.
inline const std::vector<workloads::Program> kDwarfs = {
    workloads::Program::kEP, workloads::Program::kIS,
    workloads::Program::kFT, workloads::Program::kCG,
    workloads::Program::kSP};

/// Large problem class per program and machine: class C, except FT.B on
/// the UMA machine (the paper: FT.C swaps on the 4 GB UMA box).
inline workloads::ProblemClass largeClassFor(workloads::Program program,
                                             const topology::MachineSpec& m) {
  if (program == workloads::Program::kFT &&
      m.memoryArchitecture == topology::MemoryArchitecture::kUma) {
    return workloads::ProblemClass::kB;
  }
  if (program == workloads::Program::kX264) {
    return workloads::ProblemClass::kNative;
  }
  return workloads::ProblemClass::kC;
}

/// Runs one (program, class, machine, cores) grid and returns the sweep.
inline analysis::SweepResult sweep(const topology::MachineSpec& machine,
                                   workloads::Program program,
                                   workloads::ProblemClass cls,
                                   std::vector<int> coreCounts,
                                   bool sampler = false) {
  analysis::SweepConfig config;
  config.machine = machine;
  config.workload.program = program;
  config.workload.problemClass = cls;
  config.coreCounts = std::move(coreCounts);
  config.sim.enableSampler = sampler;
  return analysis::runSweep(config);
}

/// All core counts 1..max for a machine.
inline std::vector<int> allCores(const topology::MachineSpec& machine) {
  std::vector<int> counts;
  for (int n = 1; n <= machine.logicalCores(); ++n) {
    counts.push_back(n);
  }
  return counts;
}

inline void printHeading(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace occm::bench
