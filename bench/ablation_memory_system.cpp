// Ablation bench — sensitivity of the contention result to the memory-
// system design choices DESIGN.md calls out (the paper lists these as
// model extensions in section VI): number of channels, DRAM service
// discipline, page placement, prefetch MLP and interconnect bandwidth.
// Metric: omega at full cores for CG.C on the Intel NUMA machine.

#include "bench_util.hpp"

namespace {

using namespace occm;

double omegaAtFull(const topology::MachineSpec& machine,
                   const sim::SimConfig& simConfig) {
  analysis::SweepConfig config;
  config.machine = machine;
  config.workload.program = workloads::Program::kCG;
  config.workload.problemClass = workloads::ProblemClass::kC;
  config.sim = simConfig;
  config.coreCounts = {1, machine.logicalCores()};
  config.parallel.workers = bench::sweepWorkers();
  const auto sweep = analysis::runSweep(config);
  return model::degreeOfContention(
      sweep.at(machine.logicalCores()).totalCyclesD(),
      sweep.at(1).totalCyclesD());
}

void report(const std::string& label, double omega, double baseline) {
  std::printf("  %-44s omega(24) = %6.2f   (%+5.1f%% vs baseline)\n",
              label.c_str(), omega, 100.0 * (omega / baseline - 1.0));
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  bench::parseBenchArgs(argc, argv);
  using topology::MachineSpec;
  const MachineSpec base = topology::intelNuma24();
  const sim::SimConfig defaults;

  occm::bench::printHeading(
      "Ablation — CG.C contention vs. memory-system design choices "
      "(Intel NUMA)");

  const double baseline = omegaAtFull(base, defaults);
  report("baseline (3 channels, exp. service, interleave)", baseline,
         baseline);

  // Memory channels per controller (Sancho et al.'s trade-off).
  for (int channels : {1, 2, 6}) {
    MachineSpec m = base;
    m.channelsPerController = channels;
    report("channels per controller = " + std::to_string(channels),
           omegaAtFull(m, defaults), baseline);
  }

  // Service discipline: deterministic vs exponential row service.
  {
    sim::SimConfig deterministic = defaults;
    deterministic.memory.service = mem::ServiceDiscipline::kDeterministic;
    report("deterministic DRAM service (M/D/1-like)",
           omegaAtFull(base, deterministic), baseline);
  }

  // Page placement policies.
  {
    sim::SimConfig local = defaults;
    local.memory.placement = mem::PlacementPolicy::kLocal;
    report("placement = local (no remote traffic)", omegaAtFull(base, local),
           baseline);
    sim::SimConfig firstTouch = defaults;
    firstTouch.memory.placement = mem::PlacementPolicy::kFirstTouch;
    report("placement = first-touch", omegaAtFull(base, firstTouch),
           baseline);
    sim::SimConfig proportional = defaults;
    proportional.memory.placement =
        mem::PlacementPolicy::kProportionalInterleave;
    report("placement = proportional (eq. 10 c/n split)",
           omegaAtFull(base, proportional), baseline);
  }

  // Prefetch MLP (how much stream latency cores hide).
  for (int mlp : {1, 2, 8}) {
    MachineSpec m = base;
    m.prefetchMlp = mlp;
    report("prefetch MLP = " + std::to_string(mlp), omegaAtFull(m, defaults),
           baseline);
  }

  // Interconnect bandwidth: infinite vs calibrated QPI.
  {
    MachineSpec m = base;
    m.linkServiceCycles = 0;
    report("infinite interconnect bandwidth", omegaAtFull(m, defaults),
           baseline);
  }

  // Row-buffer sensitivity: no locality benefit (every access a row miss).
  {
    MachineSpec m = base;
    m.rowHitServiceCycles = m.rowMissServiceCycles;
    report("no row-buffer locality (hit = miss cost)",
           omegaAtFull(m, defaults), baseline);
  }

  // Additional controllers (the paper's 'adding memory controllers
  // reduces the memory contention').
  {
    MachineSpec m = base;
    m.diesPerSocket = 2;
    m.coresPerDie = 3;
    m.controllerScope = topology::ControllerScope::kPerDie;
    m.hopMatrix = {{0, 1, 1, 2}, {1, 0, 2, 1}, {1, 2, 0, 1}, {2, 1, 1, 0}};
    m.validate();
    report("4 controllers (2 per socket, same cores)",
           omegaAtFull(m, defaults), baseline);
  }
  return 0;
}
