// Figure 5 — model vs. measured degree of memory contention omega(n) for
// the high-contention program CG.C on the three machines, using the
// paper's regression inputs: C(1), C(4), C(5) on Intel UMA; C(1), C(2),
// C(12), C(13) on Intel NUMA; C(1), C(12), C(13), C(25), C(37) on AMD
// (heterogeneous interconnect). The paper reports 5-14% average relative
// error; it also reports that assuming a homogeneous interconnect on AMD
// (three regression inputs) degrades the error to ~25%.

#include "bench_util.hpp"

namespace {

using namespace occm;

void runMachine(const topology::MachineSpec& machine) {
  bench::printHeading("Fig. 5 — CG.C model vs. measurement on " +
                      machine.name);
  const auto sweep = bench::sweep(machine, workloads::Program::kCG,
                                  workloads::ProblemClass::kC,
                                  bench::allCores(machine));
  const model::MachineShape shape = model::shapeOf(machine);
  const auto fitCores = model::defaultFitCores(shape);
  std::printf("regression inputs: C(n) at n =");
  for (int n : fitCores) {
    std::printf(" %d", n);
  }
  std::printf("\n\n");

  const auto fitPoints = analysis::pointsAt(sweep, fitCores);
  const model::ContentionModel m =
      model::ContentionModel::fit(shape, fitPoints);
  const model::ValidationReport report = model::validate(m, sweep.points());

  analysis::TextTable table;
  table.header({"cores", "omega measured", "omega model", "rel. error"});
  for (const model::ValidationRow& row : report.rows) {
    table.row({std::to_string(row.cores), analysis::fmt(row.measuredOmega),
               analysis::fmt(row.predictedOmega),
               analysis::fmt(100.0 * row.relativeError, 1) + "%"});
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nmean relative error (cycles): %.1f%%   (paper: 5-14%% average "
      "on high-contention programs)\n",
      100.0 * report.meanRelativeError);
  std::printf("single-processor fit: mu/r = %.3e, L/r = %.3e, R^2 = %.3f, "
              "saturation at n = %.1f\n",
              m.singleProcessor().muOverR(), m.singleProcessor().lOverR(),
              m.singleProcessor().fitInfo().r2,
              m.singleProcessor().saturationCores());

  // The paper's homogeneous-interconnect degradation on AMD.
  if (shape.processors > 2) {
    model::ContentionModel::Options homogeneous;
    homogeneous.homogeneousRemote = true;
    const auto threePoints = analysis::pointsAt(
        sweep, {1, shape.coresPerProcessor, shape.coresPerProcessor + 1});
    const model::ContentionModel hm =
        model::ContentionModel::fit(shape, threePoints, homogeneous);
    const model::ValidationReport hreport = model::validate(hm, sweep.points());
    std::printf(
        "homogeneous-interconnect variant (3 inputs): %.1f%% mean error "
        "(paper: degrades to ~25%%)\n",
        100.0 * hreport.meanRelativeError);
  }
}

}  // namespace

int main(int argc, char** argv) {
  occm::bench::parseBenchArgs(argc, argv);
  for (const auto& machine : occm::topology::paperMachines()) {
    runMachine(machine);
  }
  return 0;
}
