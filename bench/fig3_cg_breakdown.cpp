// Figure 3 — CG.C: total cycles, stalled cycles, work cycles and
// last-level-cache misses as the number of active cores varies, on the
// three machines. The paper's observations to verify in the output:
//   1. total cycles grow non-uniformly with a per-processor shape
//      (drops where a new memory controller comes online);
//   2. the growth is entirely in stall cycles;
//   3. work cycles and LLC misses stay roughly constant.

#include "bench_util.hpp"

namespace {

using namespace occm;

void runMachine(const topology::MachineSpec& machine) {
  bench::printHeading("Fig. 3 — CG.C on " + machine.name);
  const auto sweep = bench::sweep(machine, workloads::Program::kCG,
                                  workloads::ProblemClass::kC,
                                  bench::allCores(machine));
  analysis::TextTable table;
  table.header(bench::withObs({"cores", "total [1e9]", "stall [1e9]",
                               "work [1e9]", "LLC misses [1e6]",
                               "coherence [1e3]", "omega"},
                              bench::obsHeader()));
  const double c1 = sweep.at(1).totalCyclesD();
  for (const perf::RunProfile& p : sweep.profiles) {
    table.row(bench::withObs(
        {std::to_string(p.activeCores),
         analysis::fmt(static_cast<double>(p.counters.totalCycles) / 1e9, 3),
         analysis::fmt(static_cast<double>(p.counters.stallCycles) / 1e9, 3),
         analysis::fmt(static_cast<double>(p.counters.workCycles()) / 1e9, 3),
         analysis::fmt(static_cast<double>(p.counters.llcMisses) / 1e6, 2),
         analysis::fmt(static_cast<double>(p.coherenceMisses) / 1e3, 1),
         analysis::fmt(model::degreeOfContention(p.totalCyclesD(), c1))},
        bench::obsRow(p)));
  }
  std::printf("%s", table.str().c_str());

  // The three observations, checked numerically over the sweep.
  const auto& first = sweep.profiles.front();
  const auto& last = sweep.profiles.back();
  const double stallGrowth =
      static_cast<double>(last.counters.stallCycles -
                          first.counters.stallCycles);
  const double totalGrowth =
      static_cast<double>(last.counters.totalCycles -
                          first.counters.totalCycles);
  std::printf("\nstall share of total-cycle growth : %5.1f%% (paper: ~100%%)\n",
              totalGrowth > 0 ? 100.0 * stallGrowth / totalGrowth : 0.0);
  std::printf("work-cycle change 1 -> max cores  : %+5.1f%% (paper: ~0%%)\n",
              100.0 * (static_cast<double>(last.counters.workCycles()) /
                           static_cast<double>(first.counters.workCycles()) -
                       1.0));
  std::printf("LLC-miss change 1 -> max cores    : %+5.1f%% (paper: small)\n",
              100.0 * (static_cast<double>(last.counters.llcMisses) /
                           static_cast<double>(first.counters.llcMisses) -
                       1.0));
}

}  // namespace

int main(int argc, char** argv) {
  occm::bench::parseBenchArgs(argc, argv);
  for (const auto& machine : occm::topology::paperMachines()) {
    runMachine(machine);
  }
  return 0;
}
