#include "cache/coherence.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace occm::cache {
namespace {

TEST(CoherenceDirectory, ReadersAccumulateAsSharers) {
  CoherenceDirectory dir(4);
  EXPECT_TRUE(dir.onAccess(0, 0, false).empty());
  EXPECT_TRUE(dir.onAccess(0, 1, false).empty());
  EXPECT_TRUE(dir.onAccess(0, 2, false).empty());
  EXPECT_FALSE(dir.isInvalidatedFor(0, 0));
  EXPECT_FALSE(dir.isInvalidatedFor(0, 2));
  EXPECT_EQ(dir.stats().upgrades, 0u);
}

TEST(CoherenceDirectory, WriteInvalidatesOtherSharers) {
  CoherenceDirectory dir(4);
  (void)dir.onAccess(0, 0, false);
  (void)dir.onAccess(0, 1, false);
  const auto victims = dir.onAccess(0, 2, true);
  EXPECT_EQ(victims, (std::vector<CoreId>{0, 1}));
  EXPECT_TRUE(dir.isInvalidatedFor(0, 0));
  EXPECT_TRUE(dir.isInvalidatedFor(0, 1));
  EXPECT_FALSE(dir.isInvalidatedFor(0, 2));
  EXPECT_EQ(dir.ownerOf(0), 2);
  EXPECT_EQ(dir.stats().upgrades, 1u);
  EXPECT_EQ(dir.stats().invalidationsSent, 2u);
}

TEST(CoherenceDirectory, WriteWithNoOtherSharerIsSilent) {
  CoherenceDirectory dir(4);
  (void)dir.onAccess(0, 1, true);
  EXPECT_TRUE(dir.onAccess(0, 1, true).empty());
  EXPECT_EQ(dir.stats().upgrades, 0u);
}

TEST(CoherenceDirectory, ReadAfterRemoteWriteIsCoherenceMiss) {
  CoherenceDirectory dir(4);
  (void)dir.onAccess(0, 0, true);
  (void)dir.onAccess(0, 1, false);
  EXPECT_EQ(dir.stats().coherenceMisses, 1u);
  // Re-reading by the owner is not a coherence miss.
  (void)dir.onAccess(0, 0, false);
  EXPECT_EQ(dir.stats().coherenceMisses, 1u);
}

TEST(CoherenceDirectory, UntrackedLineIsNotInvalidated) {
  CoherenceDirectory dir(2);
  EXPECT_FALSE(dir.isInvalidatedFor(123, 0));
  EXPECT_EQ(dir.ownerOf(123), -1);
}

TEST(CoherenceDirectory, AlternatingWritersPingPong) {
  CoherenceDirectory dir(2);
  std::size_t invalidations = 0;
  (void)dir.onAccess(0, 0, true);
  for (int i = 0; i < 10; ++i) {
    invalidations += dir.onAccess(0, i % 2 == 0 ? 1 : 0, true).size();
  }
  EXPECT_EQ(invalidations, 10u);
}

TEST(CoherenceDirectory, EvictionDropsSharerAndCleansUp) {
  CoherenceDirectory dir(2);
  (void)dir.onAccess(0, 0, false);
  (void)dir.onAccess(0, 1, false);
  EXPECT_EQ(dir.trackedLines(), 1u);
  dir.onEviction(0, 0);
  // Core 0 is no longer a sharer, so a write by core 1 invalidates no one.
  EXPECT_TRUE(dir.onAccess(0, 1, true).empty());
  dir.onEviction(0, 1);
  EXPECT_EQ(dir.trackedLines(), 0u);
}

TEST(CoherenceDirectory, DistinctLinesIndependent) {
  CoherenceDirectory dir(2);
  (void)dir.onAccess(0, 0, true);
  (void)dir.onAccess(64, 1, true);
  EXPECT_FALSE(dir.isInvalidatedFor(64, 1));
  // Core 0 holds no copy of the written line 64, so its copies count as
  // invalid until it re-reads (the refetch is handled by the hierarchy).
  EXPECT_TRUE(dir.isInvalidatedFor(64, 0));
  (void)dir.onAccess(64, 0, false);
  EXPECT_FALSE(dir.isInvalidatedFor(64, 0));
}

TEST(CoherenceDirectory, ReadSharedLinesNeverInvalidate) {
  // No write ever happens: any number of readers coexist and none is
  // considered invalidated (read-only data such as CG's iterate vector).
  CoherenceDirectory dir(4);
  (void)dir.onAccess(0, 0, false);
  (void)dir.onAccess(0, 3, false);
  EXPECT_FALSE(dir.isInvalidatedFor(0, 0));
  EXPECT_FALSE(dir.isInvalidatedFor(0, 1));  // cold, but nothing modified
  EXPECT_FALSE(dir.isInvalidatedFor(0, 3));
  EXPECT_EQ(dir.ownerOf(0), -1);
}

TEST(CoherenceDirectory, SupportsUpTo64Cores) {
  EXPECT_NO_THROW(CoherenceDirectory(64));
  EXPECT_THROW((void)CoherenceDirectory(65), ContractViolation);
  EXPECT_THROW((void)CoherenceDirectory(0), ContractViolation);
}

TEST(CoherenceDirectory, ClearResetsEverything) {
  CoherenceDirectory dir(2);
  (void)dir.onAccess(0, 0, true);
  (void)dir.onAccess(0, 1, true);
  dir.clear();
  EXPECT_EQ(dir.trackedLines(), 0u);
  EXPECT_EQ(dir.stats().upgrades, 0u);
  EXPECT_FALSE(dir.isInvalidatedFor(0, 0));
}

}  // namespace
}  // namespace occm::cache
