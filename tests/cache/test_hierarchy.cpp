#include "cache/hierarchy.hpp"

#include <gtest/gtest.h>

#include "topology/presets.hpp"
#include "topology/topology_map.hpp"
#include "trace/address_space.hpp"

namespace occm::cache {
namespace {

// testNuma4: 2 sockets x 2 cores, L1 1 KiB/core (hit 2), L2 8 KiB/socket
// (hit 10). Cores 0,1 on socket 0; cores 2,3 on socket 1.

class HierarchyTest : public ::testing::Test {
 protected:
  HierarchyTest() : topo_(topology::testNuma4()), hierarchy_(topo_) {}

  topology::TopologyMap topo_;
  CacheHierarchy hierarchy_;
};

TEST_F(HierarchyTest, ColdMissGoesOffChipThenHitsL1) {
  const AccessResult miss = hierarchy_.access(0, 0, false);
  EXPECT_EQ(miss.hitLevel, 0);
  EXPECT_TRUE(miss.offChip);
  EXPECT_EQ(miss.latency, 2u + 10u);  // searched both levels
  const AccessResult hit = hierarchy_.access(0, 0, false);
  EXPECT_EQ(hit.hitLevel, 1);
  EXPECT_FALSE(hit.offChip);
  EXPECT_EQ(hit.latency, 2u);
}

TEST_F(HierarchyTest, SameSocketNeighborHitsSharedLlc) {
  (void)hierarchy_.access(0, 0, false);
  const AccessResult res = hierarchy_.access(1, 0, false);
  EXPECT_EQ(res.hitLevel, 2);
  EXPECT_FALSE(res.offChip);
}

TEST_F(HierarchyTest, OtherSocketMissesOffChip) {
  (void)hierarchy_.access(0, 0, false);
  const AccessResult res = hierarchy_.access(2, 0, false);
  EXPECT_TRUE(res.offChip);
  EXPECT_FALSE(res.coherenceMiss);  // plain cold miss, not invalidation
}

TEST_F(HierarchyTest, LlcMissCounterAggregates) {
  (void)hierarchy_.access(0, 0, false);
  (void)hierarchy_.access(0, 64, false);
  (void)hierarchy_.access(2, 128, false);
  EXPECT_EQ(hierarchy_.llcMisses(), 3u);
}

TEST_F(HierarchyTest, CapacityEvictionWritesBack) {
  // Dirty a line, then stream 4x the 8 KiB LLC through core 0 to force
  // the dirty line out of the LLC.
  (void)hierarchy_.access(0, 0, true);
  bool sawWriteback = false;
  for (Addr a = 1 * kMiB; a < 1 * kMiB + 32 * kKiB; a += 64) {
    const AccessResult res = hierarchy_.access(0, a, false);
    sawWriteback = sawWriteback || (res.writeback && res.writebackLine == 0);
  }
  EXPECT_TRUE(sawWriteback);
}

TEST_F(HierarchyTest, SameSocketFalseSharingStaysOnChip) {
  // Writer core 0 and reader core 1 share the socket LLC: after the
  // write-invalidation, the reader refetches from the LLC, not memory.
  (void)hierarchy_.access(1, 0, false);  // reader caches the line
  (void)hierarchy_.access(0, 0, true);   // writer invalidates reader's L1
  const AccessResult res = hierarchy_.access(1, 0, false);
  EXPECT_FALSE(res.offChip);
  EXPECT_EQ(res.hitLevel, 2);
}

TEST_F(HierarchyTest, CrossSocketFalseSharingGoesOffChip) {
  (void)hierarchy_.access(2, 0, false);  // socket-1 core caches the line
  (void)hierarchy_.access(0, 0, true);   // socket-0 write invalidates it
  const AccessResult res = hierarchy_.access(2, 0, false);
  EXPECT_TRUE(res.offChip);
  EXPECT_TRUE(res.coherenceMiss);
}

TEST_F(HierarchyTest, PrivateAddressesSkipTheDirectory) {
  const Addr priv = trace::AddressSpace::kPrivateBase;
  (void)hierarchy_.access(0, priv, true);
  (void)hierarchy_.access(0, priv, true);
  EXPECT_EQ(hierarchy_.coherenceStats().upgrades, 0u);
}

TEST_F(HierarchyTest, UpgradeAddsLatency) {
  (void)hierarchy_.access(1, 0, false);
  (void)hierarchy_.access(0, 0, false);
  // Core 0 now upgrades a shared line: extra invalidation latency beyond
  // a plain L1 hit.
  const AccessResult upgrade = hierarchy_.access(0, 0, true);
  EXPECT_EQ(upgrade.hitLevel, 1);
  EXPECT_GT(upgrade.latency, 2u);
}

TEST_F(HierarchyTest, FlushDropsContentKeepsNothingCached) {
  (void)hierarchy_.access(0, 0, false);
  hierarchy_.flush();
  const AccessResult res = hierarchy_.access(0, 0, false);
  EXPECT_TRUE(res.offChip);
}

TEST_F(HierarchyTest, StatsPerInstanceAccessible) {
  (void)hierarchy_.access(0, 0, false);
  EXPECT_EQ(hierarchy_.stats(1, 0).accesses, 1u);
  EXPECT_EQ(hierarchy_.stats(1, 1).accesses, 0u);
  EXPECT_EQ(hierarchy_.stats(2, 0).accesses, 1u);
  EXPECT_EQ(hierarchy_.levels(), 2);
  EXPECT_EQ(hierarchy_.lineSize(), 64u);
}

TEST(HierarchySmt, SiblingsSharePrivateCaches) {
  topology::TopologyMap topo(topology::intelNuma24());
  CacheHierarchy hierarchy(topo);
  // Logical cores 0 and 1 are SMT siblings (same physical core).
  (void)hierarchy.access(0, 0, false);
  const AccessResult res = hierarchy.access(1, 0, false);
  EXPECT_EQ(res.hitLevel, 1);
}

TEST(HierarchyEpPattern, MissesGrowWithWriterSpread) {
  // EP's mechanism: a falsely shared line written by cores on both
  // sockets produces off-chip coherence misses; written by cores of one
  // socket it does not.
  topology::TopologyMap topo(topology::testNuma4());
  {
    CacheHierarchy sameSocket(topo);
    for (int i = 0; i < 100; ++i) {
      (void)sameSocket.access(i % 2 == 0 ? 0 : 1, 0, true);
    }
    EXPECT_LE(sameSocket.llcMisses(), 2u);
  }
  {
    CacheHierarchy crossSocket(topo);
    std::uint64_t coherenceMisses = 0;
    for (int i = 0; i < 100; ++i) {
      const auto res = crossSocket.access(i % 2 == 0 ? 0 : 2, 0, true);
      coherenceMisses += res.coherenceMiss ? 1 : 0;
    }
    EXPECT_GT(coherenceMisses, 90u);
  }
}

}  // namespace
}  // namespace occm::cache
