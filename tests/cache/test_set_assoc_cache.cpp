#include "cache/set_assoc_cache.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace occm::cache {
namespace {

TEST(SetAssocCache, ColdMissThenHit) {
  SetAssocCache cache(1024, 64, 2);
  EXPECT_FALSE(cache.access(0, false));
  EXPECT_TRUE(cache.insert(0, false) == std::nullopt);
  EXPECT_TRUE(cache.access(0, false));
  EXPECT_EQ(cache.stats().accesses, 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(SetAssocCache, SameLineDifferentOffsetsHit) {
  SetAssocCache cache(1024, 64, 2);
  (void)cache.insert(128, false);
  EXPECT_TRUE(cache.access(128 + 63, false));
  EXPECT_FALSE(cache.contains(192));
}

TEST(SetAssocCache, LruEvictionOrder) {
  // Direct construct a tiny fully-associative-in-one-set shape by filling
  // one set: use a cache with 1 set (size = ways * line).
  SetAssocCache cache(2 * 64, 64, 2);
  ASSERT_EQ(cache.sets(), 1u);
  (void)cache.insert(0 * 64, false);
  (void)cache.insert(1 * 64, false);
  // Touch line 0 so line 1 becomes LRU.
  EXPECT_TRUE(cache.access(0, false));
  const auto evicted = cache.insert(2 * 64, false);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->lineAddr, 64u);
  EXPECT_TRUE(cache.contains(0));
  EXPECT_FALSE(cache.contains(64));
}

TEST(SetAssocCache, DirtyEvictionReported) {
  SetAssocCache cache(2 * 64, 64, 2);
  (void)cache.insert(0, /*write=*/true);
  (void)cache.insert(64, false);
  const auto evicted = cache.insert(128, false);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->lineAddr, 0u);
  EXPECT_TRUE(evicted->dirty);
  EXPECT_EQ(cache.stats().dirtyEvictions, 1u);
}

TEST(SetAssocCache, WriteHitMarksDirty) {
  SetAssocCache cache(2 * 64, 64, 2);
  (void)cache.insert(0, false);
  EXPECT_TRUE(cache.access(0, /*write=*/true));
  (void)cache.insert(64, false);
  const auto evicted = cache.insert(128, false);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_TRUE(evicted->dirty);
}

TEST(SetAssocCache, InsertExistingRefreshesInsteadOfEvicting) {
  SetAssocCache cache(2 * 64, 64, 2);
  (void)cache.insert(0, false);
  (void)cache.insert(64, false);
  EXPECT_EQ(cache.insert(0, true), std::nullopt);  // refresh, now dirty+MRU
  const auto evicted = cache.insert(128, false);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->lineAddr, 64u);
}

TEST(SetAssocCache, InvalidateRemovesLine) {
  SetAssocCache cache(1024, 64, 2);
  (void)cache.insert(0, true);
  const auto result = cache.invalidate(0);
  EXPECT_TRUE(result.wasPresent);
  EXPECT_TRUE(result.wasDirty);
  EXPECT_FALSE(cache.contains(0));
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(SetAssocCache, InvalidateAbsentIsNoop) {
  SetAssocCache cache(1024, 64, 2);
  const auto result = cache.invalidate(0);
  EXPECT_FALSE(result.wasPresent);
  EXPECT_EQ(cache.stats().invalidations, 0u);
}

TEST(SetAssocCache, MarkDirtyOnlyWhenPresent) {
  SetAssocCache cache(1024, 64, 2);
  EXPECT_FALSE(cache.markDirty(0));
  (void)cache.insert(0, false);
  EXPECT_TRUE(cache.markDirty(0));
  (void)cache.insert(64, false);
  // Evict everything in set of line 0 to observe dirtiness... simpler:
  const auto result = cache.invalidate(0);
  EXPECT_TRUE(result.wasDirty);
}

TEST(SetAssocCache, FlushDropsEverything) {
  SetAssocCache cache(1024, 64, 2);
  (void)cache.insert(0, true);
  (void)cache.insert(64, false);
  cache.flush();
  EXPECT_FALSE(cache.contains(0));
  EXPECT_FALSE(cache.contains(64));
}

TEST(SetAssocCache, WorkingSetLargerThanCacheMisses) {
  SetAssocCache cache(8 * kKiB, 64, 4);
  // Touch 64 KiB twice: second pass still mostly misses (capacity).
  for (int pass = 0; pass < 2; ++pass) {
    for (Addr a = 0; a < 64 * kKiB; a += 64) {
      if (!cache.access(a, false)) {
        (void)cache.insert(a, false);
      }
    }
  }
  EXPECT_GT(cache.stats().missRatio(), 0.9);
}

TEST(SetAssocCache, WorkingSetSmallerThanCacheHits) {
  SetAssocCache cache(8 * kKiB, 64, 4);
  for (int pass = 0; pass < 10; ++pass) {
    for (Addr a = 0; a < 4 * kKiB; a += 64) {
      if (!cache.access(a, false)) {
        (void)cache.insert(a, false);
      }
    }
  }
  // First pass misses, the rest hit: ratio ~ 1/10.
  EXPECT_LT(cache.stats().missRatio(), 0.2);
}

TEST(SetAssocCache, NonPowerOfTwoSetCountWorks) {
  // 384 KiB, 16-way: 384 sets (the Intel NUMA LLC shape).
  SetAssocCache cache(384 * kKiB, 64, 16);
  EXPECT_EQ(cache.sets(), 384u);
  for (Addr a = 0; a < 128 * kKiB; a += 64) {
    if (!cache.access(a, false)) {
      (void)cache.insert(a, false);
    }
  }
  for (Addr a = 0; a < 128 * kKiB; a += 64) {
    EXPECT_TRUE(cache.access(a, false)) << a;
  }
}

TEST(SetAssocCache, InvalidGeometryThrows) {
  EXPECT_THROW((void)SetAssocCache(1000, 64, 2), ContractViolation);  // not multiple
  EXPECT_THROW((void)SetAssocCache(1024, 48, 2), ContractViolation);  // line !pow2
  EXPECT_THROW((void)SetAssocCache(1024, 64, 0), ContractViolation);
  EXPECT_THROW((void)SetAssocCache(64 * 3, 64, 2), ContractViolation);  // 1.5 sets
}

}  // namespace
}  // namespace occm::cache
