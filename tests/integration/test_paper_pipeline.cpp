// Integration tests of the full paper pipeline: simulate -> measure ->
// fit the contention model -> validate, plus the burstiness observation.
// These use the real workload kernels on the paper machines (scaled), so
// they are the slowest tests in the suite (a few seconds each).

#include <gtest/gtest.h>

#include "analysis/experiment.hpp"
#include "core/occm.hpp"

namespace occm {
namespace {

using analysis::SweepConfig;
using analysis::SweepResult;

TEST(PaperPipeline, CgModelFitsHighContentionWithinPaperError) {
  // CG.C on the Intel NUMA machine: fit from the paper's four regression
  // inputs, validate against a coarse sweep. The paper reports 5-14%
  // average error for high-contention programs; we require < 20%.
  SweepConfig config;
  config.machine = topology::intelNuma24();
  config.workload.program = workloads::Program::kCG;
  config.workload.problemClass = workloads::ProblemClass::kC;
  config.coreCounts = {1, 2, 4, 8, 12, 13, 16, 20, 24};
  const SweepResult sweep = analysis::runSweep(config);

  const model::MachineShape shape = model::shapeOf(config.machine);
  const auto fitPoints = analysis::pointsAt(sweep, {1, 2, 12, 13});
  const model::ContentionModel m = model::ContentionModel::fit(shape, fitPoints);
  const model::ValidationReport report = model::validate(m, sweep.points());
  EXPECT_LT(report.meanRelativeError, 0.20);

  // Contention is high (omega well above 1 at 24 cores) and grows.
  const auto omegas = sweep.omegas();
  EXPECT_GT(omegas.back(), 1.0);
}

TEST(PaperPipeline, WorkCyclesAndMissesRoughlyConstant) {
  // Fig. 3's observation: work cycles and LLC misses change little with
  // the number of active cores while total cycles grow.
  SweepConfig config;
  config.machine = topology::intelNuma24();
  config.workload.program = workloads::Program::kCG;
  config.workload.problemClass = workloads::ProblemClass::kB;
  config.coreCounts = {1, 12, 24};
  const SweepResult sweep = analysis::runSweep(config);
  const auto& p1 = sweep.at(1);
  const auto& p24 = sweep.at(24);
  EXPECT_EQ(p1.counters.workCycles(), p24.counters.workCycles());
  const double missGrowth = static_cast<double>(p24.counters.llcMisses) /
                            static_cast<double>(p1.counters.llcMisses);
  EXPECT_GT(missGrowth, 0.6);
  EXPECT_LT(missGrowth, 1.6);
  EXPECT_GT(p24.counters.totalCycles, p1.counters.totalCycles);
  // The growth is in stalls, not work (Fig. 3's decomposition).
  EXPECT_GT(p24.counters.stallCycles - p1.counters.stallCycles,
            (p24.counters.totalCycles - p1.counters.totalCycles) * 9 / 10);
}

TEST(PaperPipeline, EpShowsLowContentionAndMissGrowth) {
  SweepConfig config;
  config.machine = topology::intelNuma24();
  config.workload.program = workloads::Program::kEP;
  config.workload.problemClass = workloads::ProblemClass::kW;
  config.coreCounts = {1, 12, 24};
  const SweepResult sweep = analysis::runSweep(config);
  const auto omegas = sweep.omegas();
  // Low contention: |omega| stays below 0.6 everywhere (paper: <= 0.57).
  for (double w : omegas) {
    EXPECT_LT(std::abs(w), 0.6);
  }
  // The paper's EP anomaly: once the second socket activates, false
  // sharing of the tally lines produces off-chip coherence misses that
  // simply do not exist while all threads share one socket's LLC.
  EXPECT_EQ(sweep.at(12).coherenceMisses, 0u);
  EXPECT_GT(sweep.at(24).coherenceMisses, 1000u);
}

TEST(PaperPipeline, SecondControllerReducesContention) {
  // The measured dip when the second memory controller comes online
  // (Fig. 5b at n = 13).
  SweepConfig config;
  config.machine = topology::intelNuma24();
  config.workload.program = workloads::Program::kCG;
  config.workload.problemClass = workloads::ProblemClass::kC;
  config.coreCounts = {12, 13};
  const SweepResult sweep = analysis::runSweep(config);
  EXPECT_LT(sweep.at(13).counters.totalCycles,
            sweep.at(12).counters.totalCycles);
}

TEST(PaperPipeline, SmallProblemBurstyLargeProblemNot) {
  // Section III-B.2: CG.S traffic is bursty; CG.C traffic is not.
  sim::SimConfig simConfig;
  simConfig.enableSampler = true;
  SweepConfig small;
  small.machine = topology::intelNuma24();
  small.sim = simConfig;
  small.workload.program = workloads::Program::kCG;
  small.workload.problemClass = workloads::ProblemClass::kS;
  small.coreCounts = {24};
  const SweepResult smallSweep = analysis::runSweep(small);
  const auto smallReport =
      model::analyzeBurstiness(smallSweep.at(24).missWindows);

  SweepConfig large = small;
  large.workload.problemClass = workloads::ProblemClass::kC;
  const SweepResult largeSweep = analysis::runSweep(large);
  const auto largeReport =
      model::analyzeBurstiness(largeSweep.at(24).missWindows);

  EXPECT_TRUE(smallReport.bursty);
  EXPECT_FALSE(largeReport.bursty);
  // Saturation: the large problem has almost no idle windows.
  EXPECT_GT(smallReport.idleFraction, largeReport.idleFraction);
  EXPECT_LT(largeReport.idleFraction, 0.05);
}

TEST(PaperPipeline, Table4OrderingHighContentionIsMoreColinear) {
  // Programs with large contention fit the M/M/1 line better than
  // low-contention (bursty) ones — the paper's Table IV correlation.
  SweepConfig cg;
  cg.machine = topology::intelUma8();
  cg.workload.program = workloads::Program::kCG;
  cg.workload.problemClass = workloads::ProblemClass::kC;
  cg.coreCounts = {1, 2, 3, 4};
  const double cgR2 = model::colinearityR2(analysis::runSweep(cg).points());

  SweepConfig ep = cg;
  ep.workload.program = workloads::Program::kEP;
  const double epR2 = model::colinearityR2(analysis::runSweep(ep).points());

  EXPECT_GT(cgR2, 0.85);
  EXPECT_GE(cgR2, epR2 - 0.05);
}

TEST(PaperPipeline, UmaBusContentionPerProcessorShape) {
  // On the UMA machine the second socket's own bus relieves pressure:
  // the per-core increment from 4->5 is smaller than from 3->4 (Fig. 5a's
  // per-processor growth pattern).
  SweepConfig config;
  config.machine = topology::intelUma8();
  config.workload.program = workloads::Program::kCG;
  config.workload.problemClass = workloads::ProblemClass::kC;
  config.coreCounts = {3, 4, 5};
  const SweepResult sweep = analysis::runSweep(config);
  const double inc34 = sweep.at(4).totalCyclesD() - sweep.at(3).totalCyclesD();
  const double inc45 = sweep.at(5).totalCyclesD() - sweep.at(4).totalCyclesD();
  EXPECT_LT(inc45, inc34);
}

}  // namespace
}  // namespace occm
