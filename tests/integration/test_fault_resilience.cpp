// Resilience integration: a sweep that hits a scripted controller outage
// AND a run that throws mid-sweep must still complete, record what broke,
// retry with a perturbed seed, and hand the survivors to the model.

#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "analysis/sweep_state.hpp"
#include "common/error.hpp"
#include "core/contention_model.hpp"
#include "topology/presets.hpp"

namespace occm::analysis {
namespace {

SweepConfig baseConfig() {
  SweepConfig config;
  config.machine = topology::testNuma4();
  config.workload.program = workloads::Program::kCG;
  config.workload.problemClass = workloads::ProblemClass::kS;
  config.workload.threads = 4;
  return config;
}

std::string tempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(FaultResilience, SweepSurvivesOutageAndThrowingRun) {
  SweepConfig config = baseConfig();
  // Node 1 drops out mid-run; node 0 absorbs its traffic.
  config.sim.faultPlan.controllerOutage(1, 20'000, 60'000);
  // ...and the 3-core run dies on its first attempt.
  config.beforeRun = [](int cores, int attempt) {
    if (cores == 3 && attempt == 0) {
      throw std::runtime_error("synthetic crash in 3-core run");
    }
  };

  SweepResult sweep;
  ASSERT_NO_THROW(sweep = runSweep(config));

  // Every core count completed: 3 recovered on the retry.
  ASSERT_EQ(sweep.profiles.size(), 4u);
  ASSERT_EQ(sweep.failures.size(), 1u);
  EXPECT_EQ(sweep.failures[0].cores, 3);
  EXPECT_EQ(sweep.failures[0].attempts, 2);
  EXPECT_TRUE(sweep.failures[0].recovered);
  EXPECT_NE(sweep.failures[0].error.find("synthetic crash"),
            std::string::npos);
  EXPECT_NE(sweep.diagnostics().find("recovered"), std::string::npos);

  // The survivors still feed the model.
  const auto fitted = model::ContentionModel::tryFit(
      model::shapeOf(config.machine), sweep.points());
  ASSERT_TRUE(fitted.hasValue()) << fitted.error().describe();
  EXPECT_GT(fitted->predictCycles(4), 0.0);
}

TEST(FaultResilience, PermanentFailureIsRecordedNotThrown) {
  SweepConfig config = baseConfig();
  config.beforeRun = [](int cores, int /*attempt*/) {
    if (cores == 2) {
      throw std::runtime_error("2-core run is cursed");
    }
  };

  SweepResult sweep;
  ASSERT_NO_THROW(sweep = runSweep(config));

  ASSERT_EQ(sweep.profiles.size(), 3u);
  ASSERT_EQ(sweep.failures.size(), 1u);
  EXPECT_EQ(sweep.failures[0].cores, 2);
  EXPECT_EQ(sweep.failures[0].attempts, config.maxAttempts);
  EXPECT_FALSE(sweep.failures[0].recovered);
  EXPECT_NE(sweep.diagnostics().find("gave up"), std::string::npos);

  // The missing run is diagnosable, not a crash.
  try {
    (void)sweep.at(2);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("core counts present"),
              std::string::npos);
  }
  // omega still works from the surviving 1-core run.
  EXPECT_EQ(sweep.omegas().size(), 3u);
}

TEST(FaultResilience, SingleAttemptMeansNoRetry) {
  SweepConfig config = baseConfig();
  config.coreCounts = {1, 2};
  config.maxAttempts = 1;
  int calls = 0;
  config.beforeRun = [&calls](int cores, int /*attempt*/) {
    if (cores == 2) {
      ++calls;
      throw std::runtime_error("no second chances");
    }
  };
  const SweepResult sweep = runSweep(config);
  EXPECT_EQ(calls, 1);
  ASSERT_EQ(sweep.failures.size(), 1u);
  EXPECT_EQ(sweep.failures[0].attempts, 1);
  EXPECT_FALSE(sweep.failures[0].recovered);
}

TEST(FaultResilience, CheckpointResumesCompletedRuns) {
  const std::string path = tempPath("occm_resilience_ckpt.json");
  std::filesystem::remove(path);

  SweepConfig config = baseConfig();
  config.checkpointPath = path;
  const SweepResult first = runSweep(config);
  EXPECT_EQ(first.restoredRuns, 0u);
  ASSERT_TRUE(std::filesystem::exists(path));

  const SweepResult second = runSweep(config);
  EXPECT_EQ(second.restoredRuns, 4u);
  ASSERT_EQ(second.profiles.size(), 4u);
  for (int n = 1; n <= 4; ++n) {
    EXPECT_EQ(second.at(n).counters.totalCycles,
              first.at(n).counters.totalCycles);
  }
  EXPECT_NE(second.diagnostics().find("restored"), std::string::npos);

  std::filesystem::remove(path);
}

TEST(FaultResilience, MismatchedCheckpointIsIgnored) {
  const std::string path = tempPath("occm_resilience_mismatch.json");
  std::filesystem::remove(path);

  SweepConfig config = baseConfig();
  config.checkpointPath = path;
  (void)runSweep(config);

  config.sim.seed += 1;  // different identity => stale checkpoint
  const SweepResult resumed = runSweep(config);
  EXPECT_EQ(resumed.restoredRuns, 0u);

  std::filesystem::remove(path);
}

TEST(FaultResilience, CheckpointJsonRoundTrips) {
  SweepCheckpoint ckpt;
  ckpt.program = "CG.S";
  ckpt.machine = "testNuma4";
  ckpt.seed = 0xDEADBEEFCAFEF00DULL;  // must survive as 64 bits
  ckpt.threads = 4;
  ckpt.runs.push_back({1, 1e6, 2.5e5, 1e6});
  ckpt.runs.push_back({4, 4.5e6, 1.5e6, 1.2e6});
  ckpt.failures.push_back({3, 2, "synthetic \"quoted\" crash\n", true, 1,
                           RunFailureKind::kException, 0, "", "", ""});

  const auto parsed = SweepCheckpoint::parse(ckpt.toJson());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->matches("CG.S", "testNuma4",
                              0xDEADBEEFCAFEF00DULL, 4));
  ASSERT_EQ(parsed->runs.size(), 2u);
  ASSERT_NE(parsed->find(4), nullptr);
  EXPECT_DOUBLE_EQ(parsed->find(4)->totalCycles, 4.5e6);
  EXPECT_EQ(parsed->find(2), nullptr);
  ASSERT_EQ(parsed->failures.size(), 1u);
  EXPECT_EQ(parsed->failures[0].error, "synthetic \"quoted\" crash\n");
  EXPECT_TRUE(parsed->failures[0].recovered);

  EXPECT_FALSE(SweepCheckpoint::parse("not json").has_value());
  EXPECT_FALSE(SweepCheckpoint::parse("{\"program\": 3}").has_value());
}

}  // namespace
}  // namespace occm::analysis
