#include "mem/placement.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"

namespace occm::mem {
namespace {

constexpr Bytes kPage = 4096;

TEST(Placement, InterleaveSpreadsOverActiveNodes) {
  PagePlacement placement(PlacementPolicy::kInterleaveActive, kPage, {0, 1});
  std::set<NodeId> used;
  std::uint64_t onNode0 = 0;
  for (Addr page = 0; page < 1000; ++page) {
    const NodeId node = placement.nodeOf(page * kPage, 0);
    used.insert(node);
    onNode0 += node == 0 ? 1 : 0;
  }
  EXPECT_EQ(used, (std::set<NodeId>{0, 1}));
  EXPECT_EQ(onNode0, 500u);
}

TEST(Placement, InterleaveStableForSameAddress) {
  PagePlacement placement(PlacementPolicy::kInterleaveActive, kPage, {0, 1, 2});
  const NodeId first = placement.nodeOf(12345, 2);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(placement.nodeOf(12345, 0), first);
  }
}

TEST(Placement, InterleaveSamePageSameNode) {
  PagePlacement placement(PlacementPolicy::kInterleaveActive, kPage, {0, 1});
  EXPECT_EQ(placement.nodeOf(0, 0), placement.nodeOf(kPage - 1, 1));
}

TEST(Placement, SingleActiveNodeGetsEverything) {
  PagePlacement placement(PlacementPolicy::kInterleaveActive, kPage, {3});
  for (Addr a = 0; a < 100 * kPage; a += kPage) {
    EXPECT_EQ(placement.nodeOf(a, 0), 3);
  }
}

TEST(Placement, FirstTouchSticksToFirstRequester) {
  PagePlacement placement(PlacementPolicy::kFirstTouch, kPage, {0, 1});
  EXPECT_EQ(placement.nodeOf(0, 1), 1);
  // A later request from node 0 still lands on node 1.
  EXPECT_EQ(placement.nodeOf(64, 0), 1);
  // A different page is touched first by node 0.
  EXPECT_EQ(placement.nodeOf(kPage, 0), 0);
}

TEST(Placement, LocalAlwaysServesRequester) {
  PagePlacement placement(PlacementPolicy::kLocal, kPage, {0, 1});
  EXPECT_EQ(placement.nodeOf(0, 1), 1);
  EXPECT_EQ(placement.nodeOf(0, 0), 0);
}

TEST(Placement, ProportionalFollowsWeights) {
  // Node 0 has 3x the active cores of node 1: it gets 3/4 of the pages.
  PagePlacement placement(PlacementPolicy::kProportionalInterleave, kPage,
                          {0, 1}, {3, 1});
  std::uint64_t onNode0 = 0;
  constexpr std::uint64_t kPages = 4000;
  for (Addr page = 0; page < kPages; ++page) {
    onNode0 += placement.nodeOf(page * kPage, 1) == 0 ? 1u : 0u;
  }
  EXPECT_EQ(onNode0, kPages * 3 / 4);
}

TEST(Placement, ProportionalEqualWeightsMatchInterleaveShare) {
  PagePlacement proportional(PlacementPolicy::kProportionalInterleave, kPage,
                             {0, 1}, {1, 1});
  std::uint64_t onNode0 = 0;
  for (Addr page = 0; page < 1000; ++page) {
    onNode0 += proportional.nodeOf(page * kPage, 0) == 0 ? 1u : 0u;
  }
  EXPECT_EQ(onNode0, 500u);
}

TEST(Placement, ProportionalDeterministicPerPage) {
  PagePlacement placement(PlacementPolicy::kProportionalInterleave, kPage,
                          {0, 1, 2}, {1, 2, 3});
  for (Addr page = 0; page < 50; ++page) {
    const NodeId first = placement.nodeOf(page * kPage, 0);
    EXPECT_EQ(placement.nodeOf(page * kPage + 128, 2), first);
  }
}

TEST(Placement, WeightValidation) {
  EXPECT_THROW(PagePlacement(PlacementPolicy::kProportionalInterleave, kPage,
                             {0, 1}, {1}),
               ContractViolation);
  EXPECT_THROW(PagePlacement(PlacementPolicy::kProportionalInterleave, kPage,
                             {0, 1}, {1, 0}),
               ContractViolation);
}

TEST(Placement, EmptyActiveNodesThrows) {
  EXPECT_THROW((void)
      PagePlacement(PlacementPolicy::kInterleaveActive, kPage, {}),
      ContractViolation);
}

TEST(Placement, NonPowerOfTwoPageThrows) {
  EXPECT_THROW((void)PagePlacement(PlacementPolicy::kLocal, 3000, {0}),
               ContractViolation);
}

}  // namespace
}  // namespace occm::mem
