#include "mem/memory_system.hpp"

#include <gtest/gtest.h>

#include "topology/presets.hpp"
#include "topology/topology_map.hpp"

namespace occm::mem {
namespace {

// testNuma4: dramLatency 100, rowHit 10, rowMiss 20, 1 channel, 2 banks,
// hop 40 cycles, nodes {0, 1}, cores 0,1 on node 0 and 2,3 on node 1.

class MemorySystemTest : public ::testing::Test {
 protected:
  MemorySystemTest() : topo_(topology::testNuma4()) {}

  MemorySystem makeLocalOnly() {
    MemoryConfig config;
    config.placement = PlacementPolicy::kLocal;
    config.service = ServiceDiscipline::kDeterministic;
    return MemorySystem(topo_, config, {0, 1});
  }

  topology::TopologyMap topo_;
};

TEST_F(MemorySystemTest, SoloLocalRequestTakesDramLatency) {
  MemorySystem mem = makeLocalOnly();
  const RequestTiming t = mem.request(1000, 0, 0);
  EXPECT_EQ(t.done, 1000u + 100u);
  EXPECT_EQ(t.queueWait, 0u);
  EXPECT_FALSE(t.remote);
  EXPECT_EQ(t.node, 0);
}

TEST_F(MemorySystemTest, RemoteRequestPaysHops) {
  MemoryConfig config;
  config.placement = PlacementPolicy::kInterleaveActive;
  config.service = ServiceDiscipline::kDeterministic;
  // Only node 1 active: every request from core 0 is remote (1 hop).
  MemorySystem mem(topo_, config, {1});
  const RequestTiming t = mem.request(0, 0, 0);
  EXPECT_TRUE(t.remote);
  EXPECT_EQ(t.node, 1);
  EXPECT_EQ(t.hopCycles, 80u);          // 2 x 40
  EXPECT_EQ(t.done, 40u + 100u + 40u);  // out, DRAM, back
}

TEST_F(MemorySystemTest, BackToBackRequestsQueue) {
  MemorySystem mem = makeLocalOnly();
  // Two simultaneous requests to the same bank row -> the second waits for
  // the channel occupancy of the first (row miss 20, then row hit 10).
  const RequestTiming first = mem.request(0, 0, 0);
  const RequestTiming second = mem.request(0, 1, 0);
  EXPECT_EQ(first.queueWait, 0u);
  EXPECT_EQ(second.queueWait, 20u);  // behind one row-miss transfer
  EXPECT_EQ(second.done, 20u + 100u);
}

TEST_F(MemorySystemTest, RowHitsAreCheaperThanMisses) {
  MemorySystem mem = makeLocalOnly();
  (void)mem.request(0, 0, 0);      // opens row 0
  (void)mem.request(0, 1, 64);     // same 2 KiB row: hit
  (void)mem.request(0, 0, 1 << 20);  // far away: row miss
  const ControllerStats& stats = mem.controllerStats(0);
  EXPECT_EQ(stats.rowHits, 1u);
  EXPECT_EQ(stats.rowMisses, 2u);
  EXPECT_NEAR(stats.rowHitRatio(), 1.0 / 3.0, 1e-12);
}

TEST_F(MemorySystemTest, StreamKeepsRowOpen) {
  MemorySystem mem = makeLocalOnly();
  for (Addr a = 0; a < 2048; a += 64) {
    (void)mem.request(a, 0, a);  // spread in time, same row
  }
  const ControllerStats& stats = mem.controllerStats(0);
  EXPECT_EQ(stats.rowMisses, 1u);  // only the first access opens the row
  EXPECT_EQ(stats.rowHits, 31u);
}

TEST_F(MemorySystemTest, WritebackOccupiesBandwidthOnly) {
  MemorySystem mem = makeLocalOnly();
  mem.writeback(0, 0, 0);
  // A demand request right after queues behind the writeback's occupancy.
  const RequestTiming t = mem.request(0, 0, 64);
  EXPECT_GT(t.queueWait, 0u);
  EXPECT_EQ(mem.controllerStats(0).writebacks, 1u);
  EXPECT_EQ(mem.controllerStats(0).requests, 1u);
}

TEST_F(MemorySystemTest, RequestsSpreadOverActiveNodes) {
  MemoryConfig config;
  config.placement = PlacementPolicy::kInterleaveActive;
  config.service = ServiceDiscipline::kDeterministic;
  MemorySystem mem(topo_, config, {0, 1});
  for (Addr page = 0; page < 64; ++page) {
    (void)mem.request(page * 100000, 0, page * 4096);
  }
  EXPECT_EQ(mem.controllerStats(0).requests, 32u);
  EXPECT_EQ(mem.controllerStats(1).requests, 32u);
  EXPECT_EQ(mem.controllerStats(1).remoteRequests, 32u);
  EXPECT_EQ(mem.totalRequests(), 64u);
}

TEST_F(MemorySystemTest, LinkBandwidthQueuesRemoteBursts) {
  topology::MachineSpec spec = topology::testNuma4();
  spec.linkServiceCycles = 50;
  topology::TopologyMap topo(spec);
  MemoryConfig config;
  config.placement = PlacementPolicy::kInterleaveActive;
  config.service = ServiceDiscipline::kDeterministic;
  MemorySystem mem(topo, config, {1});  // all remote for socket-0 cores
  // Two remote requests at the same instant: the second waits for the
  // first's 2 transfers on the link (2 x 50), on top of the channel.
  const RequestTiming first = mem.request(0, 0, 0);
  const RequestTiming second = mem.request(0, 1, 1 << 21);  // distinct row
  EXPECT_EQ(first.queueWait, 0u);
  EXPECT_GE(second.queueWait, 100u);
}

TEST_F(MemorySystemTest, ControllerStatsBoundsChecked) {
  MemorySystem mem = makeLocalOnly();
  EXPECT_THROW((void)mem.controllerStats(-1), ContractViolation);
  EXPECT_THROW((void)mem.controllerStats(2), ContractViolation);
}

TEST_F(MemorySystemTest, UmaBusAddsQueueingStage) {
  topology::TopologyMap topo(topology::testUma4());
  MemoryConfig config;
  config.service = ServiceDiscipline::kDeterministic;
  MemorySystem mem(topo, config, {0});
  // Two same-socket cores at the same instant: the second queues at the
  // socket bus (10 cycles) before the controller.
  const RequestTiming a = mem.request(0, 0, 0);
  const RequestTiming b = mem.request(0, 1, 1 << 21);
  EXPECT_EQ(a.queueWait, 0u);
  EXPECT_GE(b.queueWait, 10u);
  // A third from the *other* socket uses its own bus, queueing only at
  // the shared controller.
  const RequestTiming c = mem.request(0, 2, 1 << 22);
  EXPECT_GT(c.queueWait, 0u);
}

}  // namespace
}  // namespace occm::mem
