#include "stats/distribution.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace occm::stats {
namespace {

TEST(Histogram, BasicBinning) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  EXPECT_EQ(h.binValue(0), 1u);
  EXPECT_EQ(h.binValue(1), 2u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_DOUBLE_EQ(h.binLow(1), 1.0);
  EXPECT_DOUBLE_EQ(h.binHigh(1), 2.0);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.binValue(0), 1u);
  EXPECT_EQ(h.binValue(4), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.5, 10);
  EXPECT_EQ(h.binValue(1), 10u);
  EXPECT_EQ(h.total(), 10u);
}

TEST(Histogram, QuantileInterpolates) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) {
    h.add(i + 0.5);
  }
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_LE(h.quantile(0.0), 1.0);
  EXPECT_NEAR(h.quantile(1.0), 100.0, 1.0);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW((void)Histogram(1.0, 1.0, 10), ContractViolation);
  EXPECT_THROW((void)Histogram(0.0, 1.0, 0), ContractViolation);
}

TEST(Histogram, QuantileOfEmptyThrows) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_THROW((void)h.quantile(0.5), ContractViolation);
}

TEST(EmpiricalCcdf, SmallExample) {
  const std::vector<double> samples = {1.0, 1.0, 2.0, 4.0};
  const auto ccdf = empiricalCcdf(samples);
  ASSERT_EQ(ccdf.size(), 3u);
  EXPECT_DOUBLE_EQ(ccdf[0].x, 1.0);
  EXPECT_DOUBLE_EQ(ccdf[0].probability, 0.5);  // 2 of 4 above 1
  EXPECT_DOUBLE_EQ(ccdf[1].x, 2.0);
  EXPECT_DOUBLE_EQ(ccdf[1].probability, 0.25);
  EXPECT_DOUBLE_EQ(ccdf[2].x, 4.0);
  EXPECT_DOUBLE_EQ(ccdf[2].probability, 0.0);  // maximum
}

TEST(EmpiricalCcdf, MonotoneNonIncreasing) {
  Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) {
    samples.push_back(rng.uniform(0.0, 50.0));
  }
  const auto ccdf = empiricalCcdf(samples);
  for (std::size_t i = 1; i < ccdf.size(); ++i) {
    ASSERT_LT(ccdf[i - 1].x, ccdf[i].x);
    ASSERT_GE(ccdf[i - 1].probability, ccdf[i].probability);
  }
}

TEST(EmpiricalCcdf, EmptyThrows) {
  const std::vector<double> empty;
  EXPECT_THROW((void)empiricalCcdf(empty), ContractViolation);
}

TEST(CcdfAt, EvaluatesOnGrid) {
  const std::vector<double> samples = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> grid = {0.5, 2.0, 10.0};
  const auto ccdf = ccdfAt(samples, grid);
  ASSERT_EQ(ccdf.size(), 3u);
  EXPECT_DOUBLE_EQ(ccdf[0].probability, 1.0);   // all above 0.5
  EXPECT_DOUBLE_EQ(ccdf[1].probability, 0.5);   // 3 and 4 above 2
  EXPECT_DOUBLE_EQ(ccdf[2].probability, 0.0);
}

TEST(TailFit, ParetoTailIsDiagonal) {
  // CCDF of a Pareto(alpha) is x^-alpha: log-log slope -alpha, R^2 ~ 1.
  Rng rng(11);
  std::vector<double> samples;
  for (int i = 0; i < 100000; ++i) {
    samples.push_back(rng.boundedPareto(1.5, 1.0, 1e6));
  }
  const auto ccdf = empiricalCcdf(samples);
  const TailFit fit = fitLogLogTail(ccdf, 2.0);
  ASSERT_GT(fit.points, 10u);
  EXPECT_NEAR(fit.slope, -1.5, 0.25);
  EXPECT_GT(fit.r2, 0.95);
}

TEST(TailFit, TruncatedDistributionHasSteepTail) {
  // A near-constant distribution (saturated traffic) has a tail that
  // collapses: very steep log-log slope compared to a Pareto.
  Rng rng(13);
  std::vector<double> samples;
  for (int i = 0; i < 50000; ++i) {
    samples.push_back(95.0 + rng.uniform(0.0, 10.0));
  }
  const auto ccdf = empiricalCcdf(samples);
  const TailFit fit = fitLogLogTail(ccdf, 95.0);
  ASSERT_GT(fit.points, 3u);
  EXPECT_LT(fit.slope, -10.0);
}

TEST(TailFit, TooFewPointsReturnsEmpty) {
  const std::vector<CcdfPoint> ccdf = {{1.0, 0.5}, {2.0, 0.0}};
  const TailFit fit = fitLogLogTail(ccdf, 0.5);
  EXPECT_EQ(fit.points, 0u);
}

class HillEstimatorTest : public ::testing::TestWithParam<double> {};

TEST_P(HillEstimatorTest, RecoversParetoAlpha) {
  const double alpha = GetParam();
  Rng rng(static_cast<std::uint64_t>(alpha * 1000));
  std::vector<double> samples;
  for (int i = 0; i < 200000; ++i) {
    samples.push_back(rng.boundedPareto(alpha, 1.0, 1e9));
  }
  const double estimate = hillTailIndex(samples, 5000);
  EXPECT_NEAR(estimate, alpha, 0.15 * alpha);
}

INSTANTIATE_TEST_SUITE_P(Alphas, HillEstimatorTest,
                         ::testing::Values(0.8, 1.2, 1.8, 2.5));

TEST(HillEstimator, DegenerateInputsReturnZero) {
  const std::vector<double> one = {1.0};
  EXPECT_EQ(hillTailIndex(one, 2), 0.0);
  const std::vector<double> two = {1.0, 2.0};
  EXPECT_EQ(hillTailIndex(two, 5), 0.0);
}

}  // namespace
}  // namespace occm::stats
