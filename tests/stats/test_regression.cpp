#include "stats/regression.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace occm::stats {
namespace {

TEST(FitLinear, RecoversExactLine) {
  std::vector<Point> pts;
  for (int x = 0; x < 10; ++x) {
    pts.push_back({static_cast<double>(x), 3.0 + 2.0 * x, 1.0});
  }
  const LinearFit fit = fitLinear(pts);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
  EXPECT_NEAR(fit.residualStdError, 0.0, 1e-9);
  EXPECT_EQ(fit.n, 10u);
}

TEST(FitLinear, PredictInterpolates) {
  const std::vector<Point> pts = {{0.0, 1.0, 1.0}, {2.0, 5.0, 1.0}};
  const LinearFit fit = fitLinear(pts);
  EXPECT_NEAR(fit.predict(1.0), 3.0, 1e-12);
}

TEST(FitLinear, TwoPointsExact) {
  const std::vector<Point> pts = {{1.0, 10.0, 1.0}, {3.0, 4.0, 1.0}};
  const LinearFit fit = fitLinear(pts);
  EXPECT_NEAR(fit.slope, -3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 13.0, 1e-12);
}

TEST(FitLinear, NoisyDataHasR2BelowOne) {
  Rng rng(5);
  std::vector<Point> pts;
  for (int x = 0; x < 100; ++x) {
    pts.push_back({static_cast<double>(x),
                   2.0 * x + rng.uniform(-20.0, 20.0), 1.0});
  }
  const LinearFit fit = fitLinear(pts);
  EXPECT_NEAR(fit.slope, 2.0, 0.2);
  EXPECT_LT(fit.r2, 1.0);
  EXPECT_GT(fit.r2, 0.8);
  EXPECT_GT(fit.residualStdError, 0.0);
}

TEST(FitLinear, WeightsShiftTheFit) {
  // Two clusters; weighting one heavily pulls the line through it.
  std::vector<Point> pts = {{0.0, 0.0, 100.0},
                            {1.0, 1.0, 100.0},
                            {2.0, 10.0, 0.001}};
  const LinearFit fit = fitLinear(pts);
  EXPECT_NEAR(fit.slope, 1.0, 0.05);
}

TEST(FitLinear, TooFewPointsThrows) {
  const std::vector<Point> pts = {{1.0, 1.0, 1.0}};
  EXPECT_THROW((void)fitLinear(pts), ContractViolation);
}

TEST(FitLinear, DegenerateXThrows) {
  const std::vector<Point> pts = {{1.0, 1.0, 1.0}, {1.0, 2.0, 1.0}};
  EXPECT_THROW((void)fitLinear(pts), ContractViolation);
}

TEST(FitLinear, NonPositiveWeightThrows) {
  const std::vector<Point> pts = {{1.0, 1.0, 1.0}, {2.0, 2.0, 0.0}};
  EXPECT_THROW((void)fitLinear(pts), ContractViolation);
}

TEST(FitLinear, SpanOverloadMatches) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> ys = {2.0, 4.0, 6.0};
  const LinearFit fit = fitLinear(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 0.0, 1e-12);
}

TEST(FitThroughOrigin, RecoversSlope) {
  std::vector<Point> pts;
  for (int x = 1; x <= 5; ++x) {
    pts.push_back({static_cast<double>(x), 4.0 * x, 1.0});
  }
  const LinearFit fit = fitThroughOrigin(pts);
  EXPECT_NEAR(fit.slope, 4.0, 1e-12);
  EXPECT_EQ(fit.intercept, 0.0);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(FitThroughOrigin, AllZeroXThrows) {
  const std::vector<Point> pts = {{0.0, 1.0, 1.0}};
  EXPECT_THROW((void)fitThroughOrigin(pts), ContractViolation);
}

TEST(CoefficientOfDetermination, PerfectAndPoor) {
  const std::vector<double> obs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(coefficientOfDetermination(obs, obs), 1.0, 1e-12);
  const std::vector<double> constant = {2.5, 2.5, 2.5, 2.5};
  EXPECT_NEAR(coefficientOfDetermination(obs, constant), 0.0, 1e-12);
}

TEST(CoefficientOfDetermination, MismatchedSizesThrow) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {1.0};
  EXPECT_THROW((void)coefficientOfDetermination(a, b), ContractViolation);
}

TEST(FitTheilSen, ExactOnCleanLine) {
  std::vector<Point> pts;
  for (int x = 1; x <= 9; ++x) {
    pts.push_back({static_cast<double>(x), 3.0 + 2.0 * x, 1.0});
  }
  const LinearFit fit = fitTheilSen(pts);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_EQ(fit.n, 9u);
}

TEST(FitTheilSen, IgnoresOneOutlierWhereOlsDoesNot) {
  std::vector<Point> pts;
  for (int x = 1; x <= 9; ++x) {
    pts.push_back({static_cast<double>(x), 3.0 + 2.0 * x, 1.0});
  }
  pts[4].y += 100.0;  // one wild measurement
  const LinearFit robust = fitTheilSen(pts);
  const LinearFit ols = fitLinear(pts);
  EXPECT_NEAR(robust.slope, 2.0, 1e-12);
  EXPECT_NEAR(robust.intercept, 3.0, 1e-12);
  EXPECT_GT(std::abs(ols.intercept - 3.0), 1.0);  // OLS is dragged
}

TEST(FitTheilSen, DegenerateInputThrows) {
  const std::vector<Point> one = {{1.0, 2.0, 1.0}};
  EXPECT_THROW((void)fitTheilSen(one), ContractViolation);
  const std::vector<Point> sameX = {{2.0, 1.0, 1.0}, {2.0, 5.0, 1.0}};
  EXPECT_THROW((void)fitTheilSen(sameX), ContractViolation);
}

}  // namespace
}  // namespace occm::stats
