#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace occm::stats {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.sum(), 5.0);
}

TEST(OnlineStats, MatchesNaiveComputation) {
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  OnlineStats s;
  for (double v : values) {
    s.add(v);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(OnlineStats, NegativeValuesTracked) {
  OnlineStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), -3.0);
  EXPECT_EQ(s.cv(), 0.0);  // zero mean -> defined as 0
}

TEST(OnlineStats, MergeEqualsSequential) {
  Rng rng(77);
  OnlineStats whole;
  OnlineStats a;
  OnlineStats b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-10, 10);
    whole.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmptyIsNoop) {
  OnlineStats a;
  a.add(1.0);
  a.add(2.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  OnlineStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_NEAR(b.mean(), 1.5, 1e-12);
}

TEST(Summarize, SpanOverload) {
  const std::vector<double> values = {1.0, 2.0, 3.0};
  const OnlineStats s = summarize(values);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(MeanRelativeError, Basic) {
  const std::vector<double> measured = {100.0, 200.0};
  const std::vector<double> predicted = {110.0, 180.0};
  // (0.1 + 0.1) / 2 = 0.1
  EXPECT_NEAR(meanRelativeError(measured, predicted), 0.1, 1e-12);
}

TEST(MeanRelativeError, SkipsZeroMeasured) {
  const std::vector<double> measured = {0.0, 100.0};
  const std::vector<double> predicted = {5.0, 150.0};
  EXPECT_NEAR(meanRelativeError(measured, predicted), 0.5, 1e-12);
}

TEST(MeanRelativeError, SizeMismatchThrows) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW((void)meanRelativeError(a, b), ContractViolation);
}

TEST(MeanRelativeError, PerfectPredictionIsZero) {
  const std::vector<double> v = {3.0, 4.0, 5.0};
  EXPECT_EQ(meanRelativeError(v, v), 0.0);
}

}  // namespace
}  // namespace occm::stats
