#include "workloads/phase_stream.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace occm::workloads {
namespace {

std::vector<trace::Op> drain(PhaseStream& stream) {
  std::vector<trace::Op> ops;
  trace::Op op;
  while (stream.next(op)) {
    ops.push_back(op);
  }
  return ops;
}

TEST(PhaseStream, StridedAddressesFollowStride) {
  Phase p;
  p.base = 1000;
  p.count = 5;
  p.strideBytes = 128;
  p.jitterWork = false;
  p.workPerOp = 7;
  PhaseStream stream({p});
  const auto ops = drain(stream);
  ASSERT_EQ(ops.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(ops[i].addr, 1000u + 128 * i);
    EXPECT_EQ(ops[i].work, 7u);
  }
}

TEST(PhaseStream, NegativeStrideWalksBackwards) {
  Phase p;
  p.base = 1000;
  p.count = 3;
  p.strideBytes = -64;
  PhaseStream stream({p});
  const auto ops = drain(stream);
  EXPECT_EQ(ops[0].addr, 1000u);
  EXPECT_EQ(ops[1].addr, 936u);
  EXPECT_EQ(ops[2].addr, 872u);
}

TEST(PhaseStream, ZeroStrideRepeatsAddress) {
  Phase p;
  p.base = 64;
  p.count = 4;
  p.strideBytes = 0;
  PhaseStream stream({p});
  for (const auto& op : drain(stream)) {
    EXPECT_EQ(op.addr, 64u);
  }
}

TEST(PhaseStream, PhasesRunInOrder) {
  Phase a;
  a.base = 0;
  a.count = 2;
  Phase b;
  b.base = 10000;
  b.count = 2;
  PhaseStream stream({a, b});
  const auto ops = drain(stream);
  ASSERT_EQ(ops.size(), 4u);
  EXPECT_LT(ops[1].addr, 10000u);
  EXPECT_GE(ops[2].addr, 10000u);
  EXPECT_EQ(stream.totalOps(), 4u);
}

TEST(PhaseStream, EmptyPhaseSkipped) {
  Phase empty;
  empty.count = 0;
  Phase one;
  one.count = 1;
  one.base = 5;
  PhaseStream stream({empty, one});
  const auto ops = drain(stream);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].addr, 5u);
}

TEST(PhaseStream, GatherIsDeterministicPerSeed) {
  Phase g;
  g.kind = Phase::Kind::kGather;
  g.tableBytes = 4096;
  g.elementBytes = 8;
  g.count = 100;
  g.seed = 42;
  PhaseStream a({g});
  PhaseStream b({g});
  const auto opsA = drain(a);
  const auto opsB = drain(b);
  for (std::size_t i = 0; i < opsA.size(); ++i) {
    EXPECT_EQ(opsA[i].addr, opsB[i].addr);
  }
}

TEST(PhaseStream, GatherDifferentSeedsDiffer) {
  Phase g;
  g.kind = Phase::Kind::kGather;
  g.tableBytes = 1 * kMiB;
  g.elementBytes = 8;
  g.count = 50;
  g.seed = 1;
  Phase h = g;
  h.seed = 2;
  PhaseStream a({g});
  PhaseStream b({h});
  const auto opsA = drain(a);
  const auto opsB = drain(b);
  int equal = 0;
  for (std::size_t i = 0; i < opsA.size(); ++i) {
    equal += opsA[i].addr == opsB[i].addr ? 1 : 0;
  }
  EXPECT_LT(equal, 3);
}

TEST(PhaseStream, GatherStaysInsideTable) {
  Phase g;
  g.kind = Phase::Kind::kGather;
  g.base = 1 << 20;
  g.tableBytes = 4096;
  g.elementBytes = 8;
  g.count = 2000;
  PhaseStream stream({g});
  for (const auto& op : drain(stream)) {
    EXPECT_GE(op.addr, static_cast<Addr>(1 << 20));
    EXPECT_LT(op.addr, static_cast<Addr>((1 << 20) + 4096));
    EXPECT_EQ(op.addr % 8, 0u);
  }
}

TEST(PhaseStream, ResetReplaysIdentically) {
  Phase g;
  g.kind = Phase::Kind::kGather;
  g.tableBytes = 4096;
  g.elementBytes = 8;
  g.count = 20;
  g.workPerOp = 10;
  PhaseStream stream({g});
  const auto first = drain(stream);
  stream.reset();
  const auto second = drain(stream);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].addr, second[i].addr);
    EXPECT_EQ(first[i].work, second[i].work);
  }
}

TEST(PhaseStream, WorkJitterWithinBounds) {
  Phase p;
  p.count = 1000;
  p.workPerOp = 100;
  PhaseStream stream({p});
  double sum = 0.0;
  bool varied = false;
  Cycles firstWork = 0;
  trace::Op op;
  bool first = true;
  while (stream.next(op)) {
    EXPECT_GE(op.work, 74u);
    EXPECT_LE(op.work, 126u);
    sum += static_cast<double>(op.work);
    if (first) {
      firstWork = op.work;
      first = false;
    } else {
      varied = varied || op.work != firstWork;
    }
  }
  EXPECT_TRUE(varied);
  EXPECT_NEAR(sum / 1000.0, 100.0, 5.0);
}

TEST(PhaseStream, FlagsPropagate) {
  Phase p;
  p.count = 1;
  p.write = true;
  p.prefetchable = true;
  p.instrPerOp = 9;
  PhaseStream stream({p});
  trace::Op op;
  ASSERT_TRUE(stream.next(op));
  EXPECT_TRUE(op.write);
  EXPECT_TRUE(op.prefetchable);
  EXPECT_EQ(op.instructions, 9u);
}

TEST(PhaseStream, SeqLinesHelper) {
  const Phase p = seqLines(128, 640, 3, true);
  EXPECT_EQ(p.count, 10u);
  EXPECT_EQ(p.strideBytes, 64);
  EXPECT_TRUE(p.write);
  EXPECT_TRUE(p.prefetchable);
  EXPECT_EQ(p.base, 128u);
}

TEST(PhaseStream, GatherWithoutTableThrows) {
  Phase g;
  g.kind = Phase::Kind::kGather;
  g.count = 1;
  g.tableBytes = 0;
  EXPECT_THROW((void)PhaseStream({g}), ContractViolation);
}

}  // namespace
}  // namespace occm::workloads
