// Parameterized class-scaling properties across all NPB kernels: working
// sets and total work must grow monotonically with the problem class
// (the x-axis of the paper's size/contention/burstiness relationships).

#include <gtest/gtest.h>

#include "trace/stream_analysis.hpp"
#include "workloads/kernels.hpp"

namespace occm::workloads {
namespace {

constexpr std::uint64_t kMaxRefs = 80'000'000;

struct TotalStats {
  Bytes sharedBytes = 0;
  std::uint64_t refs = 0;
  Cycles work = 0;
};

TotalStats totals(Program program, ProblemClass cls) {
  const KernelBuild build = buildKernel(program, cls, 2, 1);
  TotalStats out;
  out.sharedBytes = build.sharedBytes;
  for (const auto& phases : build.threadPhases) {
    PhaseStream stream(phases);
    const auto stats = trace::analyzeStream(stream, kMaxRefs);
    out.refs += stats.refs;
    out.work += stats.workCycles;
  }
  return out;
}

class ClassScaling : public ::testing::TestWithParam<Program> {};

TEST_P(ClassScaling, WorkGrowsWithClass) {
  const Program program = GetParam();
  Cycles previous = 0;
  for (ProblemClass cls : {ProblemClass::kS, ProblemClass::kW,
                           ProblemClass::kA, ProblemClass::kB,
                           ProblemClass::kC}) {
    const TotalStats t = totals(program, cls);
    EXPECT_GT(t.work, previous) << problemClassName(cls);
    previous = t.work;
  }
}

TEST_P(ClassScaling, ReferencesGrowFromSToC) {
  const Program program = GetParam();
  const TotalStats s = totals(program, ProblemClass::kS);
  const TotalStats c = totals(program, ProblemClass::kC);
  EXPECT_GT(c.refs, 2 * s.refs);
}

INSTANTIATE_TEST_SUITE_P(NpbKernels, ClassScaling,
                         ::testing::Values(Program::kEP, Program::kIS,
                                           Program::kFT, Program::kCG,
                                           Program::kSP));

class SharedFootprintScaling : public ::testing::TestWithParam<Program> {};

TEST_P(SharedFootprintScaling, GrowsWithClassForDataKernels) {
  // EP's shared footprint is the fixed tally table; every other kernel's
  // shared data grows with the class.
  const Program program = GetParam();
  const Bytes b = totals(program, ProblemClass::kB).sharedBytes;
  const Bytes c = totals(program, ProblemClass::kC).sharedBytes;
  EXPECT_GT(c, b);
}

INSTANTIATE_TEST_SUITE_P(DataKernels, SharedFootprintScaling,
                         ::testing::Values(Program::kIS, Program::kFT,
                                           Program::kCG, Program::kSP));

TEST(ClassScalingX264, InputsGrowMonotonically) {
  Cycles previous = 0;
  for (ProblemClass cls :
       {ProblemClass::kSimSmall, ProblemClass::kSimMedium,
        ProblemClass::kSimLarge, ProblemClass::kNative}) {
    const KernelBuild build = buildKernel(Program::kX264, cls, 2, 1);
    Cycles work = 0;
    for (const auto& phases : build.threadPhases) {
      PhaseStream stream(phases);
      work += trace::analyzeStream(stream, kMaxRefs).workCycles;
    }
    EXPECT_GT(work, previous) << problemClassName(cls);
    previous = work;
  }
}

TEST(ClassScalingX264, IFramesEveryEighthFrame) {
  // GOP structure: I-frames skip motion search; with 8 frames on one
  // thread, exactly one frame (frame 0) is intra-coded, so the gather
  // count is 7/8 of an all-P build.
  const KernelBuild build = buildX264(ProblemClass::kSimSmall, 1, 1);
  std::uint64_t gatherPhases = 0;
  for (const Phase& phase : build.threadPhases[0]) {
    gatherPhases += phase.kind == Phase::Kind::kGather ? 1 : 0;
  }
  // 8 frames, 1 I-frame, 5 macroblock rows per 90-pixel-high frame.
  EXPECT_EQ(gatherPhases, 7u * (90 / 16));
}

TEST(ClassScalingCg, WorkingSetStraddlesTheScaledCaches) {
  // The regimes behind the paper's two behaviours: S/W fit the (scaled)
  // 384 KiB socket LLC, B/C far exceed even both sockets' LLCs.
  EXPECT_LT(totals(Program::kCG, ProblemClass::kW).sharedBytes, 384 * kKiB);
  EXPECT_GT(totals(Program::kCG, ProblemClass::kB).sharedBytes,
            2 * 384 * kKiB);
}

}  // namespace
}  // namespace occm::workloads
