// Characterisation tests of the six workload kernels: reference counts,
// working sets, sharing and class scaling.

#include "workloads/kernels.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "trace/stream_analysis.hpp"
#include "workloads/workload.hpp"

namespace occm::workloads {
namespace {

constexpr std::uint64_t kMaxRefs = 50'000'000;

trace::StreamStats statsOf(const KernelBuild& build, int thread) {
  PhaseStream stream(build.threadPhases[static_cast<std::size_t>(thread)]);
  return trace::analyzeStream(stream, kMaxRefs);
}

struct ProgramCase {
  Program program;
  ProblemClass cls;
};

class KernelCharacterisation : public ::testing::TestWithParam<ProgramCase> {};

TEST_P(KernelCharacterisation, BuildsNonTrivialPerThreadStreams) {
  const auto [program, cls] = GetParam();
  const KernelBuild build = buildKernel(program, cls, 4, 1);
  ASSERT_EQ(build.threadPhases.size(), 4u);
  EXPECT_FALSE(build.sizeDescription.empty());
  for (int t = 0; t < 4; ++t) {
    const trace::StreamStats stats = statsOf(build, t);
    EXPECT_GT(stats.refs, 100u) << "thread " << t;
    EXPECT_GT(stats.workCycles, 0u);
    EXPECT_GT(stats.instructions, 0u);
  }
}

TEST_P(KernelCharacterisation, DeterministicAcrossBuilds) {
  const auto [program, cls] = GetParam();
  const KernelBuild a = buildKernel(program, cls, 2, 7);
  const KernelBuild b = buildKernel(program, cls, 2, 7);
  PhaseStream sa(a.threadPhases[0]);
  PhaseStream sb(b.threadPhases[0]);
  trace::Op oa;
  trace::Op ob;
  for (int i = 0; i < 10'000; ++i) {
    const bool ha = sa.next(oa);
    const bool hb = sb.next(ob);
    ASSERT_EQ(ha, hb);
    if (!ha) {
      break;
    }
    ASSERT_EQ(oa.addr, ob.addr);
    ASSERT_EQ(oa.work, ob.work);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, KernelCharacterisation,
    ::testing::Values(ProgramCase{Program::kEP, ProblemClass::kW},
                      ProgramCase{Program::kIS, ProblemClass::kW},
                      ProgramCase{Program::kFT, ProblemClass::kW},
                      ProgramCase{Program::kCG, ProblemClass::kW},
                      ProgramCase{Program::kSP, ProblemClass::kW},
                      ProgramCase{Program::kX264, ProblemClass::kSimSmall}));

TEST(KernelScaling, CgWorkingSetGrowsWithClass) {
  Bytes previous = 0;
  for (ProblemClass cls : {ProblemClass::kS, ProblemClass::kW,
                           ProblemClass::kA, ProblemClass::kB,
                           ProblemClass::kC}) {
    const KernelBuild build = buildCg(cls, 1, 1);
    EXPECT_GT(build.sharedBytes, previous)
        << "class " << problemClassName(cls);
    previous = build.sharedBytes;
  }
}

TEST(KernelScaling, X264FootprintGrowsToNative) {
  const Bytes sim = buildX264(ProblemClass::kSimSmall, 1, 1).sharedBytes;
  const Bytes native = buildX264(ProblemClass::kNative, 1, 1).sharedBytes;
  EXPECT_GT(native, 4 * sim);
}

TEST(KernelCg, GatherDominatedAndShared) {
  const KernelBuild build = buildCg(ProblemClass::kW, 2, 1);
  const trace::StreamStats stats = statsOf(build, 0);
  EXPECT_EQ(stats.sharedFraction(), 1.0);  // CG state is all shared
  // Working set per thread ~ matrix slice + vectors; far beyond L1.
  EXPECT_GT(stats.workingSetBytes, 64 * kKiB);
}

TEST(KernelCg, IterationsRevisitTheSameElements) {
  // The working set of 2 iterations equals the working set of 4:
  // iterations replay the same sparse pattern.
  const KernelBuild build = buildCg(ProblemClass::kS, 1, 1);
  PhaseStream stream(build.threadPhases[0]);
  const auto half = trace::analyzeStream(stream, stream.totalOps() / 2);
  stream.reset();
  const auto full = trace::analyzeStream(stream, kMaxRefs);
  EXPECT_LT(static_cast<double>(full.distinctLines),
            1.2 * static_cast<double>(half.distinctLines));
}

TEST(KernelEp, MostlyPrivateWithSharedTallies) {
  const KernelBuild build = buildEp(ProblemClass::kW, 4, 1);
  const trace::StreamStats stats = statsOf(build, 0);
  EXPECT_LT(stats.sharedFraction(), 0.2);
  EXPECT_GT(stats.sharedFraction(), 0.0);
  // Tiny working set: buffer + tally lines.
  EXPECT_LT(stats.workingSetBytes, 32 * kKiB);
  // Compute heavy: much more work per reference than CG.
  const trace::StreamStats cg = statsOf(buildCg(ProblemClass::kW, 4, 1), 0);
  EXPECT_GT(stats.workPerRef(), cg.workPerRef());
}

TEST(KernelEp, SharedFootprintIsTwoLines) {
  const KernelBuild build = buildEp(ProblemClass::kS, 8, 1);
  EXPECT_EQ(build.sharedBytes, 128u);
}

TEST(KernelIs, WritesFractionSubstantial) {
  const KernelBuild build = buildIs(ProblemClass::kW, 2, 1);
  const trace::StreamStats stats = statsOf(build, 0);
  EXPECT_GT(stats.writeFraction(), 0.2);
  EXPECT_LT(stats.writeFraction(), 0.8);
}

TEST(KernelFt, PencilStridesPresent) {
  const KernelBuild build = buildFt(ProblemClass::kS, 1, 1);
  const trace::StreamStats stats = statsOf(build, 0);
  // grid 16: y stride = 16*16 = 256 bytes, z stride = 16*16*16 = 4096.
  EXPECT_TRUE(stats.strides.count(256) > 0);
  EXPECT_TRUE(stats.strides.count(4096) > 0);
  EXPECT_TRUE(stats.strides.count(64) > 0);  // unit-stride x pass
}

TEST(KernelSp, PlaneStridePresentAndWriteHeavy) {
  const KernelBuild build = buildSp(ProblemClass::kS, 1, 1);
  const trace::StreamStats stats = statsOf(build, 0);
  // grid 8, 40 B cells: row stride 320, plane stride 2560.
  EXPECT_TRUE(stats.strides.count(320) > 0);
  EXPECT_TRUE(stats.strides.count(2560) > 0);
  EXPECT_GT(stats.writeFraction(), 0.35);
}

TEST(KernelX264, SearchLocalityIsCompact) {
  const KernelBuild build = buildX264(ProblemClass::kSimSmall, 1, 1);
  const trace::StreamStats stats = statsOf(build, 0);
  // Frames + output ring at 160x90: the whole working set is small.
  EXPECT_LT(stats.workingSetBytes, 256 * kKiB);
  EXPECT_EQ(stats.sharedFraction(), 1.0);
}

TEST(KernelX264, FramesRoundRobinOverThreads) {
  const KernelBuild build = buildX264(ProblemClass::kSimSmall, 3, 1);
  // 8 frames over 3 threads: threads 0,1 get 3 frames, thread 2 gets 2.
  const auto ops0 = statsOf(build, 0).refs;
  const auto ops2 = statsOf(build, 2).refs;
  EXPECT_GT(ops0, ops2);
}

TEST(Workloads, ThreadsPartitionTheWork) {
  // Total references across threads are within 1% regardless of the
  // thread count (fixed problem size, the paper's protocol).
  auto total = [](int threads) {
    const KernelBuild build = buildCg(ProblemClass::kW, threads, 1);
    std::uint64_t refs = 0;
    for (int t = 0; t < threads; ++t) {
      PhaseStream stream(build.threadPhases[static_cast<std::size_t>(t)]);
      refs += trace::analyzeStream(stream, kMaxRefs).refs;
    }
    return refs;
  };
  const auto t1 = total(1);
  const auto t8 = total(8);
  EXPECT_NEAR(static_cast<double>(t8), static_cast<double>(t1),
              0.01 * static_cast<double>(t1));
}

TEST(WorkloadFactory, NamesFollowPaperNotation) {
  WorkloadSpec spec;
  spec.program = Program::kSP;
  spec.problemClass = ProblemClass::kC;
  spec.threads = 2;
  const WorkloadInstance instance = makeWorkload(spec);
  EXPECT_EQ(instance.name, "SP.C");
  EXPECT_EQ(instance.threads.size(), 2u);
  EXPECT_GT(instance.totalOps, 0u);
  EXPECT_GT(instance.sharedBytes, 0u);
}

TEST(WorkloadFactory, InvalidClassCombinationsThrow) {
  EXPECT_THROW((void)buildKernel(Program::kCG, ProblemClass::kNative, 1, 1),
               ContractViolation);
  EXPECT_THROW((void)buildKernel(Program::kX264, ProblemClass::kC, 1, 1),
               ContractViolation);
  WorkloadSpec spec;
  spec.threads = 0;
  EXPECT_THROW((void)makeWorkload(spec), ContractViolation);
}

TEST(ProblemNames, ValidityMatrix) {
  EXPECT_TRUE(classValidFor(Program::kEP, ProblemClass::kA));
  EXPECT_FALSE(classValidFor(Program::kEP, ProblemClass::kSimLarge));
  EXPECT_TRUE(classValidFor(Program::kX264, ProblemClass::kNative));
  EXPECT_FALSE(classValidFor(Program::kX264, ProblemClass::kS));
  EXPECT_STREQ(programName(Program::kX264), "x264");
  EXPECT_STREQ(problemClassName(ProblemClass::kSimMedium), "simmedium");
  EXPECT_EQ(workloadName(Program::kFT, ProblemClass::kB), "FT.B");
}

}  // namespace
}  // namespace occm::workloads
