// Regression drills for the network-hardening fixes the chaos layer
// exposed: the coordinator's handshake deadline and admission cap, the
// worker's asymmetric-partition idle timeout, and the advisor server's
// slowloris guard, half-close grace, abrupt-close containment and
// connection cap. Each test manufactures the hostile peer by hand (raw
// sockets or a chaos transport) and asserts the victim ends the session
// typed — dropped, refused, or answered — never hung.

#include <gtest/gtest.h>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.hpp"
#include "exec/ipc.hpp"
#include "exec/distributed/coordinator.hpp"
#include "exec/distributed/protocol.hpp"
#include "exec/distributed/worker.hpp"
#include "exec/frame_transport.hpp"
#include "serve/advisor_server.hpp"
#include "serve/protocol.hpp"

namespace occm {
namespace {

using namespace std::chrono_literals;
using RecvStatus = exec::FrameTransport::RecvStatus;

/// Blocks until the raw fd reports EOF/error (the peer dropped us) or
/// the deadline passes; returns true on EOF.
bool awaitPeerClose(int fd, int timeoutMs) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeoutMs);
  char byte = 0;
  for (;;) {
    struct pollfd p = {fd, POLLIN, 0};
    const int remaining = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - std::chrono::steady_clock::now())
            .count());
    if (remaining <= 0) {
      return false;
    }
    if (::poll(&p, 1, remaining) <= 0) {
      continue;
    }
    const ssize_t n = ::read(fd, &byte, 1);
    if (n == 0) {
      return true;  // orderly close from the peer
    }
    if (n < 0 && errno != EINTR && errno != EAGAIN) {
      return true;  // reset also counts as "dropped us"
    }
  }
}

exec::dist::JobSpec trivialJob(std::uint64_t taskId) {
  exec::dist::JobSpec job;
  job.taskId = taskId;
  job.cores = 1;
  job.program = "EP";
  job.problemClass = "S";
  return job;
}

exec::dist::TaskRunner trivialRunner() {
  return [](const exec::dist::JobSpec& job) {
    exec::dist::TaskResult result;
    result.taskId = job.taskId;
    result.hasFailure = true;
    result.failure.kind = exec::dist::WireFailureKind::kException;
    result.failure.error = "synthetic result";
    return result;
  };
}

TEST(NetHardening, CoordinatorDropsSilentHalfOpenConnections) {
  std::promise<int> portPromise;
  auto portFuture = portPromise.get_future();

  exec::dist::CoordinatorConfig config;
  config.graceWindowMs = 30'000;
  config.handshakeTimeoutMs = 150;  // the guard under test
  config.heartbeatIntervalMs = 50;
  config.onListening = [&](int port) { portPromise.set_value(port); };
  config.onResult = [](const exec::dist::TaskResult&) {};

  exec::dist::CoordinatorReport report;
  std::thread coordinator([&] {
    report = exec::dist::runCoordinator(config, {trivialJob(0)});
  });
  ASSERT_EQ(portFuture.wait_for(30s), std::future_status::ready);
  const int port = portFuture.get();

  // The slow peer: connects and never says hello. The deadline must
  // close it — observed as EOF on our side — long before any heartbeat
  // logic would.
  auto silent = exec::connectTcp("127.0.0.1", port, 5'000);
  ASSERT_TRUE(silent) << silent.error();
  EXPECT_TRUE(awaitPeerClose(*silent, 10'000));
  ::close(*silent);

  // A real worker still gets in and settles the task.
  exec::dist::WorkerOptions worker;
  worker.port = port;
  worker.workerId = "legit";
  const exec::dist::WorkerReport workerReport =
      exec::dist::runWorker(worker, trivialRunner());
  EXPECT_TRUE(workerReport.ok) << workerReport.stopReason;

  coordinator.join();
  ASSERT_EQ(report.settledTasks.size(), 1u);
  bool sawHandshakeIncident = false;
  for (const exec::dist::WorkerIncident& incident : report.incidents) {
    if (incident.kind == exec::dist::WorkerIncident::Kind::kHandshake &&
        incident.detail.find("handshake timeout") != std::string::npos) {
      sawHandshakeIncident = true;
    }
  }
  EXPECT_TRUE(sawHandshakeIncident);
}

TEST(NetHardening, CoordinatorAdmissionCapDegradesTheStormNotTheFleet) {
  std::promise<int> portPromise;
  auto portFuture = portPromise.get_future();

  exec::dist::CoordinatorConfig config;
  config.graceWindowMs = 30'000;
  config.handshakeTimeoutMs = 200;  // recycles the storm's slots
  config.heartbeatIntervalMs = 50;
  config.maxConnections = 2;
  config.onListening = [&](int port) { portPromise.set_value(port); };
  config.onResult = [](const exec::dist::TaskResult&) {};

  exec::dist::CoordinatorReport report;
  std::thread coordinator([&] {
    report = exec::dist::runCoordinator(config, {trivialJob(0)});
  });
  ASSERT_EQ(portFuture.wait_for(30s), std::future_status::ready);
  const int port = portFuture.get();

  // Reconnect storm: six silent dials against a cap of two. The excess
  // is closed at accept; the first two rot until the handshake deadline.
  std::vector<int> storm;
  for (int i = 0; i < 6; ++i) {
    auto fd = exec::connectTcp("127.0.0.1", port, 5'000);
    ASSERT_TRUE(fd) << fd.error();
    storm.push_back(*fd);
  }
  // Every storm socket must be dropped — refused or handshake-timed-out.
  for (int fd : storm) {
    EXPECT_TRUE(awaitPeerClose(fd, 10'000));
    ::close(fd);
  }

  // With the storm drained, a well-behaved worker is admitted.
  exec::dist::WorkerOptions worker;
  worker.port = port;
  worker.workerId = "survivor";
  worker.maxConnectAttempts = 50;
  worker.reconnectBackoff.base = 10;
  worker.reconnectBackoff.cap = 100;
  const exec::dist::WorkerReport workerReport =
      exec::dist::runWorker(worker, trivialRunner());
  EXPECT_TRUE(workerReport.ok) << workerReport.stopReason;

  coordinator.join();
  EXPECT_EQ(report.settledTasks.size(), 1u);
  EXPECT_GE(report.connectionsRefused, 1u);
}

TEST(NetHardening, WorkerIdleTimeoutEscapesAsymmetricPartition) {
  // A hand-rolled coordinator that completes the handshake and then goes
  // silent forever — the asymmetric partition as the worker experiences
  // it: its outbound direction works (hello got answered), inbound is
  // dead (no assigns, no pings). Without the idle guard the worker would
  // poll this session until the end of time.
  int port = 0;
  auto listenFd = exec::listenTcp("127.0.0.1", 0, &port);
  ASSERT_TRUE(listenFd) << listenFd.error();
  std::thread silentCoordinator([fd = *listenFd] {
    const int conn = ::accept(fd, nullptr, nullptr);
    ASSERT_GE(conn, 0);
    auto transport = exec::makeSocketTransport(conn);
    std::string payload;
    ASSERT_EQ(transport->recvFrame(payload, 10'000), RecvStatus::kFrame);
    exec::dist::WireMessage welcome;
    welcome.kind = exec::dist::WireMessage::Kind::kWelcome;
    welcome.protocolVersion = exec::dist::kProtocolVersion;
    ASSERT_TRUE(transport->sendFrame(exec::dist::encodeMessage(welcome)));
    // Hold the session open, saying nothing, until the worker hangs up.
    while (transport->recvFrame(payload, 200) != RecvStatus::kClosed) {
    }
    ::close(fd);
  });

  exec::dist::WorkerOptions worker;
  worker.port = port;
  worker.workerId = "partitioned";
  worker.idleTimeoutMs = 150;
  worker.maxConnectAttempts = 1;  // first silent session = typed give-up
  const exec::dist::WorkerReport report =
      exec::dist::runWorker(worker, trivialRunner());
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.stopReason.find("idle timeout"), std::string::npos)
      << report.stopReason;
  silentCoordinator.join();
}

// ---------------------------------------------------------------------
// Advisor-server drills.

struct ServerHarness {
  serve::AdvisorServerConfig config;
  serve::AdvisorServerStats stats;
  CancellationSource drain;
  std::thread thread;
  int port = 0;

  void start() {
    std::promise<int> portPromise;
    auto portFuture = portPromise.get_future();
    config.workers = 1;
    config.drain = drain.token();
    config.onListening = [&](int p) { portPromise.set_value(p); };
    thread = std::thread([this] { stats = serve::runAdvisorServer(config); });
    if (portFuture.wait_for(30s) == std::future_status::ready) {
      port = portFuture.get();
    }
  }

  void stop() {
    drain.requestStop();
    thread.join();
  }
};

serve::ServeMessage tier0Request(std::uint64_t id) {
  serve::ServeMessage message;
  message.kind = serve::ServeMessage::Kind::kRequest;
  message.request.requestId = id;
  message.request.program = "EP";
  message.request.problemClass = "S";
  message.request.machine = "test-numa4";
  message.request.tier = serve::TierPreference::kTier0;
  return message;
}

std::optional<serve::AdvisorResponse> recvResponse(
    exec::FrameTransport& transport, int timeoutMs = 30'000) {
  std::string payload;
  if (transport.recvFrame(payload, timeoutMs) != RecvStatus::kFrame) {
    return std::nullopt;
  }
  auto decoded = serve::decodeServeMessage(payload);
  if (!decoded || decoded->kind != serve::ServeMessage::Kind::kResponse) {
    return std::nullopt;
  }
  return decoded->response;
}

TEST(NetHardening, ServerSlowlorisGuardDropsStalledNotHealthy) {
  ServerHarness server;
  server.config.readProgressTimeoutMs = 200;
  server.start();
  ASSERT_GT(server.port, 0);

  // The slowloris: opens a frame and stops after four header bytes.
  auto stalled = exec::connectTcp("127.0.0.1", server.port, 5'000);
  ASSERT_TRUE(stalled) << stalled.error();
  const std::string wholeFrame =
      exec::encodeFrame(serve::encodeServeMessage(tier0Request(1)));
  ASSERT_EQ(::send(*stalled, wholeFrame.data(), 4, MSG_NOSIGNAL), 4);

  // A healthy client on the same server is served while the stall ages.
  auto healthyFd = exec::connectTcp("127.0.0.1", server.port, 5'000);
  ASSERT_TRUE(healthyFd) << healthyFd.error();
  auto healthy = exec::makeSocketTransport(*healthyFd);
  ASSERT_TRUE(
      healthy->sendFrame(serve::encodeServeMessage(tier0Request(2))));
  const auto response = recvResponse(*healthy);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->requestId, 2u);

  // The stalled connection is dropped by the guard — typed EOF, no hang.
  EXPECT_TRUE(awaitPeerClose(*stalled, 10'000));
  ::close(*stalled);

  server.stop();
  EXPECT_TRUE(server.stats.drained);
  EXPECT_GE(server.stats.connectionsStalled, 1u);
}

TEST(NetHardening, ServerAnswersPipelinedRequestsAfterHalfClose) {
  ServerHarness server;
  server.start();
  ASSERT_GT(server.port, 0);

  auto fd = exec::connectTcp("127.0.0.1", server.port, 5'000);
  ASSERT_TRUE(fd) << fd.error();
  const int rawFd = *fd;
  auto transport = exec::makeSocketTransport(rawFd);
  ASSERT_TRUE(transport->sendFrame(serve::encodeServeMessage(tier0Request(1))));
  ASSERT_TRUE(transport->sendFrame(serve::encodeServeMessage(tier0Request(2))));
  // Half-close: we are done talking, but the answers must still arrive.
  ASSERT_EQ(::shutdown(rawFd, SHUT_WR), 0);

  const auto first = recvResponse(*transport);
  const auto second = recvResponse(*transport);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->requestId, 1u);
  EXPECT_EQ(second->requestId, 2u);

  server.stop();
  EXPECT_TRUE(server.stats.drained);
  EXPECT_EQ(server.stats.responsesSent, 2u);
}

TEST(NetHardening, ServerContainsAbruptCloseToThatConnection) {
  ServerHarness server;
  server.start();
  ASSERT_GT(server.port, 0);

  // The vanisher: sends a request and disappears before the answer. The
  // server's write hits a dead socket (EPIPE territory) and must kill
  // only this connection.
  {
    auto fd = exec::connectTcp("127.0.0.1", server.port, 5'000);
    ASSERT_TRUE(fd) << fd.error();
    auto transport = exec::makeSocketTransport(*fd);
    ASSERT_TRUE(
        transport->sendFrame(serve::encodeServeMessage(tier0Request(1))));
    // Transport destructor closes the socket with the request in flight.
  }

  auto fd = exec::connectTcp("127.0.0.1", server.port, 5'000);
  ASSERT_TRUE(fd) << fd.error();
  auto survivor = exec::makeSocketTransport(*fd);
  ASSERT_TRUE(
      survivor->sendFrame(serve::encodeServeMessage(tier0Request(2))));
  const auto response = recvResponse(*survivor);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->requestId, 2u);

  server.stop();
  EXPECT_TRUE(server.stats.drained);
  EXPECT_TRUE(server.stats.error.empty());
}

TEST(NetHardening, ServerConnectionCapRefusesTheExcess) {
  ServerHarness server;
  server.config.maxConnections = 1;
  server.start();
  ASSERT_GT(server.port, 0);

  auto firstFd = exec::connectTcp("127.0.0.1", server.port, 5'000);
  ASSERT_TRUE(firstFd) << firstFd.error();
  auto first = exec::makeSocketTransport(*firstFd);
  ASSERT_TRUE(first->sendFrame(serve::encodeServeMessage(tier0Request(1))));
  ASSERT_TRUE(recvResponse(*first).has_value());

  // The second connection is admitted by the kernel but closed by the
  // server at accept: its stream ends before any frame arrives.
  auto secondFd = exec::connectTcp("127.0.0.1", server.port, 5'000);
  ASSERT_TRUE(secondFd) << secondFd.error();
  auto second = exec::makeSocketTransport(*secondFd);
  std::string payload;
  EXPECT_EQ(second->recvFrame(payload, 10'000), RecvStatus::kClosed);

  server.stop();
  EXPECT_TRUE(server.stats.drained);
  EXPECT_GE(server.stats.connectionsRefused, 1u);
}

}  // namespace
}  // namespace occm
