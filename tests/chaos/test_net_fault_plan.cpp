// NetFaultPlan unit tests: builders clamp instead of rejecting, the spec
// DSL round-trips, malformed specs fail typed, and the seeded plan
// generator is deterministic and always bounded — the properties the
// chaos soak relies on to guarantee no expressible plan can hang a test.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "exec/chaos/net_fault_plan.hpp"

namespace occm::exec::chaos {
namespace {

TEST(NetFaultPlan, BuildersClampProbabilityAndWindows) {
  NetFaultPlan plan;
  plan.drop(NetDirection::kSend, 9, 3, 9'999);  // swapped window, huge prob
  ASSERT_EQ(plan.events().size(), 1u);
  const NetFaultEvent& e = plan.events()[0];
  EXPECT_EQ(e.kind, NetFaultKind::kDrop);
  EXPECT_EQ(e.first, 3u);
  EXPECT_EQ(e.last, 9u);
  EXPECT_EQ(e.prob256, 256u);
}

TEST(NetFaultPlan, TimeShapedFaultsAreClampedToSafeBounds) {
  NetFaultPlan plan;
  plan.delay(NetDirection::kRecv, 0, kAllFrames, 256, 1'000'000);
  plan.stall(0, kAllFrames, 256, /*chunkBytes=*/0, /*delayMs=*/1'000'000);
  plan.partition(NetDirection::kSend, 0, 1'000'000);
  ASSERT_EQ(plan.events().size(), 3u);
  EXPECT_LE(plan.events()[0].param, kMaxDelayMs);
  EXPECT_GE(plan.events()[1].param, 1u);  // chunk size floor
  EXPECT_LE(plan.events()[1].param2, kMaxStallDelayMs);
  EXPECT_LE(plan.events()[2].param, kMaxPartitionMs);
}

TEST(NetFaultPlan, SpecRoundTripsThroughEveryKind) {
  NetFaultPlan plan;
  plan.drop(NetDirection::kSend, 0, 9, 128)
      .duplicate(NetDirection::kRecv, 2, 2, 256)
      .reorder(NetDirection::kSend, 1, kAllFrames, 64)
      .corrupt(NetDirection::kRecv, 0, 3, 32)
      .truncate(5, 5, 256, 7)
      .stall(0, 2, 256, 3, 2)
      .delay(NetDirection::kSend, 4, 8, 200, 25)
      .halfClose(12)
      .partition(NetDirection::kRecv, 4, 300);

  const std::string spec = plan.toSpec();
  const auto reparsed = parseNetFaultPlan(spec);
  ASSERT_TRUE(reparsed) << reparsed.error();
  ASSERT_EQ(reparsed->events().size(), plan.events().size()) << spec;
  for (std::size_t i = 0; i < plan.events().size(); ++i) {
    const NetFaultEvent& a = plan.events()[i];
    const NetFaultEvent& b = reparsed->events()[i];
    EXPECT_EQ(a.kind, b.kind) << spec;
    EXPECT_EQ(a.dir, b.dir) << spec;
    EXPECT_EQ(a.first, b.first) << spec;
    EXPECT_EQ(a.last, b.last) << spec;
    EXPECT_EQ(a.prob256, b.prob256) << spec;
    EXPECT_EQ(a.param, b.param) << spec;
    EXPECT_EQ(a.param2, b.param2) << spec;
  }
  // Re-serializing the reparsed plan must be a fixed point.
  EXPECT_EQ(reparsed->toSpec(), spec);
}

TEST(NetFaultPlan, ParseAcceptsTheDocumentedExample) {
  const auto plan =
      parseNetFaultPlan("drop:send:0-9:128,partition:recv:4:300,halfclose:12");
  ASSERT_TRUE(plan) << plan.error();
  ASSERT_EQ(plan->events().size(), 3u);
  EXPECT_EQ(plan->events()[0].kind, NetFaultKind::kDrop);
  EXPECT_EQ(plan->events()[1].kind, NetFaultKind::kPartition);
  EXPECT_EQ(plan->events()[2].kind, NetFaultKind::kHalfClose);
  EXPECT_EQ(plan->events()[2].first, 12u);
}

TEST(NetFaultPlan, EmptySpecIsAnEmptyPlan) {
  const auto plan = parseNetFaultPlan("");
  ASSERT_TRUE(plan) << plan.error();
  EXPECT_TRUE(plan->empty());
}

TEST(NetFaultPlan, ParseRejectsMalformedSpecsTyped) {
  const char* bad[] = {
      "explode:send:0-9:128",   // unknown kind
      "drop:up:0-9:128",        // unknown direction
      "drop:send:9-x:128",      // malformed window
      "drop:send:0-9:999",      // probability out of range
      "drop:send:0-9",          // missing field
      "halfclose:notanumber",   // non-numeric frame
      "partition:send:0",       // missing duration
      ",",                      // empty event between commas
  };
  for (const char* spec : bad) {
    const auto plan = parseNetFaultPlan(spec);
    EXPECT_FALSE(plan) << "accepted: " << spec;
    if (!plan) {
      EXPECT_FALSE(plan.error().empty()) << spec;
    }
  }
}

TEST(NetFaultPlan, WindowSyntaxCoversAllForms) {
  const auto plan = parseNetFaultPlan(
      "drop:send:*:256,drop:send:5:256,drop:send:7-:256,drop:send:2-4:256");
  ASSERT_TRUE(plan) << plan.error();
  ASSERT_EQ(plan->events().size(), 4u);
  EXPECT_EQ(plan->events()[0].first, 0u);
  EXPECT_EQ(plan->events()[0].last, kAllFrames);
  EXPECT_EQ(plan->events()[1].first, 5u);
  EXPECT_EQ(plan->events()[1].last, 5u);
  EXPECT_EQ(plan->events()[2].first, 7u);
  EXPECT_EQ(plan->events()[2].last, kAllFrames);
  EXPECT_EQ(plan->events()[3].first, 2u);
  EXPECT_EQ(plan->events()[3].last, 4u);
}

TEST(NetFaultPlan, PlanFromSeedIsDeterministic) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    EXPECT_EQ(planFromSeed(seed).toSpec(), planFromSeed(seed).toSpec())
        << "seed " << seed;
  }
}

TEST(NetFaultPlan, PlanFromSeedVariesAcrossSeeds) {
  std::set<std::string> specs;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    specs.insert(planFromSeed(seed).toSpec());
  }
  // Collisions are allowed, monoculture is not.
  EXPECT_GT(specs.size(), 25u);
}

TEST(NetFaultPlan, PlanFromSeedStaysInsideTheSafetyBounds) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const NetFaultPlan plan = planFromSeed(seed);
    EXPECT_FALSE(plan.empty()) << "seed " << seed;
    EXPECT_LE(plan.events().size(), 6u) << "seed " << seed;
    for (const NetFaultEvent& e : plan.events()) {
      EXPECT_LE(e.prob256, 256u) << "seed " << seed;
      EXPECT_LE(e.first, e.last) << "seed " << seed;
      switch (e.kind) {
        case NetFaultKind::kDelay:
          EXPECT_LE(e.param, kMaxDelayMs) << "seed " << seed;
          break;
        case NetFaultKind::kStall:
          EXPECT_GE(e.param, 1u) << "seed " << seed;
          EXPECT_LE(e.param2, kMaxStallDelayMs) << "seed " << seed;
          break;
        case NetFaultKind::kPartition:
          EXPECT_LE(e.param, kMaxPartitionMs) << "seed " << seed;
          break;
        default:
          break;
      }
    }
  }
}

}  // namespace
}  // namespace occm::exec::chaos
