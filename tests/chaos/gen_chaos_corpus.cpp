// Regenerates the committed chaos seed corpora for fuzz_wire_message and
// fuzz_serve_message (scripts/gen_chaos_corpus.sh). Each file is a chaos
// interleaving: a stream of canonical protocol frames pushed through the
// same seeded fault schedule the chaos transport replays — drops,
// duplicates, adjacent reorders, bit flips, truncations — so the fuzzers
// start from the exact wire shapes the chaos drills produce instead of
// rediscovering them from random bytes.
//
//   gen_chaos_corpus [corpus-root]   (default: fuzz/corpus)
//
// Deterministic by construction: every byte is a pure function of the
// seed through planFromSeed / faultFires / chaosMix, so regenerating
// produces identical files and the corpus diffs clean.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "exec/chaos/chaos_transport.hpp"
#include "exec/chaos/net_fault_plan.hpp"
#include "exec/distributed/protocol.hpp"
#include "exec/ipc.hpp"
#include "serve/protocol.hpp"

namespace {

using namespace occm;
using namespace occm::exec::chaos;

/// Canonical fleet-protocol payloads: one of each message kind that
/// carries interesting structure.
std::vector<std::string> wirePayloads() {
  using namespace occm::exec::dist;
  std::vector<std::string> payloads;

  WireMessage hello;
  hello.kind = WireMessage::Kind::kHello;
  hello.workerId = "chaos-worker";
  payloads.push_back(encodeMessage(hello));

  WireMessage welcome;
  welcome.kind = WireMessage::Kind::kWelcome;
  payloads.push_back(encodeMessage(welcome));

  WireMessage assign;
  assign.kind = WireMessage::Kind::kAssign;
  assign.job.taskId = 3;
  assign.job.cores = 2;
  assign.job.maxAttempts = 2;
  assign.job.program = "CG";
  assign.job.problemClass = "S";
  assign.job.threads = 4;
  assign.job.workloadSeed = 2011;
  payloads.push_back(encodeMessage(assign));

  WireMessage result;
  result.kind = WireMessage::Kind::kResult;
  result.result.taskId = 3;
  result.result.hasFailure = true;
  result.result.failure.kind = WireFailureKind::kException;
  result.result.failure.error = "chaos ate my homework";
  payloads.push_back(encodeMessage(result));

  WireMessage ping;
  ping.kind = WireMessage::Kind::kPing;
  ping.pingId = 17;
  payloads.push_back(encodeMessage(ping));

  WireMessage shutdown;
  shutdown.kind = WireMessage::Kind::kShutdown;
  shutdown.reason = "drain";
  payloads.push_back(encodeMessage(shutdown));

  return payloads;
}

/// Canonical serve-protocol payloads (request and response shapes).
std::vector<std::string> servePayloads() {
  using namespace occm::serve;
  std::vector<std::string> payloads;

  ServeMessage request;
  request.kind = ServeMessage::Kind::kRequest;
  request.request.requestId = 1;
  request.request.program = "EP";
  request.request.problemClass = "S";
  request.request.machine = "test-numa4";
  request.request.deadlineMs = 50;
  payloads.push_back(encodeServeMessage(request));

  ServeMessage shed;
  shed.kind = ServeMessage::Kind::kResponse;
  shed.response.requestId = 1;
  shed.response.status = ResponseStatus::kShed;
  shed.response.shedReason = ShedReason::kQueueFull;
  shed.response.queueDepth = 16;
  payloads.push_back(encodeServeMessage(shed));

  ServeMessage ok;
  ok.kind = ServeMessage::Kind::kResponse;
  ok.response.requestId = 2;
  ok.response.status = ResponseStatus::kOk;
  ok.response.tier = 0;
  ok.response.bestCores = 4;
  ok.response.bestSpeedup = 2.5;
  ok.response.efficientCores = 2;
  payloads.push_back(encodeServeMessage(ok));

  return payloads;
}

/// Applies the seed's send-side fault schedule to a frame sequence and
/// returns the resulting byte stream — what a chaos transport's peer
/// would read off the socket. Time-shaped faults (delay, stall,
/// partition) don't change bytes; partitions are modelled as their
/// observable effect, a dropped window.
std::string chaosStream(const std::vector<std::string>& payloads,
                        std::uint64_t seed) {
  const NetFaultPlan plan = planFromSeed(seed);
  std::string stream;
  std::string held;  // reorder hold, flushed after the next frame
  for (std::uint64_t index = 0; index < payloads.size(); ++index) {
    std::string frame = exec::encodeFrame(payloads[index]);
    bool drop = false;
    bool duplicate = false;
    bool reorder = false;
    for (std::size_t e = 0; e < plan.events().size(); ++e) {
      const NetFaultEvent& event = plan.events()[e];
      if (!faultFires(event, e, seed, /*connectionId=*/0,
                      NetDirection::kSend, index)) {
        continue;
      }
      switch (event.kind) {
        case NetFaultKind::kDrop:
        case NetFaultKind::kPartition:
          drop = true;
          break;
        case NetFaultKind::kDuplicate:
          duplicate = true;
          break;
        case NetFaultKind::kReorder:
          reorder = true;
          break;
        case NetFaultKind::kCorrupt: {
          const std::uint64_t mix = chaosMix(seed, 0, e, index, 0xb17);
          const std::size_t bit = mix % (frame.size() * 8);
          frame[bit / 8] ^= static_cast<char>(1u << (bit % 8));
          break;
        }
        case NetFaultKind::kTruncate: {
          const std::size_t keep = event.param == 0
                                       ? 1
                                       : static_cast<std::size_t>(event.param);
          frame.resize(std::max<std::size_t>(
              1, std::min(keep, frame.size() - 1)));
          break;
        }
        case NetFaultKind::kHalfClose:
          return stream;  // stream ends mid-conversation
        case NetFaultKind::kStall:
        case NetFaultKind::kDelay:
          break;  // timing-only: no byte-level effect
      }
    }
    if (drop) {
      continue;
    }
    if (reorder && held.empty()) {
      held = std::move(frame);
      continue;
    }
    stream += frame;
    if (duplicate) {
      stream += frame;
    }
    if (!held.empty()) {
      stream += held;
      held.clear();
    }
  }
  stream += held;  // flush like EOF does
  return stream;
}

bool writeFile(const std::filesystem::path& path, const std::string& bytes) {
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(bytes.data(), 1, bytes.size(), out);
  std::fclose(out);
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path root = argc > 1 ? argv[1] : "fuzz/corpus";
  const std::filesystem::path wireDir = root / "wire_message";
  const std::filesystem::path serveDir = root / "serve_message";
  std::error_code ec;
  std::filesystem::create_directories(wireDir, ec);
  std::filesystem::create_directories(serveDir, ec);

  const std::vector<std::string> wire = wirePayloads();
  const std::vector<std::string> serve = servePayloads();

  bool ok = true;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    // fuzz_wire_message's first input byte picks the reassembly chunk
    // stride — derive it from the seed so the corpus covers several
    // TCP segmentation shapes too.
    std::string stream;
    stream.push_back(static_cast<char>(seed % 7));
    stream += chaosStream(wire, seed);
    ok = writeFile(wireDir / ("chaos_" + std::to_string(seed) + ".bin"),
                   stream) &&
         ok;

    // fuzz_serve_message consumes raw payloads: chaos-corrupt one
    // canonical payload per seed (bit flip + truncation keyed the same
    // way the transport keys them).
    std::string payload = serve[seed % serve.size()];
    const std::uint64_t mix = chaosMix(seed, 0, 0, 0, 0x5e12e);
    const std::size_t bit = mix % (payload.size() * 8);
    payload[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    if (seed % 2 == 0) {
      payload.resize(1 + mix % payload.size());
    }
    ok = writeFile(serveDir / ("chaos_" + std::to_string(seed) + ".bin"),
                   payload) &&
         ok;
  }
  // One intact stream so the fixed-point probes start from accepted
  // canonical bytes as well.
  std::string intact;
  intact.push_back(0);
  for (const std::string& payload : wire) {
    intact += exec::encodeFrame(payload);
  }
  ok = writeFile(wireDir / "canonical.bin", intact) && ok;
  for (std::size_t i = 0; i < serve.size(); ++i) {
    ok = writeFile(serveDir / ("canonical_" + std::to_string(i) + ".bin"),
                   serve[i]) &&
         ok;
  }
  return ok ? 0 : 1;
}
