// ChaosFrameTransport drills over a loopback socketpair: one end wears
// the chaos wrapper, the other a plain FdFrameTransport, and every fault
// kind is asserted from the victim's point of view — dropped frames
// vanish, duplicates double, reorders swap, corruption surfaces as a
// typed kCorrupt, truncation poisons the peer's stream, half-close ends
// it, stalls and delays slow delivery without losing a byte, and the
// whole schedule replays bit-identically from its seed.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/chaos/chaos_transport.hpp"
#include "exec/frame_transport.hpp"

namespace occm::exec::chaos {
namespace {

using exec::FrameTransport;
using RecvStatus = exec::FrameTransport::RecvStatus;

/// A chaos endpoint and a plain peer over one AF_UNIX stream pair. Both
/// transports own their fd.
struct Duplex {
  std::unique_ptr<FrameTransport> chaotic;
  std::unique_ptr<FrameTransport> plain;
};

Duplex makePair(const ChaosConfig& config, std::uint64_t connectionId = 1) {
  int fds[2] = {-1, -1};
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Duplex d;
  d.chaotic = makeChaosSocketTransport(fds[0], config, connectionId);
  d.plain = exec::makeSocketTransport(fds[1]);
  return d;
}

/// Drains every frame currently deliverable to `t` within `timeoutMs`.
std::vector<std::string> recvAll(FrameTransport& t, int timeoutMs = 2'000) {
  std::vector<std::string> frames;
  std::string payload;
  while (t.recvFrame(payload, timeoutMs) == RecvStatus::kFrame) {
    frames.push_back(payload);
    timeoutMs = 200;  // subsequent frames are already in flight
  }
  return frames;
}

TEST(ChaosTransport, EmptyPlanIsAByteIdenticalPassthrough) {
  Duplex d = makePair(ChaosConfig{});
  for (int i = 0; i < 8; ++i) {
    const std::string out = "frame-" + std::to_string(i);
    ASSERT_TRUE(d.chaotic->sendFrame(out));
    ASSERT_TRUE(d.plain->sendFrame("echo-" + out));
  }
  const auto atPeer = recvAll(*d.plain);
  const auto atChaos = recvAll(*d.chaotic);
  ASSERT_EQ(atPeer.size(), 8u);
  ASSERT_EQ(atChaos.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(atPeer[static_cast<std::size_t>(i)],
              "frame-" + std::to_string(i));
    EXPECT_EQ(atChaos[static_cast<std::size_t>(i)],
              "echo-frame-" + std::to_string(i));
  }
}

TEST(ChaosTransport, SendDropSwallowsExactlyTheWindow) {
  ChaosConfig config;
  config.plan.drop(NetDirection::kSend, 1, 2);  // frames 1 and 2 vanish
  Duplex d = makePair(config);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(d.chaotic->sendFrame("f" + std::to_string(i)));
  }
  const auto got = recvAll(*d.plain);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "f0");
  EXPECT_EQ(got[1], "f3");
}

TEST(ChaosTransport, SendDuplicateDeliversTwice) {
  ChaosConfig config;
  config.plan.duplicate(NetDirection::kSend, 0, 0);
  Duplex d = makePair(config);
  ASSERT_TRUE(d.chaotic->sendFrame("once"));
  ASSERT_TRUE(d.chaotic->sendFrame("after"));
  const auto got = recvAll(*d.plain);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], "once");
  EXPECT_EQ(got[1], "once");
  EXPECT_EQ(got[2], "after");
}

TEST(ChaosTransport, SendReorderSwapsAdjacentFrames) {
  ChaosConfig config;
  config.plan.reorder(NetDirection::kSend, 0, 0);
  Duplex d = makePair(config);
  ASSERT_TRUE(d.chaotic->sendFrame("first"));
  ASSERT_TRUE(d.chaotic->sendFrame("second"));
  const auto got = recvAll(*d.plain);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "second");
  EXPECT_EQ(got[1], "first");
}

TEST(ChaosTransport, SendCorruptionSurfacesAsTypedCorruptAtThePeer) {
  ChaosConfig config;
  config.plan.corrupt(NetDirection::kSend, 0, 0);
  Duplex d = makePair(config);
  ASSERT_TRUE(d.chaotic->sendFrame("poisoned payload bytes"));
  std::string payload;
  EXPECT_EQ(d.plain->recvFrame(payload, 2'000), RecvStatus::kCorrupt);
  EXPECT_FALSE(d.plain->lastError().empty());
}

TEST(ChaosTransport, TruncationPoisonsThePeersStream) {
  ChaosConfig config;
  config.plan.truncate(0, 0, 256, /*keepBytes=*/5);
  Duplex d = makePair(config);
  ASSERT_TRUE(d.chaotic->sendFrame("this frame is cut short"));
  // The next frame's bytes land inside the truncated frame's declared
  // length, so the peer sees a CRC/framing failure — typed, not a hang.
  ASSERT_TRUE(d.chaotic->sendFrame("and this one lands inside it"));
  std::string payload;
  EXPECT_EQ(d.plain->recvFrame(payload, 2'000), RecvStatus::kCorrupt);
}

TEST(ChaosTransport, HalfCloseFailsLocalSendsAndEndsThePeersStream) {
  ChaosConfig config;
  config.plan.halfClose(0);  // shutdown(SHUT_WR) after frame 0
  Duplex d = makePair(config);
  ASSERT_TRUE(d.chaotic->sendFrame("last words"));
  EXPECT_FALSE(d.chaotic->sendFrame("never sent"));
  EXPECT_FALSE(d.chaotic->lastError().empty());
  std::string payload;
  ASSERT_EQ(d.plain->recvFrame(payload, 2'000), RecvStatus::kFrame);
  EXPECT_EQ(payload, "last words");
  EXPECT_EQ(d.plain->recvFrame(payload, 2'000), RecvStatus::kClosed);
}

TEST(ChaosTransport, RecvDropSwallowsInboundFrames) {
  ChaosConfig config;
  config.plan.drop(NetDirection::kRecv, 0, 0);
  Duplex d = makePair(config);
  ASSERT_TRUE(d.plain->sendFrame("dropped on arrival"));
  ASSERT_TRUE(d.plain->sendFrame("delivered"));
  const auto got = recvAll(*d.chaotic);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "delivered");
}

TEST(ChaosTransport, RecvCorruptionPoisonsOwnReassemblerTyped) {
  ChaosConfig config;
  config.plan.corrupt(NetDirection::kRecv, 0, kAllFrames);
  Duplex d = makePair(config);
  ASSERT_TRUE(d.plain->sendFrame("inbound bytes get a bit flip"));
  std::string payload;
  EXPECT_EQ(d.chaotic->recvFrame(payload, 2'000), RecvStatus::kCorrupt);
  EXPECT_FALSE(d.chaotic->lastError().empty());
}

TEST(ChaosTransport, StallStillDeliversEveryByte) {
  ChaosConfig config;
  config.plan.stall(0, kAllFrames, 256, /*chunkBytes=*/3, /*delayMs=*/1);
  Duplex d = makePair(config);
  const std::string big(512, 'x');
  ASSERT_TRUE(d.chaotic->sendFrame(big));
  ASSERT_TRUE(d.chaotic->sendFrame("tail"));
  const auto got = recvAll(*d.plain);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], big);
  EXPECT_EQ(got[1], "tail");
}

TEST(ChaosTransport, DelayHoldsButNeverLoses) {
  ChaosConfig config;
  config.plan.delay(NetDirection::kSend, 0, kAllFrames, 256, 5);
  config.plan.delay(NetDirection::kRecv, 0, kAllFrames, 256, 5);
  Duplex d = makePair(config);
  ASSERT_TRUE(d.chaotic->sendFrame("slow out"));
  ASSERT_TRUE(d.plain->sendFrame("slow in"));
  std::string payload;
  ASSERT_EQ(d.plain->recvFrame(payload, 2'000), RecvStatus::kFrame);
  EXPECT_EQ(payload, "slow out");
  ASSERT_EQ(d.chaotic->recvFrame(payload, 2'000), RecvStatus::kFrame);
  EXPECT_EQ(payload, "slow in");
}

TEST(ChaosTransport, SendPartitionSwallowsTheWindowThenHeals) {
  ChaosConfig config;
  config.plan.partition(NetDirection::kSend, 0, /*durationMs=*/100);
  Duplex d = makePair(config);
  // Both sends land inside the partition window: swallowed, not queued.
  ASSERT_TRUE(d.chaotic->sendFrame("lost-0"));
  ASSERT_TRUE(d.chaotic->sendFrame("lost-1"));
  std::string payload;
  EXPECT_EQ(d.plain->recvFrame(payload, 50), RecvStatus::kTimeout);
  // After the window expires the link heals.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  ASSERT_TRUE(d.chaotic->sendFrame("healed"));
  ASSERT_EQ(d.plain->recvFrame(payload, 2'000), RecvStatus::kFrame);
  EXPECT_EQ(payload, "healed");
}

TEST(ChaosTransport, RecvPartitionStallsDeliveryWithoutByteLoss) {
  ChaosConfig config;
  config.plan.partition(NetDirection::kRecv, 0, /*durationMs=*/150);
  Duplex d = makePair(config);
  ASSERT_TRUE(d.plain->sendFrame("buffered through the partition"));
  // During the window the bytes sit in the kernel buffer, undelivered.
  std::string payload;
  EXPECT_EQ(d.chaotic->recvFrame(payload, 20), RecvStatus::kTimeout);
  // A recv partition models a stalled stream, not a lossy one: once the
  // window passes, the same bytes arrive intact.
  ASSERT_EQ(d.chaotic->recvFrame(payload, 2'000), RecvStatus::kFrame);
  EXPECT_EQ(payload, "buffered through the partition");
}

TEST(ChaosTransport, ScheduleIsAPureFunctionOfSeedAndIndices) {
  NetFaultPlan plan;
  plan.drop(NetDirection::kSend, 0, kAllFrames, 128);
  const NetFaultEvent& e = plan.events()[0];
  for (std::uint64_t frame = 0; frame < 64; ++frame) {
    EXPECT_EQ(faultFires(e, 0, 42, 7, NetDirection::kSend, frame),
              faultFires(e, 0, 42, 7, NetDirection::kSend, frame));
    EXPECT_EQ(chaosMix(42, 7, 0, frame, 1), chaosMix(42, 7, 0, frame, 1));
  }
  // Out-of-window and wrong-direction frames never fire.
  NetFaultPlan windowed;
  windowed.drop(NetDirection::kSend, 3, 5);
  const NetFaultEvent& w = windowed.events()[0];
  EXPECT_FALSE(faultFires(w, 0, 42, 7, NetDirection::kSend, 2));
  EXPECT_FALSE(faultFires(w, 0, 42, 7, NetDirection::kSend, 6));
  EXPECT_FALSE(faultFires(w, 0, 42, 7, NetDirection::kRecv, 4));
  EXPECT_TRUE(faultFires(w, 0, 42, 7, NetDirection::kSend, 4));
}

TEST(ChaosTransport, SameSeedSameInterleavingDifferentSeedDecorrelates) {
  // With prob 128, the set of dropped frame indices is a deterministic
  // function of (seed, connectionId) — replay it twice over real sockets
  // and the survivor sets must match exactly.
  const auto survivors = [](std::uint64_t seed, std::uint64_t connId) {
    ChaosConfig config;
    config.plan.drop(NetDirection::kSend, 0, kAllFrames, 128);
    config.seed = seed;
    Duplex d = makePair(config, connId);
    for (int i = 0; i < 24; ++i) {
      EXPECT_TRUE(d.chaotic->sendFrame("f" + std::to_string(i)));
    }
    std::string joined;
    for (const std::string& f : recvAll(*d.plain, 500)) {
      joined += f + ",";
    }
    return joined;
  };
  const std::string a = survivors(1, 1);
  EXPECT_EQ(a, survivors(1, 1));
  // Different seeds / connection ids should (overwhelmingly) differ.
  EXPECT_NE(a, survivors(2, 1));
  EXPECT_NE(a, survivors(1, 2));
}

}  // namespace
}  // namespace occm::exec::chaos
