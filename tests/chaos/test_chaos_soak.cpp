// Multi-seed chaos soak: the PR's enforced invariant, stated as tests.
//
// Fleet leg: for every seed, a coordinator + two chaos-wrapped workers
// run the same small sweep while planFromSeed(seed) drops, duplicates,
// reorders, corrupts, stalls, delays, partitions and half-closes their
// connections — and the merged CSV must still be byte-identical to the
// serial in-process reference. Chaos may change who computes what and
// how often it is re-dispatched; it may never change a byte of output.
//
// Server leg: for every seed, an advisor server wearing a chaos
// transport factory serves a burst of clients; every client session ends
// in a typed outcome (answer, shed, typed transport failure) and the
// server itself always drains cleanly. Nothing hangs: every blocking
// call in both legs carries a deadline, and the suite's own runtime is
// the proof.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "analysis/csv.hpp"
#include "analysis/distributed_sweep.hpp"
#include "analysis/experiment.hpp"
#include "common/cancellation.hpp"
#include "exec/chaos/chaos_transport.hpp"
#include "serve/advisor_server.hpp"
#include "serve/protocol.hpp"
#include "topology/presets.hpp"

namespace occm::analysis {
namespace {

constexpr std::uint64_t kFleetSeeds = 20;
constexpr std::uint64_t kServerSeeds = 20;

SweepConfig baseConfig() {
  SweepConfig config;
  config.machine = topology::testNuma4();
  config.workload.program = workloads::Program::kEP;
  config.workload.problemClass = workloads::ProblemClass::kS;
  config.workload.threads = 4;
  config.parallel.workers = 1;
  return config;
}

const std::string& serialReference() {
  static const std::string csv = [] {
    return sweepToCsv(runSweep(baseConfig()));
  }();
  return csv;
}

/// One chaos-fleet run: coordinator with tight fleet timing, two workers
/// whose every connection replays planFromSeed(seed).
std::string chaosFleetCsv(std::uint64_t seed) {
  auto port = std::make_shared<std::promise<int>>();
  std::shared_future<int> portReady(port->get_future());

  SweepConfig config = baseConfig();
  config.distributed.listen = true;
  config.distributed.port = 0;
  // Tight timing so lost frames, dead sessions and expired leases are
  // discovered in test time, not production time. The local pool remains
  // the terminal fallback: even a fleet that chaos renders useless must
  // converge through it.
  config.distributed.graceWindowSeconds = 1.0;
  config.distributed.heartbeatSeconds = 0.05;
  config.distributed.heartbeatTimeoutSeconds = 0.5;
  config.distributed.leaseSeconds = 0.5;
  config.distributed.speculativeAfterSeconds = 0.2;
  config.distributed.maxLeaseExpiries = 3;
  config.distributed.onListening = [port](int boundPort) {
    port->set_value(boundPort);
  };

  std::vector<std::thread> workers;
  std::vector<exec::dist::WorkerReport> reports(2);
  for (std::size_t i = 0; i < reports.size(); ++i) {
    workers.emplace_back([&reports, portReady, seed, i] {
      SweepWorkerOptions options;
      options.workerId = "chaos-" + std::to_string(i);
      options.port = portReady.get();
      options.chaos.seed = seed;
      options.chaos.plan = exec::chaos::planFromSeed(seed);
      options.reconnectBackoff = {.base = 5, .cap = 50, .jitterPct256 = 64,
                                  .seed = seed};
      options.idleTimeoutMs = 250;
      options.maxConnectAttempts = 25;
      // Chaos can eat the handshake itself; the per-attempt deadline is
      // what bounds a worker that never gets a welcome through.
      options.connectTimeoutMs = 300;
      reports[i] = runSweepWorker(options);
    });
  }
  const SweepResult sweep = runSweep(config);
  for (std::thread& worker : workers) {
    worker.join();
  }
  // Worker exits are themselves typed, whatever chaos did to them.
  for (const exec::dist::WorkerReport& report : reports) {
    EXPECT_FALSE(report.stopReason.empty()) << "seed " << seed;
  }
  EXPECT_TRUE(sweep.pendingCoreCounts().empty()) << "seed " << seed;
  return sweepToCsv(sweep);
}

TEST(ChaosSoak, FleetConvergesByteIdenticalUnderEverySeed) {
  const std::string& reference = serialReference();
  for (std::uint64_t seed = 1; seed <= kFleetSeeds; ++seed) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed) + " plan " +
                 exec::chaos::planFromSeed(seed).toSpec());
    EXPECT_EQ(chaosFleetCsv(seed), reference);
  }
}

// ---------------------------------------------------------------------
// Server leg.

serve::ServeMessage tier0Request(std::uint64_t id) {
  serve::ServeMessage message;
  message.kind = serve::ServeMessage::Kind::kRequest;
  message.request.requestId = id;
  message.request.program = "EP";
  message.request.problemClass = "S";
  message.request.machine = "test-numa4";
  message.request.tier = serve::TierPreference::kTier0;
  return message;
}

/// One client session against a chaotic server: pipelines a few
/// requests, reads until the stream ends one way or another. Every exit
/// path is a typed RecvStatus — the assertion is that we always get
/// here, bounded by the recv deadline.
void runClientSession(int serverPort, std::uint64_t /*seed*/) {
  auto fd = exec::connectTcp("127.0.0.1", serverPort, 5'000);
  if (!fd) {
    return;  // refused at the admission cap: typed at connect
  }
  auto transport = exec::makeSocketTransport(*fd);
  for (std::uint64_t id = 1; id <= 3; ++id) {
    if (!transport->sendFrame(
            serve::encodeServeMessage(tier0Request(id)))) {
      return;  // typed send failure (half-closed / dropped by chaos)
    }
  }
  for (;;) {
    std::string payload;
    switch (transport->recvFrame(payload, 2'000)) {
      case exec::FrameTransport::RecvStatus::kFrame:
        continue;  // an answer or a typed shed — both fine
      case exec::FrameTransport::RecvStatus::kTimeout:
        // Chaos swallowed responses; the deadline is our typed exit.
        return;
      case exec::FrameTransport::RecvStatus::kClosed:
      case exec::FrameTransport::RecvStatus::kCorrupt:
      case exec::FrameTransport::RecvStatus::kError:
        return;  // typed stream end
    }
  }
}

TEST(ChaosSoak, ServerAlwaysDrainsUnderEverySeed) {
  for (std::uint64_t seed = 1; seed <= kServerSeeds; ++seed) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed) + " plan " +
                 exec::chaos::planFromSeed(seed).toSpec());

    std::promise<int> portPromise;
    auto portFuture = portPromise.get_future();
    CancellationSource drain;

    serve::AdvisorServerConfig config;
    config.workers = 1;
    config.readProgressTimeoutMs = 300;  // chaos stalls must be reaped
    config.drain = drain.token();
    exec::chaos::ChaosConfig chaos;
    chaos.seed = seed;
    chaos.plan = exec::chaos::planFromSeed(seed);
    config.transportFactory = exec::chaos::chaosTransportFactory(chaos);
    config.onListening = [&](int p) { portPromise.set_value(p); };

    serve::AdvisorServerStats stats;
    std::thread server([&] { stats = serve::runAdvisorServer(config); });
    ASSERT_EQ(portFuture.wait_for(std::chrono::seconds(30)),
              std::future_status::ready);
    const int port = portFuture.get();

    std::vector<std::thread> clients;
    for (int c = 0; c < 3; ++c) {
      clients.emplace_back(
          [port, seed] { runClientSession(port, seed); });
    }
    for (std::thread& client : clients) {
      client.join();
    }

    drain.requestStop();
    server.join();

    // The invariant: whatever chaos did to the sessions, the server run
    // itself ends typed — drained, no listen error, counters coherent.
    EXPECT_TRUE(stats.drained);
    EXPECT_TRUE(stats.error.empty()) << stats.error;
    EXPECT_LE(stats.responsesSent,
              stats.requestsDecoded);  // never answers from thin air
  }
}

}  // namespace
}  // namespace occm::analysis
