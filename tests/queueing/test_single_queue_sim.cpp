// Verifies the single-queue DES against closed-form queueing results —
// the empirical grounding of the paper's M/M/1 assumption (eq. 5).

#include "queueing/single_queue_sim.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "queueing/models.hpp"

namespace occm::queueing {
namespace {

class Mm1SimTest : public ::testing::TestWithParam<double> {};

TEST_P(Mm1SimTest, MatchesFormulaAcrossLoads) {
  const double lambda = GetParam();
  SingleQueueConfig config;
  config.lambda = lambda;
  config.mu = 1.0;
  config.requests = 400'000;
  const SingleQueueResult result = simulateSingleQueue(config);
  const double expected = mm1MeanSojourn(lambda, 1.0);
  EXPECT_NEAR(result.sojourn.mean(), expected, 0.08 * expected);
  EXPECT_NEAR(result.utilization, lambda, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Loads, Mm1SimTest,
                         ::testing::Values(0.2, 0.5, 0.7, 0.85));

TEST(SingleQueueSim, Md1HasHalfTheWait) {
  SingleQueueConfig config;
  config.lambda = 0.8;
  config.mu = 1.0;
  config.requests = 400'000;
  config.service = ServiceDiscipline::kDeterministic;
  const SingleQueueResult md1 = simulateSingleQueue(config);
  EXPECT_NEAR(md1.wait.mean(), mm1MeanWait(0.8, 1.0) / 2.0,
              0.15 * mm1MeanWait(0.8, 1.0));
}

TEST(SingleQueueSim, Deterministic) {
  SingleQueueConfig config;
  config.requests = 10'000;
  const SingleQueueResult a = simulateSingleQueue(config);
  const SingleQueueResult b = simulateSingleQueue(config);
  EXPECT_EQ(a.sojourn.mean(), b.sojourn.mean());
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST(SingleQueueSim, SeedChangesOutcomeSlightly) {
  SingleQueueConfig a;
  a.requests = 20'000;
  SingleQueueConfig b = a;
  b.seed = a.seed + 1;
  const SingleQueueResult ra = simulateSingleQueue(a);
  const SingleQueueResult rb = simulateSingleQueue(b);
  EXPECT_NE(ra.sojourn.mean(), rb.sojourn.mean());
  EXPECT_NEAR(ra.sojourn.mean(), rb.sojourn.mean(),
              0.2 * ra.sojourn.mean());
}

TEST(SingleQueueSim, BurstyArrivalsWaitLonger) {
  // Same long-run rate, heavy-tailed bursts: mean wait must exceed the
  // Poisson case — the queueing-theory face of "bursty traffic hurts".
  SingleQueueConfig poisson;
  poisson.lambda = 0.5;
  poisson.requests = 200'000;
  SingleQueueConfig bursty = poisson;
  bursty.arrivals = ArrivalProcess::kBurstyOnOff;
  const SingleQueueResult rp = simulateSingleQueue(poisson);
  const SingleQueueResult rb = simulateSingleQueue(bursty);
  EXPECT_GT(rb.wait.mean(), 1.5 * rp.wait.mean());
}

TEST(SingleQueueSim, InvalidConfigThrows) {
  SingleQueueConfig config;
  config.lambda = 0.0;
  EXPECT_THROW((void)simulateSingleQueue(config), ContractViolation);
  config.lambda = 0.5;
  config.mu = 0.0;
  EXPECT_THROW((void)simulateSingleQueue(config), ContractViolation);
  config.mu = 1.0;
  config.requests = 0;
  EXPECT_THROW((void)simulateSingleQueue(config), ContractViolation);
}

TEST(SingleQueueSim, LowLoadNearZeroWait) {
  SingleQueueConfig config;
  config.lambda = 0.01;
  config.requests = 50'000;
  const SingleQueueResult result = simulateSingleQueue(config);
  EXPECT_LT(result.wait.mean(), 0.05);
  EXPECT_NEAR(result.sojourn.mean(), 1.0, 0.05);
}

}  // namespace
}  // namespace occm::queueing
