#include "queueing/models.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace occm::queueing {
namespace {

TEST(Mm1, KnownValues) {
  // lambda 0.5, mu 1: sojourn = 1/(1-0.5) = 2; wait = 0.5/(1*0.5) = 1.
  EXPECT_NEAR(mm1MeanSojourn(0.5, 1.0), 2.0, 1e-12);
  EXPECT_NEAR(mm1MeanWait(0.5, 1.0), 1.0, 1e-12);
  EXPECT_NEAR(mm1MeanCustomers(0.5, 1.0), 1.0, 1e-12);
}

TEST(Mm1, SojournIsWaitPlusService) {
  const double lambda = 0.7;
  const double mu = 1.3;
  EXPECT_NEAR(mm1MeanSojourn(lambda, mu),
              mm1MeanWait(lambda, mu) + 1.0 / mu, 1e-12);
}

TEST(Mm1, LittlesLawHolds) {
  const double lambda = 0.6;
  const double mu = 1.0;
  // L = lambda * W.
  EXPECT_NEAR(mm1MeanCustomers(lambda, mu),
              lambda * mm1MeanSojourn(lambda, mu), 1e-12);
}

TEST(Mm1, DivergesTowardsSaturation) {
  EXPECT_GT(mm1MeanSojourn(0.99, 1.0), mm1MeanSojourn(0.9, 1.0) * 5);
}

TEST(Mm1, UnstableThrows) {
  EXPECT_THROW((void)mm1MeanSojourn(1.0, 1.0), ContractViolation);
  EXPECT_THROW((void)mm1MeanSojourn(2.0, 1.0), ContractViolation);
  EXPECT_THROW((void)mm1MeanWait(-0.1, 1.0), ContractViolation);
  EXPECT_THROW((void)mm1MeanSojourn(0.5, 0.0), ContractViolation);
}

TEST(Utilization, Basic) {
  EXPECT_NEAR(utilization(0.25, 0.5), 0.5, 1e-12);
  EXPECT_THROW((void)utilization(1.0, 0.0), ContractViolation);
}

TEST(ErlangC, SingleServerReducesToRho) {
  // For c = 1, P(wait) = rho.
  for (double rho : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(erlangC(rho, 1.0, 1), rho, 1e-9);
  }
}

TEST(ErlangC, MoreServersWaitLess) {
  const double lambda = 1.8;
  const double mu = 1.0;
  EXPECT_GT(erlangC(lambda, mu, 2), erlangC(lambda, mu, 3));
  EXPECT_GT(erlangC(lambda, mu, 3), erlangC(lambda, mu, 8));
}

TEST(ErlangC, UnstableThrows) {
  EXPECT_THROW((void)erlangC(2.0, 1.0, 2), ContractViolation);
  EXPECT_THROW((void)erlangC(1.0, 1.0, 0), ContractViolation);
}

TEST(Mmc, SingleServerMatchesMm1) {
  const double lambda = 0.6;
  const double mu = 1.0;
  EXPECT_NEAR(mmcMeanSojourn(lambda, mu, 1), mm1MeanSojourn(lambda, mu),
              1e-9);
}

TEST(Mmc, PoolingBeatsSingleFastServerOnWait) {
  // Classic result: at the same total capacity, sojourn in M/M/2 with mu
  // is larger than M/M/1 with 2mu (service dominates), but the *wait* in
  // the pooled system is below a single slow server's.
  const double lambda = 1.2;
  const double mu = 1.0;
  const double mm2 = mmcMeanSojourn(lambda, mu, 2);
  EXPECT_GT(mm2, mm1MeanSojourn(lambda, 2.0 * mu));
  EXPECT_LT(mm2, mm1MeanSojourn(lambda / 2.0, mu) + 1.0);
}

TEST(Md1, HalfTheQueueingOfMm1) {
  const double lambda = 0.8;
  const double mu = 1.0;
  const double md1Wait = md1MeanSojourn(lambda, mu) - 1.0 / mu;
  const double mm1Wait = mm1MeanWait(lambda, mu);
  EXPECT_NEAR(md1Wait, mm1Wait / 2.0, 1e-9);
}

TEST(Mg1, PollaczekKhinchineLimits) {
  const double lambda = 0.5;
  const double mu = 1.0;
  // scv = 1 reduces to M/M/1; scv = 0 reduces to M/D/1.
  EXPECT_NEAR(mg1MeanSojourn(lambda, mu, 1.0), mm1MeanSojourn(lambda, mu),
              1e-9);
  EXPECT_NEAR(mg1MeanSojourn(lambda, mu, 0.0), md1MeanSojourn(lambda, mu),
              1e-9);
  // Higher variability means longer sojourn.
  EXPECT_GT(mg1MeanSojourn(lambda, mu, 4.0), mm1MeanSojourn(lambda, mu));
}

TEST(Mg1, NegativeScvThrows) {
  EXPECT_THROW((void)mg1MeanSojourn(0.5, 1.0, -0.1), ContractViolation);
}

TEST(MachineRepairman, SingleStationHasNoQueueing) {
  const RepairmanResult r = machineRepairman(1, 10.0, 1.0);
  EXPECT_NEAR(r.meanSojourn, 1.0, 1e-12);
  EXPECT_NEAR(r.throughput, 1.0 / 11.0, 1e-12);
}

TEST(MachineRepairman, ZeroThinkTimeSaturatesServer) {
  const RepairmanResult r = machineRepairman(16, 0.0, 2.0);
  EXPECT_NEAR(r.utilization, 1.0, 1e-6);
  EXPECT_NEAR(r.throughput, 2.0, 1e-6);
}

TEST(MachineRepairman, SojournGrowsWithPopulation) {
  const double z = 50.0;
  const double mu = 1.0;
  double prev = 0.0;
  for (std::size_t n : {1u, 8u, 32u, 128u}) {
    const RepairmanResult r = machineRepairman(n, z, mu);
    EXPECT_GE(r.meanSojourn, prev);
    prev = r.meanSojourn;
  }
  // Deep saturation: sojourn ~ N/mu - z.
  const RepairmanResult big = machineRepairman(512, z, mu);
  EXPECT_NEAR(big.meanSojourn, 512.0 / mu - z, 2.0);
}

TEST(MachineRepairman, UtilizationBounded) {
  for (std::size_t n : {1u, 4u, 64u}) {
    const RepairmanResult r = machineRepairman(n, 10.0, 1.0);
    EXPECT_GT(r.utilization, 0.0);
    EXPECT_LE(r.utilization, 1.0 + 1e-9);
  }
}

TEST(MachineRepairman, InvalidInputsThrow) {
  EXPECT_THROW((void)machineRepairman(0, 1.0, 1.0), ContractViolation);
  EXPECT_THROW((void)machineRepairman(1, -1.0, 1.0), ContractViolation);
  EXPECT_THROW((void)machineRepairman(1, 1.0, 0.0), ContractViolation);
}

}  // namespace
}  // namespace occm::queueing
