#include "topology/machine_spec.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "topology/presets.hpp"

namespace occm::topology {
namespace {

TEST(Presets, AllValidateAndMatchThePaper) {
  const MachineSpec uma = intelUma8();
  EXPECT_EQ(uma.logicalCores(), 8);
  EXPECT_EQ(uma.sockets, 2);
  EXPECT_EQ(uma.controllers(), 1);
  EXPECT_EQ(uma.memoryArchitecture, MemoryArchitecture::kUma);
  EXPECT_GT(uma.busServiceCycles, 0u);

  const MachineSpec numa = intelNuma24();
  EXPECT_EQ(numa.logicalCores(), 24);
  EXPECT_EQ(numa.sockets, 2);
  EXPECT_EQ(numa.smtPerCore, 2);
  EXPECT_EQ(numa.controllers(), 2);
  EXPECT_EQ(numa.logicalCoresPerSocket(), 12);
  EXPECT_EQ(numa.memoryArchitecture, MemoryArchitecture::kNuma);

  const MachineSpec amd = amdNuma48();
  EXPECT_EQ(amd.logicalCores(), 48);
  EXPECT_EQ(amd.sockets, 4);
  EXPECT_EQ(amd.diesPerSocket, 2);
  EXPECT_EQ(amd.controllers(), 8);
  EXPECT_EQ(amd.dies(), 8);
}

TEST(Presets, PaperMachinesListsAllThree) {
  const auto machines = paperMachines();
  ASSERT_EQ(machines.size(), 3u);
  EXPECT_EQ(machines[0].logicalCores(), 8);
  EXPECT_EQ(machines[1].logicalCores(), 24);
  EXPECT_EQ(machines[2].logicalCores(), 48);
}

TEST(Presets, TestMachinesValidate) {
  EXPECT_NO_THROW(testNuma4().validate());
  EXPECT_NO_THROW(testUma4().validate());
  EXPECT_EQ(testNuma4().logicalCores(), 4);
  EXPECT_EQ(testUma4().controllers(), 1);
}

TEST(MachineSpec, LastLevelCacheIsHighestLevel) {
  const MachineSpec numa = intelNuma24();
  EXPECT_EQ(numa.lastLevelCache().level, 3);
  EXPECT_EQ(numa.lastLevelCache().scope, CacheScope::kPerSocket);
  const MachineSpec uma = intelUma8();
  EXPECT_EQ(uma.lastLevelCache().level, 2);
}

TEST(MachineSpecValidate, RejectsNonConsecutiveCacheLevels) {
  MachineSpec m = testNuma4();
  m.caches[1].level = 3;
  EXPECT_THROW((void)m.validate(), ContractViolation);
}

TEST(MachineSpecValidate, RejectsMixedLineSizes) {
  MachineSpec m = testNuma4();
  m.caches[1].lineSize = 128;
  EXPECT_THROW((void)m.validate(), ContractViolation);
}

TEST(MachineSpecValidate, RejectsAsymmetricHopMatrix) {
  MachineSpec m = testNuma4();
  m.hopMatrix = {{0, 1}, {2, 0}};
  EXPECT_THROW((void)m.validate(), ContractViolation);
}

TEST(MachineSpecValidate, RejectsNonZeroDiagonal) {
  MachineSpec m = testNuma4();
  m.hopMatrix = {{1, 1}, {1, 0}};
  EXPECT_THROW((void)m.validate(), ContractViolation);
}

TEST(MachineSpecValidate, RejectsWrongHopMatrixSize) {
  MachineSpec m = testNuma4();
  m.hopMatrix = {{0}};
  EXPECT_THROW((void)m.validate(), ContractViolation);
}

TEST(MachineSpecValidate, RejectsUmaWithHopMatrix) {
  MachineSpec m = testUma4();
  m.hopMatrix = {{0}};
  EXPECT_THROW((void)m.validate(), ContractViolation);
}

TEST(MachineSpecValidate, RejectsNumaWithMachineControllers) {
  MachineSpec m = testNuma4();
  m.controllerScope = ControllerScope::kMachine;
  EXPECT_THROW((void)m.validate(), ContractViolation);
}

TEST(MachineSpecValidate, RejectsRowMissCheaperThanHit) {
  MachineSpec m = testNuma4();
  m.rowMissServiceCycles = m.rowHitServiceCycles - 1;
  EXPECT_THROW((void)m.validate(), ContractViolation);
}

TEST(MachineSpecValidate, RejectsNonPowerOfTwoPageSize) {
  MachineSpec m = testNuma4();
  m.pageSize = 3000;
  EXPECT_THROW((void)m.validate(), ContractViolation);
}

TEST(MachineSpecValidate, RejectsZeroCores) {
  MachineSpec m = testNuma4();
  m.coresPerDie = 0;
  EXPECT_THROW((void)m.validate(), ContractViolation);
}

TEST(MachineSpecValidate, RejectsCacheSizeNotLineMultiple) {
  MachineSpec m = testNuma4();
  m.caches[0].size = 1000;  // not a multiple of 64
  EXPECT_THROW((void)m.validate(), ContractViolation);
}

}  // namespace
}  // namespace occm::topology
