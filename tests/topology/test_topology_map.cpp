#include "topology/topology_map.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "topology/presets.hpp"

namespace occm::topology {
namespace {

class RoundTripTest : public ::testing::TestWithParam<int> {
 public:
  static MachineSpec machineFor(int index) {
    switch (index) {
      case 0:
        return intelUma8();
      case 1:
        return intelNuma24();
      default:
        return amdNuma48();
    }
  }
};

TEST_P(RoundTripTest, CoreIdLocationRoundTripsForEveryCore) {
  const TopologyMap topo(RoundTripTest::machineFor(GetParam()));
  for (CoreId c = 0; c < topo.spec().logicalCores(); ++c) {
    EXPECT_EQ(topo.coreId(topo.location(c)), c);
  }
}

TEST_P(RoundTripTest, FillOrderIsAPermutation) {
  const TopologyMap topo(RoundTripTest::machineFor(GetParam()));
  const auto& order = topo.fillProcessorFirstOrder();
  std::set<CoreId> unique(order.begin(), order.end());
  EXPECT_EQ(unique.size(), order.size());
  EXPECT_EQ(static_cast<int>(order.size()), topo.spec().logicalCores());
}

TEST_P(RoundTripTest, FillOrderIsSocketMajor) {
  const TopologyMap topo(RoundTripTest::machineFor(GetParam()));
  const auto& order = topo.fillProcessorFirstOrder();
  const int perSocket = topo.spec().logicalCoresPerSocket();
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(topo.location(order[i]).socket,
              static_cast<int>(i) / perSocket);
  }
}

INSTANTIATE_TEST_SUITE_P(PaperMachines, RoundTripTest,
                         ::testing::Values(0, 1, 2));

TEST(TopologyMap, IntelNumaFirstTwelveOnSocketZero) {
  const TopologyMap topo(intelNuma24());
  const auto active = topo.activeCores(12);
  for (CoreId c : active) {
    EXPECT_EQ(topo.location(c).socket, 0);
  }
  EXPECT_EQ(topo.activeNodes(12), std::vector<NodeId>{0});
  EXPECT_EQ(topo.activeNodes(13), (std::vector<NodeId>{0, 1}));
}

TEST(TopologyMap, IntelNumaSmtSiblingsAdjacent) {
  const TopologyMap topo(intelNuma24());
  const auto& order = topo.fillProcessorFirstOrder();
  // Entries 0 and 1 must be SMT siblings of one physical core.
  const CoreLocation a = topo.location(order[0]);
  const CoreLocation b = topo.location(order[1]);
  EXPECT_EQ(a.socket, b.socket);
  EXPECT_EQ(a.core, b.core);
  EXPECT_NE(a.smt, b.smt);
}

TEST(TopologyMap, AmdActivatesBothDieControllersTogether) {
  // Paper protocol: the two controllers of a socket come up together; the
  // die-interleaved fill order has both dies active from the 2nd core on.
  const TopologyMap topo(amdNuma48());
  EXPECT_EQ(topo.activeNodes(1).size(), 1u);
  EXPECT_EQ(topo.activeNodes(2), (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(topo.activeNodes(12), (std::vector<NodeId>{0, 1}));
  EXPECT_EQ(topo.activeNodes(14), (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(topo.activeNodes(48).size(), 8u);
}

TEST(TopologyMap, UmaHasSingleNode) {
  const TopologyMap topo(intelUma8());
  for (CoreId c = 0; c < 8; ++c) {
    EXPECT_EQ(topo.homeNode(c), 0);
  }
  EXPECT_EQ(topo.activeNodes(8), std::vector<NodeId>{0});
  EXPECT_EQ(topo.hops(0, 0), 0);
}

TEST(TopologyMap, IntelNumaHomeNodeIsSocket) {
  const TopologyMap topo(intelNuma24());
  for (CoreId c = 0; c < 24; ++c) {
    EXPECT_EQ(topo.homeNode(c), topo.location(c).socket);
  }
}

TEST(TopologyMap, AmdHomeNodeIsDie) {
  const TopologyMap topo(amdNuma48());
  for (CoreId c = 0; c < 48; ++c) {
    EXPECT_EQ(topo.homeNode(c), topo.dieIndex(c));
  }
}

TEST(TopologyMap, AmdHasThreeDistanceClasses) {
  // Paper: direct, one hop and two hops on the AMD machine.
  const TopologyMap topo(amdNuma48());
  std::set<int> distances;
  for (NodeId a = 0; a < 8; ++a) {
    for (NodeId b = 0; b < 8; ++b) {
      distances.insert(topo.hops(a, b));
    }
  }
  EXPECT_EQ(distances, (std::set<int>{0, 1, 2}));
}

TEST(TopologyMap, AmdSameSocketDiesAreOneHop) {
  const TopologyMap topo(amdNuma48());
  EXPECT_EQ(topo.hops(0, 1), 1);
  EXPECT_EQ(topo.hops(6, 7), 1);
}

TEST(TopologyMap, IntelNumaSocketsOneHopApart) {
  const TopologyMap topo(intelNuma24());
  EXPECT_EQ(topo.hops(0, 1), 1);
  EXPECT_EQ(topo.hops(1, 0), 1);
}

TEST(TopologyMap, CacheInstancesFollowScopes) {
  const TopologyMap topo(intelNuma24());
  const auto& spec = topo.spec();
  const auto& l1 = spec.caches[0];  // per physical core
  const auto& l3 = spec.caches[2];  // per socket
  EXPECT_EQ(topo.cacheInstanceCount(l1), 12);
  EXPECT_EQ(topo.cacheInstanceCount(l3), 2);
  // SMT siblings (logical 0 and 1) share their L1.
  EXPECT_EQ(topo.cacheInstance(0, l1), topo.cacheInstance(1, l1));
  // Distinct physical cores do not.
  EXPECT_NE(topo.cacheInstance(0, l1), topo.cacheInstance(2, l1));
  // All cores of socket 0 share the L3.
  EXPECT_EQ(topo.cacheInstance(0, l3), topo.cacheInstance(10, l3));
}

TEST(TopologyMap, ActiveCoresBoundsChecked) {
  const TopologyMap topo(testNuma4());
  EXPECT_THROW((void)topo.activeCores(0), ContractViolation);
  EXPECT_THROW((void)topo.activeCores(5), ContractViolation);
  EXPECT_THROW((void)topo.location(-1), ContractViolation);
  EXPECT_THROW((void)topo.location(4), ContractViolation);
}

}  // namespace
}  // namespace occm::topology
