#include "common/expected.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace occm {
namespace {

struct Diag {
  int code = 0;
  std::string note;
};

TEST(Expected, HoldsValue) {
  Expected<int, Diag> e(42);
  ASSERT_TRUE(e.hasValue());
  EXPECT_TRUE(static_cast<bool>(e));
  EXPECT_EQ(e.value(), 42);
  EXPECT_EQ(*e, 42);
}

TEST(Expected, HoldsError) {
  Expected<int, Diag> e = makeUnexpected(Diag{7, "saturated"});
  ASSERT_FALSE(e.hasValue());
  EXPECT_EQ(e.error().code, 7);
  EXPECT_EQ(e.error().note, "saturated");
}

TEST(Expected, WrongAlternativeAccessIsContractViolation) {
  Expected<int, Diag> value(1);
  Expected<int, Diag> error = makeUnexpected(Diag{});
  EXPECT_THROW((void)value.error(), ContractViolation);
  EXPECT_THROW((void)error.value(), ContractViolation);
  EXPECT_THROW((void)*error, ContractViolation);
}

TEST(Expected, ValueOrFallsBack) {
  Expected<int, Diag> value(9);
  Expected<int, Diag> error = makeUnexpected(Diag{1, "x"});
  EXPECT_EQ(value.valueOr(-1), 9);
  EXPECT_EQ(error.valueOr(-1), -1);
}

TEST(Expected, ArrowReachesMembers) {
  Expected<std::vector<int>, Diag> e(std::vector<int>{1, 2, 3});
  EXPECT_EQ(e->size(), 3u);
}

TEST(Expected, SameValueAndErrorTypeStayDistinct) {
  // Unexpected disambiguates when T == E.
  Expected<int, int> value(5);
  Expected<int, int> error = makeUnexpected(5);
  EXPECT_TRUE(value.hasValue());
  EXPECT_FALSE(error.hasValue());
  EXPECT_EQ(error.error(), 5);
}

TEST(Expected, MutableAccessWritesThrough) {
  Expected<std::string, Diag> e(std::string("a"));
  e.value() += "b";
  EXPECT_EQ(*e, "ab");
  Expected<int, Diag> err = makeUnexpected(Diag{1, "n"});
  err.error().code = 2;
  EXPECT_EQ(err.error().code, 2);
}

}  // namespace
}  // namespace occm
