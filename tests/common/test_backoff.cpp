// BackoffPolicy: the one capped-exponential-with-deterministic-jitter
// implementation shared by the memory system's failover penalty, the
// lease re-dispatch schedule and the worker reconnect loop.

#include "common/backoff.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace occm {
namespace {

TEST(Backoff, DisabledPolicyIsAlwaysZero) {
  const BackoffPolicy off{.base = 0, .cap = 100, .jitterPct256 = 128,
                          .seed = 7};
  for (std::uint32_t k = 0; k < 70; ++k) {
    EXPECT_EQ(off.delay(k), 0u);
  }
  EXPECT_EQ(off.cumulative(100), 0u);
}

TEST(Backoff, GrowsExponentiallyUntilTheCap) {
  const BackoffPolicy policy{.base = 100, .cap = 1'000, .jitterPct256 = 0,
                             .seed = 0};
  EXPECT_EQ(policy.delay(0), 100u);
  EXPECT_EQ(policy.delay(1), 200u);
  EXPECT_EQ(policy.delay(2), 400u);
  EXPECT_EQ(policy.delay(3), 800u);
  EXPECT_EQ(policy.delay(4), 1'000u);  // capped, not 1600
  EXPECT_EQ(policy.delay(5), 1'000u);
}

TEST(Backoff, UncappedSaturatesInsteadOfOverflowing) {
  const BackoffPolicy policy{.base = 3, .cap = 0, .jitterPct256 = 0,
                             .seed = 0};
  // 3 << 62 still fits; 3 << 63 overflows and must saturate, not wrap.
  EXPECT_EQ(policy.delay(62), 3ULL << 62);
  EXPECT_EQ(policy.delay(63), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(policy.delay(200), std::numeric_limits<std::uint64_t>::max());
  // Partial overflow (the wrapped value stays above base) saturates too.
  const BackoffPolicy big{.base = 1ULL << 62, .cap = 0, .jitterPct256 = 0,
                          .seed = 0};
  EXPECT_EQ(big.delay(1), 1ULL << 63);
  EXPECT_EQ(big.delay(2), std::numeric_limits<std::uint64_t>::max());
}

TEST(Backoff, JitterIsBoundedAndDeterministic) {
  const BackoffPolicy policy{.base = 100, .cap = 1'000, .jitterPct256 = 64,
                             .seed = 0xABCDEF};
  for (std::uint32_t k = 0; k < 16; ++k) {
    const std::uint64_t d = policy.delay(k);
    const std::uint64_t unjittered =
        BackoffPolicy{.base = 100, .cap = 1'000}.delay(k);
    EXPECT_GE(d, unjittered);
    // jitterPct256 = 64 => at most 25% on top (plus the +1 span floor).
    EXPECT_LE(d, unjittered + unjittered * 64 / 256);
    // Pure function of (policy, attempt): replays identically.
    EXPECT_EQ(d, policy.delay(k));
  }
}

TEST(Backoff, DifferentSeedsDecorrelate) {
  const BackoffPolicy a{.base = 1'000, .cap = 0, .jitterPct256 = 255,
                        .seed = 1};
  const BackoffPolicy b{.base = 1'000, .cap = 0, .jitterPct256 = 255,
                        .seed = 2};
  int differing = 0;
  for (std::uint32_t k = 0; k < 16; ++k) {
    differing += a.delay(k) != b.delay(k) ? 1 : 0;
  }
  EXPECT_GT(differing, 8);  // overwhelmingly different schedules
}

TEST(Backoff, CumulativeSumsTheSchedule) {
  const BackoffPolicy policy{.base = 10, .cap = 40, .jitterPct256 = 0,
                             .seed = 0};
  EXPECT_EQ(policy.cumulative(0), 0u);
  EXPECT_EQ(policy.cumulative(1), 10u);
  EXPECT_EQ(policy.cumulative(2), 30u);
  EXPECT_EQ(policy.cumulative(3), 70u);
  EXPECT_EQ(policy.cumulative(4), 110u);  // 10 + 20 + 40 + 40
}

TEST(Backoff, CumulativeSaturatesOnOverflow) {
  const BackoffPolicy policy{.base = 1ULL << 62, .cap = 0, .jitterPct256 = 0,
                             .seed = 0};
  EXPECT_EQ(policy.cumulative(16), std::numeric_limits<std::uint64_t>::max());
}

}  // namespace
}  // namespace occm
