#include "common/fastdiv.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace occm {
namespace {

constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();

// Divisors the simulator actually uses (set counts, channel/bank
// striping widths, interleave weights) plus adversarial ones.
std::vector<std::uint64_t> interestingDivisors() {
  return {1,   2,   3,   4,    5,    7,    8,        12,
          16,  24,  64,  128,  255,  256,  257,      1024,
          512, 666, 4096, 8192, kMax, kMax - 1, kMax / 2,
          (std::uint64_t{1} << 62) + 1, (std::uint64_t{1} << 33) - 1};
}

std::vector<std::uint64_t> interestingNumerators(std::uint64_t divisor) {
  std::vector<std::uint64_t> ns = {0,    1,        2,         3,
                                   255,  256,      1U << 20,  kMax,
                                   kMax - 1, kMax / 2, kMax / 3};
  // Around multiples of the divisor: the exact spots a reciprocal with an
  // off-by-one error would get wrong.
  for (const std::uint64_t k : {std::uint64_t{1}, std::uint64_t{2},
                                std::uint64_t{7}, kMax / divisor}) {
    const std::uint64_t base = k * divisor;  // wraparound is fine
    ns.push_back(base - 1);
    ns.push_back(base);
    ns.push_back(base + 1);
  }
  // The private address window: addresses exceed 2^40 (address_space).
  ns.push_back((std::uint64_t{1} << 40) + 12345);
  ns.push_back((std::uint64_t{1} << 41) - 1);
  return ns;
}

TEST(FastDiv, RejectsZeroDivisor) {
  EXPECT_THROW(FastDiv{0}, ContractViolation);
}

TEST(FastDiv, DefaultIsIdentity) {
  const FastDiv d;
  EXPECT_EQ(d.divisor(), 1u);
  EXPECT_EQ(d.divide(kMax), kMax);
  EXPECT_EQ(d.modulo(kMax), 0u);
}

TEST(FastDiv, ExactOnStructuredCases) {
  for (const std::uint64_t divisor : interestingDivisors()) {
    const FastDiv fast(divisor);
    EXPECT_EQ(fast.divisor(), divisor);
    for (const std::uint64_t n : interestingNumerators(divisor)) {
      EXPECT_EQ(fast.divide(n), n / divisor)
          << n << " / " << divisor;
      EXPECT_EQ(fast.modulo(n), n % divisor)
          << n << " % " << divisor;
    }
  }
}

TEST(FastDiv, ExactOnRandomizedSweep) {
  Rng rng(20110809);
  for (int round = 0; round < 200; ++round) {
    // Bias toward small divisors (the simulator's regime) but cover the
    // full range too.
    std::uint64_t divisor =
        (round % 3 == 0) ? rng.next() : 1 + rng.next() % 4096;
    if (divisor == 0) {
      divisor = 1;
    }
    const FastDiv fast(divisor);
    for (int i = 0; i < 500; ++i) {
      const std::uint64_t n = rng.next();
      ASSERT_EQ(fast.divide(n), n / divisor) << n << " / " << divisor;
      ASSERT_EQ(fast.modulo(n), n % divisor) << n << " % " << divisor;
    }
  }
}

TEST(FastDiv, DivModAgreeEverywhere) {
  Rng rng(42);
  for (int i = 0; i < 2000; ++i) {
    std::uint64_t divisor = rng.next() % 100000;
    if (divisor == 0) {
      divisor = 1;
    }
    const FastDiv fast(divisor);
    const std::uint64_t n = rng.next();
    EXPECT_EQ(fast.divide(n) * divisor + fast.modulo(n), n);
    EXPECT_LT(fast.modulo(n), divisor);
  }
}

TEST(FastDiv, PowerOfTwoPathMatchesGeneralContract) {
  for (unsigned shift = 0; shift < 64; ++shift) {
    const std::uint64_t divisor = std::uint64_t{1} << shift;
    const FastDiv fast(divisor);
    for (const std::uint64_t n :
         {std::uint64_t{0}, divisor - 1, divisor, divisor + 1, kMax}) {
      EXPECT_EQ(fast.divide(n), n / divisor);
      EXPECT_EQ(fast.modulo(n), n % divisor);
    }
  }
}

}  // namespace
}  // namespace occm
