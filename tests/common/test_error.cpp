#include "common/error.hpp"

#include <gtest/gtest.h>

#include <string>

namespace occm {
namespace {

TEST(Contracts, RequirePassesOnTrue) {
  EXPECT_NO_THROW(OCCM_REQUIRE(1 + 1 == 2));
}

TEST(Contracts, RequireThrowsOnFalse) {
  EXPECT_THROW(OCCM_REQUIRE(1 + 1 == 3), ContractViolation);
}

TEST(Contracts, MessageContainsExpressionAndText) {
  try {
    OCCM_REQUIRE_MSG(false, "custom context");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("false"), std::string::npos);
    EXPECT_NE(what.find("custom context"), std::string::npos);
    EXPECT_NE(what.find("test_error.cpp"), std::string::npos);
  }
}

TEST(Contracts, AssertThrowsOnFalse) {
#ifdef OCCM_DISABLE_ASSERTS
  // Invariant checks are compiled out in this configuration; the macro
  // must still be callable and must not evaluate to a throw.
  EXPECT_NO_THROW(OCCM_ASSERT(false));
#else
  EXPECT_THROW(OCCM_ASSERT(false), ContractViolation);
#endif
  EXPECT_NO_THROW(OCCM_ASSERT(true));
}

TEST(Contracts, ViolationIsLogicError) {
  const auto thrower = [] { throw ContractViolation("x"); };
  EXPECT_THROW(thrower(), std::logic_error);
}

}  // namespace
}  // namespace occm
