// Unit and property tests for the deterministic RNG.

#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace occm {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a.next() == b.next() ? 1 : 0;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReproducibleStream) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) {
    first.push_back(a.next());
  }
  a.reseed(7);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.next(), first[static_cast<std::size_t>(i)]);
  }
}

TEST(Rng, SubstreamsAreIndependent) {
  Rng a = Rng::substream(7, 0);
  Rng b = Rng::substream(7, 1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    equal += a.next() == b.next() ? 1 : 0;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(5.0, 9.0);
    ASSERT_GE(u, 5.0);
    ASSERT_LT(u, 9.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.uniform();
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, BelowStaysBelowBound) {
  Rng rng(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 2000; ++i) {
      ASSERT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowCoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.below(7));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BetweenInclusiveBounds) {
  Rng rng(9);
  bool sawLo = false;
  bool sawHi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.between(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    sawLo = sawLo || v == -3;
    sawHi = sawHi || v == 3;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(13);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.exponential(4.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kN, 4.0, 0.05);
}

TEST(Rng, BoundedParetoStaysInRange) {
  Rng rng(17);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.boundedPareto(1.3, 1.0, 100.0);
    ASSERT_GE(x, 1.0);
    ASSERT_LE(x, 100.0 * (1.0 + 1e-9));
  }
}

TEST(Rng, BoundedParetoIsHeavyTailed) {
  // A bounded Pareto with alpha 1.1 should produce values above ten times
  // the minimum far more often than an exponential of the same mean.
  Rng rng(19);
  int big = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    big += rng.boundedPareto(1.1, 1.0, 1000.0) > 10.0 ? 1 : 0;
  }
  // P(X > 10) for Pareto(1.1) is ~ 10^-1.1 ~ 0.079.
  EXPECT_GT(big, kN / 30);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, GeometricMeanMatches) {
  Rng rng(29);
  double sum = 0.0;
  constexpr int kN = 100000;
  const double p = 0.2;
  for (int i = 0; i < kN; ++i) {
    sum += static_cast<double>(rng.geometric(p));
  }
  // Mean number of failures before success = (1-p)/p = 4.
  EXPECT_NEAR(sum / kN, (1.0 - p) / p, 0.1);
}

TEST(Rng, GeometricWithCertainSuccessIsZero) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.geometric(1.0), 0u);
  }
}

}  // namespace
}  // namespace occm
