#include "common/ring_buffer.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace occm {
namespace {

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> rb(4);
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.capacity(), 4u);
  EXPECT_FALSE(rb.full());
}

TEST(RingBuffer, ZeroCapacityRejected) {
  EXPECT_THROW((void)RingBuffer<int>(0), ContractViolation);
}

TEST(RingBuffer, PushAndIndexInOrder) {
  RingBuffer<int> rb(4);
  rb.push(10);
  rb.push(20);
  rb.push(30);
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb[0], 10);
  EXPECT_EQ(rb[1], 20);
  EXPECT_EQ(rb[2], 30);
  EXPECT_EQ(rb.back(), 30);
}

TEST(RingBuffer, OverwritesOldestWhenFull) {
  RingBuffer<int> rb(3);
  for (int i = 1; i <= 5; ++i) {
    rb.push(i);
  }
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb[0], 3);
  EXPECT_EQ(rb[1], 4);
  EXPECT_EQ(rb[2], 5);
  EXPECT_EQ(rb.back(), 5);
}

TEST(RingBuffer, OutOfRangeIndexThrows) {
  RingBuffer<int> rb(3);
  rb.push(1);
  EXPECT_THROW((void)rb[1], ContractViolation);
}

TEST(RingBuffer, BackOnEmptyThrows) {
  RingBuffer<int> rb(3);
  EXPECT_THROW((void)rb.back(), ContractViolation);
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push(7);
  EXPECT_EQ(rb[0], 7);
}

TEST(RingBuffer, CapacityOneKeepsLatest) {
  RingBuffer<int> rb(1);
  rb.push(1);
  rb.push(2);
  EXPECT_EQ(rb.size(), 1u);
  EXPECT_EQ(rb[0], 2);
}

}  // namespace
}  // namespace occm
