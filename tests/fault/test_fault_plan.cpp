#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"

namespace occm::fault {
namespace {

const std::vector<NodeId> kTwoNodes = {0, 1};

TEST(FaultPlan, BuildersChainAndRecordEvents) {
  FaultPlan plan;
  plan.controllerOutage(1, 100, 200)
      .controllerDegrade(0, 50, 150, 2.0)
      .coreThrottle(3, 0, 1000, 1.5)
      .eccSpike(0, 10, 20, 0.25, 300)
      .backgroundTraffic(1, 0, 500, 50);
  ASSERT_EQ(plan.events().size(), 5u);
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kControllerOutage);
  EXPECT_EQ(plan.events()[0].target, 1);
  EXPECT_EQ(plan.events()[1].magnitude, 2.0);
  EXPECT_EQ(plan.events()[3].penaltyCycles, 300u);
  EXPECT_EQ(plan.events()[4].period, 50u);
}

TEST(FaultPlan, DefaultPlanIsEmpty) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_NO_THROW(plan.validate(2, 4, kTwoNodes));
}

TEST(FaultPlan, RejectsEmptyOrInvertedWindows) {
  FaultPlan plan;
  EXPECT_THROW(plan.controllerOutage(0, 100, 100), ContractViolation);
  EXPECT_THROW(plan.coreThrottle(0, 200, 100, 2.0), ContractViolation);
}

TEST(FaultPlan, RejectsBadMagnitudes) {
  FaultPlan plan;
  EXPECT_THROW(plan.controllerDegrade(0, 0, 10, 0.5), ContractViolation);
  EXPECT_THROW(plan.coreThrottle(0, 0, 10, 0.0), ContractViolation);
  EXPECT_THROW(plan.eccSpike(0, 0, 10, 0.0, 100), ContractViolation);
  EXPECT_THROW(plan.eccSpike(0, 0, 10, 1.5, 100), ContractViolation);
  EXPECT_THROW(plan.backgroundTraffic(0, 0, 10, 0), ContractViolation);
}

TEST(FaultPlan, ValidateRejectsOutOfRangeTargets) {
  FaultPlan controllerPlan;
  controllerPlan.controllerOutage(5, 0, 10);
  EXPECT_THROW(controllerPlan.validate(2, 4, kTwoNodes), ContractViolation);

  FaultPlan corePlan;
  corePlan.coreThrottle(9, 0, 10, 2.0);
  EXPECT_THROW(corePlan.validate(2, 4, kTwoNodes), ContractViolation);
}

TEST(FaultPlan, ValidateRejectsAllActiveControllersDownAtOnce) {
  // Overlapping outages that cover both active controllers in [100, 200):
  // nothing healthy remains to fail over to.
  FaultPlan plan;
  plan.controllerOutage(0, 50, 250).controllerOutage(1, 100, 200);
  EXPECT_THROW(plan.validate(2, 4, kTwoNodes), ContractViolation);
}

TEST(FaultPlan, ValidateAcceptsDisjointOutages) {
  FaultPlan plan;
  plan.controllerOutage(0, 50, 100).controllerOutage(1, 100, 200);
  EXPECT_NO_THROW(plan.validate(2, 4, kTwoNodes));
}

TEST(FaultPlan, OutageOfInactiveNodeDoesNotCountAgainstSurvivors) {
  // Node 1 is the only active controller; node 0 being down is harmless.
  const std::vector<NodeId> onlyNode1 = {1};
  FaultPlan plan;
  plan.controllerOutage(0, 0, 1000);
  EXPECT_NO_THROW(plan.validate(2, 4, onlyNode1));

  FaultPlan fatal;
  fatal.controllerOutage(1, 0, 1000);
  EXPECT_THROW(fatal.validate(2, 4, onlyNode1), ContractViolation);
}

TEST(FaultPlan, ToStringCoversAllKinds) {
  EXPECT_STREQ(toString(FaultKind::kControllerOutage), "controller-outage");
  EXPECT_STREQ(toString(FaultKind::kControllerDegrade), "controller-degrade");
  EXPECT_STREQ(toString(FaultKind::kCoreThrottle), "core-throttle");
  EXPECT_STREQ(toString(FaultKind::kEccSpike), "ecc-spike");
  EXPECT_STREQ(toString(FaultKind::kBackgroundTraffic), "background-traffic");
}

}  // namespace
}  // namespace occm::fault
