// Fault engine + degraded-mode memory semantics + end-to-end determinism
// of scripted fault scenarios.

#include "fault/fault_engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "fault/fault_plan.hpp"
#include "mem/memory_system.hpp"
#include "sim/machine_sim.hpp"
#include "topology/presets.hpp"
#include "topology/topology_map.hpp"
#include "trace/address_space.hpp"
#include "workloads/phase_stream.hpp"

namespace occm::fault {
namespace {

using workloads::Phase;
using workloads::PhaseStream;
using workloads::seqLines;

// testNuma4: dramLatency 100, rowHit 10, rowMiss 20, 1 channel, 2 banks,
// hop 40 cycles, nodes {0, 1}, cores 0,1 on node 0 and 2,3 on node 1.

class FaultEngineTest : public ::testing::Test {
 protected:
  FaultEngineTest() : topo_(topology::testNuma4()), active_({0, 1}) {}

  mem::MemorySystem makeLocalMemory() {
    mem::MemoryConfig config;
    config.placement = mem::PlacementPolicy::kLocal;
    config.service = mem::ServiceDiscipline::kDeterministic;
    return mem::MemorySystem(topo_, config, active_);
  }

  topology::TopologyMap topo_;
  std::vector<NodeId> active_;
};

TEST_F(FaultEngineTest, EmptyPlanIsIdle) {
  FaultEngine engine(FaultPlan{}, topo_, active_, 7);
  EXPECT_TRUE(engine.idle());
  EXPECT_FALSE(engine.coreThrottled(0));
}

TEST_F(FaultEngineTest, TransitionsApplyInTimeOrder) {
  FaultPlan plan;
  plan.controllerOutage(0, 100, 200);
  FaultEngine engine(plan, topo_, active_, 7);
  EXPECT_FALSE(engine.idle());

  mem::MemorySystem memory = makeLocalMemory();
  engine.advanceTo(50, memory);
  EXPECT_TRUE(memory.controllerHealth(0).up);
  engine.advanceTo(150, memory);
  EXPECT_FALSE(memory.controllerHealth(0).up);
  EXPECT_EQ(memory.healthyActiveControllers(), 1);
  engine.advanceTo(250, memory);
  EXPECT_TRUE(memory.controllerHealth(0).up);
  EXPECT_EQ(memory.healthyActiveControllers(), 2);
}

TEST_F(FaultEngineTest, OutageReroutesWithBoundedBackoff) {
  mem::MemorySystem memory = makeLocalMemory();
  memory.setControllerUp(0, false);
  // Core 0 is homed on node 0 (local placement): the request pays the
  // retry backoff (100 + 200 with dramLatency 100), then fails over to
  // node 1 — one hop away.
  const mem::RequestTiming t = memory.request(1000, 0, 0);
  EXPECT_TRUE(t.rerouted);
  EXPECT_EQ(t.node, 1);
  const Cycles backoff = 100 + 200;  // dramLatency << attempt, 2 retries
  EXPECT_EQ(t.retryCycles, backoff);
  EXPECT_GE(t.queueWait, backoff);
  EXPECT_EQ(t.done, 1000u + backoff + 40u + 100u + 40u);

  EXPECT_EQ(memory.controllerStats(0).reroutedAway, 1u);
  EXPECT_EQ(memory.controllerStats(0).retryAttempts,
            static_cast<std::uint64_t>(mem::MemorySystem::kFailoverRetries));
  EXPECT_EQ(memory.controllerStats(1).absorbed, 1u);
  EXPECT_EQ(memory.controllerStats(1).requests, 1u);
}

TEST_F(FaultEngineTest, RequestWithNoHealthyControllerThrows) {
  mem::MemorySystem memory = makeLocalMemory();
  memory.setControllerUp(0, false);
  memory.setControllerUp(1, false);
  EXPECT_THROW(memory.request(0, 0, 0), ContractViolation);
}

TEST_F(FaultEngineTest, EccSpikeAddsPenaltyDeterministically) {
  mem::MemorySystem memory = makeLocalMemory();
  const mem::RequestTiming healthy = memory.request(0, 0, 0);
  memory.setControllerEcc(0, 1.0, 500);
  const mem::RequestTiming spiked = memory.request(10000, 0, 0);
  EXPECT_EQ(spiked.done - 10000u, (healthy.done - 0u) + 500u);
  EXPECT_EQ(memory.controllerStats(0).eccRetries, 1u);
  memory.setControllerEcc(0, 0.0, 0);
  const mem::RequestTiming after = memory.request(20000, 0, 0);
  EXPECT_EQ(after.done - 20000u, healthy.done - 0u);
}

TEST_F(FaultEngineTest, ServiceScaleStretchesChannelOccupancy) {
  mem::MemorySystem healthy = makeLocalMemory();
  mem::MemorySystem degraded = makeLocalMemory();
  degraded.setControllerServiceScale(0, 3.0);
  // Two back-to-back requests to the same bank: the second queues behind
  // the first transfer's channel occupancy, which the scale stretches.
  (void)healthy.request(0, 0, 0);
  const Cycles healthyWait = healthy.request(0, 1, 0).queueWait;
  (void)degraded.request(0, 0, 0);
  const Cycles degradedWait = degraded.request(0, 1, 0).queueWait;
  EXPECT_EQ(healthyWait, 20u);       // one row-miss service
  EXPECT_EQ(degradedWait, 3 * 20u);  // stretched 3x
}

TEST_F(FaultEngineTest, BackgroundInjectionOccupiesBandwidth) {
  mem::MemorySystem quiet = makeLocalMemory();
  mem::MemorySystem noisy = makeLocalMemory();
  // Inject an interfering transfer just before the demand request, at the
  // same controller: the demand request queues behind it.
  noisy.injectBackground(0, 0, 0);
  EXPECT_EQ(noisy.controllerStats(0).background, 1u);
  const Cycles quietWait = quiet.request(1, 0, 64).queueWait;
  const Cycles noisyWait = noisy.request(1, 0, 64).queueWait;
  EXPECT_GT(noisyWait, quietWait);
}

TEST_F(FaultEngineTest, BackgroundDroppedWhileControllerDown) {
  mem::MemorySystem memory = makeLocalMemory();
  memory.setControllerUp(0, false);
  memory.injectBackground(0, 0, 0);
  EXPECT_EQ(memory.controllerStats(0).background, 0u);
}

TEST_F(FaultEngineTest, ThrottleExtraStretchesWorkInsideWindowOnly) {
  FaultPlan plan;
  plan.coreThrottle(1, 100, 200, 2.0);
  FaultEngine engine(plan, topo_, active_, 7);
  EXPECT_TRUE(engine.coreThrottled(1));
  EXPECT_FALSE(engine.coreThrottled(0));

  EXPECT_EQ(engine.throttleExtra(1, 50, 40), 0u);    // before the window
  EXPECT_EQ(engine.throttleExtra(1, 150, 40), 40u);  // 2x slowdown
  EXPECT_EQ(engine.throttleExtra(1, 250, 40), 0u);   // after the window
  EXPECT_EQ(engine.throttledCycles(), 40u);
}

// ---------------------------------------------------------------------------
// End-to-end: scripted scenarios through MachineSim.

std::vector<trace::RefStreamPtr> streamingThreads(int threads,
                                                  std::uint64_t linesEach,
                                                  Cycles workPerOp) {
  std::vector<trace::RefStreamPtr> out;
  for (int t = 0; t < threads; ++t) {
    Phase p = seqLines(static_cast<Addr>(t) * (Addr{1} << 26),
                       linesEach * 64, workPerOp);
    out.push_back(std::make_unique<PhaseStream>(std::vector<Phase>{p}));
  }
  return out;
}

sim::SimConfig faultyConfig() {
  sim::SimConfig config;
  config.faultPlan.controllerOutage(1, 20'000, 120'000);
  config.faultPlan.coreThrottle(0, 10'000, 60'000, 2.0);
  config.faultPlan.backgroundTraffic(0, 0, 50'000, 500);
  return config;
}

TEST(FaultSim, IdenticalPlanAndSeedAreBitIdentical) {
  sim::MachineSim simA(topology::testNuma4(), faultyConfig());
  sim::MachineSim simB(topology::testNuma4(), faultyConfig());
  const auto streams = streamingThreads(4, 8000, 10);
  const perf::RunProfile a = simA.run(streams, 4, "faulty");
  const perf::RunProfile b = simB.run(streams, 4, "faulty");

  EXPECT_EQ(a.counters.totalCycles, b.counters.totalCycles);
  EXPECT_EQ(a.counters.stallCycles, b.counters.stallCycles);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.reroutedRequests, b.reroutedRequests);
  EXPECT_EQ(a.faultRetries, b.faultRetries);
  EXPECT_EQ(a.backgroundRequests, b.backgroundRequests);
  EXPECT_EQ(a.throttledCycles, b.throttledCycles);
  ASSERT_EQ(a.controllerStats.size(), b.controllerStats.size());
  for (std::size_t n = 0; n < a.controllerStats.size(); ++n) {
    EXPECT_EQ(a.controllerStats[n].requests, b.controllerStats[n].requests);
    EXPECT_EQ(a.controllerStats[n].reroutedAway,
              b.controllerStats[n].reroutedAway);
    EXPECT_EQ(a.controllerStats[n].absorbed, b.controllerStats[n].absorbed);
    EXPECT_EQ(a.controllerStats[n].background,
              b.controllerStats[n].background);
  }
}

TEST(FaultSim, ScenarioDegradesTheRunAndRecordsEpochs) {
  sim::MachineSim healthy(topology::testNuma4());
  sim::MachineSim faulty(topology::testNuma4(), faultyConfig());
  const auto streams = streamingThreads(4, 8000, 10);
  const perf::RunProfile h = healthy.run(streams, 4);
  const perf::RunProfile f = faulty.run(streams, 4);

  EXPECT_GT(f.counters.totalCycles, h.counters.totalCycles);
  EXPECT_GT(f.reroutedRequests, 0u);
  EXPECT_GT(f.faultRetries, 0u);
  EXPECT_GT(f.backgroundRequests, 0u);
  EXPECT_GT(f.throttledCycles, 0u);
  ASSERT_EQ(f.faultEpochs.size(), 3u);
  EXPECT_EQ(f.faultEpochs[0].kind, "controller-outage");
  EXPECT_EQ(f.faultEpochs[0].target, 1);
  EXPECT_EQ(f.faultEpochs[0].start, 20'000u);
  EXPECT_EQ(f.faultEpochs[0].end, 120'000u);

  EXPECT_TRUE(h.faultEpochs.empty());
  EXPECT_EQ(h.reroutedRequests, 0u);
}

TEST(FaultSim, NullPlanMatchesNoPlanBitForBit) {
  sim::SimConfig explicitEmpty;
  explicitEmpty.faultPlan = fault::FaultPlan{};
  sim::MachineSim withEmpty(topology::testNuma4(), explicitEmpty);
  sim::MachineSim without(topology::testNuma4());
  const auto streams = streamingThreads(4, 5000, 10);
  const perf::RunProfile a = withEmpty.run(streams, 4);
  const perf::RunProfile b = without.run(streams, 4);
  EXPECT_EQ(a.counters.totalCycles, b.counters.totalCycles);
  EXPECT_EQ(a.counters.stallCycles, b.counters.stallCycles);
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST(FaultSim, InvalidPlanForMachineIsRejectedAtRunStart) {
  sim::SimConfig config;
  config.faultPlan.controllerOutage(0, 0, 1000)
      .controllerOutage(1, 500, 1500);
  sim::MachineSim sim(topology::testNuma4(), config);
  const auto streams = streamingThreads(4, 100, 10);
  EXPECT_THROW((void)sim.run(streams, 4), ContractViolation);
}

}  // namespace
}  // namespace occm::fault
