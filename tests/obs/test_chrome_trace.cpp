// Golden-file test of the Chrome trace_event exporter: runs a small CG
// workload through the simulator with observability on, exports the
// trace, and parses the JSON back with a minimal recursive-descent
// parser to prove the exporter emits structurally valid JSON with the
// trace_event fields Perfetto/chrome://tracing require.

#include "obs/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "sim/machine_sim.hpp"
#include "topology/presets.hpp"
#include "workloads/workload.hpp"

namespace occm::obs {
namespace {

// --- minimal JSON validator ------------------------------------------------

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  /// Parses one complete JSON value; returns false on any syntax error or
  /// trailing garbage.
  bool parse() {
    pos_ = 0;
    objects = arrays = strings = numbers = 0;
    if (!value()) {
      return false;
    }
    skipWs();
    return pos_ == text_.size();
  }

  std::size_t objects = 0;
  std::size_t arrays = 0;
  std::size_t strings = 0;
  std::size_t numbers = 0;

 private:
  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }
  bool literal(const char* word) {
    const std::size_t n = std::char_traits<char>::length(word);
    if (text_.compare(pos_, n, word) != 0) {
      return false;
    }
    pos_ += n;
    return true;
  }
  bool string() {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return false;
        }
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                std::isxdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
              return false;
            }
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      return false;
    }
    ++pos_;  // closing quote
    ++strings;
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    std::size_t digits = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
      ++digits;
    }
    if (digits == 0) {
      pos_ = start;
      return false;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
    }
    ++numbers;
    return true;
  }
  bool object() {
    if (text_[pos_] != '{') {
      return false;
    }
    ++pos_;
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      ++objects;
      return true;
    }
    while (true) {
      skipWs();
      if (!string()) {
        return false;
      }
      skipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return false;
      }
      ++pos_;
      if (!value()) {
        return false;
      }
      skipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= text_.size() || text_[pos_] != '}') {
      return false;
    }
    ++pos_;
    ++objects;
    return true;
  }
  bool array() {
    if (text_[pos_] != '[') {
      return false;
    }
    ++pos_;
    skipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      ++arrays;
      return true;
    }
    while (true) {
      if (!value()) {
        return false;
      }
      skipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= text_.size() || text_[pos_] != ']') {
      return false;
    }
    ++pos_;
    ++arrays;
    return true;
  }
  bool value() {
    skipWs();
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

perf::RunProfile tracedCgRun() {
  workloads::WorkloadSpec spec;
  spec.program = workloads::Program::kCG;
  spec.problemClass = workloads::ProblemClass::kS;
  spec.threads = 4;
  const auto instance = workloads::makeWorkload(spec);
  sim::SimConfig config;
  config.observability.metrics = true;
  config.observability.trace = true;
  sim::MachineSim sim(topology::testNuma4(), config);
  return sim.run(instance.threads, 4, instance.name);
}

// --- tests -----------------------------------------------------------------

TEST(ChromeTrace, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(jsonEscape(std::string("a\x01" "b", 3)), "a\\u0001b");
}

TEST(ChromeTrace, EmptyTraceIsValidJson) {
  RunTrace trace(100, 16, OverflowPolicy::kDropOldest, 1.0);
  const std::string json = toChromeTraceJson(trace);
  JsonParser parser(json);
  EXPECT_TRUE(parser.parse()) << json;
  EXPECT_NE(json.find("\"traceEvents\":[]"), std::string::npos);
}

TEST(ChromeTrace, GoldenCgRunRoundTripsThroughParser) {
  const perf::RunProfile profile = tracedCgRun();
  ASSERT_NE(profile.trace, nullptr);
  EXPECT_GT(profile.trace->events.size(), 0u);
  EXPECT_GT(profile.trace->metrics.size(), 0u);

  const std::string json = toChromeTraceJson(*profile.trace);
  JsonParser parser(json);
  ASSERT_TRUE(parser.parse());
  // One object per event plus the root and args objects; a real run emits
  // thousands.
  EXPECT_GT(parser.objects, profile.trace->events.size());

  // The trace_event essentials are present.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // spans
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // track names
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);  // counters
  EXPECT_NE(json.find("memory controller 0"), std::string::npos);
  EXPECT_NE(json.find("mem.node0.utilization"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
}

TEST(ChromeTrace, RejectsMalformedJson) {
  // Sanity-check the validator itself so the golden test means something.
  EXPECT_FALSE(JsonParser(R"({"a":1,})").parse());
  EXPECT_FALSE(JsonParser(R"({"a":)").parse());
  EXPECT_FALSE(JsonParser(R"([1,2)").parse());
  EXPECT_FALSE(JsonParser("{} trailing").parse());
  EXPECT_TRUE(JsonParser(R"({"a":[1,2.5,-3e4],"b":"x"})").parse());
}

}  // namespace
}  // namespace occm::obs
