#include "obs/trace_sink.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace occm::obs {
namespace {

TEST(TraceSink, RecordsSpanAndInstantFields) {
  TraceSink sink(8);
  sink.span("service", "mem", kControllerTrackBase + 1, 100, 40,
            "queue_wait", 12.0);
  sink.instant("ctx-switch", "sched", 3, 250);
  ASSERT_EQ(sink.size(), 2u);
  const TraceEvent& span = sink[0];
  EXPECT_EQ(span.name, "service");
  EXPECT_EQ(span.category, "mem");
  EXPECT_EQ(span.track, kControllerTrackBase + 1);
  EXPECT_EQ(span.start, 100u);
  EXPECT_EQ(span.duration, 40u);
  EXPECT_EQ(span.phase, TracePhase::kSpan);
  EXPECT_EQ(span.argName, "queue_wait");
  EXPECT_DOUBLE_EQ(span.arg, 12.0);
  const TraceEvent& instant = sink[1];
  EXPECT_EQ(instant.phase, TracePhase::kInstant);
  EXPECT_EQ(instant.duration, 0u);
  EXPECT_EQ(sink.dropped(), 0u);
  EXPECT_EQ(sink.recorded(), 2u);
}

TEST(TraceSink, DropOldestKeepsTheTail) {
  TraceSink sink(3, OverflowPolicy::kDropOldest);
  for (int i = 0; i < 5; ++i) {
    sink.instant("e" + std::to_string(i), "t", 0,
                 static_cast<Cycles>(i));
  }
  ASSERT_EQ(sink.size(), 3u);
  EXPECT_EQ(sink[0].name, "e2");  // e0, e1 overwritten
  EXPECT_EQ(sink[2].name, "e4");
  EXPECT_EQ(sink.dropped(), 2u);
  EXPECT_EQ(sink.recorded(), 5u);
}

TEST(TraceSink, DropNewestKeepsTheHead) {
  TraceSink sink(3, OverflowPolicy::kDropNewest);
  for (int i = 0; i < 5; ++i) {
    sink.instant("e" + std::to_string(i), "t", 0,
                 static_cast<Cycles>(i));
  }
  ASSERT_EQ(sink.size(), 3u);
  EXPECT_EQ(sink[0].name, "e0");
  EXPECT_EQ(sink[2].name, "e2");  // e3, e4 refused
  EXPECT_EQ(sink.dropped(), 2u);
  EXPECT_EQ(sink.recorded(), 5u);
}

TEST(TraceSink, ExactlyFullDropsNothing) {
  TraceSink sink(2);
  sink.instant("a", "t", 0, 0);
  sink.instant("b", "t", 0, 1);
  EXPECT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.dropped(), 0u);
}

TEST(TraceSink, TrackNames) {
  TraceSink sink(4);
  sink.setTrackName(0, "core 0");
  sink.setTrackName(kControllerTrackBase, "memory controller 0");
  sink.setTrackName(0, "core 0 (renamed)");
  ASSERT_EQ(sink.trackNames().size(), 2u);
  EXPECT_EQ(sink.trackNames().at(0), "core 0 (renamed)");
}

TEST(TraceSink, ZeroCapacityRejected) {
  EXPECT_THROW((void)TraceSink(0), ContractViolation);
}

}  // namespace
}  // namespace occm::obs
