#include "obs/time_series.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "obs/metric_registry.hpp"

namespace occm::obs {
namespace {

TEST(TimeSeries, CounterBinsByWindow) {
  TimeSeries series(100, MetricKind::kCounter);
  series.record(0);
  series.record(99);
  series.record(100);
  series.record(250, 5.0);
  ASSERT_EQ(series.windowCount(), 3u);
  EXPECT_DOUBLE_EQ(series.value(0), 2.0);
  EXPECT_DOUBLE_EQ(series.value(1), 1.0);
  EXPECT_DOUBLE_EQ(series.value(2), 5.0);
  EXPECT_EQ(series.samples(2), 1u);  // one record() call of weight 5
  EXPECT_DOUBLE_EQ(series.total(), 8.0);
}

TEST(TimeSeries, WindowBoundaryIsHalfOpen) {
  TimeSeries series(100);
  series.record(199);
  series.record(200);
  ASSERT_EQ(series.windowCount(), 3u);
  EXPECT_DOUBLE_EQ(series.value(1), 1.0);
  EXPECT_DOUBLE_EQ(series.value(2), 1.0);
  EXPECT_EQ(series.windowStart(2), 200u);
}

TEST(TimeSeries, FinalizePadsTrailingWindows) {
  TimeSeries series(100);
  series.record(50);
  series.finalize(1000);
  EXPECT_EQ(series.windowCount(), 10u);
  EXPECT_DOUBLE_EQ(series.value(9), 0.0);
  EXPECT_EQ(series.samples(9), 0u);
}

TEST(TimeSeries, FinalizeNeverShrinks) {
  TimeSeries series(100);
  series.record(950);
  series.finalize(100);
  EXPECT_EQ(series.windowCount(), 10u);
}

TEST(TimeSeries, FinalizeRoundsPartialWindowUp) {
  TimeSeries series(100);
  series.finalize(101);
  EXPECT_EQ(series.windowCount(), 2u);
  series.finalize(200);
  EXPECT_EQ(series.windowCount(), 2u);
}

TEST(TimeSeries, FinalizeZeroEndIsEmpty) {
  TimeSeries series(100);
  series.finalize(0);
  EXPECT_TRUE(series.empty());
}

TEST(TimeSeries, GaugeAveragesWithinWindow) {
  TimeSeries series(100, MetricKind::kGauge);
  series.record(10, 4.0);
  series.record(20, 8.0);
  EXPECT_DOUBLE_EQ(series.value(0), 6.0);
}

TEST(TimeSeries, GaugeCarriesForwardOverEmptyWindows) {
  TimeSeries series(100, MetricKind::kGauge);
  series.record(0, 3.0);
  series.record(350, 9.0);
  series.finalize(600);
  const std::vector<double> values = series.values();
  ASSERT_EQ(values.size(), 6u);
  EXPECT_DOUBLE_EQ(values[0], 3.0);
  EXPECT_DOUBLE_EQ(values[1], 3.0);  // carried forward
  EXPECT_DOUBLE_EQ(values[2], 3.0);
  EXPECT_DOUBLE_EQ(values[3], 9.0);
  EXPECT_DOUBLE_EQ(values[4], 9.0);
  EXPECT_DOUBLE_EQ(values[5], 9.0);
  EXPECT_DOUBLE_EQ(series.value(4), 9.0);  // point query agrees
}

TEST(TimeSeries, GaugeBeforeFirstSampleIsZero) {
  TimeSeries series(100, MetricKind::kGauge);
  series.record(250, 7.0);
  EXPECT_DOUBLE_EQ(series.value(0), 0.0);
  EXPECT_DOUBLE_EQ(series.value(1), 0.0);
  EXPECT_DOUBLE_EQ(series.value(2), 7.0);
}

TEST(TimeSeries, CounterValuesMatchPointQueries) {
  TimeSeries series(50);
  series.record(0, 2.0);
  series.record(120, 3.0);
  series.finalize(200);
  const std::vector<double> values = series.values();
  ASSERT_EQ(values.size(), 4u);
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_DOUBLE_EQ(values[i], series.value(i));
  }
}

TEST(TimeSeries, ZeroWindowRejected) {
  EXPECT_THROW((void)TimeSeries(0), ContractViolation);
}

TEST(TimeSeries, OutOfRangeQueriesRejected) {
  TimeSeries series(100);
  series.record(0);
  EXPECT_THROW((void)series.value(1), ContractViolation);
  EXPECT_THROW((void)series.sum(1), ContractViolation);
  EXPECT_THROW((void)series.samples(1), ContractViolation);
}

TEST(MetricRegistry, RegistersAndFindsByName) {
  MetricRegistry registry(100);
  TimeSeries& requests = registry.counter("mem.node0.requests", "1/window");
  requests.record(10);
  EXPECT_EQ(registry.size(), 1u);
  const TimeSeries* found = registry.find("mem.node0.requests");
  ASSERT_NE(found, nullptr);
  EXPECT_DOUBLE_EQ(found->value(0), 1.0);
  EXPECT_EQ(registry.find("nope"), nullptr);
}

TEST(MetricRegistry, ReopenReturnsSameSeries) {
  MetricRegistry registry(100);
  TimeSeries& a = registry.counter("x");
  TimeSeries& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricRegistry, ReopenWithDifferentKindRejected) {
  MetricRegistry registry(100);
  (void)registry.counter("x");
  EXPECT_THROW((void)registry.gauge("x"), ContractViolation);
}

TEST(MetricRegistry, ReferencesStayValidAcrossGrowth) {
  MetricRegistry registry(100);
  TimeSeries& first = registry.counter("first");
  for (int i = 0; i < 100; ++i) {
    (void)registry.counter("metric" + std::to_string(i));
  }
  first.record(0, 42.0);
  EXPECT_DOUBLE_EQ(registry.find("first")->value(0), 42.0);
}

TEST(MetricRegistry, FinalizeAlignsAllSeries) {
  MetricRegistry registry(100);
  TimeSeries& a = registry.counter("a");
  TimeSeries& b = registry.gauge("b");
  a.record(50);
  registry.finalize(1000);
  EXPECT_EQ(a.windowCount(), 10u);
  EXPECT_EQ(b.windowCount(), 10u);
}

TEST(MetricRegistry, EmptyNameRejected) {
  MetricRegistry registry(100);
  EXPECT_THROW((void)registry.counter(""), ContractViolation);
}

}  // namespace
}  // namespace occm::obs
