#include "obs/profiler.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "analysis/csv.hpp"
#include "analysis/experiment.hpp"
#include "common/crc32.hpp"
#include "exec/thread_pool.hpp"
#include "obs/metric_registry.hpp"
#include "topology/presets.hpp"

// Suite names deliberately avoid the "Obs" prefix: these tests assert the
// profiler's *always-compiled* API surface plus the zero-cost contract,
// so the obs-disabled CI leg (ctest -E "ChromeTrace|Obs|...") must run
// them in both configurations.
namespace occm::obs {
namespace {

TEST(Profiler, ScopedPhaseAccumulatesAndNests) {
  Profiler profiler;
  Phase& outer = profiler.phase("outer");
  Phase& inner = profiler.phase("inner");
  {
    const ScopedPhase outerScope(profiler, outer);
    {
      const ScopedPhase innerScope(profiler, inner);
    }
    {
      const ScopedPhase innerScope(profiler, inner);
    }
  }
  const std::vector<PhaseSnapshot> phases = profiler.phases();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].name, "outer");
  EXPECT_EQ(phases[0].calls, 1u);
  EXPECT_EQ(phases[1].name, "inner");
  EXPECT_EQ(phases[1].calls, 2u);
  // Inclusive timing: the outer scope contains both inner scopes.
  EXPECT_GE(phases[0].wallNs, phases[1].wallNs);
  EXPECT_GE(phases[0].maxWallNs, phases[1].maxWallNs);
}

TEST(Profiler, TimersAreMonotonic) {
  Profiler profiler;
  const std::uint64_t wall0 = steadyNowNs();
  const std::uint64_t elapsed0 = profiler.elapsedNs();
  const std::uint64_t cpu0 = threadCpuNowNs();
  // Burn a little CPU so the thread clock must advance too.
  volatile std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < 100'000; ++i) {
    sink = sink + i;
  }
  EXPECT_GE(steadyNowNs(), wall0);
  EXPECT_GE(profiler.elapsedNs(), elapsed0);
  EXPECT_GE(threadCpuNowNs(), cpu0);
}

TEST(Profiler, PhaseAndCounterReferencesAreStable) {
  Profiler profiler;
  Phase& first = profiler.phase("p0");
  Counter& firstCounter = profiler.counter("c0");
  for (int i = 1; i < 100; ++i) {
    static_cast<void>(profiler.phase("p" + std::to_string(i)));
    static_cast<void>(profiler.counter("c" + std::to_string(i)));
  }
  // Re-opening returns the same object; registration never invalidates.
  EXPECT_EQ(&profiler.phase("p0"), &first);
  EXPECT_EQ(&profiler.counter("c0"), &firstCounter);
  EXPECT_EQ(profiler.phases().size(), 100u);
  EXPECT_EQ(profiler.counters().size(), 100u);
}

TEST(Profiler, CounterOverflowWraps) {
  Profiler profiler;
  Counter& counter = profiler.counter("wrap");
  counter.add(std::numeric_limits<std::uint64_t>::max());
  counter.add(3);  // 2^64 - 1 + 3 wraps to 2
  EXPECT_EQ(counter.value(), 2u);
}

TEST(Profiler, CounterKeepsFirstUnit) {
  Profiler profiler;
  static_cast<void>(profiler.counter("ops", "reservations"));
  Counter& reopened = profiler.counter("ops", "somethingelse");
  EXPECT_EQ(reopened.unit(), "reservations");
}

TEST(Profiler, ResetZeroesButKeepsRegistrations) {
  Profiler profiler;
  Phase& phase = profiler.phase("work");
  phase.record(10, 5);
  profiler.counter("n").add(7);
  profiler.reset();
  EXPECT_EQ(profiler.phases().size(), 1u);
  EXPECT_EQ(profiler.phases()[0].calls, 0u);
  EXPECT_EQ(profiler.phases()[0].wallNs, 0u);
  EXPECT_EQ(profiler.counters()[0].value, 0u);
}

TEST(Profiler, ExportsThroughMetricRegistry) {
  Profiler profiler;
  profiler.phase("sim.run").record(1000, 800);
  profiler.counter("sim.events_popped").add(42);
  MetricRegistry registry(100);
  profiler.exportTo(registry, 0);
  const TimeSeries& wall = registry.gauge("prof.phase.sim.run.wall_ns", "ns");
  ASSERT_EQ(wall.windowCount(), 1u);
  EXPECT_DOUBLE_EQ(wall.value(0), 1000.0);
  const TimeSeries& popped =
      registry.gauge("prof.counter.sim.events_popped", "events");
  EXPECT_DOUBLE_EQ(popped.value(0), 42.0);
}

TEST(Profiler, ChromeTraceCarriesSpansAndCounters) {
  ProfilerConfig config;
  config.spans = true;
  Profiler profiler(config);
  Phase& phase = profiler.phase("sweep.task");
  profiler.counter("ticks").add(5);
  profiler.recordSpan(phase, 100, 50);  // test seam: span without a clock
  const std::string json = profiler.chromeTrace();
  EXPECT_NE(json.find("\"sweep.task\""), std::string::npos);
  EXPECT_NE(json.find("\"prof.counter.ticks\""), std::string::npos);
  EXPECT_NE(json.find("\"thread 0\""), std::string::npos);
}

// The zero-cost contract, asserted from both sides: with the obs layer
// compiled in, the macros record; compiled out, they must not evaluate
// their operands at all (an unevaluated-operand side effect would be a
// contract break caught by the counter staying zero in the obs-off CI
// leg — and by the `sideEffects` probe staying zero in *both* legs,
// since the macro arguments below are intentionally side-effect free).
TEST(Profiler, MacrosAreNoOpsWhenCompiledOut) {
  Profiler profiler;
  Phase& phase = profiler.phase("scoped");
  Counter& counter = profiler.counter("counted");
  {
    OCCM_PROF_SCOPE(profiler, phase);
    OCCM_PROF_COUNT(counter, 2);
  }
  if constexpr (kCompiledIn) {
    EXPECT_EQ(profiler.phases()[0].calls, 1u);
    EXPECT_EQ(counter.value(), 2u);
  } else {
    EXPECT_EQ(profiler.phases()[0].calls, 0u);
    EXPECT_EQ(counter.value(), 0u);
  }
}

TEST(Profiler, ConcurrentRecordingLosesNothing) {
  Profiler profiler;
  Counter& counter = profiler.counter("shared");
  Phase& phase = profiler.phase("shared.phase");
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.add(1);
        phase.record(1, 1);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  EXPECT_EQ(profiler.phases()[0].calls, kThreads * kPerThread);
  EXPECT_EQ(profiler.phases()[0].wallNs, kThreads * kPerThread);
}

// ---- Profiling must never steer the simulation ------------------------

analysis::SweepConfig smallSweep() {
  analysis::SweepConfig config;
  config.machine = topology::testUma4();
  config.workload.program = workloads::Program::kEP;
  config.workload.problemClass = workloads::ProblemClass::kS;
  config.coreCounts = {1, 2, 4};
  config.parallel.workers = 1;
  return config;
}

TEST(Profiler, FingerprintUnchangedByProfiling) {
  analysis::SweepConfig plain = smallSweep();
  const analysis::SweepResult without = analysis::runSweep(plain);

  Profiler profiler;
  analysis::SweepConfig profiled = smallSweep();
  profiled.sim.profiler = &profiler;
  profiled.parallel.workers = 2;  // and across pool sizes, in one stroke
  const analysis::SweepResult with = analysis::runSweep(profiled);

  EXPECT_EQ(crc32(analysis::sweepToCsv(without)),
            crc32(analysis::sweepToCsv(with)));
  ASSERT_EQ(without.profiles.size(), with.profiles.size());
  for (std::size_t i = 0; i < without.profiles.size(); ++i) {
    EXPECT_EQ(without.profiles[i].hotPath.eventsPopped,
              with.profiles[i].hotPath.eventsPopped);
    EXPECT_EQ(without.profiles[i].hotPath.controllerTicks,
              with.profiles[i].hotPath.controllerTicks);
  }
  if constexpr (kCompiledIn) {
    // The profiled sweep actually profiled: the run phase fired once per
    // completed run and the counters mirror the profiles' totals.
    std::uint64_t poppedTotal = 0;
    for (const perf::RunProfile& p : with.profiles) {
      poppedTotal += p.hotPath.eventsPopped;
    }
    bool sawRunPhase = false;
    for (const PhaseSnapshot& phase : profiler.phases()) {
      sawRunPhase = sawRunPhase || (phase.name == "sim.run" &&
                                    phase.calls == with.profiles.size());
    }
    EXPECT_TRUE(sawRunPhase);
    for (const CounterSnapshot& c : profiler.counters()) {
      if (c.name == "sim.events_popped") {
        EXPECT_EQ(c.value, poppedTotal);
      }
    }
  }
}

TEST(HotPathStats, AccountsForTheEventLoop) {
  const perf::RunProfile profile =
      analysis::runOnce(topology::testUma4(),
                        {workloads::Program::kIS,
                         workloads::ProblemClass::kS},
                        2);
  const perf::HotPathStats& hot = profile.hotPath;
  // Every pushed event is popped (the loop drains), every pop is exactly
  // one advance or issue turn, and the queue held at least the initial
  // per-core events.
  EXPECT_GT(hot.eventsPopped, 0u);
  EXPECT_EQ(hot.eventsPopped, hot.eventsPushed);
  EXPECT_EQ(hot.eventsPopped, hot.advanceTurns + hot.issueTurns);
  EXPECT_GE(hot.maxEventQueueDepth, 2u);
  EXPECT_GT(hot.issueTurns, 0u);
  // Each off-chip issue reserves at least one memory-system resource.
  EXPECT_GE(hot.controllerTicks, hot.issueTurns);
}

TEST(HotPathStats, DeterministicAcrossRuns) {
  const auto run = [] {
    return analysis::runOnce(topology::testNuma4(),
                             {workloads::Program::kCG,
                              workloads::ProblemClass::kS},
                             4);
  };
  const perf::RunProfile a = run();
  const perf::RunProfile b = run();
  EXPECT_EQ(a.hotPath.eventsPopped, b.hotPath.eventsPopped);
  EXPECT_EQ(a.hotPath.eventsPushed, b.hotPath.eventsPushed);
  EXPECT_EQ(a.hotPath.maxEventQueueDepth, b.hotPath.maxEventQueueDepth);
  EXPECT_EQ(a.hotPath.advanceTurns, b.hotPath.advanceTurns);
  EXPECT_EQ(a.hotPath.issueTurns, b.hotPath.issueTurns);
  EXPECT_EQ(a.hotPath.controllerTicks, b.hotPath.controllerTicks);
}

TEST(PoolTelemetry, SweepReportsPoolStats) {
  analysis::SweepConfig config = smallSweep();
  config.parallel.workers = 2;
  const analysis::SweepResult sweep = analysis::runSweep(config);
  ASSERT_EQ(sweep.profiles.size(), 3u);
  if constexpr (kCompiledIn) {
    ASSERT_EQ(sweep.poolStats.workers.size(), 2u);
    EXPECT_EQ(sweep.poolStats.submitted, 3u);
    EXPECT_EQ(sweep.poolStats.totalTasks(), 3u);
    EXPECT_GE(sweep.poolStats.maxQueueDepth, 1u);
    EXPECT_FALSE(sweep.poolStats.queueOccupancy.empty());
    // The diagnostics line surfaces the pool without a Chrome trace.
    EXPECT_NE(sweep.diagnostics().find("pool: 3 task(s) over 2 worker(s)"),
              std::string::npos);
    const std::string csv = analysis::poolStatsToCsv(sweep.poolStats);
    EXPECT_NE(csv.find("pool,submitted,3"), std::string::npos);
    EXPECT_NE(csv.find("worker1,tasks,"), std::string::npos);
  } else {
    // Obs compiled out: the pool takes no clock reads and ships no stats.
    EXPECT_TRUE(sweep.poolStats.workers.empty());
    EXPECT_EQ(analysis::poolStatsToCsv(sweep.poolStats),
              "scope,metric,value\n");
  }
  // Serial sweeps never carry pool telemetry, obs on or off.
  const analysis::SweepResult serial = analysis::runSweep(smallSweep());
  EXPECT_TRUE(serial.poolStats.workers.empty());
}

TEST(PoolTelemetry, ThreadPoolStatsCountWorkAndBackpressure) {
  exec::ThreadPoolConfig config;
  config.workers = 2;
  config.queueCapacity = 2;
  exec::ThreadPool pool(config);
  for (int i = 0; i < 8; ++i) {
    pool.submit([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }).wait();
  }
  const exec::ThreadPoolStats stats = pool.stats();
  if constexpr (kCompiledIn) {
    ASSERT_EQ(stats.workers.size(), 2u);
    EXPECT_EQ(stats.submitted, 8u);
    EXPECT_EQ(stats.totalTasks(), 8u);
    std::uint64_t busy = 0;
    for (const exec::WorkerStats& w : stats.workers) {
      busy += w.busyNs;
    }
    EXPECT_GT(busy, 0u);
    EXPECT_GE(stats.maxQueueDepth, 1u);
    EXPECT_FALSE(stats.queueOccupancy.empty());
  } else {
    // Obs compiled out: stats() keeps the documented empty shape.
    EXPECT_TRUE(stats.workers.empty());
    EXPECT_EQ(stats.submitted, 0u);
    EXPECT_EQ(stats.totalTasks(), 0u);
  }
}

}  // namespace
}  // namespace occm::obs
