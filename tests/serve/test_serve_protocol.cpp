// Wire-layer tests for the capacity-advisor protocol: value-exact
// roundtrips for both message kinds, typed rejection (never a throw) of
// truncation / trailing bytes / bad enums, and the re-encode fixed-point
// pin the fuzz harness (fuzz/fuzz_serve_message.cpp) leans on.

#include <gtest/gtest.h>

#include <string>

#include "serve/protocol.hpp"

namespace occm::serve {
namespace {

AdvisorRequest sampleRequest() {
  AdvisorRequest request;
  request.requestId = 0xDEADBEEFCAFEBABEull;
  request.program = "SP";
  request.problemClass = "C";
  request.machine = "intel-numa24";
  request.coreMin = 2;
  request.coreMax = 17;
  request.deadlineMs = 1500;
  request.tier = TierPreference::kTier1;
  request.efficiencyThreshold = 0.625;
  return request;
}

AdvisorResponse sampleResponse() {
  AdvisorResponse response;
  response.requestId = 42;
  response.status = ResponseStatus::kOk;
  response.shedReason = ShedReason::kNone;
  response.tier = 1;
  response.degraded = true;
  response.degradeReason = DegradeReason::kDeadlineSlack;
  response.cacheHit = true;
  response.queueDepth = 7;
  response.rows.push_back(
      AdvisorRow{4, 9.5e11, 0.37, 3.1, 0.775, /*measured=*/true});
  response.rows.push_back(
      AdvisorRow{5, 1.05e12, 0.44, 3.4, 0.68, /*measured=*/false});
  response.bestCores = 13;
  response.bestSpeedup = 6.25;
  response.efficientCores = 9;
  response.error = "diagnostic text";
  return response;
}

TEST(ServeProtocol, RequestRoundtripsEveryField) {
  ServeMessage message;
  message.kind = ServeMessage::Kind::kRequest;
  message.request = sampleRequest();
  const auto decoded = decodeServeMessage(encodeServeMessage(message));
  ASSERT_TRUE(decoded.hasValue()) << decoded.error().message();
  EXPECT_EQ(decoded->kind, ServeMessage::Kind::kRequest);
  const AdvisorRequest& r = decoded->request;
  EXPECT_EQ(r.protocolVersion, kServeProtocolVersion);
  EXPECT_EQ(r.requestId, 0xDEADBEEFCAFEBABEull);
  EXPECT_EQ(r.program, "SP");
  EXPECT_EQ(r.problemClass, "C");
  EXPECT_EQ(r.machine, "intel-numa24");
  EXPECT_EQ(r.coreMin, 2);
  EXPECT_EQ(r.coreMax, 17);
  EXPECT_EQ(r.deadlineMs, 1500u);
  EXPECT_EQ(r.tier, TierPreference::kTier1);
  EXPECT_DOUBLE_EQ(r.efficiencyThreshold, 0.625);
}

TEST(ServeProtocol, ResponseRoundtripsEveryField) {
  ServeMessage message;
  message.kind = ServeMessage::Kind::kResponse;
  message.response = sampleResponse();
  const auto decoded = decodeServeMessage(encodeServeMessage(message));
  ASSERT_TRUE(decoded.hasValue()) << decoded.error().message();
  EXPECT_EQ(decoded->kind, ServeMessage::Kind::kResponse);
  const AdvisorResponse& r = decoded->response;
  EXPECT_EQ(r.requestId, 42u);
  EXPECT_EQ(r.status, ResponseStatus::kOk);
  EXPECT_EQ(r.shedReason, ShedReason::kNone);
  EXPECT_EQ(r.tier, 1);
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.degradeReason, DegradeReason::kDeadlineSlack);
  EXPECT_TRUE(r.cacheHit);
  EXPECT_EQ(r.queueDepth, 7u);
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].cores, 4);
  EXPECT_DOUBLE_EQ(r.rows[0].cycles, 9.5e11);
  EXPECT_DOUBLE_EQ(r.rows[0].omega, 0.37);
  EXPECT_DOUBLE_EQ(r.rows[0].speedup, 3.1);
  EXPECT_DOUBLE_EQ(r.rows[0].efficiency, 0.775);
  EXPECT_TRUE(r.rows[0].measured);
  EXPECT_FALSE(r.rows[1].measured);
  EXPECT_EQ(r.bestCores, 13);
  EXPECT_DOUBLE_EQ(r.bestSpeedup, 6.25);
  EXPECT_EQ(r.efficientCores, 9);
  EXPECT_EQ(r.error, "diagnostic text");
}

TEST(ServeProtocol, ShedResponseRoundtrips) {
  ServeMessage message;
  message.kind = ServeMessage::Kind::kResponse;
  message.response = AdvisorResponse{};
  message.response.requestId = 9;
  message.response.status = ResponseStatus::kShed;
  message.response.shedReason = ShedReason::kQueueFull;
  message.response.queueDepth = 16;
  message.response.error = "shed: queue-full";
  const auto decoded = decodeServeMessage(encodeServeMessage(message));
  ASSERT_TRUE(decoded.hasValue());
  EXPECT_EQ(decoded->response.status, ResponseStatus::kShed);
  EXPECT_EQ(decoded->response.shedReason, ShedReason::kQueueFull);
  EXPECT_TRUE(decoded->response.rows.empty());
}

TEST(ServeProtocol, EveryTruncatedPrefixFailsTyped) {
  for (const ServeMessage::Kind kind :
       {ServeMessage::Kind::kRequest, ServeMessage::Kind::kResponse}) {
    ServeMessage message;
    message.kind = kind;
    message.request = sampleRequest();
    message.response = sampleResponse();
    const std::string payload = encodeServeMessage(message);
    for (std::size_t len = 0; len < payload.size(); ++len) {
      const auto decoded =
          decodeServeMessage(std::string_view(payload.data(), len));
      EXPECT_FALSE(decoded.hasValue())
          << "prefix of length " << len << " decoded";
      if (!decoded.hasValue()) {
        EXPECT_FALSE(decoded.error().message().empty());
      }
    }
  }
}

TEST(ServeProtocol, TrailingBytesFail) {
  ServeMessage message;
  message.kind = ServeMessage::Kind::kRequest;
  message.request = sampleRequest();
  std::string payload = encodeServeMessage(message);
  payload.push_back('\0');
  EXPECT_FALSE(decodeServeMessage(payload).hasValue());
}

TEST(ServeProtocol, UnknownKindFails) {
  EXPECT_FALSE(decodeServeMessage(std::string(1, '\x00')).hasValue());
  EXPECT_FALSE(decodeServeMessage(std::string(1, '\x07')).hasValue());
  EXPECT_FALSE(decodeServeMessage(std::string_view{}).hasValue());
}

TEST(ServeProtocol, AcceptedMutationsAreReencodeFixedPoints) {
  // Single-byte corruption either fails typed or decodes to a message
  // whose re-encoding reproduces the corrupted bytes exactly — the same
  // canonical-form pin the fuzzer enforces. Out-of-range enums and bool
  // bytes > 1 land in the "fails typed" arm.
  for (const ServeMessage::Kind kind :
       {ServeMessage::Kind::kRequest, ServeMessage::Kind::kResponse}) {
    ServeMessage message;
    message.kind = kind;
    message.request = sampleRequest();
    message.response = sampleResponse();
    const std::string canonical = encodeServeMessage(message);
    for (std::size_t pos = 0; pos < canonical.size(); ++pos) {
      for (const int maskInt : {0x01, 0x80, 0xFF}) {
        const auto mask = static_cast<unsigned char>(maskInt);
        std::string mutated = canonical;
        mutated[pos] = static_cast<char>(
            static_cast<unsigned char>(mutated[pos]) ^ mask);
        const auto decoded = decodeServeMessage(mutated);
        if (decoded.hasValue()) {
          EXPECT_EQ(encodeServeMessage(*decoded), mutated)
              << "byte " << pos << " mask " << static_cast<int>(mask);
        }
      }
    }
  }
}

TEST(ServeProtocol, OutOfRangeEnumsFail) {
  // The tier byte sits immediately before the trailing f64 threshold in
  // the request encoding; force it out of range.
  ServeMessage message;
  message.kind = ServeMessage::Kind::kRequest;
  message.request = sampleRequest();
  std::string payload = encodeServeMessage(message);
  ASSERT_GE(payload.size(), 9u);
  payload[payload.size() - 9] = '\x05';  // TierPreference max is 2
  EXPECT_FALSE(decodeServeMessage(payload).hasValue());
}

}  // namespace
}  // namespace occm::serve
