// The overload ladder as a pure function: serve/degrade.hpp decides
// admission from observed load with no sockets and no clock, so every
// rung — and the priority order between rungs — pins down exactly here.

#include <gtest/gtest.h>

#include "serve/degrade.hpp"

namespace occm::serve {
namespace {

using Action = AdmissionDecision::Action;

DegradeConfig ladderConfig() {
  DegradeConfig config;
  config.queueCapacity = 4;
  config.degradeQueueDepth = 2;
  config.minTier1SlackMs = 10.0;
  config.maxTier1EwmaMs = 100.0;
  return config;
}

TEST(DecideAdmission, HealthyLoadServesTier1) {
  DegradeInputs in;
  const AdmissionDecision out = decideAdmission(ladderConfig(), in);
  EXPECT_EQ(out.action, Action::kServeTier1);
  EXPECT_FALSE(out.degraded);
  EXPECT_EQ(out.shedReason, ShedReason::kNone);
  EXPECT_EQ(out.degradeReason, DegradeReason::kNone);
}

TEST(DecideAdmission, DrainingShedsBeforeEverything) {
  DegradeInputs in;
  in.draining = true;
  // Even a warm explicit tier-0 request — the one shape served at queue
  // capacity — sheds once the drain token fired.
  in.preference = TierPreference::kTier0;
  in.modelWarm = true;
  const AdmissionDecision out = decideAdmission(ladderConfig(), in);
  EXPECT_EQ(out.action, Action::kShed);
  EXPECT_EQ(out.shedReason, ShedReason::kDraining);
}

TEST(DecideAdmission, ExpiredDeadlineShedsInfeasible) {
  DegradeInputs in;
  in.deadlineArmed = true;
  in.deadlineSlackMs = 0.0;  // <= 0: already hopeless
  const AdmissionDecision out = decideAdmission(ladderConfig(), in);
  EXPECT_EQ(out.action, Action::kShed);
  EXPECT_EQ(out.shedReason, ShedReason::kDeadlineInfeasible);
}

TEST(DecideAdmission, InfeasibleDeadlineOutranksQueueFull) {
  DegradeInputs in;
  in.deadlineArmed = true;
  in.deadlineSlackMs = -5.0;
  in.queueDepth = 99;
  const AdmissionDecision out = decideAdmission(ladderConfig(), in);
  EXPECT_EQ(out.shedReason, ShedReason::kDeadlineInfeasible);
}

TEST(DecideAdmission, QueueAtCapacitySheds) {
  DegradeInputs in;
  in.queueDepth = 4;
  const AdmissionDecision out = decideAdmission(ladderConfig(), in);
  EXPECT_EQ(out.action, Action::kShed);
  EXPECT_EQ(out.shedReason, ShedReason::kQueueFull);
}

TEST(DecideAdmission, WarmExplicitTier0ServedAtCapacity) {
  // The analytic tier answers from cached parameters in microseconds and
  // needs no queue slot — it is exactly the part that must keep
  // answering under saturation.
  DegradeInputs in;
  in.queueDepth = 4;
  in.preference = TierPreference::kTier0;
  in.modelWarm = true;
  const AdmissionDecision out = decideAdmission(ladderConfig(), in);
  EXPECT_EQ(out.action, Action::kServeTier0);
  EXPECT_FALSE(out.degraded);
}

TEST(DecideAdmission, ColdExplicitTier0NeedsSlotAndSheds) {
  // A cold model needs a fit job, which needs a slot: explicit tier 0
  // does not bypass the queue bound when the cache is cold.
  DegradeInputs in;
  in.queueDepth = 4;
  in.preference = TierPreference::kTier0;
  in.modelWarm = false;
  const AdmissionDecision out = decideAdmission(ladderConfig(), in);
  EXPECT_EQ(out.action, Action::kShed);
  EXPECT_EQ(out.shedReason, ShedReason::kQueueFull);
}

TEST(DecideAdmission, ExplicitTier0IsNeverDegradedFlagged) {
  // The client asked for the analytic tier; answering it is not a
  // downgrade even when every rung is tripped.
  DegradeInputs in;
  in.preference = TierPreference::kTier0;
  in.queueDepth = 3;                // >= degradeQueueDepth
  in.deadlineArmed = true;
  in.deadlineSlackMs = 1.0;         // < minTier1SlackMs
  in.ewmaSeeded = true;
  in.tier1EwmaMs = 500.0;           // >= maxTier1EwmaMs
  const AdmissionDecision out = decideAdmission(ladderConfig(), in);
  EXPECT_EQ(out.action, Action::kServeTier0);
  EXPECT_FALSE(out.degraded);
  EXPECT_EQ(out.degradeReason, DegradeReason::kNone);
}

TEST(DecideAdmission, QueueDepthRungDegrades) {
  DegradeInputs in;
  in.queueDepth = 2;  // at the threshold trips it
  const AdmissionDecision out = decideAdmission(ladderConfig(), in);
  EXPECT_EQ(out.action, Action::kServeTier0);
  EXPECT_TRUE(out.degraded);
  EXPECT_EQ(out.degradeReason, DegradeReason::kQueueDepth);
}

TEST(DecideAdmission, DeadlineSlackRungDegrades) {
  DegradeInputs in;
  in.deadlineArmed = true;
  in.deadlineSlackMs = 9.9;  // positive but below the tier-1 floor
  const AdmissionDecision out = decideAdmission(ladderConfig(), in);
  EXPECT_EQ(out.action, Action::kServeTier0);
  EXPECT_TRUE(out.degraded);
  EXPECT_EQ(out.degradeReason, DegradeReason::kDeadlineSlack);
}

TEST(DecideAdmission, EwmaRungDegrades) {
  DegradeInputs in;
  in.ewmaSeeded = true;
  in.tier1EwmaMs = 100.0;  // at the threshold trips it
  const AdmissionDecision out = decideAdmission(ladderConfig(), in);
  EXPECT_EQ(out.action, Action::kServeTier0);
  EXPECT_TRUE(out.degraded);
  EXPECT_EQ(out.degradeReason, DegradeReason::kTier1Latency);
}

TEST(DecideAdmission, UnseededEwmaNeverTrips) {
  DegradeInputs in;
  in.ewmaSeeded = false;
  in.tier1EwmaMs = 1e9;  // garbage value must be ignored until seeded
  const AdmissionDecision out = decideAdmission(ladderConfig(), in);
  EXPECT_EQ(out.action, Action::kServeTier1);
}

TEST(DecideAdmission, RungPriorityQueueDepthBeforeSlackBeforeEwma) {
  DegradeInputs in;
  in.queueDepth = 2;
  in.deadlineArmed = true;
  in.deadlineSlackMs = 1.0;
  in.ewmaSeeded = true;
  in.tier1EwmaMs = 500.0;
  const DegradeConfig config = ladderConfig();
  // All three tripped: cheapest signal (queue depth) names the reason.
  EXPECT_EQ(decideAdmission(config, in).degradeReason,
            DegradeReason::kQueueDepth);
  in.queueDepth = 0;
  EXPECT_EQ(decideAdmission(config, in).degradeReason,
            DegradeReason::kDeadlineSlack);
  in.deadlineSlackMs = 50.0;
  EXPECT_EQ(decideAdmission(config, in).degradeReason,
            DegradeReason::kTier1Latency);
}

TEST(DecideAdmission, ExplicitTier1StillDegradesUnderLoad) {
  // kTier1 means "never choose tier 0 for headroom when healthy" — it is
  // not an exemption from the overload ladder.
  DegradeInputs in;
  in.preference = TierPreference::kTier1;
  in.queueDepth = 2;
  const AdmissionDecision out = decideAdmission(ladderConfig(), in);
  EXPECT_EQ(out.action, Action::kServeTier0);
  EXPECT_TRUE(out.degraded);
  EXPECT_EQ(out.degradeReason, DegradeReason::kQueueDepth);
}

TEST(DecideAdmission, ZeroDisablesEveryRung) {
  DegradeConfig config;
  config.queueCapacity = 4;
  config.degradeQueueDepth = 0;
  config.minTier1SlackMs = 0.0;
  config.maxTier1EwmaMs = 0.0;
  DegradeInputs in;
  in.queueDepth = 3;  // below capacity, above any sane degrade depth
  in.deadlineArmed = true;
  in.deadlineSlackMs = 0.001;
  in.ewmaSeeded = true;
  in.tier1EwmaMs = 1e9;
  const AdmissionDecision out = decideAdmission(config, in);
  EXPECT_EQ(out.action, Action::kServeTier1);
  EXPECT_FALSE(out.degraded);
}

TEST(LatencyEwma, FirstSampleSeedsWithoutZeroBias) {
  LatencyEwma ewma(0.5);
  EXPECT_FALSE(ewma.seeded());
  EXPECT_EQ(ewma.value(), 0.0);
  ewma.sample(40.0);
  EXPECT_TRUE(ewma.seeded());
  EXPECT_DOUBLE_EQ(ewma.value(), 40.0);  // seeded, not 0.5 * 40
}

TEST(LatencyEwma, SmoothsWithAlpha) {
  LatencyEwma ewma(0.2);
  ewma.sample(100.0);
  ewma.sample(200.0);
  EXPECT_DOUBLE_EQ(ewma.value(), 100.0 + 0.2 * 100.0);
  ewma.sample(120.0);
  EXPECT_DOUBLE_EQ(ewma.value(), 120.0);  // already at the new level
}

}  // namespace
}  // namespace occm::serve
