// End-to-end overload tests for the capacity-advisor server, driven over
// real TCP with zero sleeps: every ordering is pinned by hooks (gates in
// beforeFitRun/beforeTier1Run, futures from onListening / onDraining /
// onDeadlineCancel), never by timing guesses. The flagship test walks the
// whole robustness ladder in one run — queue fill -> typed shed, deadline
// mid-tier-1 -> cooperative cancellation + tier-0 fallback, drain ->
// kDraining shed — and then reconciles every AdvisorServerStats counter
// and serve.* gauge against the client-observed responses.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/cancellation.hpp"
#include "exec/frame_transport.hpp"
#include "obs/metric_registry.hpp"
#include "serve/advisor_server.hpp"
#include "serve/protocol.hpp"

namespace occm::serve {
namespace {

using namespace std::chrono_literals;

/// A gate pool-thread hooks block on while closed. Tracks arrivals so
/// tests can wait for "the job reached the hook" without sleeping.
class Gate {
 public:
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    open_ = false;
  }
  void open() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    openCv_.notify_all();
  }
  /// Hook body: records the arrival, then waits until the gate is open.
  void pass() {
    std::unique_lock<std::mutex> lock(mutex_);
    ++arrivals_;
    arrivalCv_.notify_all();
    openCv_.wait(lock, [this] { return open_; });
  }
  [[nodiscard]] int arrivals() {
    std::lock_guard<std::mutex> lock(mutex_);
    return arrivals_;
  }
  [[nodiscard]] bool awaitArrivals(int atLeast,
                                   std::chrono::milliseconds timeout = 30s) {
    std::unique_lock<std::mutex> lock(mutex_);
    return arrivalCv_.wait_for(lock, timeout,
                               [&] { return arrivals_ >= atLeast; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable openCv_;
  std::condition_variable arrivalCv_;
  bool open_ = true;
  int arrivals_ = 0;
};

/// Framed client over one TCP connection. Responses may interleave (the
/// server answers as work lands), so receives are matched by requestId.
class TestClient {
 public:
  [[nodiscard]] bool connect(int port) {
    auto fd = exec::connectTcp("127.0.0.1", port, 5'000);
    if (!fd) {
      return false;
    }
    transport_ = exec::makeSocketTransport(*fd);
    return true;
  }

  [[nodiscard]] bool send(const AdvisorRequest& request) {
    ServeMessage message;
    message.kind = ServeMessage::Kind::kRequest;
    message.request = request;
    return transport_->sendFrame(encodeServeMessage(message));
  }

  /// Blocks (with a generous deadline, returning early as soon as the
  /// frame lands) until the response for `requestId` arrives; responses
  /// for other ids are stashed for later calls.
  [[nodiscard]] std::optional<AdvisorResponse> recvFor(
      std::uint64_t requestId, int timeoutMs = 60'000) {
    for (;;) {
      const auto stashed = stash_.find(requestId);
      if (stashed != stash_.end()) {
        AdvisorResponse out = std::move(stashed->second);
        stash_.erase(stashed);
        return out;
      }
      std::string payload;
      if (transport_->recvFrame(payload, timeoutMs) !=
          exec::FrameTransport::RecvStatus::kFrame) {
        return std::nullopt;
      }
      auto decoded = decodeServeMessage(payload);
      if (!decoded || decoded->kind != ServeMessage::Kind::kResponse) {
        return std::nullopt;
      }
      stash_.emplace(decoded->response.requestId,
                     std::move(decoded->response));
    }
  }

  [[nodiscard]] exec::FrameTransport& transport() { return *transport_; }

 private:
  std::unique_ptr<exec::FrameTransport> transport_;
  std::unordered_map<std::uint64_t, AdvisorResponse> stash_;
};

AdvisorRequest makeRequest(std::uint64_t id, const std::string& program = "EP",
                           TierPreference tier = TierPreference::kAuto,
                           std::uint32_t deadlineMs = 0) {
  AdvisorRequest request;
  request.requestId = id;
  request.program = program;
  request.problemClass = "S";
  request.machine = "test-numa4";
  request.deadlineMs = deadlineMs;
  request.tier = tier;
  return request;
}

/// The acceptance run: one server, one connection, every rung of the
/// ladder, full ground-truth reconciliation at the end.
TEST(AdvisorServer, OverloadLadderEndToEnd) {
  Gate fitGate;
  Gate tier1Gate;
  fitGate.close();  // the herd must pile up before the fit finishes

  std::promise<int> portPromise;
  auto portFuture = portPromise.get_future();
  std::promise<void> drainingPromise;
  auto drainingFuture = drainingPromise.get_future();
  std::promise<std::uint64_t> cancelPromise;
  auto cancelFuture = cancelPromise.get_future();
  CancellationSource drain;
  obs::MetricRegistry metrics(1);  // 1 ms windows

  AdvisorServerConfig config;
  config.degrade.queueCapacity = 3;
  config.degrade.degradeQueueDepth = 2;
  config.degrade.minTier1SlackMs = 5.0;
  config.degrade.maxTier1EwmaMs = 0.0;  // exercised in its own test
  config.workers = 1;                   // serial pool: deterministic order
  config.drain = drain.token();
  config.metrics = &metrics;
  config.onListening = [&](int port) { portPromise.set_value(port); };
  config.onDraining = [&] { drainingPromise.set_value(); };
  config.onDeadlineCancel = [&](std::uint64_t id) {
    cancelPromise.set_value(id);
  };
  config.beforeFitRun = [&](int, int) { fitGate.pass(); };
  config.beforeTier1Run = [&](int, int) { tier1Gate.pass(); };

  AdvisorServerStats stats;
  std::thread server([&] { stats = runAdvisorServer(config); });

  ASSERT_EQ(portFuture.wait_for(30s), std::future_status::ready);
  TestClient client;
  ASSERT_TRUE(client.connect(portFuture.get()));

  // --- Rung 0: malformed requests shed typed, never crash. ------------
  AdvisorRequest bad = makeRequest(1, "XX");
  ASSERT_TRUE(client.send(bad));
  auto r1 = client.recvFor(1);
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->status, ResponseStatus::kShed);
  EXPECT_EQ(r1->shedReason, ShedReason::kBadRequest);
  EXPECT_NE(r1->error.find("XX"), std::string::npos);

  // --- Rungs 1+3+4: a cold thundering herd against a gated fit. -------
  // req2 claims the fit; req3 coalesces; req4 trips the queue-depth
  // degradation rung at admission; req5 finds the queue full and sheds.
  ASSERT_TRUE(client.send(makeRequest(2)));
  ASSERT_TRUE(client.send(makeRequest(3)));
  ASSERT_TRUE(client.send(makeRequest(4)));
  ASSERT_TRUE(client.send(makeRequest(5)));
  auto r5 = client.recvFor(5);
  ASSERT_TRUE(r5.has_value());
  EXPECT_EQ(r5->status, ResponseStatus::kShed);
  EXPECT_EQ(r5->shedReason, ShedReason::kQueueFull);
  EXPECT_EQ(r5->queueDepth, 3u);  // load feedback for client backoff

  // Release the fit. Waiters resolve in arrival order, re-deciding
  // against post-fit load: req2 sees two others still queued and
  // degrades; req3 then refines at tier 1; req4 keeps its admission
  // verdict (degraded at a depth of 2).
  fitGate.open();
  auto r2 = client.recvFor(2);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->status, ResponseStatus::kOk);
  EXPECT_EQ(r2->tier, 0);
  EXPECT_TRUE(r2->degraded);
  EXPECT_EQ(r2->degradeReason, DegradeReason::kQueueDepth);
  EXPECT_FALSE(r2->cacheHit);
  EXPECT_EQ(r2->queueDepth, 0u);
  ASSERT_EQ(r2->rows.size(), 4u);  // default range: 1..totalCores
  for (const AdvisorRow& row : r2->rows) {
    EXPECT_FALSE(row.measured);  // tier 0: analytic predictions
    EXPECT_GT(row.cycles, 0.0);
    EXPECT_GT(row.speedup, 0.0);
  }
  auto r4 = client.recvFor(4);
  ASSERT_TRUE(r4.has_value());
  EXPECT_EQ(r4->status, ResponseStatus::kOk);
  EXPECT_EQ(r4->tier, 0);
  EXPECT_TRUE(r4->degraded);
  EXPECT_EQ(r4->degradeReason, DegradeReason::kQueueDepth);
  EXPECT_EQ(r4->queueDepth, 2u);
  auto r3 = client.recvFor(3);
  ASSERT_TRUE(r3.has_value());
  EXPECT_EQ(r3->status, ResponseStatus::kOk);
  EXPECT_EQ(r3->tier, 1);
  EXPECT_FALSE(r3->degraded);
  EXPECT_FALSE(r3->cacheHit);  // admitted cold; the fit ran for it
  ASSERT_EQ(r3->rows.size(), 4u);
  for (const AdvisorRow& row : r3->rows) {
    EXPECT_TRUE(row.measured);  // tier 1: simulator ground truth
    EXPECT_GT(row.cycles, 0.0);
  }
  EXPECT_GE(r3->bestCores, 1);
  EXPECT_LE(r3->bestCores, 4);
  EXPECT_GE(r3->efficientCores, 1);

  // --- Rung 2a: a 1 ms deadline has no tier-1 slack (floor: 5 ms). ----
  // Warm model, so the analytic tier still answers inline — or, if the
  // deadline already lapsed in flight, the shed is typed. Both outcomes
  // fold into the reconciliation below.
  ASSERT_TRUE(
      client.send(makeRequest(6, "EP", TierPreference::kAuto, 1)));
  auto r6 = client.recvFor(6);
  ASSERT_TRUE(r6.has_value());
  const bool slackDegraded = r6->status == ResponseStatus::kOk;
  if (slackDegraded) {
    EXPECT_EQ(r6->tier, 0);
    EXPECT_TRUE(r6->degraded);
    EXPECT_EQ(r6->degradeReason, DegradeReason::kDeadlineSlack);
    EXPECT_TRUE(r6->cacheHit);
  } else {
    EXPECT_EQ(r6->status, ResponseStatus::kShed);
    EXPECT_EQ(r6->shedReason, ShedReason::kDeadlineInfeasible);
  }

  // --- Rung 2b: deadline expires mid-tier-1 -> cooperative cancel. ----
  // The refinement blocks at its gate until the watchdog fires the
  // request's stop flag (observed via onDeadlineCancel — no sleeps);
  // the sweep then unwinds at the simulator's cancellation point and
  // the request falls back to a flagged tier-0 answer.
  tier1Gate.close();
  ASSERT_TRUE(
      client.send(makeRequest(7, "EP", TierPreference::kTier1, 30)));
  ASSERT_EQ(cancelFuture.wait_for(30s), std::future_status::ready);
  EXPECT_EQ(cancelFuture.get(), 7u);
  tier1Gate.open();
  auto r7 = client.recvFor(7);
  ASSERT_TRUE(r7.has_value());
  EXPECT_EQ(r7->status, ResponseStatus::kOk);
  EXPECT_EQ(r7->tier, 0);
  EXPECT_TRUE(r7->degraded);
  EXPECT_EQ(r7->degradeReason, DegradeReason::kDeadlineMiss);
  EXPECT_TRUE(r7->cacheHit);
  ASSERT_EQ(r7->rows.size(), 4u);

  // --- Rung 5: drain with work in flight. -----------------------------
  // req8's refinement is parked at the gate when the drain token fires:
  // the server stops accepting, sheds req9 typed, finishes req8, then
  // exits cleanly.
  const int tier1ArrivalsBefore = tier1Gate.arrivals();
  tier1Gate.close();
  ASSERT_TRUE(client.send(makeRequest(8)));
  ASSERT_TRUE(tier1Gate.awaitArrivals(tier1ArrivalsBefore + 1));
  drain.requestStop();
  ASSERT_EQ(drainingFuture.wait_for(30s), std::future_status::ready);
  ASSERT_TRUE(client.send(makeRequest(9)));
  auto r9 = client.recvFor(9);
  ASSERT_TRUE(r9.has_value());
  EXPECT_EQ(r9->status, ResponseStatus::kShed);
  EXPECT_EQ(r9->shedReason, ShedReason::kDraining);
  EXPECT_EQ(r9->queueDepth, 1u);  // req8 still holds its slot
  tier1Gate.open();
  auto r8 = client.recvFor(8);
  ASSERT_TRUE(r8.has_value());
  EXPECT_EQ(r8->status, ResponseStatus::kOk);
  EXPECT_EQ(r8->tier, 1);
  EXPECT_TRUE(r8->cacheHit);

  server.join();

  // --- Reconciliation: server counters == client-observed truth. ------
  EXPECT_TRUE(stats.drained);
  EXPECT_TRUE(stats.error.empty());
  EXPECT_EQ(stats.connectionsAccepted, 1u);
  EXPECT_EQ(stats.requestsDecoded, 9u);
  EXPECT_EQ(stats.responsesSent, 9u);
  EXPECT_EQ(stats.shedBadRequest, 1u);
  EXPECT_EQ(stats.shedQueueFull, 1u);
  EXPECT_EQ(stats.shedDraining, 1u);
  EXPECT_EQ(stats.shedDeadlineInfeasible, slackDegraded ? 0u : 1u);
  const std::uint64_t expectTier0 = slackDegraded ? 4u : 3u;  // 2, 4, 7 (, 6)
  const std::uint64_t expectDegraded = expectTier0;  // every tier-0 flagged
  EXPECT_EQ(stats.tier0Served, expectTier0);
  EXPECT_EQ(stats.tier1Served, 2u);  // 3, 8
  EXPECT_EQ(stats.degraded, expectDegraded);
  EXPECT_EQ(stats.deadlineMisses, 1u);  // req7
  EXPECT_EQ(stats.fitFailures, 0u);
  EXPECT_EQ(stats.maxQueueDepth, 3u);
  EXPECT_GT(stats.tier1EwmaMs, 0.0);  // seeded by req3 and req8
  EXPECT_EQ(stats.cache.misses, 1u);     // req2 (the herd's first)
  EXPECT_EQ(stats.cache.coalesced, 2u);  // req3, req4
  EXPECT_EQ(stats.cache.hits, 3u);       // req6, req7, req8
  EXPECT_EQ(stats.cache.evictions, 0u);

  // --- serve.* gauges: final window == the same ground truth. ---------
  const auto lastValue = [&](const char* name) {
    const obs::TimeSeries* series = metrics.find(name);
    EXPECT_NE(series, nullptr) << name;
    return series == nullptr || series->empty() ? -1.0
                                                : series->values().back();
  };
  const double expectShed = slackDegraded ? 3.0 : 4.0;
  EXPECT_EQ(lastValue("serve.queue.depth"), 0.0);
  EXPECT_EQ(lastValue("serve.shed"), expectShed);
  EXPECT_EQ(lastValue("serve.degraded"),
            static_cast<double>(expectDegraded));
  EXPECT_EQ(lastValue("serve.deadline_miss"), 1.0);
  EXPECT_EQ(lastValue("serve.tier0"), static_cast<double>(expectTier0));
  EXPECT_EQ(lastValue("serve.tier1"), 2.0);
  EXPECT_GT(lastValue("serve.tier1.ewma_ms"), 0.0);
  EXPECT_DOUBLE_EQ(lastValue("serve.cache.hit_rate"), 0.75);
}

/// The EWMA rung: once tier-1 latency is observed to exceed the
/// threshold, later auto requests degrade to the analytic tier inline.
TEST(AdvisorServer, Tier1LatencyEwmaTripsDegradation) {
  std::promise<int> portPromise;
  auto portFuture = portPromise.get_future();
  CancellationSource drain;

  AdvisorServerConfig config;
  config.degrade.queueCapacity = 4;
  config.degrade.degradeQueueDepth = 0;
  config.degrade.minTier1SlackMs = 0.0;
  config.degrade.maxTier1EwmaMs = 0.001;  // any real sweep exceeds this
  config.workers = 1;
  config.drain = drain.token();
  config.onListening = [&](int port) { portPromise.set_value(port); };

  AdvisorServerStats stats;
  std::thread server([&] { stats = runAdvisorServer(config); });
  ASSERT_EQ(portFuture.wait_for(30s), std::future_status::ready);
  TestClient client;
  ASSERT_TRUE(client.connect(portFuture.get()));

  // Cold: the EWMA is unseeded, so the rung cannot trip — full tier 1.
  ASSERT_TRUE(client.send(makeRequest(1)));
  auto r1 = client.recvFor(1);
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->status, ResponseStatus::kOk);
  EXPECT_EQ(r1->tier, 1);
  EXPECT_FALSE(r1->degraded);

  // Seeded far beyond the threshold: auto now degrades inline.
  ASSERT_TRUE(client.send(makeRequest(2)));
  auto r2 = client.recvFor(2);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->status, ResponseStatus::kOk);
  EXPECT_EQ(r2->tier, 0);
  EXPECT_TRUE(r2->degraded);
  EXPECT_EQ(r2->degradeReason, DegradeReason::kTier1Latency);
  EXPECT_TRUE(r2->cacheHit);

  drain.requestStop();
  server.join();
  EXPECT_TRUE(stats.drained);
  EXPECT_EQ(stats.tier1Served, 1u);
  EXPECT_EQ(stats.tier0Served, 1u);
  EXPECT_EQ(stats.degraded, 1u);
  EXPECT_GT(stats.tier1EwmaMs, 0.001);
}

/// LRU eviction and single-flight over the wire: capacity one, three
/// herd requests collapse into one fit, and alternating keys re-fit
/// (evicting each other) rather than growing the cache.
TEST(AdvisorServer, CacheEvictionAndSingleFlightOverTheWire) {
  std::promise<int> portPromise;
  auto portFuture = portPromise.get_future();
  CancellationSource drain;

  AdvisorServerConfig config;
  config.degrade.queueCapacity = 8;
  config.degrade.degradeQueueDepth = 0;
  config.cacheCapacity = 1;
  config.workers = 2;
  config.drain = drain.token();
  config.onListening = [&](int port) { portPromise.set_value(port); };

  AdvisorServerStats stats;
  std::thread server([&] { stats = runAdvisorServer(config); });
  ASSERT_EQ(portFuture.wait_for(30s), std::future_status::ready);
  TestClient client;
  ASSERT_TRUE(client.connect(portFuture.get()));

  // A pipelined herd on one cold key, analytic tier only: one fit total.
  ASSERT_TRUE(client.send(makeRequest(1, "EP", TierPreference::kTier0)));
  ASSERT_TRUE(client.send(makeRequest(2, "EP", TierPreference::kTier0)));
  ASSERT_TRUE(client.send(makeRequest(3, "EP", TierPreference::kTier0)));
  for (std::uint64_t id = 1; id <= 3; ++id) {
    auto response = client.recvFor(id);
    ASSERT_TRUE(response.has_value()) << "request " << id;
    EXPECT_EQ(response->status, ResponseStatus::kOk);
    EXPECT_EQ(response->tier, 0);
    EXPECT_FALSE(response->degraded);  // explicit tier 0 is not a downgrade
  }

  // A second key publishes and evicts the first (capacity 1) ...
  ASSERT_TRUE(client.send(makeRequest(4, "CG", TierPreference::kTier0)));
  auto r4 = client.recvFor(4);
  ASSERT_TRUE(r4.has_value());
  EXPECT_EQ(r4->status, ResponseStatus::kOk);
  // ... so asking for the first again is a cold miss and a re-fit.
  ASSERT_TRUE(client.send(makeRequest(5, "EP", TierPreference::kTier0)));
  auto r5 = client.recvFor(5);
  ASSERT_TRUE(r5.has_value());
  EXPECT_EQ(r5->status, ResponseStatus::kOk);
  EXPECT_FALSE(r5->cacheHit);

  drain.requestStop();
  server.join();
  EXPECT_TRUE(stats.drained);
  EXPECT_EQ(stats.tier0Served, 5u);
  EXPECT_EQ(stats.tier1Served, 0u);
  EXPECT_EQ(stats.cache.misses, 3u);     // EP cold, CG cold, EP again
  EXPECT_EQ(stats.cache.evictions, 2u);  // CG evicts EP, EP evicts CG
  // The herd's followers either coalesced onto the in-flight fit or (if
  // the fit won the race) hit the fresh entry; either way, one fit.
  EXPECT_EQ(stats.cache.hits + stats.cache.coalesced, 2u);
  EXPECT_EQ(stats.fitFailures, 0u);
}

/// Wire robustness: corrupt streams and protocol misuse drop only the
/// offending connection; the server keeps serving others and still
/// drains cleanly.
TEST(AdvisorServer, CorruptStreamsDropConnectionOnly) {
  std::promise<int> portPromise;
  auto portFuture = portPromise.get_future();
  CancellationSource drain;

  AdvisorServerConfig config;
  config.workers = 1;
  config.drain = drain.token();
  config.onListening = [&](int port) { portPromise.set_value(port); };

  AdvisorServerStats stats;
  std::thread server([&] { stats = runAdvisorServer(config); });
  ASSERT_EQ(portFuture.wait_for(30s), std::future_status::ready);
  const int port = portFuture.get();

  // Raw garbage (no frame magic): the server must close the connection.
  {
    auto fd = exec::connectTcp("127.0.0.1", port, 5'000);
    ASSERT_TRUE(fd.hasValue());
    const std::string junk = "definitely not a frame";
    ASSERT_TRUE(exec::sendAllBytes(*fd, junk, /*isSocket=*/true));
    char sink[64];
    ssize_t n;
    do {
      n = ::read(*fd, sink, sizeof sink);
    } while (n > 0 || (n < 0 && errno == EINTR));
    EXPECT_EQ(n, 0);  // orderly close from the server
    ::close(*fd);
  }

  // A valid frame whose payload fails message decode: dropped too.
  {
    TestClient client;
    ASSERT_TRUE(client.connect(port));
    ASSERT_TRUE(client.transport().sendFrame("junk payload"));
    std::string payload;
    EXPECT_EQ(client.transport().recvFrame(payload, 30'000),
              exec::FrameTransport::RecvStatus::kClosed);
  }

  // A well-formed message of the wrong kind (a response sent at the
  // server): a confused peer, dropped.
  {
    TestClient client;
    ASSERT_TRUE(client.connect(port));
    ServeMessage message;
    message.kind = ServeMessage::Kind::kResponse;
    message.response.requestId = 1;
    ASSERT_TRUE(client.transport().sendFrame(encodeServeMessage(message)));
    std::string payload;
    EXPECT_EQ(client.transport().recvFrame(payload, 30'000),
              exec::FrameTransport::RecvStatus::kClosed);
  }

  // The server survived all of that and still answers (with typed
  // bad-request sheds for semantic garbage).
  {
    TestClient client;
    ASSERT_TRUE(client.connect(port));

    AdvisorRequest unknownMachine = makeRequest(1);
    unknownMachine.machine = "no-such-machine";
    ASSERT_TRUE(client.send(unknownMachine));
    auto r1 = client.recvFor(1);
    ASSERT_TRUE(r1.has_value());
    EXPECT_EQ(r1->shedReason, ShedReason::kBadRequest);
    // The diagnostic lists the known presets.
    EXPECT_NE(r1->error.find("test-numa4"), std::string::npos);

    AdvisorRequest badRange = makeRequest(2);
    badRange.coreMax = 99;  // test-numa4 has 4 cores
    ASSERT_TRUE(client.send(badRange));
    auto r2 = client.recvFor(2);
    ASSERT_TRUE(r2.has_value());
    EXPECT_EQ(r2->shedReason, ShedReason::kBadRequest);

    AdvisorRequest badVersion = makeRequest(3);
    badVersion.protocolVersion = 999;
    ASSERT_TRUE(client.send(badVersion));
    auto r3 = client.recvFor(3);
    ASSERT_TRUE(r3.has_value());
    EXPECT_EQ(r3->shedReason, ShedReason::kBadRequest);

    AdvisorRequest badThreshold = makeRequest(4);
    badThreshold.efficiencyThreshold = 0.0;
    ASSERT_TRUE(client.send(badThreshold));
    auto r4 = client.recvFor(4);
    ASSERT_TRUE(r4.has_value());
    EXPECT_EQ(r4->shedReason, ShedReason::kBadRequest);
  }

  drain.requestStop();
  server.join();
  EXPECT_TRUE(stats.drained);
  EXPECT_EQ(stats.connectionsAccepted, 4u);
  EXPECT_EQ(stats.requestsDecoded, 4u);
  EXPECT_EQ(stats.shedBadRequest, 4u);
  EXPECT_EQ(stats.responsesSent, 4u);
  EXPECT_EQ(stats.tier0Served, 0u);
  EXPECT_EQ(stats.tier1Served, 0u);
}

/// Concurrent clients racing one cold key: single-flight holds under
/// real parallel connections, and every client gets a correct answer.
TEST(AdvisorServer, ConcurrentClientsCoalesceOntoOneFit) {
  std::promise<int> portPromise;
  auto portFuture = portPromise.get_future();
  CancellationSource drain;

  AdvisorServerConfig config;
  config.degrade.queueCapacity = 16;
  config.degrade.degradeQueueDepth = 0;
  config.workers = 2;
  config.drain = drain.token();
  config.onListening = [&](int port) { portPromise.set_value(port); };

  AdvisorServerStats stats;
  std::thread server([&] { stats = runAdvisorServer(config); });
  ASSERT_EQ(portFuture.wait_for(30s), std::future_status::ready);
  const int port = portFuture.get();

  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  // int, not bool: vector<bool> packs bits and concurrent writes to
  // neighbouring elements would race.
  std::vector<int> answered(kClients, 0);
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      TestClient client;
      if (!client.connect(port)) {
        return;
      }
      const auto id = static_cast<std::uint64_t>(i) + 1;
      if (!client.send(makeRequest(id, "EP", TierPreference::kTier0))) {
        return;
      }
      const auto response = client.recvFor(id);
      answered[static_cast<std::size_t>(i)] =
          response.has_value() && response->status == ResponseStatus::kOk &&
          response->tier == 0;
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  drain.requestStop();
  server.join();

  for (int i = 0; i < kClients; ++i) {
    EXPECT_TRUE(answered[static_cast<std::size_t>(i)]) << "client " << i;
  }
  EXPECT_TRUE(stats.drained);
  EXPECT_EQ(stats.connectionsAccepted, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.tier0Served, static_cast<std::uint64_t>(kClients));
  // However the arrivals interleaved, the cold key was fitted once: one
  // miss, and everyone else either coalesced onto it or hit the
  // published entry.
  EXPECT_EQ(stats.cache.misses, 1u);
  EXPECT_EQ(stats.cache.hits + stats.cache.coalesced,
            static_cast<std::uint64_t>(kClients - 1));
  EXPECT_EQ(stats.fitFailures, 0u);
}

}  // namespace
}  // namespace occm::serve
