// The advisor server's warm model cache: LRU order and eviction,
// hit/miss/coalesced/eviction accounting, and the single-flight
// claim/publish protocol that collapses a thundering herd on a cold key
// into one fit.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/contention_model.hpp"
#include "serve/model_cache.hpp"
#include "topology/presets.hpp"

namespace occm::serve {
namespace {

model::ContentionModel someModel() {
  model::MachineShape shape;
  shape.coresPerProcessor = 12;
  shape.processors = 2;
  shape.architecture = topology::MemoryArchitecture::kNuma;
  const model::MeasuredPoint measured[] = {
      {1, 4.10e11},
      {2, 4.35e11},
      {12, 9.80e11},
      {13, 9.15e11},
  };
  return model::ContentionModel::fit(shape, measured);
}

ModelKey key(const std::string& program) {
  return ModelKey{program, "S", "test-numa4"};
}

TEST(ModelCache, MissThenPublishThenHit) {
  ModelCache cache(2);
  EXPECT_FALSE(cache.lookup(key("EP")).has_value());
  EXPECT_TRUE(cache.beginFit(key("EP")));
  cache.completeFit(key("EP"), /*success=*/true, someModel());
  const auto hit = cache.lookup(key("EP"));
  ASSERT_TRUE(hit.has_value());
  EXPECT_GT(hit->measuredC1(), 0.0);

  const ModelCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.coalesced, 0u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ModelCache, LookupWhileFitInFlightIsNeitherHitNorMiss) {
  // The herd parking on an in-flight fit is not a miss storm: only the
  // first cold lookup counts a miss, later arrivals count coalesced.
  ModelCache cache(2);
  (void)cache.lookup(key("EP"));        // miss 1
  ASSERT_TRUE(cache.beginFit(key("EP")));
  (void)cache.lookup(key("EP"));        // in flight: no stat
  (void)cache.lookup(key("EP"));        // in flight: no stat
  EXPECT_FALSE(cache.beginFit(key("EP")));  // coalesced 1
  EXPECT_FALSE(cache.beginFit(key("EP")));  // coalesced 2

  const ModelCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.coalesced, 2u);
}

TEST(ModelCache, LruEvictsLeastRecentlyUsed) {
  ModelCache cache(2);
  const auto insert = [&](const std::string& program) {
    ASSERT_TRUE(cache.beginFit(key(program)));
    cache.completeFit(key(program), true, someModel());
  };
  insert("EP");
  insert("CG");
  // Touch EP so CG becomes the LRU tail, then insert a third key.
  ASSERT_TRUE(cache.lookup(key("EP")).has_value());
  insert("FT");

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.lookup(key("EP")).has_value());
  EXPECT_TRUE(cache.lookup(key("FT")).has_value());
  EXPECT_FALSE(cache.lookup(key("CG")).has_value());  // evicted
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ModelCache, FailedFitReleasesClaimForRetry) {
  // A transient measurement failure must not poison the key forever: the
  // claim clears, nothing is cached, and the next request re-fits.
  ModelCache cache(2);
  ASSERT_TRUE(cache.beginFit(key("EP")));
  cache.completeFit(key("EP"), /*success=*/false, someModel());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(key("EP")).has_value());  // miss again
  EXPECT_TRUE(cache.beginFit(key("EP")));             // retry owns the fit
  cache.completeFit(key("EP"), true, someModel());
  EXPECT_TRUE(cache.lookup(key("EP")).has_value());
}

TEST(ModelCache, DistinctKeysDoNotCollide) {
  ModelCache cache(4);
  // Same program, different class/machine: distinct identities.
  const ModelKey a{"EP", "S", "test-numa4"};
  const ModelKey b{"EP", "A", "test-numa4"};
  const ModelKey c{"EP", "S", "test-uma4"};
  ASSERT_TRUE(cache.beginFit(a));
  cache.completeFit(a, true, someModel());
  EXPECT_TRUE(cache.lookup(a).has_value());
  EXPECT_FALSE(cache.lookup(b).has_value());
  EXPECT_FALSE(cache.lookup(c).has_value());
}

TEST(ModelCache, ConcurrentHerdFitsOnce) {
  // N threads race lookup -> beginFit on one cold key: exactly one wins
  // the claim, everyone else coalesces. Run under TSan this also proves
  // the lock discipline.
  ModelCache cache(2);
  constexpr int kThreads = 8;
  std::atomic<int> owners{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&cache, &owners] {
      if (!cache.lookup(key("EP")).has_value() && cache.beginFit(key("EP"))) {
        owners.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(owners.load(), 1);
  const ModelCacheStats stats = cache.stats();
  // Several threads may look up before the winner claims the fit, so the
  // miss count is racy within [1, kThreads]; the single claim is not.
  EXPECT_GE(stats.misses, 1u);
  EXPECT_LE(stats.misses, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(stats.coalesced, static_cast<std::uint64_t>(kThreads - 1));
  cache.completeFit(key("EP"), true, someModel());
  EXPECT_TRUE(cache.lookup(key("EP")).has_value());
}

}  // namespace
}  // namespace occm::serve
