#include "sched/affinity.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "topology/presets.hpp"

namespace occm::sched {
namespace {

TEST(PinRoundRobin, OneThreadPerCoreWhenCountsMatch) {
  topology::TopologyMap topo(topology::testNuma4());
  const Pinning pin = pinRoundRobin(topo, 4, 4);
  EXPECT_EQ(pin.maxThreadsPerCore(), 1);
  for (ThreadId t = 0; t < 4; ++t) {
    const CoreId core = pin.pinnedCore[static_cast<std::size_t>(t)];
    EXPECT_EQ(pin.threadsOn[static_cast<std::size_t>(core)].size(), 1u);
  }
}

TEST(PinRoundRobin, OversubscriptionDistributesEvenly) {
  topology::TopologyMap topo(topology::intelNuma24());
  const Pinning pin = pinRoundRobin(topo, 24, 6);
  EXPECT_EQ(pin.maxThreadsPerCore(), 4);
  int populated = 0;
  for (const auto& list : pin.threadsOn) {
    if (!list.empty()) {
      EXPECT_EQ(list.size(), 4u);
      ++populated;
    }
  }
  EXPECT_EQ(populated, 6);
}

TEST(PinRoundRobin, UsesFillProcessorFirstOrder) {
  topology::TopologyMap topo(topology::intelNuma24());
  const Pinning pin = pinRoundRobin(topo, 24, 12);
  // With 12 active cores on this machine all threads sit on socket 0.
  for (ThreadId t = 0; t < 24; ++t) {
    const CoreId core = pin.pinnedCore[static_cast<std::size_t>(t)];
    EXPECT_EQ(topo.location(core).socket, 0);
  }
}

TEST(PinRoundRobin, FewerThreadsThanCoresLeavesCoresIdle) {
  topology::TopologyMap topo(topology::testNuma4());
  const Pinning pin = pinRoundRobin(topo, 2, 4);
  int populated = 0;
  for (const auto& list : pin.threadsOn) {
    populated += list.empty() ? 0 : 1;
  }
  EXPECT_EQ(populated, 2);
}

TEST(PinRoundRobin, InvalidArgumentsThrow) {
  topology::TopologyMap topo(topology::testNuma4());
  EXPECT_THROW((void)pinRoundRobin(topo, 0, 1), ContractViolation);
  EXPECT_THROW((void)pinRoundRobin(topo, 1, 0), ContractViolation);
  EXPECT_THROW((void)pinRoundRobin(topo, 1, 5), ContractViolation);
}

TEST(RunQueue, RotatesThroughThreads) {
  RunQueue q({10, 11, 12});
  q.start();
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.current(), 10);
  EXPECT_TRUE(q.rotate());
  EXPECT_EQ(q.current(), 11);
  EXPECT_TRUE(q.rotate());
  EXPECT_EQ(q.current(), 12);
  EXPECT_TRUE(q.rotate());
  EXPECT_EQ(q.current(), 10);
}

TEST(RunQueue, SingleThreadNeverSwitches) {
  RunQueue q({5});
  q.start();
  EXPECT_FALSE(q.rotate());
  EXPECT_EQ(q.current(), 5);
}

TEST(RunQueue, FinishSkipsThread) {
  RunQueue q({1, 2, 3});
  q.start();
  q.finish(2);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.current(), 1);
  EXPECT_TRUE(q.rotate());
  EXPECT_EQ(q.current(), 3);
  EXPECT_TRUE(q.rotate());
  EXPECT_EQ(q.current(), 1);
}

TEST(RunQueue, FinishCurrentAdvances) {
  RunQueue q({1, 2, 3});
  q.start();
  q.finish(1);
  EXPECT_EQ(q.current(), 2);
}

TEST(RunQueue, FinishAllEmptiesQueue) {
  RunQueue q({1, 2});
  q.start();
  q.finish(1);
  q.finish(2);
  EXPECT_TRUE(q.empty());
  EXPECT_THROW((void)q.current(), ContractViolation);
  EXPECT_THROW((void)q.rotate(), ContractViolation);
}

TEST(RunQueue, DoubleFinishThrows) {
  RunQueue q({1, 2});
  q.start();
  q.finish(1);
  EXPECT_THROW((void)q.finish(1), ContractViolation);
  EXPECT_THROW((void)q.finish(99), ContractViolation);
}

}  // namespace
}  // namespace occm::sched
