#include "trace/stream_analysis.hpp"

#include <gtest/gtest.h>

#include "trace/address_space.hpp"
#include "workloads/phase_stream.hpp"

namespace occm::trace {
namespace {

using workloads::Phase;
using workloads::PhaseStream;
using workloads::seqLines;

TEST(StreamAnalysis, CountsSequentialWalk) {
  PhaseStream stream({seqLines(0, 64 * 100, 5)});
  const StreamStats stats = analyzeStream(stream, 1'000'000);
  EXPECT_EQ(stats.refs, 100u);
  EXPECT_EQ(stats.distinctLines, 100u);
  EXPECT_EQ(stats.workingSetBytes, 6400u);
  EXPECT_EQ(stats.writes, 0u);
  EXPECT_EQ(stats.sharedFraction(), 1.0);  // address 0 is shared space
  // The dominant stride is +64.
  EXPECT_GT(stats.strides.at(64), 90u);
}

TEST(StreamAnalysis, WriteFractionTracked) {
  PhaseStream stream({seqLines(0, 64 * 10, 1, /*write=*/true)});
  const StreamStats stats = analyzeStream(stream, 100);
  EXPECT_EQ(stats.writeFraction(), 1.0);
}

TEST(StreamAnalysis, RespectsMaxRefs) {
  PhaseStream stream({seqLines(0, 64 * 1000, 1)});
  const StreamStats stats = analyzeStream(stream, 10);
  EXPECT_EQ(stats.refs, 10u);
}

TEST(StreamAnalysis, GatherTouchesTable) {
  Phase gather;
  gather.kind = Phase::Kind::kGather;
  gather.base = 0;
  gather.tableBytes = 64 * 64;
  gather.elementBytes = 8;
  gather.count = 5000;
  gather.seed = 9;
  PhaseStream stream({gather});
  const StreamStats stats = analyzeStream(stream, 1'000'000);
  EXPECT_EQ(stats.refs, 5000u);
  // Nearly every line of a 64-line table is hit by 5000 uniform draws.
  EXPECT_GE(stats.distinctLines, 60u);
  EXPECT_LE(stats.distinctLines, 64u);
}

TEST(StreamAnalysis, WorkPerRefAveragesJitter) {
  PhaseStream stream({seqLines(0, 64 * 2000, 100)});
  const StreamStats stats = analyzeStream(stream, 1'000'000);
  // +/-25 % deterministic jitter keeps the mean near the nominal value.
  EXPECT_NEAR(stats.workPerRef(), 100.0, 5.0);
}

TEST(StreamAnalysis, PrivateAddressesNotShared) {
  PhaseStream stream({seqLines(AddressSpace::kPrivateBase, 64 * 10, 1)});
  const StreamStats stats = analyzeStream(stream, 100);
  EXPECT_EQ(stats.sharedFraction(), 0.0);
}

}  // namespace
}  // namespace occm::trace
