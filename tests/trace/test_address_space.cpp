#include "trace/address_space.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace occm::trace {
namespace {

TEST(AddressSpace, SharedAllocationsAreDisjoint) {
  AddressSpace space;
  const Addr a = space.allocShared(100);
  const Addr b = space.allocShared(200);
  EXPECT_GE(b, a + 100);
  EXPECT_TRUE(AddressSpace::isShared(a));
  EXPECT_TRUE(AddressSpace::isShared(b + 199));
}

TEST(AddressSpace, SharedRespectsAlignment) {
  AddressSpace space;
  (void)space.allocShared(3);
  const Addr b = space.allocShared(64, 128);
  EXPECT_EQ(b % 128, 0u);
}

TEST(AddressSpace, PrivateWindowsPerThread) {
  AddressSpace space;
  const Addr t0 = space.allocPrivate(0, 4096);
  const Addr t1 = space.allocPrivate(1, 4096);
  EXPECT_FALSE(AddressSpace::isShared(t0));
  EXPECT_FALSE(AddressSpace::isShared(t1));
  EXPECT_EQ(AddressSpace::privateOwner(t0), 0);
  EXPECT_EQ(AddressSpace::privateOwner(t1), 1);
  EXPECT_EQ(AddressSpace::privateOwner(t0 + 4095), 0);
}

TEST(AddressSpace, PrivateAllocationsWithinThreadAreDisjoint) {
  AddressSpace space;
  const Addr a = space.allocPrivate(3, 100);
  const Addr b = space.allocPrivate(3, 100);
  EXPECT_GE(b, a + 100);
  EXPECT_EQ(AddressSpace::privateOwner(b), 3);
}

TEST(AddressSpace, SharedBytesTracksUsage) {
  AddressSpace space;
  (void)space.allocShared(64);
  (void)space.allocShared(64);
  EXPECT_EQ(space.sharedBytes(), 128u);
}

TEST(AddressSpace, PrivateOwnerOfSharedThrows) {
  EXPECT_THROW((void)AddressSpace::privateOwner(0), ContractViolation);
}

TEST(AddressSpace, BadAlignmentThrows) {
  AddressSpace space;
  EXPECT_THROW((void)space.allocShared(64, 3), ContractViolation);
}

TEST(AddressSpace, NegativeThreadThrows) {
  AddressSpace space;
  EXPECT_THROW((void)space.allocPrivate(-1, 64), ContractViolation);
}

TEST(AddressSpace, BoundaryIsExact) {
  EXPECT_TRUE(AddressSpace::isShared(AddressSpace::kPrivateBase - 1));
  EXPECT_FALSE(AddressSpace::isShared(AddressSpace::kPrivateBase));
}

}  // namespace
}  // namespace occm::trace
