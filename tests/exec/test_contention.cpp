// Two-thread contention stress over the padded parallel-sweep telemetry
// paths (DESIGN.md §14): ThreadPool worker slots and the profiler's
// Phase/Counter objects. Every assertion is an *exact* count — relaxed
// atomics may be stale mid-run but must never lose an increment — and the
// suite name matches the tsan CI leg's filter (ThreadPool…) so the same
// interleavings run under the race detector.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "exec/thread_pool.hpp"
#include "obs/profiler.hpp"
#include "obs/run_trace.hpp"

namespace occm {
namespace {

TEST(ThreadPoolContention, TelemetryObjectsAreCacheLinePadded) {
  // The layout contract itself: two adjacently-registered counters (or
  // phases) must not write-share a cache line.
  static_assert(alignof(obs::Phase) >= kCacheLineBytes);
  static_assert(alignof(obs::Counter) >= kCacheLineBytes);
  static_assert(sizeof(obs::Phase) % kCacheLineBytes == 0);
  static_assert(sizeof(obs::Counter) % kCacheLineBytes == 0);

  obs::Profiler profiler;
  obs::Counter& a = profiler.counter("pad.a");
  obs::Counter& b = profiler.counter("pad.b");
  const auto delta = reinterpret_cast<std::uintptr_t>(&b) -
                     reinterpret_cast<std::uintptr_t>(&a);
  EXPECT_GE(delta, kCacheLineBytes);
}

TEST(ThreadPoolContention, SharedCounterIsExactUnderTwoThreads) {
  constexpr std::uint64_t kPerThread = 400'000;
  obs::Profiler profiler;
  obs::Counter& shared = profiler.counter("stress.shared", "events");
  obs::Counter& mineA = profiler.counter("stress.a", "events");
  obs::Counter& mineB = profiler.counter("stress.b", "events");

  std::atomic<bool> go{false};
  auto hammer = [&go, &shared](obs::Counter& own) {
    while (!go.load(std::memory_order_acquire)) {
    }
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      shared.add(1);
      own.add(2);
    }
  };
  std::thread t1(hammer, std::ref(mineA));
  std::thread t2(hammer, std::ref(mineB));
  go.store(true, std::memory_order_release);
  t1.join();
  t2.join();

  EXPECT_EQ(shared.value(), 2 * kPerThread);
  EXPECT_EQ(mineA.value(), 2 * kPerThread);
  EXPECT_EQ(mineB.value(), 2 * kPerThread);
}

TEST(ThreadPoolContention, PhaseRecordsAreExactUnderTwoThreads) {
  constexpr std::uint64_t kPerThread = 100'000;
  obs::Profiler profiler;
  obs::Phase& phase = profiler.phase("stress.phase");

  std::atomic<bool> go{false};
  auto hammer = [&go, &phase] {
    while (!go.load(std::memory_order_acquire)) {
    }
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      phase.record(/*wallNs=*/3, /*cpuNs=*/1);
    }
  };
  std::thread t1(hammer);
  std::thread t2(hammer);
  go.store(true, std::memory_order_release);
  t1.join();
  t2.join();

  const obs::PhaseSnapshot snap = phase.snapshot();
  EXPECT_EQ(snap.calls, 2 * kPerThread);
  EXPECT_EQ(snap.wallNs, 2 * kPerThread * 3);
  EXPECT_EQ(snap.cpuNs, 2 * kPerThread * 1);
  EXPECT_EQ(snap.maxWallNs, 3u);
}

TEST(ThreadPoolContention, WorkerSlotCountsAreExactAcrossTwoWorkers) {
  // Two workers each bump their own (padded) telemetry slot per task
  // while the main thread polls stats() concurrently. Total task counts
  // must come out exact; the concurrent reads must be race-free (tsan).
  constexpr int kTasks = 2'000;
  exec::ThreadPool pool({.workers = 2, .queueCapacity = 64});
  std::atomic<std::uint64_t> ran{0};
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.submit(
        [&ran] { ran.fetch_add(1, std::memory_order_relaxed); }));
    if (i % 256 == 0) {
      // Concurrent reader: totals are allowed to lag, never to exceed.
      EXPECT_LE(pool.stats().totalTasks(), static_cast<std::uint64_t>(i) + 1);
    }
  }
  for (auto& f : futures) {
    f.get();
  }
  EXPECT_EQ(ran.load(), static_cast<std::uint64_t>(kTasks));

  const exec::ThreadPoolStats stats = pool.stats();
  if constexpr (obs::kCompiledIn) {
    EXPECT_EQ(stats.totalTasks(), static_cast<std::uint64_t>(kTasks));
    ASSERT_EQ(stats.workers.size(), 2u);
    // Both workers must have participated under sustained load — the
    // queue kept refilling, so a worker only idles if pickup is broken.
    EXPECT_EQ(stats.workers[0].tasks + stats.workers[1].tasks,
              static_cast<std::uint64_t>(kTasks));
  } else {
    EXPECT_EQ(stats.totalTasks(), 0u);  // telemetry compiled out
  }
}

}  // namespace
}  // namespace occm
