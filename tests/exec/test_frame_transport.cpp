// FrameReassembler and FdFrameTransport: the stream generalization of the
// isolation pipe's CRC-32 frame codec that the distributed fleet speaks.

#include "exec/frame_transport.hpp"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstddef>
#include <string>
#include <thread>

#include "exec/ipc.hpp"

namespace occm::exec {
namespace {

TEST(FrameReassembler, ExtractsOneFrameFedWhole) {
  FrameReassembler r;
  ASSERT_TRUE(r.feed(encodeFrame("hello")));
  const auto payload = r.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "hello");
  EXPECT_FALSE(r.next().has_value());
  EXPECT_EQ(r.framesExtracted(), 1u);
  EXPECT_EQ(r.buffered(), 0u);
}

TEST(FrameReassembler, ReassemblesAcrossArbitraryChunking) {
  const std::string stream =
      encodeFrame("first") + encodeFrame("") + encodeFrame("third frame");
  // Every chunk size from pathological 1-byte dribble to one-shot.
  for (std::size_t chunk = 1; chunk <= stream.size(); ++chunk) {
    FrameReassembler r;
    for (std::size_t at = 0; at < stream.size(); at += chunk) {
      ASSERT_TRUE(r.feed(stream.substr(at, chunk)));
    }
    EXPECT_EQ(r.next().value_or("<none>"), "first");
    EXPECT_EQ(r.next().value_or("<none>"), "");
    EXPECT_EQ(r.next().value_or("<none>"), "third frame");
    EXPECT_FALSE(r.next().has_value());
    EXPECT_FALSE(r.corrupt());
  }
}

TEST(FrameReassembler, TruncatedFrameStaysPendingNotCorrupt) {
  const std::string frame = encodeFrame("partial");
  FrameReassembler r;
  ASSERT_TRUE(r.feed(std::string_view(frame).substr(0, frame.size() - 1)));
  EXPECT_FALSE(r.next().has_value());
  EXPECT_FALSE(r.corrupt());
  ASSERT_TRUE(r.feed(std::string_view(frame).substr(frame.size() - 1)));
  EXPECT_EQ(r.next().value_or("<none>"), "partial");
}

TEST(FrameReassembler, BadMagicPoisonsPermanently) {
  std::string frame = encodeFrame("x");
  frame[0] ^= 0x40;
  FrameReassembler r;
  EXPECT_FALSE(r.feed(frame));
  EXPECT_TRUE(r.corrupt());
  EXPECT_NE(r.error().message().find("magic"), std::string::npos);
  // Poisoned for good: a clean frame afterwards is never resynchronized.
  EXPECT_FALSE(r.feed(encodeFrame("clean")));
  EXPECT_FALSE(r.next().has_value());
}

TEST(FrameReassembler, PayloadBitFlipFailsCrc) {
  std::string frame = encodeFrame("crc guarded payload");
  frame[kFrameHeaderSize + 3] ^= 0x01;
  FrameReassembler r;
  EXPECT_FALSE(r.feed(frame));
  EXPECT_TRUE(r.corrupt());
  EXPECT_NE(r.error().message().find("crc"), std::string::npos);
}

TEST(FrameReassembler, SecondFrameCorruptionNamesWholeStreamOffset) {
  const std::string good = encodeFrame("good");
  std::string bad = encodeFrame("bad");
  bad[0] ^= 0x40;
  FrameReassembler r;
  EXPECT_FALSE(r.feed(good + bad));
  EXPECT_EQ(r.next().value_or("<none>"), "good");  // extracted before poison
  EXPECT_TRUE(r.corrupt());
  // The error names the bad magic's offset in the stream, not the frame.
  EXPECT_EQ(r.error().byteOffset, good.size());
}

TEST(FrameReassembler, OversizedLengthRejectedAtTheHeader) {
  FrameReassembler r(/*maxPayload=*/64);
  const std::string frame = encodeFrame(std::string(65, 'x'));
  // Deliver only the header: the declared length alone must poison the
  // stream — validation never waits for (or buffers) the payload.
  EXPECT_FALSE(r.feed(std::string_view(frame).substr(0, kFrameHeaderSize)));
  EXPECT_TRUE(r.corrupt());
  EXPECT_NE(r.error().message().find("exceeds"), std::string::npos);
  EXPECT_EQ(r.buffered(), kFrameHeaderSize);
}

TEST(FrameTransport, SocketpairRoundTripsFrames) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  auto a = makeSocketTransport(fds[0]);
  auto b = makeSocketTransport(fds[1]);
  ASSERT_TRUE(a->sendFrame("ping over a socket"));
  ASSERT_TRUE(a->sendFrame("second"));
  std::string payload;
  ASSERT_EQ(b->recvFrame(payload, 2'000), FrameTransport::RecvStatus::kFrame);
  EXPECT_EQ(payload, "ping over a socket");
  ASSERT_EQ(b->recvFrame(payload, 2'000), FrameTransport::RecvStatus::kFrame);
  EXPECT_EQ(payload, "second");
  // And the other direction (duplex).
  ASSERT_TRUE(b->sendFrame("pong"));
  ASSERT_EQ(a->recvFrame(payload, 2'000), FrameTransport::RecvStatus::kFrame);
  EXPECT_EQ(payload, "pong");
}

TEST(FrameTransport, RecvTimesOutWithoutData) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  auto a = makeSocketTransport(fds[0]);
  auto b = makeSocketTransport(fds[1]);
  std::string payload;
  EXPECT_EQ(a->recvFrame(payload, 10), FrameTransport::RecvStatus::kTimeout);
  (void)b;
}

TEST(FrameTransport, PeerCloseReportsClosed) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  auto a = makeSocketTransport(fds[0]);
  ::close(fds[1]);
  std::string payload;
  EXPECT_EQ(a->recvFrame(payload, 2'000), FrameTransport::RecvStatus::kClosed);
}

TEST(FrameTransport, CorruptStreamReportsCorrupt) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  auto a = makeSocketTransport(fds[0]);
  std::string garbage = encodeFrame("x");
  garbage[0] = static_cast<char>(garbage[0] ^ 0x40);
  ASSERT_EQ(::send(fds[1], garbage.data(), garbage.size(), 0),
            static_cast<ssize_t>(garbage.size()));
  std::string payload;
  EXPECT_EQ(a->recvFrame(payload, 2'000),
            FrameTransport::RecvStatus::kCorrupt);
  EXPECT_FALSE(a->lastError().empty());
  ::close(fds[1]);
}

TEST(FrameTransport, PipePairRoundTrips) {
  int toChild[2];
  int toParent[2];
  ASSERT_EQ(::pipe(toChild), 0);
  ASSERT_EQ(::pipe(toParent), 0);
  auto parent = makePipeTransport(toParent[0], toChild[1]);
  auto child = makePipeTransport(toChild[0], toParent[1]);
  ASSERT_TRUE(parent->sendFrame("down the pipe"));
  std::string payload;
  ASSERT_EQ(child->recvFrame(payload, 2'000),
            FrameTransport::RecvStatus::kFrame);
  EXPECT_EQ(payload, "down the pipe");
  ASSERT_TRUE(child->sendFrame("and back"));
  ASSERT_EQ(parent->recvFrame(payload, 2'000),
            FrameTransport::RecvStatus::kFrame);
  EXPECT_EQ(payload, "and back");
}

TEST(FrameTransport, TcpLoopbackConnectAndExchange) {
  int boundPort = 0;
  auto listener = listenTcp("127.0.0.1", 0, &boundPort);
  ASSERT_TRUE(listener.hasValue()) << listener.error();
  ASSERT_GT(boundPort, 0);

  std::thread server([&] {
    const int fd = ::accept(*listener, nullptr, nullptr);
    ASSERT_GE(fd, 0);
    auto transport = makeSocketTransport(fd);
    std::string payload;
    ASSERT_EQ(transport->recvFrame(payload, 5'000),
              FrameTransport::RecvStatus::kFrame);
    EXPECT_EQ(payload, "hello coordinator");
    ASSERT_TRUE(transport->sendFrame("hello worker"));
  });

  auto fd = connectTcp("127.0.0.1", boundPort, 5'000);
  ASSERT_TRUE(fd.hasValue()) << fd.error();
  auto transport = makeSocketTransport(*fd);
  ASSERT_TRUE(transport->sendFrame("hello coordinator"));
  std::string payload;
  ASSERT_EQ(transport->recvFrame(payload, 5'000),
            FrameTransport::RecvStatus::kFrame);
  EXPECT_EQ(payload, "hello worker");
  server.join();
  ::close(*listener);
}

TEST(FrameTransport, ConnectToClosedPortFails) {
  // Bind-then-close to find a port that is very likely unused.
  int boundPort = 0;
  auto listener = listenTcp("127.0.0.1", 0, &boundPort);
  ASSERT_TRUE(listener.hasValue());
  ::close(*listener);
  auto fd = connectTcp("127.0.0.1", boundPort, 500);
  EXPECT_FALSE(fd.hasValue());
}

// --- Signal-delivery and partial-write hardening ------------------------
// sendAllBytes (and therefore sendFrame) must survive the hazards of
// signal-heavy processes: EINTR surfacing mid-write, short writes into a
// tiny socket buffer, and EAGAIN stalls on non-blocking fds. The handler
// below is installed WITHOUT SA_RESTART, so the kernel genuinely
// interrupts blocked writes instead of transparently restarting them.

void noopSignalHandler(int) {}

struct ScopedSigusr1Handler {
  struct sigaction previous {};
  ScopedSigusr1Handler() {
    struct sigaction action {};
    action.sa_handler = noopSignalHandler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;  // no SA_RESTART: EINTR must surface
    sigaction(SIGUSR1, &action, &previous);
  }
  ~ScopedSigusr1Handler() { sigaction(SIGUSR1, &previous, nullptr); }
};

void shrinkSendBuffer(int fd) {
  const int size = 4 * 1024;  // the kernel clamps to its floor; still tiny
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &size, sizeof size), 0);
}

TEST(FrameTransport, SendFrameSurvivesSignalStormMidTransfer) {
  ScopedSigusr1Handler handler;
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  shrinkSendBuffer(fds[0]);

  // Big enough that the sender blocks on the shrunken buffer many times,
  // giving the storm a wide window to interrupt writes.
  std::string payload(2 * 1024 * 1024, '\0');
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i * 131 + 17);
  }

  auto sender = makeSocketTransport(fds[0]);
  std::atomic<bool> sendOk{false};
  std::atomic<bool> senderDone{false};
  std::thread sendThread([&] {
    sendOk = sender->sendFrame(payload);
    senderDone = true;
  });
  // Storm the sender with signals for the whole duration of the send.
  std::thread storm([&] {
    while (!senderDone.load()) {
      pthread_kill(sendThread.native_handle(), SIGUSR1);
      std::this_thread::yield();
    }
  });

  auto receiver = makeSocketTransport(fds[1]);
  std::string received;
  ASSERT_EQ(receiver->recvFrame(received, 30'000),
            FrameTransport::RecvStatus::kFrame);
  sendThread.join();
  storm.join();
  EXPECT_TRUE(sendOk.load());
  // Byte-exact through every EINTR and short write (CRC re-checked by the
  // reassembler, compare anyway for a readable failure).
  EXPECT_EQ(received, payload);
}

TEST(FrameTransport, SendAllBytesDrainsNonBlockingFdThroughEagain) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  shrinkSendBuffer(fds[0]);
  const int flags = ::fcntl(fds[0], F_GETFL, 0);
  ASSERT_EQ(::fcntl(fds[0], F_SETFL, flags | O_NONBLOCK), 0);

  std::string payload(1024 * 1024, 'q');
  std::atomic<bool> sendOk{false};
  std::thread sendThread(
      [&] { sendOk = sendAllBytes(fds[0], payload, /*isSocket=*/true); });

  // Drain everything on the other end; the writer must ride out every
  // EAGAIN via its POLLOUT wait and finish the full count.
  std::string received;
  char chunk[16 * 1024];
  while (received.size() < payload.size()) {
    const ssize_t n = ::read(fds[1], chunk, sizeof chunk);
    ASSERT_GT(n, 0);
    received.append(chunk, static_cast<std::size_t>(n));
  }
  sendThread.join();
  EXPECT_TRUE(sendOk.load());
  EXPECT_EQ(received, payload);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(FrameTransport, SendAllBytesGivesUpOnNeverDrainedPeer) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  shrinkSendBuffer(fds[0]);
  const int flags = ::fcntl(fds[0], F_GETFL, 0);
  ASSERT_EQ(::fcntl(fds[0], F_SETFL, flags | O_NONBLOCK), 0);

  // Nobody ever reads fds[1]: the buffer fills, POLLOUT never comes, and
  // the bounded unwritable window turns the stall into a clean failure
  // instead of a hung server loop.
  const std::string payload(4 * 1024 * 1024, 'z');
  EXPECT_FALSE(
      sendAllBytes(fds[0], payload, /*isSocket=*/true,
                   /*unwritableTimeoutMs=*/50));
  ::close(fds[0]);
  ::close(fds[1]);
}

}  // namespace
}  // namespace occm::exec
