// Crash-containment tests for the process isolation runner: the IPC frame
// codec round-trips a fully populated RunProfile bit-exactly and rejects
// corrupt bytes with typed errors, and runInChild decodes every way a
// child can end — clean profile, exception, signal death (SIGKILL /
// SIGSEGV / abort), RLIMIT_AS exhaustion, supervisor kill — into a
// structured ChildOutcome without ever crashing the parent.
//
// Sanitizers change crash signatures (asan intercepts SIGSEGV and turns
// it into a nonzero exit; RLIMIT_AS fights the shadow mappings), so
// exact-signal assertions relax and the OOM test skips under them.

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.hpp"
#include "exec/ipc.hpp"
#include "exec/process_runner.hpp"
#include "fault/crash_injection.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define OCCM_UNDER_SANITIZER 1
#endif
#if !defined(OCCM_UNDER_SANITIZER) && defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define OCCM_UNDER_SANITIZER 1
#endif
#endif
#ifndef OCCM_UNDER_SANITIZER
#define OCCM_UNDER_SANITIZER 0
#endif

namespace occm::exec {
namespace {

/// A profile with every serialized field populated with a distinctive
/// value, so a codec that drops or reorders a field cannot round-trip.
perf::RunProfile sampleProfile() {
  perf::RunProfile p;
  p.program = "CG.S";
  p.machine = "test-numa-4 \"quoted\"\n";
  p.threads = 4;
  p.activeCores = 3;
  p.counters = {101, 17, 4242, 99};
  p.perCore.push_back({11, 3, 40, 5});
  p.perCore.push_back({0, 0, 0, 0});
  p.perCore.push_back({90, 14, 4202, 94});
  p.coherenceMisses = 7;
  p.writebacks = 13;
  p.contextSwitches = 2;
  p.makespan = 98;
  mem::ControllerStats stats;
  stats.requests = 1;
  stats.writebacks = 2;
  stats.remoteRequests = 3;
  stats.rowHits = 4;
  stats.rowMisses = 5;
  stats.busyCycles = 6;
  stats.totalWait = 7;
  stats.totalService = 8;
  stats.reroutedAway = 9;
  stats.absorbed = 10;
  stats.retryAttempts = 11;
  stats.eccRetries = 12;
  stats.background = 13;
  p.controllerStats.push_back(stats);
  p.channelsPerController = 2;
  p.missWindows = {5, 0, 12};
  p.samplerWindowCycles = 13'350;
  p.faultEpochs.push_back({"controller-outage", 1, 20'000, 60'000, 1.0});
  p.faultEpochs.push_back({"ecc-spike", 0, 70'000, 90'000, 0.05});
  p.reroutedRequests = 21;
  p.faultRetries = 22;
  p.backgroundRequests = 23;
  p.throttledCycles = 24;
  return p;
}

void expectCountersEq(const perf::CounterSet& a, const perf::CounterSet& b) {
  EXPECT_EQ(a.totalCycles, b.totalCycles);
  EXPECT_EQ(a.stallCycles, b.stallCycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.llcMisses, b.llcMisses);
}

void expectProfilesEq(const perf::RunProfile& a, const perf::RunProfile& b) {
  EXPECT_EQ(a.program, b.program);
  EXPECT_EQ(a.machine, b.machine);
  EXPECT_EQ(a.threads, b.threads);
  EXPECT_EQ(a.activeCores, b.activeCores);
  expectCountersEq(a.counters, b.counters);
  ASSERT_EQ(a.perCore.size(), b.perCore.size());
  for (std::size_t i = 0; i < a.perCore.size(); ++i) {
    expectCountersEq(a.perCore[i], b.perCore[i]);
  }
  EXPECT_EQ(a.coherenceMisses, b.coherenceMisses);
  EXPECT_EQ(a.writebacks, b.writebacks);
  EXPECT_EQ(a.contextSwitches, b.contextSwitches);
  EXPECT_EQ(a.makespan, b.makespan);
  ASSERT_EQ(a.controllerStats.size(), b.controllerStats.size());
  for (std::size_t i = 0; i < a.controllerStats.size(); ++i) {
    const mem::ControllerStats& x = a.controllerStats[i];
    const mem::ControllerStats& y = b.controllerStats[i];
    EXPECT_EQ(x.requests, y.requests);
    EXPECT_EQ(x.writebacks, y.writebacks);
    EXPECT_EQ(x.remoteRequests, y.remoteRequests);
    EXPECT_EQ(x.rowHits, y.rowHits);
    EXPECT_EQ(x.rowMisses, y.rowMisses);
    EXPECT_EQ(x.busyCycles, y.busyCycles);
    EXPECT_EQ(x.totalWait, y.totalWait);
    EXPECT_EQ(x.totalService, y.totalService);
    EXPECT_EQ(x.reroutedAway, y.reroutedAway);
    EXPECT_EQ(x.absorbed, y.absorbed);
    EXPECT_EQ(x.retryAttempts, y.retryAttempts);
    EXPECT_EQ(x.eccRetries, y.eccRetries);
    EXPECT_EQ(x.background, y.background);
  }
  EXPECT_EQ(a.channelsPerController, b.channelsPerController);
  EXPECT_EQ(a.missWindows, b.missWindows);
  EXPECT_EQ(a.samplerWindowCycles, b.samplerWindowCycles);
  ASSERT_EQ(a.faultEpochs.size(), b.faultEpochs.size());
  for (std::size_t i = 0; i < a.faultEpochs.size(); ++i) {
    EXPECT_EQ(a.faultEpochs[i].kind, b.faultEpochs[i].kind);
    EXPECT_EQ(a.faultEpochs[i].target, b.faultEpochs[i].target);
    EXPECT_EQ(a.faultEpochs[i].start, b.faultEpochs[i].start);
    EXPECT_EQ(a.faultEpochs[i].end, b.faultEpochs[i].end);
    EXPECT_EQ(a.faultEpochs[i].magnitude, b.faultEpochs[i].magnitude);
  }
  EXPECT_EQ(a.reroutedRequests, b.reroutedRequests);
  EXPECT_EQ(a.faultRetries, b.faultRetries);
  EXPECT_EQ(a.backgroundRequests, b.backgroundRequests);
  EXPECT_EQ(a.throttledCycles, b.throttledCycles);
}

TEST(IpcCodec, FrameRoundTripsArbitraryPayloads) {
  for (const std::string& payload :
       {std::string(), std::string("x"), std::string(1000, '\0'),
        std::string("binary\x01\xff\n bytes")}) {
    const std::string frame = encodeFrame(payload);
    const auto back = decodeFrame(frame);
    ASSERT_TRUE(back.hasValue()) << back.error().message();
    EXPECT_EQ(*back, payload);
  }
}

TEST(IpcCodec, FrameRejectsCorruptBytesWithTypedErrors) {
  const std::string frame = encodeFrame("the payload");

  // Truncation at every prefix length fails without UB.
  for (std::size_t len = 0; len < frame.size(); ++len) {
    const auto r = decodeFrame(frame.substr(0, len));
    EXPECT_FALSE(r.hasValue()) << "prefix of " << len << " bytes";
  }
  // Trailing garbage is an error: the pipe carries exactly one frame.
  EXPECT_FALSE(decodeFrame(frame + "x").hasValue());
  // Bad magic.
  std::string bad = frame;
  bad[0] = 'X';
  EXPECT_FALSE(decodeFrame(bad).hasValue());
  // Flipped payload bit -> CRC mismatch, and the message names the crc.
  bad = frame;
  bad[9] = static_cast<char>(bad[9] ^ 0x01);
  const auto r = decodeFrame(bad);
  ASSERT_FALSE(r.hasValue());
  EXPECT_NE(r.error().message().find("crc"), std::string::npos)
      << r.error().message();
}

TEST(IpcCodec, ChildMessageRoundTripsFullProfile) {
  ChildMessage message;
  message.kind = ChildMessage::Kind::kProfile;
  message.profile = sampleProfile();
  const auto back = decodeChildMessage(encodeChildMessage(message));
  ASSERT_TRUE(back.hasValue()) << back.error().message();
  EXPECT_EQ(back->kind, ChildMessage::Kind::kProfile);
  expectProfilesEq(back->profile, message.profile);
}

TEST(IpcCodec, ChildMessageRoundTripsExceptionAndAbort) {
  ChildMessage error;
  error.kind = ChildMessage::Kind::kException;
  error.error = "what() with\nnewlines and \"quotes\"";
  auto back = decodeChildMessage(encodeChildMessage(error));
  ASSERT_TRUE(back.hasValue());
  EXPECT_EQ(back->kind, ChildMessage::Kind::kException);
  EXPECT_EQ(back->error, error.error);

  ChildMessage aborted;
  aborted.kind = ChildMessage::Kind::kAborted;
  aborted.error = "budget blown";
  aborted.abortReason = static_cast<std::uint8_t>(AbortReason::kCycleBudget);
  aborted.abortCycle = 123'456'789ULL;
  back = decodeChildMessage(encodeChildMessage(aborted));
  ASSERT_TRUE(back.hasValue());
  EXPECT_EQ(back->kind, ChildMessage::Kind::kAborted);
  EXPECT_EQ(back->abortReason, aborted.abortReason);
  EXPECT_EQ(back->abortCycle, aborted.abortCycle);
}

TEST(IpcCodec, ChildMessageRejectsTruncationEverywhere) {
  ChildMessage message;
  message.kind = ChildMessage::Kind::kProfile;
  message.profile = sampleProfile();
  const std::string payload = encodeChildMessage(message);
  for (std::size_t len = 0; len < payload.size(); ++len) {
    const auto r = decodeChildMessage(payload.substr(0, len));
    EXPECT_FALSE(r.hasValue()) << "prefix of " << len << " bytes";
  }
}

TEST(ProcessRunner, IsolationIsSupportedOnThisPlatform) {
  // The whole suite targets POSIX; if this fails, every skip below is
  // hiding a porting problem, so fail loudly instead.
  EXPECT_TRUE(processIsolationSupported());
}

TEST(ProcessRunner, ShipsProfileBackBitExact) {
  const ChildOutcome outcome =
      runInChild([] { return sampleProfile(); });
  ASSERT_EQ(outcome.status, ChildStatus::kOk) << outcome.error;
  expectProfilesEq(outcome.profile, sampleProfile());
  EXPECT_EQ(outcome.signal, 0);
}

TEST(ProcessRunner, PropagatesExceptionsAsData) {
  const ChildOutcome outcome = runInChild([]() -> perf::RunProfile {
    throw std::runtime_error("boom in the child");
  });
  EXPECT_EQ(outcome.status, ChildStatus::kException);
  EXPECT_NE(outcome.error.find("boom in the child"), std::string::npos);
}

TEST(ProcessRunner, PropagatesRunAbortedAsData) {
  const ChildOutcome outcome = runInChild([]() -> perf::RunProfile {
    throw RunAborted(AbortReason::kCycleBudget, 4242, "over budget");
  });
  EXPECT_EQ(outcome.status, ChildStatus::kAborted);
  EXPECT_EQ(outcome.abortReason, AbortReason::kCycleBudget);
  EXPECT_EQ(outcome.abortCycle, 4242u);
  EXPECT_NE(outcome.error.find("over budget"), std::string::npos);
}

TEST(ProcessRunner, ReportsSigkillDeath) {
  // SIGKILL cannot be caught by any runtime (sanitizers included), so the
  // expectation holds everywhere.
  const ChildOutcome outcome = runInChild([]() -> perf::RunProfile {
    std::raise(SIGKILL);
    return {};
  });
  EXPECT_EQ(outcome.status, ChildStatus::kCrash);
  EXPECT_EQ(outcome.signal, SIGKILL);
  EXPECT_TRUE(outcome.rlimit.empty()) << outcome.rlimit;
  EXPECT_NE(outcome.error.find("SIGKILL"), std::string::npos)
      << outcome.error;
}

TEST(ProcessRunner, ReportsSegfaultDeath) {
  const ChildOutcome outcome = runInChild([]() -> perf::RunProfile {
    // Through a volatile so no compiler proves (and rejects) the trap.
    volatile int* target = nullptr;
    *target = 42;
    return {};
  });
  EXPECT_EQ(outcome.status, ChildStatus::kCrash) << outcome.error;
#if !OCCM_UNDER_SANITIZER
  EXPECT_EQ(outcome.signal, SIGSEGV) << outcome.error;
#endif
}

TEST(ProcessRunner, ReportsAbortDeath) {
  const ChildOutcome outcome = runInChild([]() -> perf::RunProfile {
    std::fprintf(stderr, "dying on purpose\n");
    std::abort();
  });
  EXPECT_EQ(outcome.status, ChildStatus::kCrash);
#if !OCCM_UNDER_SANITIZER
  EXPECT_EQ(outcome.signal, SIGABRT) << outcome.error;
#endif
  // abort() without the OOM marker must not read as a memory-budget kill.
  EXPECT_TRUE(outcome.rlimit.empty()) << outcome.rlimit;
  EXPECT_NE(outcome.stderrTail.find("dying on purpose"), std::string::npos)
      << outcome.stderrTail;
}

TEST(ProcessRunner, MemoryBudgetDeathIsClassifiedAsAddressSpace) {
#if OCCM_UNDER_SANITIZER
  GTEST_SKIP() << "RLIMIT_AS fights sanitizer shadow mappings";
#else
  ProcessRunnerConfig config;
  config.limits.memoryBytes = std::uint64_t{256} << 20;
  const ChildOutcome outcome = runInChild(
      []() -> perf::RunProfile {
        // Touch every allocation so the address space genuinely fills.
        std::vector<char*> hoard;
        for (;;) {
          char* block = new char[8 << 20];
          std::memset(block, 0x5A, 8 << 20);
          hoard.push_back(block);
        }
      },
      config);
  EXPECT_EQ(outcome.status, ChildStatus::kCrash) << outcome.error;
  EXPECT_EQ(outcome.rlimit, "address-space") << outcome.error;
  EXPECT_NE(outcome.stderrTail.find(fault::kOutOfMemoryMarker),
            std::string::npos)
      << outcome.stderrTail;
#endif
}

TEST(ProcessRunner, StderrTailKeepsLastBytesSanitized) {
  ProcessRunnerConfig config;
  config.stderrTailBytes = 64;
  const ChildOutcome outcome = runInChild(
      []() -> perf::RunProfile {
        for (int i = 0; i < 1000; ++i) {
          std::fprintf(stderr, "line %04d\n", i);
        }
        std::fprintf(stderr, "\x01\x02 the final words");
        std::fflush(stderr);
        std::abort();
      },
      config);
  EXPECT_EQ(outcome.status, ChildStatus::kCrash);
  EXPECT_LE(outcome.stderrTail.size(), 64u);
  // The tail keeps the *last* bytes written...
  EXPECT_NE(outcome.stderrTail.find("the final words"), std::string::npos)
      << outcome.stderrTail;
  // ...not the first, and control bytes arrive sanitized to '.'.
  EXPECT_EQ(outcome.stderrTail.find("line 0000"), std::string::npos);
  EXPECT_EQ(outcome.stderrTail.find('\x01'), std::string::npos);
  EXPECT_NE(outcome.stderrTail.find(". the final words"), std::string::npos)
      << outcome.stderrTail;
}

TEST(ProcessRunner, SupervisorKillsChildWhenTokenFires) {
  CancellationSource stop;
  ProcessRunnerConfig config;
  config.cancel = stop.token();
  std::thread trigger([&stop] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    stop.requestStop();
  });
  const ChildOutcome outcome = runInChild(
      []() -> perf::RunProfile {
        // Without the supervisor's SIGKILL this child would outlive any
        // reasonable test timeout.
        std::this_thread::sleep_for(std::chrono::seconds(300));
        return {};
      },
      config);
  trigger.join();
  EXPECT_EQ(outcome.status, ChildStatus::kKilled) << outcome.error;
  EXPECT_EQ(outcome.signal, SIGKILL);
}

}  // namespace
}  // namespace occm::exec
