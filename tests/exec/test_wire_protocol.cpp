// Distributed wire protocol codec: every message kind round-trips
// bit-exactly (including a kAssign carrying a full hand-tuned MachineSpec
// and a kResult carrying a fully populated RunProfile), and arbitrary
// byte damage — unknown kinds, out-of-range enums, truncation at every
// prefix length, trailing bytes — yields a typed IpcError, never a throw.

#include "exec/distributed/protocol.hpp"

#include <gtest/gtest.h>

#include <string>

#include "topology/presets.hpp"

namespace occm::exec::dist {
namespace {

/// A profile with every serialized field populated with a distinctive
/// value (same discipline as the isolation-pipe codec tests).
perf::RunProfile sampleProfile() {
  perf::RunProfile p;
  p.program = "CG.S";
  p.machine = "test-numa-4";
  p.threads = 4;
  p.activeCores = 3;
  p.counters = {101, 17, 4242, 99};
  p.perCore.push_back({11, 3, 40, 5});
  p.perCore.push_back({90, 14, 4202, 94});
  p.coherenceMisses = 7;
  p.writebacks = 13;
  p.contextSwitches = 2;
  p.makespan = 98;
  mem::ControllerStats stats;
  stats.requests = 1;
  stats.rowHits = 4;
  stats.busyCycles = 6;
  stats.retryAttempts = 11;
  p.controllerStats.push_back(stats);
  p.channelsPerController = 2;
  p.missWindows = {5, 0, 12};
  p.samplerWindowCycles = 13'350;
  p.faultEpochs.push_back({"controller-outage", 1, 20'000, 60'000, 1.0});
  p.reroutedRequests = 21;
  p.faultRetries = 22;
  p.backgroundRequests = 23;
  p.throttledCycles = 24;
  return p;
}

/// A job whose machine is hand-tuned (not a preset name) — the wire
/// format must carry the spec itself, caches and hop matrix included.
JobSpec sampleJob() {
  JobSpec job;
  job.taskId = 42;
  job.cores = 3;
  job.maxAttempts = 2;
  job.program = "CG";
  job.problemClass = "S";
  job.threads = 4;
  job.workloadSeed = 0xDEADBEEF;
  job.machine = topology::testNuma4();
  job.machine.name = "hand-tuned \"numa\"";
  job.machine.dramLatency += 17;  // deviation a name could not carry
  job.schedQuantum = 10'000;
  job.schedSwitchCost = 250;
  job.memPlacement = 2;
  job.memService = 1;
  job.memSeed = 99;
  job.enableSampler = true;
  job.samplerWindowNs = 2'500.0;
  job.syncHorizon = 5'000;
  job.cycleBudget = 1'000'000;
  job.simSeed = 7;
  job.faultPlanJson = "{\"faults\":[]}";
  return job;
}

void expectJobsEq(const JobSpec& a, const JobSpec& b) {
  EXPECT_EQ(a.taskId, b.taskId);
  EXPECT_EQ(a.cores, b.cores);
  EXPECT_EQ(a.maxAttempts, b.maxAttempts);
  EXPECT_EQ(a.program, b.program);
  EXPECT_EQ(a.problemClass, b.problemClass);
  EXPECT_EQ(a.threads, b.threads);
  EXPECT_EQ(a.workloadSeed, b.workloadSeed);
  EXPECT_EQ(a.machine.name, b.machine.name);
  EXPECT_EQ(a.machine.clockGhz, b.machine.clockGhz);
  EXPECT_EQ(a.machine.sockets, b.machine.sockets);
  EXPECT_EQ(a.machine.coresPerDie, b.machine.coresPerDie);
  ASSERT_EQ(a.machine.caches.size(), b.machine.caches.size());
  for (std::size_t i = 0; i < a.machine.caches.size(); ++i) {
    EXPECT_EQ(a.machine.caches[i].level, b.machine.caches[i].level);
    EXPECT_EQ(a.machine.caches[i].size, b.machine.caches[i].size);
    EXPECT_EQ(a.machine.caches[i].lineSize, b.machine.caches[i].lineSize);
    EXPECT_EQ(a.machine.caches[i].associativity,
              b.machine.caches[i].associativity);
    EXPECT_EQ(a.machine.caches[i].hitLatency, b.machine.caches[i].hitLatency);
    EXPECT_EQ(a.machine.caches[i].scope, b.machine.caches[i].scope);
  }
  EXPECT_EQ(a.machine.memoryArchitecture, b.machine.memoryArchitecture);
  EXPECT_EQ(a.machine.controllerScope, b.machine.controllerScope);
  EXPECT_EQ(a.machine.dramLatency, b.machine.dramLatency);
  EXPECT_EQ(a.machine.hopMatrix, b.machine.hopMatrix);
  EXPECT_EQ(a.machine.pageSize, b.machine.pageSize);
  EXPECT_EQ(a.machine.scaleFactor, b.machine.scaleFactor);
  EXPECT_EQ(a.schedQuantum, b.schedQuantum);
  EXPECT_EQ(a.schedSwitchCost, b.schedSwitchCost);
  EXPECT_EQ(a.memPlacement, b.memPlacement);
  EXPECT_EQ(a.memService, b.memService);
  EXPECT_EQ(a.memSeed, b.memSeed);
  EXPECT_EQ(a.enableSampler, b.enableSampler);
  EXPECT_EQ(a.samplerWindowNs, b.samplerWindowNs);
  EXPECT_EQ(a.syncHorizon, b.syncHorizon);
  EXPECT_EQ(a.cycleBudget, b.cycleBudget);
  EXPECT_EQ(a.simSeed, b.simSeed);
  EXPECT_EQ(a.faultPlanJson, b.faultPlanJson);
}

TEST(WireProtocol, HelloRoundTrips) {
  WireMessage m;
  m.kind = WireMessage::Kind::kHello;
  m.protocolVersion = kProtocolVersion;
  m.workerId = "worker-7 \"quoted\"\n";
  const auto back = decodeMessage(encodeMessage(m));
  ASSERT_TRUE(back.hasValue()) << back.error().message();
  EXPECT_EQ(back->kind, WireMessage::Kind::kHello);
  EXPECT_EQ(back->protocolVersion, kProtocolVersion);
  EXPECT_EQ(back->workerId, m.workerId);
}

TEST(WireProtocol, WelcomeRejectShutdownRoundTrip) {
  WireMessage welcome;
  welcome.kind = WireMessage::Kind::kWelcome;
  welcome.protocolVersion = 3;
  auto back = decodeMessage(encodeMessage(welcome));
  ASSERT_TRUE(back.hasValue());
  EXPECT_EQ(back->kind, WireMessage::Kind::kWelcome);
  EXPECT_EQ(back->protocolVersion, 3u);

  WireMessage reject;
  reject.kind = WireMessage::Kind::kReject;
  reject.reason = "protocol version 99 unsupported";
  back = decodeMessage(encodeMessage(reject));
  ASSERT_TRUE(back.hasValue());
  EXPECT_EQ(back->kind, WireMessage::Kind::kReject);
  EXPECT_EQ(back->reason, reject.reason);

  WireMessage shutdown;
  shutdown.kind = WireMessage::Kind::kShutdown;
  shutdown.reason = "sweep drained";
  back = decodeMessage(encodeMessage(shutdown));
  ASSERT_TRUE(back.hasValue());
  EXPECT_EQ(back->kind, WireMessage::Kind::kShutdown);
  EXPECT_EQ(back->reason, shutdown.reason);
}

TEST(WireProtocol, PingPongEchoFields) {
  WireMessage ping;
  ping.kind = WireMessage::Kind::kPing;
  ping.pingId = 123;
  ping.pingSentNs = 456'789;
  auto back = decodeMessage(encodeMessage(ping));
  ASSERT_TRUE(back.hasValue());
  EXPECT_EQ(back->kind, WireMessage::Kind::kPing);
  EXPECT_EQ(back->pingId, 123u);
  EXPECT_EQ(back->pingSentNs, 456'789u);

  WireMessage pong = *back;
  pong.kind = WireMessage::Kind::kPong;
  back = decodeMessage(encodeMessage(pong));
  ASSERT_TRUE(back.hasValue());
  EXPECT_EQ(back->kind, WireMessage::Kind::kPong);
  EXPECT_EQ(back->pingId, 123u);
  EXPECT_EQ(back->pingSentNs, 456'789u);
}

TEST(WireProtocol, AssignRoundTripsFullJob) {
  WireMessage m;
  m.kind = WireMessage::Kind::kAssign;
  m.job = sampleJob();
  const auto back = decodeMessage(encodeMessage(m));
  ASSERT_TRUE(back.hasValue()) << back.error().message();
  ASSERT_EQ(back->kind, WireMessage::Kind::kAssign);
  expectJobsEq(back->job, m.job);
}

TEST(WireProtocol, ResultRoundTripsProfileAndFailure) {
  WireMessage m;
  m.kind = WireMessage::Kind::kResult;
  m.result.taskId = 42;
  m.result.hasProfile = true;
  m.result.profile = sampleProfile();
  m.result.hasFailure = true;
  m.result.failure.kind = WireFailureKind::kCrash;
  m.result.failure.attempts = 2;
  m.result.failure.recovered = true;
  m.result.failure.error = "signal 9";
  m.result.failure.signal = 9;
  m.result.failure.rlimit = "RLIMIT_AS";
  m.result.failure.stderrTail = "out of memory\n";
  const auto back = decodeMessage(encodeMessage(m));
  ASSERT_TRUE(back.hasValue()) << back.error().message();
  ASSERT_EQ(back->kind, WireMessage::Kind::kResult);
  EXPECT_EQ(back->result.taskId, 42u);
  ASSERT_TRUE(back->result.hasProfile);
  EXPECT_EQ(back->result.profile.program, "CG.S");
  EXPECT_EQ(back->result.profile.counters.totalCycles, 101u);
  EXPECT_EQ(back->result.profile.perCore.size(), 2u);
  EXPECT_EQ(back->result.profile.controllerStats.size(), 1u);
  EXPECT_EQ(back->result.profile.faultEpochs.size(), 1u);
  EXPECT_EQ(back->result.profile.throttledCycles, 24u);
  ASSERT_TRUE(back->result.hasFailure);
  EXPECT_EQ(back->result.failure.kind, WireFailureKind::kCrash);
  EXPECT_EQ(back->result.failure.attempts, 2);
  EXPECT_TRUE(back->result.failure.recovered);
  EXPECT_EQ(back->result.failure.error, "signal 9");
  EXPECT_EQ(back->result.failure.signal, 9);
  EXPECT_EQ(back->result.failure.rlimit, "RLIMIT_AS");
  EXPECT_EQ(back->result.failure.stderrTail, "out of memory\n");
}

TEST(WireProtocol, ResultWithFailureOnlyRoundTrips) {
  WireMessage m;
  m.kind = WireMessage::Kind::kResult;
  m.result.taskId = 7;
  m.result.hasFailure = true;
  m.result.failure.kind = WireFailureKind::kTimeout;
  m.result.failure.attempts = 1;
  m.result.failure.error = "deadline";
  const auto back = decodeMessage(encodeMessage(m));
  ASSERT_TRUE(back.hasValue());
  EXPECT_FALSE(back->result.hasProfile);
  ASSERT_TRUE(back->result.hasFailure);
  EXPECT_EQ(back->result.failure.kind, WireFailureKind::kTimeout);
}

TEST(WireProtocol, UnknownKindRejected) {
  std::string payload;
  payload.push_back('\x2A');  // kind 42 does not exist
  const auto r = decodeMessage(payload);
  ASSERT_FALSE(r.hasValue());
  EXPECT_NE(r.error().message().find("unknown message kind"),
            std::string::npos);
}

TEST(WireProtocol, EmptyPayloadRejected) {
  EXPECT_FALSE(decodeMessage("").hasValue());
}

TEST(WireProtocol, TrailingBytesRejectedOnEveryKind) {
  WireMessage messages[3];
  messages[0].kind = WireMessage::Kind::kWelcome;
  messages[1].kind = WireMessage::Kind::kPing;
  messages[2].kind = WireMessage::Kind::kAssign;
  messages[2].job = sampleJob();
  for (const WireMessage& m : messages) {
    const std::string payload = encodeMessage(m) + "x";
    const auto r = decodeMessage(payload);
    ASSERT_FALSE(r.hasValue());
    EXPECT_NE(r.error().message().find("trailing"), std::string::npos);
  }
}

TEST(WireProtocol, TruncationAtEveryPrefixRejected) {
  // The deepest message we have: a result with profile + failure.
  WireMessage m;
  m.kind = WireMessage::Kind::kResult;
  m.result.taskId = 42;
  m.result.hasProfile = true;
  m.result.profile = sampleProfile();
  m.result.hasFailure = true;
  m.result.failure.error = "boom";
  const std::string payload = encodeMessage(m);
  for (std::size_t len = 0; len < payload.size(); ++len) {
    const auto r = decodeMessage(payload.substr(0, len));
    EXPECT_FALSE(r.hasValue()) << "prefix of length " << len << " decoded";
  }
  // And the assign message, which exercises the machine-spec reader.
  WireMessage assign;
  assign.kind = WireMessage::Kind::kAssign;
  assign.job = sampleJob();
  const std::string assignPayload = encodeMessage(assign);
  for (std::size_t len = 0; len < assignPayload.size(); ++len) {
    EXPECT_FALSE(decodeMessage(assignPayload.substr(0, len)).hasValue())
        << "prefix of length " << len << " decoded";
  }
}

TEST(WireProtocol, OutOfRangeEnumsRejected) {
  // Failure kind (u8 after taskId + hasProfile + hasFailure flags).
  WireMessage m;
  m.kind = WireMessage::Kind::kResult;
  m.result.taskId = 1;
  m.result.hasFailure = true;
  m.result.failure.kind = WireFailureKind::kException;
  std::string payload = encodeMessage(m);
  // kind byte is the first byte after: msg kind (1) + taskId (8) +
  // hasProfile (1) + hasFailure (1) = offset 11.
  ASSERT_EQ(payload[11], '\x00');
  payload[11] = '\x09';  // beyond kCrash = 3
  auto r = decodeMessage(payload);
  ASSERT_FALSE(r.hasValue());
  EXPECT_NE(r.error().message().find("failure kind"), std::string::npos);

  // Boolean flags must be 0 or 1.
  payload = encodeMessage(m);
  payload[9] = '\x02';  // hasProfile flag
  r = decodeMessage(payload);
  ASSERT_FALSE(r.hasValue());
  EXPECT_NE(r.error().message().find("flag"), std::string::npos);
}

}  // namespace
}  // namespace occm::exec::dist
