// Coordinator lease state machine under a fake clock: grants, expiry and
// backoff re-dispatch, heartbeat eviction, speculative tail duplicates
// with first-result-wins, abandonment past the expiry cap, cancellation
// and local settling — all driven by explicit nowMs values, zero sleeps.

#include "exec/distributed/lease.hpp"

#include <gtest/gtest.h>

#include <string>

namespace occm::exec::dist {
namespace {

/// Deterministic schedule: jitter off, delay(k) = min(400, 100 << k).
LeaseConfig testConfig() {
  LeaseConfig config;
  config.leaseTimeoutMs = 1'000;
  config.heartbeatTimeoutMs = 0;  // heartbeat tests opt in explicitly
  config.redispatchBackoff = {.base = 100, .cap = 400, .jitterPct256 = 0,
                              .seed = 0};
  config.maxExpiries = 0;  // abandonment tests opt in explicitly
  config.speculativeAfterMs = 2'000;
  return config;
}

TEST(LeaseTable, GrantsLowestPendingTaskFirst) {
  LeaseTable table(testConfig(), 3);
  table.workerJoined("a", 0);
  EXPECT_EQ(table.nextAssignment("a", 0), 0u);
  EXPECT_EQ(table.nextAssignment("a", 0), 1u);
  EXPECT_EQ(table.nextAssignment("a", 0), 2u);
  // Nothing pending and its own leases are not speculation targets.
  EXPECT_EQ(table.nextAssignment("a", 0), std::nullopt);
  EXPECT_EQ(table.stats().leasesGranted, 3u);
}

TEST(LeaseTable, UnknownWorkerGetsNothing) {
  LeaseTable table(testConfig(), 1);
  EXPECT_EQ(table.nextAssignment("ghost", 0), std::nullopt);
}

TEST(LeaseTable, FirstResultSettlesTheTask) {
  LeaseTable table(testConfig(), 2);
  table.workerJoined("a", 0);
  ASSERT_EQ(table.nextAssignment("a", 0), 0u);
  EXPECT_TRUE(table.completeTask(0, "a", 50));
  EXPECT_TRUE(table.taskSettled(0));
  EXPECT_FALSE(table.allSettled());
  ASSERT_EQ(table.spans().size(), 1u);
  EXPECT_EQ(table.spans()[0].taskId, 0u);
  EXPECT_EQ(table.spans()[0].worker, "a");
  EXPECT_EQ(table.spans()[0].startMs, 0u);
  EXPECT_EQ(table.spans()[0].endMs, 50u);
  EXPECT_EQ(table.spans()[0].outcome, "won");
}

TEST(LeaseTable, DuplicateResultIsDiscarded) {
  LeaseTable table(testConfig(), 1);
  table.workerJoined("a", 0);
  ASSERT_EQ(table.nextAssignment("a", 0), 0u);
  EXPECT_TRUE(table.completeTask(0, "a", 50));
  EXPECT_FALSE(table.completeTask(0, "a", 60));
  EXPECT_FALSE(table.completeTask(0, "b", 70));
  EXPECT_EQ(table.stats().duplicatesDiscarded, 2u);
}

TEST(LeaseTable, ExpiredLeaseRequeuesBehindBackoff) {
  LeaseTable table(testConfig(), 1);
  table.workerJoined("a", 0);
  ASSERT_EQ(table.nextAssignment("a", 0), 0u);
  // Not yet: deadline is start + 1000.
  EXPECT_TRUE(table.tick(999).expired.empty());
  const auto events = table.tick(1'000);
  ASSERT_EQ(events.expired.size(), 1u);
  EXPECT_EQ(events.expired[0].first, 0u);
  EXPECT_EQ(events.expired[0].second, "a");
  EXPECT_EQ(table.stats().leasesExpired, 1u);
  EXPECT_EQ(table.stats().redispatches, 1u);
  // Re-queued but gated: delay(0) = 100 ms of backoff.
  EXPECT_EQ(table.nextAssignment("a", 1'000), std::nullopt);
  EXPECT_EQ(table.nextAssignment("a", 1'099), std::nullopt);
  ASSERT_TRUE(table.nextEligibleMs().has_value());
  EXPECT_EQ(*table.nextEligibleMs(), 1'100u);
  EXPECT_EQ(table.nextAssignment("a", 1'100), 0u);
}

TEST(LeaseTable, BackoffGrowsPerExpiryUntilTheCap) {
  LeaseTable table(testConfig(), 1);
  table.workerJoined("a", 0);
  std::uint64_t now = 0;
  // delay(k) for expiry k: 100, 200, 400, 400 (capped).
  const std::uint64_t expectedGate[] = {100, 200, 400, 400};
  for (std::uint64_t gate : expectedGate) {
    ASSERT_EQ(table.nextAssignment("a", now), 0u);
    now += 1'000;  // lease deadline
    ASSERT_EQ(table.tick(now).expired.size(), 1u);
    ASSERT_TRUE(table.nextEligibleMs().has_value());
    EXPECT_EQ(*table.nextEligibleMs(), now + gate);
    now += gate;
  }
  EXPECT_EQ(table.stats().redispatches, 4u);
}

TEST(LeaseTable, SilentWorkerIsEvictedAndItsLeasesExpire) {
  LeaseConfig config = testConfig();
  config.heartbeatTimeoutMs = 500;
  LeaseTable table(config, 2);
  table.workerJoined("a", 0);
  table.workerJoined("b", 0);
  ASSERT_EQ(table.nextAssignment("a", 0), 0u);
  ASSERT_EQ(table.nextAssignment("b", 0), 1u);
  table.heartbeat("b", 400);  // b stays chatty, a goes silent
  const auto events = table.tick(500);
  ASSERT_EQ(events.evictedWorkers.size(), 1u);
  EXPECT_EQ(events.evictedWorkers[0], "a");
  ASSERT_EQ(events.expired.size(), 1u);
  EXPECT_EQ(events.expired[0].first, 0u);
  EXPECT_EQ(table.aliveWorkers(), 1u);
  EXPECT_EQ(table.stats().workersEvicted, 1u);
  // a's task is pending again (behind backoff); b's lease is untouched.
  EXPECT_EQ(table.nextAssignment("b", 600), 0u);
  // The eviction span is recorded for the lifecycle trace.
  bool sawEvicted = false;
  for (const LeaseSpan& span : table.spans()) {
    sawEvicted = sawEvicted || span.outcome == "evicted";
  }
  EXPECT_TRUE(sawEvicted);
}

TEST(LeaseTable, HeartbeatKeepsAWorkerAlive) {
  LeaseConfig config = testConfig();
  config.heartbeatTimeoutMs = 500;
  LeaseTable table(config, 1);
  table.workerJoined("a", 0);
  table.heartbeat("a", 400);
  EXPECT_TRUE(table.tick(500).evictedWorkers.empty());
  EXPECT_EQ(table.aliveWorkers(), 1u);
  const auto events = table.tick(900);  // 400 + 500: now overdue
  ASSERT_EQ(events.evictedWorkers.size(), 1u);
  EXPECT_EQ(table.aliveWorkers(), 0u);
}

TEST(LeaseTable, IdleWorkerSpeculatesOnTheOldestStraggler) {
  LeaseConfig config = testConfig();
  config.leaseTimeoutMs = 0;  // stragglers never expire in this test
  LeaseTable table(config, 1);
  table.workerJoined("a", 0);
  table.workerJoined("b", 0);
  ASSERT_EQ(table.nextAssignment("a", 0), 0u);
  // Too early: the lease is not yet speculativeAfterMs old.
  EXPECT_EQ(table.nextAssignment("b", 1'999), std::nullopt);
  // Old enough: b gets a duplicate of a's straggling task.
  EXPECT_EQ(table.nextAssignment("b", 2'000), 0u);
  EXPECT_EQ(table.stats().speculativeLeases, 1u);
  // The speculative sibling does not spawn further duplicates for a.
  EXPECT_EQ(table.nextAssignment("a", 5'000), std::nullopt);
  // b finishes first: its lease "won", a's straggler is a "duplicate".
  EXPECT_TRUE(table.completeTask(0, "b", 2'500));
  EXPECT_TRUE(table.allSettled());
  ASSERT_EQ(table.spans().size(), 2u);
  bool sawWon = false;
  bool sawDuplicate = false;
  for (const LeaseSpan& span : table.spans()) {
    sawWon = sawWon || (span.worker == "b" && span.outcome == "won");
    sawDuplicate =
        sawDuplicate || (span.worker == "a" && span.outcome == "duplicate");
  }
  EXPECT_TRUE(sawWon);
  EXPECT_TRUE(sawDuplicate);
  // a's late result for the settled task is discarded.
  EXPECT_FALSE(table.completeTask(0, "a", 9'000));
  EXPECT_EQ(table.stats().duplicatesDiscarded, 1u);
}

TEST(LeaseTable, DisconnectTearsDownLeasesAndRequeues) {
  LeaseTable table(testConfig(), 2);
  table.workerJoined("a", 0);
  ASSERT_EQ(table.nextAssignment("a", 0), 0u);
  ASSERT_EQ(table.nextAssignment("a", 0), 1u);
  const auto torn = table.workerLeft("a", 100);
  ASSERT_EQ(torn.size(), 2u);
  EXPECT_EQ(table.aliveWorkers(), 0u);
  for (const LeaseSpan& span : table.spans()) {
    EXPECT_EQ(span.outcome, "disconnected");
  }
  // Both tasks are pending again behind delay(0) = 100 ms.
  table.workerJoined("b", 100);
  EXPECT_EQ(table.nextAssignment("b", 100), std::nullopt);
  EXPECT_EQ(table.nextAssignment("b", 200), 0u);
  EXPECT_EQ(table.nextAssignment("b", 200), 1u);
}

TEST(LeaseTable, AbandonsATaskPastTheExpiryCap) {
  LeaseConfig config = testConfig();
  config.maxExpiries = 2;
  LeaseTable table(config, 1);
  table.workerJoined("a", 0);
  ASSERT_EQ(table.nextAssignment("a", 0), 0u);
  ASSERT_TRUE(table.tick(1'000).abandoned.empty());  // expiry 1 of 2
  ASSERT_EQ(table.nextAssignment("a", 1'100), 0u);
  const auto events = table.tick(2'100);  // expiry 2: cap reached
  ASSERT_EQ(events.abandoned.size(), 1u);
  EXPECT_EQ(events.abandoned[0], 0u);
  EXPECT_EQ(table.stats().tasksAbandoned, 1u);
  EXPECT_FALSE(table.allSettled());
  EXPECT_TRUE(table.drained());  // nothing left for the fleet to do
  EXPECT_EQ(table.nextAssignment("a", 9'000), std::nullopt);
  // A straggler that outlived the cap still wins: valid work is valid.
  EXPECT_TRUE(table.completeTask(0, "a", 10'000));
  EXPECT_TRUE(table.allSettled());
  EXPECT_EQ(table.stats().tasksAbandoned, 0u);
}

TEST(LeaseTable, CancelAllClosesEveryLeaseWithoutSettling) {
  LeaseTable table(testConfig(), 2);
  table.workerJoined("a", 0);
  table.workerJoined("b", 0);
  ASSERT_EQ(table.nextAssignment("a", 0), 0u);
  ASSERT_EQ(table.nextAssignment("b", 0), 1u);
  table.cancelAll(300);
  ASSERT_EQ(table.spans().size(), 2u);
  for (const LeaseSpan& span : table.spans()) {
    EXPECT_EQ(span.outcome, "cancelled");
    EXPECT_EQ(span.endMs, 300u);
  }
  EXPECT_FALSE(table.taskSettled(0));
  EXPECT_FALSE(table.taskSettled(1));
  // A resume re-dispatches immediately (no backoff for cancellation).
  EXPECT_EQ(table.nextAssignment("a", 300), 0u);
}

TEST(LeaseTable, SettleLocalShortCircuitsTheFleet) {
  LeaseTable table(testConfig(), 2);
  table.workerJoined("a", 0);
  table.settleLocal(0, 10);  // restored from a checkpoint before dispatch
  EXPECT_TRUE(table.taskSettled(0));
  // The fleet never sees task 0 again.
  EXPECT_EQ(table.nextAssignment("a", 10), 1u);
  EXPECT_EQ(table.nextAssignment("a", 10), std::nullopt);
  // A late fleet result for the locally-settled task is a duplicate.
  EXPECT_FALSE(table.completeTask(0, "a", 50));
  table.settleLocal(1, 60);  // local fallback finished the leased task
  EXPECT_TRUE(table.allSettled());
}

}  // namespace
}  // namespace occm::exec::dist
