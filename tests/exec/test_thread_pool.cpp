// Executor unit tests: lifecycle edge cases, per-task exception capture,
// bounded-queue backpressure and a multi-producer stress run.

#include "exec/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace occm::exec {
namespace {

TEST(ThreadPool, ZeroTasksConstructsAndDestructsCleanly) {
  ThreadPool pool({4, 8});
  EXPECT_EQ(pool.workers(), 4);
  EXPECT_EQ(pool.queueCapacity(), 8u);
  EXPECT_EQ(pool.queued(), 0u);
  // Destructor joins idle workers without a task ever being submitted.
}

TEST(ThreadPool, DefaultQueueCapacityIsTwicePoolSize) {
  ThreadPool pool({3, 0});
  EXPECT_EQ(pool.queueCapacity(), 6u);
}

TEST(ThreadPool, SingleWorkerRunsEveryTaskInSubmissionOrder) {
  ThreadPool pool({1, 64});
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    // One worker => tasks serialize; `order` needs no synchronization
    // beyond the future joins below.
    futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) {
    f.get();
  }
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(ThreadPool, TaskExceptionPropagatesThroughFuture) {
  ThreadPool pool({2, 4});
  std::future<void> bad =
      pool.submit([] { throw std::runtime_error("task boom"); });
  std::future<void> good = pool.submit([] {});
  try {
    bad.get();
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task boom");
  }
  // A throwing task must not take its worker down with it.
  EXPECT_NO_THROW(good.get());
  EXPECT_NO_THROW(pool.submit([] {}).get());
}

TEST(ThreadPool, BoundedQueueRefusesTrySubmitWhenFull) {
  ThreadPool pool({1, 1});
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  // Occupy the only worker...
  std::future<void> running = pool.submit([gate] { gate.wait(); });
  // ...then fill the queue's single slot. The worker may not have picked
  // up the first task yet, so allow one displacement retry.
  std::future<void> queuedFuture;
  while (!pool.trySubmit([gate] { gate.wait(); }, &queuedFuture)) {
  }
  // Deterministically full now: the worker is parked inside the first
  // task, so the queued one cannot drain until the gate opens.
  ASSERT_EQ(pool.queued(), 1u);
  int extraRan = 0;
  ASSERT_FALSE(pool.trySubmit([&extraRan] { ++extraRan; }));
  release.set_value();
  running.get();
  queuedFuture.get();
  // After the backlog drains, submission works again.
  std::future<void> after;
  ASSERT_TRUE(pool.trySubmit([&extraRan] { ++extraRan; }, &after));
  after.get();
  EXPECT_EQ(extraRan, 1);
}

TEST(ThreadPool, SubmitBlocksUntilQueueSpaceFreesUp) {
  ThreadPool pool({1, 1});
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::future<void> running = pool.submit([gate] { gate.wait(); });
  std::future<void> queuedTask;
  while (!pool.trySubmit([gate] { gate.wait(); }, &queuedTask)) {
  }
  // The queue is full; a blocking submit from a producer thread must park
  // until the gate opens, then complete.
  std::atomic<bool> submitted{false};
  std::thread producer([&] {
    std::future<void> f = pool.submit([] {});
    submitted.store(true);
    f.get();
  });
  release.set_value();
  producer.join();
  EXPECT_TRUE(submitted.load());
  running.get();
  queuedTask.get();
}

TEST(ThreadPool, MultiProducerStressRunsEveryTaskExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kTasksPerProducer = 500;
  ThreadPool pool({3, 8});  // small queue => constant backpressure
  std::atomic<int> ran{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &ran] {
      std::vector<std::future<void>> futures;
      futures.reserve(kTasksPerProducer);
      for (int i = 0; i < kTasksPerProducer; ++i) {
        futures.push_back(pool.submit(
            [&ran] { ran.fetch_add(1, std::memory_order_relaxed); }));
      }
      for (auto& f : futures) {
        f.get();
      }
    });
  }
  for (std::thread& producer : producers) {
    producer.join();
  }
  EXPECT_EQ(ran.load(), kProducers * kTasksPerProducer);
  EXPECT_EQ(pool.queued(), 0u);
}

TEST(ThreadPool, NullTaskIsAContractViolation) {
  ThreadPool pool({1, 2});
  EXPECT_THROW((void)pool.submit(nullptr), ContractViolation);
  EXPECT_THROW((void)pool.trySubmit(nullptr), ContractViolation);
}

TEST(ResolveWorkerCount, PositiveRequestPassesThrough) {
  EXPECT_EQ(resolveWorkerCount(3), 3);
  EXPECT_EQ(resolveWorkerCount(1), 1);
}

TEST(ThreadPoolCancel, CancelDiscardsQueuedTasksAsBrokenPromise) {
  ThreadPool pool({1, 4});
  std::promise<void> gatePromise;
  std::shared_future<void> gate = gatePromise.get_future().share();
  std::atomic<bool> ranQueued{false};

  std::future<void> running = pool.submit([gate] { gate.wait(); });
  // Wait for the worker to pick up the gated task so the next submit is
  // guaranteed to sit in the queue, not on a worker.
  while (pool.queued() != 0) {
    std::this_thread::yield();
  }
  std::future<void> queued = pool.submit([&ranQueued] { ranQueued = true; });

  pool.cancel();
  EXPECT_TRUE(pool.cancelled());
  try {
    queued.get();
    FAIL() << "expected broken_promise";
  } catch (const std::future_error& e) {
    EXPECT_EQ(e.code(), std::make_error_code(std::future_errc::broken_promise));
  }
  EXPECT_FALSE(ranQueued.load());

  // The in-flight task is allowed to finish normally.
  gatePromise.set_value();
  running.get();
}

TEST(ThreadPoolCancel, CancelWakesBlockedSubmitterWithoutDeadlock) {
  // Regression for the shutdown-ordering race: a submitter blocked on
  // backpressure while cancel() runs must observe the cancellation, throw
  // a typed error and fully leave the pool before cancel() returns —
  // otherwise a cancel() -> destroy sequence joins workers while the
  // submitter still touches pool state (tsan catches the use-after-free).
  auto pool = std::make_unique<ThreadPool>(ThreadPoolConfig{1, 1});
  std::promise<void> gatePromise;
  std::shared_future<void> gate = gatePromise.get_future().share();

  std::future<void> running = pool->submit([gate] { gate.wait(); });
  while (pool->queued() != 0) {
    std::this_thread::yield();  // worker holds the gated task
  }
  std::future<void> queued = pool->submit([] {});  // fills capacity-1 queue

  std::atomic<bool> submitterThrew{false};
  std::thread producer([&] {
    try {
      (void)pool->submit([] {});  // blocks: queue full
    } catch (const ContractViolation& e) {
      EXPECT_NE(std::string(e.what()).find("cancelled"), std::string::npos);
      submitterThrew = true;
    }
  });
  // Let the producer reach the backpressure wait before cancelling. The
  // sleep only widens the race window; correctness never depends on it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  pool->cancel();  // must wake the producer and wait for it to leave
  producer.join();
  EXPECT_TRUE(submitterThrew.load());

  EXPECT_THROW((void)queued.get(), std::future_error);
  EXPECT_FALSE(pool->trySubmit([] {}));

  gatePromise.set_value();
  running.get();
  pool.reset();  // destroy immediately after cancel: the race under test
}

TEST(ThreadPoolCancel, CancelIsIdempotentAndSubmitAfterCancelThrows) {
  ThreadPool pool({2, 4});
  pool.cancel();
  pool.cancel();  // second cancel is a no-op
  EXPECT_TRUE(pool.cancelled());
  try {
    (void)pool.submit([] {});
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("cancelled"), std::string::npos);
  }
  EXPECT_FALSE(pool.trySubmit([] {}));
}

TEST(ThreadPoolCancel, ManyProducersAllObserveCancellation) {
  // Stress the cancel/backpressure interaction: several producers hammer
  // a tiny queue while cancel() lands; every producer must exit via a
  // completed future or a typed throw — never hang.
  auto pool = std::make_unique<ThreadPool>(ThreadPoolConfig{2, 2});
  std::atomic<int> typedThrows{0};
  std::atomic<int> submitted{0};
  std::vector<std::thread> producers;
  producers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < 64; ++i) {
        try {
          (void)pool->submit(
              [] { std::this_thread::sleep_for(std::chrono::microseconds(50)); });
          submitted.fetch_add(1);
        } catch (const ContractViolation&) {
          typedThrows.fetch_add(1);
          return;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  pool->cancel();
  for (std::thread& p : producers) {
    p.join();
  }
  EXPECT_GE(submitted.load(), 0);
  pool.reset();  // destruction right after cancel must not deadlock
}

TEST(ResolveWorkerCount, ZeroFallsBackToEnvThenHardware) {
  const char* saved = std::getenv("OCCM_SWEEP_WORKERS");
  const std::string savedValue = saved != nullptr ? saved : "";

  ::setenv("OCCM_SWEEP_WORKERS", "5", 1);
  EXPECT_EQ(resolveWorkerCount(0), 5);
  EXPECT_EQ(resolveWorkerCount(-1), 5);
  EXPECT_EQ(resolveWorkerCount(2), 2);  // explicit request still wins

  // Garbage and out-of-range values are ignored.
  ::setenv("OCCM_SWEEP_WORKERS", "banana", 1);
  EXPECT_GE(resolveWorkerCount(0), 1);
  ::setenv("OCCM_SWEEP_WORKERS", "0", 1);
  EXPECT_GE(resolveWorkerCount(0), 1);
  ::setenv("OCCM_SWEEP_WORKERS", "-4", 1);
  EXPECT_GE(resolveWorkerCount(0), 1);

  ::unsetenv("OCCM_SWEEP_WORKERS");
  EXPECT_GE(resolveWorkerCount(0), 1);  // hardware concurrency, min 1

  if (saved != nullptr) {
    ::setenv("OCCM_SWEEP_WORKERS", savedValue.c_str(), 1);
  }
}

}  // namespace
}  // namespace occm::exec
