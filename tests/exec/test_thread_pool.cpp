// Executor unit tests: lifecycle edge cases, per-task exception capture,
// bounded-queue backpressure and a multi-producer stress run.

#include "exec/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace occm::exec {
namespace {

TEST(ThreadPool, ZeroTasksConstructsAndDestructsCleanly) {
  ThreadPool pool({4, 8});
  EXPECT_EQ(pool.workers(), 4);
  EXPECT_EQ(pool.queueCapacity(), 8u);
  EXPECT_EQ(pool.queued(), 0u);
  // Destructor joins idle workers without a task ever being submitted.
}

TEST(ThreadPool, DefaultQueueCapacityIsTwicePoolSize) {
  ThreadPool pool({3, 0});
  EXPECT_EQ(pool.queueCapacity(), 6u);
}

TEST(ThreadPool, SingleWorkerRunsEveryTaskInSubmissionOrder) {
  ThreadPool pool({1, 64});
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    // One worker => tasks serialize; `order` needs no synchronization
    // beyond the future joins below.
    futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) {
    f.get();
  }
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(ThreadPool, TaskExceptionPropagatesThroughFuture) {
  ThreadPool pool({2, 4});
  std::future<void> bad =
      pool.submit([] { throw std::runtime_error("task boom"); });
  std::future<void> good = pool.submit([] {});
  try {
    bad.get();
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task boom");
  }
  // A throwing task must not take its worker down with it.
  EXPECT_NO_THROW(good.get());
  EXPECT_NO_THROW(pool.submit([] {}).get());
}

TEST(ThreadPool, BoundedQueueRefusesTrySubmitWhenFull) {
  ThreadPool pool({1, 1});
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  // Occupy the only worker...
  std::future<void> running = pool.submit([gate] { gate.wait(); });
  // ...then fill the queue's single slot. The worker may not have picked
  // up the first task yet, so allow one displacement retry.
  std::future<void> queuedFuture;
  while (!pool.trySubmit([gate] { gate.wait(); }, &queuedFuture)) {
  }
  // Deterministically full now: the worker is parked inside the first
  // task, so the queued one cannot drain until the gate opens.
  ASSERT_EQ(pool.queued(), 1u);
  int extraRan = 0;
  ASSERT_FALSE(pool.trySubmit([&extraRan] { ++extraRan; }));
  release.set_value();
  running.get();
  queuedFuture.get();
  // After the backlog drains, submission works again.
  std::future<void> after;
  ASSERT_TRUE(pool.trySubmit([&extraRan] { ++extraRan; }, &after));
  after.get();
  EXPECT_EQ(extraRan, 1);
}

TEST(ThreadPool, SubmitBlocksUntilQueueSpaceFreesUp) {
  ThreadPool pool({1, 1});
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::future<void> running = pool.submit([gate] { gate.wait(); });
  std::future<void> queuedTask;
  while (!pool.trySubmit([gate] { gate.wait(); }, &queuedTask)) {
  }
  // The queue is full; a blocking submit from a producer thread must park
  // until the gate opens, then complete.
  std::atomic<bool> submitted{false};
  std::thread producer([&] {
    std::future<void> f = pool.submit([] {});
    submitted.store(true);
    f.get();
  });
  release.set_value();
  producer.join();
  EXPECT_TRUE(submitted.load());
  running.get();
  queuedTask.get();
}

TEST(ThreadPool, MultiProducerStressRunsEveryTaskExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kTasksPerProducer = 500;
  ThreadPool pool({3, 8});  // small queue => constant backpressure
  std::atomic<int> ran{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &ran] {
      std::vector<std::future<void>> futures;
      futures.reserve(kTasksPerProducer);
      for (int i = 0; i < kTasksPerProducer; ++i) {
        futures.push_back(pool.submit(
            [&ran] { ran.fetch_add(1, std::memory_order_relaxed); }));
      }
      for (auto& f : futures) {
        f.get();
      }
    });
  }
  for (std::thread& producer : producers) {
    producer.join();
  }
  EXPECT_EQ(ran.load(), kProducers * kTasksPerProducer);
  EXPECT_EQ(pool.queued(), 0u);
}

TEST(ThreadPool, NullTaskIsAContractViolation) {
  ThreadPool pool({1, 2});
  EXPECT_THROW((void)pool.submit(nullptr), ContractViolation);
  EXPECT_THROW((void)pool.trySubmit(nullptr), ContractViolation);
}

TEST(ResolveWorkerCount, PositiveRequestPassesThrough) {
  EXPECT_EQ(resolveWorkerCount(3), 3);
  EXPECT_EQ(resolveWorkerCount(1), 1);
}

TEST(ResolveWorkerCount, ZeroFallsBackToEnvThenHardware) {
  const char* saved = std::getenv("OCCM_SWEEP_WORKERS");
  const std::string savedValue = saved != nullptr ? saved : "";

  ::setenv("OCCM_SWEEP_WORKERS", "5", 1);
  EXPECT_EQ(resolveWorkerCount(0), 5);
  EXPECT_EQ(resolveWorkerCount(-1), 5);
  EXPECT_EQ(resolveWorkerCount(2), 2);  // explicit request still wins

  // Garbage and out-of-range values are ignored.
  ::setenv("OCCM_SWEEP_WORKERS", "banana", 1);
  EXPECT_GE(resolveWorkerCount(0), 1);
  ::setenv("OCCM_SWEEP_WORKERS", "0", 1);
  EXPECT_GE(resolveWorkerCount(0), 1);
  ::setenv("OCCM_SWEEP_WORKERS", "-4", 1);
  EXPECT_GE(resolveWorkerCount(0), 1);

  ::unsetenv("OCCM_SWEEP_WORKERS");
  EXPECT_GE(resolveWorkerCount(0), 1);  // hardware concurrency, min 1

  if (saved != nullptr) {
    ::setenv("OCCM_SWEEP_WORKERS", savedValue.c_str(), 1);
  }
}

}  // namespace
}  // namespace occm::exec
