// End-to-end tests of the machine simulator on small synthetic workloads.

#include "sim/machine_sim.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "topology/presets.hpp"
#include "trace/address_space.hpp"
#include "workloads/phase_stream.hpp"

namespace occm::sim {
namespace {

using workloads::Phase;
using workloads::PhaseStream;
using workloads::seqLines;

/// `threads` identical streaming threads over disjoint shared arrays.
std::vector<trace::RefStreamPtr> streamingThreads(int threads,
                                                  std::uint64_t linesEach,
                                                  Cycles workPerOp,
                                                  bool prefetchable = true) {
  std::vector<trace::RefStreamPtr> out;
  for (int t = 0; t < threads; ++t) {
    Phase p = seqLines(static_cast<Addr>(t) * (Addr{1} << 26),
                       linesEach * 64, workPerOp);
    p.prefetchable = prefetchable;
    out.push_back(std::make_unique<PhaseStream>(std::vector<Phase>{p}));
  }
  return out;
}

TEST(MachineSim, TotalCyclesEqualsWorkPlusStall) {
  MachineSim sim(topology::testNuma4());
  const auto streams = streamingThreads(4, 5000, 10);
  const perf::RunProfile p = sim.run(streams, 4, "synthetic");
  EXPECT_EQ(p.counters.totalCycles,
            p.counters.workCycles() + p.counters.stallCycles);
  EXPECT_GT(p.counters.llcMisses, 0u);
  EXPECT_EQ(p.program, "synthetic");
  EXPECT_EQ(p.threads, 4);
  EXPECT_EQ(p.activeCores, 4);
}

TEST(MachineSim, MakespanShrinksWithMoreCores) {
  MachineSim sim(topology::testNuma4());
  const auto streams = streamingThreads(4, 20000, 20);
  const Cycles mk1 = sim.run(streams, 1).makespan;
  const Cycles mk2 = sim.run(streams, 2).makespan;
  const Cycles mk4 = sim.run(streams, 4).makespan;
  EXPECT_LT(mk2, mk1);
  EXPECT_LT(mk4, mk2);
  EXPECT_GT(mk4, mk1 / 8);  // not super-linear
}

TEST(MachineSim, WorkCyclesInvariantAcrossCoreCounts) {
  MachineSim sim(topology::testNuma4());
  const auto streams = streamingThreads(4, 10000, 15);
  const Cycles w1 = sim.run(streams, 1).counters.workCycles();
  const Cycles w4 = sim.run(streams, 4).counters.workCycles();
  EXPECT_EQ(w1, w4);
}

TEST(MachineSim, ContentionInflatesTotalCycles) {
  // Memory-bound dependent gathers: adding cores must add stall cycles.
  MachineSim sim(topology::testNuma4());
  std::vector<trace::RefStreamPtr> streams;
  for (int t = 0; t < 4; ++t) {
    Phase gather;
    gather.kind = Phase::Kind::kGather;
    gather.base = 0;
    gather.tableBytes = 1 * kMiB;  // far beyond the 8 KiB LLC
    gather.elementBytes = 64;
    gather.count = 30000;
    gather.workPerOp = 2;
    gather.seed = static_cast<std::uint64_t>(t);
    streams.push_back(
        std::make_unique<PhaseStream>(std::vector<Phase>{gather}));
  }
  const auto c1 = sim.run(streams, 1).counters.totalCycles;
  const auto c4 = sim.run(streams, 4).counters.totalCycles;
  EXPECT_GT(c4, c1 + c1 / 10);
}

TEST(MachineSim, DeterministicForSameSeed) {
  MachineSim sim(topology::testNuma4());
  const auto streams = streamingThreads(4, 5000, 10);
  const perf::RunProfile a = sim.run(streams, 3);
  const perf::RunProfile b = sim.run(streams, 3);
  EXPECT_EQ(a.counters.totalCycles, b.counters.totalCycles);
  EXPECT_EQ(a.counters.llcMisses, b.counters.llcMisses);
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST(MachineSim, SeedChangesJitterButNotWork) {
  SimConfig configA;
  configA.seed = 1;
  SimConfig configB;
  configB.seed = 2;
  MachineSim simA(topology::testNuma4(), configA);
  MachineSim simB(topology::testNuma4(), configB);
  const auto streams = streamingThreads(4, 5000, 10);
  const perf::RunProfile a = simA.run(streams, 2);
  const perf::RunProfile b = simB.run(streams, 2);
  EXPECT_EQ(a.counters.workCycles(), b.counters.workCycles());
  EXPECT_NE(a.makespan, b.makespan);
}

TEST(MachineSim, OversubscriptionContextSwitches) {
  sched::SchedConfig sched;
  sched.quantum = 10'000;
  SimConfig config;
  config.sched = sched;
  MachineSim sim(topology::testNuma4(), config);
  const auto streams = streamingThreads(4, 10000, 20);
  const perf::RunProfile one = sim.run(streams, 1);
  EXPECT_GT(one.contextSwitches, 10u);
  const perf::RunProfile four = sim.run(streams, 4);
  EXPECT_EQ(four.contextSwitches, 0u);  // one thread per core
}

TEST(MachineSim, PerCoreCountersOnlyOnActiveCores) {
  MachineSim sim(topology::testNuma4());
  const auto streams = streamingThreads(4, 2000, 10);
  const perf::RunProfile p = sim.run(streams, 2);
  int busy = 0;
  for (const auto& core : p.perCore) {
    busy += core.totalCycles > 0 ? 1 : 0;
  }
  EXPECT_EQ(busy, 2);
}

TEST(MachineSim, SamplerRecordsWindows) {
  SimConfig config;
  config.enableSampler = true;
  config.samplerWindowNs = 5000.0;
  MachineSim sim(topology::testNuma4(), config);  // 1 GHz: window = 5000 cyc
  const auto streams = streamingThreads(2, 5000, 10);
  const perf::RunProfile p = sim.run(streams, 2);
  EXPECT_EQ(p.samplerWindowCycles, 5000u);
  ASSERT_FALSE(p.missWindows.empty());
  std::uint64_t sampled = 0;
  for (std::uint64_t w : p.missWindows) {
    sampled += w;
  }
  EXPECT_EQ(sampled, p.counters.llcMisses);
  // Windows cover the whole makespan.
  EXPECT_GE(p.missWindows.size() * 5000, p.makespan);
}

TEST(MachineSim, SamplerOffByDefault) {
  MachineSim sim(topology::testNuma4());
  const auto streams = streamingThreads(2, 1000, 10);
  EXPECT_TRUE(sim.run(streams, 1).missWindows.empty());
}

TEST(MachineSim, ObsOffByDefault) {
  MachineSim sim(topology::testNuma4());
  const auto streams = streamingThreads(2, 1000, 10);
  EXPECT_EQ(sim.run(streams, 2).trace, nullptr);
}

TEST(MachineSim, ObsMetricsCrossCheckAggregateCounters) {
  SimConfig config;
  config.observability.metrics = true;
  MachineSim sim(topology::testNuma4(), config);
  const auto streams = streamingThreads(4, 5000, 10);
  const perf::RunProfile p = sim.run(streams, 4);
  ASSERT_NE(p.trace, nullptr);
  const obs::MetricRegistry& metrics = p.trace->metrics;

  // The windowed LLC-miss counter totals to the aggregate counter.
  const obs::TimeSeries* llc = metrics.find("sim.llc_misses");
  ASSERT_NE(llc, nullptr);
  EXPECT_DOUBLE_EQ(llc->total(),
                   static_cast<double>(p.counters.llcMisses));

  // Per-node request and busy counters total to the controller stats.
  double requests = 0.0;
  double busy = 0.0;
  for (const auto& c : p.controllerStats) {
    requests += static_cast<double>(c.requests + c.writebacks);
    busy += static_cast<double>(c.busyCycles);
  }
  double metricRequests = 0.0;
  double metricBusy = 0.0;
  for (std::size_t n = 0; n < p.controllerStats.size(); ++n) {
    const std::string prefix = "mem.node" + std::to_string(n) + ".";
    metricRequests += metrics.find(prefix + "requests")->total();
    metricBusy += metrics.find(prefix + "busy")->total();
  }
  EXPECT_DOUBLE_EQ(metricRequests, requests);
  EXPECT_DOUBLE_EQ(metricBusy, busy);

  // Per-core work counters total to the aggregate work cycles.
  double work = 0.0;
  for (int c = 0; c < 4; ++c) {
    const obs::TimeSeries* s =
        metrics.find("core" + std::to_string(c) + ".work");
    ASSERT_NE(s, nullptr);
    work += s->total();
  }
  EXPECT_DOUBLE_EQ(work, static_cast<double>(p.counters.workCycles()));

  // All series are finalized to the same window count covering makespan.
  const std::size_t windows = llc->windowCount();
  EXPECT_GE(windows * metrics.windowCycles(), p.makespan);
  for (const obs::Metric& m : metrics.metrics()) {
    EXPECT_EQ(m.series.windowCount(), windows) << m.name;
  }
}

TEST(MachineSim, ObsTraceRecordsSpansAndTrackNames) {
  SimConfig config;
  config.observability.trace = true;
  MachineSim sim(topology::testNuma4(), config);
  const auto streams = streamingThreads(2, 2000, 10);
  const perf::RunProfile p = sim.run(streams, 2);
  ASSERT_NE(p.trace, nullptr);
  EXPECT_EQ(p.trace->metrics.size(), 0u);  // metrics not requested
  EXPECT_GT(p.trace->events.size(), 0u);
  EXPECT_TRUE(p.trace->events.trackNames().contains(0));
  EXPECT_TRUE(
      p.trace->events.trackNames().contains(obs::kControllerTrackBase));
  bool sawServiceSpan = false;
  for (std::size_t i = 0; i < p.trace->events.size(); ++i) {
    if (p.trace->events[i].name == "service") {
      sawServiceSpan = true;
      EXPECT_GE(p.trace->events[i].track, obs::kControllerTrackBase);
    }
  }
  EXPECT_TRUE(sawServiceSpan);
}

TEST(MachineSim, ObsRingBufferBackpressureBoundsMemory) {
  SimConfig config;
  config.observability.trace = true;
  config.observability.traceCapacity = 64;
  MachineSim sim(topology::testNuma4(), config);
  const auto streams = streamingThreads(4, 5000, 10);
  const perf::RunProfile p = sim.run(streams, 4);
  ASSERT_NE(p.trace, nullptr);
  EXPECT_LE(p.trace->events.size(), 64u);
  EXPECT_GT(p.trace->events.dropped(), 0u);
  EXPECT_EQ(p.trace->events.recorded(),
            p.trace->events.size() + p.trace->events.dropped());
}

TEST(MachineSim, PrefetchableStallsLessThanDependent) {
  MachineSim sim(topology::testNuma4());
  const auto stream = streamingThreads(1, 20000, 2, /*prefetchable=*/true);
  const auto dependent = streamingThreads(1, 20000, 2, /*prefetchable=*/false);
  const auto ps = sim.run(stream, 1).counters.stallCycles;
  const auto ds = sim.run(dependent, 1).counters.stallCycles;
  EXPECT_LT(ps, ds / 2);
}

TEST(MachineSim, FewerThreadsThanCoresWorks) {
  MachineSim sim(topology::testNuma4());
  const auto streams = streamingThreads(2, 1000, 10);
  const perf::RunProfile p = sim.run(streams, 4);
  EXPECT_EQ(p.threads, 2);
  EXPECT_GT(p.counters.totalCycles, 0u);
}

TEST(MachineSim, InvalidArgumentsThrow) {
  MachineSim sim(topology::testNuma4());
  const auto streams = streamingThreads(2, 100, 10);
  EXPECT_THROW((void)sim.run(streams, 0), ContractViolation);
  EXPECT_THROW((void)sim.run(streams, 5), ContractViolation);
  const std::vector<trace::RefStreamPtr> empty;
  EXPECT_THROW((void)sim.run(empty, 1), ContractViolation);
}

TEST(MachineSim, StreamsAreResetBetweenRuns) {
  MachineSim sim(topology::testNuma4());
  const auto streams = streamingThreads(2, 3000, 10);
  const auto first = sim.run(streams, 2).counters.instructions;
  const auto second = sim.run(streams, 2).counters.instructions;
  EXPECT_EQ(first, second);
  EXPECT_GT(first, 0u);
}

}  // namespace
}  // namespace occm::sim
