// Property-style tests of machine-level behaviours that the paper's
// observations depend on, using the real kernels on the paper machines
// but at small classes (fast).

#include <gtest/gtest.h>

#include "analysis/experiment.hpp"
#include "core/occm.hpp"

namespace occm {
namespace {

using analysis::SweepConfig;

perf::RunProfile run(const topology::MachineSpec& machine,
                     workloads::Program program, workloads::ProblemClass cls,
                     int cores, sim::SimConfig simConfig = {}) {
  workloads::WorkloadSpec spec;
  spec.program = program;
  spec.problemClass = cls;
  return analysis::runOnce(machine, spec, cores, simConfig);
}

class ClassSweepTest
    : public ::testing::TestWithParam<workloads::Program> {};

TEST_P(ClassSweepTest, LargerClassesTakeMoreCyclesAtOneCore) {
  // Problem size scales total cycles (fixed machine, one core).
  const auto machine = topology::testNuma4();
  const workloads::Program program = GetParam();
  const auto small =
      run(machine, program, workloads::ProblemClass::kS, 1);
  const auto large =
      run(machine, program, workloads::ProblemClass::kA, 1);
  EXPECT_GT(large.counters.totalCycles, small.counters.totalCycles);
  EXPECT_GT(large.counters.instructions, small.counters.instructions);
}

INSTANTIATE_TEST_SUITE_P(NpbPrograms, ClassSweepTest,
                         ::testing::Values(workloads::Program::kEP,
                                           workloads::Program::kIS,
                                           workloads::Program::kFT,
                                           workloads::Program::kCG,
                                           workloads::Program::kSP));

TEST(SimProperties, LocalPlacementBeatsRemoteOnlyTraffic) {
  // Forcing all pages local must not be slower than interleaving across
  // sockets for a single active socket's worth of cores.
  const auto machine = topology::intelNuma24();
  sim::SimConfig local;
  local.memory.placement = mem::PlacementPolicy::kLocal;
  const auto interleaved =
      run(machine, workloads::Program::kCG, workloads::ProblemClass::kB, 24);
  const auto localRun = run(machine, workloads::Program::kCG,
                            workloads::ProblemClass::kB, 24, local);
  EXPECT_LT(localRun.counters.stallCycles,
            interleaved.counters.stallCycles * 11 / 10);
}

TEST(SimProperties, InfiniteLinkBandwidthReducesCrossSocketStalls) {
  auto machine = topology::intelNuma24();
  const auto limited =
      run(machine, workloads::Program::kCG, workloads::ProblemClass::kB, 24);
  machine.linkServiceCycles = 0;
  const auto unlimited =
      run(machine, workloads::Program::kCG, workloads::ProblemClass::kB, 24);
  EXPECT_LT(unlimited.counters.stallCycles, limited.counters.stallCycles);
}

TEST(SimProperties, MoreChannelsReduceContention) {
  // The paper's Sancho-et-al. echo: more memory channels, less contention.
  auto machine = topology::intelNuma24();
  machine.channelsPerController = 1;
  const auto one =
      run(machine, workloads::Program::kSP, workloads::ProblemClass::kA, 12);
  machine.channelsPerController = 6;
  const auto six =
      run(machine, workloads::Program::kSP, workloads::ProblemClass::kA, 12);
  EXPECT_LT(six.counters.totalCycles, one.counters.totalCycles);
}

TEST(SimProperties, RowBufferLocalityMattersForStreams) {
  // With row hits as expensive as misses, streaming workloads slow down.
  auto machine = topology::intelNuma24();
  const auto withLocality =
      run(machine, workloads::Program::kIS, workloads::ProblemClass::kA, 12);
  machine.rowHitServiceCycles = machine.rowMissServiceCycles;
  const auto without =
      run(machine, workloads::Program::kIS, workloads::ProblemClass::kA, 12);
  EXPECT_GT(without.counters.totalCycles, withLocality.counters.totalCycles);
}

TEST(SimProperties, DeterministicServiceReducesVariabilityNotMean) {
  // M/D/1 vs M/M/1: deterministic service cannot be slower on average.
  const auto machine = topology::intelNuma24();
  sim::SimConfig deterministic;
  deterministic.memory.service = mem::ServiceDiscipline::kDeterministic;
  const auto expRun =
      run(machine, workloads::Program::kCG, workloads::ProblemClass::kA, 12);
  const auto detRun = run(machine, workloads::Program::kCG,
                          workloads::ProblemClass::kA, 12, deterministic);
  EXPECT_LT(detRun.counters.stallCycles,
            expRun.counters.stallCycles * 105 / 100);
}

TEST(SimProperties, SmtSiblingsShareCachesProfitably) {
  // Running 2 threads on SMT siblings (shared L1/L2) vs on two distinct
  // physical cores: the CG matrix is shared read-only, so either works,
  // but the run must complete with identical work either way.
  const auto machine = topology::intelNuma24();
  workloads::WorkloadSpec spec;
  spec.program = workloads::Program::kCG;
  spec.problemClass = workloads::ProblemClass::kS;
  spec.threads = 2;
  const auto instance = workloads::makeWorkload(spec);
  sim::MachineSim sim(machine);
  const auto two = sim.run(instance.threads, 2);   // SMT siblings
  const auto four = sim.run(instance.threads, 4);  // distinct physicals
  EXPECT_EQ(two.counters.workCycles(), four.counters.workCycles());
  EXPECT_EQ(two.counters.instructions, four.counters.instructions);
}

TEST(SimProperties, OversubscriptionAddsSwitchOverheadNotWork) {
  const auto machine = topology::testNuma4();
  const auto packed =
      run(machine, workloads::Program::kIS, workloads::ProblemClass::kS, 1);
  const auto spread =
      run(machine, workloads::Program::kIS, workloads::ProblemClass::kS, 4);
  EXPECT_GT(packed.contextSwitches, spread.contextSwitches);
  EXPECT_EQ(packed.counters.workCycles(), spread.counters.workCycles());
}

TEST(SimProperties, SamplerTotalsMatchCounters) {
  const auto machine = topology::intelNuma24();
  sim::SimConfig config;
  config.enableSampler = true;
  const auto p = run(machine, workloads::Program::kFT,
                     workloads::ProblemClass::kS, 12, config);
  std::uint64_t sampled = 0;
  for (std::uint64_t w : p.missWindows) {
    sampled += w;
  }
  EXPECT_EQ(sampled, p.counters.llcMisses);
}

TEST(SimProperties, ControllerRequestsMatchMissesPlusWritebacks) {
  const auto machine = topology::intelNuma24();
  const auto p = run(machine, workloads::Program::kSP,
                     workloads::ProblemClass::kS, 6);
  std::uint64_t requests = 0;
  std::uint64_t writebacks = 0;
  for (const auto& c : p.controllerStats) {
    requests += c.requests;
    writebacks += c.writebacks;
  }
  EXPECT_EQ(requests, p.counters.llcMisses);
  EXPECT_EQ(writebacks, p.writebacks);
}

}  // namespace
}  // namespace occm
