// Property suite for the calendar event queue: its pop order must be
// EXACTLY the (time, seq) total order a binary heap produces, under
// randomized monotone interleavings of pushes and pops — the contract
// the hot-path rewrite rests on (DESIGN.md §14).

#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace occm::sim {
namespace {

struct EventLater {
  bool operator()(const Event& a, const Event& b) const noexcept {
    return a.time != b.time ? a.time > b.time : a.seq > b.seq;
  }
};

using ReferenceQueue =
    std::priority_queue<Event, std::vector<Event>, EventLater>;

void expectSameEvent(const Event& ref, const Event& got,
                     const std::string& context) {
  EXPECT_EQ(ref.time, got.time) << context;
  EXPECT_EQ(ref.seq, got.seq) << context;
  EXPECT_EQ(ref.core, got.core) << context;
  EXPECT_EQ(static_cast<int>(ref.kind), static_cast<int>(got.kind))
      << context;
}

TEST(CalendarEventQueue, StartsEmpty) {
  CalendarEventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_THROW((void)q.pop(), ContractViolation);
}

TEST(CalendarEventQueue, RejectsAbsurdBucketWidth) {
  EXPECT_THROW(CalendarEventQueue{32}, ContractViolation);
  EXPECT_NO_THROW(CalendarEventQueue{0});
  EXPECT_NO_THROW(CalendarEventQueue{31});
}

TEST(CalendarEventQueue, PopsInTimeOrder) {
  CalendarEventQueue q;
  q.push({300, 0, 1, EventKind::kAdvance});
  q.push({100, 1, 2, EventKind::kIssue});
  q.push({200, 2, 3, EventKind::kAdvance});
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop().time, 100u);
  EXPECT_EQ(q.pop().time, 200u);
  EXPECT_EQ(q.pop().time, 300u);
  EXPECT_TRUE(q.empty());
}

// Same-cycle events must come out in push (seq) order: the FIFO
// stability the simulator's tie-break depends on.
TEST(CalendarEventQueue, SameCycleEventsAreFifoStable) {
  CalendarEventQueue q;
  for (std::uint64_t s = 0; s < 32; ++s) {
    q.push({1000, s, static_cast<CoreId>(s % 7), EventKind::kAdvance});
  }
  for (std::uint64_t s = 0; s < 32; ++s) {
    const Event e = q.pop();
    EXPECT_EQ(e.time, 1000u);
    EXPECT_EQ(e.seq, s) << "same-cycle pop order must follow push order";
  }
}

// Events far beyond the 64-bucket window must take the overflow path and
// still come out in exact order after the window advances.
TEST(CalendarEventQueue, OverflowEventsKeepExactOrder) {
  CalendarEventQueue q(/*logWidth=*/0);  // 1-cycle buckets, 64-cycle window
  q.push({5, 0, 0, EventKind::kAdvance});
  q.push({1'000'000, 1, 1, EventKind::kIssue});
  q.push({70, 2, 2, EventKind::kAdvance});      // just past the window
  q.push({1'000'000, 3, 3, EventKind::kAdvance});
  EXPECT_EQ(q.pop().time, 5u);
  EXPECT_EQ(q.pop().time, 70u);
  const Event a = q.pop();
  const Event b = q.pop();
  EXPECT_EQ(a.time, 1'000'000u);
  EXPECT_EQ(a.seq, 1u);
  EXPECT_EQ(b.seq, 3u);
  EXPECT_TRUE(q.empty());
}

// The full equivalence property: randomized monotone interleavings of
// pushes and pops, compared pop-for-pop against the reference heap the
// simulator used before the rewrite. Covers several bucket widths so
// both the in-window and overflow paths are exercised.
TEST(CalendarEventQueue, MatchesReferenceHeapOnRandomInterleavings) {
  Rng rng(0xCA1E17DA);
  for (const unsigned logWidth : {0u, 3u, 6u, 12u}) {
    for (int round = 0; round < 40; ++round) {
      CalendarEventQueue calendar(logWidth);
      ReferenceQueue reference;
      Cycles lastPopTime = 0;
      std::uint64_t seq = 0;
      std::uint64_t pushes = 0;
      std::uint64_t pops = 0;
      for (int step = 0; step < 600; ++step) {
        const bool doPush = reference.empty() || rng.next() % 100 < 55;
        if (doPush) {
          // Monotone contract: pushed times never precede the last pop.
          // Mix short hops (same bucket), medium (window) and rare long
          // jumps (overflow), plus exact ties for the FIFO property.
          Cycles delta = 0;
          const std::uint64_t shape = rng.next() % 100;
          if (shape < 30) {
            delta = 0;  // tie with the frontier
          } else if (shape < 85) {
            delta = rng.next() % 200;
          } else {
            delta = 10'000 + rng.next() % 100'000;
          }
          const Event e{lastPopTime + delta, seq++,
                        static_cast<CoreId>(rng.next() % 24),
                        (rng.next() & 1) != 0 ? EventKind::kIssue
                                              : EventKind::kAdvance};
          calendar.push(e);
          reference.push(e);
          ++pushes;
        } else {
          const Event want = reference.top();
          reference.pop();
          const Event got = calendar.pop();
          expectSameEvent(want, got,
                          "logWidth=" + std::to_string(logWidth) +
                              " round=" + std::to_string(round) +
                              " pop#" + std::to_string(pops));
          lastPopTime = got.time;
          ++pops;
        }
        ASSERT_EQ(calendar.size(), reference.size());
      }
      // Drain: every remaining event must match too.
      while (!reference.empty()) {
        const Event want = reference.top();
        reference.pop();
        const Event got = calendar.pop();
        expectSameEvent(want, got, "drain logWidth=" +
                                       std::to_string(logWidth));
        lastPopTime = got.time;
        ++pops;
      }
      EXPECT_TRUE(calendar.empty());
      EXPECT_EQ(pushes, pops) << "push/pop conservation";
    }
  }
}

// Conservation under a simulated workload shape: one outstanding event
// per "core", as the event loop maintains — the queue's depth must never
// exceed the core count and every push must be matched by a pop.
TEST(CalendarEventQueue, ConservationWithPerCoreOutstandingEvents) {
  Rng rng(7);
  constexpr int kCores = 8;
  CalendarEventQueue q;
  std::uint64_t seq = 0;
  std::uint64_t pushed = 0;
  std::uint64_t popped = 0;
  std::size_t maxDepth = 0;
  for (CoreId c = 0; c < kCores; ++c) {
    q.push({0, seq++, c, EventKind::kAdvance});
    ++pushed;
  }
  std::vector<std::uint64_t> remaining(kCores, 50);
  while (!q.empty()) {
    maxDepth = std::max(maxDepth, q.size());
    const Event e = q.pop();
    ++popped;
    auto& left = remaining[static_cast<std::size_t>(e.core)];
    if (left == 0) {
      continue;  // core done: no follow-up event
    }
    --left;
    q.push({e.time + 1 + rng.next() % 500, seq++, e.core,
            e.kind == EventKind::kAdvance ? EventKind::kIssue
                                          : EventKind::kAdvance});
    ++pushed;
  }
  EXPECT_EQ(pushed, popped);
  EXPECT_EQ(pushed, seq);
  EXPECT_LE(maxDepth, static_cast<std::size_t>(kCores));
}

}  // namespace
}  // namespace occm::sim
