// Tests of the paper's analytical model (section IV).

#include "core/contention_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "topology/presets.hpp"

namespace occm::model {
namespace {

/// Synthetic single-processor machine following eq. 6 exactly:
/// C(n) = r / (mu - n L).
double eq6(double r, double mu, double L, double n) {
  return r / (mu - n * L);
}

TEST(DegreeOfContention, Definition1) {
  EXPECT_DOUBLE_EQ(degreeOfContention(200.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(degreeOfContention(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(degreeOfContention(50.0, 100.0), -0.5);
  EXPECT_THROW((void)degreeOfContention(1.0, 0.0), ContractViolation);
}

TEST(ShapeOf, DerivedFromSpecs) {
  const MachineShape uma = shapeOf(topology::intelUma8());
  EXPECT_EQ(uma.coresPerProcessor, 4);
  EXPECT_EQ(uma.processors, 2);
  EXPECT_EQ(uma.architecture, topology::MemoryArchitecture::kUma);

  const MachineShape numa = shapeOf(topology::intelNuma24());
  EXPECT_EQ(numa.coresPerProcessor, 12);
  EXPECT_EQ(numa.processors, 2);

  const MachineShape amd = shapeOf(topology::amdNuma48());
  EXPECT_EQ(amd.coresPerProcessor, 12);
  EXPECT_EQ(amd.processors, 4);
  EXPECT_EQ(amd.totalCores(), 48);
}

TEST(DefaultFitCores, MatchesThePaperChoices) {
  // Intel UMA: C(1), C(4), C(5).
  EXPECT_EQ(defaultFitCores(shapeOf(topology::intelUma8())),
            (std::vector<int>{1, 4, 5}));
  // Intel NUMA: C(1), C(2), C(12), C(13).
  EXPECT_EQ(defaultFitCores(shapeOf(topology::intelNuma24())),
            (std::vector<int>{1, 2, 12, 13}));
  // AMD NUMA: C(1), C(12), C(13), C(25), C(37)  (paper: five inputs; we
  // add C(2) only on NUMA shapes whose k > 2 — AMD has k = 12, so the
  // list is {1, 2, 12, 13, 25, 37} minus... verify the exact contents).
  const auto amd = defaultFitCores(shapeOf(topology::amdNuma48()));
  EXPECT_EQ(amd, (std::vector<int>{1, 2, 12, 13, 25, 37}));
}

TEST(SingleProcessorModel, RecoversSyntheticParameters) {
  const double r = 1e6;
  const double mu = 1e-2;
  const double L = 5e-4;
  std::vector<MeasuredPoint> points;
  for (int n : {1, 4, 8, 12}) {
    points.push_back({n, eq6(r, mu, L, n)});
  }
  const SingleProcessorModel m = SingleProcessorModel::fit(points);
  EXPECT_NEAR(m.muOverR(), mu / r, 1e-12);
  EXPECT_NEAR(m.lOverR(), L / r, 1e-14);
  EXPECT_NEAR(m.fitInfo().r2, 1.0, 1e-9);
  EXPECT_NEAR(m.saturationCores(), mu / L, 1e-6);
  for (int n = 1; n <= 12; ++n) {
    EXPECT_NEAR(m.predict(n), eq6(r, mu, L, n), 1e-3);
  }
}

TEST(SingleProcessorModel, PredictClampsAtSaturation) {
  std::vector<MeasuredPoint> points = {{1, eq6(1e6, 1e-2, 1e-3, 1)},
                                       {4, eq6(1e6, 1e-2, 1e-3, 4)}};
  const SingleProcessorModel m = SingleProcessorModel::fit(points);
  // Saturation at n = 10; prediction beyond it stays finite and monotone.
  const double at9 = m.predict(9);
  const double at15 = m.predict(15);
  EXPECT_TRUE(std::isfinite(at15));
  EXPECT_GE(at15, at9);
}

TEST(SingleProcessorModel, NoContentionHasInfiniteSaturation) {
  const std::vector<MeasuredPoint> flat = {{1, 100.0}, {4, 100.0}, {8, 100.0}};
  const SingleProcessorModel m = SingleProcessorModel::fit(flat);
  EXPECT_TRUE(std::isinf(m.saturationCores()));
  EXPECT_NEAR(m.predict(8), 100.0, 1e-9);
}

TEST(SingleProcessorModel, RequiresTwoPoints) {
  const std::vector<MeasuredPoint> one = {{1, 100.0}};
  EXPECT_THROW((void)SingleProcessorModel::fit(one), ContractViolation);
}

TEST(ColinearityR2, PerfectForEq6Data) {
  std::vector<MeasuredPoint> points;
  for (int n = 1; n <= 12; ++n) {
    points.push_back({n, eq6(5e5, 2e-2, 1e-3, n)});
  }
  EXPECT_NEAR(colinearityR2(points), 1.0, 1e-9);
}

TEST(ColinearityR2, LowForNonM1Behaviour) {
  // Cycles that grow with the square of n: 1/C is convex, not linear.
  std::vector<MeasuredPoint> points;
  for (int n = 1; n <= 12; ++n) {
    points.push_back({n, 100.0 * n * n});
  }
  EXPECT_LT(colinearityR2(points), 0.9);
}

class NumaModelTest : public ::testing::Test {
 protected:
  // Synthetic NUMA machine following the load-split model exactly:
  // C(n) = Cs(n/m) + rho * n * (m-1)/m with Cs from eq. 6.
  static constexpr double kR = 1e6;
  static constexpr double kMu = 1e-2;
  static constexpr double kL = 4e-4;
  // Small enough that activating the second controller produces the
  // measured dip at n = 13 (Fig. 5b): the load split outweighs the
  // remote penalty.
  static constexpr double kRho = 2.0e6;

  static double truth(int n, int k, int processors) {
    const int m = (n - 1) / k + 1;
    (void)processors;
    const double cs = eq6(kR, kMu, kL, static_cast<double>(n) / m);
    return cs + kRho * n * (m - 1.0) / m;
  }
};

TEST_F(NumaModelTest, RecoversLoadSplitModel) {
  MachineShape shape;
  shape.coresPerProcessor = 12;
  shape.processors = 2;
  shape.architecture = topology::MemoryArchitecture::kNuma;

  std::vector<MeasuredPoint> fitPoints;
  for (int n : defaultFitCores(shape)) {
    fitPoints.push_back({n, truth(n, 12, 2)});
  }
  const ContentionModel m = ContentionModel::fit(shape, fitPoints);
  for (int n = 1; n <= 24; ++n) {
    EXPECT_NEAR(m.predictCycles(n), truth(n, 12, 2),
                0.02 * truth(n, 12, 2))
        << "n = " << n;
  }
}

TEST_F(NumaModelTest, ShowsTheControllerActivationDip) {
  MachineShape shape;
  shape.coresPerProcessor = 12;
  shape.processors = 2;
  shape.architecture = topology::MemoryArchitecture::kNuma;
  std::vector<MeasuredPoint> fitPoints;
  for (int n : defaultFitCores(shape)) {
    fitPoints.push_back({n, truth(n, 12, 2)});
  }
  const ContentionModel m = ContentionModel::fit(shape, fitPoints);
  // The load split makes C(13) < C(12) (second controller comes online)
  // while growth resumes towards 24 — the shape of Fig. 5(b).
  EXPECT_LT(m.predictCycles(13), m.predictCycles(12));
  EXPECT_GT(m.predictCycles(24), m.predictCycles(13));
}

TEST(NumaModel, HeterogeneousSlopesPerProcessor) {
  // Four processors with increasing remote penalties (AMD-style).
  MachineShape shape;
  shape.coresPerProcessor = 4;
  shape.processors = 4;
  shape.architecture = topology::MemoryArchitecture::kNuma;
  // Build synthetic data with per-boundary slopes 1e5, 2e5, 4e5 on top of
  // an eq-6 single-processor curve (so the 1/C fit is exact).
  auto cs = [](double n) { return eq6(1e6, 1e-2, 1e-3, n); };
  auto truth = [&](int n) {
    const int m = (n - 1) / 4 + 1;
    const double slopes[] = {0.0, 1e5, 2e5, 4e5};
    return cs(static_cast<double>(n) / m) +
           slopes[m - 1] * n * (m - 1.0) / m;
  };
  std::vector<MeasuredPoint> fitPoints;
  for (int n : {1, 2, 4, 5, 9, 13}) {
    fitPoints.push_back({n, truth(n)});
  }
  const ContentionModel m = ContentionModel::fit(shape, fitPoints);
  ASSERT_EQ(m.remoteSlopes().size(), 3u);
  EXPECT_NEAR(m.remoteSlopes()[0], 1e5, 2e3);
  EXPECT_NEAR(m.remoteSlopes()[1], 2e5, 2e4);
  EXPECT_NEAR(m.remoteSlopes()[2], 4e5, 4e4);
  for (int n : {6, 10, 16}) {
    EXPECT_NEAR(m.predictCycles(n), truth(n), 0.05 * truth(n));
  }
}

TEST(NumaModel, HomogeneousOptionReusesFirstSlope) {
  MachineShape shape;
  shape.coresPerProcessor = 4;
  shape.processors = 3;
  shape.architecture = topology::MemoryArchitecture::kNuma;
  const std::vector<MeasuredPoint> points = {
      {1, 1000.0}, {4, 1300.0}, {5, 1500.0}};
  ContentionModel::Options options;
  options.homogeneousRemote = true;
  const ContentionModel m = ContentionModel::fit(shape, points, options);
  ASSERT_EQ(m.remoteSlopes().size(), 2u);
  EXPECT_DOUBLE_EQ(m.remoteSlopes()[0], m.remoteSlopes()[1]);
}

TEST(NumaModel, ProportionalModeIsLinearBeyondBoundary) {
  MachineShape shape;
  shape.coresPerProcessor = 4;
  shape.processors = 2;
  shape.architecture = topology::MemoryArchitecture::kNuma;
  const std::vector<MeasuredPoint> points = {
      {1, 1000.0}, {4, 1600.0}, {5, 1900.0}};
  ContentionModel::Options options;
  options.remoteMode = ContentionModel::RemoteMode::kProportional;
  const ContentionModel m = ContentionModel::fit(shape, points, options);
  // Eq. 11 verbatim: C(boundary) + slope * extra, no dip at 5.
  const double c4 = m.predictCycles(4);
  const double slope = m.predictCycles(5) - c4;
  EXPECT_NEAR(m.predictCycles(5), 1900.0, 1.0);
  EXPECT_NEAR(m.predictCycles(7), c4 + 3 * slope, 1e-6);
}

TEST(UmaModel, FollowsEq8Composition) {
  MachineShape shape;
  shape.coresPerProcessor = 4;
  shape.processors = 2;
  shape.architecture = topology::MemoryArchitecture::kUma;
  // Synthetic eq-8 truth: the machine-wide shared-controller queue (eq. 6
  // over all n) plus the second processor's bus correction delta * extra.
  const double r = 1e6;
  const double mu = 1e-2;
  const double L = 8e-4;
  const double delta = 1e7;
  auto cs = [&](int n) { return eq6(r, mu, L, n); };
  auto truth = [&](int n) {
    if (n <= 4) {
      return cs(n);
    }
    return cs(n) + delta * (n - 4);
  };
  std::vector<MeasuredPoint> fitPoints;
  for (int n : defaultFitCores(shape)) {
    fitPoints.push_back({n, truth(n)});
  }
  const ContentionModel m = ContentionModel::fit(shape, fitPoints);
  for (int n = 1; n <= 8; ++n) {
    EXPECT_NEAR(m.predictCycles(n), truth(n), 0.01 * truth(n)) << n;
  }
  EXPECT_NEAR(m.remoteSlopes()[0], delta, 0.02 * delta);
}

TEST(ContentionModel, OmegaUsesMeasuredC1) {
  MachineShape shape;
  shape.coresPerProcessor = 2;
  shape.processors = 1;
  shape.architecture = topology::MemoryArchitecture::kNuma;
  const std::vector<MeasuredPoint> points = {{1, 1000.0}, {2, 1500.0}};
  const ContentionModel m = ContentionModel::fit(shape, points);
  EXPECT_DOUBLE_EQ(m.measuredC1(), 1000.0);
  EXPECT_NEAR(m.predictOmega(2), 0.5, 1e-9);
  EXPECT_NEAR(m.predictOmega(1), 0.0, 1e-9);
}

TEST(ContentionModel, FitRequiresC1) {
  MachineShape shape;
  shape.coresPerProcessor = 4;
  shape.processors = 1;
  shape.architecture = topology::MemoryArchitecture::kNuma;
  const std::vector<MeasuredPoint> points = {{2, 1000.0}, {4, 1200.0}};
  EXPECT_THROW((void)ContentionModel::fit(shape, points), ContractViolation);
}

TEST(ContentionModel, FitRequiresBoundaryPointForSecondProcessor) {
  MachineShape shape;
  shape.coresPerProcessor = 2;
  shape.processors = 2;
  shape.architecture = topology::MemoryArchitecture::kNuma;
  const std::vector<MeasuredPoint> points = {{1, 1000.0}, {2, 1200.0},
                                             {3, 1500.0}};
  EXPECT_NO_THROW(ContentionModel::fit(shape, points));
  const std::vector<MeasuredPoint> missing = {{1, 1000.0}, {2, 1200.0}};
  EXPECT_THROW((void)ContentionModel::fit(shape, missing), ContractViolation);
}

TEST(ContentionModel, PredictOutsideMachineThrows) {
  MachineShape shape;
  shape.coresPerProcessor = 2;
  shape.processors = 1;
  const std::vector<MeasuredPoint> points = {{1, 1000.0}, {2, 1100.0}};
  const ContentionModel m = ContentionModel::fit(shape, points);
  EXPECT_THROW((void)m.predictCycles(0), ContractViolation);
  EXPECT_THROW((void)m.predictCycles(3), ContractViolation);
}

TEST(Validate, ReportsPerPointAndMeanError) {
  MachineShape shape;
  shape.coresPerProcessor = 4;
  shape.processors = 1;
  shape.architecture = topology::MemoryArchitecture::kNuma;
  std::vector<MeasuredPoint> fitPoints;
  for (int n : {1, 4}) {
    fitPoints.push_back({n, eq6(1e6, 1e-2, 5e-4, n)});
  }
  const ContentionModel m = ContentionModel::fit(shape, fitPoints);
  std::vector<MeasuredPoint> all;
  for (int n = 1; n <= 4; ++n) {
    all.push_back({n, eq6(1e6, 1e-2, 5e-4, n) * 1.10});  // 10% off
  }
  const ValidationReport report = validate(m, all);
  ASSERT_EQ(report.rows.size(), 4u);
  for (const auto& row : report.rows) {
    EXPECT_NEAR(row.relativeError, 1.0 - 1.0 / 1.10, 0.01);
    EXPECT_GT(row.measuredCycles, 0.0);
  }
  EXPECT_NEAR(report.meanRelativeError, 1.0 - 1.0 / 1.10, 0.01);
}

TEST(Validate, DegenerateMeasurementsAreFlaggedNotDivided) {
  MachineShape shape;
  shape.coresPerProcessor = 4;
  shape.processors = 1;
  shape.architecture = topology::MemoryArchitecture::kNuma;
  std::vector<MeasuredPoint> fitPoints;
  for (int n : {1, 4}) {
    fitPoints.push_back({n, eq6(1e6, 1e-2, 5e-4, n)});
  }
  const ContentionModel m = ContentionModel::fit(shape, fitPoints);
  // A crashed 3-core run recorded as zero cycles must not poison the
  // report with a division by zero.
  const std::vector<MeasuredPoint> all = {
      {1, eq6(1e6, 1e-2, 5e-4, 1)},
      {2, eq6(1e6, 1e-2, 5e-4, 2)},
      {3, 0.0},
      {4, eq6(1e6, 1e-2, 5e-4, 4)}};
  const ValidationReport report = validate(m, all);
  ASSERT_EQ(report.rows.size(), 4u);
  EXPECT_EQ(report.degenerateRows, 1u);
  EXPECT_TRUE(report.rows[2].degenerate);
  EXPECT_DOUBLE_EQ(report.rows[2].relativeError, 0.0);
  EXPECT_FALSE(report.rows[0].degenerate);
  EXPECT_TRUE(std::isfinite(report.meanRelativeError));
  EXPECT_NEAR(report.meanRelativeError, 0.0, 1e-6);  // 3 clean rows only
}

// ---------------------------------------------------------------------------
// Hardened fitting: typed diagnoses instead of NaN/inf or thrown garbage.

TEST(DegreeOfContentionChecked, DiagnosesBadBaseline) {
  const auto good = degreeOfContentionChecked(200.0, 100.0);
  ASSERT_TRUE(good.hasValue());
  EXPECT_DOUBLE_EQ(*good, 1.0);

  for (double c1 : {0.0, -5.0, std::nan(""),
                    std::numeric_limits<double>::infinity()}) {
    const auto bad = degreeOfContentionChecked(200.0, c1);
    ASSERT_FALSE(bad.hasValue()) << c1;
    EXPECT_EQ(bad.error().kind, FitErrorKind::kNonPositiveCycles);
  }
}

TEST(SingleProcessorModel, ExactlyTwoPointsFitExactly) {
  // The minimum legal input: two distinct points determine the line.
  const double r = 1e6, mu = 1e-2, L = 5e-4;
  const std::vector<MeasuredPoint> two = {{1, eq6(r, mu, L, 1)},
                                          {4, eq6(r, mu, L, 4)}};
  const auto m = SingleProcessorModel::tryFit(two);
  ASSERT_TRUE(m.hasValue());
  EXPECT_NEAR(m->muOverR(), mu / r, 1e-12);
  EXPECT_NEAR(m->lOverR(), L / r, 1e-14);
}

TEST(SingleProcessorModel, TryFitDiagnosesDegenerateInput) {
  const std::vector<MeasuredPoint> one = {{1, 100.0}};
  const auto tooFew = SingleProcessorModel::tryFit(one);
  ASSERT_FALSE(tooFew.hasValue());
  EXPECT_EQ(tooFew.error().kind, FitErrorKind::kTooFewPoints);

  const std::vector<MeasuredPoint> dup = {{3, 100.0}, {3, 120.0}};
  const auto duplicate = SingleProcessorModel::tryFit(dup);
  ASSERT_FALSE(duplicate.hasValue());
  EXPECT_EQ(duplicate.error().kind, FitErrorKind::kDuplicateCores);

  const std::vector<MeasuredPoint> zeroCore = {{0, 100.0}, {1, 120.0}};
  const auto invalidCore = SingleProcessorModel::tryFit(zeroCore);
  ASSERT_FALSE(invalidCore.hasValue());
  EXPECT_EQ(invalidCore.error().kind, FitErrorKind::kInvalidCoreCount);
  EXPECT_EQ(invalidCore.error().cores, 0);

  for (double cycles : {0.0, -1.0, std::nan("")}) {
    const std::vector<MeasuredPoint> bad = {{1, cycles}, {2, 200.0}};
    const auto nonPositive = SingleProcessorModel::tryFit(bad);
    ASSERT_FALSE(nonPositive.hasValue()) << cycles;
    EXPECT_EQ(nonPositive.error().kind, FitErrorKind::kNonPositiveCycles);
  }
}

TEST(SingleProcessorModel, TryFitDiagnosesSaturatedRegime) {
  // 1/C = -0.5 + n: negative intercept, i.e. the fitted queue is already
  // past saturation inside the measured range.
  const std::vector<MeasuredPoint> points = {{1, 2.0}, {2, 1.0 / 1.5}};
  const auto m = SingleProcessorModel::tryFit(points);
  ASSERT_FALSE(m.hasValue());
  EXPECT_EQ(m.error().kind, FitErrorKind::kSaturated);
  EXPECT_NE(m.error().describe().find("saturated"), std::string::npos);
}

TEST(SingleProcessorModel, DecreasingCyclesMeanNoSaturation) {
  // C(n) shrinking with n (positive cache effects): fitted contention is
  // non-positive, so the queue never saturates and omega is negative.
  const std::vector<MeasuredPoint> points = {{1, 200.0}, {2, 150.0},
                                             {4, 100.0}};
  const auto m = SingleProcessorModel::tryFit(points);
  ASSERT_TRUE(m.hasValue());
  EXPECT_LE(m->lOverR(), 0.0);
  EXPECT_TRUE(std::isinf(m->saturationCores()));
  EXPECT_GT(m->predict(4), 0.0);
}

TEST(SingleProcessorModel, FitErrorSurfacesInThrowingWrapper) {
  const std::vector<MeasuredPoint> one = {{1, 100.0}};
  try {
    (void)SingleProcessorModel::fit(one);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("too-few-points"),
              std::string::npos);
  }
}

TEST(SingleProcessorModel, TheilSenShrugsOffOneOutlier) {
  const double r = 1e6, mu = 1e-2, L = 5e-4;
  std::vector<MeasuredPoint> points;
  for (int n = 1; n <= 8; ++n) {
    points.push_back({n, eq6(r, mu, L, n)});
  }
  points[3].totalCycles *= 3.0;  // one corrupted 4-core run

  const auto ols = SingleProcessorModel::tryFit(points, FitMethod::kOls);
  const auto robust =
      SingleProcessorModel::tryFit(points, FitMethod::kTheilSen);
  ASSERT_TRUE(ols.hasValue());
  ASSERT_TRUE(robust.hasValue());
  // OLS is dragged ~10% off the true intercept; the median-of-slopes
  // estimator recovers the clean line exactly (21 of 28 pairs are clean).
  EXPECT_GT(std::abs(ols->muOverR() - mu / r), 5e-10);
  EXPECT_NEAR(robust->muOverR(), mu / r, 1e-12);
  EXPECT_NEAR(robust->lOverR(), L / r, 1e-14);
}

TEST(SingleProcessorModel, RobustFallbackSwitchesOnPoorColinearity) {
  const double r = 1e6, mu = 1e-2, L = 5e-4;
  std::vector<MeasuredPoint> points;
  for (int n = 1; n <= 8; ++n) {
    points.push_back({n, eq6(r, mu, L, n)});
  }
  points[3].totalCycles *= 3.0;  // drops the OLS R^2 to ~0.24

  const auto fallback =
      SingleProcessorModel::tryFit(points, FitMethod::kRobustFallback);
  const auto theilSen =
      SingleProcessorModel::tryFit(points, FitMethod::kTheilSen);
  ASSERT_TRUE(fallback.hasValue());
  ASSERT_TRUE(theilSen.hasValue());
  EXPECT_DOUBLE_EQ(fallback->muOverR(), theilSen->muOverR());
  EXPECT_DOUBLE_EQ(fallback->lOverR(), theilSen->lOverR());

  // Clean data stays on the paper's OLS estimator.
  std::vector<MeasuredPoint> clean;
  for (int n = 1; n <= 8; ++n) {
    clean.push_back({n, eq6(r, mu, L, n)});
  }
  const auto onClean =
      SingleProcessorModel::tryFit(clean, FitMethod::kRobustFallback);
  const auto olsClean = SingleProcessorModel::tryFit(clean, FitMethod::kOls);
  ASSERT_TRUE(onClean.hasValue());
  ASSERT_TRUE(olsClean.hasValue());
  EXPECT_DOUBLE_EQ(onClean->muOverR(), olsClean->muOverR());
}

TEST(ContentionModel, TryFitDiagnosesMissingC1) {
  MachineShape shape;
  shape.coresPerProcessor = 4;
  shape.processors = 1;
  shape.architecture = topology::MemoryArchitecture::kNuma;
  const std::vector<MeasuredPoint> points = {{2, 1000.0}, {4, 1200.0}};
  const auto m = ContentionModel::tryFit(shape, points);
  ASSERT_FALSE(m.hasValue());
  EXPECT_EQ(m.error().kind, FitErrorKind::kMissingC1);
  // The diagnosis names what IS there, so the fix is obvious.
  EXPECT_NE(m.error().message.find("2, 4"), std::string::npos);
}

TEST(ContentionModel, TryFitDiagnosesMissingBoundary) {
  MachineShape shape;
  shape.coresPerProcessor = 2;
  shape.processors = 2;
  shape.architecture = topology::MemoryArchitecture::kNuma;
  const std::vector<MeasuredPoint> missing = {{1, 1000.0}, {2, 1200.0}};
  const auto m = ContentionModel::tryFit(shape, missing);
  ASSERT_FALSE(m.hasValue());
  EXPECT_EQ(m.error().kind, FitErrorKind::kMissingBoundary);
  EXPECT_NE(m.error().message.find("1, 2"), std::string::npos);

  // Homogeneous-remote mode still needs the first boundary point.
  ContentionModel::Options options;
  options.homogeneousRemote = true;
  const auto homogeneous = ContentionModel::tryFit(shape, missing, options);
  ASSERT_FALSE(homogeneous.hasValue());
  EXPECT_EQ(homogeneous.error().kind, FitErrorKind::kMissingBoundary);
}

TEST(ContentionModel, TryFitDiagnosesBadShapeAndForeignPoints) {
  MachineShape badShape;
  badShape.coresPerProcessor = 0;
  badShape.processors = 2;
  const std::vector<MeasuredPoint> points = {{1, 1000.0}, {2, 1200.0}};
  const auto shapeError = ContentionModel::tryFit(badShape, points);
  ASSERT_FALSE(shapeError.hasValue());
  EXPECT_EQ(shapeError.error().kind, FitErrorKind::kInvalidShape);

  MachineShape shape;
  shape.coresPerProcessor = 2;
  shape.processors = 1;
  const std::vector<MeasuredPoint> outside = {{1, 1000.0}, {5, 1200.0}};
  const auto coreError = ContentionModel::tryFit(shape, outside);
  ASSERT_FALSE(coreError.hasValue());
  EXPECT_EQ(coreError.error().kind, FitErrorKind::kInvalidCoreCount);
  EXPECT_EQ(coreError.error().cores, 5);
}

TEST(ContentionModel, TryFitMatchesThrowingFitOnGoodInput) {
  MachineShape shape;
  shape.coresPerProcessor = 2;
  shape.processors = 2;
  shape.architecture = topology::MemoryArchitecture::kNuma;
  const std::vector<MeasuredPoint> points = {{1, 1000.0}, {2, 1200.0},
                                             {3, 1500.0}};
  const auto tried = ContentionModel::tryFit(shape, points);
  ASSERT_TRUE(tried.hasValue());
  const ContentionModel thrown = ContentionModel::fit(shape, points);
  for (int n = 1; n <= 4; ++n) {
    EXPECT_DOUBLE_EQ(tried->predictCycles(n), thrown.predictCycles(n)) << n;
  }
}

TEST(ContentionModel, FitAtProcessorBoundaryPointsOnly) {
  // Exactly the paper's minimal NUMA input set {1, 2, k, k+1} with k = 2:
  // every point sits on or adjacent to a boundary.
  MachineShape shape;
  shape.coresPerProcessor = 2;
  shape.processors = 2;
  shape.architecture = topology::MemoryArchitecture::kNuma;
  const std::vector<MeasuredPoint> points = {{1, 1000.0}, {2, 1300.0},
                                             {3, 1900.0}, {4, 2600.0}};
  const auto m = ContentionModel::tryFit(shape, points);
  ASSERT_TRUE(m.hasValue());
  EXPECT_GT(m->predictCycles(4), m->predictCycles(1));
  EXPECT_NO_THROW((void)m->predictOmega(4));
}

}  // namespace
}  // namespace occm::model
