#include "core/burstiness.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace occm::model {
namespace {

TEST(Figure4Grid, LogSpacedTicks) {
  const auto grid = figure4Grid(2000.0);
  const std::vector<double> expected = {1,   2,   5,   10,  20,   50,
                                        100, 200, 500, 1000, 2000};
  EXPECT_EQ(grid, expected);
}

TEST(Figure4Grid, RespectsMax) {
  const auto grid = figure4Grid(60.0);
  EXPECT_EQ(grid.back(), 50.0);
}

TEST(IsBursty, Criterion) {
  EXPECT_TRUE(isBursty(1.5, 10.0, 5.0));    // high cv
  EXPECT_TRUE(isBursty(0.5, 100.0, 5.0));   // huge max/mean
  EXPECT_FALSE(isBursty(0.2, 12.0, 10.0));  // tight around the mean
  EXPECT_FALSE(isBursty(0.0, 0.0, 0.0));    // no traffic
}

TEST(AnalyzeBurstiness, HeavyTailedWindowsAreBursty) {
  // Small-problem pattern: mostly idle windows, occasional Pareto bursts.
  Rng rng(5);
  std::vector<std::uint64_t> windows(20000, 0);
  for (int i = 0; i < 800; ++i) {
    const auto idx = rng.below(windows.size());
    windows[idx] = static_cast<std::uint64_t>(
        rng.boundedPareto(1.2, 1.0, 2000.0));
  }
  const BurstinessReport report = analyzeBurstiness(windows);
  EXPECT_TRUE(report.bursty);
  EXPECT_GT(report.idleFraction, 0.9);
  EXPECT_GT(report.maxBurst / report.meanBurst, 8.0);
  EXPECT_FALSE(report.ccdf.empty());
}

TEST(AnalyzeBurstiness, SaturatedTrafficIsNotBursty) {
  // Large-problem pattern: every window carries a near-constant load.
  Rng rng(7);
  std::vector<std::uint64_t> windows;
  for (int i = 0; i < 20000; ++i) {
    windows.push_back(static_cast<std::uint64_t>(180 + rng.below(40)));
  }
  const BurstinessReport report = analyzeBurstiness(windows);
  EXPECT_FALSE(report.bursty);
  EXPECT_EQ(report.idleFraction, 0.0);
  EXPECT_LT(report.cv, 0.2);
}

TEST(AnalyzeBurstiness, ParetoTailFitIsDiagonal) {
  Rng rng(11);
  std::vector<std::uint64_t> windows;
  for (int i = 0; i < 100000; ++i) {
    windows.push_back(static_cast<std::uint64_t>(
        rng.boundedPareto(1.3, 1.0, 100000.0)));
  }
  const BurstinessReport report = analyzeBurstiness(windows);
  ASSERT_GT(report.tail.points, 5u);
  EXPECT_NEAR(report.tail.slope, -1.3, 0.35);
  EXPECT_GT(report.tail.r2, 0.9);
}

TEST(AnalyzeBurstiness, AllIdleReportsNoTraffic) {
  const std::vector<std::uint64_t> windows(100, 0);
  const BurstinessReport report = analyzeBurstiness(windows);
  EXPECT_FALSE(report.bursty);
  EXPECT_EQ(report.activeWindows, 0u);
  EXPECT_EQ(report.idleFraction, 1.0);
}

TEST(AnalyzeBurstiness, EmptyThrows) {
  const std::vector<std::uint64_t> empty;
  EXPECT_THROW((void)analyzeBurstiness(empty), ContractViolation);
}

TEST(AnalyzeBurstiness, CcdfMatchesCounts) {
  // 10 windows of size 1 and 10 of size 100.
  std::vector<std::uint64_t> windows;
  for (int i = 0; i < 10; ++i) {
    windows.push_back(1);
    windows.push_back(100);
  }
  const BurstinessReport report = analyzeBurstiness(windows);
  // P(B > 1) = 0.5; P(B > 100) = 0.
  for (const auto& point : report.ccdf) {
    if (point.x == 1.0) {
      EXPECT_DOUBLE_EQ(point.probability, 0.5);
    }
    if (point.x >= 100.0) {
      EXPECT_DOUBLE_EQ(point.probability, 0.0);
    }
  }
}

}  // namespace
}  // namespace occm::model
