#include "core/speedup.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace occm::model {
namespace {

ContentionModel fitLinearContention(double perCoreGrowth, int k = 4,
                                    int processors = 1) {
  // C(n) = 1000 * (1 + perCoreGrowth * (n - 1)) approximately, via two
  // points (exact on eq. 6 only for the right pairs; good enough here).
  MachineShape shape;
  shape.coresPerProcessor = k;
  shape.processors = processors;
  shape.architecture = topology::MemoryArchitecture::kNuma;
  std::vector<MeasuredPoint> points = {
      {1, 1000.0}, {k, 1000.0 * (1.0 + perCoreGrowth * (k - 1))}};
  if (processors > 1) {
    points.push_back(
        {k + 1, 1000.0 * (1.0 + perCoreGrowth * k)});
  }
  return ContentionModel::fit(shape, points);
}

TEST(Speedup, NoContentionIsLinear) {
  const ContentionModel m = fitLinearContention(0.0);
  for (int n = 1; n <= 4; ++n) {
    EXPECT_NEAR(predictSpeedup(m, n), static_cast<double>(n), 1e-6);
    EXPECT_NEAR(predictEfficiency(m, n), 1.0, 1e-6);
  }
}

TEST(Speedup, ContentionCurbsSpeedup) {
  const ContentionModel m = fitLinearContention(0.5);
  EXPECT_LT(predictSpeedup(m, 4), 4.0);
  EXPECT_GT(predictSpeedup(m, 4), 1.0);
  EXPECT_LT(predictEfficiency(m, 4), predictEfficiency(m, 2));
}

TEST(Speedup, SpeedupEqualsNOverOnePlusOmega) {
  const ContentionModel m = fitLinearContention(0.3);
  for (int n = 1; n <= 4; ++n) {
    EXPECT_NEAR(predictSpeedup(m, n),
                n / (1.0 + m.predictOmega(n)), 1e-9);
  }
}

TEST(AdviseCores, PicksThePeak) {
  // Strong contention: speedup peaks before the machine is full.
  MachineShape shape;
  shape.coresPerProcessor = 8;
  shape.processors = 1;
  shape.architecture = topology::MemoryArchitecture::kNuma;
  // Saturating queue: C(n) = 1e6 / (0.01 - 0.001 n) -> saturation at 10.
  std::vector<MeasuredPoint> points;
  for (int n : {1, 4, 8}) {
    points.push_back({n, 1e6 / (0.01 - 0.001 * n)});
  }
  const ContentionModel m = ContentionModel::fit(shape, points);
  const SpeedupAdvice advice = adviseCores(m, 0.5);
  EXPECT_GE(advice.bestCores, 2);
  EXPECT_LE(advice.bestCores, 8);
  EXPECT_GT(advice.bestSpeedup, 1.0);
  EXPECT_LE(advice.efficientCores, advice.bestCores);
}

TEST(AdviseCores, ThresholdValidation) {
  const ContentionModel m = fitLinearContention(0.1);
  EXPECT_THROW((void)adviseCores(m, 0.0), ContractViolation);
  EXPECT_THROW((void)adviseCores(m, 1.5), ContractViolation);
  EXPECT_NO_THROW((void)adviseCores(m, 1.0));
}

TEST(MeasuredSpeedup, Definition) {
  // 1000 cycles on 1 core; 2000 total on 4 cores -> wall 500 -> 2x.
  EXPECT_NEAR(measuredSpeedup(1000.0, 2000.0, 4), 2.0, 1e-12);
  EXPECT_THROW((void)measuredSpeedup(0.0, 1.0, 1), ContractViolation);
  EXPECT_THROW((void)measuredSpeedup(1.0, 1.0, 0), ContractViolation);
}

}  // namespace
}  // namespace occm::model
