// Property-style corruption suite: seeded random mutations (truncation,
// bit flips, chunk duplication, chunk deletion, byte insertion) over the
// three persisted formats — sweep checkpoints, sweep CSV tables and
// serialized fault plans. Every mutated input must produce a typed error
// or a cleanly parsed value; never a crash, an assert, or an escaped
// exception. A sample of mutants additionally goes through the on-disk
// loadOrQuarantine path to audit the quarantine rename.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/csv.hpp"
#include "analysis/sweep_state.hpp"
#include "common/rng.hpp"
#include "fault/fault_plan.hpp"
#include "fault/fault_plan_io.hpp"

namespace occm::analysis {
namespace {

/// One seeded structural mutation of `text`.
std::string mutate(const std::string& text, Rng& rng) {
  std::string out = text;
  switch (rng.next() % 5) {
    case 0: {  // truncate at a random byte (mid-write kill)
      out.resize(rng.next() % (out.size() + 1));
      break;
    }
    case 1: {  // flip one bit (at-rest corruption)
      if (!out.empty()) {
        const std::size_t at = rng.next() % out.size();
        const unsigned char bit = static_cast<unsigned char>(1U << (rng.next() % 8));
        out[at] = static_cast<char>(static_cast<unsigned char>(out[at]) ^ bit);
      }
      break;
    }
    case 2: {  // duplicate a random chunk (botched append / double write)
      if (!out.empty()) {
        const std::size_t from = rng.next() % out.size();
        const std::size_t len = 1 + rng.next() % 64;
        out.insert(rng.next() % (out.size() + 1),
                   out.substr(from, std::min(len, out.size() - from)));
      }
      break;
    }
    case 3: {  // delete a random chunk
      if (!out.empty()) {
        const std::size_t from = rng.next() % out.size();
        const std::size_t len = 1 + rng.next() % 32;
        out.erase(from, std::min(len, out.size() - from));
      }
      break;
    }
    default: {  // insert a random byte
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(
                                   rng.next() % (out.size() + 1)),
                 static_cast<char>(rng.next() & 0xFF));
      break;
    }
  }
  return out;
}

SweepCheckpoint sampleCheckpoint() {
  SweepCheckpoint ckpt;
  ckpt.program = "cg.S";
  ckpt.machine = "test-numa-4";
  ckpt.seed = 0xDEADBEEFCAFEF00DULL;
  ckpt.threads = 4;
  ckpt.runs.push_back({1, 1.25e6, 3.5e5, 1.25e6});
  ckpt.runs.push_back({2, 1.5e6, 5.0e5, 7.6e5});
  ckpt.runs.push_back({4, 2.25e6, 9.1e5, 6.0e5});
  ckpt.failures.push_back({3, 2, "synthetic \"quoted\" crash\n", true, 4,
                           RunFailureKind::kException, 0, "", "", ""});
  return ckpt;
}

std::string sampleSweepCsv() {
  SweepResult sweep;
  for (int n : {1, 2, 4}) {
    perf::RunProfile p;
    p.activeCores = n;
    p.counters.totalCycles = static_cast<Cycles>(1'000'000 * n);
    p.counters.stallCycles = static_cast<Cycles>(300'000 * n);
    p.makespan = static_cast<Cycles>(1'000'000 / n);
    sweep.profiles.push_back(p);
  }
  return sweepToCsv(sweep);
}

std::string sampleFaultPlanJson() {
  fault::FaultPlan plan;
  plan.controllerOutage(1, 20'000, 60'000)
      .controllerDegrade(0, 10'000, 30'000, 2.5)
      .coreThrottle(2, 5'000, 15'000, 3.0)
      .eccSpike(0, 70'000, 90'000, 0.05, 200)
      .backgroundTraffic(1, 40'000, 80'000, 512);
  return fault::toJson(plan);
}

TEST(CorruptionSuite, CheckpointMutationsNeverCrashOrSilentlyMisparse) {
  const std::string pristine = sampleCheckpoint().toJson();
  ASSERT_TRUE(SweepCheckpoint::parseChecked(pristine).hasValue());
  Rng rng(0x5EED0001);
  int typedErrors = 0;
  for (int i = 0; i < 120; ++i) {
    const std::string mutant = mutate(pristine, rng);
    try {
      const auto result = SweepCheckpoint::parseChecked(mutant);
      if (result.hasValue()) {
        // A mutant that still parses must be internally consistent: its
        // re-serialization round-trips (no silent half-parsed state).
        const auto again = SweepCheckpoint::parseChecked(result->toJson());
        EXPECT_TRUE(again.hasValue()) << "mutation " << i;
      } else {
        ++typedErrors;
        EXPECT_FALSE(result.error().message().empty());
      }
    } catch (...) {
      ADD_FAILURE() << "parseChecked threw on mutation " << i << ": "
                    << mutant.substr(0, 120);
    }
  }
  // Structural mutations overwhelmingly break the format; if nearly all
  // of them still "parsed", the checker is vacuous.
  EXPECT_GT(typedErrors, 60) << "suspiciously tolerant parser";
}

TEST(CorruptionSuite, CheckpointBitFlipsInValuesAreCaughtByCrc) {
  // Target digits specifically: flip one numeric character inside a run
  // record. The JSON stays syntactically valid, so only the per-record
  // CRC can catch it.
  const std::string pristine = sampleCheckpoint().toJson();
  const std::size_t runsAt = pristine.find("\"runs\"");
  ASSERT_NE(runsAt, std::string::npos);
  Rng rng(0x5EED0002);
  int caught = 0;
  int attempts = 0;
  for (std::size_t at = runsAt; at < pristine.size() && attempts < 40; ++at) {
    const char c = pristine[at];
    if (c < '0' || c > '9') {
      continue;
    }
    ++attempts;
    std::string mutant = pristine;
    mutant[at] = c == '9' ? '0' : static_cast<char>(c + 1);
    const auto result = SweepCheckpoint::parseChecked(mutant);
    if (!result.hasValue()) {
      ++caught;
      EXPECT_NE(result.error().kind, CheckpointErrorKind::kIoError);
    }
  }
  // Every single-digit change lands in a value or a CRC field; both must
  // fail the record's checksum (a changed "cores" key digit would change
  // the payload too). Nothing may parse as a silently different sweep.
  EXPECT_EQ(caught, attempts);
}

TEST(CorruptionSuite, SweepCsvMutationsYieldTypedErrorsOrValidRows) {
  const std::string pristine = sampleSweepCsv();
  ASSERT_TRUE(parseSweepCsv(pristine).hasValue());
  Rng rng(0x5EED0003);
  for (int i = 0; i < 100; ++i) {
    const std::string mutant = mutate(pristine, rng);
    try {
      const auto result = parseSweepCsv(mutant);
      if (!result.hasValue()) {
        EXPECT_GT(result.error().line, 0u);
        EXPECT_FALSE(result.error().message().empty());
      } else {
        for (const SweepCsvRow& row : *result) {
          EXPECT_GE(row.cores, 1);  // validated shape, not garbage
          EXPECT_GE(row.totalCycles, 0.0);
        }
      }
    } catch (...) {
      ADD_FAILURE() << "parseSweepCsv threw on mutation " << i;
    }
  }
}

TEST(CorruptionSuite, FaultPlanMutationsYieldTypedErrorsOrValidPlans) {
  const std::string pristine = sampleFaultPlanJson();
  const auto roundTrip = fault::planFromJson(pristine);
  ASSERT_TRUE(roundTrip.hasValue()) << roundTrip.error().message();
  ASSERT_EQ(fault::toJson(*roundTrip), pristine);
  Rng rng(0x5EED0004);
  for (int i = 0; i < 100; ++i) {
    const std::string mutant = mutate(pristine, rng);
    try {
      const auto result = fault::planFromJson(mutant);
      if (!result.hasValue()) {
        EXPECT_FALSE(result.error().message().empty());
      } else {
        // A surviving plan must satisfy the builder contracts (the loader
        // replays events through them), so every window is well-formed.
        for (const fault::FaultEvent& e : result->events()) {
          EXPECT_LT(e.start, e.end);
        }
      }
    } catch (...) {
      ADD_FAILURE() << "planFromJson threw on mutation " << i;
    }
  }
}

TEST(CorruptionSuite, OnDiskMutantsQuarantineAndFreshStart) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "occm_corrupt_probe.json")
          .string();
  const std::string pristine = sampleCheckpoint().toJson();
  Rng rng(0x5EED0005);
  for (int i = 0; i < 24; ++i) {
    const std::string mutant = mutate(pristine, rng);
    std::filesystem::remove(path + ".corrupt");
    {
      std::ofstream out(path, std::ios::trunc | std::ios::binary);
      out << mutant;
    }
    const auto result = SweepCheckpoint::loadOrQuarantine(path);
    if (result.hasValue()) {
      // Still-parsable mutant: the file must be left in place untouched.
      EXPECT_TRUE(std::filesystem::exists(path));
      EXPECT_FALSE(std::filesystem::exists(path + ".corrupt"));
    } else {
      EXPECT_NE(result.error().kind, CheckpointErrorKind::kMissing);
      EXPECT_EQ(result.error().quarantinedTo, path + ".corrupt");
      EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));
      EXPECT_FALSE(std::filesystem::exists(path));
      EXPECT_NE(result.error().message().find("quarantined"),
                std::string::npos);
    }
  }
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".corrupt");

  // Missing files are a fresh start, not corruption: no quarantine.
  const auto missing = SweepCheckpoint::loadOrQuarantine(path);
  ASSERT_FALSE(missing.hasValue());
  EXPECT_EQ(missing.error().kind, CheckpointErrorKind::kMissing);
  EXPECT_TRUE(missing.error().quarantinedTo.empty());
}

TEST(CorruptionSuite, CheckpointTypedErrorsNameKindAndOffset) {
  // Truncation vs garbage vs version skew vs CRC mismatch, each with a
  // byte offset a human can act on.
  const std::string pristine = sampleCheckpoint().toJson();

  const auto truncated =
      SweepCheckpoint::parseChecked(pristine.substr(0, pristine.size() / 2));
  ASSERT_FALSE(truncated.hasValue());
  EXPECT_EQ(truncated.error().kind, CheckpointErrorKind::kTruncated);

  const auto garbage = SweepCheckpoint::parseChecked("][ nonsense");
  ASSERT_FALSE(garbage.hasValue());
  EXPECT_EQ(garbage.error().kind, CheckpointErrorKind::kSyntax);
  EXPECT_EQ(garbage.error().byteOffset, 0u);

  std::string skewed = pristine;
  const std::size_t vAt = skewed.find("\"version\": 2");
  ASSERT_NE(vAt, std::string::npos);
  skewed.replace(vAt, 12, "\"version\": 9");
  const auto skew = SweepCheckpoint::parseChecked(skewed);
  ASSERT_FALSE(skew.hasValue());
  EXPECT_EQ(skew.error().kind, CheckpointErrorKind::kVersionSkew);
  EXPECT_NE(skew.error().detail.find("version 9"), std::string::npos);

  std::string flipped = pristine;
  const std::size_t totalAt = flipped.find("\"totalCycles\": 1250000");
  ASSERT_NE(totalAt, std::string::npos);
  flipped.replace(totalAt, 22, "\"totalCycles\": 1250001");
  const auto crc = SweepCheckpoint::parseChecked(flipped);
  ASSERT_FALSE(crc.hasValue());
  EXPECT_EQ(crc.error().kind, CheckpointErrorKind::kCrcMismatch);
  EXPECT_GT(crc.error().byteOffset, 0u);
  EXPECT_NE(crc.error().detail.find("crc mismatch"), std::string::npos);
}

TEST(CorruptionSuite, LegacyV1CheckpointStillLoads) {
  // A pre-CRC checkpoint: no version header, no crc fields, no kind.
  const std::string v1 =
      "{\n"
      "  \"program\": \"cg.S\",\n"
      "  \"machine\": \"old-box\",\n"
      "  \"seed\": \"7\",\n"
      "  \"threads\": 4,\n"
      "  \"runs\": [\n"
      "    {\"cores\": 1, \"totalCycles\": 100, \"stallCycles\": 25, "
      "\"makespan\": 100},\n"
      "    {\"cores\": 2, \"totalCycles\": 130, \"stallCycles\": 40, "
      "\"makespan\": 70}\n"
      "  ],\n"
      "  \"failures\": [\n"
      "    {\"cores\": 3, \"attempts\": 2, \"recovered\": false, "
      "\"error\": \"boom\"}\n"
      "  ]\n"
      "}\n";
  const auto parsed = SweepCheckpoint::parseChecked(v1);
  ASSERT_TRUE(parsed.hasValue()) << parsed.error().message();
  EXPECT_EQ(parsed->runs.size(), 2u);
  EXPECT_EQ(parsed->failures.size(), 1u);
  EXPECT_EQ(parsed->failures[0].kind, RunFailureKind::kException);
  EXPECT_EQ(parsed->failures[0].poolSize, 1);  // pre-parallel default
  // Re-saving upgrades to v2 with CRCs.
  const std::string upgraded = parsed->toJson();
  EXPECT_NE(upgraded.find("\"version\": 2"), std::string::npos);
  EXPECT_NE(upgraded.find("\"crc\""), std::string::npos);
  EXPECT_TRUE(SweepCheckpoint::parseChecked(upgraded).hasValue());
}

TEST(CorruptionSuite, CheckpointRoundTripsAllFailureKinds) {
  SweepCheckpoint ckpt = sampleCheckpoint();
  ckpt.failures.push_back({5, 1, "over budget", false, 2,
                           RunFailureKind::kTimeout, 0, "", "", ""});
  ckpt.failures.push_back({6, 1, "ctrl-c", false, 2,
                           RunFailureKind::kCancelled, 0, "", "", ""});
  ckpt.failures.push_back({7, 2, "child terminated by signal 11", false, 2,
                           RunFailureKind::kCrash, 11, "address-space",
                           "occm: injected crash\nSegmentation fault", ""});
  const auto back = SweepCheckpoint::parseChecked(ckpt.toJson());
  ASSERT_TRUE(back.hasValue()) << back.error().message();
  ASSERT_EQ(back->failures.size(), 4u);
  EXPECT_EQ(back->failures[0].kind, RunFailureKind::kException);
  EXPECT_EQ(back->failures[1].kind, RunFailureKind::kTimeout);
  EXPECT_EQ(back->failures[2].kind, RunFailureKind::kCancelled);
  EXPECT_EQ(back->failures[3].kind, RunFailureKind::kCrash);
  EXPECT_EQ(back->failures[3].signal, 11);
  EXPECT_EQ(back->failures[3].rlimit, "address-space");
  EXPECT_EQ(back->failures[3].stderrTail,
            "occm: injected crash\nSegmentation fault");
  EXPECT_EQ(back->toJson(), ckpt.toJson());
}

}  // namespace
}  // namespace occm::analysis
