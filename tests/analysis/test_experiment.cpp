// Tests of the experiment harness on the small test machine (fast runs).

#include "analysis/experiment.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "topology/presets.hpp"

namespace occm::analysis {
namespace {

SweepConfig smallConfig() {
  SweepConfig config;
  config.machine = topology::testNuma4();
  config.workload.program = workloads::Program::kCG;
  config.workload.problemClass = workloads::ProblemClass::kS;
  config.workload.threads = 4;
  return config;
}

TEST(RunOnce, ProducesAProfile) {
  const SweepConfig config = smallConfig();
  const perf::RunProfile p =
      runOnce(config.machine, config.workload, 2);
  EXPECT_EQ(p.activeCores, 2);
  EXPECT_EQ(p.threads, 4);
  EXPECT_EQ(p.program, "CG.S");
  EXPECT_GT(p.counters.totalCycles, 0u);
}

TEST(RunOnce, DefaultsThreadsToMachineCores) {
  SweepConfig config = smallConfig();
  config.workload.threads = 0;
  const perf::RunProfile p = runOnce(config.machine, config.workload, 1);
  EXPECT_EQ(p.threads, 4);
}

TEST(RunSweep, CoversAllCoreCountsByDefault) {
  const SweepResult sweep = runSweep(smallConfig());
  ASSERT_EQ(sweep.profiles.size(), 4u);
  for (int n = 1; n <= 4; ++n) {
    EXPECT_EQ(sweep.at(n).activeCores, n);
  }
  const auto points = sweep.points();
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].cores, 1);
  EXPECT_GT(points[0].totalCycles, 0.0);
}

TEST(RunSweep, ExplicitCoreCounts) {
  SweepConfig config = smallConfig();
  config.coreCounts = {1, 3};
  const SweepResult sweep = runSweep(config);
  ASSERT_EQ(sweep.profiles.size(), 2u);
  EXPECT_THROW((void)sweep.at(2), ContractViolation);
}

TEST(RunSweep, MissingRunDiagnosisNamesWhatIsPresent) {
  SweepConfig config = smallConfig();
  config.coreCounts = {1, 3};
  const SweepResult sweep = runSweep(config);
  try {
    (void)sweep.at(2);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("n = 2"), std::string::npos) << what;
    EXPECT_NE(what.find("core counts present: 1, 3"), std::string::npos)
        << what;
  }
}

TEST(RunSweep, OmegasWithoutBaselineRunExplainsItself) {
  SweepConfig config = smallConfig();
  config.coreCounts = {2, 4};  // no 1-core run to anchor omega
  const SweepResult sweep = runSweep(config);
  try {
    (void)sweep.omegas();
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1-core"), std::string::npos) << what;
    EXPECT_NE(what.find("2, 4"), std::string::npos) << what;
  }
}

TEST(RunSweep, OmegasNormalizedToC1) {
  const SweepResult sweep = runSweep(smallConfig());
  const auto omegas = sweep.omegas();
  ASSERT_EQ(omegas.size(), 4u);
  EXPECT_DOUBLE_EQ(omegas[0], 0.0);
}

TEST(PointsAt, SelectsSubset) {
  const SweepResult sweep = runSweep(smallConfig());
  const auto points = pointsAt(sweep, {1, 2, 3});
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[2].cores, 3);
  EXPECT_THROW((void)pointsAt(sweep, {9}), ContractViolation);
}

TEST(RunSweep, SweepMatchesIndividualRuns) {
  // Replaying the same workload per core count must equal fresh runs.
  const SweepConfig config = smallConfig();
  const SweepResult sweep = runSweep(config);
  const perf::RunProfile solo = runOnce(config.machine, config.workload, 2);
  EXPECT_EQ(sweep.at(2).counters.totalCycles, solo.counters.totalCycles);
}

}  // namespace
}  // namespace occm::analysis
