#include "analysis/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/error.hpp"
#include "topology/presets.hpp"

namespace occm::analysis {
namespace {

TEST(CsvRow, JoinsAndEscapes) {
  EXPECT_EQ(csvRow({"a", "b", "c"}), "a,b,c\n");
  EXPECT_EQ(csvRow({"a,b", "c"}), "\"a,b\",c\n");
  EXPECT_EQ(csvRow({"say \"hi\""}), "\"say \"\"hi\"\"\"\n");
}

SweepResult tinySweep() {
  SweepConfig config;
  config.machine = topology::testNuma4();
  config.workload.program = workloads::Program::kCG;
  config.workload.problemClass = workloads::ProblemClass::kS;
  config.workload.threads = 4;
  config.coreCounts = {1, 2};
  return runSweep(config);
}

TEST(SweepToCsv, HasHeaderAndOneRowPerRun) {
  const std::string csv = sweepToCsv(tinySweep());
  std::size_t lines = 0;
  for (char c : csv) {
    lines += c == '\n' ? 1 : 0;
  }
  EXPECT_EQ(lines, 3u);  // header + 2 runs
  EXPECT_EQ(csv.rfind("cores,total_cycles", 0), 0u);
  EXPECT_NE(csv.find("\n1,"), std::string::npos);
  EXPECT_NE(csv.find("\n2,"), std::string::npos);
}

TEST(SweepToCsv, OmegaZeroAtOneCore) {
  const std::string csv = sweepToCsv(tinySweep());
  // The 1-core row ends in omega = 0.
  const auto rowStart = csv.find("\n1,");
  const auto rowEnd = csv.find('\n', rowStart + 1);
  const std::string row = csv.substr(rowStart + 1, rowEnd - rowStart - 1);
  EXPECT_EQ(row.substr(row.rfind(',') + 1), "0");
}

TEST(SweepToCsv, WithoutOneCoreRunNormalizesToFirst) {
  SweepConfig config;
  config.machine = topology::testNuma4();
  config.workload.program = workloads::Program::kCG;
  config.workload.problemClass = workloads::ProblemClass::kS;
  config.workload.threads = 4;
  config.coreCounts = {2, 4};
  const std::string csv = sweepToCsv(runSweep(config));
  const auto rowStart = csv.find("\n2,");
  ASSERT_NE(rowStart, std::string::npos);
  const auto rowEnd = csv.find('\n', rowStart + 1);
  const std::string row = csv.substr(rowStart + 1, rowEnd - rowStart - 1);
  EXPECT_EQ(row.substr(row.rfind(',') + 1), "0");
}

TEST(ValidationToCsv, SerializesRows) {
  model::ValidationReport report;
  report.rows.push_back({4, 100.0, 110.0, 0.0, 0.1, 0.1});
  const std::string csv = validationToCsv(report);
  EXPECT_NE(csv.find("cores,measured_cycles"), std::string::npos);
  EXPECT_NE(csv.find("4,100,110,0,0.1,0.1"), std::string::npos);
}

TEST(CcdfToCsv, SerializesPoints) {
  model::BurstinessReport report;
  report.ccdf = {{1.0, 0.5}, {10.0, 0.01}};
  const std::string csv = ccdfToCsv(report);
  EXPECT_NE(csv.find("burst_size_x"), std::string::npos);
  EXPECT_NE(csv.find("1,0.5"), std::string::npos);
  EXPECT_NE(csv.find("10,0.01"), std::string::npos);
}

TEST(WriteFile, RoundTrips) {
  const std::string path = "/tmp/occm_csv_test.csv";
  writeFile(path, "a,b\n1,2\n");
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "a,b\n1,2\n");
  std::remove(path.c_str());
}

TEST(WriteFile, BadPathThrows) {
  EXPECT_THROW(writeFile("/nonexistent-dir/x.csv", "a"), ContractViolation);
}

}  // namespace
}  // namespace occm::analysis
