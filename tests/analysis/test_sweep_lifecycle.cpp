// Sweep lifecycle tests: cycle budgets and wall deadlines convert
// overrunning runs into RunFailure{kind = kTimeout} while the rest of
// the sweep completes deterministically; whole-sweep graceful stop
// flushes a valid checkpoint and resumes to the uninterrupted result; a
// checkpoint killed mid-write at any byte boundary quarantines and the
// resumed sweep is bit-identical to an uninterrupted one, for pool sizes
// {1, 4}, with and without a FaultPlan.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/csv.hpp"
#include "analysis/experiment.hpp"
#include "analysis/lifecycle_export.hpp"
#include "common/cancellation.hpp"
#include "topology/presets.hpp"

namespace occm::analysis {
namespace {

SweepConfig presetConfig(const topology::MachineSpec& machine,
                         bool withFaults) {
  SweepConfig config;
  config.machine = machine;
  config.workload.program = workloads::Program::kCG;
  config.workload.problemClass = workloads::ProblemClass::kS;
  config.workload.threads = 4;
  if (withFaults) {
    if (machine.controllers() > 1) {
      config.sim.faultPlan.controllerOutage(1, 20'000, 60'000);
    } else {
      config.sim.faultPlan.controllerDegrade(0, 20'000, 60'000, 2.0);
    }
    config.sim.faultPlan.coreThrottle(1, 10'000, 50'000, 2.0);
    config.sim.faultPlan.eccSpike(0, 70'000, 90'000, 0.05, 200);
  }
  return config;
}

/// The determinism contract's fingerprint: CSV bytes + fault counters.
struct SweepFingerprint {
  std::string csv;
  std::vector<std::uint64_t> faultCounters;

  bool operator==(const SweepFingerprint& other) const {
    return csv == other.csv && faultCounters == other.faultCounters;
  }

  static SweepFingerprint of(const SweepResult& sweep) {
    SweepFingerprint fp;
    fp.csv = sweepToCsv(sweep);
    for (const perf::RunProfile& p : sweep.profiles) {
      fp.faultCounters.push_back(p.reroutedRequests);
      fp.faultCounters.push_back(p.faultRetries);
      fp.faultCounters.push_back(p.backgroundRequests);
      fp.faultCounters.push_back(static_cast<std::uint64_t>(p.throttledCycles));
      fp.faultCounters.push_back(p.writebacks);
      fp.faultCounters.push_back(p.coherenceMisses);
    }
    return fp;
  }
};

std::string tempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void writeBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << bytes;
}

TEST(SweepLifecycle, CycleBudgetConvertsOverrunToTimeoutDeterministically) {
  // Measure the unbudgeted sweep first, then pick a budget that the
  // 1-core run (longest makespan: 4 threads time-share one core) exceeds
  // while every other run fits.
  SweepConfig reference = presetConfig(topology::testNuma4(), false);
  reference.parallel.workers = 1;
  const SweepResult whole = runSweep(reference);
  ASSERT_EQ(whole.profiles.size(), 4u);
  const Cycles longest = whole.at(1).makespan;
  const Cycles second = whole.at(2).makespan;
  ASSERT_GT(longest, second);
  const Cycles budget = second + (longest - second) / 2;

  SweepResult serial;
  for (int workers : {1, 4}) {
    SweepConfig config = presetConfig(topology::testNuma4(), false);
    config.parallel.workers = workers;
    config.limits.cycleBudget = budget;
    const SweepResult sweep = runSweep(config);
    EXPECT_FALSE(sweep.stopped);
    ASSERT_EQ(sweep.failures.size(), 1u) << "pool size " << workers;
    EXPECT_EQ(sweep.failures[0].cores, 1);
    EXPECT_EQ(sweep.failures[0].kind, RunFailureKind::kTimeout);
    EXPECT_EQ(sweep.failures[0].attempts, 1);  // timeouts are not retried
    EXPECT_FALSE(sweep.failures[0].recovered);
    EXPECT_EQ(sweep.pendingCoreCounts(), std::vector<int>{1});
    // The completed subset is bit-identical to the uninterrupted run.
    for (int n = 2; n <= 4; ++n) {
      EXPECT_EQ(sweep.at(n).counters.totalCycles,
                whole.at(n).counters.totalCycles)
          << "n = " << n << ", pool size " << workers;
      EXPECT_EQ(sweep.at(n).makespan, whole.at(n).makespan);
    }
    if (workers == 1) {
      serial = sweep;
    } else {
      // Deterministic abort: same budget, same abort event, same message
      // — regardless of pool size.
      EXPECT_EQ(sweep.failures[0].error, serial.failures[0].error);
      EXPECT_EQ(SweepFingerprint::of(sweep), SweepFingerprint::of(serial));
    }
  }
}

TEST(SweepLifecycle, WallDeadlineMarksOverrunningRunAsTimeout) {
  SweepConfig config = presetConfig(topology::testNuma4(), false);
  config.parallel.workers = 1;
  // The deadline must comfortably exceed a healthy run's wall time (a few
  // hundred ms here, a few seconds under sanitizers) while the 2-core
  // attempt stalls well past it inside beforeRun — by the time that run
  // reaches the simulator's first cancellation point, the watchdog has
  // long since fired. No tight timing on either side.
  config.limits.wallSeconds = 3.0;
  config.beforeRun = [](int cores, int /*attempt*/) {
    if (cores == 2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(4500));
    }
  };
  const SweepResult sweep = runSweep(config);
  EXPECT_FALSE(sweep.stopped);
  ASSERT_EQ(sweep.failures.size(), 1u);
  EXPECT_EQ(sweep.failures[0].cores, 2);
  EXPECT_EQ(sweep.failures[0].kind, RunFailureKind::kTimeout);
  EXPECT_EQ(sweep.failures[0].attempts, 1);
  EXPECT_EQ(sweep.pendingCoreCounts(), std::vector<int>{2});
  EXPECT_EQ(sweep.profiles.size(), 3u);
  EXPECT_NE(sweep.diagnostics().find("[timeout]"), std::string::npos)
      << sweep.diagnostics();
}

TEST(SweepLifecycle, GracefulStopFlushesCheckpointAndResumes) {
  const std::string path = tempPath("occm_lifecycle_stop.json");
  std::filesystem::remove(path);

  SweepConfig reference = presetConfig(topology::testNuma4(), false);
  reference.parallel.workers = 1;
  const SweepResult whole = runSweep(reference);
  const SweepFingerprint wholeFp = SweepFingerprint::of(whole);

  // Serial sweep, stop requested during the 3-core run's beforeRun; the
  // sleep gives the watchdog ample time to relay the stop into the run's
  // token, so the 3-core attempt aborts at its first cancellation point.
  CancellationSource stop;
  SweepConfig interrupted = presetConfig(topology::testNuma4(), false);
  interrupted.parallel.workers = 1;
  interrupted.checkpointPath = path;
  interrupted.cancel = stop.token();
  interrupted.beforeRun = [&stop](int cores, int /*attempt*/) {
    if (cores == 3) {
      stop.requestStop();
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  };
  const SweepResult partial = runSweep(interrupted);
  EXPECT_TRUE(partial.stopped);
  EXPECT_EQ(partial.profiles.size(), 2u);  // cores 1 and 2 completed
  ASSERT_EQ(partial.failures.size(), 1u);
  EXPECT_EQ(partial.failures[0].cores, 3);
  EXPECT_EQ(partial.failures[0].kind, RunFailureKind::kCancelled);
  // Core 4 was never started: pending, with no failure record.
  EXPECT_EQ(partial.pendingCoreCounts(), (std::vector<int>{3, 4}));
  EXPECT_NE(partial.diagnostics().find("stopped early"), std::string::npos);

  // The flushed checkpoint is valid, carries the completed runs, and
  // holds no lifecycle failure records (a resume should re-attempt).
  const auto flushed = SweepCheckpoint::loadChecked(path);
  ASSERT_TRUE(flushed.hasValue()) << flushed.error().message();
  EXPECT_EQ(flushed->runs.size(), 2u);
  EXPECT_TRUE(flushed->failures.empty());

  // Resume without the stop: restores 2 runs, simulates the rest, and
  // lands bit-identical to the uninterrupted sweep.
  SweepConfig resume = presetConfig(topology::testNuma4(), false);
  resume.parallel.workers = 1;
  resume.checkpointPath = path;
  const SweepResult merged = runSweep(resume);
  EXPECT_FALSE(merged.stopped);
  EXPECT_EQ(merged.restoredRuns, 2u);
  EXPECT_EQ(SweepFingerprint::of(merged), wholeFp);

  std::filesystem::remove(path);
}

TEST(SweepLifecycle, MidWriteKillResumesByteIdentical) {
  // Acceptance criterion: a checkpoint truncated at any byte boundary
  // (the observable state after a mid-write kill of a non-atomic writer,
  // or of the file itself) must quarantine and resume to output
  // byte-identical to an uninterrupted sweep — pools {1, 4}, with and
  // without a FaultPlan.
  for (const bool withFaults : {false, true}) {
    for (const int workers : {1, 4}) {
      SweepConfig reference = presetConfig(topology::testUma4(), withFaults);
      reference.parallel.workers = workers;
      const SweepResult whole = runSweep(reference);
      const SweepFingerprint wholeFp = SweepFingerprint::of(whole);

      // Produce the complete checkpoint once, then replay kills.
      const std::string path = tempPath("occm_midwrite_ckpt.json");
      std::filesystem::remove(path);
      SweepConfig writer = reference;
      writer.checkpointPath = path;
      (void)runSweep(writer);
      std::ostringstream buffer;
      buffer << std::ifstream(path).rdbuf();
      const std::string full = buffer.str();
      ASSERT_GT(full.size(), 8u);

      const std::vector<std::size_t> cuts = {
          0, 1, full.size() / 4, full.size() / 2, 3 * full.size() / 4,
          full.size() - 2};
      for (const std::size_t cut : cuts) {
        std::filesystem::remove(path + ".corrupt");
        writeBytes(path, full.substr(0, cut));
        SweepConfig resume = reference;
        resume.checkpointPath = path;
        const SweepResult merged = runSweep(resume);
        EXPECT_EQ(SweepFingerprint::of(merged), wholeFp)
            << "cut at byte " << cut << ", pool " << workers
            << (withFaults ? ", faults" : "");
        // A truncated file is quarantined and diagnosed; nothing restores.
        EXPECT_EQ(merged.restoredRuns, 0u);
        EXPECT_FALSE(merged.checkpointWarning.empty()) << "cut " << cut;
        EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));
        // The resumed sweep rewrote a loadable checkpoint.
        EXPECT_TRUE(SweepCheckpoint::loadChecked(path).hasValue());
      }
      std::filesystem::remove(path);
      std::filesystem::remove(path + ".corrupt");
    }
  }
}

TEST(SweepLifecycle, GarbageCheckpointQuarantinesAndStartsFresh) {
  const std::string path = tempPath("occm_lifecycle_garbage.json");
  std::filesystem::remove(path + ".corrupt");
  writeBytes(path, "\x01\x02 not a checkpoint at all {{{");

  SweepConfig config = presetConfig(topology::testUma4(), false);
  config.parallel.workers = 1;
  config.checkpointPath = path;
  const SweepResult sweep = runSweep(config);
  EXPECT_EQ(sweep.profiles.size(), 4u);
  EXPECT_EQ(sweep.restoredRuns, 0u);
  EXPECT_NE(sweep.checkpointWarning.find("quarantined"), std::string::npos)
      << sweep.checkpointWarning;
  EXPECT_NE(sweep.diagnostics().find("checkpoint:"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));

  // The rewritten checkpoint restores cleanly on the next invocation.
  const SweepResult again = runSweep(config);
  EXPECT_EQ(again.restoredRuns, 4u);
  EXPECT_TRUE(again.checkpointWarning.empty());

  std::filesystem::remove(path);
  std::filesystem::remove(path + ".corrupt");
}

TEST(SweepLifecycle, FailureExportsCarryLifecycleKinds) {
  SweepResult sweep;
  sweep.failures.push_back({1, 2, "boom, with \"quotes\"", false, 4,
                            RunFailureKind::kException, 0, "", "", ""});
  sweep.failures.push_back({2, 1, "over budget", false, 4,
                            RunFailureKind::kTimeout, 0, "", "", ""});
  sweep.failures.push_back({3, 1, "ctrl-c", false, 4,
                            RunFailureKind::kCancelled, 0, "", "", ""});
  sweep.failures.push_back({4, 1, "child terminated by signal 6", false, 4,
                            RunFailureKind::kCrash, 6, "address-space",
                            "memory budget (RLIMIT_AS) exceeded", ""});

  const std::string csv = failuresToCsv(sweep);
  EXPECT_NE(csv.find("cores,attempts,recovered,pool_size,kind,signal,"
                     "rlimit,has_stderr_tail,worker,error"),
            std::string::npos);
  EXPECT_NE(csv.find("exception"), std::string::npos);
  EXPECT_NE(csv.find("timeout"), std::string::npos);
  EXPECT_NE(csv.find("cancelled"), std::string::npos);
  // The crash row carries its forensics columns; non-crash rows show the
  // zero/empty defaults.
  EXPECT_NE(csv.find("crash,6,address-space,true,"), std::string::npos);
  EXPECT_NE(csv.find("exception,0,,false,"), std::string::npos);
  EXPECT_NE(csv.find("\"boom, with \"\"quotes\"\"\""), std::string::npos)
      << csv;

  const std::string trace = lifecycleToChromeTraceJson(sweep);
  EXPECT_NE(trace.find("\"lifecycle\""), std::string::npos);
  EXPECT_NE(trace.find("sweep.failures.timeout"), std::string::npos);
  EXPECT_NE(trace.find("sweep.failures.crash"), std::string::npos);
  EXPECT_NE(trace.find("signal 6"), std::string::npos);
  EXPECT_NE(trace.find("rlimit address-space"), std::string::npos);
  EXPECT_NE(trace.find("over budget"), std::string::npos);
  // Deterministic: same result, same bytes.
  EXPECT_EQ(lifecycleToChromeTraceJson(sweep), trace);
}

TEST(CancellationPrimitives, TokenSourceAndDeadlineSemantics) {
  CancellationToken inert;
  EXPECT_FALSE(inert.valid());
  EXPECT_FALSE(inert.stopRequested());

  CancellationSource source;
  CancellationToken token = source.token();
  EXPECT_TRUE(token.valid());
  EXPECT_FALSE(token.stopRequested());
  source.requestStop();
  source.requestStop();  // idempotent
  EXPECT_TRUE(token.stopRequested());
  EXPECT_TRUE(source.stopRequested());

  Deadline never;
  EXPECT_FALSE(never.armed());
  EXPECT_FALSE(never.expired());
  EXPECT_GT(never.remainingSeconds(), 1e18);

  const Deadline past = Deadline::after(-1.0);
  EXPECT_TRUE(past.armed());
  EXPECT_TRUE(past.expired());
  EXPECT_LT(past.remainingSeconds(), 0.0);

  const Deadline future = Deadline::after(3600.0);
  EXPECT_FALSE(future.expired());
  EXPECT_GT(future.remainingSeconds(), 3000.0);

  const RunAborted aborted(AbortReason::kCycleBudget, 12345, "budget blown");
  EXPECT_EQ(aborted.reason(), AbortReason::kCycleBudget);
  EXPECT_EQ(aborted.atCycle(), 12345u);
  EXPECT_STREQ(toString(AbortReason::kCancelled), "cancelled");
  EXPECT_STREQ(toString(AbortReason::kCycleBudget), "cycle-budget");
}

TEST(CancellationPrimitives, RunFailureKindNamesRoundTrip) {
  EXPECT_STREQ(toString(RunFailureKind::kException), "exception");
  EXPECT_STREQ(toString(RunFailureKind::kTimeout), "timeout");
  EXPECT_STREQ(toString(RunFailureKind::kCancelled), "cancelled");
}

}  // namespace
}  // namespace occm::analysis
