#include "analysis/text_table.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace occm::analysis {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable table;
  table.header({"name", "value"});
  table.row({"x", "1"});
  table.row({"longer", "22"});
  const std::string out = table.str();
  EXPECT_NE(out.find("name    value"), std::string::npos);
  EXPECT_NE(out.find("x       1"), std::string::npos);
  EXPECT_NE(out.find("longer  22"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable table;
  table.header({"a", "b"});
  EXPECT_THROW((void)table.row({"only one"}), ContractViolation);
}

TEST(TextTable, EmptyHeaderThrows) {
  TextTable table;
  EXPECT_THROW((void)table.header({}), ContractViolation);
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(-0.5, 1), "-0.5");
  EXPECT_EQ(fmt(2.0), "2.00");
}

}  // namespace
}  // namespace occm::analysis
