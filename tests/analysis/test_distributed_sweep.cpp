// Distributed sweep end-to-end over loopback TCP, all in-process: a
// coordinator inside runSweep shards the grid across worker threads, one
// of which leaves mid-sweep (maxTasks) and one of which straggles — and
// the merged CSV must be byte-identical to the serial in-process sweep.
// Also: graceful degradation when no worker shows up, checkpoint resume
// through the fleet, and the worker-side job runner's rejection paths.

#include <gtest/gtest.h>

#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "analysis/csv.hpp"
#include "analysis/distributed_sweep.hpp"
#include "analysis/experiment.hpp"
#include "topology/presets.hpp"

namespace occm::analysis {
namespace {

SweepConfig baseConfig() {
  SweepConfig config;
  config.machine = topology::testNuma4();
  config.workload.program = workloads::Program::kCG;
  config.workload.problemClass = workloads::ProblemClass::kS;
  config.workload.threads = 4;
  return config;
}

/// Serial in-process reference: the bytes every fleet topology must hit.
std::string serialCsv() {
  SweepConfig config = baseConfig();
  config.parallel.workers = 1;
  return sweepToCsv(runSweep(config));
}

struct WorkerThread {
  std::thread thread;
  exec::dist::WorkerReport report;
};

/// Launches `runSweepWorker` threads that wait for the coordinator's
/// bound port, then runs the distributed sweep on the calling thread.
SweepResult runFleetSweep(SweepConfig config,
                          std::vector<SweepWorkerOptions> workerOptions,
                          std::vector<exec::dist::WorkerReport>* reports) {
  auto port = std::make_shared<std::promise<int>>();
  std::shared_future<int> portReady(port->get_future());
  config.distributed.listen = true;
  config.distributed.port = 0;
  config.distributed.onListening = [port](int boundPort) {
    port->set_value(boundPort);
  };
  std::vector<WorkerThread> workers(workerOptions.size());
  for (std::size_t i = 0; i < workerOptions.size(); ++i) {
    workers[i].thread = std::thread([&workers, &workerOptions, portReady, i] {
      SweepWorkerOptions options = workerOptions[i];
      options.port = portReady.get();
      workers[i].report = runSweepWorker(options);
    });
  }
  const SweepResult sweep = runSweep(config);
  for (WorkerThread& worker : workers) {
    worker.thread.join();
    if (reports != nullptr) {
      reports->push_back(worker.report);
    }
  }
  return sweep;
}

TEST(DistributedSweep, FleetWithDeathAndStragglerMatchesSerialBitForBit) {
  const std::string reference = serialCsv();

  SweepConfig config = baseConfig();
  config.parallel.workers = 1;
  config.distributed.graceWindowSeconds = 30.0;

  std::vector<SweepWorkerOptions> fleet(3);
  fleet[0].workerId = "steady";
  fleet[1].workerId = "deserter";
  fleet[1].maxTasks = 1;  // completes one task, then vanishes mid-fleet
  fleet[2].workerId = "straggler";
  fleet[2].straggleMs = 80;  // late results, possibly after re-dispatch

  std::vector<exec::dist::WorkerReport> reports;
  const SweepResult sweep = runFleetSweep(config, fleet, &reports);

  EXPECT_EQ(sweepToCsv(sweep), reference);
  EXPECT_TRUE(sweep.pendingCoreCounts().empty());
  EXPECT_TRUE(sweep.dist.used);
  EXPECT_EQ(sweep.dist.workersSeen, 3u);
  EXPECT_GE(sweep.dist.fleetCompleted + sweep.restoredRuns, 1u);
  ASSERT_EQ(reports.size(), 3u);
  std::uint64_t fleetTasks = 0;
  for (const exec::dist::WorkerReport& report : reports) {
    fleetTasks += report.tasksCompleted;
  }
  // Every task ran somewhere (>= because duplicates are legal).
  EXPECT_GE(fleetTasks, sweep.dist.fleetCompleted);
}

TEST(DistributedSweep, SingleWorkerFleetMatchesSerial) {
  const std::string reference = serialCsv();
  SweepConfig config = baseConfig();
  config.parallel.workers = 1;
  config.distributed.graceWindowSeconds = 30.0;
  std::vector<SweepWorkerOptions> fleet(1);
  fleet[0].workerId = "solo";
  std::vector<exec::dist::WorkerReport> reports;
  const SweepResult sweep = runFleetSweep(config, fleet, &reports);
  EXPECT_EQ(sweepToCsv(sweep), reference);
  EXPECT_EQ(sweep.dist.fleetCompleted, 4u);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].ok) << reports[0].stopReason;
  EXPECT_EQ(reports[0].stopReason, "shutdown");
  EXPECT_EQ(reports[0].tasksCompleted, 4u);
}

TEST(DistributedSweep, NoWorkersDegradesToLocalAndStillMatchesSerial) {
  const std::string reference = serialCsv();
  SweepConfig config = baseConfig();
  config.parallel.workers = 1;
  config.distributed.listen = true;
  config.distributed.port = 0;
  config.distributed.graceWindowSeconds = 0.05;  // give up almost at once
  const SweepResult sweep = runSweep(config);
  EXPECT_EQ(sweepToCsv(sweep), reference);
  EXPECT_TRUE(sweep.dist.used);
  EXPECT_TRUE(sweep.dist.degradedToLocal);
  EXPECT_EQ(sweep.dist.workersSeen, 0u);
  EXPECT_EQ(sweep.dist.fleetCompleted, 0u);
  EXPECT_TRUE(sweep.pendingCoreCounts().empty());
}

TEST(DistributedSweep, ResumesFromCheckpointThroughTheFleet) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "occm_dist_ckpt.json")
          .string();
  std::filesystem::remove(path);

  // Uninterrupted serial reference.
  SweepConfig reference = baseConfig();
  reference.parallel.workers = 1;
  const SweepResult whole = runSweep(reference);

  // Interrupted local sweep: the 3-core task fails every attempt, its
  // siblings checkpoint (exactly the state after a coordinator crash).
  SweepConfig interrupted = baseConfig();
  interrupted.parallel.workers = 1;
  interrupted.checkpointPath = path;
  interrupted.maxAttempts = 1;
  interrupted.beforeRun = [](int cores, int /*attempt*/) {
    if (cores == 3) {
      throw std::runtime_error("interrupted before the fleet era");
    }
  };
  const SweepResult partial = runSweep(interrupted);
  ASSERT_EQ(partial.profiles.size(), 3u);
  ASSERT_TRUE(std::filesystem::exists(path));

  // Resume distributed: restored tasks are never dispatched; the fleet
  // runs only the missing core count; bytes match the uninterrupted run.
  SweepConfig resume = baseConfig();
  resume.parallel.workers = 1;
  resume.checkpointPath = path;
  resume.distributed.graceWindowSeconds = 30.0;
  std::vector<SweepWorkerOptions> fleet(1);
  fleet[0].workerId = "resumer";
  const SweepResult merged = runFleetSweep(resume, fleet, nullptr);
  EXPECT_EQ(merged.restoredRuns, 3u);
  EXPECT_EQ(merged.dist.fleetCompleted, 1u);
  ASSERT_EQ(merged.profiles.size(), 4u);
  for (int n = 1; n <= 4; ++n) {
    EXPECT_EQ(merged.at(n).counters.totalCycles,
              whole.at(n).counters.totalCycles)
        << "n = " << n;
    EXPECT_EQ(merged.at(n).makespan, whole.at(n).makespan) << "n = " << n;
  }
  std::filesystem::remove(path);
}

TEST(DistributedSweep, JobRunnerMatchesRunOnceBitForBit) {
  // The worker-side runner must be the same computation as the local
  // path: a JobSpec round trip may not perturb a single counter.
  SweepConfig config = baseConfig();
  const exec::dist::JobSpec job = makeJobSpec(config, config.workload, 2, 9);
  const exec::dist::TaskResult result = runSweepJob(job, IsolationConfig{});
  ASSERT_TRUE(result.hasProfile);
  EXPECT_EQ(result.taskId, 9u);
  const perf::RunProfile solo = runOnce(config.machine, config.workload, 2);
  EXPECT_EQ(result.profile.counters.totalCycles, solo.counters.totalCycles);
  EXPECT_EQ(result.profile.counters.stallCycles, solo.counters.stallCycles);
  EXPECT_EQ(result.profile.makespan, solo.makespan);
}

TEST(DistributedSweep, MalformedJobsFailSoftlyInsteadOfThrowing) {
  SweepConfig config = baseConfig();
  exec::dist::JobSpec job = makeJobSpec(config, config.workload, 2, 0);

  exec::dist::JobSpec badProgram = job;
  badProgram.program = "NOT_A_PROGRAM";
  exec::dist::TaskResult result = runSweepJob(badProgram, IsolationConfig{});
  EXPECT_FALSE(result.hasProfile);
  ASSERT_TRUE(result.hasFailure);
  EXPECT_EQ(result.failure.kind, exec::dist::WireFailureKind::kException);
  EXPECT_NE(result.failure.error.find("NOT_A_PROGRAM"), std::string::npos);

  exec::dist::JobSpec badClass = job;
  badClass.problemClass = "Z9";
  result = runSweepJob(badClass, IsolationConfig{});
  EXPECT_FALSE(result.hasProfile);
  ASSERT_TRUE(result.hasFailure);

  exec::dist::JobSpec badPlan = job;
  badPlan.faultPlanJson = "{not json";
  result = runSweepJob(badPlan, IsolationConfig{});
  EXPECT_FALSE(result.hasProfile);
  ASSERT_TRUE(result.hasFailure);
  EXPECT_EQ(result.failure.kind, exec::dist::WireFailureKind::kException);

  exec::dist::JobSpec badCores = job;
  badCores.cores = 0;
  result = runSweepJob(badCores, IsolationConfig{});
  EXPECT_FALSE(result.hasProfile);
  ASSERT_TRUE(result.hasFailure);
}

}  // namespace
}  // namespace occm::analysis
