// Determinism-first regression tests for the parallel sweep engine: for
// every pool size, runSweep must produce byte-identical sweepToCsv output
// and identical fault counters to the serial path — on a UMA and a NUMA
// preset, with and without a FaultPlan — and checkpoint/resume under
// concurrency must converge to the uninterrupted result.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/csv.hpp"
#include "analysis/experiment.hpp"
#include "common/error.hpp"
#include "exec/thread_pool.hpp"
#include "topology/presets.hpp"

namespace occm::analysis {
namespace {

SweepConfig presetConfig(const topology::MachineSpec& machine,
                         bool withFaults) {
  SweepConfig config;
  config.machine = machine;
  config.workload.program = workloads::Program::kCG;
  config.workload.problemClass = workloads::ProblemClass::kS;
  config.workload.threads = 4;
  if (withFaults) {
    // Controller fault + throttle + ECC spike: exercises rerouting or
    // degraded service, retry and throttled-cycle accounting. The NUMA
    // preset loses node 1 (node 0 — the sole active controller at low
    // core counts — absorbs its traffic); the single-controller UMA
    // preset degrades node 0 instead, since an outage there would leave
    // no healthy controller and invalidate the plan.
    if (machine.controllers() > 1) {
      config.sim.faultPlan.controllerOutage(1, 20'000, 60'000);
    } else {
      config.sim.faultPlan.controllerDegrade(0, 20'000, 60'000, 2.0);
    }
    config.sim.faultPlan.coreThrottle(1, 10'000, 50'000, 2.0);
    config.sim.faultPlan.eccSpike(0, 70'000, 90'000, 0.05, 200);
  }
  return config;
}

/// The cross-run fingerprint the determinism contract covers: the full
/// CSV export plus every fault counter the profiles carry.
struct SweepFingerprint {
  std::string csv;
  std::vector<std::uint64_t> faultCounters;

  static SweepFingerprint of(const SweepResult& sweep) {
    SweepFingerprint fp;
    fp.csv = sweepToCsv(sweep);
    for (const perf::RunProfile& p : sweep.profiles) {
      fp.faultCounters.push_back(p.reroutedRequests);
      fp.faultCounters.push_back(p.faultRetries);
      fp.faultCounters.push_back(p.backgroundRequests);
      fp.faultCounters.push_back(static_cast<std::uint64_t>(p.throttledCycles));
      fp.faultCounters.push_back(p.writebacks);
      fp.faultCounters.push_back(p.coherenceMisses);
    }
    return fp;
  }
};

void expectBitIdenticalAcrossPoolSizes(const topology::MachineSpec& machine,
                                       bool withFaults) {
  SweepConfig config = presetConfig(machine, withFaults);
  config.parallel.workers = 1;
  const SweepResult serial = runSweep(config);
  EXPECT_EQ(serial.requestedWorkers, 1);
  const SweepFingerprint reference = SweepFingerprint::of(serial);

  const int hardware = exec::resolveWorkerCount(0);
  for (int workers : {2, 7, hardware}) {
    config.parallel.workers = workers;
    const SweepResult parallel = runSweep(config);
    EXPECT_EQ(parallel.requestedWorkers, workers);
    const SweepFingerprint fp = SweepFingerprint::of(parallel);
    EXPECT_EQ(fp.csv, reference.csv)
        << machine.name << ", pool size " << workers
        << (withFaults ? ", with fault plan" : "");
    EXPECT_EQ(fp.faultCounters, reference.faultCounters)
        << machine.name << ", pool size " << workers;
    EXPECT_EQ(parallel.failures.size(), serial.failures.size());
    EXPECT_TRUE(parallel.pendingCoreCounts().empty());
  }
}

TEST(ParallelSweepDeterminism, UmaPresetMatchesSerialBitForBit) {
  expectBitIdenticalAcrossPoolSizes(topology::testUma4(), false);
}

TEST(ParallelSweepDeterminism, NumaPresetMatchesSerialBitForBit) {
  expectBitIdenticalAcrossPoolSizes(topology::testNuma4(), false);
}

TEST(ParallelSweepDeterminism, UmaPresetWithFaultPlanMatchesSerial) {
  expectBitIdenticalAcrossPoolSizes(topology::testUma4(), true);
}

TEST(ParallelSweepDeterminism, NumaPresetWithFaultPlanMatchesSerial) {
  expectBitIdenticalAcrossPoolSizes(topology::testNuma4(), true);
}

TEST(ParallelSweepDeterminism, SweepMatchesRunOnce) {
  // The per-task freshly built workload must equal a standalone run.
  SweepConfig config = presetConfig(topology::testNuma4(), false);
  config.parallel.workers = 4;
  const SweepResult sweep = runSweep(config);
  const perf::RunProfile solo = runOnce(config.machine, config.workload, 2);
  EXPECT_EQ(sweep.at(2).counters.totalCycles, solo.counters.totalCycles);
  EXPECT_EQ(sweep.at(2).counters.stallCycles, solo.counters.stallCycles);
  EXPECT_EQ(sweep.at(2).makespan, solo.makespan);
}

TEST(ParallelSweepDeterminism, RetriedFailureIsDeterministicToo) {
  // A run that fails on attempt 0 and recovers on the perturbed-seed
  // retry must land on the same retried profile at every pool size.
  auto flakyConfig = [](int workers) {
    SweepConfig config = presetConfig(topology::testNuma4(), false);
    config.parallel.workers = workers;
    config.beforeRun = [](int cores, int attempt) {
      if (cores == 3 && attempt == 0) {
        throw std::runtime_error("flaky 3-core run");
      }
    };
    return config;
  };
  const SweepResult serial = runSweep(flakyConfig(1));
  const SweepResult parallel = runSweep(flakyConfig(4));
  EXPECT_EQ(sweepToCsv(parallel), sweepToCsv(serial));
  ASSERT_EQ(parallel.failures.size(), 1u);
  EXPECT_TRUE(parallel.failures[0].recovered);
  EXPECT_EQ(parallel.failures[0].poolSize, 4);
  EXPECT_EQ(serial.failures[0].poolSize, 1);
}

std::string tempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(ParallelSweepCheckpoint, InterruptedSweepResumesToUninterruptedResult) {
  const std::string path = tempPath("occm_parallel_ckpt.json");
  std::filesystem::remove(path);

  // Reference: one uninterrupted serial sweep, no checkpoint.
  SweepConfig reference = presetConfig(topology::testNuma4(), false);
  reference.parallel.workers = 1;
  const SweepResult whole = runSweep(reference);

  // Interrupted parallel sweep: the 3-core task dies on every attempt, so
  // its run is missing from the merge while its siblings checkpoint.
  SweepConfig interrupted = presetConfig(topology::testNuma4(), false);
  interrupted.parallel.workers = 4;
  interrupted.checkpointPath = path;
  interrupted.beforeRun = [](int cores, int /*attempt*/) {
    if (cores == 3) {
      throw std::runtime_error("mid-flight interruption");
    }
  };
  const SweepResult partial = runSweep(interrupted);
  EXPECT_EQ(partial.profiles.size(), 3u);
  EXPECT_EQ(partial.pendingCoreCounts(), std::vector<int>{3});
  ASSERT_TRUE(std::filesystem::exists(path));

  // Resume without the interruption: completed runs restore, the missing
  // core count simulates, and the merged result equals the uninterrupted
  // run on every model-relevant quantity.
  SweepConfig resume = presetConfig(topology::testNuma4(), false);
  resume.parallel.workers = 4;
  resume.checkpointPath = path;
  const SweepResult merged = runSweep(resume);
  EXPECT_EQ(merged.restoredRuns, 3u);
  ASSERT_EQ(merged.profiles.size(), 4u);
  EXPECT_TRUE(merged.pendingCoreCounts().empty());
  for (int n = 1; n <= 4; ++n) {
    EXPECT_EQ(merged.at(n).counters.totalCycles,
              whole.at(n).counters.totalCycles)
        << "n = " << n;
    EXPECT_EQ(merged.at(n).counters.stallCycles,
              whole.at(n).counters.stallCycles)
        << "n = " << n;
    EXPECT_EQ(merged.at(n).makespan, whole.at(n).makespan) << "n = " << n;
  }

  std::filesystem::remove(path);
}

TEST(ParallelSweepCheckpoint, FinalCheckpointFileIsPoolSizeInvariant) {
  const std::string serialPath = tempPath("occm_ckpt_serial.json");
  const std::string parallelPath = tempPath("occm_ckpt_parallel.json");
  std::filesystem::remove(serialPath);
  std::filesystem::remove(parallelPath);

  SweepConfig config = presetConfig(topology::testUma4(), false);
  config.parallel.workers = 1;
  config.checkpointPath = serialPath;
  (void)runSweep(config);
  config.parallel.workers = 4;
  config.checkpointPath = parallelPath;
  (void)runSweep(config);

  const auto serialCkpt = SweepCheckpoint::load(serialPath);
  const auto parallelCkpt = SweepCheckpoint::load(parallelPath);
  ASSERT_TRUE(serialCkpt.has_value());
  ASSERT_TRUE(parallelCkpt.has_value());
  EXPECT_EQ(parallelCkpt->toJson(), serialCkpt->toJson());

  std::filesystem::remove(serialPath);
  std::filesystem::remove(parallelPath);
}

TEST(ParallelSweepDiagnostics, MissingRunNamesPoolSizeAndPendingCores) {
  SweepConfig config = presetConfig(topology::testNuma4(), false);
  config.parallel.workers = 2;
  config.maxAttempts = 1;
  config.beforeRun = [](int cores, int /*attempt*/) {
    if (cores == 2 || cores == 4) {
      throw std::runtime_error("cursed core count");
    }
  };
  const SweepResult sweep = runSweep(config);
  ASSERT_EQ(sweep.failures.size(), 2u);
  EXPECT_EQ(sweep.failures[0].poolSize, 2);
  EXPECT_EQ(sweep.pendingCoreCounts(), (std::vector<int>{2, 4}));

  try {
    (void)sweep.at(2);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("core counts present: 1, 3"), std::string::npos)
        << what;
    EXPECT_NE(what.find("still pending: 2, 4"), std::string::npos) << what;
    EXPECT_NE(what.find("pool size 2"), std::string::npos) << what;
  }

  // omegas() on a sweep without its 1-core anchor reports the same way.
  SweepConfig noAnchor = presetConfig(topology::testNuma4(), false);
  noAnchor.parallel.workers = 2;
  noAnchor.coreCounts = {2, 3};
  const SweepResult anchorless = runSweep(noAnchor);
  try {
    (void)anchorless.omegas();
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("1-core"), std::string::npos);
  }

  // Diagnostics summarize the same facts for humans.
  const std::string report = sweep.diagnostics();
  EXPECT_NE(report.find("pool size 2"), std::string::npos) << report;
  EXPECT_NE(report.find("still pending: 2, 4"), std::string::npos) << report;
}

TEST(ParallelSweepDiagnostics, BeforeRunSeesEveryCoreCountOnce) {
  SweepConfig config = presetConfig(topology::testNuma4(), false);
  config.parallel.workers = 4;
  std::atomic<int> calls{0};
  std::atomic<int> coreSum{0};
  config.beforeRun = [&](int cores, int attempt) {
    calls.fetch_add(1);
    if (attempt == 0) {
      coreSum.fetch_add(cores);
    }
  };
  (void)runSweep(config);
  EXPECT_EQ(calls.load(), 4);
  EXPECT_EQ(coreSum.load(), 1 + 2 + 3 + 4);
}

}  // namespace
}  // namespace occm::analysis
