// Process-isolated sweep tests: with SweepConfig::isolation enabled,
// successful runs must be bit-identical to the in-process path at every
// pool size (with and without a FaultPlan), injected crashes must be
// contained as RunFailure{kind = crash} while sibling runs complete and
// checkpoint, and a crash-then-resume cycle must converge to the
// uninterrupted result — the acceptance criteria of the crash-containment
// mode.
//
// Skipped under ThreadSanitizer: fork() from a process whose watchdog /
// pool threads hold tsan-runtime locks can deadlock the child inside the
// sanitizer, which is a property of the harness, not the code under test.

#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/csv.hpp"
#include "analysis/experiment.hpp"
#include "common/error.hpp"
#include "fault/crash_injection.hpp"
#include "topology/presets.hpp"

#if defined(__SANITIZE_THREAD__)
#define OCCM_UNDER_TSAN 1
#endif
#if !defined(OCCM_UNDER_TSAN) && defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define OCCM_UNDER_TSAN 1
#endif
#endif
#ifndef OCCM_UNDER_TSAN
#define OCCM_UNDER_TSAN 0
#endif

#if defined(__SANITIZE_ADDRESS__)
#define OCCM_UNDER_ASAN 1
#endif
#if !defined(OCCM_UNDER_ASAN) && defined(__has_feature)
#if __has_feature(address_sanitizer)
#define OCCM_UNDER_ASAN 1
#endif
#endif
#ifndef OCCM_UNDER_ASAN
#define OCCM_UNDER_ASAN 0
#endif

#if OCCM_UNDER_TSAN
#define OCCM_SKIP_UNDER_TSAN() \
  GTEST_SKIP() << "fork-based isolation is not exercised under tsan"
#else
#define OCCM_SKIP_UNDER_TSAN() static_cast<void>(0)
#endif

namespace occm::analysis {
namespace {

/// Same preset the parallel-sweep determinism suite uses, so the two
/// suites pin the same contract from both sides.
SweepConfig presetConfig(const topology::MachineSpec& machine,
                         bool withFaults) {
  SweepConfig config;
  config.machine = machine;
  config.workload.program = workloads::Program::kCG;
  config.workload.problemClass = workloads::ProblemClass::kS;
  config.workload.threads = 4;
  if (withFaults) {
    if (machine.controllers() > 1) {
      config.sim.faultPlan.controllerOutage(1, 20'000, 60'000);
    } else {
      config.sim.faultPlan.controllerDegrade(0, 20'000, 60'000, 2.0);
    }
    config.sim.faultPlan.coreThrottle(1, 10'000, 50'000, 2.0);
    config.sim.faultPlan.eccSpike(0, 70'000, 90'000, 0.05, 200);
  }
  return config;
}

struct SweepFingerprint {
  std::string csv;
  std::vector<std::uint64_t> faultCounters;

  static SweepFingerprint of(const SweepResult& sweep) {
    SweepFingerprint fp;
    fp.csv = sweepToCsv(sweep);
    for (const perf::RunProfile& p : sweep.profiles) {
      fp.faultCounters.push_back(p.reroutedRequests);
      fp.faultCounters.push_back(p.faultRetries);
      fp.faultCounters.push_back(p.backgroundRequests);
      fp.faultCounters.push_back(static_cast<std::uint64_t>(p.throttledCycles));
      fp.faultCounters.push_back(p.writebacks);
      fp.faultCounters.push_back(p.coherenceMisses);
    }
    return fp;
  }
};

std::string tempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void expectIsolatedMatchesInProcess(const topology::MachineSpec& machine,
                                    bool withFaults) {
  SweepConfig reference = presetConfig(machine, withFaults);
  reference.parallel.workers = 1;
  const SweepFingerprint inProcess =
      SweepFingerprint::of(runSweep(reference));

  for (int workers : {1, 4}) {
    SweepConfig isolated = presetConfig(machine, withFaults);
    isolated.parallel.workers = workers;
    isolated.isolation.enabled = true;
    const SweepResult sweep = runSweep(isolated);
    EXPECT_TRUE(sweep.failures.empty()) << sweep.diagnostics();
    const SweepFingerprint fp = SweepFingerprint::of(sweep);
    EXPECT_EQ(fp.csv, inProcess.csv)
        << machine.name << ", isolated pool size " << workers
        << (withFaults ? ", with fault plan" : "");
    EXPECT_EQ(fp.faultCounters, inProcess.faultCounters)
        << machine.name << ", isolated pool size " << workers;
  }
}

TEST(IsolatedSweepDeterminism, UmaPresetMatchesInProcessBitForBit) {
  OCCM_SKIP_UNDER_TSAN();
  expectIsolatedMatchesInProcess(topology::testUma4(), false);
}

TEST(IsolatedSweepDeterminism, NumaPresetMatchesInProcessBitForBit) {
  OCCM_SKIP_UNDER_TSAN();
  expectIsolatedMatchesInProcess(topology::testNuma4(), false);
}

TEST(IsolatedSweepDeterminism, NumaPresetWithFaultPlanMatchesInProcess) {
  OCCM_SKIP_UNDER_TSAN();
  expectIsolatedMatchesInProcess(topology::testNuma4(), true);
}

TEST(IsolatedSweepCrash, InjectedCrashIsContainedToItsCoreCount) {
  OCCM_SKIP_UNDER_TSAN();
  // Reference: the same sweep with no crash event.
  SweepConfig reference = presetConfig(topology::testNuma4(), false);
  reference.parallel.workers = 1;
  const SweepResult healthy = runSweep(reference);

  for (int workers : {1, 4}) {
    SweepConfig config = presetConfig(topology::testNuma4(), false);
    config.parallel.workers = workers;
    config.isolation.enabled = true;
    // Deterministic abort at cycle 20k, only when 3 cores are active:
    // both attempts of the 3-core run die the same way, every other run
    // never sees the event.
    config.sim.faultPlan.crashAbort(20'000, 3);
    const SweepResult sweep = runSweep(config);

    ASSERT_EQ(sweep.failures.size(), 1u) << sweep.diagnostics();
    const RunFailure& crash = sweep.failures[0];
    EXPECT_EQ(crash.cores, 3);
    EXPECT_EQ(crash.kind, RunFailureKind::kCrash);
    EXPECT_FALSE(crash.recovered);
    EXPECT_EQ(crash.attempts, 2);  // retried, crashed again
    EXPECT_EQ(crash.poolSize, workers);
#if !OCCM_UNDER_ASAN
    EXPECT_EQ(crash.signal, SIGABRT) << crash.error;
#endif
    // The child's dying words reach the failure record.
    EXPECT_NE(crash.stderrTail.find("injected crash"), std::string::npos)
        << crash.stderrTail;
    EXPECT_EQ(sweep.pendingCoreCounts(), std::vector<int>{3});

    // Survivors are bit-identical to the healthy sweep.
    for (int n : {1, 2, 4}) {
      EXPECT_EQ(sweep.at(n).counters.totalCycles,
                healthy.at(n).counters.totalCycles)
          << "n = " << n << ", pool " << workers;
      EXPECT_EQ(sweep.at(n).makespan, healthy.at(n).makespan)
          << "n = " << n << ", pool " << workers;
    }
  }
}

TEST(IsolatedSweepCrash, SegvInjectionIsContainedToo) {
  OCCM_SKIP_UNDER_TSAN();
  SweepConfig config = presetConfig(topology::testUma4(), false);
  config.parallel.workers = 1;
  config.maxAttempts = 1;
  config.isolation.enabled = true;
  config.sim.faultPlan.crashSegv(20'000, 2);
  const SweepResult sweep = runSweep(config);
  ASSERT_EQ(sweep.failures.size(), 1u) << sweep.diagnostics();
  EXPECT_EQ(sweep.failures[0].cores, 2);
  EXPECT_EQ(sweep.failures[0].kind, RunFailureKind::kCrash);
#if !OCCM_UNDER_ASAN
  // asan intercepts SIGSEGV and exits instead; the bare signal is only
  // observable on an uninstrumented build.
  EXPECT_EQ(sweep.failures[0].signal, SIGSEGV) << sweep.failures[0].error;
#endif
  EXPECT_EQ(sweep.pendingCoreCounts(), std::vector<int>{2});
}

TEST(IsolatedSweepCrash, OomInjectionClassifiesAsAddressSpace) {
  OCCM_SKIP_UNDER_TSAN();
#if OCCM_UNDER_ASAN
  GTEST_SKIP() << "RLIMIT_AS fights asan shadow mappings";
#else
  SweepConfig config = presetConfig(topology::testUma4(), false);
  config.parallel.workers = 1;
  config.maxAttempts = 1;
  config.isolation.enabled = true;
  // The memory budget is what turns the injected allocation storm into a
  // prompt, classified death instead of a machine-wide OOM.
  config.isolation.memoryBytes = std::uint64_t{512} << 20;
  config.sim.faultPlan.crashOom(20'000, 2);
  const SweepResult sweep = runSweep(config);
  ASSERT_EQ(sweep.failures.size(), 1u) << sweep.diagnostics();
  EXPECT_EQ(sweep.failures[0].cores, 2);
  EXPECT_EQ(sweep.failures[0].kind, RunFailureKind::kCrash);
  EXPECT_EQ(sweep.failures[0].rlimit, "address-space")
      << sweep.failures[0].error;
  EXPECT_NE(
      sweep.failures[0].stderrTail.find(fault::kOutOfMemoryMarker),
      std::string::npos)
      << sweep.failures[0].stderrTail;
#endif
}

void expectCrashThenResumeConverges(bool withFaults, int workers) {
  const std::string path = tempPath(
      "occm_isolated_resume_" + std::to_string(withFaults) + "_" +
      std::to_string(workers) + ".json");
  std::filesystem::remove(path);

  // Reference: uninterrupted in-process sweep, no crash, no checkpoint.
  SweepConfig reference = presetConfig(topology::testNuma4(), withFaults);
  reference.parallel.workers = 1;
  const SweepResult whole = runSweep(reference);

  // Crashing sweep: the 3-core run dies on every attempt; its siblings
  // complete and checkpoint.
  SweepConfig crashing = presetConfig(topology::testNuma4(), withFaults);
  crashing.parallel.workers = workers;
  crashing.isolation.enabled = true;
  crashing.checkpointPath = path;
  crashing.sim.faultPlan.crashAbort(20'000, 3);
  const SweepResult partial = runSweep(crashing);
  EXPECT_EQ(partial.profiles.size(), 3u) << partial.diagnostics();
  ASSERT_EQ(partial.failures.size(), 1u);
  EXPECT_EQ(partial.failures[0].kind, RunFailureKind::kCrash);
  ASSERT_TRUE(std::filesystem::exists(path));

  // The crash record is persisted with its forensics, exactly like an
  // exception record — resumable evidence, not a lifecycle footnote.
  const auto ckpt = SweepCheckpoint::load(path);
  ASSERT_TRUE(ckpt.has_value());
  ASSERT_EQ(ckpt->failures.size(), 1u);
  EXPECT_EQ(ckpt->failures[0].kind, RunFailureKind::kCrash);
  EXPECT_EQ(ckpt->failures[0].cores, 3);
  EXPECT_FALSE(ckpt->failures[0].stderrTail.empty());

  // Resume without the crash event ("the bug was fixed"): completed runs
  // restore, the crashed core count simulates, and the merge equals the
  // uninterrupted sweep on every model-relevant quantity.
  SweepConfig resume = presetConfig(topology::testNuma4(), withFaults);
  resume.parallel.workers = workers;
  resume.isolation.enabled = true;
  resume.checkpointPath = path;
  const SweepResult merged = runSweep(resume);
  EXPECT_EQ(merged.restoredRuns, 3u) << merged.diagnostics();
  ASSERT_EQ(merged.profiles.size(), 4u);
  for (int n = 1; n <= 4; ++n) {
    EXPECT_EQ(merged.at(n).counters.totalCycles,
              whole.at(n).counters.totalCycles)
        << "n = " << n << ", pool " << workers
        << (withFaults ? ", with fault plan" : "");
    EXPECT_EQ(merged.at(n).counters.stallCycles,
              whole.at(n).counters.stallCycles)
        << "n = " << n;
    EXPECT_EQ(merged.at(n).makespan, whole.at(n).makespan) << "n = " << n;
  }

  std::filesystem::remove(path);
}

TEST(IsolatedSweepResume, CrashThenResumeConvergesSerial) {
  OCCM_SKIP_UNDER_TSAN();
  expectCrashThenResumeConverges(false, 1);
}

TEST(IsolatedSweepResume, CrashThenResumeConvergesPooled) {
  OCCM_SKIP_UNDER_TSAN();
  expectCrashThenResumeConverges(false, 4);
}

TEST(IsolatedSweepResume, CrashThenResumeConvergesWithFaultPlan) {
  OCCM_SKIP_UNDER_TSAN();
  expectCrashThenResumeConverges(true, 1);
  expectCrashThenResumeConverges(true, 4);
}

TEST(IsolatedSweepLifecycle, CycleBudgetClassifiesAsTimeoutAcrossTheFork) {
  OCCM_SKIP_UNDER_TSAN();
  // The deterministic budget aborts *inside* the child; the supervisor
  // must ship the RunAborted back and the sweep must classify it exactly
  // like the in-process path: timeout, terminal, not checkpointed.
  SweepConfig config = presetConfig(topology::testUma4(), false);
  config.parallel.workers = 1;
  config.isolation.enabled = true;
  config.limits.cycleBudget = 1'000;
  const SweepResult sweep = runSweep(config);
  EXPECT_TRUE(sweep.profiles.empty());
  ASSERT_EQ(sweep.failures.size(), 4u) << sweep.diagnostics();
  for (const RunFailure& f : sweep.failures) {
    EXPECT_EQ(f.kind, RunFailureKind::kTimeout) << f.error;
    EXPECT_EQ(f.attempts, 1);
  }
}

TEST(IsolatedSweepLifecycle, CrashPlanWithoutIsolationIsRefused) {
  SweepConfig config = presetConfig(topology::testUma4(), false);
  config.sim.faultPlan.crashAbort(20'000);
  EXPECT_THROW((void)runSweep(config), ContractViolation);
}

}  // namespace
}  // namespace occm::analysis
