// Regenerates tests/equivalence/golden_fingerprints.txt by replaying the
// full golden grid in-process. Run via scripts/gen_golden.sh — never
// casually: a corpus regenerated after a behavior change launders that
// change past the equivalence suite. See DESIGN.md §14.

#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>

#include "golden_grid.hpp"

int main(int argc, char** argv) {
  using namespace occm::equivalence;
  std::string outPath = "tests/equivalence/golden_fingerprints.txt";
  if (argc > 1) {
    outPath = argv[1];
  }

  const auto grid = goldenGrid();
  std::ofstream out(outPath);
  if (!out.good()) {
    std::cerr << "cannot open " << outPath << " for writing\n";
    return 1;
  }
  out << "# Golden-fingerprint corpus: per-point CRC-32 of sweepToCsv plus\n"
         "# deterministic summary stats for the equivalence grid defined in\n"
         "# tests/equivalence/golden_grid.hpp. Regenerate ONLY via\n"
         "# scripts/gen_golden.sh and only when simulated output is meant\n"
         "# to change; the loader test diffs every field per point.\n";
  int index = 0;
  for (const GoldenPoint& point : grid) {
    ++index;
    std::cerr << "[" << index << "/" << grid.size() << "] " << point.label()
              << " ... " << std::flush;
    try {
      const GoldenRecord record = replayGoldenPoint(point);
      out << formatGoldenLine(point, record) << "\n";
      char fp[9];
      std::snprintf(fp, sizeof fp, "%08x", record.fingerprint);
      std::cerr << fp << "\n";
    } catch (const std::exception& e) {
      std::cerr << "FAILED: " << e.what() << "\n";
      return 1;
    }
  }
  std::cerr << "wrote " << grid.size() << " points to " << outPath << "\n";
  return 0;
}
