#pragma once

// Reading and diffing the checked-in golden corpus
// (tests/equivalence/golden_fingerprints.txt). Kept separate from
// golden_grid.hpp so tools that only parse the corpus don't pull in the
// whole simulator.

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace occm::equivalence {

/// One parsed corpus line: key -> value, insertion order preserved
/// separately so diffs print fields in the written order.
struct CorpusLine {
  std::map<std::string, std::string> fields;
  std::vector<std::string> order;
  int lineNumber = 0;

  [[nodiscard]] const std::string& at(const std::string& key) const {
    auto it = fields.find(key);
    OCCM_REQUIRE_MSG(it != fields.end(),
                     "golden corpus line " + std::to_string(lineNumber) +
                         " missing field '" + key + "'");
    return it->second;
  }

  /// "EP.S@testUma4 faults=plan pool=2" — must match GoldenPoint::label().
  [[nodiscard]] std::string label() const {
    return at("workload") + "@" + at("topology") + " faults=" + at("faults") +
           " pool=" + at("pool");
  }
};

inline CorpusLine parseCorpusLine(const std::string& line, int lineNumber) {
  CorpusLine parsed;
  parsed.lineNumber = lineNumber;
  std::istringstream tokens(line);
  std::string token;
  while (tokens >> token) {
    const auto eq = token.find('=');
    OCCM_REQUIRE_MSG(eq != std::string::npos && eq > 0,
                     "golden corpus line " + std::to_string(lineNumber) +
                         ": malformed token '" + token + "'");
    std::string key = token.substr(0, eq);
    OCCM_REQUIRE_MSG(parsed.fields.find(key) == parsed.fields.end(),
                     "golden corpus line " + std::to_string(lineNumber) +
                         ": duplicate field '" + key + "'");
    parsed.order.push_back(key);
    parsed.fields.emplace(std::move(key), token.substr(eq + 1));
  }
  return parsed;
}

/// Loads the corpus, skipping blank lines and '#' comments. Throws with
/// the path and line number on any malformed line.
inline std::vector<CorpusLine> loadCorpus(const std::string& path) {
  std::ifstream in(path);
  OCCM_REQUIRE_MSG(in.good(), "cannot open golden corpus: " + path);
  std::vector<CorpusLine> lines;
  std::string line;
  int lineNumber = 0;
  while (std::getline(in, line)) {
    ++lineNumber;
    const auto firstNonSpace = line.find_first_not_of(" \t\r");
    if (firstNonSpace == std::string::npos || line[firstNonSpace] == '#') {
      continue;
    }
    lines.push_back(parseCorpusLine(line, lineNumber));
  }
  return lines;
}

}  // namespace occm::equivalence
