// The equivalence safety net of the hot-path rewrite (DESIGN.md §14):
// replays every golden grid point serial and in-process and compares the
// CRC-32 fingerprint and every deterministic summary stat against the
// checked-in corpus. Any drift fails with a per-point diff naming
// workload, topology, faults and pool size.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "golden_corpus.hpp"
#include "golden_grid.hpp"

#ifndef OCCM_GOLDEN_FILE
#error "OCCM_GOLDEN_FILE must point at golden_fingerprints.txt"
#endif

namespace occm::equivalence {
namespace {

const std::vector<CorpusLine>& corpus() {
  static const std::vector<CorpusLine> lines = loadCorpus(OCCM_GOLDEN_FILE);
  return lines;
}

std::map<std::string, std::string> recordFields(const GoldenPoint& point,
                                                const GoldenRecord& r) {
  const CorpusLine parsed =
      parseCorpusLine(formatGoldenLine(point, r), /*lineNumber=*/0);
  return parsed.fields;
}

// --- corpus structure ------------------------------------------------------

TEST(GoldenCorpus, LoadsAndIsWellFormed) {
  const auto& lines = corpus();
  ASSERT_FALSE(lines.empty()) << "empty corpus at " << OCCM_GOLDEN_FILE;
  for (const CorpusLine& line : lines) {
    for (const char* key :
         {"workload", "topology", "faults", "pool", "fingerprint",
          "sim_cycles", "stall_cycles", "llc_misses", "requests",
          "makespan_sum", "events_popped", "events_pushed",
          "max_queue_depth", "reservation_ops"}) {
      EXPECT_NO_THROW((void)line.at(key))
          << "line " << line.lineNumber << " (" << line.label() << ")";
    }
    EXPECT_EQ(line.at("fingerprint").size(), 8u)
        << line.label() << ": fingerprint must be 8 hex digits";
  }
}

TEST(GoldenCorpus, CoversExactlyTheGrid) {
  std::set<std::string> expected;
  for (const GoldenPoint& point : goldenGrid()) {
    expected.insert(point.label());
  }
  std::set<std::string> actual;
  for (const CorpusLine& line : corpus()) {
    EXPECT_TRUE(actual.insert(line.label()).second)
        << "duplicate corpus line: " << line.label();
  }
  for (const std::string& label : expected) {
    EXPECT_TRUE(actual.count(label)) << "grid point missing from corpus: "
                                     << label << " — rerun gen_golden.sh";
  }
  for (const std::string& label : actual) {
    EXPECT_TRUE(expected.count(label))
        << "corpus has a point the grid no longer defines: " << label;
  }
}

TEST(GoldenCorpus, ParserRejectsMalformedLines) {
  EXPECT_THROW((void)parseCorpusLine("fingerprint", 1), ContractViolation);
  EXPECT_THROW((void)parseCorpusLine("=value", 2), ContractViolation);
  EXPECT_THROW((void)parseCorpusLine("a=1 a=2", 3), ContractViolation);
  EXPECT_THROW((void)loadCorpus("/nonexistent/golden.txt"),
               ContractViolation);
}

TEST(GoldenCorpus, ParserAcceptsCommentsAndBlanks) {
  const CorpusLine line = parseCorpusLine("a=1 b=two", 7);
  EXPECT_EQ(line.at("a"), "1");
  EXPECT_EQ(line.at("b"), "two");
  EXPECT_EQ(line.order, (std::vector<std::string>{"a", "b"}));
}

// --- per-point replay ------------------------------------------------------

class GoldenEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GoldenEquivalence, ReplayMatchesCorpus) {
  const GoldenPoint point = goldenGrid()[GetParam()];
  const CorpusLine* golden = nullptr;
  for (const CorpusLine& line : corpus()) {
    if (line.label() == point.label()) {
      golden = &line;
      break;
    }
  }
  ASSERT_NE(golden, nullptr)
      << "no corpus line for " << point.label() << " — rerun gen_golden.sh";

  const GoldenRecord record = replayGoldenPoint(point);
  const auto fields = recordFields(point, record);
  std::string diff;
  for (const std::string& key : golden->order) {
    const auto it = fields.find(key);
    ASSERT_NE(it, fields.end()) << "replay lost field " << key;
    if (it->second != golden->at(key)) {
      diff += "\n  " + key + ": golden=" + golden->at(key) +
              " replay=" + it->second;
    }
  }
  EXPECT_TRUE(diff.empty()) << "golden drift at " << point.label() << ":"
                            << diff
                            << "\n(simulated output changed — if deliberate, "
                               "regenerate via scripts/gen_golden.sh)";
}

std::string pointTestName(const ::testing::TestParamInfo<std::size_t>& info) {
  const GoldenPoint point = goldenGrid()[info.param];
  std::string name = point.workloadName() + "_" + point.topology + "_" +
                     (point.faults ? "plan" : "nofault") + "_pool" +
                     std::to_string(point.poolSize);
  std::replace_if(
      name.begin(), name.end(),
      [](char c) { return !(std::isalnum(static_cast<unsigned char>(c))); },
      '_');
  return name;
}

INSTANTIATE_TEST_SUITE_P(Grid, GoldenEquivalence,
                         ::testing::Range<std::size_t>(0,
                                                       goldenGrid().size()),
                         pointTestName);

}  // namespace
}  // namespace occm::equivalence
