#pragma once

// The golden-fingerprint equivalence grid (DESIGN.md §14): a fixed
// workload × topology × ±FaultPlan × pool-size grid whose per-point
// CRC-32 fingerprints and deterministic summary stats are checked into
// tests/equivalence/golden_fingerprints.txt. The corpus was generated
// from the pre-rewrite event loop (scripts/gen_golden.sh regenerates it
// deliberately); the loader test replays every point serial and
// in-process and fails with a per-point diff on any drift — the safety
// net under which the hot-path rewrite landed.
//
// Shared between the generator (gen_golden.cpp) and the loader test
// (test_golden_equivalence.cpp) so the two can never disagree about what
// the grid is.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/csv.hpp"
#include "analysis/experiment.hpp"
#include "common/crc32.hpp"
#include "common/error.hpp"
#include "fault/fault_plan.hpp"
#include "topology/presets.hpp"
#include "workloads/workload.hpp"

namespace occm::equivalence {

/// One grid point: which sweep to run and how.
struct GoldenPoint {
  workloads::Program program;
  workloads::ProblemClass problemClass;
  std::string topology;  ///< preset name, as recorded in the corpus
  bool faults = false;   ///< run under the standard fault plan
  int poolSize = 1;

  [[nodiscard]] std::string workloadName() const {
    return workloads::workloadName(program, problemClass);
  }
  /// "EP.S@testUma4 faults=plan pool=2" — the diff label.
  [[nodiscard]] std::string label() const {
    return workloadName() + "@" + topology +
           " faults=" + (faults ? "plan" : "none") +
           " pool=" + std::to_string(poolSize);
  }
};

/// Deterministic summary of one replayed grid point. Every field is a
/// pure function of the simulated schedule; the fingerprint is the
/// CRC-32 of the sweep's CSV export (the same anchor BENCH_*.json pins).
struct GoldenRecord {
  std::uint32_t fingerprint = 0;
  std::uint64_t simCycles = 0;      ///< totalCycles summed over profiles
  std::uint64_t stallCycles = 0;
  std::uint64_t llcMisses = 0;
  std::uint64_t requests = 0;       ///< controller demand requests
  std::uint64_t makespanSum = 0;    ///< makespan summed over profiles
  std::uint64_t eventsPopped = 0;   ///< event-loop turns, summed
  std::uint64_t eventsPushed = 0;
  std::uint64_t maxQueueDepth = 0;  ///< max over the sweep's runs
  std::uint64_t reservationOps = 0; ///< controller ticks, summed
};

inline topology::MachineSpec goldenPreset(const std::string& name) {
  if (name == "testUma4") {
    return topology::testUma4();
  }
  if (name == "testNuma4") {
    return topology::testNuma4();
  }
  throw ContractViolation("unknown golden topology preset: " + name);
}

/// The standard fault plan of the `faults=plan` points: one degraded
/// controller window, an ECC spike, a throttled core and a background
/// burst — every degraded-mode path that leaves the run completable on
/// both test machines (no outage: testUma4 has nowhere to fail over to).
inline fault::FaultPlan goldenFaultPlan() {
  fault::FaultPlan plan;
  plan.controllerDegrade(0, 100'000, 400'000, 1.5)
      .eccSpike(0, 150'000, 350'000, 0.05, 200)
      .coreThrottle(1, 50'000, 250'000, 1.3)
      .backgroundTraffic(0, 200'000, 380'000, 500);
  return plan;
}

/// The grid: fast workloads crossed with both test machines, ±faults,
/// serial and pool-of-2 execution. CG.S (the slowest cell by an order of
/// magnitude) runs fault-free only, keeping the full corpus replayable
/// in tier-1 and sanitizer legs.
inline std::vector<GoldenPoint> goldenGrid() {
  std::vector<GoldenPoint> grid;
  const std::vector<std::pair<workloads::Program, workloads::ProblemClass>>
      fast = {{workloads::Program::kEP, workloads::ProblemClass::kS},
              {workloads::Program::kIS, workloads::ProblemClass::kS},
              {workloads::Program::kFT, workloads::ProblemClass::kS},
              {workloads::Program::kSP, workloads::ProblemClass::kS}};
  for (const auto& [program, cls] : fast) {
    for (const char* topo : {"testUma4", "testNuma4"}) {
      for (const bool faults : {false, true}) {
        for (const int pool : {1, 2}) {
          grid.push_back({program, cls, topo, faults, pool});
        }
      }
    }
  }
  for (const char* topo : {"testUma4", "testNuma4"}) {
    for (const int pool : {1, 2}) {
      grid.push_back(
          {workloads::Program::kCG, workloads::ProblemClass::kS, topo,
           /*faults=*/false, pool});
    }
  }
  return grid;
}

/// Replays one grid point (in-process; the pool size is the point's own,
/// so pool-1 points are strictly serial) and reduces it to its record.
inline GoldenRecord replayGoldenPoint(const GoldenPoint& point) {
  analysis::SweepConfig config;
  config.machine = goldenPreset(point.topology);
  config.workload.program = point.program;
  config.workload.problemClass = point.problemClass;
  config.coreCounts = {1, 2, 4};
  config.parallel.workers = point.poolSize;
  if (point.faults) {
    config.sim.faultPlan = goldenFaultPlan();
  }
  const analysis::SweepResult sweep = analysis::runSweep(config);
  OCCM_REQUIRE_MSG(sweep.failures.empty(),
                   "golden point must not fail: " + point.label() + ": " +
                       sweep.diagnostics());

  GoldenRecord record;
  record.fingerprint = crc32(analysis::sweepToCsv(sweep));
  for (const perf::RunProfile& p : sweep.profiles) {
    record.simCycles += p.counters.totalCycles;
    record.stallCycles += p.counters.stallCycles;
    record.llcMisses += p.counters.llcMisses;
    record.makespanSum += p.makespan;
    record.eventsPopped += p.hotPath.eventsPopped;
    record.eventsPushed += p.hotPath.eventsPushed;
    record.maxQueueDepth =
        std::max(record.maxQueueDepth, p.hotPath.maxEventQueueDepth);
    record.reservationOps += p.hotPath.controllerTicks;
    for (const mem::ControllerStats& c : p.controllerStats) {
      record.requests += c.requests;
    }
  }
  return record;
}

/// One corpus line: space-separated key=value pairs, fingerprint in hex.
inline std::string formatGoldenLine(const GoldenPoint& point,
                                    const GoldenRecord& r) {
  std::ostringstream out;
  char fp[9];
  std::snprintf(fp, sizeof fp, "%08x", r.fingerprint);
  out << "workload=" << point.workloadName()
      << " topology=" << point.topology
      << " faults=" << (point.faults ? "plan" : "none")
      << " pool=" << point.poolSize << " fingerprint=" << fp
      << " sim_cycles=" << r.simCycles << " stall_cycles=" << r.stallCycles
      << " llc_misses=" << r.llcMisses << " requests=" << r.requests
      << " makespan_sum=" << r.makespanSum
      << " events_popped=" << r.eventsPopped
      << " events_pushed=" << r.eventsPushed
      << " max_queue_depth=" << r.maxQueueDepth
      << " reservation_ops=" << r.reservationOps;
  return out.str();
}

}  // namespace occm::equivalence
