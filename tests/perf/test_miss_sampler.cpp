#include "perf/miss_sampler.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace occm::perf {
namespace {

TEST(MissSampler, BinsByWindow) {
  MissSampler sampler(100);
  sampler.record(0);
  sampler.record(99);
  sampler.record(100);
  sampler.record(250, 5);
  ASSERT_EQ(sampler.windows().size(), 3u);
  EXPECT_EQ(sampler.windows()[0], 2u);
  EXPECT_EQ(sampler.windows()[1], 1u);
  EXPECT_EQ(sampler.windows()[2], 5u);
}

TEST(MissSampler, FinalizePadsTrailingZeros) {
  MissSampler sampler(100);
  sampler.record(50);
  sampler.finalize(1000);
  EXPECT_EQ(sampler.windows().size(), 10u);
  EXPECT_EQ(sampler.windows().back(), 0u);
}

TEST(MissSampler, FinalizeNeverShrinks) {
  MissSampler sampler(100);
  sampler.record(950);
  sampler.finalize(100);
  EXPECT_EQ(sampler.windows().size(), 10u);
}

TEST(MissSampler, BurstSizesSkipIdleWindows) {
  MissSampler sampler(100);
  sampler.record(0, 3);
  sampler.record(500, 7);
  sampler.finalize(1000);
  const auto bursts = sampler.burstSizes();
  ASSERT_EQ(bursts.size(), 2u);
  EXPECT_EQ(bursts[0], 3.0);
  EXPECT_EQ(bursts[1], 7.0);
}

TEST(MissSampler, WindowCountsSurviveUint32Overflow) {
  // Regression: window counts were uint32 and silently wrapped past 2^32
  // lines; they are now 64-bit throughout.
  MissSampler sampler(100);
  sampler.record(10, 5'000'000'000ULL);
  sampler.record(20, 5'000'000'000ULL);
  ASSERT_EQ(sampler.windows().size(), 1u);
  EXPECT_EQ(sampler.windows()[0], 10'000'000'000ULL);
}

TEST(MissSampler, ExposesUnderlyingTimeSeries) {
  MissSampler sampler(100);
  sampler.record(0, 2);
  sampler.record(150, 3);
  EXPECT_EQ(sampler.series().windowCount(), 2u);
  EXPECT_DOUBLE_EQ(sampler.series().total(), 5.0);
}

TEST(MissSampler, ZeroWindowRejected) {
  EXPECT_THROW((void)MissSampler(0), ContractViolation);
}

TEST(MissSampler, WindowCyclesAccessor) {
  MissSampler sampler(13300);
  EXPECT_EQ(sampler.windowCycles(), 13300u);
}

}  // namespace
}  // namespace occm::perf
