#include "perf/bench_record.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace occm::perf {
namespace {

BenchReport sampleReport() {
  BenchReport report;
  report.quick = true;
  report.repeats = 3;
  report.warmup = 1;
  report.compiler = "gcc 13.2.0";
  report.buildType = "release";
  report.obsEnabled = true;
  report.hardwareThreads = 8;

  BenchPoint point;
  point.program = "CG.S";
  point.topology = "testNuma4";
  point.poolSize = 2;
  point.coreCountsRun = 3;
  point.repeats = 3;
  point.fingerprint = 0x08367c52;
  point.simCycles = 123'456'789;
  point.requests = 54'321;
  point.wallMs = {12.5, 0.75, 11.0, 14.25};
  point.simCyclesPerSec = 9.87654321e9;
  point.requestsPerSec = 4.345e6;
  point.phases.push_back({"sim.run", 9, 37'000'000, 36'500'000});
  report.points.push_back(point);

  BenchPoint second = point;
  second.program = "EP.S";
  second.fingerprint = 0x70adbba3;
  second.phases.clear();
  report.points.push_back(second);
  return report;
}

TEST(BenchRecord, JsonRoundTrips) {
  const BenchReport report = sampleReport();
  const std::string json = toJson(report);
  const Expected<BenchReport, std::string> parsed = parseBenchReport(json);
  ASSERT_TRUE(parsed.hasValue()) << parsed.error();
  // Byte-exact round trip: emit(parse(emit(r))) == emit(r) pins both the
  // emitter's key order and the parser's fidelity (incl. %.17g doubles).
  EXPECT_EQ(toJson(parsed.value()), json);
  EXPECT_EQ(parsed.value().points.size(), 2u);
  EXPECT_EQ(parsed.value().points[0].fingerprint, 0x08367c52u);
  EXPECT_DOUBLE_EQ(parsed.value().points[0].wallMs.iqr, 0.75);
  ASSERT_EQ(parsed.value().points[0].phases.size(), 1u);
  EXPECT_EQ(parsed.value().points[0].phases[0].name, "sim.run");
}

TEST(BenchRecord, RoundTripsEmptyReportAndEscapes) {
  BenchReport report;
  report.compiler = "weird \"quoted\"\\\n\tcompiler";
  report.buildType = "debug";
  const Expected<BenchReport, std::string> parsed =
      parseBenchReport(toJson(report));
  ASSERT_TRUE(parsed.hasValue()) << parsed.error();
  EXPECT_EQ(parsed.value().compiler, report.compiler);
  EXPECT_TRUE(parsed.value().points.empty());
}

TEST(BenchRecord, RejectsWrongSchema) {
  std::string json = toJson(sampleReport());
  const std::string::size_type at = json.find("occm-bench-v1");
  ASSERT_NE(at, std::string::npos);
  json.replace(at, 13, "occm-bench-v9");
  const Expected<BenchReport, std::string> parsed = parseBenchReport(json);
  ASSERT_FALSE(parsed.hasValue());
  EXPECT_NE(parsed.error().find("schema"), std::string::npos);
}

TEST(BenchRecord, RejectsUnknownOrReorderedKeys) {
  const std::string json = toJson(sampleReport());
  // Unknown key where "generator" is expected.
  std::string unknown = json;
  const std::string::size_type at = unknown.find("\"generator\"");
  ASSERT_NE(at, std::string::npos);
  unknown.replace(at, 11, "\"generater\"");
  EXPECT_FALSE(parseBenchReport(unknown).hasValue());

  // The parser is positional: swapping two adjacent keys must fail even
  // though both are known.
  const std::string::size_type rep = json.find("\"repeats\"");
  const std::string::size_type war = json.find("\"warmup\"");
  ASSERT_NE(rep, std::string::npos);
  ASSERT_NE(war, std::string::npos);
  ASSERT_LT(rep, war);
  std::string swapped = json;
  swapped.replace(war, 8, "\"repeats");
  swapped.replace(rep, 9, "\"warmup\" ");
  EXPECT_FALSE(parseBenchReport(swapped).hasValue());
}

TEST(BenchRecord, RejectsTrailingGarbageAndBadNumbers) {
  const std::string json = toJson(sampleReport());
  EXPECT_FALSE(parseBenchReport(json + "x").hasValue());
  EXPECT_FALSE(parseBenchReport("").hasValue());
  EXPECT_FALSE(parseBenchReport("[]").hasValue());

  // u64 fields are bounded to 2^53 so every JSON consumer (double-based
  // ones included) reads them exactly.
  std::string huge = json;
  const std::string::size_type cyc = huge.find("\"sim_cycles\": ");
  ASSERT_NE(cyc, std::string::npos);
  huge.replace(cyc + 14, 9, "918446744073709551615");
  const Expected<BenchReport, std::string> parsed = parseBenchReport(huge);
  ASSERT_FALSE(parsed.hasValue());
  EXPECT_NE(parsed.error().find("corrupt bench report at byte"),
            std::string::npos);
}

TEST(BenchRecord, ErrorsNameTheByteOffset) {
  std::string json = toJson(sampleReport());
  const std::string::size_type at = json.find("\"fingerprint\": \"");
  ASSERT_NE(at, std::string::npos);
  json.replace(at + 16, 8, "NOTHEX!!");
  const Expected<BenchReport, std::string> parsed = parseBenchReport(json);
  ASSERT_FALSE(parsed.hasValue());
  EXPECT_NE(parsed.error().find("corrupt bench report at byte"),
            std::string::npos);
  EXPECT_NE(parsed.error().find("fingerprint"), std::string::npos);
}

TEST(BenchRecord, SummarizeSamplesComputesOrderStats) {
  // Even count, N >= 4: median averages the middle pair, quartiles
  // interpolate (R type-7): q1 = 17.5, q3 = 42.5.
  const BenchStat even = summarizeSamples({40, 10, 50, 20});
  EXPECT_DOUBLE_EQ(even.median, 30.0);
  EXPECT_DOUBLE_EQ(even.iqr, 25.0);
  EXPECT_DOUBLE_EQ(even.min, 10.0);
  EXPECT_DOUBLE_EQ(even.max, 50.0);

  const BenchStat odd = summarizeSamples({3, 1, 2});
  EXPECT_DOUBLE_EQ(odd.median, 2.0);
  EXPECT_DOUBLE_EQ(odd.iqr, 0.0);  // N < 4: IQR suppressed
  EXPECT_DOUBLE_EQ(odd.min, 1.0);
  EXPECT_DOUBLE_EQ(odd.max, 3.0);

  const BenchStat one = summarizeSamples({7.5});
  EXPECT_DOUBLE_EQ(one.median, 7.5);
  EXPECT_DOUBLE_EQ(one.min, 7.5);
  EXPECT_DOUBLE_EQ(one.max, 7.5);

  const BenchStat none = summarizeSamples({});
  EXPECT_DOUBLE_EQ(none.median, 0.0);
  EXPECT_DOUBLE_EQ(none.max, 0.0);
}

TEST(BenchRecord, FindMatchesTheFullKey) {
  const BenchReport report = sampleReport();
  const BenchPoint* hit = report.find("CG.S", "testNuma4", 2);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->fingerprint, 0x08367c52u);
  EXPECT_EQ(report.find("CG.S", "testNuma4", 4), nullptr);
  EXPECT_EQ(report.find("CG.S", "testUma4", 2), nullptr);
  EXPECT_EQ(report.find("FT.S", "testNuma4", 2), nullptr);
}

// Pins the hardware_threads field: it must be captured at bench time
// (not left at the struct default of 0) and must survive a JSON round
// trip. hardware_concurrency() may return 0 on exotic hosts; the helper
// clamps so the report never records a nonsensical thread count.
TEST(BenchRecord, DetectHardwareThreadsIsPositive) {
  const int detected = detectHardwareThreads();
  EXPECT_GE(detected, 1);
  const unsigned reported = std::thread::hardware_concurrency();
  if (reported != 0) {
    EXPECT_EQ(detected, static_cast<int>(reported));
  }
}

TEST(BenchRecord, HardwareThreadsRoundTripsThroughJson) {
  BenchReport report = sampleReport();
  report.hardwareThreads = detectHardwareThreads();
  const std::string json = toJson(report);
  EXPECT_NE(json.find("\"hardware_threads\": " +
                      std::to_string(report.hardwareThreads)),
            std::string::npos);
  const auto parsed = parseBenchReport(json);
  ASSERT_TRUE(parsed.hasValue()) << parsed.error();
  EXPECT_EQ(parsed.value().hardwareThreads, report.hardwareThreads);
}

}  // namespace
}  // namespace occm::perf
