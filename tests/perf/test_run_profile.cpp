#include "perf/run_profile.hpp"

#include <gtest/gtest.h>

#include "perf/counters.hpp"

namespace occm::perf {
namespace {

TEST(CounterSet, WorkIsTotalMinusStall) {
  CounterSet c;
  c.totalCycles = 100;
  c.stallCycles = 30;
  EXPECT_EQ(c.workCycles(), 70u);
}

TEST(CounterSet, AdditionAggregates) {
  CounterSet a;
  a.totalCycles = 100;
  a.stallCycles = 40;
  a.instructions = 10;
  a.llcMisses = 3;
  CounterSet b;
  b.totalCycles = 50;
  b.stallCycles = 10;
  b.instructions = 5;
  b.llcMisses = 2;
  const CounterSet sum = a + b;
  EXPECT_EQ(sum.totalCycles, 150u);
  EXPECT_EQ(sum.stallCycles, 50u);
  EXPECT_EQ(sum.instructions, 15u);
  EXPECT_EQ(sum.llcMisses, 5u);
  a += b;
  EXPECT_EQ(a.totalCycles, 150u);
}

TEST(RunProfile, ReportContainsTheCounters) {
  RunProfile profile;
  profile.program = "CG.C";
  profile.machine = "Intel NUMA (24 cores, Xeon X5650)";
  profile.threads = 24;
  profile.activeCores = 12;
  profile.counters.totalCycles = 1'234'567;
  profile.counters.stallCycles = 1'000'000;
  profile.counters.instructions = 42;
  profile.counters.llcMisses = 777;
  profile.makespan = 99;
  const std::string report = formatReport(profile);
  EXPECT_NE(report.find("CG.C"), std::string::npos);
  EXPECT_NE(report.find("24 threads on 12 active cores"), std::string::npos);
  EXPECT_NE(report.find("1,234,567"), std::string::npos);
  EXPECT_NE(report.find("234,567"), std::string::npos);
  EXPECT_NE(report.find("777"), std::string::npos);
  // Work cycles derived: 234,567.
  EXPECT_NE(report.find("work cycles"), std::string::npos);
}

TEST(RunProfile, ReportListsBusyControllers) {
  RunProfile profile;
  profile.program = "p";
  profile.machine = "m";
  mem::ControllerStats busy;
  busy.requests = 5;
  busy.remoteRequests = 2;
  mem::ControllerStats idle;
  profile.controllerStats = {busy, idle};
  const std::string report = formatReport(profile);
  EXPECT_NE(report.find("controller 0"), std::string::npos);
  EXPECT_EQ(report.find("controller 1"), std::string::npos);
}

}  // namespace
}  // namespace occm::perf
