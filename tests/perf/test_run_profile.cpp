#include "perf/run_profile.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "perf/counters.hpp"

namespace occm::perf {
namespace {

TEST(CounterSet, WorkIsTotalMinusStall) {
  CounterSet c;
  c.totalCycles = 100;
  c.stallCycles = 30;
  EXPECT_EQ(c.workCycles(), 70u);
}

TEST(CounterSet, AdditionAggregates) {
  CounterSet a;
  a.totalCycles = 100;
  a.stallCycles = 40;
  a.instructions = 10;
  a.llcMisses = 3;
  CounterSet b;
  b.totalCycles = 50;
  b.stallCycles = 10;
  b.instructions = 5;
  b.llcMisses = 2;
  const CounterSet sum = a + b;
  EXPECT_EQ(sum.totalCycles, 150u);
  EXPECT_EQ(sum.stallCycles, 50u);
  EXPECT_EQ(sum.instructions, 15u);
  EXPECT_EQ(sum.llcMisses, 5u);
  a += b;
  EXPECT_EQ(a.totalCycles, 150u);
}

TEST(RunProfile, ReportContainsTheCounters) {
  RunProfile profile;
  profile.program = "CG.C";
  profile.machine = "Intel NUMA (24 cores, Xeon X5650)";
  profile.threads = 24;
  profile.activeCores = 12;
  profile.counters.totalCycles = 1'234'567;
  profile.counters.stallCycles = 1'000'000;
  profile.counters.instructions = 42;
  profile.counters.llcMisses = 777;
  profile.makespan = 99;
  const std::string report = formatReport(profile);
  EXPECT_NE(report.find("CG.C"), std::string::npos);
  EXPECT_NE(report.find("24 threads on 12 active cores"), std::string::npos);
  EXPECT_NE(report.find("1,234,567"), std::string::npos);
  EXPECT_NE(report.find("234,567"), std::string::npos);
  EXPECT_NE(report.find("777"), std::string::npos);
  // Work cycles derived: 234,567.
  EXPECT_NE(report.find("work cycles"), std::string::npos);
}

TEST(RunProfile, ReportListsBusyControllers) {
  RunProfile profile;
  profile.program = "p";
  profile.machine = "m";
  mem::ControllerStats busy;
  busy.requests = 5;
  busy.remoteRequests = 2;
  mem::ControllerStats idle;
  profile.controllerStats = {busy, idle};
  const std::string report = formatReport(profile);
  EXPECT_NE(report.find("controller 0"), std::string::npos);
  EXPECT_EQ(report.find("controller 1"), std::string::npos);
}

TEST(RunProfile, ControllerUtilizationFromBusyCycles) {
  RunProfile profile;
  mem::ControllerStats c;
  c.busyCycles = 500;
  profile.controllerStats = {c};
  EXPECT_DOUBLE_EQ(profile.controllerUtilization(0), 0.0);  // makespan unknown
  profile.makespan = 1000;
  profile.channelsPerController = 2;
  EXPECT_DOUBLE_EQ(profile.controllerUtilization(0), 0.25);
  EXPECT_DOUBLE_EQ(profile.controllerUtilization(9), 0.0);  // out of range
}

TEST(RunProfile, ReportShowsUtilizationRowHitAndMeanWait) {
  RunProfile profile;
  profile.program = "p";
  profile.machine = "m";
  profile.makespan = 1000;
  profile.channelsPerController = 2;
  mem::ControllerStats c;
  c.requests = 10;
  c.totalWait = 150;
  c.busyCycles = 500;
  c.rowHits = 3;
  c.rowMisses = 1;
  profile.controllerStats = {c};
  const std::string report = formatReport(profile);
  EXPECT_NE(report.find("mean wait 15 cycles"), std::string::npos);
  EXPECT_NE(report.find("util 25.0%"), std::string::npos);
  EXPECT_NE(report.find("row-hit 75.0%"), std::string::npos);
}

TEST(RunProfile, ReportMentionsAttachedObsTrace) {
  RunProfile profile;
  profile.program = "p";
  profile.machine = "m";
  const std::string without = formatReport(profile);
  EXPECT_EQ(without.find("obs trace"), std::string::npos);

  profile.trace = std::make_shared<obs::RunTrace>(
      100, 16, obs::OverflowPolicy::kDropOldest, 1.0);
  profile.trace->metrics.counter("sim.llc_misses").record(0);
  profile.trace->events.instant("ctx-switch", "sched", 0, 10);
  const std::string report = formatReport(profile);
  EXPECT_NE(report.find("obs trace"), std::string::npos);
  EXPECT_NE(report.find("1 metrics, 1 events"), std::string::npos);
}

}  // namespace
}  // namespace occm::perf
