#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace occm::stats {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  if (n_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double OnlineStats::cv() const noexcept {
  return mean_ == 0.0 ? 0.0 : stddev() / mean_;
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) {
    return;
  }
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

OnlineStats summarize(std::span<const double> values) noexcept {
  OnlineStats s;
  for (double v : values) {
    s.add(v);
  }
  return s;
}

double meanRelativeError(std::span<const double> measured,
                         std::span<const double> predicted) {
  OCCM_REQUIRE(measured.size() == predicted.size());
  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < measured.size(); ++i) {
    if (measured[i] == 0.0) {
      continue;
    }
    total += std::abs(predicted[i] - measured[i]) / std::abs(measured[i]);
    ++counted;
  }
  return counted == 0 ? 0.0 : total / static_cast<double>(counted);
}

}  // namespace occm::stats
