#pragma once

// Streaming summary statistics (Welford) and simple batch summaries.

#include <cstdint>
#include <span>

namespace occm::stats {

/// Numerically stable streaming mean/variance accumulator.
class OnlineStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Coefficient of variation (stddev / mean); 0 for zero mean.
  [[nodiscard]] double cv() const noexcept;

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const OnlineStats& other) noexcept;

  void reset() noexcept { *this = OnlineStats{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary over a span.
[[nodiscard]] OnlineStats summarize(std::span<const double> values) noexcept;

/// Mean absolute relative error between model predictions and measurements,
/// the accuracy metric the paper reports (5-14 %). Entries where the
/// measured value is zero are skipped.
[[nodiscard]] double meanRelativeError(std::span<const double> measured,
                                       std::span<const double> predicted);

}  // namespace occm::stats
