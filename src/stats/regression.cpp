#include "stats/regression.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace occm::stats {

namespace {

/// Computes R^2 and residual SE for a fitted line over the points.
void fillGoodness(std::span<const Point> points, LinearFit& fit) {
  double ssRes = 0.0;
  double ssTot = 0.0;
  double meanY = 0.0;
  double totalW = 0.0;
  for (const Point& p : points) {
    meanY += p.weight * p.y;
    totalW += p.weight;
  }
  meanY /= totalW;
  for (const Point& p : points) {
    const double pred = fit.predict(p.x);
    ssRes += p.weight * (p.y - pred) * (p.y - pred);
    ssTot += p.weight * (p.y - meanY) * (p.y - meanY);
  }
  fit.r2 = ssTot == 0.0 ? 1.0 : 1.0 - ssRes / ssTot;
  fit.n = points.size();
  fit.residualStdError =
      points.size() > 2
          ? std::sqrt(ssRes / static_cast<double>(points.size() - 2))
          : 0.0;
}

}  // namespace

LinearFit fitLinear(std::span<const Point> points) {
  OCCM_REQUIRE_MSG(points.size() >= 2, "linear fit needs at least two points");
  double sw = 0.0;
  double sx = 0.0;
  double sy = 0.0;
  for (const Point& p : points) {
    OCCM_REQUIRE_MSG(p.weight > 0.0, "weights must be positive");
    sw += p.weight;
    sx += p.weight * p.x;
    sy += p.weight * p.y;
  }
  const double mx = sx / sw;
  const double my = sy / sw;
  double sxx = 0.0;
  double sxy = 0.0;
  for (const Point& p : points) {
    sxx += p.weight * (p.x - mx) * (p.x - mx);
    sxy += p.weight * (p.x - mx) * (p.y - my);
  }
  OCCM_REQUIRE_MSG(sxx > 0.0, "linear fit needs two distinct x values");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fillGoodness(points, fit);
  return fit;
}

LinearFit fitLinear(std::span<const double> xs, std::span<const double> ys) {
  OCCM_REQUIRE(xs.size() == ys.size());
  std::vector<Point> points(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    points[i] = Point{xs[i], ys[i], 1.0};
  }
  return fitLinear(points);
}

LinearFit fitThroughOrigin(std::span<const Point> points) {
  OCCM_REQUIRE_MSG(!points.empty(), "fit needs at least one point");
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (const Point& p : points) {
    OCCM_REQUIRE_MSG(p.weight > 0.0, "weights must be positive");
    sxx += p.weight * p.x * p.x;
    sxy += p.weight * p.x * p.y;
    syy += p.weight * p.y * p.y;
  }
  OCCM_REQUIRE_MSG(sxx > 0.0, "fit through origin needs a nonzero x");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = 0.0;
  // Uncentered R^2: 1 - SS_res / sum(y^2).
  double ssRes = 0.0;
  for (const Point& p : points) {
    const double e = p.y - fit.slope * p.x;
    ssRes += p.weight * e * e;
  }
  fit.r2 = syy == 0.0 ? 1.0 : 1.0 - ssRes / syy;
  fit.n = points.size();
  fit.residualStdError =
      points.size() > 1
          ? std::sqrt(ssRes / static_cast<double>(points.size() - 1))
          : 0.0;
  return fit;
}

LinearFit fitTheilSen(std::span<const Point> points) {
  OCCM_REQUIRE_MSG(points.size() >= 2,
                   "Theil-Sen fit needs at least two points");
  std::vector<double> slopes;
  slopes.reserve(points.size() * (points.size() - 1) / 2);
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      const double dx = points[j].x - points[i].x;
      if (dx != 0.0) {
        slopes.push_back((points[j].y - points[i].y) / dx);
      }
    }
  }
  OCCM_REQUIRE_MSG(!slopes.empty(),
                   "Theil-Sen fit needs two distinct x values");
  const auto median = [](std::vector<double>& values) {
    const std::size_t mid = values.size() / 2;
    std::nth_element(values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid),
                     values.end());
    double result = values[mid];
    if (values.size() % 2 == 0) {
      const auto lower = std::max_element(
          values.begin(), values.begin() + static_cast<std::ptrdiff_t>(mid));
      result = (result + *lower) / 2.0;
    }
    return result;
  };
  LinearFit fit;
  fit.slope = median(slopes);
  std::vector<double> intercepts;
  intercepts.reserve(points.size());
  for (const Point& p : points) {
    intercepts.push_back(p.y - fit.slope * p.x);
  }
  fit.intercept = median(intercepts);
  fillGoodness(points, fit);
  return fit;
}

double coefficientOfDetermination(std::span<const double> observed,
                                  std::span<const double> predicted) {
  OCCM_REQUIRE(observed.size() == predicted.size());
  OCCM_REQUIRE(!observed.empty());
  double mean = 0.0;
  for (double v : observed) {
    mean += v;
  }
  mean /= static_cast<double>(observed.size());
  double ssRes = 0.0;
  double ssTot = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    ssRes += (observed[i] - predicted[i]) * (observed[i] - predicted[i]);
    ssTot += (observed[i] - mean) * (observed[i] - mean);
  }
  return ssTot == 0.0 ? 1.0 : 1.0 - ssRes / ssTot;
}

}  // namespace occm::stats
