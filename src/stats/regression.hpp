#pragma once

// Ordinary least-squares simple linear regression, the parameter-estimation
// tool the paper uses everywhere: mu and L come from the linearity of
// 1/C(n) in n (eq. 6), DeltaC and rho from linear fits on the multi-socket
// points (eqs. 8, 11), and Table IV reports the colinearity R^2.

#include <span>
#include <vector>

namespace occm::stats {

/// One observation (x, y) with an optional weight.
struct Point {
  double x = 0.0;
  double y = 0.0;
  double weight = 1.0;
};

/// Result of fitting y = intercept + slope * x.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0, 1] (1 = perfect colinearity).
  double r2 = 0.0;
  /// Residual standard error (n-2 denominator), 0 when n <= 2.
  double residualStdError = 0.0;
  std::size_t n = 0;

  [[nodiscard]] double predict(double x) const noexcept {
    return intercept + slope * x;
  }
};

/// Fits y = a + b*x by (weighted) least squares. Requires >= 2 points with
/// at least two distinct x values; throws ContractViolation otherwise.
[[nodiscard]] LinearFit fitLinear(std::span<const Point> points);

/// Convenience overload over parallel x/y arrays with unit weights.
[[nodiscard]] LinearFit fitLinear(std::span<const double> xs,
                                  std::span<const double> ys);

/// Fits y = b*x (regression through the origin); r2 is the uncentered R^2.
[[nodiscard]] LinearFit fitThroughOrigin(std::span<const Point> points);

/// Theil–Sen robust estimator: slope = median of all pairwise slopes,
/// intercept = median of (y_i - slope * x_i). Breakdown point ~29%, so a
/// few outlier-contaminated sweep points (a degraded run, a partially
/// failed measurement) do not drag the fit the way least squares lets
/// them. Weights are ignored (medians are unweighted); r2/residuals are
/// reported against the robust line. O(n^2) pairs — fine for sweep-sized
/// inputs. Requires >= 2 points with two distinct x values.
[[nodiscard]] LinearFit fitTheilSen(std::span<const Point> points);

/// R^2 of an externally supplied prediction against observations.
[[nodiscard]] double coefficientOfDetermination(
    std::span<const double> observed, std::span<const double> predicted);

}  // namespace occm::stats
