#pragma once

// Empirical distributions: histograms, complementary CDFs and heavy-tail
// diagnostics. Figure 4 of the paper plots P(BurstSize > x) on log-log
// axes and classifies traffic as bursty when the tail is a straight
// decreasing diagonal (power law); these are the tools behind that plot.

#include <cstdint>
#include <span>
#include <vector>

namespace occm::stats {

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bin so no observation is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  void add(double x, std::uint64_t count) noexcept;

  [[nodiscard]] std::size_t binCount() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t binValue(std::size_t bin) const;
  [[nodiscard]] double binLow(std::size_t bin) const;
  [[nodiscard]] double binHigh(std::size_t bin) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Quantile in [0,1] by linear interpolation inside the containing bin.
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// One point of an empirical complementary CDF: P(X > x).
struct CcdfPoint {
  double x = 0.0;
  double probability = 0.0;
};

/// Builds the empirical CCDF of the samples: for each distinct value x,
/// P(X > x) = #{samples > x} / n. Zero-probability trailing point (the
/// maximum) is included with probability 0 so plots terminate.
[[nodiscard]] std::vector<CcdfPoint> empiricalCcdf(
    std::span<const double> samples);

/// CCDF over integer burst sizes, evaluated at the paper's log-spaced grid
/// (1, 2, 5, 10, 20, 50, ...), convenient for printing Figure 4 rows.
[[nodiscard]] std::vector<CcdfPoint> ccdfAt(std::span<const double> samples,
                                            std::span<const double> grid);

/// Result of fitting log10 P(X > x) = a + b * log10 x over x >= xmin.
struct TailFit {
  /// Log-log slope b (negative; a straight diagonal indicates power law).
  double slope = 0.0;
  double intercept = 0.0;
  /// R^2 of the log-log fit: near 1 means the tail is a clean diagonal.
  double r2 = 0.0;
  /// Number of CCDF points used.
  std::size_t points = 0;
};

/// Fits the log-log tail of a CCDF for x >= xmin, skipping zero-probability
/// points. Requires at least 3 usable points; returns points == 0 otherwise.
[[nodiscard]] TailFit fitLogLogTail(std::span<const CcdfPoint> ccdf,
                                    double xmin);

/// Hill estimator of the tail index alpha over the k largest samples.
/// Larger alpha = lighter tail. Returns 0 when k < 2 or data degenerate.
[[nodiscard]] double hillTailIndex(std::span<const double> samples,
                                   std::size_t k);

}  // namespace occm::stats
