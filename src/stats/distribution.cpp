#include "stats/distribution.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "stats/regression.hpp"

namespace occm::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins) {
  OCCM_REQUIRE_MSG(hi > lo, "histogram range must be non-empty");
  OCCM_REQUIRE_MSG(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) noexcept { add(x, 1); }

void Histogram::add(double x, std::uint64_t count) noexcept {
  auto raw = static_cast<std::int64_t>(std::floor((x - lo_) / width_));
  raw = std::clamp<std::int64_t>(raw, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(raw)] += count;
  total_ += count;
}

std::uint64_t Histogram::binValue(std::size_t bin) const {
  OCCM_REQUIRE(bin < counts_.size());
  return counts_[bin];
}

double Histogram::binLow(std::size_t bin) const {
  OCCM_REQUIRE(bin < counts_.size());
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::binHigh(std::size_t bin) const {
  OCCM_REQUIRE(bin < counts_.size());
  return lo_ + width_ * static_cast<double>(bin + 1);
}

double Histogram::quantile(double q) const {
  OCCM_REQUIRE(q >= 0.0 && q <= 1.0);
  OCCM_REQUIRE_MSG(total_ > 0, "quantile of an empty histogram");
  const double target = q * static_cast<double>(total_);
  std::uint64_t running = 0;
  for (std::size_t bin = 0; bin < counts_.size(); ++bin) {
    const std::uint64_t next = running + counts_[bin];
    if (static_cast<double>(next) >= target) {
      const double within =
          counts_[bin] == 0
              ? 0.0
              : (target - static_cast<double>(running)) /
                    static_cast<double>(counts_[bin]);
      return binLow(bin) + within * width_;
    }
    running = next;
  }
  return binHigh(counts_.size() - 1);
}

std::vector<CcdfPoint> empiricalCcdf(std::span<const double> samples) {
  OCCM_REQUIRE_MSG(!samples.empty(), "CCDF of an empty sample set");
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<double>(sorted.size());
  std::vector<CcdfPoint> out;
  out.reserve(sorted.size());
  std::size_t i = 0;
  while (i < sorted.size()) {
    const double x = sorted[i];
    // Advance over duplicates; P(X > x) counts strictly greater samples.
    std::size_t j = i;
    while (j < sorted.size() && sorted[j] == x) {
      ++j;
    }
    out.push_back({x, static_cast<double>(sorted.size() - j) / n});
    i = j;
  }
  return out;
}

std::vector<CcdfPoint> ccdfAt(std::span<const double> samples,
                              std::span<const double> grid) {
  OCCM_REQUIRE_MSG(!samples.empty(), "CCDF of an empty sample set");
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<double>(sorted.size());
  std::vector<CcdfPoint> out;
  out.reserve(grid.size());
  for (double x : grid) {
    const auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
    const auto greater = static_cast<double>(sorted.end() - it);
    out.push_back({x, greater / n});
  }
  return out;
}

TailFit fitLogLogTail(std::span<const CcdfPoint> ccdf, double xmin) {
  std::vector<Point> pts;
  for (const CcdfPoint& p : ccdf) {
    if (p.x >= xmin && p.x > 0.0 && p.probability > 0.0) {
      pts.push_back({std::log10(p.x), std::log10(p.probability), 1.0});
    }
  }
  TailFit fit;
  if (pts.size() < 3) {
    return fit;
  }
  const LinearFit lf = fitLinear(pts);
  fit.slope = lf.slope;
  fit.intercept = lf.intercept;
  fit.r2 = lf.r2;
  fit.points = pts.size();
  return fit;
}

double hillTailIndex(std::span<const double> samples, std::size_t k) {
  if (samples.size() < 2 || k < 2 || k > samples.size()) {
    return 0.0;
  }
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const double xk = sorted[k - 1];
  if (xk <= 0.0) {
    return 0.0;
  }
  double acc = 0.0;
  for (std::size_t i = 0; i + 1 < k; ++i) {
    acc += std::log(sorted[i] / xk);
  }
  return acc == 0.0 ? 0.0 : static_cast<double>(k - 1) / acc;
}

}  // namespace occm::stats
