#pragma once

// Graceful-degradation policy of the advisor server, kept pure so the
// overload ladder is unit-testable without sockets or clocks: the caller
// feeds in observed load (queue depth, deadline slack, the tier-1
// latency EWMA) and gets back a typed decision — serve tier 1, degrade
// to tier 0 with a named reason, or shed with a named reason. The server
// translates decisions into wire responses and serve.* metrics; this
// header never reads a clock.

#include <cstddef>
#include <cstdint>

#include "serve/protocol.hpp"

namespace occm::serve {

/// Exponentially weighted moving average of tier-1 service latency. The
/// first sample seeds the average (no warm-up bias toward zero).
class LatencyEwma {
 public:
  explicit LatencyEwma(double alpha = 0.2) : alpha_(alpha) {}

  void sample(double ms) noexcept {
    if (!seeded_) {
      value_ = ms;
      seeded_ = true;
      return;
    }
    value_ += alpha_ * (ms - value_);
  }

  [[nodiscard]] bool seeded() const noexcept { return seeded_; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

/// Thresholds of the overload ladder. Zero disables a rung (the server
/// never trips it).
struct DegradeConfig {
  /// Admission queue bound: at or beyond `queueCapacity` pending jobs new
  /// requests shed with kQueueFull.
  std::size_t queueCapacity = 16;
  /// Pending-job depth at or beyond which tier-1 refinement is bypassed
  /// (tier-0 answer flagged kQueueDepth). 0 = never.
  std::size_t degradeQueueDepth = 8;
  /// Deadline slack (ms) below which tier 1 is not even attempted
  /// (kDeadlineSlack). 0 = never.
  double minTier1SlackMs = 0.0;
  /// Tier-1 latency EWMA (ms) at or beyond which the server downgrades to
  /// tier-0-only (kTier1Latency). 0 = never.
  double maxTier1EwmaMs = 0.0;
  /// EWMA smoothing factor.
  double ewmaAlpha = 0.2;
};

/// What the policy saw when it decided (the server's ground truth for a
/// request's admission).
struct DegradeInputs {
  std::size_t queueDepth = 0;  ///< pending jobs at arrival
  bool draining = false;       ///< SIGTERM received; no new admissions
  bool deadlineArmed = false;
  double deadlineSlackMs = 0.0;  ///< remaining ms (<= 0: already expired)
  bool ewmaSeeded = false;
  double tier1EwmaMs = 0.0;
  TierPreference preference = TierPreference::kAuto;
  /// True when a fitted model is already cached — a tier-0 answer is
  /// then instantaneous and needs no queue slot.
  bool modelWarm = false;
};

/// The policy's verdict for one arriving request.
struct AdmissionDecision {
  enum class Action : std::uint8_t {
    kServeTier1 = 0,  ///< admit; submit simulator refinement
    kServeTier0 = 1,  ///< answer from the fitted model
    kShed = 2,        ///< typed rejection, no work done
  };
  Action action = Action::kServeTier0;
  /// kShed only.
  ShedReason shedReason = ShedReason::kNone;
  /// kServeTier0 only: set when the client wanted (or would have gotten)
  /// tier 1 and the ladder downgraded it.
  bool degraded = false;
  DegradeReason degradeReason = DegradeReason::kNone;
};

/// One step of the overload ladder, in priority order:
///   draining > queue bound > deadline feasibility > explicit tier-0
///   preference > degradation rungs (queue depth, deadline slack, EWMA).
/// A warm tier-0 answer needs no queue slot, so an explicit kTier0
/// request on a warm model is served even when the queue is full — the
/// analytic tier is exactly the part that must keep answering under
/// saturation. A cold model always needs a fit job, hence a slot.
[[nodiscard]] inline AdmissionDecision decideAdmission(
    const DegradeConfig& config, const DegradeInputs& in) {
  AdmissionDecision out;
  if (in.draining) {
    out.action = AdmissionDecision::Action::kShed;
    out.shedReason = ShedReason::kDraining;
    return out;
  }
  // A deadline that is already hopeless sheds before consuming a slot.
  if (in.deadlineArmed && in.deadlineSlackMs <= 0.0) {
    out.action = AdmissionDecision::Action::kShed;
    out.shedReason = ShedReason::kDeadlineInfeasible;
    return out;
  }
  const bool wantsTier0Only = in.preference == TierPreference::kTier0;
  const bool needsSlot = !(wantsTier0Only && in.modelWarm);
  if (needsSlot && in.queueDepth >= config.queueCapacity) {
    out.action = AdmissionDecision::Action::kShed;
    out.shedReason = ShedReason::kQueueFull;
    return out;
  }
  if (wantsTier0Only) {
    out.action = AdmissionDecision::Action::kServeTier0;
    return out;
  }
  // Degradation rungs, cheapest signal first.
  if (config.degradeQueueDepth != 0 &&
      in.queueDepth >= config.degradeQueueDepth) {
    out.action = AdmissionDecision::Action::kServeTier0;
    out.degraded = true;
    out.degradeReason = DegradeReason::kQueueDepth;
    return out;
  }
  if (config.minTier1SlackMs > 0.0 && in.deadlineArmed &&
      in.deadlineSlackMs < config.minTier1SlackMs) {
    out.action = AdmissionDecision::Action::kServeTier0;
    out.degraded = true;
    out.degradeReason = DegradeReason::kDeadlineSlack;
    return out;
  }
  if (config.maxTier1EwmaMs > 0.0 && in.ewmaSeeded &&
      in.tier1EwmaMs >= config.maxTier1EwmaMs) {
    out.action = AdmissionDecision::Action::kServeTier0;
    out.degraded = true;
    out.degradeReason = DegradeReason::kTier1Latency;
    return out;
  }
  out.action = AdmissionDecision::Action::kServeTier1;
  return out;
}

}  // namespace occm::serve
