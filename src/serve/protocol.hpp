#pragma once

// Wire protocol of the capacity-advisor service: the request/response
// pair clients and the advisor server exchange over framed TCP (the same
// length-prefixed CRC-32 frames as the distributed fleet, reassembled by
// exec/frame_transport; fixed-width little-endian fields through
// exec/wire_codec).
//
// The response carries the server's overload decisions as typed enums,
// never as prose: a shed names its reason (queue-full / deadline-
// infeasible / draining / bad-request), a degraded answer names what
// tripped the downgrade (queue depth, deadline slack, tier-1 latency
// EWMA, a deadline that expired mid-refinement). Clients that retry or
// back off branch on the enums; the strings are diagnostics only.
//
// Every decode is bounds-checked through exec::wire::Reader — arbitrary
// bytes produce a typed IpcError, never a throw — and accepted payloads
// are re-encode fixed points (fuzz/fuzz_serve_message.cpp).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/expected.hpp"
#include "exec/ipc.hpp"

namespace occm::serve {

/// Bumped on any incompatible message/codec change; the server rejects a
/// mismatched request version as kBadRequest before doing any work.
inline constexpr std::uint32_t kServeProtocolVersion = 1;

/// Client's tier preference. kAuto lets the server pick (and degrade);
/// kTier0 asks for the analytic answer only (never queued, never
/// degraded-flagged); kTier1 insists on simulator refinement — the server
/// still sheds or degrades it under overload, it just never *chooses*
/// tier 0 for headroom reasons when the ladder is healthy.
enum class TierPreference : std::uint8_t {
  kAuto = 0,
  kTier0 = 1,
  kTier1 = 2,
};

/// One capacity query: "how will workload W scale on topology T over
/// cores [coreMin, coreMax]?".
struct AdvisorRequest {
  std::uint32_t protocolVersion = kServeProtocolVersion;
  std::uint64_t requestId = 0;  ///< echoed verbatim; client's routing key
  std::string program;          ///< "SP", "CG", ... (workloads::Program)
  std::string problemClass;     ///< "S", "C", ... (workloads::ProblemClass)
  std::string machine;          ///< topology preset token ("intel-numa24")
  std::int32_t coreMin = 0;     ///< 0 = 1
  std::int32_t coreMax = 0;     ///< 0 = machine's total cores
  /// Per-request deadline in milliseconds; 0 = none. Carried into a
  /// cancellation token on the server: tier-1 work past the deadline is
  /// cancelled at the simulator's event-loop boundary, never abandoned.
  std::uint32_t deadlineMs = 0;
  TierPreference tier = TierPreference::kAuto;
  /// Efficiency threshold for the advice row (SpeedupAdvice).
  double efficiencyThreshold = 0.5;
};

/// How a request was ultimately answered.
enum class ResponseStatus : std::uint8_t {
  kOk = 0,    ///< rows + advice are valid
  kShed = 1,  ///< admission control refused it (see shedReason)
  kError = 2, ///< accepted but unanswerable (fit failure, ...); see error
};

/// Typed admission-control rejections (ResponseStatus::kShed).
enum class ShedReason : std::uint8_t {
  kNone = 0,
  kQueueFull = 1,           ///< admission queue at capacity
  kDeadlineInfeasible = 2,  ///< deadline expired/too tight to even start
  kDraining = 3,            ///< server is draining (SIGTERM)
  kBadRequest = 4,          ///< malformed: unknown workload/machine/range
};

/// Why an answer was served from tier 0 when tier 1 was wanted.
enum class DegradeReason : std::uint8_t {
  kNone = 0,
  kQueueDepth = 1,     ///< admission queue depth crossed the threshold
  kDeadlineSlack = 2,  ///< deadline slack below the tier-1 floor
  kTier1Latency = 3,   ///< tier-1 latency EWMA crossed the threshold
  kDeadlineMiss = 4,   ///< the tier-1 path (fit or refinement) missed the
                       ///< deadline mid-flight; tier-0 fallback answer
};

[[nodiscard]] constexpr const char* toString(ShedReason reason) noexcept {
  switch (reason) {
    case ShedReason::kNone: return "none";
    case ShedReason::kQueueFull: return "queue-full";
    case ShedReason::kDeadlineInfeasible: return "deadline-infeasible";
    case ShedReason::kDraining: return "draining";
    case ShedReason::kBadRequest: return "bad-request";
  }
  return "unknown";
}

[[nodiscard]] constexpr const char* toString(DegradeReason reason) noexcept {
  switch (reason) {
    case DegradeReason::kNone: return "none";
    case DegradeReason::kQueueDepth: return "queue-depth";
    case DegradeReason::kDeadlineSlack: return "deadline-slack";
    case DegradeReason::kTier1Latency: return "tier1-latency";
    case DegradeReason::kDeadlineMiss: return "deadline-miss";
  }
  return "unknown";
}

/// One per-core-count prediction row. Tier 0 rows are pure model
/// predictions; tier 1 rows carry measured cycles where the refinement
/// sweep completed that core count (measured == true).
struct AdvisorRow {
  std::int32_t cores = 0;
  double cycles = 0.0;      ///< C(n), predicted or measured
  double omega = 0.0;       ///< degree of contention vs C(1)
  double speedup = 0.0;
  double efficiency = 0.0;
  bool measured = false;    ///< tier-1 simulator ground truth
};

struct AdvisorResponse {
  std::uint64_t requestId = 0;
  ResponseStatus status = ResponseStatus::kOk;
  ShedReason shedReason = ShedReason::kNone;
  /// 0 = analytic (fitted model), 1 = simulator-refined.
  std::uint8_t tier = 0;
  /// True when the server answered below the client's preference; the
  /// reason names the threshold that tripped.
  bool degraded = false;
  DegradeReason degradeReason = DegradeReason::kNone;
  bool cacheHit = false;  ///< fitted model came from the warm LRU cache
  /// Admission-queue depth observed at admission (load feedback for
  /// client-side backoff).
  std::uint32_t queueDepth = 0;
  std::vector<AdvisorRow> rows;
  // SpeedupAdvice summary.
  std::int32_t bestCores = 1;
  double bestSpeedup = 1.0;
  std::int32_t efficientCores = 1;
  std::string error;  ///< kShed/kError diagnostics (human-readable)
};

/// A serve frame payload in either direction, tagged by kind.
struct ServeMessage {
  enum class Kind : std::uint8_t {
    kRequest = 1,
    kResponse = 2,
  };
  Kind kind = Kind::kRequest;
  AdvisorRequest request;    ///< kRequest
  AdvisorResponse response;  ///< kResponse
};

/// Serializes one message (frame payload only; the transport frames it).
[[nodiscard]] std::string encodeServeMessage(const ServeMessage& message);

/// Decodes what encodeServeMessage produced. Every field is bounds-checked
/// and every enum range-validated; arbitrary bytes yield a typed IpcError.
[[nodiscard]] Expected<ServeMessage, exec::IpcError> decodeServeMessage(
    std::string_view payload);

}  // namespace occm::serve
