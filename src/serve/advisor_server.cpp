#include "serve/advisor_server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "analysis/advisor.hpp"
#include "analysis/experiment.hpp"
#include "core/speedup.hpp"
#include "exec/frame_transport.hpp"
#include "exec/ipc.hpp"
#include "exec/thread_pool.hpp"
#include "topology/presets.hpp"
#include "workloads/problem.hpp"

namespace occm::serve {

namespace {

/// One connected client, wrapped in its framed transport (the chaos
/// injection point). A corrupt stream drops the connection (a flipped
/// length field poisons every later frame boundary — same contract as
/// the fleet).
struct Connection {
  int fd = -1;  ///< poll handle; owned by the transport
  std::unique_ptr<exec::FrameTransport> transport;
  bool dead = false;
  /// Peer sent FIN (shutdown(SHUT_WR)) but may still be reading: stop
  /// polling its read side, keep delivering in-flight answers, reap once
  /// nothing references it.
  bool peerClosedWrite = false;
  std::uint64_t decodedRequests = 0;
  // Read-progress guard bookkeeping (see readProgressTimeoutMs).
  std::uint64_t lastRxBytes = 0;
  std::uint64_t lastProgressMs = 0;
};

/// A request's wire identity and admission evidence, everything needed to
/// answer it once its background work (fit and/or tier-1 sweep) lands.
struct PendingRequest {
  std::uint64_t serverId = 0;
  int connFd = -1;  ///< -1 once the client vanished (answer dropped)
  AdvisorRequest request;
  // Resolved request (validated at admission).
  topology::MachineSpec machine;
  model::MachineShape shape;
  workloads::WorkloadSpec workload;
  int coreMin = 1;
  int coreMax = 1;
  ModelKey key;
  Deadline deadline;  ///< unarmed when deadlineMs == 0
  bool wantTier1 = false;
  /// Degradation verdict at admission (kept for the final response when
  /// the request was downgraded before any work started).
  bool degraded = false;
  DegradeReason degradeReason = DegradeReason::kNone;
  bool cacheHit = false;
  std::uint32_t queueDepthAtAdmission = 0;
  /// Tier-1 only: the per-request stop flag the deadline watchdog fires.
  CancellationSource cancel;
  bool stopRequested = false;
  bool tier1Submitted = false;
  /// The fitted model this request will answer from, pinned at submit
  /// time so LRU eviction mid-sweep cannot orphan the answer.
  std::optional<model::ContentionModel> model;
};

/// What a pool job posts back to the loop through the self-pipe.
struct Completion {
  enum class Kind : std::uint8_t { kFit, kTier1 };
  Kind kind = Kind::kFit;
  // kFit:
  ModelKey modelKey;
  bool fitOk = false;
  analysis::AdvisorModel fitted;
  std::string fitError;
  // kTier1:
  std::uint64_t serverId = 0;
  analysis::SweepResult sweep;
  double elapsedMs = 0.0;
};

struct Resolved {
  topology::MachineSpec machine;
  model::MachineShape shape;
  workloads::WorkloadSpec workload;
  int coreMin = 1;
  int coreMax = 1;
};

/// Validates a request against the preset/workload catalogues. A failure
/// is a typed kBadRequest shed, never a throw.
Expected<Resolved, std::string> resolveRequest(const AdvisorRequest& request,
                                               std::uint64_t workloadSeed) {
  if (request.protocolVersion != kServeProtocolVersion) {
    return makeUnexpected("protocol version " +
                          std::to_string(request.protocolVersion) + " != " +
                          std::to_string(kServeProtocolVersion));
  }
  Resolved out;
  const auto machine = topology::presetByName(request.machine);
  if (!machine.has_value()) {
    std::string known;
    for (const std::string& name : topology::presetNames()) {
      known += (known.empty() ? "" : ", ") + name;
    }
    return makeUnexpected("unknown machine preset '" + request.machine +
                          "' (known: " + known + ")");
  }
  out.machine = *machine;
  out.shape = model::shapeOf(out.machine);
  const auto program = workloads::parseProgram(request.program);
  const auto problemClass = workloads::parseProblemClass(request.problemClass);
  if (!program.has_value() || !problemClass.has_value() ||
      !workloads::classValidFor(*program, *problemClass)) {
    return makeUnexpected("unknown workload '" + request.program + "." +
                          request.problemClass + "'");
  }
  out.workload.program = *program;
  out.workload.problemClass = *problemClass;
  out.workload.threads = 0;  // resolved to machine cores by the harness
  out.workload.seed = workloadSeed;
  const int total = out.shape.totalCores();
  out.coreMin = request.coreMin == 0 ? 1 : request.coreMin;
  out.coreMax = request.coreMax == 0 ? total : request.coreMax;
  if (out.coreMin < 1 || out.coreMax < out.coreMin || out.coreMax > total) {
    return makeUnexpected("core range [" + std::to_string(request.coreMin) +
                          ", " + std::to_string(request.coreMax) +
                          "] invalid for a " + std::to_string(total) +
                          "-core machine");
  }
  if (!std::isfinite(request.efficiencyThreshold) ||
      request.efficiencyThreshold <= 0.0 ||
      request.efficiencyThreshold > 1.0) {
    return makeUnexpected(
        std::string("efficiency threshold must be in (0, 1]"));
  }
  return out;
}

/// Tier-0 prediction rows straight from the fitted model.
void fillTier0Rows(AdvisorResponse& response, const model::ContentionModel& m,
                   int coreMin, int coreMax) {
  for (int n = coreMin; n <= coreMax; ++n) {
    AdvisorRow row;
    row.cores = n;
    row.cycles = m.predictCycles(n);
    row.omega = m.predictOmega(n);
    row.speedup = model::predictSpeedup(m, n);
    row.efficiency = model::predictEfficiency(m, n);
    row.measured = false;
    response.rows.push_back(row);
  }
}

void fillAdvice(AdvisorResponse& response, const model::ContentionModel& m,
                double efficiencyThreshold) {
  const model::SpeedupAdvice advice =
      model::adviseCores(m, efficiencyThreshold);
  response.bestCores = advice.bestCores;
  response.bestSpeedup = advice.bestSpeedup;
  response.efficientCores = advice.efficientCores;
}

}  // namespace

AdvisorServerStats runAdvisorServer(const AdvisorServerConfig& config) {
  AdvisorServerStats stats;

  int boundPort = 0;
  auto listened = exec::listenTcp(config.host, config.port, &boundPort);
  if (!listened) {
    stats.error = listened.error();
    return stats;
  }
  int listenFd = *listened;
  const int listenFlags = ::fcntl(listenFd, F_GETFL, 0);
  ::fcntl(listenFd, F_SETFL, listenFlags | O_NONBLOCK);

  // Self-pipe: pool completions wake the poll loop.
  int wakePipe[2] = {-1, -1};
  if (::pipe(wakePipe) != 0) {
    stats.error = std::string("pipe: ") + std::strerror(errno);
    ::close(listenFd);
    return stats;
  }
  for (const int fd : {wakePipe[0], wakePipe[1]}) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }

  if (config.onListening) {
    config.onListening(boundPort);
  }

  const auto start = std::chrono::steady_clock::now();
  auto nowMs = [&start]() -> std::uint64_t {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
  };

  // serve.* gauges (cumulative counts recorded against ms-since-start,
  // the registry convention the dist.* gauges set).
  obs::TimeSeries* depthGauge = nullptr;
  obs::TimeSeries* shedGauge = nullptr;
  obs::TimeSeries* degradedGauge = nullptr;
  obs::TimeSeries* deadlineMissGauge = nullptr;
  obs::TimeSeries* tier0Gauge = nullptr;
  obs::TimeSeries* tier1Gauge = nullptr;
  obs::TimeSeries* ewmaGauge = nullptr;
  obs::TimeSeries* hitRateGauge = nullptr;
  if (config.metrics != nullptr) {
    depthGauge = &config.metrics->gauge("serve.queue.depth", "requests");
    shedGauge = &config.metrics->gauge("serve.shed", "requests");
    degradedGauge = &config.metrics->gauge("serve.degraded", "requests");
    deadlineMissGauge =
        &config.metrics->gauge("serve.deadline_miss", "requests");
    tier0Gauge = &config.metrics->gauge("serve.tier0", "requests");
    tier1Gauge = &config.metrics->gauge("serve.tier1", "requests");
    ewmaGauge = &config.metrics->gauge("serve.tier1.ewma_ms", "ms");
    hitRateGauge = &config.metrics->gauge("serve.cache.hit_rate", "");
  }

  ModelCache cache(config.cacheCapacity);
  LatencyEwma ewma(config.degrade.ewmaAlpha);

  std::map<int, std::unique_ptr<Connection>> conns;  // by fd
  std::uint64_t nextConnectionId = 0;
  std::unordered_map<std::uint64_t, PendingRequest> pending;  // by serverId
  /// Requests parked on an in-flight fit, by ModelKey::str().
  std::unordered_map<std::string, std::vector<std::uint64_t>> parked;
  std::uint64_t nextServerId = 1;
  std::size_t queueDepth = 0;  // admitted requests holding a slot
  bool draining = false;

  std::mutex completionsMutex;
  std::vector<Completion> completions;

  // Pool sized so submit() can never block the loop: outstanding jobs are
  // bounded by the admission queue, which is itself bounded.
  exec::ThreadPoolConfig poolConfig;
  poolConfig.workers = config.workers;
  poolConfig.queueCapacity = config.degrade.queueCapacity +
                             static_cast<std::size_t>(config.workers > 0
                                                          ? config.workers
                                                          : 0) +
                             4;
  auto pool = std::make_unique<exec::ThreadPool>(poolConfig);

  auto postCompletion = [&](Completion&& done) {
    {
      std::lock_guard<std::mutex> lock(completionsMutex);
      completions.push_back(std::move(done));
    }
    const char byte = 1;
    // Best effort: a full pipe already guarantees a pending wakeup.
    (void)!::write(wakePipe[1], &byte, 1);
  };

  auto recordGauges = [&](std::uint64_t atOverride = 0) {
    if (config.metrics == nullptr) {
      return;
    }
    const std::uint64_t at = atOverride != 0 ? atOverride : nowMs();
    depthGauge->record(at, static_cast<double>(queueDepth));
    shedGauge->record(
        at, static_cast<double>(stats.shedQueueFull +
                                stats.shedDeadlineInfeasible +
                                stats.shedDraining + stats.shedBadRequest));
    degradedGauge->record(at, static_cast<double>(stats.degraded));
    deadlineMissGauge->record(at, static_cast<double>(stats.deadlineMisses));
    tier0Gauge->record(at, static_cast<double>(stats.tier0Served));
    tier1Gauge->record(at, static_cast<double>(stats.tier1Served));
    ewmaGauge->record(at, ewma.seeded() ? ewma.value() : 0.0);
    const ModelCacheStats c = cache.stats();
    const std::uint64_t looks = c.hits + c.misses;
    hitRateGauge->record(at, looks == 0
                                 ? 0.0
                                 : static_cast<double>(c.hits) /
                                       static_cast<double>(looks));
  };

  auto sendResponse = [&](int connFd, const AdvisorResponse& response) {
    const auto it = conns.find(connFd);
    if (connFd < 0 || it == conns.end() || it->second->dead) {
      return;  // client vanished; the answer has no address
    }
    ServeMessage message;
    message.kind = ServeMessage::Kind::kResponse;
    message.response = response;
    if (!it->second->transport->sendFrame(encodeServeMessage(message))) {
      it->second->dead = true;
      return;
    }
    ++stats.responsesSent;
  };

  auto sendShed = [&](int connFd, std::uint64_t requestId, ShedReason reason,
                      const std::string& detail) {
    AdvisorResponse response;
    response.requestId = requestId;
    response.status = ResponseStatus::kShed;
    response.shedReason = reason;
    response.queueDepth = static_cast<std::uint32_t>(queueDepth);
    response.error = detail;
    switch (reason) {
      case ShedReason::kQueueFull: ++stats.shedQueueFull; break;
      case ShedReason::kDeadlineInfeasible:
        ++stats.shedDeadlineInfeasible;
        break;
      case ShedReason::kDraining: ++stats.shedDraining; break;
      case ShedReason::kBadRequest: ++stats.shedBadRequest; break;
      case ShedReason::kNone: break;
    }
    sendResponse(connFd, response);
    recordGauges();
  };

  /// Serves a finished (kOk) answer and releases the request's slot when
  /// it held one.
  auto finishRequest = [&](PendingRequest& p, AdvisorResponse&& response,
                           bool heldSlot) {
    response.requestId = p.request.requestId;
    response.queueDepth = p.queueDepthAtAdmission;
    response.cacheHit = p.cacheHit;
    if (response.status == ResponseStatus::kOk) {
      if (response.tier == 0) {
        ++stats.tier0Served;
      } else {
        ++stats.tier1Served;
      }
      if (response.degraded) {
        ++stats.degraded;
      }
    }
    sendResponse(p.connFd, response);
    if (heldSlot && queueDepth > 0) {
      --queueDepth;
    }
    recordGauges();
  };

  auto tier0Answer = [&](const PendingRequest& p,
                         const model::ContentionModel& m, bool degraded,
                         DegradeReason reason) {
    AdvisorResponse response;
    response.status = ResponseStatus::kOk;
    response.tier = 0;
    response.degraded = degraded;
    response.degradeReason = reason;
    fillTier0Rows(response, m, p.coreMin, p.coreMax);
    fillAdvice(response, m, p.request.efficiencyThreshold);
    return response;
  };

  auto submitFit = [&](const PendingRequest& p) {
    analysis::AdvisorFitConfig fit;
    fit.machine = p.machine;
    fit.workload = p.workload;
    fit.sim = config.sim;
    fit.maxAttempts = config.maxAttempts;
    fit.workers = 1;  // serial inside the task; parallelism across requests
    fit.options = config.fitOptions;
    fit.beforeRun = config.beforeFitRun;
    const ModelKey key = p.key;
    (void)pool->submit([&postCompletion, fit = std::move(fit), key]() {
      Completion done;
      done.kind = Completion::Kind::kFit;
      done.modelKey = key;
      auto fitted = analysis::fitAdvisorModel(fit);
      if (fitted) {
        done.fitOk = true;
        done.fitted = std::move(*fitted);
      } else {
        done.fitError = fitted.error().describe();
      }
      postCompletion(std::move(done));
    });
  };

  auto submitTier1 = [&](PendingRequest& p) {
    p.tier1Submitted = true;
    analysis::SweepConfig sweep;
    sweep.machine = p.machine;
    sweep.workload = p.workload;
    sweep.sim = config.sim;
    sweep.coreCounts.clear();
    for (int n = p.coreMin; n <= p.coreMax; ++n) {
      sweep.coreCounts.push_back(n);
    }
    sweep.maxAttempts = config.maxAttempts;
    sweep.parallel.workers = 1;
    sweep.cancel = p.cancel.token();
    sweep.beforeRun = config.beforeTier1Run;
    const std::uint64_t serverId = p.serverId;
    (void)pool->submit([&postCompletion, sweep = std::move(sweep),
                        serverId]() {
      const auto t0 = std::chrono::steady_clock::now();
      Completion done;
      done.kind = Completion::Kind::kTier1;
      done.serverId = serverId;
      done.sweep = analysis::runSweep(sweep);
      done.elapsedMs = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
      postCompletion(std::move(done));
    });
  };

  auto handleRequest = [&](Connection& conn, const AdvisorRequest& request) {
    ++stats.requestsDecoded;
    auto resolved = resolveRequest(request, config.workloadSeed);
    if (!resolved) {
      sendShed(conn.fd, request.requestId, ShedReason::kBadRequest,
               resolved.error());
      return;
    }
    PendingRequest p;
    p.serverId = nextServerId++;
    p.connFd = conn.fd;
    p.request = request;
    p.machine = std::move(resolved->machine);
    p.shape = resolved->shape;
    p.workload = resolved->workload;
    p.coreMin = resolved->coreMin;
    p.coreMax = resolved->coreMax;
    p.key = ModelKey{request.program, request.problemClass, request.machine};
    if (request.deadlineMs != 0) {
      p.deadline =
          Deadline::after(static_cast<double>(request.deadlineMs) / 1'000.0);
    }
    p.queueDepthAtAdmission = static_cast<std::uint32_t>(queueDepth);

    const auto cached = cache.lookup(p.key);
    p.cacheHit = cached.has_value();

    DegradeInputs inputs;
    inputs.queueDepth = queueDepth;
    inputs.draining = draining;
    inputs.deadlineArmed = p.deadline.armed();
    inputs.deadlineSlackMs = p.deadline.armed()
                                 ? p.deadline.remainingSeconds() * 1'000.0
                                 : 0.0;
    inputs.ewmaSeeded = ewma.seeded();
    inputs.tier1EwmaMs = ewma.value();
    inputs.preference = request.tier;
    inputs.modelWarm = cached.has_value();
    const AdmissionDecision decision = decideAdmission(config.degrade, inputs);

    if (decision.action == AdmissionDecision::Action::kShed) {
      sendShed(conn.fd, request.requestId, decision.shedReason,
               std::string("shed: ") + toString(decision.shedReason));
      return;
    }
    p.wantTier1 = decision.action == AdmissionDecision::Action::kServeTier1;
    p.degraded = decision.degraded;
    p.degradeReason = decision.degradeReason;

    if (!p.wantTier1 && cached.has_value()) {
      // Warm tier 0: answered inline, no queue slot, microseconds.
      AdvisorResponse response =
          tier0Answer(p, *cached, p.degraded, p.degradeReason);
      finishRequest(p, std::move(response), /*heldSlot=*/false);
      return;
    }

    // Everything else needs background work and therefore a slot.
    ++queueDepth;
    stats.maxQueueDepth = std::max<std::uint64_t>(stats.maxQueueDepth,
                                                  queueDepth);
    recordGauges();
    const std::uint64_t serverId = p.serverId;
    if (cached.has_value()) {
      p.model = *cached;
      pending.emplace(serverId, std::move(p));
      submitTier1(pending.at(serverId));
      return;
    }
    const std::string key = p.key.str();
    const bool owner = cache.beginFit(p.key);
    pending.emplace(serverId, std::move(p));
    parked[key].push_back(serverId);
    if (owner) {
      submitFit(pending.at(serverId));
    }
  };

  auto handleFitCompletion = [&](Completion& done) {
    if (!done.fitOk) {
      ++stats.fitFailures;
    }
    // Publish (or, on failure, release the single-flight claim so the
    // next request retries — a transient measurement failure must not
    // poison the key forever).
    cache.completeFit(done.modelKey, done.fitOk, done.fitted.model);
    std::vector<std::uint64_t> waiters;
    const auto parkedIt = parked.find(done.modelKey.str());
    if (parkedIt != parked.end()) {
      waiters = std::move(parkedIt->second);
      parked.erase(parkedIt);
    }
    for (const std::uint64_t serverId : waiters) {
      const auto it = pending.find(serverId);
      if (it == pending.end()) {
        continue;
      }
      PendingRequest& p = it->second;
      if (!done.fitOk) {
        AdvisorResponse response;
        response.status = ResponseStatus::kError;
        response.error = "model fit failed: " + done.fitError;
        finishRequest(p, std::move(response), /*heldSlot=*/true);
        pending.erase(it);
        continue;
      }
      const model::ContentionModel& m = done.fitted.model;
      if (p.deadline.armed() && p.deadline.expired()) {
        // The deadline died while the fit ran: tier-0 fallback, flagged.
        ++stats.deadlineMisses;
        AdvisorResponse response =
            tier0Answer(p, m, true, DegradeReason::kDeadlineMiss);
        finishRequest(p, std::move(response), /*heldSlot=*/true);
        pending.erase(it);
        continue;
      }
      if (!p.wantTier1) {
        AdvisorResponse response =
            tier0Answer(p, m, p.degraded, p.degradeReason);
        finishRequest(p, std::move(response), /*heldSlot=*/true);
        pending.erase(it);
        continue;
      }
      // Re-run the degradation rungs with post-fit conditions (the EWMA
      // or queue may have crossed a threshold while the fit ran).
      DegradeInputs inputs;
      inputs.queueDepth = queueDepth > 0 ? queueDepth - 1 : 0;  // sans self
      inputs.draining = false;  // already admitted; drain completes it
      inputs.deadlineArmed = p.deadline.armed();
      inputs.deadlineSlackMs = p.deadline.armed()
                                   ? p.deadline.remainingSeconds() * 1'000.0
                                   : 0.0;
      inputs.ewmaSeeded = ewma.seeded();
      inputs.tier1EwmaMs = ewma.value();
      inputs.preference = p.request.tier;
      inputs.modelWarm = true;
      const AdmissionDecision redecide =
          decideAdmission(config.degrade, inputs);
      if (redecide.action == AdmissionDecision::Action::kServeTier0 ||
          redecide.action == AdmissionDecision::Action::kShed) {
        AdvisorResponse response = tier0Answer(
            p, m, redecide.degraded, redecide.degradeReason);
        finishRequest(p, std::move(response), /*heldSlot=*/true);
        pending.erase(it);
        continue;
      }
      p.model = m;
      submitTier1(p);
    }
  };

  auto handleTier1Completion = [&](Completion& done) {
    const auto it = pending.find(done.serverId);
    if (it == pending.end()) {
      return;
    }
    PendingRequest& p = it->second;
    // The model was pinned on the request at submit time, so LRU eviction
    // mid-sweep cannot orphan the answer.
    const model::ContentionModel& m = *p.model;
    if (done.sweep.stopped) {
      // Deadline fired mid-refinement; cooperative cancellation unwound
      // the run at the event-loop boundary. Tier-0 fallback, flagged.
      ++stats.deadlineMisses;
      AdvisorResponse response =
          tier0Answer(p, m, true, DegradeReason::kDeadlineMiss);
      finishRequest(p, std::move(response), /*heldSlot=*/true);
      pending.erase(it);
      return;
    }
    ewma.sample(done.elapsedMs);
    stats.tier1EwmaMs = ewma.value();

    AdvisorResponse response;
    response.status = ResponseStatus::kOk;
    response.tier = 1;
    response.degraded = false;
    response.degradeReason = DegradeReason::kNone;
    // Measured rows where the sweep completed the core count; model
    // predictions fill the holes (a permanently failed run must not sink
    // the whole answer).
    std::map<int, double> measured;
    for (const model::MeasuredPoint& point : done.sweep.points()) {
      measured[point.cores] = point.totalCycles;
    }
    const double c1 = m.measuredC1();
    for (int n = p.coreMin; n <= p.coreMax; ++n) {
      AdvisorRow row;
      row.cores = n;
      const auto found = measured.find(n);
      if (found != measured.end() && c1 > 0.0) {
        row.cycles = found->second;
        row.omega = (found->second - c1) / c1;
        row.speedup = static_cast<double>(n) * c1 / found->second;
        row.efficiency = row.speedup / static_cast<double>(n);
        row.measured = true;
      } else {
        // A permanently failed run must not sink the whole answer: model
        // predictions fill the holes.
        row.cycles = m.predictCycles(n);
        row.omega = m.predictOmega(n);
        row.speedup = model::predictSpeedup(m, n);
        row.efficiency = model::predictEfficiency(m, n);
        row.measured = false;
      }
      response.rows.push_back(row);
    }
    fillAdvice(response, m, p.request.efficiencyThreshold);
    finishRequest(p, std::move(response), /*heldSlot=*/true);
    pending.erase(it);
  };

  auto drainCompletions = [&]() {
    std::vector<Completion> batch;
    {
      std::lock_guard<std::mutex> lock(completionsMutex);
      batch.swap(completions);
    }
    for (Completion& done : batch) {
      if (done.kind == Completion::Kind::kFit) {
        handleFitCompletion(done);
      } else {
        handleTier1Completion(done);
      }
    }
  };

  // --- Event loop ---------------------------------------------------------
  for (;;) {
    // Drain trigger: stop accepting, shed new work, finish what's in
    // flight, then leave.
    if (!draining && config.drain.valid() && config.drain.stopRequested()) {
      draining = true;
      if (listenFd >= 0) {
        ::close(listenFd);
        listenFd = -1;
      }
      if (config.onDraining) {
        config.onDraining();
      }
    }
    drainCompletions();

    // Deadline watchdog: fire the stop flag of every in-flight tier-1
    // request whose deadline passed; the simulator observes it at the
    // next event-loop boundary.
    std::uint64_t nextDeadlineMs = 0;
    bool haveDeadline = false;
    for (auto& [serverId, p] : pending) {
      if (!p.deadline.armed() || p.stopRequested) {
        continue;
      }
      const double remaining = p.deadline.remainingSeconds();
      if (remaining <= 0.0) {
        if (p.tier1Submitted) {
          p.cancel.requestStop();
          p.stopRequested = true;
          if (config.onDeadlineCancel) {
            config.onDeadlineCancel(p.request.requestId);
          }
        }
        // Parked requests resolve at fit completion (the shared fit
        // cannot be cancelled on behalf of one waiter).
        continue;
      }
      const auto ms = static_cast<std::uint64_t>(remaining * 1'000.0) + 1;
      nextDeadlineMs = haveDeadline ? std::min(nextDeadlineMs, ms) : ms;
      haveDeadline = true;
    }

    if (draining && queueDepth == 0 && pending.empty()) {
      stats.drained = true;
      break;
    }

    // Read-progress guard: a connection that never produced a request,
    // or is sitting on a half-finished frame, must keep bytes flowing —
    // a slowloris dribbling one byte per poll tick, or a socket that
    // connected and went silent, is dropped here instead of holding its
    // slot forever. Idle established clients (no partial frame, at least
    // one decoded request) are exempt: keep-alive is legitimate.
    if (config.readProgressTimeoutMs != 0) {
      const std::uint64_t now = nowMs();
      for (auto& [fd, conn] : conns) {
        if (conn->dead || conn->peerClosedWrite) {
          continue;
        }
        const std::uint64_t rx = conn->transport->bytesReceived();
        if (rx != conn->lastRxBytes) {
          conn->lastRxBytes = rx;
          conn->lastProgressMs = now;
          continue;
        }
        const bool suspicious =
            conn->transport->partialBytes() > 0 || conn->decodedRequests == 0;
        if (suspicious &&
            now >= conn->lastProgressMs + config.readProgressTimeoutMs) {
          conn->dead = true;
          ++stats.connectionsStalled;
        }
      }
    }

    // Half-closed peers linger only while an in-flight answer still
    // addresses them; after that there is nothing left to deliver.
    for (auto& [fd, conn] : conns) {
      if (!conn->peerClosedWrite || conn->dead) {
        continue;
      }
      bool referenced = false;
      for (auto& [serverId, p] : pending) {
        if (p.connFd == fd) {
          referenced = true;
          break;
        }
      }
      if (!referenced) {
        conn->dead = true;
      }
    }

    // Reap dead connections (the transport closes the fd).
    for (auto it = conns.begin(); it != conns.end();) {
      if (it->second->dead) {
        const int fd = it->second->fd;
        for (auto& [serverId, p] : pending) {
          if (p.connFd == fd) {
            p.connFd = -1;  // in-flight answer has nowhere to go
          }
        }
        it = conns.erase(it);
      } else {
        ++it;
      }
    }

    std::vector<struct pollfd> fds;
    fds.reserve(conns.size() + 2);
    fds.push_back({wakePipe[0], POLLIN, 0});
    if (listenFd >= 0) {
      fds.push_back({listenFd, POLLIN, 0});
    }
    const std::size_t firstConn = fds.size();
    for (auto& [fd, conn] : conns) {
      // A half-closed peer's read side is permanent EOF; polling it
      // would spin the loop at 100% CPU until its answers flush.
      if (!conn->peerClosedWrite) {
        fds.push_back({fd, POLLIN, 0});
      }
    }
    std::uint64_t timeout = 50;  // liveness floor for the drain token
    if (haveDeadline) {
      timeout = std::min(timeout, nextDeadlineMs);
    }
    const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                          static_cast<int>(timeout));
    if (rc < 0 && errno != EINTR) {
      stats.error = std::string("poll: ") + std::strerror(errno);
      break;
    }
    if (rc <= 0) {
      continue;
    }

    if ((fds[0].revents & POLLIN) != 0) {
      char sink[256];
      while (::read(wakePipe[0], sink, sizeof sink) > 0) {
      }
    }
    if (listenFd >= 0 && (fds[firstConn - 1].revents & POLLIN) != 0) {
      for (;;) {
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0) {
          break;
        }
        if (conns.size() >= config.maxConnections) {
          // Admission control: refuse at the door so live sessions keep
          // their poll budget (the fleet-coordinator policy, applied to
          // clients).
          ::close(fd);
          ++stats.connectionsRefused;
          continue;
        }
        const int flags = ::fcntl(fd, F_GETFL, 0);
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        conn->transport = config.transportFactory
                              ? config.transportFactory(fd, nextConnectionId++)
                              : exec::makeSocketTransport(fd);
        conn->lastProgressMs = nowMs();
        conns.emplace(fd, std::move(conn));
        ++stats.connectionsAccepted;
      }
    }

    for (std::size_t i = firstConn; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLERR | POLLHUP)) == 0) {
        continue;
      }
      const auto it = conns.find(fds[i].fd);
      if (it == conns.end()) {
        continue;
      }
      Connection& conn = *it->second;
      // Drain without blocking: zero-timeout recvFrame pops buffered
      // frames, then reads until the socket would block.
      for (;;) {
        std::string payload;
        const auto status = conn.transport->recvFrame(payload, 0);
        if (status == exec::FrameTransport::RecvStatus::kTimeout) {
          break;
        }
        if (status == exec::FrameTransport::RecvStatus::kClosed) {
          // Half-close grace: the peer is done sending but may still be
          // reading; in-flight answers are still deliverable. The reap
          // pass collects the connection once nothing references it.
          conn.peerClosedWrite = true;
          break;
        }
        if (status != exec::FrameTransport::RecvStatus::kFrame) {
          // Corrupt stream or I/O error: the connection is
          // untrustworthy; drop it.
          conn.dead = true;
          break;
        }
        auto decoded = decodeServeMessage(payload);
        if (!decoded) {
          conn.dead = true;
          break;
        }
        if (decoded->kind != ServeMessage::Kind::kRequest) {
          // Only requests flow client -> server; a response here is a
          // confused peer. Drop the connection.
          conn.dead = true;
          break;
        }
        ++conn.decodedRequests;
        if (draining) {
          ++stats.requestsDecoded;
          sendShed(conn.fd, decoded->request.requestId, ShedReason::kDraining,
                   "server draining");
        } else {
          handleRequest(conn, decoded->request);
        }
        if (conn.dead) {
          break;
        }
      }
    }
  }

  // Teardown: the pool destructor drains queued tasks and joins; any
  // stragglers post completions nobody reads (the queue outlives the
  // pool by construction order).
  pool.reset();
  conns.clear();  // transports close their fds
  if (listenFd >= 0) {
    ::close(listenFd);
  }
  ::close(wakePipe[0]);
  ::close(wakePipe[1]);

  stats.cache = cache.stats();
  if (ewma.seeded()) {
    stats.tier1EwmaMs = ewma.value();
  }
  // Final snapshot in a window strictly after every in-run record, so the
  // last value of each serve.* series equals the end-of-run ground truth
  // (a gauge window holds the mean of its samples).
  recordGauges(nowMs() + 1);
  return stats;
}

}  // namespace occm::serve
