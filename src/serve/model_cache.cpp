#include "serve/model_cache.hpp"

namespace occm::serve {

std::optional<model::ContentionModel> ModelCache::lookup(const ModelKey& key) {
  const std::string k = key.str();
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(k);
  if (it == index_.end()) {
    if (inFlight_.count(k) == 0) {
      ++stats_.misses;
    }
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->model;
}

bool ModelCache::beginFit(const ModelKey& key) {
  const std::string k = key.str();
  std::lock_guard<std::mutex> lock(mutex_);
  if (inFlight_.insert(k).second) {
    return true;
  }
  ++stats_.coalesced;
  return false;
}

void ModelCache::completeFit(const ModelKey& key, bool success,
                             const model::ContentionModel& model) {
  const std::string k = key.str();
  std::lock_guard<std::mutex> lock(mutex_);
  inFlight_.erase(k);
  if (!success || capacity_ == 0) {
    return;
  }
  const auto it = index_.find(k);
  if (it != index_.end()) {
    it->second->model = model;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{k, model});
  index_.emplace(k, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

std::size_t ModelCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

ModelCacheStats ModelCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace occm::serve
