#pragma once

// The capacity-advisor service (DESIGN.md §15): a single-process,
// poll-loop TCP server answering speedup/efficiency/C(n) queries for
// (workload, topology, core range) with production-grade overload
// behavior.
//
// The robustness ladder, in order of escalation:
//  1. Bounded admission: every request that needs background work (a
//     model fit or tier-1 refinement) takes one slot of a bounded queue;
//     at capacity new requests shed with a typed kQueueFull — the server
//     never buffers unboundedly.
//  2. Deadlines on the wire: a request's deadlineMs becomes a
//     common/cancellation token; tier-1 simulator work past the deadline
//     is cancelled at the event-loop boundary (never abandoned) and the
//     request falls back to a tier-0 answer flagged kDeadlineMiss.
//  3. Graceful degradation: tier 0 answers from fitted ContentionModel
//     parameters in microseconds; tier 1 refines via analysis::runSweep
//     on the worker pool. When queue depth, deadline slack, or the EWMA
//     of tier-1 latency crosses its threshold (serve/degrade.hpp), the
//     server downgrades to tier-0-only and flags the response.
//  4. Warm LRU model cache with single-flight fitting: a thundering herd
//     on a cold (workload, topology) key fits once; everyone else parks
//     on the in-flight fit (serve/model_cache.hpp).
//  5. Drain: when the drain token fires (SIGTERM in the example binary)
//     the server stops accepting, sheds new requests with kDraining,
//     completes in-flight work, flushes responses, and returns cleanly.
//
// Single-threaded control plane over poll(2) — same shape as the
// distributed coordinator — plus a worker pool for fits and tier-1
// sweeps; pool completions re-enter the loop through a self-pipe, so the
// loop never blocks on simulator work.

#include <cstdint>
#include <functional>
#include <string>

#include "common/cancellation.hpp"
#include "core/contention_model.hpp"
#include "exec/frame_transport.hpp"
#include "obs/metric_registry.hpp"
#include "serve/degrade.hpp"
#include "serve/model_cache.hpp"
#include "serve/protocol.hpp"
#include "sim/machine_sim.hpp"

namespace occm::serve {

struct AdvisorServerConfig {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 = ephemeral; the bound port goes to onListening
  /// Overload-ladder thresholds (queue bound, degradation rungs).
  DegradeConfig degrade;
  /// Fitted-model LRU capacity (distinct (workload, topology) keys).
  std::size_t cacheCapacity = 16;
  /// Worker pool size for fits and tier-1 sweeps. <= 0 resolves via
  /// exec::resolveWorkerCount (OCCM_SWEEP_WORKERS / hardware).
  int workers = 2;
  /// Simulation parameters shared by fit and refinement sweeps.
  sim::SimConfig sim;
  /// Workload seed for every measurement run (part of the model's
  /// identity; not on the wire — one server serves one seed universe).
  std::uint64_t workloadSeed = 2011;
  /// Attempts per measurement run (failure isolation inside sweeps).
  int maxAttempts = 2;
  model::ContentionModel::Options fitOptions;
  /// Drain trigger. requestStop() is async-signal-safe, so a SIGTERM
  /// handler may own the source (examples/advisor_server.cpp does).
  CancellationToken drain;
  /// Slowloris / idle-socket guard: a connection that has never decoded
  /// a request, or sits on a half-finished frame, and makes no byte
  /// progress for this long is dropped (connectionsStalled). Established
  /// idle clients with no partial frame are left alone — keep-alive
  /// between queries is legitimate. 0 = off.
  std::uint64_t readProgressTimeoutMs = 10'000;
  /// Admission cap on live connections; accepts beyond it are closed
  /// immediately and counted in connectionsRefused.
  std::size_t maxConnections = 256;
  /// Builds each accepted connection's framed transport (chaos injection
  /// point). Null = plain socket transport.
  exec::TransportFactory transportFactory;
  /// Fired once with the bound port (ephemeral-port tests and scripts).
  std::function<void(int boundPort)> onListening;
  /// Fired once on the loop thread when the drain token is observed (the
  /// listen socket is already closed); everything decoded afterwards
  /// sheds kDraining. Tests use it to mark the drain boundary without
  /// polling.
  std::function<void()> onDraining;
  /// Optional serve.* gauges (queue depth, shed/degraded/deadline-miss
  /// counts, tier counts, tier-1 latency EWMA, cache hit rate), recorded
  /// against milliseconds-since-start. Not owned.
  obs::MetricRegistry* metrics = nullptr;
  /// Test hooks: forwarded to the fit / tier-1 sweeps' beforeRun (called
  /// on pool threads), and fired on the loop thread right after a
  /// deadline expiry cancels a tier-1 request. Never called after
  /// runAdvisorServer returns.
  std::function<void(int cores, int attempt)> beforeFitRun;
  std::function<void(int cores, int attempt)> beforeTier1Run;
  std::function<void(std::uint64_t requestId)> onDeadlineCancel;
};

/// Ground-truth counters of one server run — the numbers the overload
/// tests reconcile against client-observed responses, and the source of
/// the serve.* metrics.
struct AdvisorServerStats {
  std::uint64_t connectionsAccepted = 0;
  /// Accepts closed at the maxConnections admission cap.
  std::uint64_t connectionsRefused = 0;
  /// Connections dropped by the read-progress (slowloris) guard.
  std::uint64_t connectionsStalled = 0;
  std::uint64_t requestsDecoded = 0;
  std::uint64_t responsesSent = 0;
  std::uint64_t tier0Served = 0;  ///< kOk answers with tier == 0
  std::uint64_t tier1Served = 0;  ///< kOk answers with tier == 1
  std::uint64_t degraded = 0;     ///< kOk answers flagged degraded
  std::uint64_t shedQueueFull = 0;
  std::uint64_t shedDeadlineInfeasible = 0;
  std::uint64_t shedDraining = 0;
  std::uint64_t shedBadRequest = 0;
  /// Tier-1 refinements cancelled mid-run by their deadline (each one
  /// also counts under `degraded` via its tier-0 fallback answer).
  std::uint64_t deadlineMisses = 0;
  std::uint64_t fitFailures = 0;  ///< fits that returned a FitError
  /// Peak pending jobs — never exceeds degrade.queueCapacity.
  std::uint64_t maxQueueDepth = 0;
  ModelCacheStats cache;
  double tier1EwmaMs = 0.0;  ///< final EWMA value (0 when never seeded)
  /// True when the run ended via the drain token with all in-flight work
  /// completed and flushed.
  bool drained = false;
  /// Non-empty on listen/bind failure; nothing was served.
  std::string error;
};

/// Runs the server until the drain token fires (or listen fails).
/// Blocking; never throws on network misbehavior or bad request bytes —
/// corrupt frames drop the connection, malformed requests shed typed.
[[nodiscard]] AdvisorServerStats runAdvisorServer(
    const AdvisorServerConfig& config);

}  // namespace occm::serve
