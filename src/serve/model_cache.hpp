#pragma once

// Warm LRU cache of fitted contention models keyed by
// (workload, topology), with single-flight fitting: a thundering herd on
// a cold key fits once — the first requester claims the fit, everyone
// else parks until completeFit publishes the result.
//
// The claim/publish split (beginFit / completeFit) instead of a blocking
// getOrFit exists because the owner is a single-threaded poll loop: the
// loop must never block on a fit, it parks the request and resumes it
// from the fit job's completion event. The cache itself is
// mutex-protected so fit jobs running on pool threads can publish while
// the loop reads.

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "core/contention_model.hpp"

namespace occm::serve {

/// Cache key: the workload/topology identity a fitted model answers for.
struct ModelKey {
  std::string program;
  std::string problemClass;
  std::string machine;

  [[nodiscard]] std::string str() const {
    return program + "." + problemClass + "@" + machine;
  }
  [[nodiscard]] bool operator==(const ModelKey&) const = default;
};

struct ModelCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  /// Requests that found a fit already in flight and parked on it
  /// (thundering-herd arrivals coalesced into one fit).
  std::uint64_t coalesced = 0;
};

/// Thread-safe LRU + single-flight registry of fitted models. Only
/// successful fits are cached; a failed fit clears the in-flight claim so
/// the next request retries (a transient measurement failure must not
/// poison the key forever).
class ModelCache {
 public:
  explicit ModelCache(std::size_t capacity) : capacity_(capacity) {}

  /// Cached model for the key, refreshing its LRU position. Counts a hit
  /// or (when absent and no fit is in flight) a miss.
  [[nodiscard]] std::optional<model::ContentionModel> lookup(
      const ModelKey& key);

  /// Claims the fit for a cold key. Returns true when the caller must run
  /// the fit (and later completeFit); false when a fit is already in
  /// flight — the caller parks and waits for the owner's completion.
  [[nodiscard]] bool beginFit(const ModelKey& key);

  /// Publishes a finished fit and releases the in-flight claim. With
  /// success == true the model is inserted (evicting the LRU tail beyond
  /// capacity); with false the claim is simply dropped.
  void completeFit(const ModelKey& key, bool success,
                   const model::ContentionModel& model);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] ModelCacheStats stats() const;

 private:
  struct Entry {
    std::string key;
    model::ContentionModel model;
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  /// MRU at the front; iterators stay valid across splice.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::unordered_set<std::string> inFlight_;
  ModelCacheStats stats_;
};

}  // namespace occm::serve
