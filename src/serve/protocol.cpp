#include "serve/protocol.hpp"

#include "exec/wire_codec.hpp"

namespace occm::serve {

namespace {

using exec::wire::putF64;
using exec::wire::putI32;
using exec::wire::putString;
using exec::wire::putU32;
using exec::wire::putU64;
using exec::wire::putU8;
using exec::wire::Reader;

void putBool(std::string& out, bool value) {
  putU8(out, value ? 1 : 0);
}

bool readBool(Reader& in, const char* what) {
  const std::uint8_t value = in.u8();
  if (in.ok() && value > 1) {
    in.fail(std::string(what) + " flag is " + std::to_string(value) +
            ", expected 0 or 1");
  }
  return value == 1;
}

std::uint8_t readEnum(Reader& in, const char* what, std::uint8_t maxValue) {
  const std::uint8_t value = in.u8();
  if (in.ok() && value > maxValue) {
    in.fail(std::string(what) + " value " + std::to_string(value) +
            " out of range (max " + std::to_string(maxValue) + ")");
  }
  return value;
}

void putRequest(std::string& out, const AdvisorRequest& request) {
  putU32(out, request.protocolVersion);
  putU64(out, request.requestId);
  putString(out, request.program);
  putString(out, request.problemClass);
  putString(out, request.machine);
  putI32(out, request.coreMin);
  putI32(out, request.coreMax);
  putU32(out, request.deadlineMs);
  putU8(out, static_cast<std::uint8_t>(request.tier));
  putF64(out, request.efficiencyThreshold);
}

AdvisorRequest readRequest(Reader& in) {
  AdvisorRequest request;
  request.protocolVersion = in.u32();
  request.requestId = in.u64();
  request.program = in.str();
  request.problemClass = in.str();
  request.machine = in.str();
  request.coreMin = in.i32();
  request.coreMax = in.i32();
  request.deadlineMs = in.u32();
  request.tier = static_cast<TierPreference>(
      readEnum(in, "tier preference",
               static_cast<std::uint8_t>(TierPreference::kTier1)));
  request.efficiencyThreshold = in.f64();
  return request;
}

void putResponse(std::string& out, const AdvisorResponse& response) {
  putU64(out, response.requestId);
  putU8(out, static_cast<std::uint8_t>(response.status));
  putU8(out, static_cast<std::uint8_t>(response.shedReason));
  putU8(out, response.tier);
  putBool(out, response.degraded);
  putU8(out, static_cast<std::uint8_t>(response.degradeReason));
  putBool(out, response.cacheHit);
  putU32(out, response.queueDepth);
  putU32(out, static_cast<std::uint32_t>(response.rows.size()));
  for (const AdvisorRow& row : response.rows) {
    putI32(out, row.cores);
    putF64(out, row.cycles);
    putF64(out, row.omega);
    putF64(out, row.speedup);
    putF64(out, row.efficiency);
    putBool(out, row.measured);
  }
  putI32(out, response.bestCores);
  putF64(out, response.bestSpeedup);
  putI32(out, response.efficientCores);
  putString(out, response.error);
}

AdvisorResponse readResponse(Reader& in) {
  AdvisorResponse response;
  response.requestId = in.u64();
  response.status = static_cast<ResponseStatus>(readEnum(
      in, "response status",
      static_cast<std::uint8_t>(ResponseStatus::kError)));
  response.shedReason = static_cast<ShedReason>(readEnum(
      in, "shed reason", static_cast<std::uint8_t>(ShedReason::kBadRequest)));
  response.tier = readEnum(in, "tier", 1);
  response.degraded = readBool(in, "degraded");
  response.degradeReason = static_cast<DegradeReason>(
      readEnum(in, "degrade reason",
               static_cast<std::uint8_t>(DegradeReason::kDeadlineMiss)));
  response.cacheHit = readBool(in, "cache-hit");
  response.queueDepth = in.u32();
  const std::size_t rowCount = in.count("advisor rows");
  response.rows.clear();
  response.rows.reserve(in.ok() ? rowCount : 0);
  for (std::size_t i = 0; in.ok() && i < rowCount; ++i) {
    AdvisorRow row;
    row.cores = in.i32();
    row.cycles = in.f64();
    row.omega = in.f64();
    row.speedup = in.f64();
    row.efficiency = in.f64();
    row.measured = readBool(in, "row measured");
    response.rows.push_back(row);
  }
  response.bestCores = in.i32();
  response.bestSpeedup = in.f64();
  response.efficientCores = in.i32();
  response.error = in.str();
  return response;
}

}  // namespace

std::string encodeServeMessage(const ServeMessage& message) {
  std::string out;
  putU8(out, static_cast<std::uint8_t>(message.kind));
  switch (message.kind) {
    case ServeMessage::Kind::kRequest:
      putRequest(out, message.request);
      break;
    case ServeMessage::Kind::kResponse:
      putResponse(out, message.response);
      break;
  }
  return out;
}

Expected<ServeMessage, exec::IpcError> decodeServeMessage(
    std::string_view payload) {
  Reader in(payload);
  ServeMessage message;
  const std::uint8_t kind = in.u8();
  switch (kind) {
    case static_cast<std::uint8_t>(ServeMessage::Kind::kRequest):
      message.kind = ServeMessage::Kind::kRequest;
      message.request = readRequest(in);
      break;
    case static_cast<std::uint8_t>(ServeMessage::Kind::kResponse):
      message.kind = ServeMessage::Kind::kResponse;
      message.response = readResponse(in);
      break;
    default:
      if (in.ok()) {
        in.fail("unknown serve message kind " + std::to_string(kind));
      }
      break;
  }
  if (in.ok() && !in.atEnd()) {
    in.fail("trailing bytes after the message");
  }
  if (!in.ok()) {
    return makeUnexpected(in.error());
  }
  return message;
}

}  // namespace occm::serve
