#pragma once

// Declarative description of a simulated multicore machine: the socket /
// die / core / SMT hierarchy, the cache levels with their sharing scope,
// the memory controllers and the NUMA interconnect hop-distance matrix.
//
// The three machines of the paper (Intel UMA 8-core, Intel NUMA 24-core,
// AMD NUMA 48-core) are provided as presets in topology/presets.hpp.

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace occm::topology {

/// Who shares a cache instance.
enum class CacheScope : std::uint8_t {
  kPerLogicalCore,   ///< one instance per SMT thread
  kPerPhysicalCore,  ///< shared by the SMT siblings of one physical core
  kPerDie,           ///< shared by all cores of one die
  kPerSocket,        ///< shared by all cores of one socket
  kMachine,          ///< one instance for the whole machine
};

/// One cache level.
struct CacheLevelSpec {
  int level = 1;               ///< 1, 2, 3 (highest level = LLC)
  Bytes size = 4 * kKiB;       ///< capacity of one instance
  Bytes lineSize = 64;
  std::uint32_t associativity = 4;
  Cycles hitLatency = 3;       ///< cycles added on a hit at this level
  CacheScope scope = CacheScope::kPerPhysicalCore;
};

/// Where memory controllers sit.
enum class ControllerScope : std::uint8_t {
  kMachine,    ///< UMA: one shared controller pool for all sockets
  kPerSocket,  ///< e.g. Intel Nehalem: one controller per socket
  kPerDie,     ///< e.g. AMD Magny-Cours: one controller per die
};

/// UMA vs. NUMA memory architecture (paper Fig. 1).
enum class MemoryArchitecture : std::uint8_t { kUma, kNuma };

struct MachineSpec {
  std::string name;
  double clockGhz = 2.0;

  int sockets = 1;
  int diesPerSocket = 1;
  int coresPerDie = 4;
  int smtPerCore = 1;

  std::vector<CacheLevelSpec> caches;

  MemoryArchitecture memoryArchitecture = MemoryArchitecture::kUma;
  ControllerScope controllerScope = ControllerScope::kMachine;
  int channelsPerController = 2;

  /// Fixed DRAM access latency (pipe latency, paid once per request).
  Cycles dramLatency = 160;
  /// Channel occupancy per cache-line transfer when the access hits the
  /// bank's open row (sequential streaming: burst transfer only).
  Cycles rowHitServiceCycles = 13;
  /// Channel occupancy when the access needs a row activate/precharge
  /// cycle (random or large-stride traffic; ~tRC). The hit/miss split is
  /// what makes streaming workloads bandwidth-cheap and scattered ones
  /// expensive, and what makes interleaved streams from many cores
  /// degrade each other (row-buffer interference).
  Cycles rowMissServiceCycles = 110;
  /// DRAM row size: requests within the same row hit the open row.
  Bytes rowBytes = 2 * kKiB;
  /// Independent banks per channel (each keeps one open row).
  int banksPerChannel = 8;
  /// Miss-level parallelism for prefetchable (streaming) accesses: the
  /// core overlaps up to this many stream misses, dividing the observed
  /// stall. Dependent accesses use corePerMlp (default 1 = blocking).
  int prefetchMlp = 4;
  /// UMA only: per-socket front-side-bus occupancy per request (a second
  /// queueing stage in front of the shared controller, paper Fig. 1a).
  Cycles busServiceCycles = 0;
  /// NUMA only: extra one-way cycles per interconnect hop.
  Cycles hopCycles = 80;
  /// NUMA only: interconnect link occupancy per 64 B transfer and hop
  /// (finite link bandwidth). Remote demand requests reserve the node-pair
  /// path for 2x this (request + data response); 0 = unlimited bandwidth.
  /// Saturating cross-socket links is a major contention source once a
  /// second socket activates (QPI/HyperTransport are several times slower
  /// than the aggregate local DRAM channels).
  Cycles linkServiceCycles = 0;
  /// NUMA hop distances between nodes (one node per controller);
  /// empty for UMA. Must be square, symmetric, zero-diagonal.
  std::vector<std::vector<int>> hopMatrix;

  /// Outstanding off-chip misses one core can overlap (miss-level
  /// parallelism). 1 = fully blocking core, the paper's effective regime.
  int corePerMlp = 1;

  /// Virtual-memory page size used by the placement policies.
  Bytes pageSize = 4 * kKiB;

  /// Joint cache/working-set scale factor vs. the physical machine
  /// (documentation only; presets are already scaled).
  double scaleFactor = 1.0;

  // Derived quantities -----------------------------------------------------

  [[nodiscard]] int logicalCores() const noexcept {
    return sockets * diesPerSocket * coresPerDie * smtPerCore;
  }
  [[nodiscard]] int physicalCores() const noexcept {
    return sockets * diesPerSocket * coresPerDie;
  }
  [[nodiscard]] int dies() const noexcept { return sockets * diesPerSocket; }
  [[nodiscard]] int logicalCoresPerSocket() const noexcept {
    return diesPerSocket * coresPerDie * smtPerCore;
  }
  [[nodiscard]] int controllers() const noexcept {
    switch (controllerScope) {
      case ControllerScope::kMachine:
        return 1;
      case ControllerScope::kPerSocket:
        return sockets;
      case ControllerScope::kPerDie:
        return dies();
    }
    return 1;
  }
  [[nodiscard]] const CacheLevelSpec& lastLevelCache() const;

  /// Validates internal consistency; throws ContractViolation on error.
  void validate() const;
};

}  // namespace occm::topology
