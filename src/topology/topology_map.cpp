#include "topology/topology_map.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace occm::topology {

TopologyMap::TopologyMap(MachineSpec spec) : spec_(std::move(spec)) {
  spec_.validate();
  hopMatrix_ = spec_.hopMatrix;

  // Build the fill-processor-first order (see header for the policy).
  fillOrder_.reserve(static_cast<std::size_t>(spec_.logicalCores()));
  for (int socket = 0; socket < spec_.sockets; ++socket) {
    for (int core = 0; core < spec_.coresPerDie; ++core) {
      for (int die = 0; die < spec_.diesPerSocket; ++die) {
        for (int smt = 0; smt < spec_.smtPerCore; ++smt) {
          fillOrder_.push_back(coreId({socket, die, core, smt}));
        }
      }
    }
  }
}

CoreId TopologyMap::coreId(const CoreLocation& loc) const {
  OCCM_REQUIRE(loc.socket >= 0 && loc.socket < spec_.sockets);
  OCCM_REQUIRE(loc.die >= 0 && loc.die < spec_.diesPerSocket);
  OCCM_REQUIRE(loc.core >= 0 && loc.core < spec_.coresPerDie);
  OCCM_REQUIRE(loc.smt >= 0 && loc.smt < spec_.smtPerCore);
  return ((loc.socket * spec_.diesPerSocket + loc.die) * spec_.coresPerDie +
          loc.core) *
             spec_.smtPerCore +
         loc.smt;
}

CoreLocation TopologyMap::location(CoreId core) const {
  OCCM_REQUIRE(core >= 0 && core < spec_.logicalCores());
  CoreLocation loc;
  int rest = core;
  loc.smt = rest % spec_.smtPerCore;
  rest /= spec_.smtPerCore;
  loc.core = rest % spec_.coresPerDie;
  rest /= spec_.coresPerDie;
  loc.die = rest % spec_.diesPerSocket;
  loc.socket = rest / spec_.diesPerSocket;
  return loc;
}

int TopologyMap::dieIndex(CoreId core) const {
  const CoreLocation loc = location(core);
  return loc.socket * spec_.diesPerSocket + loc.die;
}

NodeId TopologyMap::homeNode(CoreId core) const {
  switch (spec_.controllerScope) {
    case ControllerScope::kMachine:
      return 0;
    case ControllerScope::kPerSocket:
      return location(core).socket;
    case ControllerScope::kPerDie:
      return dieIndex(core);
  }
  return 0;
}

int TopologyMap::hops(NodeId from, NodeId to) const {
  if (spec_.memoryArchitecture == MemoryArchitecture::kUma) {
    return 0;
  }
  OCCM_REQUIRE(from >= 0 && static_cast<std::size_t>(from) < hopMatrix_.size());
  OCCM_REQUIRE(to >= 0 && static_cast<std::size_t>(to) < hopMatrix_.size());
  return hopMatrix_[static_cast<std::size_t>(from)]
                   [static_cast<std::size_t>(to)];
}

std::vector<CoreId> TopologyMap::activeCores(int activeCores) const {
  OCCM_REQUIRE(activeCores >= 1 && activeCores <= spec_.logicalCores());
  return {fillOrder_.begin(), fillOrder_.begin() + activeCores};
}

std::vector<NodeId> TopologyMap::activeNodes(int activeCores) const {
  std::vector<NodeId> nodes;
  for (CoreId core : this->activeCores(activeCores)) {
    const NodeId node = homeNode(core);
    if (std::find(nodes.begin(), nodes.end(), node) == nodes.end()) {
      nodes.push_back(node);
    }
  }
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

int TopologyMap::cacheInstanceCount(const CacheLevelSpec& level) const {
  switch (level.scope) {
    case CacheScope::kPerLogicalCore:
      return spec_.logicalCores();
    case CacheScope::kPerPhysicalCore:
      return spec_.physicalCores();
    case CacheScope::kPerDie:
      return spec_.dies();
    case CacheScope::kPerSocket:
      return spec_.sockets;
    case CacheScope::kMachine:
      return 1;
  }
  return 1;
}

int TopologyMap::cacheInstance(CoreId core, const CacheLevelSpec& level) const {
  const CoreLocation loc = location(core);
  switch (level.scope) {
    case CacheScope::kPerLogicalCore:
      return core;
    case CacheScope::kPerPhysicalCore:
      return core / spec_.smtPerCore;
    case CacheScope::kPerDie:
      return dieIndex(core);
    case CacheScope::kPerSocket:
      return loc.socket;
    case CacheScope::kMachine:
      return 0;
  }
  return 0;
}

}  // namespace occm::topology
