#pragma once

// The three machines of the paper's experimental setup (section III-A) as
// simulated-machine presets, plus small synthetic machines for tests.
//
// Cache capacities and (in workloads/) problem working sets are jointly
// scaled down 32x relative to the physical machines so every experiment
// runs in seconds; miss ratios and queue utilisations — the quantities the
// contention model depends on — are invariant under the joint scaling
// (DESIGN.md, "Scaling rule"). Clock rates, latencies and per-line channel
// occupancies are the physical machines' values.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "topology/machine_spec.hpp"

namespace occm::topology {

/// Dual quad-core Intel Xeon E5320 ("Clovertown"), 1.86 GHz, 8 MB L2
/// (semi-unified, 4 MB/socket), one shared memory controller with
/// dual-channel DDR2 — the paper's 8-core UMA system.
[[nodiscard]] MachineSpec intelUma8();

/// Dual six-core Intel Xeon X5650 ("Westmere"), 2.66 GHz, 2 SMT threads
/// per core (24 logical cores), 12 MB L3/socket, two memory controllers
/// with triple-channel DDR3 — the paper's 24-core NUMA system.
[[nodiscard]] MachineSpec intelNuma24();

/// Quad twelve-core AMD Opteron 6172 ("Magny-Cours"), 2.1 GHz, two dies
/// per package, 10 MB L3/package (5 MB/die), eight memory controllers
/// (one per die) with dual-channel DDR3, partial-mesh HyperTransport with
/// direct / one-hop / two-hop distances — the paper's 48-core NUMA system.
[[nodiscard]] MachineSpec amdNuma48();

/// All three paper machines, in the order used by the paper's tables.
[[nodiscard]] std::vector<MachineSpec> paperMachines();

/// Tiny 2-socket x 2-core NUMA machine for fast unit tests.
[[nodiscard]] MachineSpec testNuma4();

/// Tiny 2-socket x 2-core UMA machine for fast unit tests.
[[nodiscard]] MachineSpec testUma4();

/// Preset lookup by stable token — the names requests carry on the wire
/// (the capacity-advisor service resolves machines per request):
/// "intel-uma8", "intel-numa24", "amd-numa48", "test-numa4", "test-uma4".
/// Unknown tokens return nullopt (a typed bad-request, never a throw).
[[nodiscard]] std::optional<MachineSpec> presetByName(std::string_view name);

/// The accepted presetByName tokens, for usage/diagnostic messages.
[[nodiscard]] std::vector<std::string> presetNames();

}  // namespace occm::topology
