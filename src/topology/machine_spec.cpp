#include "topology/machine_spec.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace occm::topology {

const CacheLevelSpec& MachineSpec::lastLevelCache() const {
  OCCM_REQUIRE_MSG(!caches.empty(), "machine has no caches");
  return *std::max_element(
      caches.begin(), caches.end(),
      [](const CacheLevelSpec& a, const CacheLevelSpec& b) {
        return a.level < b.level;
      });
}

void MachineSpec::validate() const {
  OCCM_REQUIRE_MSG(!name.empty(), "machine needs a name");
  OCCM_REQUIRE_MSG(clockGhz > 0.0, "clock must be positive");
  OCCM_REQUIRE_MSG(sockets >= 1 && diesPerSocket >= 1 && coresPerDie >= 1 &&
                       smtPerCore >= 1,
                   "hierarchy counts must be >= 1");
  OCCM_REQUIRE_MSG(!caches.empty(), "machine needs at least one cache level");
  OCCM_REQUIRE_MSG(channelsPerController >= 1, "need at least one channel");
  OCCM_REQUIRE_MSG(rowHitServiceCycles > 0, "row-hit service must be > 0");
  OCCM_REQUIRE_MSG(rowMissServiceCycles >= rowHitServiceCycles,
                   "row miss cannot be cheaper than a row hit");
  OCCM_REQUIRE_MSG(rowBytes > 0 && (rowBytes & (rowBytes - 1)) == 0,
                   "row size must be a power of two");
  OCCM_REQUIRE_MSG(banksPerChannel >= 1, "need at least one bank");
  OCCM_REQUIRE_MSG(corePerMlp >= 1, "MLP must be >= 1");
  OCCM_REQUIRE_MSG(prefetchMlp >= 1, "prefetch MLP must be >= 1");
  OCCM_REQUIRE_MSG(pageSize > 0 && (pageSize & (pageSize - 1)) == 0,
                   "page size must be a power of two");

  int lastLevel = 0;
  for (const CacheLevelSpec& c : caches) {
    OCCM_REQUIRE_MSG(c.level == lastLevel + 1,
                     "cache levels must be consecutive starting at 1");
    lastLevel = c.level;
    OCCM_REQUIRE_MSG(c.lineSize > 0 && (c.lineSize & (c.lineSize - 1)) == 0,
                     "line size must be a power of two");
    OCCM_REQUIRE_MSG(c.size % c.lineSize == 0, "size must be a line multiple");
    OCCM_REQUIRE_MSG(c.associativity >= 1, "associativity must be >= 1");
    OCCM_REQUIRE_MSG((c.size / c.lineSize) % c.associativity == 0,
                     "lines must divide into whole sets");
    OCCM_REQUIRE_MSG(c.lineSize == caches.front().lineSize,
                     "all levels must share one line size");
  }

  if (memoryArchitecture == MemoryArchitecture::kUma) {
    OCCM_REQUIRE_MSG(controllerScope == ControllerScope::kMachine,
                     "UMA uses a single machine-scope controller pool");
    OCCM_REQUIRE_MSG(hopMatrix.empty(), "UMA has no hop matrix");
  } else {
    OCCM_REQUIRE_MSG(controllerScope != ControllerScope::kMachine,
                     "NUMA controllers must be per-socket or per-die");
    const auto n = static_cast<std::size_t>(controllers());
    OCCM_REQUIRE_MSG(hopMatrix.size() == n,
                     "hop matrix must be controllers x controllers");
    for (std::size_t i = 0; i < n; ++i) {
      OCCM_REQUIRE_MSG(hopMatrix[i].size() == n, "hop matrix must be square");
      OCCM_REQUIRE_MSG(hopMatrix[i][i] == 0, "hop matrix diagonal must be 0");
      for (std::size_t j = 0; j < n; ++j) {
        OCCM_REQUIRE_MSG(hopMatrix[i][j] == hopMatrix[j][i],
                         "hop matrix must be symmetric");
        OCCM_REQUIRE_MSG(hopMatrix[i][j] >= 0, "hops must be non-negative");
        OCCM_REQUIRE_MSG(i == j || hopMatrix[i][j] >= 1,
                         "distinct nodes must be at least one hop apart");
      }
    }
  }
}

}  // namespace occm::topology
