#include "topology/presets.hpp"

namespace occm::topology {

namespace {

/// AMD Magny-Cours partial mesh (paper Fig. 2b): dies of one package are
/// one hop apart; packages form a square 0-1 / 2-3 where edge-adjacent
/// packages have a direct link between like-positioned dies (1 hop, 2 hops
/// for the crossed pair) and diagonal packages are always 2 hops.
std::vector<std::vector<int>> magnyCoursHops() {
  constexpr int kNodes = 8;
  auto adjacentSockets = [](int a, int b) {
    // Square: 0-1, 0-2, 1-3, 2-3 adjacent; 0-3 and 1-2 diagonal.
    return (a + b == 1) || (a + b == 5) || (a == 0 && b == 2) ||
           (a == 2 && b == 0) || (a == 1 && b == 3) || (a == 3 && b == 1);
  };
  std::vector<std::vector<int>> hops(kNodes, std::vector<int>(kNodes, 0));
  for (int i = 0; i < kNodes; ++i) {
    for (int j = 0; j < kNodes; ++j) {
      if (i == j) {
        continue;
      }
      const int si = i / 2;
      const int sj = j / 2;
      if (si == sj) {
        hops[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = 1;
      } else if (adjacentSockets(si, sj)) {
        // Direct HT link between like-positioned dies only.
        hops[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            (i % 2 == j % 2) ? 1 : 2;
      } else {
        hops[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = 2;
      }
    }
  }
  return hops;
}

}  // namespace

MachineSpec intelUma8() {
  MachineSpec m;
  m.name = "Intel UMA (8 cores, Xeon E5320)";
  m.clockGhz = 1.86;
  m.sockets = 2;
  m.diesPerSocket = 1;
  m.coresPerDie = 4;
  m.smtPerCore = 1;
  m.caches = {
      // 32 KB L1d per core -> kept at 4 KB (small enough that inner loop
      // buffers behave as on hardware; only the LLC drives off-chip traffic).
      {.level = 1, .size = 4 * kKiB, .lineSize = 64, .associativity = 8,
       .hitLatency = 3, .scope = CacheScope::kPerPhysicalCore},
      // 4 MB semi-unified L2 per socket -> 128 KB at 32x scale. This is the
      // UMA machine's last-level cache.
      {.level = 2, .size = 128 * kKiB, .lineSize = 64, .associativity = 16,
       .hitLatency = 14, .scope = CacheScope::kPerSocket},
  };
  m.memoryArchitecture = MemoryArchitecture::kUma;
  m.controllerScope = ControllerScope::kMachine;
  m.channelsPerController = 2;
  // DDR2-667: 64 B burst ~10 ns; row cycle (tRC) ~55 ns at 1.86 GHz.
  m.rowHitServiceCycles = 18;
  m.rowMissServiceCycles = 102;
  m.banksPerChannel = 4;
  // FSB occupancy per transaction including snoop overhead.
  m.busServiceCycles = 45;
  m.dramLatency = 170;  // ~90 ns uncontended
  m.scaleFactor = 32.0;
  m.validate();
  return m;
}

MachineSpec intelNuma24() {
  MachineSpec m;
  m.name = "Intel NUMA (24 cores, Xeon X5650)";
  m.clockGhz = 2.66;
  m.sockets = 2;
  m.diesPerSocket = 1;
  m.coresPerDie = 6;
  m.smtPerCore = 2;
  m.caches = {
      {.level = 1, .size = 4 * kKiB, .lineSize = 64, .associativity = 8,
       .hitLatency = 4, .scope = CacheScope::kPerPhysicalCore},
      // 256 KB private L2 -> 16 KB at 32x scale (shared by SMT siblings).
      {.level = 2, .size = 16 * kKiB, .lineSize = 64, .associativity = 8,
       .hitLatency = 10, .scope = CacheScope::kPerPhysicalCore},
      // 12 MB L3 per socket -> 384 KB at 32x scale.
      {.level = 3, .size = 384 * kKiB, .lineSize = 64, .associativity = 16,
       .hitLatency = 40, .scope = CacheScope::kPerSocket},
  };
  m.memoryArchitecture = MemoryArchitecture::kNuma;
  m.controllerScope = ControllerScope::kPerSocket;
  m.channelsPerController = 3;
  // DDR3-1333: 64 B burst ~4.8 ns; row cycle (tRC) ~48 ns at 2.66 GHz.
  m.rowHitServiceCycles = 13;
  m.rowMissServiceCycles = 128;
  m.banksPerChannel = 8;
  m.dramLatency = 170;  // ~65 ns uncontended
  m.hopCycles = 70;         // QPI one-way hop latency
  m.linkServiceCycles = 30;  // QPI incl. protocol overhead at 2.66 GHz
  m.hopMatrix = {{0, 1}, {1, 0}};
  m.scaleFactor = 32.0;
  m.validate();
  return m;
}

MachineSpec amdNuma48() {
  MachineSpec m;
  m.name = "AMD NUMA (48 cores, Opteron 6172)";
  m.clockGhz = 2.1;
  m.sockets = 4;
  m.diesPerSocket = 2;
  m.coresPerDie = 6;
  m.smtPerCore = 1;
  m.caches = {
      {.level = 1, .size = 4 * kKiB, .lineSize = 64, .associativity = 8,
       .hitLatency = 3, .scope = CacheScope::kPerPhysicalCore},
      // 512 KB private L2 -> 16 KB at 32x scale.
      {.level = 2, .size = 16 * kKiB, .lineSize = 64, .associativity = 8,
       .hitLatency = 12, .scope = CacheScope::kPerPhysicalCore},
      // 5 MB L3 per die -> 160 KB at 32x scale.
      {.level = 3, .size = 160 * kKiB, .lineSize = 64, .associativity = 16,
       .hitLatency = 40, .scope = CacheScope::kPerDie},
  };
  m.memoryArchitecture = MemoryArchitecture::kNuma;
  m.controllerScope = ControllerScope::kPerDie;
  m.channelsPerController = 2;
  // DDR3-1333: 64 B burst ~6 ns; row cycle (tRC) ~48 ns at 2.1 GHz.
  m.rowHitServiceCycles = 13;
  m.rowMissServiceCycles = 100;
  m.banksPerChannel = 16;  // two ranks per channel
  m.dramLatency = 150;  // ~70 ns uncontended
  m.hopCycles = 55;          // HyperTransport one-way hop latency
  m.linkServiceCycles = 10;  // HT 3.x ~12.8 GB/s per direction at 2.1 GHz
  m.hopMatrix = magnyCoursHops();
  m.scaleFactor = 32.0;
  m.validate();
  return m;
}

std::vector<MachineSpec> paperMachines() {
  return {intelUma8(), intelNuma24(), amdNuma48()};
}

MachineSpec testNuma4() {
  MachineSpec m;
  m.name = "test NUMA (4 cores)";
  m.clockGhz = 1.0;
  m.sockets = 2;
  m.diesPerSocket = 1;
  m.coresPerDie = 2;
  m.smtPerCore = 1;
  m.caches = {
      {.level = 1, .size = 1 * kKiB, .lineSize = 64, .associativity = 2,
       .hitLatency = 2, .scope = CacheScope::kPerPhysicalCore},
      {.level = 2, .size = 8 * kKiB, .lineSize = 64, .associativity = 4,
       .hitLatency = 10, .scope = CacheScope::kPerSocket},
  };
  m.memoryArchitecture = MemoryArchitecture::kNuma;
  m.controllerScope = ControllerScope::kPerSocket;
  m.channelsPerController = 1;
  m.rowHitServiceCycles = 10;
  m.rowMissServiceCycles = 20;
  m.banksPerChannel = 2;
  m.dramLatency = 100;
  m.hopCycles = 40;
  m.hopMatrix = {{0, 1}, {1, 0}};
  m.validate();
  return m;
}

MachineSpec testUma4() {
  MachineSpec m;
  m.name = "test UMA (4 cores)";
  m.clockGhz = 1.0;
  m.sockets = 2;
  m.diesPerSocket = 1;
  m.coresPerDie = 2;
  m.smtPerCore = 1;
  m.caches = {
      {.level = 1, .size = 1 * kKiB, .lineSize = 64, .associativity = 2,
       .hitLatency = 2, .scope = CacheScope::kPerPhysicalCore},
      {.level = 2, .size = 8 * kKiB, .lineSize = 64, .associativity = 4,
       .hitLatency = 10, .scope = CacheScope::kPerSocket},
  };
  m.memoryArchitecture = MemoryArchitecture::kUma;
  m.controllerScope = ControllerScope::kMachine;
  m.channelsPerController = 1;
  m.rowHitServiceCycles = 10;
  m.rowMissServiceCycles = 20;
  m.banksPerChannel = 2;
  m.busServiceCycles = 10;
  m.dramLatency = 100;
  m.validate();
  return m;
}

std::optional<MachineSpec> presetByName(std::string_view name) {
  if (name == "intel-uma8") {
    return intelUma8();
  }
  if (name == "intel-numa24") {
    return intelNuma24();
  }
  if (name == "amd-numa48") {
    return amdNuma48();
  }
  if (name == "test-numa4") {
    return testNuma4();
  }
  if (name == "test-uma4") {
    return testUma4();
  }
  return std::nullopt;
}

std::vector<std::string> presetNames() {
  return {"intel-uma8", "intel-numa24", "amd-numa48", "test-numa4",
          "test-uma4"};
}

}  // namespace occm::topology
