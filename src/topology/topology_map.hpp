#pragma once

// Logical-core <-> physical-location mapping and the fill-processor-first
// allocation policy of the paper's experimental protocol (the role LIKWID
// played in the original study).

#include <vector>

#include "common/types.hpp"
#include "topology/machine_spec.hpp"

namespace occm::topology {

/// Physical location of one logical core.
struct CoreLocation {
  SocketId socket = 0;
  int die = 0;       ///< die index within the socket
  int core = 0;      ///< physical core index within the die
  int smt = 0;       ///< SMT thread index within the physical core

  friend bool operator==(const CoreLocation&, const CoreLocation&) = default;
};

class TopologyMap {
 public:
  explicit TopologyMap(MachineSpec spec);

  [[nodiscard]] const MachineSpec& spec() const noexcept { return spec_; }

  /// Canonical logical id of a location.
  [[nodiscard]] CoreId coreId(const CoreLocation& loc) const;

  /// Physical location of a logical core id.
  [[nodiscard]] CoreLocation location(CoreId core) const;

  /// Machine-wide die index (socket * diesPerSocket + die).
  [[nodiscard]] int dieIndex(CoreId core) const;

  /// NUMA node (= memory controller) closest to the core; 0 on UMA.
  [[nodiscard]] NodeId homeNode(CoreId core) const;

  /// Interconnect distance in hops between two nodes (0 on UMA).
  [[nodiscard]] int hops(NodeId from, NodeId to) const;

  /// The paper's core-activation order: sockets are filled one at a time;
  /// within a socket, dies are interleaved so that all controllers of the
  /// socket activate together (AMD protocol), and SMT siblings of a
  /// physical core are adjacent. Element k is the logical core activated
  /// k-th.
  [[nodiscard]] const std::vector<CoreId>& fillProcessorFirstOrder() const noexcept {
    return fillOrder_;
  }

  /// The first `activeCores` entries of the fill order.
  [[nodiscard]] std::vector<CoreId> activeCores(int activeCores) const;

  /// Nodes owning at least one of the first `activeCores` cores; {0} on UMA.
  [[nodiscard]] std::vector<NodeId> activeNodes(int activeCores) const;

  /// Number of distinct instances of a cache level on this machine.
  [[nodiscard]] int cacheInstanceCount(const CacheLevelSpec& level) const;

  /// Which instance of a cache level serves this core.
  [[nodiscard]] int cacheInstance(CoreId core, const CacheLevelSpec& level) const;

 private:
  MachineSpec spec_;
  std::vector<std::vector<int>> hopMatrix_;  ///< copied for fast access
  std::vector<CoreId> fillOrder_;
};

}  // namespace occm::topology
