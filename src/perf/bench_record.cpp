#include "perf/bench_record.hpp"

#include <algorithm>
#include <cstdio>
#include <string_view>
#include <thread>

#include "common/json_reader.hpp"

namespace occm::perf {

namespace {

std::string jsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// %.17g round-trips every double through the parser exactly.
std::string fmtDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::string fmtHex32(std::uint32_t value) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%08x", value);
  return buf;
}

/// Consumes `"key":` (with the preceding `,` handled by the caller) and
/// fails the reader naming the expected key on mismatch — which is what
/// makes the parser strict: an unknown or out-of-order key cannot match.
void expectKey(JsonReader& in, std::string_view key) {
  const std::string got = in.parseString();
  if (in.ok() && got != key) {
    in.fail("expected key \"" + std::string(key) + "\", got \"" + got + "\"");
  }
  in.consume(':');
}

double keyedNumber(JsonReader& in, std::string_view key) {
  expectKey(in, key);
  return in.parseNumber();
}

std::uint64_t keyedU64(JsonReader& in, std::string_view key) {
  const double value = keyedNumber(in, key);
  if (in.ok() && (value < 0.0 || value != value ||
                  value > 9007199254740992.0)) {  // 2^53
    in.fail("value of \"" + std::string(key) +
            "\" is not an exact unsigned integer");
    return 0;
  }
  return static_cast<std::uint64_t>(value);
}

int keyedInt(JsonReader& in, std::string_view key) {
  return static_cast<int>(keyedNumber(in, key));
}

std::string keyedString(JsonReader& in, std::string_view key) {
  expectKey(in, key);
  return in.parseString();
}

bool keyedBool(JsonReader& in, std::string_view key) {
  expectKey(in, key);
  return in.parseBool();
}

std::uint32_t keyedHex32(JsonReader& in, std::string_view key) {
  const std::string hex = keyedString(in, key);
  if (!in.ok()) {
    return 0;
  }
  if (hex.size() != 8 ||
      hex.find_first_not_of("0123456789abcdef") != std::string::npos) {
    in.fail("value of \"" + std::string(key) +
            "\" is not an 8-digit lowercase hex fingerprint");
    return 0;
  }
  std::uint32_t value = 0;
  for (char c : hex) {
    value = value * 16U +
            static_cast<std::uint32_t>(c <= '9' ? c - '0' : c - 'a' + 10);
  }
  return value;
}

void putStat(std::string& out, const char* key, const BenchStat& stat,
             const char* indent) {
  out += indent;
  out += '"';
  out += key;
  out += "\": {\"median\": " + fmtDouble(stat.median) +
         ", \"iqr\": " + fmtDouble(stat.iqr) +
         ", \"min\": " + fmtDouble(stat.min) +
         ", \"max\": " + fmtDouble(stat.max) + "}";
}

BenchStat parseStat(JsonReader& in, std::string_view key) {
  BenchStat stat;
  expectKey(in, key);
  in.consume('{');
  stat.median = keyedNumber(in, "median");
  in.consume(',');
  stat.iqr = keyedNumber(in, "iqr");
  in.consume(',');
  stat.min = keyedNumber(in, "min");
  in.consume(',');
  stat.max = keyedNumber(in, "max");
  in.consume('}');
  return stat;
}

}  // namespace

BenchStat summarizeSamples(std::vector<double> samples) {
  BenchStat stat;
  if (samples.empty()) {
    return stat;
  }
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  // Linear-interpolation quantile (R type 7): index q = (n - 1) * p.
  auto quantile = [&](double p) {
    const double q = static_cast<double>(n - 1) * p;
    const auto lo = static_cast<std::size_t>(q);
    const std::size_t hi = std::min(lo + 1, n - 1);
    const double frac = q - static_cast<double>(lo);
    return samples[lo] + (samples[hi] - samples[lo]) * frac;
  };
  stat.median = quantile(0.5);
  stat.iqr = n < 4 ? 0.0 : quantile(0.75) - quantile(0.25);
  stat.min = samples.front();
  stat.max = samples.back();
  return stat;
}

int detectHardwareThreads() noexcept {
  const unsigned reported = std::thread::hardware_concurrency();
  return reported == 0 ? 1 : static_cast<int>(reported);
}

const BenchPoint* BenchReport::find(const std::string& program,
                                    const std::string& topology,
                                    int poolSize) const noexcept {
  for (const BenchPoint& point : points) {
    if (point.program == program && point.topology == topology &&
        point.poolSize == poolSize) {
      return &point;
    }
  }
  return nullptr;
}

std::string toJson(const BenchReport& report) {
  std::string out = "{\n";
  out += "  \"schema\": \"" + std::string(BenchReport::kSchema) + "\",\n";
  out += "  \"generator\": \"" + jsonEscape(report.generator) + "\",\n";
  out += std::string("  \"quick\": ") + (report.quick ? "true" : "false") +
         ",\n";
  out += "  \"repeats\": " + std::to_string(report.repeats) + ",\n";
  out += "  \"warmup\": " + std::to_string(report.warmup) + ",\n";
  out += "  \"compiler\": \"" + jsonEscape(report.compiler) + "\",\n";
  out += "  \"build_type\": \"" + jsonEscape(report.buildType) + "\",\n";
  out += std::string("  \"obs_enabled\": ") +
         (report.obsEnabled ? "true" : "false") + ",\n";
  out +=
      "  \"hardware_threads\": " + std::to_string(report.hardwareThreads) +
      ",\n";
  out += "  \"points\": [";
  for (std::size_t i = 0; i < report.points.size(); ++i) {
    const BenchPoint& p = report.points[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\n";
    out += "      \"program\": \"" + jsonEscape(p.program) + "\",\n";
    out += "      \"topology\": \"" + jsonEscape(p.topology) + "\",\n";
    out += "      \"pool_size\": " + std::to_string(p.poolSize) + ",\n";
    out += "      \"core_counts_run\": " + std::to_string(p.coreCountsRun) +
           ",\n";
    out += "      \"repeats\": " + std::to_string(p.repeats) + ",\n";
    out += "      \"fingerprint\": \"" + fmtHex32(p.fingerprint) + "\",\n";
    out += "      \"sim_cycles\": " + std::to_string(p.simCycles) + ",\n";
    out += "      \"requests\": " + std::to_string(p.requests) + ",\n";
    putStat(out, "wall_ms", p.wallMs, "      ");
    out += ",\n";
    out += "      \"sim_cycles_per_sec\": " + fmtDouble(p.simCyclesPerSec) +
           ",\n";
    out += "      \"requests_per_sec\": " + fmtDouble(p.requestsPerSec) +
           ",\n";
    out += "      \"phases\": [";
    for (std::size_t j = 0; j < p.phases.size(); ++j) {
      const BenchPhase& phase = p.phases[j];
      out += j == 0 ? "\n" : ",\n";
      out += "        {\"name\": \"" + jsonEscape(phase.name) +
             "\", \"calls\": " + std::to_string(phase.calls) +
             ", \"wall_ns\": " + std::to_string(phase.wallNs) +
             ", \"cpu_ns\": " + std::to_string(phase.cpuNs) + "}";
    }
    out += p.phases.empty() ? "]\n" : "\n      ]\n";
    out += "    }";
  }
  out += report.points.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

Expected<BenchReport, std::string> parseBenchReport(const std::string& text) {
  JsonReader in(text);
  BenchReport report;
  in.consume('{');
  const std::string schema = keyedString(in, "schema");
  if (in.ok() && schema != BenchReport::kSchema) {
    return makeUnexpected("unsupported bench schema \"" + schema +
                          "\" (want \"" + BenchReport::kSchema + "\")");
  }
  in.consume(',');
  report.generator = keyedString(in, "generator");
  in.consume(',');
  report.quick = keyedBool(in, "quick");
  in.consume(',');
  report.repeats = keyedInt(in, "repeats");
  in.consume(',');
  report.warmup = keyedInt(in, "warmup");
  in.consume(',');
  report.compiler = keyedString(in, "compiler");
  in.consume(',');
  report.buildType = keyedString(in, "build_type");
  in.consume(',');
  report.obsEnabled = keyedBool(in, "obs_enabled");
  in.consume(',');
  report.hardwareThreads = keyedInt(in, "hardware_threads");
  in.consume(',');
  expectKey(in, "points");
  in.consume('[');
  if (!in.peek(']')) {
    do {
      BenchPoint p;
      in.consume('{');
      p.program = keyedString(in, "program");
      in.consume(',');
      p.topology = keyedString(in, "topology");
      in.consume(',');
      p.poolSize = keyedInt(in, "pool_size");
      in.consume(',');
      p.coreCountsRun = keyedInt(in, "core_counts_run");
      in.consume(',');
      p.repeats = keyedInt(in, "repeats");
      in.consume(',');
      p.fingerprint = keyedHex32(in, "fingerprint");
      in.consume(',');
      p.simCycles = keyedU64(in, "sim_cycles");
      in.consume(',');
      p.requests = keyedU64(in, "requests");
      in.consume(',');
      p.wallMs = parseStat(in, "wall_ms");
      in.consume(',');
      p.simCyclesPerSec = keyedNumber(in, "sim_cycles_per_sec");
      in.consume(',');
      p.requestsPerSec = keyedNumber(in, "requests_per_sec");
      in.consume(',');
      expectKey(in, "phases");
      in.consume('[');
      if (!in.peek(']')) {
        do {
          BenchPhase phase;
          in.consume('{');
          phase.name = keyedString(in, "name");
          in.consume(',');
          phase.calls = keyedU64(in, "calls");
          in.consume(',');
          phase.wallNs = keyedU64(in, "wall_ns");
          in.consume(',');
          phase.cpuNs = keyedU64(in, "cpu_ns");
          in.consume('}');
          p.phases.push_back(std::move(phase));
        } while (in.ok() && in.peek(',') && in.consume(','));
      }
      in.consume(']');
      in.consume('}');
      report.points.push_back(std::move(p));
    } while (in.ok() && in.peek(',') && in.consume(','));
  }
  in.consume(']');
  in.consume('}');
  if (in.ok() && !in.atEnd()) {
    in.fail("trailing bytes after the report object");
  }
  if (!in.ok()) {
    return makeUnexpected("corrupt bench report at byte " +
                          std::to_string(in.errorOffset()) + ": " +
                          in.errorDetail());
  }
  return report;
}

}  // namespace occm::perf
