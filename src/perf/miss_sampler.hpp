#pragma once

// The fine-grained LLC-miss sampler of section III-B.2: counts the number
// of last-level cache misses (requested cache lines) in every 5 us window
// of simulated time. The per-window counts are the "burst sizes" whose
// complementary CDF is Figure 4.
//
// Implemented as a thin wrapper over obs::TimeSeries (the observability
// layer's generic windowed sampler) with counter semantics. Counts are
// 64-bit throughout: the old implementation accumulated std::uint32_t
// lines into std::uint32_t windows and could silently wrap on long
// saturated runs.

#include <cstdint>
#include <vector>

#include "obs/time_series.hpp"

namespace occm::perf {

class MissSampler {
 public:
  /// `windowCycles`: sampling period in cycles (5 us at the machine clock).
  explicit MissSampler(Cycles windowCycles)
      : series_(windowCycles, obs::MetricKind::kCounter) {}

  /// Records `lines` requested cache lines at simulated time `time`.
  void record(Cycles time, std::uint64_t lines = 1) {
    series_.record(time, static_cast<double>(lines));
  }

  /// Extends the window vector to cover [0, endTime) with trailing zeros.
  void finalize(Cycles endTime) { series_.finalize(endTime); }

  /// Per-window line counts (exact for totals below 2^53 lines/window).
  [[nodiscard]] std::vector<std::uint64_t> windows() const {
    std::vector<std::uint64_t> counts;
    counts.reserve(series_.windowCount());
    for (std::size_t i = 0; i < series_.windowCount(); ++i) {
      counts.push_back(static_cast<std::uint64_t>(series_.sum(i)));
    }
    return counts;
  }

  [[nodiscard]] Cycles windowCycles() const noexcept {
    return series_.windowCycles();
  }

  /// The underlying time series (for registering with a MetricRegistry
  /// export or cross-checking against other obs metrics).
  [[nodiscard]] const obs::TimeSeries& series() const noexcept {
    return series_;
  }

  /// Burst sizes: the non-empty windows' line counts, as doubles for the
  /// stats layer. Empty windows are idle gaps between bursts, not bursts.
  [[nodiscard]] std::vector<double> burstSizes() const {
    std::vector<double> sizes;
    sizes.reserve(series_.windowCount());
    for (std::size_t i = 0; i < series_.windowCount(); ++i) {
      if (series_.sum(i) > 0.0) {
        sizes.push_back(series_.sum(i));
      }
    }
    return sizes;
  }

 private:
  obs::TimeSeries series_;
};

}  // namespace occm::perf
