#pragma once

// The fine-grained LLC-miss sampler of section III-B.2: counts the number
// of last-level cache misses (requested cache lines) in every 5 us window
// of simulated time. The per-window counts are the "burst sizes" whose
// complementary CDF is Figure 4.

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace occm::perf {

class MissSampler {
 public:
  /// `windowCycles`: sampling period in cycles (5 us at the machine clock).
  explicit MissSampler(Cycles windowCycles) : window_(windowCycles) {
    OCCM_REQUIRE_MSG(windowCycles > 0, "window must be positive");
  }

  /// Records `lines` requested cache lines at simulated time `time`.
  void record(Cycles time, std::uint32_t lines = 1) {
    const auto idx = static_cast<std::size_t>(time / window_);
    if (counts_.size() <= idx) {
      counts_.resize(idx + 1, 0);
    }
    counts_[idx] += lines;
  }

  /// Extends the window vector to cover [0, endTime) with trailing zeros.
  void finalize(Cycles endTime) {
    const auto windows = static_cast<std::size_t>(
        (endTime + window_ - 1) / window_);
    if (counts_.size() < windows) {
      counts_.resize(windows, 0);
    }
  }

  [[nodiscard]] const std::vector<std::uint32_t>& windows() const noexcept {
    return counts_;
  }
  [[nodiscard]] Cycles windowCycles() const noexcept { return window_; }

  /// Burst sizes: the non-empty windows' line counts, as doubles for the
  /// stats layer. Empty windows are idle gaps between bursts, not bursts.
  [[nodiscard]] std::vector<double> burstSizes() const {
    std::vector<double> sizes;
    sizes.reserve(counts_.size());
    for (std::uint32_t c : counts_) {
      if (c > 0) {
        sizes.push_back(static_cast<double>(c));
      }
    }
    return sizes;
  }

 private:
  Cycles window_;
  std::vector<std::uint32_t> counts_;
};

}  // namespace occm::perf
