#pragma once

// Hardware-counter facade mirroring the PAPI events the paper measures:
// PAPI_TOT_CYC, PAPI_TOT_INS, PAPI_RES_STL and the last-level-cache miss
// event (PAPI_L2_TCM on the UMA machine, LLC_MISSES / L3_CACHE_MISSES on
// the NUMA machines). Work cycles are derived exactly as in the paper:
// work = total - stall.

#include <cstdint>

#include "common/types.hpp"

namespace occm::perf {

struct CounterSet {
  Cycles totalCycles = 0;   ///< PAPI_TOT_CYC
  Cycles stallCycles = 0;   ///< PAPI_RES_STL
  std::uint64_t instructions = 0;  ///< PAPI_TOT_INS
  std::uint64_t llcMisses = 0;     ///< LLC_MISSES / L3_CACHE_MISSES / L2_TCM

  /// Cycles in which at least one instruction completed (paper def.).
  [[nodiscard]] Cycles workCycles() const noexcept {
    return totalCycles - stallCycles;
  }

  CounterSet& operator+=(const CounterSet& other) noexcept {
    totalCycles += other.totalCycles;
    stallCycles += other.stallCycles;
    instructions += other.instructions;
    llcMisses += other.llcMisses;
    return *this;
  }

  friend CounterSet operator+(CounterSet a, const CounterSet& b) noexcept {
    a += b;
    return a;
  }
};

}  // namespace occm::perf
