#pragma once

// The measured result of one simulated run — everything the paper's
// methodology extracts from PAPI/papiex for one (program, problem size,
// machine, active cores) configuration.

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "mem/memory_system.hpp"
#include "obs/run_trace.hpp"
#include "perf/counters.hpp"

namespace occm::perf {

/// One scripted fault window the run suffered (copied from the
/// fault::FaultPlan so the profile is self-describing without a fault
/// dependency). `kind` matches fault::toString(FaultKind).
struct FaultEpoch {
  std::string kind;
  std::int32_t target = 0;  ///< controller node or core id
  Cycles start = 0;
  Cycles end = 0;
  double magnitude = 1.0;
};

/// Simulator-internal hot-path counters of one run: how much machinery the
/// event loop itself turned, as opposed to what the simulated machine did.
/// Deterministic (derived purely from the simulated schedule, never from
/// host time), so two runs of the same configuration agree exactly — which
/// is also what makes them usable as a cheap structural fingerprint of a
/// run alongside its architectural counters.
struct HotPathStats {
  std::uint64_t eventsPopped = 0;   ///< event-loop turns executed
  std::uint64_t eventsPushed = 0;   ///< events scheduled (incl. initial)
  std::uint64_t maxEventQueueDepth = 0;
  std::uint64_t advanceTurns = 0;   ///< kAdvance events (compute resume)
  std::uint64_t issueTurns = 0;     ///< kIssue events (off-chip requests)
  std::uint64_t controllerTicks = 0;  ///< memory-system reservation ops
};

struct RunProfile {
  std::string program;   ///< e.g. "CG.C"
  std::string machine;   ///< e.g. "Intel NUMA (24 cores, Xeon X5650)"
  int threads = 0;
  int activeCores = 0;

  /// Counters summed over all active cores (the paper's "total number of
  /// cycles required to execute the program across all the active cores").
  CounterSet counters;
  /// Per logical core (indexed by machine core id; zeros for idle cores).
  std::vector<CounterSet> perCore;

  std::uint64_t coherenceMisses = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t contextSwitches = 0;
  /// Wall-clock length of the run in cycles (max core finish time).
  Cycles makespan = 0;

  /// Event-loop/memory-system hot-path counters (see HotPathStats).
  HotPathStats hotPath;

  /// Per-controller statistics snapshot.
  std::vector<mem::ControllerStats> controllerStats;
  /// Channels per controller on the simulated machine (for utilization:
  /// busyCycles / (makespan * channels)); 0 when unknown.
  int channelsPerController = 0;

  /// 5 us miss-sampler windows (machine-wide), empty unless sampling was
  /// enabled for the run.
  std::vector<std::uint64_t> missWindows;
  Cycles samplerWindowCycles = 0;

  /// Windowed metrics + structured event trace, attached when the run was
  /// configured with obs::ObsConfig (null otherwise).
  obs::RunTracePtr trace;

  /// Fault scenario of the run (empty on a healthy run) and its
  /// machine-wide degraded-mode counters.
  std::vector<FaultEpoch> faultEpochs;
  std::uint64_t reroutedRequests = 0;   ///< transfers served by a peer
  std::uint64_t faultRetries = 0;       ///< bounded retry attempts paid
  std::uint64_t backgroundRequests = 0; ///< interfering transfers injected
  Cycles throttledCycles = 0;           ///< stall added by throttle windows

  [[nodiscard]] double totalCyclesD() const noexcept {
    return static_cast<double>(counters.totalCycles);
  }

  /// Mean channel utilization of controller `node` over the whole run:
  /// busyCycles / (makespan * channelsPerController). 0 when the run
  /// length or channel count is unknown.
  [[nodiscard]] double controllerUtilization(std::size_t node) const noexcept {
    if (node >= controllerStats.size() || makespan == 0 ||
        channelsPerController <= 0) {
      return 0.0;
    }
    return static_cast<double>(controllerStats[node].busyCycles) /
           (static_cast<double>(makespan) *
            static_cast<double>(channelsPerController));
  }
};

/// Formats the profile as a papiex-style text report.
[[nodiscard]] std::string formatReport(const RunProfile& profile);

}  // namespace occm::perf
