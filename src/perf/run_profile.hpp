#pragma once

// The measured result of one simulated run — everything the paper's
// methodology extracts from PAPI/papiex for one (program, problem size,
// machine, active cores) configuration.

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "mem/memory_system.hpp"
#include "perf/counters.hpp"

namespace occm::perf {

struct RunProfile {
  std::string program;   ///< e.g. "CG.C"
  std::string machine;   ///< e.g. "Intel NUMA (24 cores, Xeon X5650)"
  int threads = 0;
  int activeCores = 0;

  /// Counters summed over all active cores (the paper's "total number of
  /// cycles required to execute the program across all the active cores").
  CounterSet counters;
  /// Per logical core (indexed by machine core id; zeros for idle cores).
  std::vector<CounterSet> perCore;

  std::uint64_t coherenceMisses = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t contextSwitches = 0;
  /// Wall-clock length of the run in cycles (max core finish time).
  Cycles makespan = 0;

  /// Per-controller statistics snapshot.
  std::vector<mem::ControllerStats> controllerStats;

  /// 5 us miss-sampler windows (machine-wide), empty unless sampling was
  /// enabled for the run.
  std::vector<std::uint32_t> missWindows;
  Cycles samplerWindowCycles = 0;

  [[nodiscard]] double totalCyclesD() const noexcept {
    return static_cast<double>(counters.totalCycles);
  }
};

/// Formats the profile as a papiex-style text report.
[[nodiscard]] std::string formatReport(const RunProfile& profile);

}  // namespace occm::perf
