#pragma once

// Schema-versioned benchmark records — the `BENCH_*.json` throughput
// trajectory. Each file is one BenchReport: host/build metadata plus one
// BenchPoint per (workload, topology, pool size) grid cell, each carrying
//  - deterministic quantities (simulated cycles, memory requests, and a
//    CRC-32 fingerprint of the sweep's CSV) that must be bit-identical
//    across hosts, pool sizes and profiling on/off, and
//  - host-time measurements (wall ms as median/IQR/min/max over repeats,
//    derived simulated-cycles/sec and requests/sec) that are the actual
//    perf trajectory and are expected to differ between machines.
//
// The emitter and parser round-trip exactly (doubles via %.17g), pinned
// by BenchRecord.JsonRoundTrips; scripts/bench_compare.py consumes the
// same schema. Bump kSchema on any incompatible change.

#include <cstdint>
#include <string>
#include <vector>

#include "common/expected.hpp"

namespace occm::perf {

/// Order statistics of one host-time measurement over N repeats.
struct BenchStat {
  double median = 0.0;
  double iqr = 0.0;  ///< interquartile range (Q3 - Q1); 0 for N < 4
  double min = 0.0;
  double max = 0.0;
};

/// Median/IQR/min/max of `samples` (values are copied and sorted; median
/// of an even count averages the middle pair, quartiles interpolate
/// linearly). Returns zeros for an empty input.
[[nodiscard]] BenchStat summarizeSamples(std::vector<double> samples);

/// Hardware threads of the bench host, captured at bench time for the
/// report's `hardware_threads` field. std::thread::hardware_concurrency
/// may legally return 0 ("not computable"); this clamps to >= 1 so the
/// field always records a usable count rather than a sentinel.
[[nodiscard]] int detectHardwareThreads() noexcept;

/// One self-profiler phase rolled into a point (host time, summed over
/// the point's measured repeats).
struct BenchPhase {
  std::string name;
  std::uint64_t calls = 0;
  std::uint64_t wallNs = 0;
  std::uint64_t cpuNs = 0;
};

/// One (workload, topology, pool size) grid cell.
struct BenchPoint {
  std::string program;   ///< e.g. "CG.C"
  std::string topology;  ///< preset name, e.g. "intelNuma24"
  int poolSize = 1;
  int coreCountsRun = 0;  ///< sweep points per repeat
  int repeats = 0;        ///< measured repeats (excluding warmup)
  /// CRC-32 of the sweep's CSV export — the determinism anchor: identical
  /// across pool sizes, profiling on/off, hosts and repeats.
  std::uint32_t fingerprint = 0;
  /// Simulated cycles summed over the sweep's runs (deterministic).
  std::uint64_t simCycles = 0;
  /// Off-chip demand requests summed over the sweep's runs (deterministic).
  std::uint64_t requests = 0;
  BenchStat wallMs;             ///< host wall time of one repeat
  double simCyclesPerSec = 0.0; ///< simCycles / median wall seconds
  double requestsPerSec = 0.0;  ///< requests / median wall seconds
  std::vector<BenchPhase> phases;
};

struct BenchReport {
  /// Schema identifier embedded in every file.
  static constexpr const char* kSchema = "occm-bench-v1";
  std::string generator = "perf_baseline";
  bool quick = false;  ///< CI smoke grid rather than the full baseline
  int repeats = 0;
  int warmup = 0;
  // Host/build metadata (informational; never compared).
  std::string compiler;
  std::string buildType;
  bool obsEnabled = true;
  int hardwareThreads = 0;
  std::vector<BenchPoint> points;

  /// Point lookup by (program, topology, poolSize); nullptr when absent.
  [[nodiscard]] const BenchPoint* find(const std::string& program,
                                       const std::string& topology,
                                       int poolSize) const noexcept;
};

/// Serializes the report as pretty-printed JSON (stable key order,
/// %.17g doubles — the exact bytes parseBenchReport round-trips).
[[nodiscard]] std::string toJson(const BenchReport& report);

/// Parses what toJson produced. Strict: schema string must match
/// BenchReport::kSchema, every key is required, unknown keys are
/// rejected. The error names the first deviation and its byte offset.
[[nodiscard]] Expected<BenchReport, std::string> parseBenchReport(
    const std::string& text);

}  // namespace occm::perf
