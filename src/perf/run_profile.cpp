#include "perf/run_profile.hpp"

#include <cstdio>
#include <sstream>

namespace occm::perf {

namespace {
std::string withCommas(std::uint64_t value) {
  std::string raw = std::to_string(value);
  std::string out;
  out.reserve(raw.size() + raw.size() / 3);
  int digits = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (digits != 0 && digits % 3 == 0) {
      out.push_back(',');
    }
    out.push_back(*it);
    ++digits;
  }
  return {out.rbegin(), out.rend()};
}

std::string percent(double ratio) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f%%", 100.0 * ratio);
  return buffer;
}
}  // namespace

std::string formatReport(const RunProfile& profile) {
  std::ostringstream out;
  out << "papiex-style report\n";
  out << "  program       : " << profile.program << "\n";
  out << "  machine       : " << profile.machine << "\n";
  out << "  threads/cores : " << profile.threads << " threads on "
      << profile.activeCores << " active cores\n";
  out << "  PAPI_TOT_CYC  : " << withCommas(profile.counters.totalCycles)
      << "\n";
  out << "  PAPI_RES_STL  : " << withCommas(profile.counters.stallCycles)
      << "\n";
  out << "  work cycles   : " << withCommas(profile.counters.workCycles())
      << "\n";
  out << "  PAPI_TOT_INS  : " << withCommas(profile.counters.instructions)
      << "\n";
  out << "  LLC_MISSES    : " << withCommas(profile.counters.llcMisses)
      << "\n";
  out << "  coherence     : " << withCommas(profile.coherenceMisses)
      << " misses, " << withCommas(profile.writebacks) << " writebacks\n";
  out << "  ctx switches  : " << withCommas(profile.contextSwitches) << "\n";
  out << "  makespan      : " << withCommas(profile.makespan) << " cycles\n";
  for (std::size_t i = 0; i < profile.controllerStats.size(); ++i) {
    const auto& c = profile.controllerStats[i];
    if (c.requests == 0 && c.writebacks == 0) {
      continue;
    }
    out << "  controller " << i << " : " << withCommas(c.requests)
        << " requests (" << withCommas(c.remoteRequests) << " remote), "
        << "mean wait " << c.meanWait() << " cycles";
    if (profile.makespan > 0 && profile.channelsPerController > 0) {
      out << ", util " << percent(profile.controllerUtilization(i));
    }
    if (c.rowHits + c.rowMisses > 0) {
      out << ", row-hit " << percent(c.rowHitRatio());
    }
    out << "\n";
  }
  if (!profile.faultEpochs.empty()) {
    out << "  faults        : " << profile.faultEpochs.size() << " epochs, "
        << withCommas(profile.reroutedRequests) << " rerouted, "
        << withCommas(profile.faultRetries) << " retries, "
        << withCommas(profile.backgroundRequests) << " background, "
        << withCommas(profile.throttledCycles) << " throttled cycles\n";
    for (const FaultEpoch& epoch : profile.faultEpochs) {
      out << "    " << epoch.kind << " target " << epoch.target << " ["
          << withCommas(epoch.start) << ", " << withCommas(epoch.end)
          << ")\n";
    }
  }
  if (profile.trace != nullptr) {
    out << "  obs trace     : " << profile.trace->metrics.size()
        << " metrics, " << profile.trace->events.size() << " events ("
        << withCommas(profile.trace->events.dropped()) << " dropped)\n";
  }
  return out.str();
}

}  // namespace occm::perf
