#pragma once

// Division by a runtime-invariant 64-bit divisor, precomputed once.
//
// The simulator's hottest arithmetic is `x / d` and `x % d` where d is
// fixed for the life of a run (cache set counts, channel/bank striping,
// page-interleave weights) but only known at run time — the compiler
// cannot strength-reduce it, and a 64-bit DIV is 30+ cycles on the
// paper's machines and ours. FastDiv folds the divisor into a 128-bit
// reciprocal at construction: quotient = mulhi(n, ceil(2^64 / d)) with
// at most one correction step, exact for every uint64_t numerator
// (addresses here exceed 2^40 — trace/address_space.hpp — so the common
// 32-bit "magic number" trick does not apply). Power-of-two divisors use
// a shift/mask fast path chosen once, not per call.
//
// Exactness over the full 64-bit domain is pinned by
// tests/common/test_fastdiv.cpp (structured + randomized sweeps against
// the hardware divider).

#include <cstdint>

#include "common/error.hpp"

namespace occm {

class FastDiv {
 public:
  FastDiv() = default;

  explicit FastDiv(std::uint64_t divisor) : divisor_(divisor) {
    OCCM_REQUIRE_MSG(divisor != 0, "FastDiv divisor must be nonzero");
    if ((divisor & (divisor - 1)) == 0) {
      // Power of two: pure shift/mask.
      shift_ = ctz(divisor);
      mask_ = divisor - 1;
      powerOfTwo_ = true;
      return;
    }
    powerOfTwo_ = false;
    // floor(2^64 / d) without 128-bit division: split 2^64 - 1 = q*d + r,
    // then floor(2^64 / d) = q + (r + 1 == d ? 1 : 0). d is not a power
    // of two here, so d >= 3 and q fits.
    const std::uint64_t all = ~std::uint64_t{0};
    std::uint64_t q = all / divisor;
    const std::uint64_t r = all % divisor;
    if (r + 1 == divisor) {
      ++q;
    }
    reciprocal_ = q;
  }

  [[nodiscard]] std::uint64_t divisor() const noexcept { return divisor_; }

  /// n / divisor, exact for every n.
  [[nodiscard]] std::uint64_t divide(std::uint64_t n) const noexcept {
    if (powerOfTwo_) {
      return n >> shift_;
    }
    // q_est = floor(n * floor(2^64/d) / 2^64) <= floor(n/d), and the
    // error is < 2 because floor(2^64/d) > 2^64/d - 1 implies
    // q_est > n/d - n/2^64 - 1 > floor(n/d) - 2. One correction step.
    std::uint64_t q = mulhi(n, reciprocal_);
    std::uint64_t rem = n - q * divisor_;
    if (rem >= divisor_) {
      ++q;
      rem -= divisor_;
    }
    if (rem >= divisor_) {
      ++q;
    }
    return q;
  }

  /// n % divisor, exact for every n.
  [[nodiscard]] std::uint64_t modulo(std::uint64_t n) const noexcept {
    if (powerOfTwo_) {
      return n & mask_;
    }
    std::uint64_t rem = n - mulhi(n, reciprocal_) * divisor_;
    if (rem >= divisor_) {
      rem -= divisor_;
    }
    if (rem >= divisor_) {
      rem -= divisor_;
    }
    return rem;
  }

 private:
  static std::uint64_t mulhi(std::uint64_t a, std::uint64_t b) noexcept {
    // __int128 is a GCC/Clang extension; __extension__ keeps -Wpedantic
    // quiet. Compiles to one MUL on x86-64 / UMULH on aarch64.
    __extension__ using U128 = unsigned __int128;
    return static_cast<std::uint64_t>((static_cast<U128>(a) * b) >> 64);
  }
  static unsigned ctz(std::uint64_t v) noexcept {
    unsigned s = 0;
    while ((v & 1) == 0) {
      v >>= 1;
      ++s;
    }
    return s;
  }

  std::uint64_t divisor_ = 1;
  std::uint64_t reciprocal_ = 0;
  std::uint64_t mask_ = 0;
  unsigned shift_ = 0;
  bool powerOfTwo_ = true;  ///< default divisor 1 == identity
};

}  // namespace occm
