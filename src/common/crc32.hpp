#pragma once

// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected) — the integrity
// check used by the checkpoint format's per-record checksums. Table-driven
// with a constexpr-generated table; byte-order independent because it
// only ever consumes bytes.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace occm {

namespace detail {

constexpr std::array<std::uint32_t, 256> makeCrc32Table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table = makeCrc32Table();

}  // namespace detail

/// CRC-32 of a byte string (standard init/final XOR with 0xFFFFFFFF).
[[nodiscard]] constexpr std::uint32_t crc32(std::string_view data) noexcept {
  std::uint32_t crc = 0xFFFFFFFFU;
  for (char ch : data) {
    const auto byte = static_cast<std::uint8_t>(ch);
    crc = detail::kCrc32Table[(crc ^ byte) & 0xFFU] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFU;
}

}  // namespace occm
