#pragma once

// Cooperative cancellation and deadline primitives for long-running work
// (sweeps, simulations, pool tasks).
//
// The model is strictly cooperative: a CancellationSource owns a shared
// stop flag, hands out CancellationTokens (cheap copies observing the
// same flag), and the code doing the work polls the token at well-defined
// points — the simulator's event-loop boundary, a sweep task's attempt
// boundary — so where work stops is deterministic even though *when* the
// request arrives is not. requestStop() is a lock-free atomic store and
// is safe to call from a signal handler (graceful Ctrl-C) or a watchdog
// thread.
//
// Work that observes a stop request or exhausts a cycle budget unwinds by
// throwing RunAborted, a typed exception carrying the reason and the
// simulated cycle it fired at, so harnesses can map it to a structured
// failure record instead of a generic error string.

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>

#include "common/types.hpp"

namespace occm {

/// Read side of a stop flag. Default-constructed tokens are inert: they
/// belong to no source and never report a stop request.
class CancellationToken {
 public:
  CancellationToken() = default;

  /// True when this token is connected to a CancellationSource.
  [[nodiscard]] bool valid() const noexcept { return flag_ != nullptr; }

  /// True once the owning source requested a stop. Relaxed load: polls
  /// are cheap enough for per-event granularity.
  [[nodiscard]] bool stopRequested() const noexcept {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Write side: owns the flag, hands out tokens. Copies share the flag.
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  [[nodiscard]] CancellationToken token() const {
    return CancellationToken(flag_);
  }

  /// Requests a stop. Idempotent; async-signal-safe (one atomic store on
  /// pre-allocated state).
  void requestStop() noexcept { flag_->store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool stopRequested() const noexcept {
    return flag_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// A wall-clock deadline against the steady clock. Inert when
/// default-constructed (never expires); watchdogs poll expired().
class Deadline {
 public:
  Deadline() = default;

  /// Deadline `seconds` from now; seconds <= 0 gives an already-expired
  /// deadline.
  [[nodiscard]] static Deadline after(double seconds) {
    Deadline d;
    d.at_ = std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(seconds));
    d.armed_ = true;
    return d;
  }

  [[nodiscard]] bool armed() const noexcept { return armed_; }

  [[nodiscard]] bool expired() const noexcept {
    return armed_ && std::chrono::steady_clock::now() >= at_;
  }

  /// Seconds until expiry (negative once past); +infinity when unarmed.
  [[nodiscard]] double remainingSeconds() const noexcept {
    if (!armed_) {
      return std::numeric_limits<double>::infinity();
    }
    return std::chrono::duration<double>(at_ -
                                         std::chrono::steady_clock::now())
        .count();
  }

 private:
  std::chrono::steady_clock::time_point at_{};
  bool armed_ = false;
};

/// Why a run was aborted at a cancellation point.
enum class AbortReason : std::uint8_t {
  kCancelled,    ///< a CancellationToken observed a stop request
  kCycleBudget,  ///< the simulated-cycle budget was exhausted
};

[[nodiscard]] constexpr const char* toString(AbortReason reason) noexcept {
  switch (reason) {
    case AbortReason::kCancelled: return "cancelled";
    case AbortReason::kCycleBudget: return "cycle-budget";
  }
  return "unknown";
}

/// Thrown from a deterministic cancellation point (the simulator's event
/// loop) when a run must stop early. Carries the reason and the simulated
/// cycle the abort fired at so harnesses can produce a typed, diagnosable
/// failure record.
class RunAborted : public std::runtime_error {
 public:
  RunAborted(AbortReason reason, Cycles atCycle, const std::string& what)
      : std::runtime_error(what), reason_(reason), atCycle_(atCycle) {}

  [[nodiscard]] AbortReason reason() const noexcept { return reason_; }
  [[nodiscard]] Cycles atCycle() const noexcept { return atCycle_; }

 private:
  AbortReason reason_;
  Cycles atCycle_;
};

}  // namespace occm
