#pragma once

// Minimal recursive-descent reader for the JSON subset our persistence
// formats emit (objects, arrays, strings, numbers, booleans). Shared by
// the sweep-checkpoint and fault-plan loaders.
//
// Hardened for untrusted bytes: every primitive bounds-checks, nothing
// asserts, and the first deviation records a byte offset plus a
// human-readable detail so typed errors can name exactly where a file
// went bad. A reader that has failed stays failed — callers can parse
// optimistically and inspect ok()/errorOffset()/errorDetail() once at
// the end. truncated() distinguishes "the bytes ran out" from "the bytes
// are garbage", which loaders map to different error kinds.

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <string>
#include <string_view>

namespace occm {

class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  /// Byte offset of the first failure (valid only when !ok()).
  [[nodiscard]] std::size_t errorOffset() const noexcept { return errorPos_; }
  [[nodiscard]] const std::string& errorDetail() const noexcept {
    return errorDetail_;
  }
  /// True when the first failure was the input ending mid-structure.
  [[nodiscard]] bool truncated() const noexcept { return truncated_; }

  /// Current read position (for callers recording record offsets).
  [[nodiscard]] std::size_t offset() const noexcept { return pos_; }

  /// Records the first failure; later failures are ignored.
  void fail(const std::string& detail) {
    if (ok_) {
      ok_ = false;
      errorPos_ = pos_;
      errorDetail_ = detail;
      truncated_ = pos_ >= text_.size();
    }
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skipWs();
    if (!ok_) {
      return false;
    }
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
      return false;
    }
    ++pos_;
    return true;
  }

  [[nodiscard]] bool peek(char c) {
    skipWs();
    return ok_ && pos_ < text_.size() && text_[pos_] == c;
  }

  /// True at end of input (after whitespace); does not fail the reader.
  [[nodiscard]] bool atEnd() {
    skipWs();
    return pos_ >= text_.size();
  }

  std::string parseString() {
    if (!consume('"')) {
      return {};
    }
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          fail("string escape runs past end of input");
          return out;
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("\\u escape runs past end of input");
              return out;
            }
            const std::string hex(text_.substr(pos_, 4));
            char* end = nullptr;
            const unsigned long code = std::strtoul(hex.c_str(), &end, 16);
            if (end != hex.c_str() + 4) {
              fail("bad \\u escape digits");
              return out;
            }
            pos_ += 4;
            c = static_cast<char>(code & 0xFFU);
            break;
          }
          default: c = esc; break;
        }
      }
      out += c;
    }
    if (pos_ >= text_.size()) {
      fail("unterminated string");
      return out;
    }
    ++pos_;  // closing quote
    return out;
  }

  double parseNumber() {
    skipWs();
    if (!ok_) {
      return 0.0;
    }
    if (pos_ >= text_.size()) {
      fail("expected a number");
      return 0.0;
    }
    // strtod needs a NUL-terminated buffer; copy the token's plausible
    // extent instead of trusting the underlying view to be terminated.
    std::size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) != 0 ||
            text_[end] == '+' || text_[end] == '-' || text_[end] == '.' ||
            text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
    }
    const std::string token(text_.substr(pos_, end - pos_));
    errno = 0;
    char* stop = nullptr;
    const double value = std::strtod(token.c_str(), &stop);
    if (stop == token.c_str() || errno == ERANGE) {
      fail("malformed number");
      return 0.0;
    }
    pos_ += static_cast<std::size_t>(stop - token.c_str());
    return value;
  }

  bool parseBool() {
    skipWs();
    if (!ok_) {
      return false;
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    fail("expected true or false");
    return false;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  bool truncated_ = false;
  std::size_t errorPos_ = 0;
  std::string errorDetail_;
};

}  // namespace occm
