#pragma once

// Lightweight contract checking (C++ Core Guidelines I.6/E.12 style).
//
// OCCM_REQUIRE is used for preconditions on public APIs: it throws
// occm::ContractViolation so tests can assert on misuse. OCCM_ASSERT is for
// internal invariants and is compiled out in release-with-assertions-off
// builds only if OCCM_DISABLE_ASSERTS is defined (never by default: the
// simulator relies on invariant checks during development).

#include <stdexcept>
#include <string>

namespace occm {

/// Thrown when a public-API precondition is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contractFailure(const char* kind, const char* expr,
                                         const char* file, int line,
                                         const std::string& msg) {
  std::string text = std::string(kind) + " failed: " + expr + " at " + file +
                     ":" + std::to_string(line);
  if (!msg.empty()) {
    text += " — " + msg;
  }
  throw ContractViolation(text);
}
}  // namespace detail

}  // namespace occm

#define OCCM_REQUIRE(expr)                                                  \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::occm::detail::contractFailure("precondition", #expr, __FILE__,      \
                                      __LINE__, "");                        \
    }                                                                       \
  } while (false)

#define OCCM_REQUIRE_MSG(expr, msg)                                         \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::occm::detail::contractFailure("precondition", #expr, __FILE__,      \
                                      __LINE__, (msg));                     \
    }                                                                       \
  } while (false)

#if defined(OCCM_DISABLE_ASSERTS)
#define OCCM_ASSERT(expr) ((void)0)
#else
#define OCCM_ASSERT(expr)                                                   \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::occm::detail::contractFailure("invariant", #expr, __FILE__,         \
                                      __LINE__, "");                        \
    }                                                                       \
  } while (false)
#endif
