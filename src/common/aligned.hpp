#pragma once

// Cache-line-aligned storage for hot per-resource state arrays
// (DESIGN.md §14). std::vector's default allocator only guarantees
// alignof(std::max_align_t); the simulator's struct-of-arrays resource
// tables (channel free-at times, open-row registers, event buckets) want
// their base 64-byte aligned so a run of adjacent entries spans the
// fewest possible lines and never straddles one unnecessarily.

#include <cstddef>
#include <new>
#include <vector>

namespace occm {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Minimal aligned allocator: std::allocator semantics with the base
/// address aligned to `Align` bytes.
template <typename T, std::size_t Align = kCacheLineBytes>
struct AlignedAlloc {
  using value_type = T;

  /// Explicit rebind: allocator_traits cannot synthesize it because
  /// `Align` is a non-type template parameter.
  template <typename U>
  struct rebind {
    using other = AlignedAlloc<U, Align>;
  };

  AlignedAlloc() noexcept = default;
  template <typename U>
  AlignedAlloc(const AlignedAlloc<U, Align>&) noexcept {}  // NOLINT

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  template <typename U>
  bool operator==(const AlignedAlloc<U, Align>&) const noexcept {
    return true;
  }
};

/// std::vector whose data() is 64-byte (cache-line) aligned.
template <typename T>
using CacheAlignedVector = std::vector<T, AlignedAlloc<T>>;

}  // namespace occm
