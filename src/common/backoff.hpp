#pragma once

// One retry-backoff policy for every layer that retries: the memory
// system's failover penalty (simulated cycles), the sweep's inter-attempt
// delay (host milliseconds), the distributed coordinator's lease
// re-dispatch schedule and the worker's reconnect loop. All four used to
// hand-roll the same "base * 2^k, capped" shape; this header is the one
// implementation, so the cap/jitter semantics cannot drift between them.
//
// Determinism: delay() is a pure function of (policy, attempt). Jitter is
// derived from the policy's seed and the attempt index through SplitMix64
// — never from global RNG state or the clock — so a re-dispatch schedule
// replays identically across coordinator restarts (the bit-identical
// recovery guarantee extends to *when* work is retried, not just what it
// produces).

#include <cstdint>

#include "common/rng.hpp"

namespace occm {

/// Capped exponential backoff with deterministic seeded jitter. Units are
/// the caller's (cycles, milliseconds, ...): the policy only does the
/// arithmetic.
struct BackoffPolicy {
  /// Delay before retry 0. 0 disables the policy (every delay is 0).
  std::uint64_t base = 0;
  /// Upper bound applied after the exponential growth (0 = uncapped).
  std::uint64_t cap = 0;
  /// Jitter as a fraction of the capped delay in 1/256ths: the delay for
  /// attempt k is `capped + jitter(seed, k) % (capped * jitterPct256 /
  /// 256 + 1)`. 0 = no jitter (the memory system's fully deterministic
  /// cycle penalty).
  std::uint32_t jitterPct256 = 0;
  /// Seed for the jitter stream; combine with a task id so concurrent
  /// schedules decorrelate while each stays reproducible.
  std::uint64_t seed = 0;

  /// Delay before retry `attempt` (0-based): min(cap, base << attempt),
  /// plus deterministic jitter. Shift-safe for any attempt count.
  [[nodiscard]] std::uint64_t delay(std::uint32_t attempt) const noexcept {
    if (base == 0) {
      return 0;
    }
    // Exact shift-overflow test: base << attempt fits iff base fits in
    // the remaining 64 - attempt bits.
    std::uint64_t value = attempt >= 64 || base > (~std::uint64_t{0} >> attempt)
                              ? ~std::uint64_t{0}
                              : base << attempt;
    if (cap != 0 && value > cap) {
      value = cap;
    }
    if (jitterPct256 != 0) {
      const std::uint64_t span = value * jitterPct256 / 256 + 1;
      SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (attempt + 1)));
      value += sm.next() % span;
    }
    return value;
  }

  /// Total delay paid by `attempts` consecutive retries (the memory
  /// system's "pay the whole bounded schedule up front" shape).
  [[nodiscard]] std::uint64_t cumulative(std::uint32_t attempts) const noexcept {
    std::uint64_t total = 0;
    for (std::uint32_t k = 0; k < attempts; ++k) {
      const std::uint64_t d = delay(k);
      total = total + d < total ? ~std::uint64_t{0} : total + d;
    }
    return total;
  }
};

}  // namespace occm
