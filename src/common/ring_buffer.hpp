#pragma once

// Fixed-capacity ring buffer used for bounded event history (e.g. the miss
// sampler's recent-window record) without per-push allocation.

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace occm {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : data_(capacity) {
    OCCM_REQUIRE(capacity > 0);
  }

  /// Appends a value, overwriting the oldest entry when full.
  void push(const T& value) {
    data_[head_] = value;
    head_ = (head_ + 1) % data_.size();
    if (size_ < data_.size()) {
      ++size_;
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool full() const noexcept { return size_ == data_.size(); }

  /// Element `i` counting from the oldest retained entry (0 = oldest).
  [[nodiscard]] const T& operator[](std::size_t i) const {
    OCCM_REQUIRE(i < size_);
    const std::size_t start = full() ? head_ : 0;
    return data_[(start + i) % data_.size()];
  }

  /// Most recently pushed element.
  [[nodiscard]] const T& back() const {
    OCCM_REQUIRE(size_ > 0);
    return data_[(head_ + data_.size() - 1) % data_.size()];
  }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> data_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace occm
