#pragma once

// Minimal result type for operations that can fail with a typed,
// diagnosable error (a tiny std::expected subset; the toolchain baseline
// predates P0323 being usable everywhere).
//
// Used by the hardened model-fitting layer: instead of throwing on
// degenerate input (saturated regimes, duplicate core counts, garbage
// cycles), fit functions return Expected<Model, FitError> so sweep
// harnesses can record the diagnosis and keep going.

#include <utility>
#include <variant>

#include "common/error.hpp"

namespace occm {

/// Wraps an error value so Expected's constructors stay unambiguous even
/// when the value and error types coincide.
template <typename E>
struct Unexpected {
  E error;
};

template <typename E>
[[nodiscard]] Unexpected<std::decay_t<E>> makeUnexpected(E&& error) {
  return {std::forward<E>(error)};
}

/// Either a value of type T or an error of type E. Access to the wrong
/// alternative is a contract violation, never undefined behaviour.
template <typename T, typename E>
class Expected {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors std::expected.
  Expected(T value) : state_(std::in_place_index<0>, std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Expected(Unexpected<E> error)
      : state_(std::in_place_index<1>, std::move(error.error)) {}

  [[nodiscard]] bool hasValue() const noexcept { return state_.index() == 0; }
  [[nodiscard]] explicit operator bool() const noexcept { return hasValue(); }

  [[nodiscard]] T& value() {
    OCCM_REQUIRE_MSG(hasValue(), "Expected holds an error, not a value");
    return std::get<0>(state_);
  }
  [[nodiscard]] const T& value() const {
    OCCM_REQUIRE_MSG(hasValue(), "Expected holds an error, not a value");
    return std::get<0>(state_);
  }
  [[nodiscard]] T& operator*() { return value(); }
  [[nodiscard]] const T& operator*() const { return value(); }
  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }

  [[nodiscard]] E& error() {
    OCCM_REQUIRE_MSG(!hasValue(), "Expected holds a value, not an error");
    return std::get<1>(state_);
  }
  [[nodiscard]] const E& error() const {
    OCCM_REQUIRE_MSG(!hasValue(), "Expected holds a value, not an error");
    return std::get<1>(state_);
  }

  [[nodiscard]] T valueOr(T fallback) const {
    return hasValue() ? std::get<0>(state_) : std::move(fallback);
  }

 private:
  std::variant<T, E> state_;
};

}  // namespace occm
