#pragma once

// Fundamental scalar types shared by every occm module.
//
// Simulated time is counted in processor clock cycles of the simulated
// machine (a single global clock domain; see DESIGN.md). Addresses are
// byte addresses in a flat 64-bit simulated physical address space.

#include <cstdint>

/// Forces inlining of a hot-path function the optimizer's unit-growth
/// heuristics would otherwise leave as a call (measured: the per-level
/// cache probes and fills inside CacheHierarchy::access). Use sparingly —
/// only where a profile showed the call boundary itself was the cost.
#if defined(__GNUC__) || defined(__clang__)
#define OCCM_FORCE_INLINE inline __attribute__((always_inline))
#else
#define OCCM_FORCE_INLINE inline
#endif

namespace occm {

/// Simulated time in processor clock cycles.
using Cycles = std::uint64_t;

/// Signed cycle delta (e.g. model residuals).
using CycleDelta = std::int64_t;

/// Byte address in the simulated physical address space.
using Addr = std::uint64_t;

/// Count of bytes.
using Bytes = std::uint64_t;

/// Identifier of a logical core, 0-based, machine-wide.
using CoreId = std::int32_t;

/// Identifier of a software thread of the simulated program.
using ThreadId = std::int32_t;

/// Identifier of a socket (physical processor package).
using SocketId = std::int32_t;

/// Identifier of a memory controller, machine-wide.
using ControllerId = std::int32_t;

/// Identifier of a NUMA node (one per memory controller).
using NodeId = std::int32_t;

inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMiB = 1024 * kKiB;
inline constexpr Bytes kGiB = 1024 * kMiB;

/// Converts a wall-clock duration in nanoseconds to cycles at `ghz`.
[[nodiscard]] constexpr Cycles nsToCycles(double ns, double ghz) noexcept {
  return static_cast<Cycles>(ns * ghz + 0.5);
}

/// Converts cycles at `ghz` to nanoseconds.
[[nodiscard]] constexpr double cyclesToNs(Cycles cycles, double ghz) noexcept {
  return static_cast<double>(cycles) / ghz;
}

}  // namespace occm
