#pragma once

// Deterministic pseudo-random number generation for simulation.
//
// Everything in occm is reproducible from a 64-bit seed: workload address
// streams, memory-controller service jitter and scheduler noise all draw
// from explicitly seeded generators (never from global state). The
// generator is xoshiro256** seeded via SplitMix64, which is fast, passes
// BigCrush, and — unlike std::mt19937 — has a guaranteed stable stream
// across standard-library implementations.

#include <array>
#include <cmath>
#include <cstdint>

#include "common/error.hpp"

namespace occm {

/// SplitMix64: used to expand a single seed into generator state and to
/// derive independent substream seeds (one per thread / controller).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the workhorse generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) {
      s = sm.next();
    }
  }

  /// Derives an independent substream; `stream` distinguishes substreams.
  [[nodiscard]] static Rng substream(std::uint64_t seed, std::uint64_t stream) noexcept {
    SplitMix64 sm(seed ^ (stream * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL));
    return Rng(sm.next());
  }

  std::uint64_t operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection.
  std::uint64_t below(std::uint64_t bound) noexcept {
    OCCM_ASSERT(bound > 0);
    // Unbiased for every bound; the rejection loop runs ~1 iteration.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0ULL - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    OCCM_ASSERT(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) noexcept {
    // -mean * ln(U) with U in (0,1]: use 1-uniform() to exclude zero.
    return -mean * std::log(1.0 - uniform());
  }

  /// Bounded Pareto sample (heavy tail) with shape alpha on [lo, hi].
  double boundedPareto(double alpha, double lo, double hi) noexcept {
    OCCM_ASSERT(alpha > 0 && lo > 0 && hi > lo);
    const double u = uniform();
    const double la = std::pow(lo, alpha);
    const double ha = std::pow(hi, alpha);
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  }

  /// Geometric number of failures before success, success probability p.
  std::uint64_t geometric(double p) noexcept {
    OCCM_ASSERT(p > 0.0 && p <= 1.0);
    if (p >= 1.0) {
      return 0;
    }
    return static_cast<std::uint64_t>(std::log(1.0 - uniform()) /
                                      std::log(1.0 - p));
  }

  /// True with probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace occm
