#include "analysis/distributed_sweep.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "analysis/sweep_task.hpp"
#include "exec/distributed/coordinator.hpp"
#include "fault/fault_plan_io.hpp"
#include "workloads/problem.hpp"

namespace occm::analysis {

namespace {

namespace dist = exec::dist;

std::uint64_t toMs(double seconds) {
  return seconds <= 0.0 ? 0
                        : static_cast<std::uint64_t>(seconds * 1'000.0 + 0.5);
}

// Name -> enum parsing lives in workloads/problem.hpp (parseProgram /
// parseProblemClass), shared with the serve-tier request validation.

RunFailureKind localKind(dist::WireFailureKind kind) {
  switch (kind) {
    case dist::WireFailureKind::kException: return RunFailureKind::kException;
    case dist::WireFailureKind::kTimeout: return RunFailureKind::kTimeout;
    case dist::WireFailureKind::kCancelled: return RunFailureKind::kCancelled;
    case dist::WireFailureKind::kCrash: return RunFailureKind::kCrash;
  }
  return RunFailureKind::kException;
}

dist::WireFailureKind wireKind(RunFailureKind kind) {
  switch (kind) {
    case RunFailureKind::kTimeout: return dist::WireFailureKind::kTimeout;
    case RunFailureKind::kCancelled: return dist::WireFailureKind::kCancelled;
    case RunFailureKind::kCrash: return dist::WireFailureKind::kCrash;
    case RunFailureKind::kException:
    case RunFailureKind::kWorkerLost:
    case RunFailureKind::kHandshake:
    case RunFailureKind::kFrameCorrupt:
      // The last three are coordinator-local and cannot come out of the
      // attempt loop; fold defensively onto the generic kind.
      return dist::WireFailureKind::kException;
  }
  return dist::WireFailureKind::kException;
}

RunFailureKind incidentKind(dist::WorkerIncident::Kind kind) {
  switch (kind) {
    case dist::WorkerIncident::Kind::kWorkerLost:
      return RunFailureKind::kWorkerLost;
    case dist::WorkerIncident::Kind::kHandshake:
      return RunFailureKind::kHandshake;
    case dist::WorkerIncident::Kind::kFrameCorrupt:
      return RunFailureKind::kFrameCorrupt;
  }
  return RunFailureKind::kWorkerLost;
}

/// A worker-side failure the job never even started on (malformed job,
/// rejected fault plan).
dist::TaskResult failedResult(std::uint64_t taskId, std::string error) {
  dist::TaskResult result;
  result.taskId = taskId;
  result.hasFailure = true;
  result.failure.kind = dist::WireFailureKind::kException;
  result.failure.attempts = 1;
  result.failure.error = std::move(error);
  return result;
}

bool unsettledOutcome(const TaskOutcome& outcome) {
  return !outcome.profile.has_value() && !outcome.failure.has_value() &&
         !outcome.skipped;
}

}  // namespace

dist::JobSpec makeJobSpec(const SweepConfig& config,
                          const workloads::WorkloadSpec& spec, int cores,
                          std::uint64_t taskId) {
  dist::JobSpec job;
  job.taskId = taskId;
  job.cores = cores;
  job.maxAttempts = std::max(1, config.maxAttempts);
  job.program = workloads::programName(spec.program);
  job.problemClass = workloads::problemClassName(spec.problemClass);
  job.threads = spec.threads;
  job.workloadSeed = spec.seed;
  job.machine = config.machine;
  job.schedQuantum = config.sim.sched.quantum;
  job.schedSwitchCost = config.sim.sched.contextSwitchCost;
  job.memPlacement = static_cast<std::uint8_t>(config.sim.memory.placement);
  job.memService = static_cast<std::uint8_t>(config.sim.memory.service);
  job.memSeed = config.sim.memory.seed;
  job.enableSampler = config.sim.enableSampler;
  job.samplerWindowNs = config.sim.samplerWindowNs;
  job.syncHorizon = config.sim.syncHorizon;
  job.cycleBudget = config.limits.cycleBudget;
  job.simSeed = config.sim.seed;
  if (!config.sim.faultPlan.empty()) {
    job.faultPlanJson = fault::toJson(config.sim.faultPlan);
  }
  return job;
}

TaskOutcome resultToOutcome(const dist::TaskResult& result, int cores) {
  TaskOutcome outcome;
  if (result.hasProfile) {
    outcome.profile = result.profile;
    outcome.record = makeRunRecord(result.profile, cores);
  }
  if (result.hasFailure) {
    RunFailure failure;
    failure.cores = cores;
    failure.attempts = result.failure.attempts;
    failure.error = result.failure.error;
    failure.recovered = result.failure.recovered;
    failure.kind = localKind(result.failure.kind);
    failure.signal = result.failure.signal;
    failure.rlimit = result.failure.rlimit;
    failure.stderrTail = result.failure.stderrTail;
    outcome.failure = std::move(failure);
  }
  if (!result.hasProfile && !result.hasFailure) {
    RunFailure failure;
    failure.cores = cores;
    failure.attempts = 1;
    failure.kind = RunFailureKind::kFrameCorrupt;
    failure.error = "task result carried neither profile nor failure";
    outcome.failure = std::move(failure);
  }
  return outcome;
}

dist::TaskResult runSweepJob(const dist::JobSpec& job,
                             const IsolationConfig& isolation) {
  const std::optional<workloads::Program> program =
      workloads::parseProgram(job.program);
  const std::optional<workloads::ProblemClass> problemClass =
      workloads::parseProblemClass(job.problemClass);
  if (!program.has_value() || !problemClass.has_value() ||
      !workloads::classValidFor(*program, *problemClass) || job.cores <= 0 ||
      job.threads <= 0) {
    return failedResult(job.taskId, "malformed job: " + job.program + "." +
                                        job.problemClass + ", cores " +
                                        std::to_string(job.cores));
  }
  workloads::WorkloadSpec spec;
  spec.program = *program;
  spec.problemClass = *problemClass;
  spec.threads = job.threads;
  spec.seed = job.workloadSeed;

  sim::SimConfig sim;
  sim.sched.quantum = job.schedQuantum;
  sim.sched.contextSwitchCost = job.schedSwitchCost;
  sim.memory.placement = static_cast<mem::PlacementPolicy>(job.memPlacement);
  sim.memory.service = static_cast<mem::ServiceDiscipline>(job.memService);
  sim.memory.seed = job.memSeed;
  sim.enableSampler = job.enableSampler;
  sim.samplerWindowNs = job.samplerWindowNs;
  sim.syncHorizon = job.syncHorizon;
  sim.seed = job.simSeed;
  if (!job.faultPlanJson.empty()) {
    auto plan = fault::planFromJson(job.faultPlanJson);
    if (!plan) {
      return failedResult(job.taskId,
                          "fault plan rejected: " + plan.error().message());
    }
    sim.faultPlan = std::move(*plan);
  }
  if (sim.faultPlan.hasCrash() && !isolation.enabled) {
    // Running an injected crash in-process would take down the worker —
    // report it instead so the coordinator keeps its evidence.
    return failedResult(job.taskId,
                        "crash-injection fault plan requires an isolated "
                        "worker (run with isolation enabled)");
  }

  RunTaskContext context;
  context.machine = &job.machine;
  context.workload = &spec;
  context.sim = &sim;
  context.cycleBudget = job.cycleBudget;
  context.isolation = isolation;
  context.maxAttempts = std::max(1, job.maxAttempts);
  context.poolSize = 1;
  NullLifecycle lifecycle;
  TaskOutcome outcome = runCoreCountTask(context, job.cores, lifecycle);

  dist::TaskResult result;
  result.taskId = job.taskId;
  if (outcome.profile.has_value()) {
    result.hasProfile = true;
    result.profile = std::move(*outcome.profile);
  }
  if (outcome.failure.has_value()) {
    result.hasFailure = true;
    result.failure.kind = wireKind(outcome.failure->kind);
    result.failure.attempts = outcome.failure->attempts;
    result.failure.recovered = outcome.failure->recovered;
    result.failure.error = outcome.failure->error;
    result.failure.signal = outcome.failure->signal;
    result.failure.rlimit = outcome.failure->rlimit;
    result.failure.stderrTail = outcome.failure->stderrTail;
  }
  if (!result.hasProfile && !result.hasFailure) {
    // The attempt loop only yields an empty outcome when a sweep-level
    // stop fired, which a worker never arms; keep the invariant anyway.
    return failedResult(job.taskId, "task produced no outcome");
  }
  return result;
}

DistributedPhaseOutcome runDistributedPhase(
    const SweepConfig& config, const workloads::WorkloadSpec& spec,
    const std::vector<int>& coreCounts, std::vector<TaskOutcome>& outcomes,
    const std::function<void(std::size_t index)>& commit) {
  DistributedPhaseOutcome phase;
  phase.stats.used = true;

  // Jobs only for tasks nothing has settled yet. The wire taskId is the
  // jobs-vector index (the coordinator leases by it); globalIndex maps it
  // back to the request-order slot, which the lease table's lowest-first
  // dispatch then mirrors.
  std::vector<dist::JobSpec> jobs;
  std::vector<std::size_t> globalIndex;
  for (std::size_t i = 0; i < coreCounts.size(); ++i) {
    if (!unsettledOutcome(outcomes[i])) {
      continue;
    }
    jobs.push_back(makeJobSpec(config, spec, coreCounts[i], jobs.size()));
    globalIndex.push_back(i);
  }
  if (jobs.empty()) {
    return phase;
  }

  const DistributedConfig& dc = config.distributed;
  dist::CoordinatorConfig cc;
  cc.host = dc.host;
  cc.port = dc.port;
  cc.graceWindowMs = toMs(dc.graceWindowSeconds);
  cc.lease.leaseTimeoutMs = toMs(dc.leaseSeconds);
  cc.lease.heartbeatTimeoutMs = toMs(dc.heartbeatTimeoutSeconds);
  cc.lease.speculativeAfterMs = toMs(dc.speculativeAfterSeconds);
  cc.lease.maxExpiries =
      dc.maxLeaseExpiries < 0 ? 0
                              : static_cast<std::uint32_t>(dc.maxLeaseExpiries);
  // Redispatch pacing follows the lease timeout: a backoff cap longer
  // than the lease itself just stretches recovery (a tightly-timed fleet
  // would abandon tasks at the default 5 s cap, not its own cadence).
  cc.lease.redispatchBackoff.cap =
      std::min<std::uint64_t>(cc.lease.redispatchBackoff.cap,
                              std::max<std::uint64_t>(
                                  cc.lease.leaseTimeoutMs, 1));
  cc.lease.redispatchBackoff.base = std::min<std::uint64_t>(
      cc.lease.redispatchBackoff.base,
      std::max<std::uint64_t>(cc.lease.redispatchBackoff.cap / 4, 1));
  cc.heartbeatIntervalMs = toMs(dc.heartbeatSeconds);
  cc.cancel = config.cancel;
  cc.onListening = dc.onListening;
  if (dc.chaos.enabled()) {
    cc.transportFactory = exec::chaos::chaosTransportFactory(dc.chaos);
  }
  cc.onResult = [&](const dist::TaskResult& result) {
    // First-wins already enforced by the lease table; this fires once per
    // settled task, in arrival order, on the coordinator thread.
    if (result.taskId >= globalIndex.size()) {
      return;
    }
    const std::size_t index = globalIndex[result.taskId];
    outcomes[index] = resultToOutcome(result, coreCounts[index]);
    ++phase.stats.fleetCompleted;
    commit(index);
  };
  dist::CoordinatorReport report = dist::runCoordinator(cc, jobs);

  phase.cancelled = report.cancelled;
  phase.stats.workersSeen = report.workersSeen;
  phase.stats.degradedToLocal = report.degradedToLocal;
  phase.stats.leases = report.stats;
  phase.stats.heartbeatRttMs = std::move(report.rttMs);
  phase.stats.error = std::move(report.error);
  phase.stats.leaseSpans = std::move(report.spans);
  for (dist::LeaseSpan& span : phase.stats.leaseSpans) {
    // Re-key spans to the request-order slot for the lifecycle export.
    if (span.taskId < globalIndex.size()) {
      span.taskId = globalIndex[span.taskId];
    }
  }
  for (const dist::WorkerIncident& incident : report.incidents) {
    RunFailure failure;
    failure.kind = incidentKind(incident.kind);
    failure.error = incident.detail;
    failure.worker = incident.worker;
    failure.attempts = 1;
    if (incident.taskId.has_value() && *incident.taskId < globalIndex.size()) {
      const std::size_t index = globalIndex[*incident.taskId];
      failure.cores = coreCounts[index];
      // Fleet evidence is "recovered" once another dispatch (or the local
      // fallback, which runs after this) settled the task with a profile;
      // the merge loop re-checks, but arrival order is decided here.
      failure.recovered = outcomes[index].profile.has_value();
    }
    phase.incidents.push_back(std::move(failure));
  }
  return phase;
}

dist::WorkerReport runSweepWorker(const SweepWorkerOptions& options) {
  dist::WorkerOptions wo;
  wo.host = options.host;
  wo.port = options.port;
  wo.workerId = options.workerId;
  wo.maxConnectAttempts = options.maxConnectAttempts;
  wo.connectTimeoutMs = options.connectTimeoutMs;
  wo.reconnectBackoff = options.reconnectBackoff;
  wo.idleTimeoutMs = options.idleTimeoutMs;
  if (options.chaos.enabled()) {
    wo.transportFactory = exec::chaos::chaosTransportFactory(options.chaos);
  }
  wo.cancel = options.cancel;
  wo.straggleMs = options.straggleMs;
  wo.maxTasks = options.maxTasks;
  const IsolationConfig isolation = options.isolation;
  return dist::runWorker(wo, [isolation](const dist::JobSpec& job) {
    return runSweepJob(job, isolation);
  });
}

}  // namespace occm::analysis
