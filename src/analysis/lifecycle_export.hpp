#pragma once

// Observability export of a sweep's *lifecycle*: which runs failed, timed
// out or were cancelled, rendered as a Chrome trace_event JSON (one
// instant per failure on a per-core-count track, plus counters of each
// RunFailureKind) so an aborted sweep is inspectable in the same Perfetto
// timeline as the per-run traces the simulator emits.

#include <string>

#include "analysis/experiment.hpp"
#include "obs/run_trace.hpp"

namespace occm::analysis {

/// Builds a RunTrace describing the sweep's failures: an instant event
/// per RunFailure (category "lifecycle", track = core count, timestamped
/// by request order) and one gauge per failure kind counting occurrences.
/// Deterministic: identical SweepResults produce identical traces.
[[nodiscard]] obs::RunTracePtr lifecycleTrace(const SweepResult& sweep);

/// lifecycleTrace rendered with obs::toChromeTraceJson.
[[nodiscard]] std::string lifecycleToChromeTraceJson(const SweepResult& sweep);

}  // namespace occm::analysis
