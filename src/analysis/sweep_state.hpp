#pragma once

// Failure isolation and resumability for sweep harnesses. A sweep over
// many core counts is the unit of work the whole methodology hangs on;
// one crashed or degenerate run must not throw away the survivors. This
// header holds the structured failure record runSweep emits and the
// JSON checkpoint that lets an interrupted sweep resume without
// re-simulating completed core counts.
//
// Checkpoint format v2 (this PR): a "version" header plus a CRC-32 per
// record, computed over a canonical field encoding, so bytes damaged at
// rest (bit rot, mid-write kill of a non-atomic copy, hand editing) are
// detected instead of silently skewing a resumed sweep. Loading is
// tolerant: truncated/garbage/version-skewed/CRC-failed files produce a
// typed CheckpointError naming the byte offset, and loadOrQuarantine
// renames the bad file to <path>.corrupt so a fresh start never fights
// the same bytes twice. Version-1 files (no header, no CRCs) still load.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/expected.hpp"

namespace occm::analysis {

/// How a sweep run came to fail. The first four are outcomes of the run
/// itself (and the only kinds a distributed worker can put on the wire);
/// the last three are coordinator-local evidence about the *fleet* —
/// recorded for diagnosis, always considered recovered once another
/// dispatch of the same task settles it.
enum class RunFailureKind : std::uint8_t {
  kException,     ///< the run (or a beforeRun hook) threw
  kTimeout,       ///< per-run deadline or cycle budget fired
  kCancelled,     ///< whole-sweep cancellation observed mid-run
  kCrash,         ///< isolated child died hard: signal, rlimit, bad frame
  kWorkerLost,    ///< distributed: lease lost (death, eviction, expiry)
  kHandshake,     ///< distributed: worker failed the versioned handshake
  kFrameCorrupt,  ///< distributed: stream failed frame/message validation
};

[[nodiscard]] constexpr const char* toString(RunFailureKind kind) noexcept {
  switch (kind) {
    case RunFailureKind::kException: return "exception";
    case RunFailureKind::kTimeout: return "timeout";
    case RunFailureKind::kCancelled: return "cancelled";
    case RunFailureKind::kCrash: return "crash";
    case RunFailureKind::kWorkerLost: return "worker-lost";
    case RunFailureKind::kHandshake: return "handshake";
    case RunFailureKind::kFrameCorrupt: return "frame-corrupt";
  }
  return "unknown";
}

/// One core count that misbehaved during a sweep: either it eventually
/// recovered on a seed-perturbed retry, or it exhausted its attempts and
/// is absent from the results.
struct RunFailure {
  int cores = 0;
  int attempts = 0;        ///< total attempts made (1 = failed first try)
  std::string error;       ///< what() of the last exception
  bool recovered = false;  ///< a retry eventually produced a profile
  /// Resolved sweep pool size when the failure was recorded (1 = serial);
  /// lets a partially-merged parallel sweep be diagnosed from its records.
  int poolSize = 1;
  /// Timeouts and cancellations are lifecycle outcomes, not retried, and
  /// never persisted to the checkpoint (a resume should re-attempt them).
  /// Crashes behave like exceptions: retried, and persisted so a resumed
  /// sweep keeps the evidence.
  RunFailureKind kind = RunFailureKind::kException;
  /// kCrash only: signal that terminated the isolated child (0 = the
  /// child exited with a nonzero status instead).
  int signal = 0;
  /// kCrash only: resource limit that explains the death —
  /// "address-space" (RLIMIT_AS) or "cpu" (RLIMIT_CPU) — or empty.
  std::string rlimit;
  /// kCrash only: bounded, printable-ASCII tail of the child's stderr.
  std::string stderrTail;
  /// Distributed kinds only: id of the worker the incident names (or
  /// "peer fd N" for a pre-handshake connection); empty otherwise.
  std::string worker;
};

/// Lightweight record of one completed run — exactly what the model fit
/// needs (cores, cycle totals), so resuming a sweep does not require the
/// full profile to have been persisted.
struct RunRecord {
  int cores = 0;
  double totalCycles = 0.0;
  double stallCycles = 0.0;
  double makespan = 0.0;
  // Everything a restored run needs to reproduce its CSV row and fault
  // counters byte-for-byte. Absent in v1 checkpoints (restored as 0).
  double llcMisses = 0.0;
  double coherenceMisses = 0.0;
  double writebacks = 0.0;
  double reroutedRequests = 0.0;
  double faultRetries = 0.0;
  double backgroundRequests = 0.0;
  double throttledCycles = 0.0;
};

/// Why a checkpoint failed to load.
enum class CheckpointErrorKind : std::uint8_t {
  kMissing,      ///< no file at the path — a fresh start, not corruption
  kIoError,      ///< the file exists but could not be read
  kTruncated,    ///< the bytes end mid-structure
  kSyntax,       ///< the bytes deviate from the format
  kVersionSkew,  ///< a format version this build does not understand
  kCrcMismatch,  ///< a record's CRC-32 does not match its fields
};

[[nodiscard]] constexpr const char* toString(CheckpointErrorKind kind) noexcept {
  switch (kind) {
    case CheckpointErrorKind::kMissing: return "missing";
    case CheckpointErrorKind::kIoError: return "io-error";
    case CheckpointErrorKind::kTruncated: return "truncated";
    case CheckpointErrorKind::kSyntax: return "syntax";
    case CheckpointErrorKind::kVersionSkew: return "version-skew";
    case CheckpointErrorKind::kCrcMismatch: return "crc-mismatch";
  }
  return "unknown";
}

/// Typed diagnosis of a checkpoint that could not be trusted.
struct CheckpointError {
  CheckpointErrorKind kind = CheckpointErrorKind::kSyntax;
  /// Byte offset of the first deviation (parse-shaped kinds only).
  std::size_t byteOffset = 0;
  std::string detail;
  /// Where loadOrQuarantine moved the bad file (empty if not quarantined).
  std::string quarantinedTo;

  /// "corrupt checkpoint (truncated) at byte 117: unexpected end ..."
  [[nodiscard]] std::string message() const;
};

/// On-disk sweep state: an identity header (so a checkpoint from a
/// different program/machine/seed is never silently reused) plus the
/// completed runs and recorded failures.
struct SweepCheckpoint {
  /// Newest format this build reads and the one it always writes.
  static constexpr int kFormatVersion = 2;

  std::string program;
  std::string machine;
  std::uint64_t seed = 0;
  int threads = 0;
  std::vector<RunRecord> runs;
  std::vector<RunFailure> failures;

  [[nodiscard]] bool matches(const std::string& programName,
                             const std::string& machineName,
                             std::uint64_t seedValue, int threadCount) const;
  /// Completed record for a core count, or nullptr.
  [[nodiscard]] const RunRecord* find(int cores) const;

  [[nodiscard]] std::string toJson() const;

  /// Parses what toJson produced (format v2, or legacy v1 without the
  /// version header and CRCs). Returns a typed error naming the byte
  /// offset of the first deviation; never throws, never UB on bad bytes.
  [[nodiscard]] static Expected<SweepCheckpoint, CheckpointError> parseChecked(
      const std::string& json);
  /// Convenience wrapper over parseChecked; nullopt on any error.
  [[nodiscard]] static std::optional<SweepCheckpoint> parse(
      const std::string& json);

  /// Atomic, durable write: temp file in the same directory, fsync,
  /// rename, then fsync of the containing directory — so a machine crash
  /// immediately after save() cannot roll the file back to the previous
  /// (or no) checkpoint. Returns false on I/O failure (checkpointing is
  /// best-effort; a sweep never aborts because its checkpoint could not
  /// be written).
  bool save(const std::string& path) const;

  /// Reads and parses `path` with a typed diagnosis: kMissing when the
  /// file is absent, kIoError when unreadable, parse kinds otherwise.
  [[nodiscard]] static Expected<SweepCheckpoint, CheckpointError> loadChecked(
      const std::string& path);
  /// loadChecked, plus quarantine: a file that exists but cannot be
  /// trusted (truncated/garbage/version-skew/CRC mismatch) is renamed to
  /// `path + ".corrupt"` (error.quarantinedTo names the destination) so
  /// the caller can fall back to a fresh start without re-tripping on —
  /// or silently overwriting — the evidence.
  [[nodiscard]] static Expected<SweepCheckpoint, CheckpointError>
  loadOrQuarantine(const std::string& path);
  /// nullopt when the file is absent or unparsable.
  [[nodiscard]] static std::optional<SweepCheckpoint> load(
      const std::string& path);
};

}  // namespace occm::analysis
