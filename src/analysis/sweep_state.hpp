#pragma once

// Failure isolation and resumability for sweep harnesses. A sweep over
// many core counts is the unit of work the whole methodology hangs on;
// one crashed or degenerate run must not throw away the survivors. This
// header holds the structured failure record runSweep emits and the
// JSON checkpoint that lets an interrupted sweep resume without
// re-simulating completed core counts.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace occm::analysis {

/// One core count that misbehaved during a sweep: either it eventually
/// recovered on a seed-perturbed retry, or it exhausted its attempts and
/// is absent from the results.
struct RunFailure {
  int cores = 0;
  int attempts = 0;        ///< total attempts made (1 = failed first try)
  std::string error;       ///< what() of the last exception
  bool recovered = false;  ///< a retry eventually produced a profile
  /// Resolved sweep pool size when the failure was recorded (1 = serial);
  /// lets a partially-merged parallel sweep be diagnosed from its records.
  int poolSize = 1;
};

/// Lightweight record of one completed run — exactly what the model fit
/// needs (cores, cycle totals), so resuming a sweep does not require the
/// full profile to have been persisted.
struct RunRecord {
  int cores = 0;
  double totalCycles = 0.0;
  double stallCycles = 0.0;
  double makespan = 0.0;
};

/// On-disk sweep state: an identity header (so a checkpoint from a
/// different program/machine/seed is never silently reused) plus the
/// completed runs and recorded failures.
struct SweepCheckpoint {
  std::string program;
  std::string machine;
  std::uint64_t seed = 0;
  int threads = 0;
  std::vector<RunRecord> runs;
  std::vector<RunFailure> failures;

  [[nodiscard]] bool matches(const std::string& programName,
                             const std::string& machineName,
                             std::uint64_t seedValue, int threadCount) const;
  /// Completed record for a core count, or nullptr.
  [[nodiscard]] const RunRecord* find(int cores) const;

  [[nodiscard]] std::string toJson() const;
  /// Parses what toJson produced; nullopt on malformed input.
  [[nodiscard]] static std::optional<SweepCheckpoint> parse(
      const std::string& json);

  /// Atomic write: temp file in the same directory, then rename.
  /// Returns false on I/O failure (checkpointing is best-effort; a sweep
  /// never aborts because its checkpoint could not be written).
  bool save(const std::string& path) const;
  /// nullopt when the file is absent or unparsable.
  [[nodiscard]] static std::optional<SweepCheckpoint> load(
      const std::string& path);
};

}  // namespace occm::analysis
