#pragma once

// Analysis-side glue of the distributed sweep: maps the sweep's
// configuration onto the generic exec/distributed fleet (which knows
// nothing above the exec layer) and back.
//
// Coordinator side: runDistributedPhase builds one self-contained JobSpec
// per unfinished core count, runs the coordinator over them, and converts
// arriving TaskResults into the same TaskOutcome slots the local pool
// fills — committed through the caller's checkpoint writer as they land,
// so a coordinator crash resumes from the checkpoint.
//
// Worker side: runSweepWorker connects to a coordinator and executes
// assigned jobs through analysis/sweep_task's runCoreCountTask — the
// exact code the local pool runs — which is what makes a fleet's merged
// output bit-identical to a serial in-process sweep.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "common/cancellation.hpp"
#include "exec/distributed/protocol.hpp"
#include "exec/distributed/worker.hpp"

namespace occm::analysis {

/// Builds the self-contained wire job for one core count. `taskId` is the
/// routing key the coordinator leases by — the caller owns its meaning.
[[nodiscard]] exec::dist::JobSpec makeJobSpec(
    const SweepConfig& config, const workloads::WorkloadSpec& spec, int cores,
    std::uint64_t taskId);

/// Converts a fleet result back into the sweep's per-task outcome. A
/// result carrying neither profile nor failure (wire noise) becomes a
/// kFrameCorrupt failure so a settled task always leaves evidence.
[[nodiscard]] TaskOutcome resultToOutcome(const exec::dist::TaskResult& result,
                                          int cores);

/// Runs one received job through the shared attempt loop (bit-identical
/// to the same task run locally). Never throws; malformed jobs — unknown
/// program, invalid enums, a crash-injection plan without isolation —
/// come back as exception-kind failures.
[[nodiscard]] exec::dist::TaskResult runSweepJob(
    const exec::dist::JobSpec& job, const IsolationConfig& isolation);

/// What the coordinator phase left behind for runSweep to merge.
struct DistributedPhaseOutcome {
  DistributedStats stats;
  /// Fleet evidence (worker-lost / handshake / frame-corrupt), in arrival
  /// order; appended to SweepResult::failures after the per-task merge.
  std::vector<RunFailure> incidents;
  bool cancelled = false;
};

/// Shards the unsettled entries of `outcomes` (no profile, no failure,
/// not skipped) across the fleet described by config.distributed. Settled
/// results are written into `outcomes` and committed via `commit(index)`
/// in arrival order; unsettled entries are the caller's to run locally.
[[nodiscard]] DistributedPhaseOutcome runDistributedPhase(
    const SweepConfig& config, const workloads::WorkloadSpec& spec,
    const std::vector<int>& coreCounts, std::vector<TaskOutcome>& outcomes,
    const std::function<void(std::size_t index)>& commit);

/// One worker process's configuration (the `--connect` side).
struct SweepWorkerOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// Fleet-unique name; the coordinator keys leases and eviction by it.
  std::string workerId = "worker";
  /// Per-attempt process isolation, configured worker-locally (profiles
  /// are bit-identical with or without it; jobs never carry it).
  IsolationConfig isolation;
  std::uint32_t maxConnectAttempts = 10;
  /// TCP connect + handshake-reply deadline per attempt.
  int connectTimeoutMs = 5'000;
  /// Reconnect schedule after a lost connection (see WorkerOptions).
  BackoffPolicy reconnectBackoff{.base = 200, .cap = 5'000,
                                 .jitterPct256 = 64, .seed = 0};
  /// Asymmetric-partition guard passthrough (see WorkerOptions). 0 = off.
  std::uint64_t idleTimeoutMs = 0;
  /// Seeded network-fault schedule for this worker's connections (chaos
  /// drills; see exec/chaos). Empty plan = plain transports.
  exec::chaos::ChaosConfig chaos;
  CancellationToken cancel;
  /// Test hooks (see exec::dist::WorkerOptions).
  std::uint64_t straggleMs = 0;
  std::uint64_t maxTasks = 0;
};

/// Blocking worker loop: connect, handshake, run assigned jobs, report
/// results; returns when shut down, cancelled, or disconnected for good.
[[nodiscard]] exec::dist::WorkerReport runSweepWorker(
    const SweepWorkerOptions& options);

}  // namespace occm::analysis
