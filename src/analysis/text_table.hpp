#pragma once

// Minimal fixed-width text-table formatter for the bench harnesses'
// paper-style tables.

#include <string>
#include <vector>

namespace occm::analysis {

class TextTable {
 public:
  /// Sets the header row (also fixes the column count).
  void header(std::vector<std::string> cells);

  /// Appends a data row; must match the header width.
  void row(std::vector<std::string> cells);

  /// Renders with aligned columns and a rule under the header.
  [[nodiscard]] std::string str() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("%.2f" etc. without iostreams).
[[nodiscard]] std::string fmt(double value, int precision = 2);

}  // namespace occm::analysis
