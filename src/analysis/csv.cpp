#include "analysis/csv.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/error.hpp"

namespace occm::analysis {

namespace {
std::string escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') {
      out += '"';
    }
    out += c;
  }
  out += '"';
  return out;
}

std::string num(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}
}  // namespace

std::string csvRow(const std::vector<std::string>& cells) {
  std::string out;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += escape(cells[i]);
  }
  out += '\n';
  return out;
}

std::string sweepToCsv(const SweepResult& sweep) {
  OCCM_REQUIRE_MSG(!sweep.profiles.empty(), "empty sweep");
  std::string out = csvRow({"cores", "total_cycles", "stall_cycles",
                            "work_cycles", "llc_misses", "coherence_misses",
                            "writebacks", "makespan", "omega"});
  // Omega is normalized to C(1) when the sweep includes a 1-core run,
  // otherwise to the first profile (relative contention).
  double c1 = sweep.profiles.front().totalCyclesD();
  for (const perf::RunProfile& p : sweep.profiles) {
    if (p.activeCores == 1) {
      c1 = p.totalCyclesD();
      break;
    }
  }
  for (const perf::RunProfile& p : sweep.profiles) {
    out += csvRow({std::to_string(p.activeCores),
                   num(static_cast<double>(p.counters.totalCycles)),
                   num(static_cast<double>(p.counters.stallCycles)),
                   num(static_cast<double>(p.counters.workCycles())),
                   num(static_cast<double>(p.counters.llcMisses)),
                   num(static_cast<double>(p.coherenceMisses)),
                   num(static_cast<double>(p.writebacks)),
                   num(static_cast<double>(p.makespan)),
                   num(model::degreeOfContention(p.totalCyclesD(), c1))});
  }
  return out;
}

std::string validationToCsv(const model::ValidationReport& report) {
  std::string out = csvRow({"cores", "measured_cycles", "predicted_cycles",
                            "measured_omega", "predicted_omega",
                            "relative_error"});
  for (const model::ValidationRow& row : report.rows) {
    out += csvRow({std::to_string(row.cores), num(row.measuredCycles),
                   num(row.predictedCycles), num(row.measuredOmega),
                   num(row.predictedOmega), num(row.relativeError)});
  }
  return out;
}

std::string ccdfToCsv(const model::BurstinessReport& report) {
  std::string out = csvRow({"burst_size_x", "prob_greater_x"});
  for (const stats::CcdfPoint& point : report.ccdf) {
    out += csvRow({num(point.x), num(point.probability)});
  }
  return out;
}

std::string metricsToCsv(const obs::MetricRegistry& metrics,
                         double clockGhz) {
  OCCM_REQUIRE_MSG(clockGhz > 0.0, "clock must be positive");
  std::string out = csvRow(
      {"window_start_cycles", "window_start_ns", "metric", "unit", "value"});
  const Cycles window = metrics.windowCycles();
  for (const obs::Metric& metric : metrics.metrics()) {
    const std::vector<double> values = metric.series.values();
    for (std::size_t i = 0; i < values.size(); ++i) {
      const Cycles start = static_cast<Cycles>(i) * window;
      out += csvRow({std::to_string(start),
                     num(cyclesToNs(start, clockGhz)), metric.name,
                     metric.unit, num(values[i])});
    }
  }
  return out;
}

std::string failuresToCsv(const SweepResult& sweep) {
  std::string out =
      csvRow({"cores", "attempts", "recovered", "pool_size", "kind", "signal",
              "rlimit", "has_stderr_tail", "worker", "error"});
  for (const RunFailure& f : sweep.failures) {
    // Crash columns are zero/empty/false for every other kind, and the
    // worker column is empty outside the distributed kinds, so existing
    // consumers that key on (kind, error) see the same values one
    // column-lookup away.
    out += csvRow({std::to_string(f.cores), std::to_string(f.attempts),
                   f.recovered ? "true" : "false", std::to_string(f.poolSize),
                   toString(f.kind), std::to_string(f.signal), f.rlimit,
                   f.stderrTail.empty() ? "false" : "true", f.worker,
                   f.error});
  }
  return out;
}

std::string poolStatsToCsv(const exec::ThreadPoolStats& stats) {
  std::string out = csvRow({"scope", "metric", "value"});
  if (stats.workers.empty()) {
    return out;  // serial sweep (or obs compiled out): nothing to report
  }
  out += csvRow({"pool", "workers", std::to_string(stats.workers.size())});
  out += csvRow({"pool", "submitted", std::to_string(stats.submitted)});
  out += csvRow(
      {"pool", "submit_block_ns", std::to_string(stats.submitBlockNs)});
  out += csvRow(
      {"pool", "max_queue_depth", std::to_string(stats.maxQueueDepth)});
  for (std::size_t i = 0; i < stats.workers.size(); ++i) {
    const exec::WorkerStats& w = stats.workers[i];
    const std::string scope = "worker" + std::to_string(i);
    out += csvRow({scope, "tasks", std::to_string(w.tasks)});
    out += csvRow({scope, "busy_ns", std::to_string(w.busyNs)});
    out += csvRow({scope, "queue_wait_ns", std::to_string(w.queueWaitNs)});
  }
  return out;
}

namespace {

/// Splits one CSV line on bare commas. sweepToCsv never quotes (every
/// cell is numeric), so a quote here is a deviation the caller rejects.
std::vector<std::string> splitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  for (char c : line) {
    if (c == ',') {
      cells.push_back(cell);
      cell.clear();
    } else {
      cell += c;
    }
  }
  cells.push_back(cell);
  return cells;
}

bool parseCsvDouble(const std::string& cell, double* out) {
  if (cell.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(cell.c_str(), &end);
  if (end != cell.c_str() + cell.size() || errno == ERANGE ||
      !std::isfinite(value)) {
    return false;
  }
  *out = value;
  return true;
}

Unexpected<CsvError> csvFail(std::size_t line, std::string detail) {
  CsvError err;
  err.line = line;
  err.detail = std::move(detail);
  return makeUnexpected(std::move(err));
}

}  // namespace

std::string CsvError::message() const {
  std::string out = "corrupt sweep csv at line ";
  out += std::to_string(line);
  if (!detail.empty()) {
    out += ": ";
    out += detail;
  }
  return out;
}

Expected<std::vector<SweepCsvRow>, CsvError> parseSweepCsv(
    const std::string& text) {
  static const std::string kHeader =
      "cores,total_cycles,stall_cycles,work_cycles,llc_misses,"
      "coherence_misses,writebacks,makespan,omega";
  std::vector<SweepCsvRow> rows;
  std::size_t lineNo = 0;
  std::size_t pos = 0;
  bool sawHeader = false;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string line = text.substr(
        pos, eol == std::string::npos ? std::string::npos : eol - pos);
    pos = eol == std::string::npos ? text.size() + 1 : eol + 1;
    ++lineNo;
    if (line.empty()) {
      if (pos <= text.size()) {
        // Interior blank line: the emitter never produces one.
        return csvFail(lineNo, "blank line inside the table");
      }
      continue;  // trailing newline at end of file
    }
    if (!sawHeader) {
      if (line != kHeader) {
        return csvFail(lineNo, "header mismatch (expected \"" + kHeader +
                                   "\", got \"" + line + "\")");
      }
      sawHeader = true;
      continue;
    }
    const std::vector<std::string> cells = splitCsvLine(line);
    if (cells.size() != 9) {
      return csvFail(lineNo, "expected 9 fields, got " +
                                 std::to_string(cells.size()));
    }
    SweepCsvRow row;
    double cores = 0.0;
    if (!parseCsvDouble(cells[0], &cores) || cores < 1.0 ||
        cores != std::floor(cores) || cores > 1.0e6) {
      return csvFail(lineNo, "cores is not a positive integer: \"" +
                                 cells[0] + "\"");
    }
    row.cores = static_cast<int>(cores);
    double* const fields[] = {&row.totalCycles, &row.stallCycles,
                              &row.workCycles, &row.llcMisses,
                              &row.coherenceMisses, &row.writebacks,
                              &row.makespan, &row.omega};
    static const char* const names[] = {"total_cycles", "stall_cycles",
                                        "work_cycles", "llc_misses",
                                        "coherence_misses", "writebacks",
                                        "makespan", "omega"};
    for (std::size_t i = 0; i < 8; ++i) {
      if (!parseCsvDouble(cells[i + 1], fields[i]) || *fields[i] < 0.0) {
        return csvFail(lineNo, std::string(names[i]) +
                                   " is not a finite non-negative number: \"" +
                                   cells[i + 1] + "\"");
      }
    }
    rows.push_back(row);
  }
  if (!sawHeader) {
    return csvFail(1, "missing header row");
  }
  return rows;
}

void writeFile(const std::string& path, const std::string& contents) {
  std::ofstream file(path, std::ios::trunc);
  OCCM_REQUIRE_MSG(file.good(), "cannot open file for writing: " + path);
  file << contents;
  OCCM_REQUIRE_MSG(file.good(), "write failed: " + path);
}

}  // namespace occm::analysis
