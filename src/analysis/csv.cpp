#include "analysis/csv.hpp"

#include <cstdio>
#include <fstream>

#include "common/error.hpp"

namespace occm::analysis {

namespace {
std::string escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') {
      out += '"';
    }
    out += c;
  }
  out += '"';
  return out;
}

std::string num(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}
}  // namespace

std::string csvRow(const std::vector<std::string>& cells) {
  std::string out;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += escape(cells[i]);
  }
  out += '\n';
  return out;
}

std::string sweepToCsv(const SweepResult& sweep) {
  OCCM_REQUIRE_MSG(!sweep.profiles.empty(), "empty sweep");
  std::string out = csvRow({"cores", "total_cycles", "stall_cycles",
                            "work_cycles", "llc_misses", "coherence_misses",
                            "writebacks", "makespan", "omega"});
  // Omega is normalized to C(1) when the sweep includes a 1-core run,
  // otherwise to the first profile (relative contention).
  double c1 = sweep.profiles.front().totalCyclesD();
  for (const perf::RunProfile& p : sweep.profiles) {
    if (p.activeCores == 1) {
      c1 = p.totalCyclesD();
      break;
    }
  }
  for (const perf::RunProfile& p : sweep.profiles) {
    out += csvRow({std::to_string(p.activeCores),
                   num(static_cast<double>(p.counters.totalCycles)),
                   num(static_cast<double>(p.counters.stallCycles)),
                   num(static_cast<double>(p.counters.workCycles())),
                   num(static_cast<double>(p.counters.llcMisses)),
                   num(static_cast<double>(p.coherenceMisses)),
                   num(static_cast<double>(p.writebacks)),
                   num(static_cast<double>(p.makespan)),
                   num(model::degreeOfContention(p.totalCyclesD(), c1))});
  }
  return out;
}

std::string validationToCsv(const model::ValidationReport& report) {
  std::string out = csvRow({"cores", "measured_cycles", "predicted_cycles",
                            "measured_omega", "predicted_omega",
                            "relative_error"});
  for (const model::ValidationRow& row : report.rows) {
    out += csvRow({std::to_string(row.cores), num(row.measuredCycles),
                   num(row.predictedCycles), num(row.measuredOmega),
                   num(row.predictedOmega), num(row.relativeError)});
  }
  return out;
}

std::string ccdfToCsv(const model::BurstinessReport& report) {
  std::string out = csvRow({"burst_size_x", "prob_greater_x"});
  for (const stats::CcdfPoint& point : report.ccdf) {
    out += csvRow({num(point.x), num(point.probability)});
  }
  return out;
}

std::string metricsToCsv(const obs::MetricRegistry& metrics,
                         double clockGhz) {
  OCCM_REQUIRE_MSG(clockGhz > 0.0, "clock must be positive");
  std::string out = csvRow(
      {"window_start_cycles", "window_start_ns", "metric", "unit", "value"});
  const Cycles window = metrics.windowCycles();
  for (const obs::Metric& metric : metrics.metrics()) {
    const std::vector<double> values = metric.series.values();
    for (std::size_t i = 0; i < values.size(); ++i) {
      const Cycles start = static_cast<Cycles>(i) * window;
      out += csvRow({std::to_string(start),
                     num(cyclesToNs(start, clockGhz)), metric.name,
                     metric.unit, num(values[i])});
    }
  }
  return out;
}

void writeFile(const std::string& path, const std::string& contents) {
  std::ofstream file(path, std::ios::trunc);
  OCCM_REQUIRE_MSG(file.good(), "cannot open file for writing: " + path);
  file << contents;
  OCCM_REQUIRE_MSG(file.good(), "write failed: " + path);
}

}  // namespace occm::analysis
