#include "analysis/text_table.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"

namespace occm::analysis {

void TextTable::header(std::vector<std::string> cells) {
  OCCM_REQUIRE_MSG(!cells.empty(), "header must have columns");
  header_ = std::move(cells);
}

void TextTable::row(std::vector<std::string> cells) {
  OCCM_REQUIRE_MSG(cells.size() == header_.size(),
                   "row width must match the header");
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto renderRow = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += cells[c];
      line.append(widths[c] - cells[c].size(), ' ');
      if (c + 1 < cells.size()) {
        line += "  ";
      }
    }
    line += '\n';
    return line;
  };
  std::string out = renderRow(header_);
  std::size_t ruleLen = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    ruleLen += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(ruleLen, '-');
  out += '\n';
  for (const auto& row : rows_) {
    out += renderRow(row);
  }
  return out;
}

std::string fmt(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

}  // namespace occm::analysis
