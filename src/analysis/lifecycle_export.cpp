#include "analysis/lifecycle_export.hpp"

#include "obs/chrome_trace.hpp"

namespace occm::analysis {

obs::RunTracePtr lifecycleTrace(const SweepResult& sweep) {
  // One metric window and a clock of 1 GHz: lifecycle "time" is request
  // order, not simulated cycles, so the units only need to be stable.
  const Cycles end =
      static_cast<Cycles>(sweep.failures.size() == 0 ? 1
                                                     : sweep.failures.size());
  auto trace = std::make_shared<obs::RunTrace>(
      end, sweep.failures.size() + 16, obs::OverflowPolicy::kDropOldest, 1.0);
  double exceptions = 0.0;
  double timeouts = 0.0;
  double cancelled = 0.0;
  double crashes = 0.0;
  for (std::size_t i = 0; i < sweep.failures.size(); ++i) {
    const RunFailure& f = sweep.failures[i];
    trace->events.setTrackName(f.cores, "n = " + std::to_string(f.cores));
    std::string label = std::string(toString(f.kind)) +
                        (f.recovered ? " (recovered)" : "");
    if (f.kind == RunFailureKind::kCrash) {
      // Crash records carry their forensics inline: signal, the limit
      // that explains the death, and whether a stderr tail was captured.
      label += " [signal " + std::to_string(f.signal);
      if (!f.rlimit.empty()) {
        label += ", rlimit " + f.rlimit;
      }
      label += f.stderrTail.empty() ? ", no stderr tail]" : ", stderr tail]";
    }
    trace->events.instant(label + ": " + f.error, "lifecycle", f.cores,
                          static_cast<Cycles>(i));
    switch (f.kind) {
      case RunFailureKind::kException: exceptions += 1.0; break;
      case RunFailureKind::kTimeout: timeouts += 1.0; break;
      case RunFailureKind::kCancelled: cancelled += 1.0; break;
      case RunFailureKind::kCrash: crashes += 1.0; break;
    }
  }
  trace->metrics.gauge("sweep.failures.exception", "runs")
      .record(0, exceptions);
  trace->metrics.gauge("sweep.failures.timeout", "runs").record(0, timeouts);
  trace->metrics.gauge("sweep.failures.cancelled", "runs")
      .record(0, cancelled);
  trace->metrics.gauge("sweep.failures.crash", "runs").record(0, crashes);
  trace->metrics.finalize(end);
  return trace;
}

std::string lifecycleToChromeTraceJson(const SweepResult& sweep) {
  return obs::toChromeTraceJson(*lifecycleTrace(sweep));
}

}  // namespace occm::analysis
