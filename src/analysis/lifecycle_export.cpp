#include "analysis/lifecycle_export.hpp"

#include <algorithm>

#include "obs/chrome_trace.hpp"

namespace occm::analysis {

obs::RunTracePtr lifecycleTrace(const SweepResult& sweep) {
  // One metric window and a clock of 1 GHz: lifecycle "time" is request
  // order for failure instants and coordinator milliseconds for lease
  // spans, so the units only need to be stable, not physical.
  Cycles end = static_cast<Cycles>(
      sweep.failures.size() == 0 ? 1 : sweep.failures.size());
  for (const exec::dist::LeaseSpan& span : sweep.dist.leaseSpans) {
    end = std::max(end, static_cast<Cycles>(span.endMs));
  }
  auto trace = std::make_shared<obs::RunTrace>(
      end, sweep.failures.size() + sweep.dist.leaseSpans.size() + 16,
      obs::OverflowPolicy::kDropOldest, 1.0);
  double exceptions = 0.0;
  double timeouts = 0.0;
  double cancelled = 0.0;
  double crashes = 0.0;
  double workerLost = 0.0;
  double handshakes = 0.0;
  double frameCorrupt = 0.0;
  for (std::size_t i = 0; i < sweep.failures.size(); ++i) {
    const RunFailure& f = sweep.failures[i];
    trace->events.setTrackName(f.cores, "n = " + std::to_string(f.cores));
    std::string label = std::string(toString(f.kind)) +
                        (f.recovered ? " (recovered)" : "");
    if (f.kind == RunFailureKind::kCrash) {
      // Crash records carry their forensics inline: signal, the limit
      // that explains the death, and whether a stderr tail was captured.
      label += " [signal " + std::to_string(f.signal);
      if (!f.rlimit.empty()) {
        label += ", rlimit " + f.rlimit;
      }
      label += f.stderrTail.empty() ? ", no stderr tail]" : ", stderr tail]";
    }
    if (!f.worker.empty()) {
      // Fleet incidents name the worker involved (worker-lost instants).
      label += " [worker " + f.worker + "]";
    }
    trace->events.instant(label + ": " + f.error, "lifecycle", f.cores,
                          static_cast<Cycles>(i));
    switch (f.kind) {
      case RunFailureKind::kException: exceptions += 1.0; break;
      case RunFailureKind::kTimeout: timeouts += 1.0; break;
      case RunFailureKind::kCancelled: cancelled += 1.0; break;
      case RunFailureKind::kCrash: crashes += 1.0; break;
      case RunFailureKind::kWorkerLost: workerLost += 1.0; break;
      case RunFailureKind::kHandshake: handshakes += 1.0; break;
      case RunFailureKind::kFrameCorrupt: frameCorrupt += 1.0; break;
    }
  }
  // One span per lease (granted .. closed), on the task's request-order
  // track: re-dispatch chains and speculative duplicates render as
  // stacked intervals per task id in the Chrome timeline.
  for (const exec::dist::LeaseSpan& span : sweep.dist.leaseSpans) {
    const std::int32_t track = static_cast<std::int32_t>(span.taskId);
    trace->events.setTrackName(track,
                               "task " + std::to_string(span.taskId));
    const Cycles start = static_cast<Cycles>(span.startMs);
    const Cycles finish = static_cast<Cycles>(std::max(
        span.endMs, span.startMs + 1));  // zero-width spans are invisible
    trace->events.span("lease " + span.worker + " (" + span.outcome + ")",
                       "lease", track, start, finish - start);
  }
  trace->metrics.gauge("sweep.failures.exception", "runs")
      .record(0, exceptions);
  trace->metrics.gauge("sweep.failures.timeout", "runs").record(0, timeouts);
  trace->metrics.gauge("sweep.failures.cancelled", "runs")
      .record(0, cancelled);
  trace->metrics.gauge("sweep.failures.crash", "runs").record(0, crashes);
  trace->metrics.gauge("sweep.failures.worker_lost", "runs")
      .record(0, workerLost);
  trace->metrics.gauge("sweep.failures.handshake", "runs")
      .record(0, handshakes);
  trace->metrics.gauge("sweep.failures.frame_corrupt", "runs")
      .record(0, frameCorrupt);
  if (sweep.dist.used) {
    const exec::dist::LeaseStats& leases = sweep.dist.leases;
    trace->metrics.gauge("dist.workers.seen", "workers")
        .record(0, static_cast<double>(sweep.dist.workersSeen));
    trace->metrics.gauge("dist.leases.expired", "leases")
        .record(0, static_cast<double>(leases.leasesExpired));
    trace->metrics.gauge("dist.redispatches", "tasks")
        .record(0, static_cast<double>(leases.redispatches));
    trace->metrics.gauge("dist.leases.speculative", "leases")
        .record(0, static_cast<double>(leases.speculativeLeases));
    trace->metrics.gauge("dist.duplicates.discarded", "results")
        .record(0, static_cast<double>(leases.duplicatesDiscarded));
  }
  trace->metrics.finalize(end);
  return trace;
}

std::string lifecycleToChromeTraceJson(const SweepResult& sweep) {
  return obs::toChromeTraceJson(*lifecycleTrace(sweep));
}

}  // namespace occm::analysis
