#pragma once

// Fit-from-few-points advisor glue: measure only the contention model's
// regression inputs (the paper's 3-5 point protocol) and fit a
// ContentionModel from them. Extracted from examples/capacity_advisor so
// the CLI and the serve-tier advisor server share one implementation —
// both the warm-cache fill of the service and the one-shot example go
// through fitAdvisorModel.

#include <functional>

#include "common/cancellation.hpp"
#include "core/contention_model.hpp"
#include "sim/machine_sim.hpp"
#include "topology/machine_spec.hpp"
#include "workloads/workload.hpp"

namespace occm::analysis {

struct AdvisorFitConfig {
  topology::MachineSpec machine;
  workloads::WorkloadSpec workload;  ///< threads <= 0 => machine cores
  sim::SimConfig sim;
  /// Attempts per measured core count (failed runs retry seed-perturbed).
  int maxAttempts = 2;
  /// Sweep pool size; 0 resolves via OCCM_SWEEP_WORKERS / hardware.
  int workers = 0;
  /// Model options (estimator, remote mode, robust fallback).
  model::ContentionModel::Options options;
  /// Cooperative cancellation, polled at the simulator's event-loop
  /// boundary of every measurement run. A cancelled fit comes back as a
  /// FitError (kTooFewPoints, "fit sweep cancelled") — never a throw.
  CancellationToken cancel;
  /// Test/diagnostics hook forwarded to SweepConfig::beforeRun.
  std::function<void(int cores, int attempt)> beforeRun;
};

/// A fitted advisor model plus the provenance a caller reports.
struct AdvisorModel {
  model::ContentionModel model;
  model::MachineShape shape;
  std::vector<int> fitCores;  ///< the regression-input core counts
  std::size_t measuredRuns = 0;
};

/// Runs the defaultFitCores measurements for the machine shape and fits
/// the contention model from them. Every failure mode — a measurement run
/// that fails permanently, a cancelled sweep, degenerate points — comes
/// back as a typed FitError; no exception escapes for bad measurements.
[[nodiscard]] Expected<AdvisorModel, model::FitError> fitAdvisorModel(
    const AdvisorFitConfig& config);

}  // namespace occm::analysis
