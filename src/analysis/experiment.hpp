#pragma once

// Experiment harness: runs (program, class, machine, active-cores) grids
// through the simulator and converts profiles into the model's measured
// points — the glue used by the benches, examples and integration tests.

#include <vector>

#include "core/contention_model.hpp"
#include "perf/run_profile.hpp"
#include "sim/machine_sim.hpp"
#include "topology/machine_spec.hpp"
#include "workloads/workload.hpp"

namespace occm::analysis {

struct SweepConfig {
  topology::MachineSpec machine;
  workloads::WorkloadSpec workload;  ///< threads <= 0 => machine cores
  sim::SimConfig sim;
  /// Core counts to run; empty => 1 .. machine cores.
  std::vector<int> coreCounts;
};

struct SweepResult {
  std::vector<perf::RunProfile> profiles;  ///< one per core count, in order

  /// Measured points (cores, total cycles) for the model.
  [[nodiscard]] std::vector<model::MeasuredPoint> points() const;

  /// Profile for an exact core count; throws if it was not run.
  [[nodiscard]] const perf::RunProfile& at(int cores) const;

  /// Measured omega(n) against the sweep's C(1) (requires a 1-core run).
  [[nodiscard]] std::vector<double> omegas() const;
};

/// Runs one configuration.
[[nodiscard]] perf::RunProfile runOnce(const topology::MachineSpec& machine,
                                       const workloads::WorkloadSpec& workload,
                                       int activeCores,
                                       const sim::SimConfig& simConfig = {});

/// Runs the full sweep. The workload is built once and replayed (streams
/// reset) for every core count; threads default to the machine's cores,
/// matching the paper's fixed-threads / varying-cores protocol.
[[nodiscard]] SweepResult runSweep(const SweepConfig& config);

/// Subset of measured points at the given core counts (model fit inputs).
[[nodiscard]] std::vector<model::MeasuredPoint> pointsAt(
    const SweepResult& sweep, const std::vector<int>& coreCounts);

}  // namespace occm::analysis
