#pragma once

// Experiment harness: runs (program, class, machine, active-cores) grids
// through the simulator and converts profiles into the model's measured
// points — the glue used by the benches, examples and integration tests.

#include <functional>
#include <string>
#include <vector>

#include "analysis/sweep_state.hpp"
#include "core/contention_model.hpp"
#include "perf/run_profile.hpp"
#include "sim/machine_sim.hpp"
#include "topology/machine_spec.hpp"
#include "workloads/workload.hpp"

namespace occm::analysis {

struct SweepConfig {
  topology::MachineSpec machine;
  workloads::WorkloadSpec workload;  ///< threads <= 0 => machine cores
  sim::SimConfig sim;
  /// Core counts to run; empty => 1 .. machine cores.
  std::vector<int> coreCounts;
  /// Attempts per core count. A failed run (any escaping exception) is
  /// retried with a perturbed seed up to maxAttempts times total; what
  /// still fails becomes a RunFailure instead of aborting the sweep.
  int maxAttempts = 2;
  /// When non-empty, completed runs are checkpointed here after every
  /// core count (atomic tmp+rename JSON) and a matching checkpoint is
  /// restored on the next call, skipping finished runs. A checkpoint
  /// whose program/machine/seed/threads identity differs is ignored.
  std::string checkpointPath;
  /// Test/diagnostics hook, called before every attempt; an exception it
  /// throws is treated exactly like a failed run.
  std::function<void(int cores, int attempt)> beforeRun;
};

struct SweepResult {
  std::vector<perf::RunProfile> profiles;  ///< completed runs, in order
  /// Core counts that failed at least once (recovered or not); a core
  /// count with `recovered == false` has no profile.
  std::vector<RunFailure> failures;
  /// Runs restored from the checkpoint instead of simulated. Restored
  /// profiles are lightweight: counters.totalCycles/stallCycles and
  /// makespan only.
  std::size_t restoredRuns = 0;

  /// Measured points (cores, total cycles) for the model.
  [[nodiscard]] std::vector<model::MeasuredPoint> points() const;

  /// Profile for an exact core count; throws a ContractViolation naming
  /// the core counts actually present if it was not run.
  [[nodiscard]] const perf::RunProfile& at(int cores) const;

  /// Measured omega(n) against the sweep's C(1) (requires a 1-core run).
  [[nodiscard]] std::vector<double> omegas() const;

  /// Human-readable health summary: completed/restored/failed runs.
  [[nodiscard]] std::string diagnostics() const;
};

/// Runs one configuration.
[[nodiscard]] perf::RunProfile runOnce(const topology::MachineSpec& machine,
                                       const workloads::WorkloadSpec& workload,
                                       int activeCores,
                                       const sim::SimConfig& simConfig = {});

/// Runs the full sweep. The workload is built once and replayed (streams
/// reset) for every core count; threads default to the machine's cores,
/// matching the paper's fixed-threads / varying-cores protocol.
///
/// Failure isolating: a run that throws is retried (seed-perturbed) up
/// to config.maxAttempts times and then recorded as a RunFailure; the
/// sweep always completes with whatever survived, and no exception from
/// an individual run escapes. With config.checkpointPath set, completed
/// runs persist across interrupted invocations.
[[nodiscard]] SweepResult runSweep(const SweepConfig& config);

/// Subset of measured points at the given core counts (model fit inputs).
[[nodiscard]] std::vector<model::MeasuredPoint> pointsAt(
    const SweepResult& sweep, const std::vector<int>& coreCounts);

}  // namespace occm::analysis
