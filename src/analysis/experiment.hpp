#pragma once

// Experiment harness: runs (program, class, machine, active-cores) grids
// through the simulator and converts profiles into the model's measured
// points — the glue used by the benches, examples and integration tests.

#include <functional>
#include <string>
#include <vector>

#include "analysis/sweep_state.hpp"
#include "analysis/sweep_task.hpp"
#include "common/cancellation.hpp"
#include "core/contention_model.hpp"
#include "exec/chaos/chaos_transport.hpp"
#include "exec/distributed/lease.hpp"
#include "exec/thread_pool.hpp"
#include "perf/run_profile.hpp"
#include "sim/machine_sim.hpp"
#include "topology/machine_spec.hpp"
#include "workloads/workload.hpp"

namespace occm::analysis {

/// Parallel execution of a sweep's independent (core count) runs.
///
/// Determinism guarantee: every pool size — including 1 — produces
/// bit-identical SweepResult contents (profiles, failures, checkpoint
/// files after completion). Each task builds its own workload instance
/// and simulator from the sweep's seeds, shares no mutable state with its
/// siblings, and results merge back in core-count (request) order; the
/// pool only changes wall-clock time. See DESIGN.md §9.
struct ParallelSweepConfig {
  /// Worker threads for the pool. 1 runs every task inline on the calling
  /// thread (no pool is created); 0 (the default) resolves through
  /// exec::resolveWorkerCount — the OCCM_SWEEP_WORKERS environment
  /// variable, then hardware concurrency.
  int workers = 0;
};

// IsolationConfig and SweepLimits live in analysis/sweep_task.hpp (shared
// with the distributed worker path) and are re-exported here unchanged.

/// Distributed execution of a sweep over a TCP worker fleet (DESIGN.md
/// §13). Off by default: the sweep runs on the local pool exactly as
/// before. When listen = true, runSweep binds a coordinator socket,
/// shards the unfinished core counts across connected workers as leases,
/// and merges results in request order — bit-identical to a serial
/// in-process sweep regardless of fleet size, worker deaths, or
/// re-dispatch order. If no worker is alive for graceWindowSeconds, the
/// remaining tasks degrade to the local pool so the sweep always
/// completes.
struct DistributedConfig {
  /// Master switch: bind, accept workers, shard the grid.
  bool listen = false;
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (reported via onListening).
  int port = 0;
  /// How long to wait with no live worker before degrading the remaining
  /// tasks to the local pool.
  double graceWindowSeconds = 5.0;
  /// Lease deadline per dispatched task; expiry re-dispatches with capped
  /// exponential backoff and deterministic jitter.
  double leaseSeconds = 60.0;
  /// Ping cadence toward each connected worker.
  double heartbeatSeconds = 1.0;
  /// A worker silent this long is evicted and its leases re-queued.
  double heartbeatTimeoutSeconds = 15.0;
  /// A lease older than this may be speculatively re-dispatched to an
  /// idle worker (tail-straggler hedge); first valid result wins.
  double speculativeAfterSeconds = 10.0;
  /// A task whose lease expired this many times is handed back to the
  /// local pool instead of re-dispatched forever.
  int maxLeaseExpiries = 16;
  /// Called once with the bound port (useful with port = 0).
  std::function<void(int port)> onListening;
  /// Seeded network-fault schedule applied to every accepted worker
  /// connection (chaos drills; see exec/chaos). Empty plan = plain
  /// transports, zero overhead.
  exec::chaos::ChaosConfig chaos;
};

/// What the distributed phase did — empty/default when it did not run.
struct DistributedStats {
  /// True when a coordinator was started (config.distributed.listen).
  bool used = false;
  /// Distinct worker ids that completed the handshake.
  std::size_t workersSeen = 0;
  /// Tasks settled by fleet results (the rest restored or run locally).
  std::size_t fleetCompleted = 0;
  /// True when the grace window expired and remaining tasks ran locally.
  bool degradedToLocal = false;
  /// Lease-table counters (expiries, re-dispatches, speculation, ...).
  exec::dist::LeaseStats leases;
  /// Per-lease spans (taskId here is the index into the sweep's core
  /// counts) for Chrome-trace export.
  std::vector<exec::dist::LeaseSpan> leaseSpans;
  /// Heartbeat round-trip samples, in arrival order. Host-time only.
  std::vector<double> heartbeatRttMs;
  /// Non-empty when the coordinator could not start (bind/listen
  /// failure); the whole sweep then ran on the local pool.
  std::string error;
};

struct SweepConfig {
  topology::MachineSpec machine;
  workloads::WorkloadSpec workload;  ///< threads <= 0 => machine cores
  sim::SimConfig sim;
  /// Core counts to run; empty => 1 .. machine cores.
  std::vector<int> coreCounts;
  /// Attempts per core count. A failed run (any escaping exception) is
  /// retried with a perturbed seed up to maxAttempts times total; what
  /// still fails becomes a RunFailure instead of aborting the sweep.
  int maxAttempts = 2;
  /// When non-empty, completed runs are checkpointed here after every
  /// core count (atomic tmp+rename JSON) and a matching checkpoint is
  /// restored on the next call, skipping finished runs. A checkpoint
  /// whose program/machine/seed/threads identity differs is ignored.
  std::string checkpointPath;
  /// Test/diagnostics hook, called before every attempt; an exception it
  /// throws is treated exactly like a failed run. With parallel.workers
  /// != 1 it is invoked concurrently from pool workers — it must be
  /// thread-safe (and must not assume call order across core counts).
  std::function<void(int cores, int attempt)> beforeRun;
  /// Pool configuration; the default resolves to OCCM_SWEEP_WORKERS or
  /// hardware concurrency. Output is bit-identical for every pool size.
  ParallelSweepConfig parallel;
  /// Per-run wall/cycle limits (see SweepLimits). Defaults are unlimited.
  SweepLimits limits;
  /// Per-attempt process isolation and resource budgets (see
  /// IsolationConfig). Off by default.
  IsolationConfig isolation;
  /// TCP coordinator/worker fleet execution (see DistributedConfig). Off
  /// by default; when on, unfinished tasks are sharded across connected
  /// workers and the local pool becomes the grace-window fallback.
  DistributedConfig distributed;
  /// Whole-sweep graceful stop. When the token reports a stop request
  /// (watchdog relays it to every in-flight run's cancellation point),
  /// runs not yet started are left pending — no failure record, so a
  /// resume re-attempts them — in-flight runs unwind as RunFailure{kind =
  /// kCancelled}, completed work is already checkpointed, and runSweep
  /// returns normally with SweepResult::stopped set. The source's
  /// requestStop() is async-signal-safe, so a SIGINT handler may own it.
  CancellationToken cancel;
};

struct SweepResult {
  std::vector<perf::RunProfile> profiles;  ///< completed runs, in order
  /// Core counts that failed at least once (recovered or not); a core
  /// count with `recovered == false` has no profile.
  std::vector<RunFailure> failures;
  /// Runs restored from the checkpoint instead of simulated. Restored
  /// profiles are lightweight: counters.totalCycles/stallCycles and
  /// makespan only.
  std::size_t restoredRuns = 0;
  /// Resolved pool size the sweep ran with (1 = serial); reported by the
  /// accessor diagnostics so a partially-merged parallel sweep names the
  /// execution mode that produced it.
  int requestedWorkers = 1;
  /// Core counts the sweep was asked to run, in request order.
  std::vector<int> requestedCoreCounts;
  /// True when the sweep's cancellation token fired: some core counts may
  /// be pending, and the checkpoint (when configured) holds every
  /// completed run for a later resume.
  bool stopped = false;
  /// Non-empty when a configured checkpoint existed but could not be
  /// trusted (CheckpointError::message()); the bad file was quarantined
  /// to `<path>.corrupt` and the sweep started fresh.
  std::string checkpointWarning;
  /// End-of-sweep pool telemetry (tasks per worker, queue-wait/busy time,
  /// submit backpressure, queue occupancy) captured just before the pool
  /// is torn down. workers is empty on the serial path and when the
  /// observability layer is compiled out. Host-time only — two sweeps with
  /// identical simulated output may differ here.
  exec::ThreadPoolStats poolStats;
  /// Distributed-phase telemetry (dist.used == false when the sweep ran
  /// purely locally). Host-time only, like poolStats.
  DistributedStats dist;

  /// Measured points (cores, total cycles) for the model.
  [[nodiscard]] std::vector<model::MeasuredPoint> points() const;

  /// Requested core counts that have no completed profile (runs that
  /// failed permanently, or were never merged). Empty for a fully
  /// successful sweep.
  [[nodiscard]] std::vector<int> pendingCoreCounts() const;

  /// Profile for an exact core count; throws a ContractViolation naming
  /// the core counts actually present, the ones still pending and the
  /// pool size if it was not run.
  [[nodiscard]] const perf::RunProfile& at(int cores) const;

  /// Measured omega(n) against the sweep's C(1) (requires a 1-core run).
  [[nodiscard]] std::vector<double> omegas() const;

  /// Human-readable health summary: completed/restored/failed runs.
  [[nodiscard]] std::string diagnostics() const;
};

/// Runs one configuration.
[[nodiscard]] perf::RunProfile runOnce(const topology::MachineSpec& machine,
                                       const workloads::WorkloadSpec& workload,
                                       int activeCores,
                                       const sim::SimConfig& simConfig = {});

/// Runs the full sweep. Each core count gets its own freshly built
/// workload instance (bit-identical across builds for a fixed spec seed);
/// threads default to the machine's cores, matching the paper's
/// fixed-threads / varying-cores protocol.
///
/// Parallel by default: independent (core count) runs execute on a
/// config.parallel pool (OCCM_SWEEP_WORKERS / hardware concurrency) and
/// merge back in request order, bit-identical to workers = 1 — the runs
/// share no mutable state and every RNG stream is derived per task from
/// the configured seeds, so the pool size only changes wall-clock time.
///
/// Failure isolating: a run that throws is retried (seed-perturbed) up
/// to config.maxAttempts times and then recorded as a RunFailure; the
/// sweep always completes with whatever survived, and no exception from
/// an individual run escapes. With config.checkpointPath set, completed
/// runs persist across interrupted invocations (checkpoint writes are
/// serialized behind a mutex and deterministic in content).
[[nodiscard]] SweepResult runSweep(const SweepConfig& config);

/// Subset of measured points at the given core counts (model fit inputs).
[[nodiscard]] std::vector<model::MeasuredPoint> pointsAt(
    const SweepResult& sweep, const std::vector<int>& coreCounts);

}  // namespace occm::analysis
