#pragma once

// The execution of ONE sweep task — one (core count), restored from a
// checkpoint or attempted (with seed-perturbed retries) until a profile
// or a permanent failure — extracted from the sweep loop so the local
// pool path and the distributed worker path run byte-identical code.
// That sharing is the heart of the fleet's determinism guarantee: a
// worker across a socket produces the same TaskOutcome bits as the same
// task run in-process, so the deterministic request-order merge cannot
// tell them apart.
//
// Lifecycle control (wall deadlines, sweep-wide stop relays) is injected
// through RunLifecycle: the local path adapts the sweep's Watchdog, the
// worker path runs without one (the coordinator's lease expiry is the
// hang recovery across a fleet).

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "analysis/sweep_state.hpp"
#include "common/cancellation.hpp"
#include "perf/run_profile.hpp"
#include "sim/machine_sim.hpp"
#include "topology/machine_spec.hpp"
#include "workloads/workload.hpp"

namespace occm::analysis {

/// Per-attempt process isolation and resource budgets (exec/process_runner).
/// Off by default: every attempt then runs in-process, exactly as before.
/// When enabled, each attempt forks a child that rebuilds the workload and
/// simulator from the same seeds and ships its RunProfile back over a
/// CRC-checked pipe frame — so a segfault, abort, or rlimit death takes
/// out one attempt (recorded as RunFailure{kind = kCrash}, retried and
/// checkpointed like an exception) instead of the whole sweep, and
/// successful runs stay bit-identical to the in-process path at any pool
/// size. Cost: a fork per attempt, and RunProfile::trace is not shipped
/// back (traces stay a single-process feature). Crash-injection fault
/// plans (FaultPlan::hasCrash()) require this mode.
struct IsolationConfig {
  bool enabled = false;
  /// RLIMIT_AS per attempt; allocation failure under the budget is
  /// reported as kCrash with rlimit = "address-space". 0 = no limit.
  std::uint64_t memoryBytes = 0;
  /// RLIMIT_CPU per attempt; overrun dies on SIGXCPU, reported as kCrash
  /// with rlimit = "cpu". 0 = no limit.
  std::uint64_t cpuSeconds = 0;
  /// Bytes of the child's stderr tail captured into RunFailure records.
  std::size_t stderrTailBytes = 4096;
};

/// Per-run lifecycle limits. A run that exceeds either bound is recorded
/// as RunFailure{kind = kTimeout} (not retried, never checkpointed) and
/// the sweep continues with the remaining core counts.
struct SweepLimits {
  /// Wall-clock deadline per attempt, enforced by a watchdog thread that
  /// fires the run's cancellation token. 0 = unlimited. Which runs time
  /// out under a wall deadline is machine-dependent; the *completed* runs
  /// stay bit-identical to a serial sweep of the same subset.
  double wallSeconds = 0.0;
  /// Simulated-cycle budget per attempt (sim::SimConfig::cycleBudget).
  /// Fully deterministic: the same budget aborts the same run at the same
  /// event on every machine and pool size. 0 = unlimited.
  Cycles cycleBudget = 0;
};

/// Everything one (core count) task produces; merged in request order.
struct TaskOutcome {
  std::optional<perf::RunProfile> profile;
  std::optional<RunFailure> failure;  ///< recovered retry or permanent
  std::optional<RunRecord> record;    ///< checkpoint row for the profile
  bool restored = false;
  /// Sweep-level stop observed before the task started: no attempt was
  /// made, no failure is recorded, and the core count stays pending so a
  /// resumed sweep re-attempts it.
  bool skipped = false;
};

/// Lifecycle hooks for one task, injected so the attempt loop does not
/// know whether a Watchdog (local sweep) or nothing (distributed worker;
/// lease expiry recovers hangs coordinator-side) is behind them.
class RunLifecycle {
 public:
  virtual ~RunLifecycle() = default;
  /// Arms the wall deadline for the attempt about to start.
  virtual void arm() {}
  /// Disarms it (called on every exit path of the attempt).
  virtual void disarm() {}
  /// True when this task's armed deadline fired.
  [[nodiscard]] virtual bool timedOut() const { return false; }
  /// Cancellation token attempts should honor (only read when active()).
  [[nodiscard]] virtual CancellationToken token() const { return {}; }
  /// Whether token() is live (mirrors the Watchdog's active()).
  [[nodiscard]] virtual bool active() const { return false; }
};

/// The no-op lifecycle (no deadline, no cancellation relay).
class NullLifecycle final : public RunLifecycle {};

/// Checkpoint row for a completed profile — shared by the in-process and
/// isolated attempt paths so both persist byte-identical records.
[[nodiscard]] RunRecord makeRunRecord(const perf::RunProfile& profile,
                                      int cores);

/// Rebuilds the outcome of a checkpointed run: everything the CSV
/// exporter and the determinism fingerprint read, so a resumed sweep is
/// byte-identical to an uninterrupted one. nullopt when the checkpoint
/// has no record for this core count.
[[nodiscard]] std::optional<TaskOutcome> restoredOutcome(
    const SweepCheckpoint& restoredState, int cores);

/// Inputs of one task run, independent of how the task was delivered
/// (local pool or fleet assignment).
struct RunTaskContext {
  const topology::MachineSpec* machine = nullptr;
  /// Workload spec with threads already resolved (> 0).
  const workloads::WorkloadSpec* workload = nullptr;
  /// Base sim config; each attempt copies it and perturbs the seed.
  const sim::SimConfig* sim = nullptr;
  Cycles cycleBudget = 0;
  IsolationConfig isolation;
  int maxAttempts = 1;
  /// Recorded into failure records (1 = serial / worker-local).
  int poolSize = 1;
  /// Sweep-wide stop; checked before the first attempt and between
  /// retries.
  CancellationToken sweepCancel;
  /// Test/diagnostics hook, called before every attempt; an exception it
  /// throws is treated exactly like a failed run.
  std::function<void(int cores, int attempt)> beforeRun;
};

/// Runs one core count to completion: attempts (with seed-perturbed
/// retries) until a profile or a permanent failure. Builds a private
/// workload instance and simulator per attempt, so concurrent tasks share
/// nothing mutable; no exception escapes.
[[nodiscard]] TaskOutcome runCoreCountTask(const RunTaskContext& context,
                                           int cores,
                                           RunLifecycle& lifecycle);

}  // namespace occm::analysis
