#pragma once

// CSV export of sweep results and figure data, so the bench harnesses'
// tables can be re-plotted (gnuplot/matplotlib) without re-running the
// experiments.

#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "core/burstiness.hpp"
#include "core/contention_model.hpp"
#include "obs/metric_registry.hpp"

namespace occm::analysis {

/// Escapes and joins one CSV row.
[[nodiscard]] std::string csvRow(const std::vector<std::string>& cells);

/// Sweep -> CSV: one row per core count with the Figure-3 quantities
/// (total/stall/work cycles, LLC misses, coherence misses, omega).
[[nodiscard]] std::string sweepToCsv(const SweepResult& sweep);

/// Validation report -> CSV: cores, measured/predicted cycles and omega,
/// relative error (the Figure-5/6 series).
[[nodiscard]] std::string validationToCsv(const model::ValidationReport& report);

/// Burstiness CCDF -> CSV: x, P(BurstSize > x) (the Figure-4 series).
[[nodiscard]] std::string ccdfToCsv(const model::BurstinessReport& report);

/// Metric registry -> tidy ("long") CSV time series: one row per
/// (window, metric) with the window's start in cycles and nanoseconds
/// (at `clockGhz`), the metric name/unit and the windowed value. Tidy
/// layout keeps the export schema stable as metrics come and go.
[[nodiscard]] std::string metricsToCsv(const obs::MetricRegistry& metrics,
                                       double clockGhz);

/// Writes text to a file; throws ContractViolation on I/O failure.
void writeFile(const std::string& path, const std::string& contents);

}  // namespace occm::analysis
