#pragma once

// CSV export of sweep results and figure data, so the bench harnesses'
// tables can be re-plotted (gnuplot/matplotlib) without re-running the
// experiments — plus a hardened loader for the sweep table, so exported
// results can be re-ingested (diffed, re-fit) without trusting the bytes.

#include <string>
#include <vector>

#include "analysis/experiment.hpp"
#include "common/expected.hpp"
#include "core/burstiness.hpp"
#include "core/contention_model.hpp"
#include "obs/metric_registry.hpp"

namespace occm::analysis {

/// Escapes and joins one CSV row.
[[nodiscard]] std::string csvRow(const std::vector<std::string>& cells);

/// Sweep -> CSV: one row per core count with the Figure-3 quantities
/// (total/stall/work cycles, LLC misses, coherence misses, omega).
[[nodiscard]] std::string sweepToCsv(const SweepResult& sweep);

/// Validation report -> CSV: cores, measured/predicted cycles and omega,
/// relative error (the Figure-5/6 series).
[[nodiscard]] std::string validationToCsv(const model::ValidationReport& report);

/// Burstiness CCDF -> CSV: x, P(BurstSize > x) (the Figure-4 series).
[[nodiscard]] std::string ccdfToCsv(const model::BurstinessReport& report);

/// Metric registry -> tidy ("long") CSV time series: one row per
/// (window, metric) with the window's start in cycles and nanoseconds
/// (at `clockGhz`), the metric name/unit and the windowed value. Tidy
/// layout keeps the export schema stable as metrics come and go.
[[nodiscard]] std::string metricsToCsv(const obs::MetricRegistry& metrics,
                                       double clockGhz);

/// Sweep failure records -> CSV: one row per RunFailure with its
/// lifecycle kind (exception/timeout/cancelled), so aborted runs are
/// visible in the same export pipeline as the completed ones.
[[nodiscard]] std::string failuresToCsv(const SweepResult& sweep);

/// End-of-sweep ThreadPool telemetry -> tidy CSV: one (scope, metric,
/// value) row per statistic — pool-wide rows (scope "pool": submitted,
/// submit_block_ns, max_queue_depth) then per-worker rows (scope
/// "worker0"...: tasks, busy_ns, queue_wait_ns). Header-only when the
/// sweep ran serially or the observability layer is compiled out. Values
/// are host-time: do not fingerprint them.
[[nodiscard]] std::string poolStatsToCsv(const exec::ThreadPoolStats& stats);

/// Why a sweep CSV could not be re-ingested.
struct CsvError {
  std::size_t line = 0;  ///< 1-based line of the first deviation
  std::string detail;

  /// "corrupt sweep csv at line 3: expected 9 fields, got 7"
  [[nodiscard]] std::string message() const;
};

/// One re-ingested sweepToCsv row.
struct SweepCsvRow {
  int cores = 0;
  double totalCycles = 0.0;
  double stallCycles = 0.0;
  double workCycles = 0.0;
  double llcMisses = 0.0;
  double coherenceMisses = 0.0;
  double writebacks = 0.0;
  double makespan = 0.0;
  double omega = 0.0;
};

/// Parses what sweepToCsv produced. Validates shape strictly — exact
/// header, exact column count, numeric fields, cores >= 1, finite
/// non-negative cycle counts — and returns a typed CsvError naming the
/// first bad line; never throws or crashes on arbitrary bytes.
[[nodiscard]] Expected<std::vector<SweepCsvRow>, CsvError> parseSweepCsv(
    const std::string& text);

/// Writes text to a file; throws ContractViolation on I/O failure.
void writeFile(const std::string& path, const std::string& contents);

}  // namespace occm::analysis
