#include "analysis/sweep_state.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/crc32.hpp"
#include "common/json_reader.hpp"

namespace occm::analysis {

namespace {

std::string jsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Canonical double formatting shared by the JSON emitter and the CRC
/// payloads: %.17g round-trips every double, and computing both the JSON
/// text and the checksum from the same string means a value that survives
/// a parse round-trip always re-produces its own CRC.
std::string fmtDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

// The CRC covers a canonical field encoding — not the JSON bytes — so
// whitespace or key reordering never invalidates a record, while any
// change to a field's *value* does. Writer and loader both derive the
// payload from the in-memory record via these two helpers.
std::string runPayload(const RunRecord& r) {
  std::string out = "run|";
  out += std::to_string(r.cores);
  for (const double value :
       {r.totalCycles, r.stallCycles, r.makespan, r.llcMisses,
        r.coherenceMisses, r.writebacks, r.reroutedRequests, r.faultRetries,
        r.backgroundRequests, r.throttledCycles}) {
    out += '|';
    out += fmtDouble(value);
  }
  return out;
}

std::string failurePayload(const RunFailure& f) {
  std::string out = "fail|";
  out += std::to_string(f.cores);
  out += '|';
  out += std::to_string(f.attempts);
  out += '|';
  out += f.recovered ? '1' : '0';
  out += '|';
  out += std::to_string(f.poolSize);
  out += '|';
  out += toString(f.kind);
  out += '|';
  out += f.error;
  // Crash detail joins the payload only for crash records, so the CRCs
  // of every record an existing v2 file can contain are unchanged.
  if (f.kind == RunFailureKind::kCrash) {
    out += '|';
    out += std::to_string(f.signal);
    out += '|';
    out += f.rlimit;
    out += '|';
    out += f.stderrTail;
  }
  return out;
}

std::string crcHex(std::uint32_t crc) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%08x", crc);
  return buf;
}

bool parseCrcHex(const std::string& text, std::uint32_t* out) {
  if (text.size() != 8) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long value = std::strtoul(text.c_str(), &end, 16);
  if (end != text.c_str() + 8 || errno == ERANGE) {
    return false;
  }
  *out = static_cast<std::uint32_t>(value);
  return true;
}

bool parseFailureKind(const std::string& text, RunFailureKind* out) {
  for (const RunFailureKind kind :
       {RunFailureKind::kException, RunFailureKind::kTimeout,
        RunFailureKind::kCancelled, RunFailureKind::kCrash,
        RunFailureKind::kWorkerLost, RunFailureKind::kHandshake,
        RunFailureKind::kFrameCorrupt}) {
    if (text == toString(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

CheckpointError readerError(const JsonReader& reader) {
  CheckpointError err;
  err.kind = reader.truncated() ? CheckpointErrorKind::kTruncated
                                : CheckpointErrorKind::kSyntax;
  err.byteOffset = reader.errorOffset();
  err.detail = reader.errorDetail();
  return err;
}

CheckpointError crcError(std::size_t recordOffset, std::string detail) {
  CheckpointError err;
  err.kind = CheckpointErrorKind::kCrcMismatch;
  err.byteOffset = recordOffset;
  err.detail = std::move(detail);
  return err;
}

}  // namespace

std::string CheckpointError::message() const {
  std::string out = "corrupt checkpoint (";
  out += toString(kind);
  out += ')';
  if (kind != CheckpointErrorKind::kMissing &&
      kind != CheckpointErrorKind::kIoError) {
    out += " at byte ";
    out += std::to_string(byteOffset);
  }
  if (!detail.empty()) {
    out += ": ";
    out += detail;
  }
  if (!quarantinedTo.empty()) {
    out += " (quarantined to ";
    out += quarantinedTo;
    out += ')';
  }
  return out;
}

bool SweepCheckpoint::matches(const std::string& programName,
                              const std::string& machineName,
                              std::uint64_t seedValue,
                              int threadCount) const {
  return program == programName && machine == machineName &&
         seed == seedValue && threads == threadCount;
}

const RunRecord* SweepCheckpoint::find(int cores) const {
  for (const RunRecord& r : runs) {
    if (r.cores == cores) {
      return &r;
    }
  }
  return nullptr;
}

std::string SweepCheckpoint::toJson() const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"version\": " << kFormatVersion << ",\n";
  out << "  \"program\": \"" << jsonEscape(program) << "\",\n";
  out << "  \"machine\": \"" << jsonEscape(machine) << "\",\n";
  // The seed is a string: a 64-bit value does not survive a double.
  out << "  \"seed\": \"" << seed << "\",\n";
  out << "  \"threads\": " << threads << ",\n";
  out << "  \"runs\": [";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunRecord& r = runs[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"cores\": " << r.cores
        << ", \"totalCycles\": " << fmtDouble(r.totalCycles)
        << ", \"stallCycles\": " << fmtDouble(r.stallCycles)
        << ", \"makespan\": " << fmtDouble(r.makespan)
        << ", \"llcMisses\": " << fmtDouble(r.llcMisses)
        << ", \"coherenceMisses\": " << fmtDouble(r.coherenceMisses)
        << ", \"writebacks\": " << fmtDouble(r.writebacks)
        << ", \"rerouted\": " << fmtDouble(r.reroutedRequests)
        << ", \"faultRetries\": " << fmtDouble(r.faultRetries)
        << ", \"background\": " << fmtDouble(r.backgroundRequests)
        << ", \"throttledCycles\": " << fmtDouble(r.throttledCycles)
        << ", \"crc\": \"" << crcHex(crc32(runPayload(r))) << "\"}";
  }
  out << (runs.empty() ? "],\n" : "\n  ],\n");
  out << "  \"failures\": [";
  for (std::size_t i = 0; i < failures.size(); ++i) {
    const RunFailure& f = failures[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"cores\": " << f.cores << ", \"attempts\": " << f.attempts
        << ", \"recovered\": " << (f.recovered ? "true" : "false")
        << ", \"poolSize\": " << f.poolSize
        << ", \"kind\": \"" << toString(f.kind) << "\"";
    if (f.kind == RunFailureKind::kCrash) {
      out << ", \"signal\": " << f.signal
          << ", \"rlimit\": \"" << jsonEscape(f.rlimit) << "\""
          << ", \"stderrTail\": \"" << jsonEscape(f.stderrTail) << "\"";
    }
    out << ", \"error\": \"" << jsonEscape(f.error) << "\""
        << ", \"crc\": \"" << crcHex(crc32(failurePayload(f))) << "\"}";
  }
  out << (failures.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
  return out.str();
}

Expected<SweepCheckpoint, CheckpointError> SweepCheckpoint::parseChecked(
    const std::string& json) {
  JsonReader reader(json);
  SweepCheckpoint state;
  // Legacy (pre-CRC) checkpoints carry no header; absence means v1 and
  // no per-record checksums to demand.
  int version = 1;
  if (!reader.consume('{')) {
    return makeUnexpected(readerError(reader));
  }
  bool first = true;
  while (reader.ok() && !reader.peek('}')) {
    if (!first && !reader.consume(',')) {
      return makeUnexpected(readerError(reader));
    }
    first = false;
    const std::string key = reader.parseString();
    if (!reader.consume(':')) {
      return makeUnexpected(readerError(reader));
    }
    if (key == "version") {
      reader.skipWs();
      const std::size_t versionOffset = reader.offset();
      version = static_cast<int>(reader.parseNumber());
      if (reader.ok() && (version < 1 || version > kFormatVersion)) {
        CheckpointError err;
        err.kind = CheckpointErrorKind::kVersionSkew;
        err.byteOffset = versionOffset;
        err.detail = "checkpoint format version " + std::to_string(version) +
                     "; this build reads versions 1.." +
                     std::to_string(kFormatVersion);
        return makeUnexpected(err);
      }
    } else if (key == "program") {
      state.program = reader.parseString();
    } else if (key == "machine") {
      state.machine = reader.parseString();
    } else if (key == "seed") {
      const std::string digits = reader.parseString();
      errno = 0;
      char* end = nullptr;
      state.seed = std::strtoull(digits.c_str(), &end, 10);
      if (end == digits.c_str() || *end != '\0' || errno == ERANGE) {
        reader.fail("seed is not a decimal 64-bit integer");
      }
    } else if (key == "threads") {
      state.threads = static_cast<int>(reader.parseNumber());
    } else if (key == "runs") {
      if (!reader.consume('[')) {
        return makeUnexpected(readerError(reader));
      }
      while (reader.ok() && !reader.peek(']')) {
        if (!state.runs.empty() && !reader.consume(',')) {
          return makeUnexpected(readerError(reader));
        }
        reader.skipWs();
        const std::size_t recordOffset = reader.offset();
        RunRecord record;
        bool hasCrc = false;
        std::uint32_t storedCrc = 0;
        if (!reader.consume('{')) {
          return makeUnexpected(readerError(reader));
        }
        bool innerFirst = true;
        while (reader.ok() && !reader.peek('}')) {
          if (!innerFirst && !reader.consume(',')) {
            return makeUnexpected(readerError(reader));
          }
          innerFirst = false;
          const std::string field = reader.parseString();
          if (!reader.consume(':')) {
            return makeUnexpected(readerError(reader));
          }
          if (field == "cores") {
            record.cores = static_cast<int>(reader.parseNumber());
          } else if (field == "totalCycles") {
            record.totalCycles = reader.parseNumber();
          } else if (field == "stallCycles") {
            record.stallCycles = reader.parseNumber();
          } else if (field == "makespan") {
            record.makespan = reader.parseNumber();
          } else if (field == "llcMisses") {
            record.llcMisses = reader.parseNumber();
          } else if (field == "coherenceMisses") {
            record.coherenceMisses = reader.parseNumber();
          } else if (field == "writebacks") {
            record.writebacks = reader.parseNumber();
          } else if (field == "rerouted") {
            record.reroutedRequests = reader.parseNumber();
          } else if (field == "faultRetries") {
            record.faultRetries = reader.parseNumber();
          } else if (field == "background") {
            record.backgroundRequests = reader.parseNumber();
          } else if (field == "throttledCycles") {
            record.throttledCycles = reader.parseNumber();
          } else if (field == "crc") {
            hasCrc = parseCrcHex(reader.parseString(), &storedCrc);
            if (reader.ok() && !hasCrc) {
              reader.fail("crc is not 8 hex digits");
            }
          } else {
            reader.fail("unknown run field \"" + field + "\"");
          }
        }
        reader.consume('}');
        if (!reader.ok()) {
          return makeUnexpected(readerError(reader));
        }
        if (version >= 2) {
          if (!hasCrc) {
            return makeUnexpected(
                crcError(recordOffset, "run record is missing its crc"));
          }
          const std::uint32_t computed = crc32(runPayload(record));
          if (computed != storedCrc) {
            return makeUnexpected(crcError(
                recordOffset, "run record crc mismatch (stored " +
                                  crcHex(storedCrc) + ", computed " +
                                  crcHex(computed) + ")"));
          }
        }
        state.runs.push_back(record);
      }
      reader.consume(']');
    } else if (key == "failures") {
      if (!reader.consume('[')) {
        return makeUnexpected(readerError(reader));
      }
      while (reader.ok() && !reader.peek(']')) {
        if (!state.failures.empty() && !reader.consume(',')) {
          return makeUnexpected(readerError(reader));
        }
        reader.skipWs();
        const std::size_t recordOffset = reader.offset();
        RunFailure failure;
        bool hasCrc = false;
        std::uint32_t storedCrc = 0;
        if (!reader.consume('{')) {
          return makeUnexpected(readerError(reader));
        }
        bool innerFirst = true;
        while (reader.ok() && !reader.peek('}')) {
          if (!innerFirst && !reader.consume(',')) {
            return makeUnexpected(readerError(reader));
          }
          innerFirst = false;
          const std::string field = reader.parseString();
          if (!reader.consume(':')) {
            return makeUnexpected(readerError(reader));
          }
          if (field == "cores") {
            failure.cores = static_cast<int>(reader.parseNumber());
          } else if (field == "attempts") {
            failure.attempts = static_cast<int>(reader.parseNumber());
          } else if (field == "recovered") {
            failure.recovered = reader.parseBool();
          } else if (field == "poolSize") {
            // Absent in pre-parallel checkpoints; RunFailure defaults to 1.
            failure.poolSize = static_cast<int>(reader.parseNumber());
          } else if (field == "kind") {
            // Absent in v1 checkpoints; RunFailure defaults to kException.
            const std::string kindText = reader.parseString();
            if (reader.ok() && !parseFailureKind(kindText, &failure.kind)) {
              reader.fail("unknown failure kind \"" + kindText + "\"");
            }
          } else if (field == "signal") {
            // Present only on crash records (format v2, crash-capable
            // builds); absent fields keep their zero defaults.
            failure.signal = static_cast<int>(reader.parseNumber());
          } else if (field == "rlimit") {
            failure.rlimit = reader.parseString();
          } else if (field == "stderrTail") {
            failure.stderrTail = reader.parseString();
          } else if (field == "error") {
            failure.error = reader.parseString();
          } else if (field == "crc") {
            hasCrc = parseCrcHex(reader.parseString(), &storedCrc);
            if (reader.ok() && !hasCrc) {
              reader.fail("crc is not 8 hex digits");
            }
          } else {
            reader.fail("unknown failure field \"" + field + "\"");
          }
        }
        reader.consume('}');
        if (!reader.ok()) {
          return makeUnexpected(readerError(reader));
        }
        if (version >= 2) {
          if (!hasCrc) {
            return makeUnexpected(
                crcError(recordOffset, "failure record is missing its crc"));
          }
          const std::uint32_t computed = crc32(failurePayload(failure));
          if (computed != storedCrc) {
            return makeUnexpected(crcError(
                recordOffset, "failure record crc mismatch (stored " +
                                  crcHex(storedCrc) + ", computed " +
                                  crcHex(computed) + ")"));
          }
        }
        state.failures.push_back(failure);
      }
      reader.consume(']');
    } else {
      reader.fail("unknown checkpoint key \"" + key + "\"");
    }
  }
  reader.consume('}');
  if (reader.ok() && !reader.atEnd()) {
    reader.fail("trailing bytes after the checkpoint object");
  }
  if (!reader.ok()) {
    return makeUnexpected(readerError(reader));
  }
  return state;
}

std::optional<SweepCheckpoint> SweepCheckpoint::parse(
    const std::string& json) {
  Expected<SweepCheckpoint, CheckpointError> result = parseChecked(json);
  if (!result) {
    return std::nullopt;
  }
  return std::move(*result);
}

bool SweepCheckpoint::save(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  const std::string body = toJson();
#if defined(__unix__) || defined(__APPLE__)
  // Durable variant of write-temp-then-rename: fsync the temp file before
  // the rename (so the rename can never expose a hole) and fsync the
  // containing directory after it (the rename itself lives in directory
  // metadata; without this a machine crash right after save() can roll
  // the path back to the previous — or no — checkpoint).
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return false;
  }
  std::size_t written = 0;
  while (written < body.size()) {
    const ssize_t n =
        ::write(fd, body.data() + written, body.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      std::remove(tmp.c_str());
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  const std::size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? std::string(".") : path.substr(0, slash + 1);
  const int dirFd = ::open(dir.c_str(), O_RDONLY);
  if (dirFd >= 0) {
    // Best-effort: some filesystems reject directory fsync; the rename
    // already succeeded, so refusal does not fail the save.
    ::fsync(dirFd);
    ::close(dirFd);
  }
  return true;
#else
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return false;
    }
    out << body;
    out.flush();
    if (!out) {
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
#endif
}

Expected<SweepCheckpoint, CheckpointError> SweepCheckpoint::loadChecked(
    const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) {
    CheckpointError err;
    err.kind = CheckpointErrorKind::kMissing;
    err.detail = "no checkpoint at " + path;
    return makeUnexpected(err);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    CheckpointError err;
    err.kind = CheckpointErrorKind::kIoError;
    err.detail = "cannot open " + path;
    return makeUnexpected(err);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    CheckpointError err;
    err.kind = CheckpointErrorKind::kIoError;
    err.detail = "read failed on " + path;
    return makeUnexpected(err);
  }
  return parseChecked(buffer.str());
}

Expected<SweepCheckpoint, CheckpointError> SweepCheckpoint::loadOrQuarantine(
    const std::string& path) {
  Expected<SweepCheckpoint, CheckpointError> result = loadChecked(path);
  if (result) {
    return result;
  }
  CheckpointError err = result.error();
  // Only parse-shaped failures prove the *file* is bad; a missing file is
  // a fresh start and an I/O error may be transient — neither is evidence
  // worth preserving.
  if (err.kind != CheckpointErrorKind::kMissing &&
      err.kind != CheckpointErrorKind::kIoError) {
    const std::string dest = path + ".corrupt";
    if (std::rename(path.c_str(), dest.c_str()) == 0) {
      err.quarantinedTo = dest;
    }
  }
  return makeUnexpected(std::move(err));
}

std::optional<SweepCheckpoint> SweepCheckpoint::load(const std::string& path) {
  Expected<SweepCheckpoint, CheckpointError> result = loadChecked(path);
  if (!result) {
    return std::nullopt;
  }
  return std::move(*result);
}

}  // namespace occm::analysis
