#include "analysis/sweep_state.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace occm::analysis {

namespace {

std::string jsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Minimal recursive-descent reader for the subset of JSON toJson emits
/// (objects, arrays, strings, numbers, booleans). Any deviation fails the
/// whole parse — a checkpoint is either trustworthy or ignored.
class Reader {
 public:
  explicit Reader(const std::string& text) : text_(text) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  void fail() noexcept { ok_ = false; }

  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skipWs();
    if (!ok_ || pos_ >= text_.size() || text_[pos_] != c) {
      ok_ = false;
      return false;
    }
    ++pos_;
    return true;
  }

  [[nodiscard]] bool peek(char c) {
    skipWs();
    return ok_ && pos_ < text_.size() && text_[pos_] == c;
  }

  std::string parseString() {
    if (!consume('"')) {
      return {};
    }
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              ok_ = false;
              return out;
            }
            const unsigned long code =
                std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
            pos_ += 4;
            c = static_cast<char>(code & 0xFFU);
            break;
          }
          default: c = esc; break;
        }
      }
      out += c;
    }
    if (!consume('"')) {
      ok_ = false;
    }
    return out;
  }

  double parseNumber() {
    skipWs();
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    errno = 0;
    const double value = std::strtod(begin, &end);
    if (end == begin || errno == ERANGE) {
      ok_ = false;
      return 0.0;
    }
    pos_ += static_cast<std::size_t>(end - begin);
    return value;
  }

  bool parseBool() {
    skipWs();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    ok_ = false;
    return false;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

bool SweepCheckpoint::matches(const std::string& programName,
                              const std::string& machineName,
                              std::uint64_t seedValue,
                              int threadCount) const {
  return program == programName && machine == machineName &&
         seed == seedValue && threads == threadCount;
}

const RunRecord* SweepCheckpoint::find(int cores) const {
  for (const RunRecord& r : runs) {
    if (r.cores == cores) {
      return &r;
    }
  }
  return nullptr;
}

std::string SweepCheckpoint::toJson() const {
  std::ostringstream out;
  out.precision(17);  // round-trips doubles exactly
  out << "{\n";
  out << "  \"program\": \"" << jsonEscape(program) << "\",\n";
  out << "  \"machine\": \"" << jsonEscape(machine) << "\",\n";
  // The seed is a string: a 64-bit value does not survive a double.
  out << "  \"seed\": \"" << seed << "\",\n";
  out << "  \"threads\": " << threads << ",\n";
  out << "  \"runs\": [";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunRecord& r = runs[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"cores\": " << r.cores
        << ", \"totalCycles\": " << r.totalCycles
        << ", \"stallCycles\": " << r.stallCycles
        << ", \"makespan\": " << r.makespan << "}";
  }
  out << (runs.empty() ? "],\n" : "\n  ],\n");
  out << "  \"failures\": [";
  for (std::size_t i = 0; i < failures.size(); ++i) {
    const RunFailure& f = failures[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"cores\": " << f.cores << ", \"attempts\": " << f.attempts
        << ", \"recovered\": " << (f.recovered ? "true" : "false")
        << ", \"poolSize\": " << f.poolSize
        << ", \"error\": \"" << jsonEscape(f.error) << "\"}";
  }
  out << (failures.empty() ? "]\n" : "\n  ]\n");
  out << "}\n";
  return out.str();
}

std::optional<SweepCheckpoint> SweepCheckpoint::parse(
    const std::string& json) {
  Reader reader(json);
  SweepCheckpoint state;
  if (!reader.consume('{')) {
    return std::nullopt;
  }
  bool first = true;
  while (reader.ok() && !reader.peek('}')) {
    if (!first && !reader.consume(',')) {
      return std::nullopt;
    }
    first = false;
    const std::string key = reader.parseString();
    if (!reader.consume(':')) {
      return std::nullopt;
    }
    if (key == "program") {
      state.program = reader.parseString();
    } else if (key == "machine") {
      state.machine = reader.parseString();
    } else if (key == "seed") {
      const std::string digits = reader.parseString();
      errno = 0;
      char* end = nullptr;
      state.seed = std::strtoull(digits.c_str(), &end, 10);
      if (end == digits.c_str() || *end != '\0' || errno == ERANGE) {
        reader.fail();
      }
    } else if (key == "threads") {
      state.threads = static_cast<int>(reader.parseNumber());
    } else if (key == "runs") {
      if (!reader.consume('[')) {
        return std::nullopt;
      }
      while (reader.ok() && !reader.peek(']')) {
        if (!state.runs.empty() && !reader.consume(',')) {
          return std::nullopt;
        }
        RunRecord record;
        if (!reader.consume('{')) {
          return std::nullopt;
        }
        bool innerFirst = true;
        while (reader.ok() && !reader.peek('}')) {
          if (!innerFirst && !reader.consume(',')) {
            return std::nullopt;
          }
          innerFirst = false;
          const std::string field = reader.parseString();
          if (!reader.consume(':')) {
            return std::nullopt;
          }
          if (field == "cores") {
            record.cores = static_cast<int>(reader.parseNumber());
          } else if (field == "totalCycles") {
            record.totalCycles = reader.parseNumber();
          } else if (field == "stallCycles") {
            record.stallCycles = reader.parseNumber();
          } else if (field == "makespan") {
            record.makespan = reader.parseNumber();
          } else {
            reader.fail();
          }
        }
        reader.consume('}');
        state.runs.push_back(record);
      }
      reader.consume(']');
    } else if (key == "failures") {
      if (!reader.consume('[')) {
        return std::nullopt;
      }
      while (reader.ok() && !reader.peek(']')) {
        if (!state.failures.empty() && !reader.consume(',')) {
          return std::nullopt;
        }
        RunFailure failure;
        if (!reader.consume('{')) {
          return std::nullopt;
        }
        bool innerFirst = true;
        while (reader.ok() && !reader.peek('}')) {
          if (!innerFirst && !reader.consume(',')) {
            return std::nullopt;
          }
          innerFirst = false;
          const std::string field = reader.parseString();
          if (!reader.consume(':')) {
            return std::nullopt;
          }
          if (field == "cores") {
            failure.cores = static_cast<int>(reader.parseNumber());
          } else if (field == "attempts") {
            failure.attempts = static_cast<int>(reader.parseNumber());
          } else if (field == "recovered") {
            failure.recovered = reader.parseBool();
          } else if (field == "poolSize") {
            // Absent in pre-parallel checkpoints; RunFailure defaults to 1.
            failure.poolSize = static_cast<int>(reader.parseNumber());
          } else if (field == "error") {
            failure.error = reader.parseString();
          } else {
            reader.fail();
          }
        }
        reader.consume('}');
        state.failures.push_back(failure);
      }
      reader.consume(']');
    } else {
      reader.fail();
    }
  }
  reader.consume('}');
  if (!reader.ok()) {
    return std::nullopt;
  }
  return state;
}

bool SweepCheckpoint::save(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return false;
    }
    out << toJson();
    if (!out) {
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<SweepCheckpoint> SweepCheckpoint::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

}  // namespace occm::analysis
