#include "analysis/sweep_task.hpp"

#include <utility>

#include "exec/process_runner.hpp"

namespace occm::analysis {

namespace {

/// Disarms the lifecycle's deadline on every exit path of one attempt.
class ArmedDeadline {
 public:
  explicit ArmedDeadline(RunLifecycle& lifecycle) : lifecycle_(lifecycle) {
    lifecycle_.arm();
  }
  ~ArmedDeadline() { lifecycle_.disarm(); }
  ArmedDeadline(const ArmedDeadline&) = delete;
  ArmedDeadline& operator=(const ArmedDeadline&) = delete;

 private:
  RunLifecycle& lifecycle_;
};

}  // namespace

RunRecord makeRunRecord(const perf::RunProfile& profile, int cores) {
  return RunRecord{cores,
                   profile.totalCyclesD(),
                   static_cast<double>(profile.counters.stallCycles),
                   static_cast<double>(profile.makespan),
                   static_cast<double>(profile.counters.llcMisses),
                   static_cast<double>(profile.coherenceMisses),
                   static_cast<double>(profile.writebacks),
                   static_cast<double>(profile.reroutedRequests),
                   static_cast<double>(profile.faultRetries),
                   static_cast<double>(profile.backgroundRequests),
                   static_cast<double>(profile.throttledCycles)};
}

std::optional<TaskOutcome> restoredOutcome(const SweepCheckpoint& restoredState,
                                           int cores) {
  const RunRecord* record = restoredState.find(cores);
  if (record == nullptr) {
    return std::nullopt;
  }
  // Restored run: everything the CSV exporter and the determinism
  // fingerprint read, so a resumed sweep is byte-identical to an
  // uninterrupted one.
  TaskOutcome outcome;
  perf::RunProfile profile;
  profile.program = restoredState.program;
  profile.machine = restoredState.machine;
  profile.threads = restoredState.threads;
  profile.activeCores = cores;
  profile.counters.totalCycles = static_cast<Cycles>(record->totalCycles);
  profile.counters.stallCycles = static_cast<Cycles>(record->stallCycles);
  profile.counters.llcMisses = static_cast<std::uint64_t>(record->llcMisses);
  profile.coherenceMisses =
      static_cast<std::uint64_t>(record->coherenceMisses);
  profile.writebacks = static_cast<std::uint64_t>(record->writebacks);
  profile.reroutedRequests =
      static_cast<std::uint64_t>(record->reroutedRequests);
  profile.faultRetries = static_cast<std::uint64_t>(record->faultRetries);
  profile.backgroundRequests =
      static_cast<std::uint64_t>(record->backgroundRequests);
  profile.throttledCycles = static_cast<Cycles>(record->throttledCycles);
  profile.makespan = static_cast<Cycles>(record->makespan);
  outcome.profile = std::move(profile);
  outcome.record = *record;
  outcome.restored = true;
  return outcome;
}

TaskOutcome runCoreCountTask(const RunTaskContext& context, int cores,
                             RunLifecycle& lifecycle) {
  TaskOutcome outcome;
  if (context.sweepCancel.stopRequested()) {
    // Graceful stop before the first attempt: stay pending (a resume
    // re-attempts this core count), record nothing.
    outcome.skipped = true;
    return outcome;
  }
  RunFailure failure;
  failure.cores = cores;
  failure.poolSize = context.poolSize;
  for (int attempt = 0; attempt < context.maxAttempts; ++attempt) {
    try {
      // The deadline covers the whole attempt, beforeRun included — a
      // hook that hangs is exactly the overrun the watchdog exists for.
      const ArmedDeadline deadline(lifecycle);
      if (context.beforeRun) {
        context.beforeRun(cores, attempt);
      }
      sim::SimConfig simConfig = *context.sim;
      // Retry under a perturbed seed: if the failure was input-shaped
      // (a pathological arrival pattern), a different deterministic
      // stream can clear it; attempt 0 keeps the configured seed.
      constexpr std::uint64_t kSeedStep = 0x9E3779B97F4A7C15ULL;
      simConfig.seed =
          context.sim->seed + static_cast<std::uint64_t>(attempt) * kSeedStep;
      simConfig.cycleBudget = context.cycleBudget;
      if (context.isolation.enabled) {
        // Isolated attempt: the child rebuilds the workload and simulator
        // from the same seeds (bit-identical inputs, bit-identical
        // profile); the parent-side token cannot cross the fork, so the
        // supervisor polls it and SIGKILLs the child instead of the
        // simulator unwinding cooperatively. The deterministic cycle
        // budget still aborts inside the child.
        exec::ProcessRunnerConfig runnerConfig;
        runnerConfig.limits.memoryBytes = context.isolation.memoryBytes;
        runnerConfig.limits.cpuSeconds = context.isolation.cpuSeconds;
        runnerConfig.stderrTailBytes = context.isolation.stderrTailBytes;
        if (lifecycle.active()) {
          runnerConfig.cancel = lifecycle.token();
        }
        exec::ChildOutcome child = exec::runInChild(
            [&context, &simConfig, cores] {
              workloads::WorkloadInstance instance =
                  workloads::makeWorkload(*context.workload);
              sim::MachineSim simulator(*context.machine, simConfig);
              return simulator.run(instance.threads, cores, instance.name);
            },
            runnerConfig);
        failure.attempts = attempt + 1;
        switch (child.status) {
          case exec::ChildStatus::kOk:
            if (attempt > 0) {
              failure.recovered = true;
              outcome.failure = failure;
            }
            outcome.record = makeRunRecord(child.profile, cores);
            outcome.profile = std::move(child.profile);
            return outcome;
          case exec::ChildStatus::kException:
            // Same retry semantics as an in-process throw; clear any
            // crash detail a previous attempt left behind.
            failure.error = std::move(child.error);
            failure.kind = RunFailureKind::kException;
            failure.signal = 0;
            failure.rlimit.clear();
            failure.stderrTail.clear();
            break;
          case exec::ChildStatus::kAborted: {
            failure.error = std::move(child.error);
            const bool overran =
                child.abortReason == AbortReason::kCycleBudget ||
                lifecycle.timedOut();
            failure.kind = overran ? RunFailureKind::kTimeout
                                   : RunFailureKind::kCancelled;
            outcome.failure = failure;
            return outcome;
          }
          case exec::ChildStatus::kKilled:
            // The supervisor SIGKILLed on the token: same deadline /
            // sweep-stop classification as a cooperative unwind.
            failure.error = std::move(child.error);
            failure.kind = lifecycle.timedOut() ? RunFailureKind::kTimeout
                                                : RunFailureKind::kCancelled;
            outcome.failure = failure;
            return outcome;
          case exec::ChildStatus::kCrash:
            // Crash containment: keep the evidence (signal, rlimit,
            // stderr tail) and retry under the perturbed seed, exactly
            // like an exception.
            failure.error = std::move(child.error);
            failure.kind = RunFailureKind::kCrash;
            failure.signal = child.signal;
            failure.rlimit = std::move(child.rlimit);
            failure.stderrTail = std::move(child.stderrTail);
            break;
        }
      } else {
        if (lifecycle.active()) {
          simConfig.cancel = lifecycle.token();
        }
        // A fresh instance per task (not a shared reset one): building
        // from the same spec seed yields bit-identical streams, and
        // private streams are what lets tasks run concurrently at all.
        workloads::WorkloadInstance instance =
            workloads::makeWorkload(*context.workload);
        sim::MachineSim simulator(*context.machine, simConfig);
        perf::RunProfile profile =
            simulator.run(instance.threads, cores, instance.name);
        failure.attempts = attempt + 1;
        if (attempt > 0) {
          failure.recovered = true;
          outcome.failure = failure;
        }
        outcome.record = makeRunRecord(profile, cores);
        outcome.profile = std::move(profile);
        return outcome;
      }
    } catch (const RunAborted& e) {
      // Lifecycle outcomes are terminal: a timed-out run would time out
      // again and a cancelled sweep wants to wind down, so neither is
      // retried. kCycleBudget and a fired wall deadline are both
      // "overran its limits"; everything else the token carried is the
      // sweep-wide stop.
      failure.error = e.what();
      failure.attempts = attempt + 1;
      const bool overran =
          e.reason() == AbortReason::kCycleBudget || lifecycle.timedOut();
      failure.kind =
          overran ? RunFailureKind::kTimeout : RunFailureKind::kCancelled;
      outcome.failure = failure;
      return outcome;
    } catch (const std::exception& e) {
      failure.error = e.what();
      failure.attempts = attempt + 1;
      failure.kind = RunFailureKind::kException;
      failure.signal = 0;
      failure.rlimit.clear();
      failure.stderrTail.clear();
    }
    if (context.sweepCancel.stopRequested()) {
      // Stop requested between attempts: don't burn retries on a sweep
      // that is winding down.
      failure.kind = RunFailureKind::kCancelled;
      outcome.failure = failure;
      return outcome;
    }
  }
  outcome.failure = failure;
  return outcome;
}

}  // namespace occm::analysis
