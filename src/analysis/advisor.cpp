#include "analysis/advisor.hpp"

#include <string>

#include "analysis/experiment.hpp"

namespace occm::analysis {

Expected<AdvisorModel, model::FitError> fitAdvisorModel(
    const AdvisorFitConfig& config) {
  AdvisorModel out;
  out.shape = model::shapeOf(config.machine);
  out.fitCores = model::defaultFitCores(out.shape);

  SweepConfig sweep;
  sweep.machine = config.machine;
  sweep.workload = config.workload;
  sweep.sim = config.sim;
  sweep.coreCounts = out.fitCores;
  sweep.maxAttempts = config.maxAttempts;
  sweep.parallel.workers = config.workers;
  sweep.cancel = config.cancel;
  sweep.beforeRun = config.beforeRun;

  const SweepResult result = runSweep(sweep);
  if (result.stopped) {
    return makeUnexpected(model::FitError{
        model::FitErrorKind::kTooFewPoints,
        "fit sweep cancelled with " + std::to_string(result.profiles.size()) +
            " of " + std::to_string(out.fitCores.size()) +
            " measurements completed",
        0});
  }
  out.measuredRuns = result.profiles.size();

  auto fitted =
      model::ContentionModel::tryFit(out.shape, result.points(), config.options);
  if (!fitted) {
    model::FitError error = fitted.error();
    // Name the runs that never completed: a permanently failed measurement
    // is the usual cause of a too-few-points / missing-anchor diagnosis.
    const std::vector<int> pending = result.pendingCoreCounts();
    if (!pending.empty()) {
      error.message += " (unmeasured core counts:";
      for (int n : pending) {
        error.message += " " + std::to_string(n);
      }
      error.message += ")";
    }
    return makeUnexpected(error);
  }
  out.model = *fitted;
  return out;
}

}  // namespace occm::analysis
