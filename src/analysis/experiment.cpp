#include "analysis/experiment.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <future>
#include <iomanip>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "analysis/distributed_sweep.hpp"
#include "common/cancellation.hpp"
#include "common/error.hpp"
#include "exec/process_runner.hpp"
#include "exec/thread_pool.hpp"

namespace occm::analysis {

namespace {

/// "1, 2, 12" — for contract-violation messages on lookups that miss.
std::string joinCores(const std::set<int>& cores) {
  std::string out;
  for (int c : cores) {
    if (!out.empty()) {
      out += ", ";
    }
    out += std::to_string(c);
  }
  return out.empty() ? "none" : out;
}

std::string coreCountsPresent(const std::vector<perf::RunProfile>& profiles) {
  std::set<int> cores;
  for (const perf::RunProfile& p : profiles) {
    cores.insert(p.activeCores);
  }
  return joinCores(cores);
}

/// Suffix naming what a partially-merged sweep is missing and the pool
/// size that produced it — empty when nothing is pending.
std::string pendingSuffix(const SweepResult& sweep) {
  const std::vector<int> pending = sweep.pendingCoreCounts();
  if (pending.empty()) {
    return {};
  }
  std::set<int> cores(pending.begin(), pending.end());
  return "; still pending: " + joinCores(cores) + " (sweep pool size " +
         std::to_string(sweep.requestedWorkers) + ")";
}

/// One per sweep task: the cancellation source the watchdog (or a relayed
/// sweep-wide stop) fires into the run, plus the armed deadline for the
/// attempt in flight. A deque because std::atomic makes the slot
/// immovable.
struct LifecycleSlot {
  CancellationSource source;
  std::atomic<bool> timedOut{false};
  /// Deadline of the attempt in flight; guarded by the watchdog mutex.
  std::optional<std::chrono::steady_clock::time_point> deadline;
};

/// Watchdog for per-run wall deadlines and sweep-wide cancellation. One
/// thread per sweep (started only when either feature is configured)
/// polls the slots: an expired deadline marks its slot timed-out and
/// fires the slot's cancellation source; a sweep-level stop request is
/// relayed into every slot. The simulator then unwinds at its next
/// event-loop cancellation point — the watchdog never touches run state,
/// so completed runs stay bit-deterministic.
class Watchdog {
 public:
  Watchdog(double wallSeconds, CancellationToken sweepToken,
           std::size_t slotCount)
      : wallSeconds_(wallSeconds), sweepToken_(std::move(sweepToken)),
        slots_(slotCount),
        active_(wallSeconds > 0.0 || sweepToken_.valid()) {
    if (active_) {
      thread_ = std::thread([this] { loop(); });
    }
  }

  ~Watchdog() {
    if (thread_.joinable()) {
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
      }
      cv_.notify_all();
      thread_.join();
    }
  }

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// True when a thread is watching (a wall deadline or sweep token is
  /// configured); when false, tokenFor() still works but never fires.
  [[nodiscard]] bool active() const noexcept { return active_; }

  [[nodiscard]] CancellationToken tokenFor(std::size_t slot) const {
    return slots_[slot].source.token();
  }

  [[nodiscard]] bool timedOut(std::size_t slot) const noexcept {
    return slots_[slot].timedOut.load(std::memory_order_relaxed);
  }

  /// Arms slot's deadline at now + wallSeconds (no-op without one).
  void arm(std::size_t slot) {
    if (wallSeconds_ <= 0.0) {
      return;
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    slots_[slot].deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(wallSeconds_));
  }

  void disarm(std::size_t slot) {
    if (wallSeconds_ <= 0.0) {
      return;
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    slots_[slot].deadline.reset();
  }

 private:
  void loop() {
    // Poll fast enough to bound deadline overshoot to a fraction of the
    // deadline itself, but never busier than 1 kHz.
    using std::chrono::milliseconds;
    const auto poll =
        wallSeconds_ > 0.0
            ? std::clamp(milliseconds(static_cast<long>(
                             wallSeconds_ * 1000.0 / 4.0)),
                         milliseconds(1), milliseconds(20))
            : milliseconds(5);
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
      cv_.wait_for(lock, poll, [this] { return stop_; });
      if (stop_) {
        return;
      }
      const bool sweepStop = sweepToken_.stopRequested();
      const auto now = std::chrono::steady_clock::now();
      for (LifecycleSlot& slot : slots_) {
        if (sweepStop) {
          slot.source.requestStop();
        }
        if (slot.deadline.has_value() && now >= *slot.deadline) {
          slot.timedOut.store(true, std::memory_order_relaxed);
          slot.source.requestStop();
          slot.deadline.reset();
        }
      }
    }
  }

  const double wallSeconds_;
  const CancellationToken sweepToken_;
  std::deque<LifecycleSlot> slots_;
  const bool active_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

/// Adapts one watchdog slot to the RunLifecycle interface the shared
/// attempt loop (analysis/sweep_task) consumes. The distributed worker
/// runs the same loop behind a NullLifecycle — lease expiry is the hang
/// recovery across a fleet.
class WatchdogLifecycle final : public RunLifecycle {
 public:
  WatchdogLifecycle(Watchdog& watchdog, std::size_t slot)
      : watchdog_(watchdog), slot_(slot) {}
  void arm() override { watchdog_.arm(slot_); }
  void disarm() override { watchdog_.disarm(slot_); }
  [[nodiscard]] bool timedOut() const override {
    return watchdog_.timedOut(slot_);
  }
  [[nodiscard]] CancellationToken token() const override {
    return watchdog_.tokenFor(slot_);
  }
  [[nodiscard]] bool active() const override { return watchdog_.active(); }

 private:
  Watchdog& watchdog_;
  std::size_t slot_;
};

/// Runs one core count: restore from the checkpoint when possible,
/// otherwise hand the shared attempt loop (analysis/sweep_task) a context
/// built from the sweep's configuration.
TaskOutcome runSweepTask(const SweepConfig& config,
                         const workloads::WorkloadSpec& spec,
                         const SweepCheckpoint& restoredState, int cores,
                         int maxAttempts, int poolSize, Watchdog& watchdog,
                         std::size_t slot) {
  if (std::optional<TaskOutcome> restored =
          restoredOutcome(restoredState, cores)) {
    return std::move(*restored);
  }
  RunTaskContext context;
  context.machine = &config.machine;
  context.workload = &spec;
  context.sim = &config.sim;
  context.cycleBudget = config.limits.cycleBudget;
  context.isolation = config.isolation;
  context.maxAttempts = maxAttempts;
  context.poolSize = poolSize;
  context.sweepCancel = config.cancel;
  context.beforeRun = config.beforeRun;
  WatchdogLifecycle lifecycle(watchdog, slot);
  return runCoreCountTask(context, cores, lifecycle);
}

/// Serializes checkpoint writes and keeps their contents deterministic: a
/// snapshot is rebuilt from the restored state plus the completed
/// outcomes in request order, so the file never depends on which task
/// finished first. Records loaded from a prior checkpoint are preserved
/// even when this run requested a different core-count subset.
class CheckpointWriter {
 public:
  CheckpointWriter(const SweepConfig& config, SweepCheckpoint restoredState,
                   const std::vector<TaskOutcome>& outcomes)
      : path_(config.checkpointPath), base_(std::move(restoredState)),
        outcomes_(outcomes), done_(outcomes.size(), false) {}

  /// Marks task `index` complete and persists the snapshot (no-op without
  /// a checkpoint path). Thread-safe.
  void commit(std::size_t index) {
    if (path_.empty()) {
      return;
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    done_[index] = true;
    SweepCheckpoint snapshot = base_;
    for (std::size_t i = 0; i < outcomes_.size(); ++i) {
      if (!done_[i]) {
        continue;
      }
      const TaskOutcome& outcome = outcomes_[i];
      // Restored outcomes are already in the base snapshot.
      if (outcome.record.has_value() && !outcome.restored) {
        snapshot.runs.push_back(*outcome.record);
      }
      // Timeouts and cancellations are lifecycle outcomes of *this*
      // invocation: persisting them would pile up stale records across
      // resumes that are expected to re-attempt those core counts.
      // Exceptions and crashes are evidence about the run itself, so
      // both persist.
      if (outcome.failure.has_value() &&
          (outcome.failure->kind == RunFailureKind::kException ||
           outcome.failure->kind == RunFailureKind::kCrash)) {
        snapshot.failures.push_back(*outcome.failure);
      }
    }
    snapshot.save(path_);
  }

 private:
  std::mutex mutex_;
  const std::string path_;
  const SweepCheckpoint base_;
  const std::vector<TaskOutcome>& outcomes_;
  std::vector<bool> done_;
};

}  // namespace

std::vector<model::MeasuredPoint> SweepResult::points() const {
  std::vector<model::MeasuredPoint> out;
  out.reserve(profiles.size());
  for (const perf::RunProfile& p : profiles) {
    out.push_back({p.activeCores, p.totalCyclesD()});
  }
  return out;
}

std::vector<int> SweepResult::pendingCoreCounts() const {
  std::vector<int> pending;
  for (int cores : requestedCoreCounts) {
    bool present = false;
    for (const perf::RunProfile& p : profiles) {
      present = present || p.activeCores == cores;
    }
    if (!present) {
      pending.push_back(cores);
    }
  }
  return pending;
}

const perf::RunProfile& SweepResult::at(int cores) const {
  for (const perf::RunProfile& p : profiles) {
    if (p.activeCores == cores) {
      return p;
    }
  }
  throw ContractViolation(
      "sweep has no run at n = " + std::to_string(cores) +
      "; core counts present: " + coreCountsPresent(profiles) +
      pendingSuffix(*this));
}

std::vector<double> SweepResult::omegas() const {
  bool haveC1 = false;
  for (const perf::RunProfile& p : profiles) {
    haveC1 = haveC1 || p.activeCores == 1;
  }
  if (!haveC1) {
    throw ContractViolation(
        "omega(n) needs the sweep's 1-core run as its C(1) anchor; core "
        "counts present: " + coreCountsPresent(profiles) +
        pendingSuffix(*this));
  }
  const double c1 = at(1).totalCyclesD();
  std::vector<double> out;
  out.reserve(profiles.size());
  for (const perf::RunProfile& p : profiles) {
    out.push_back(model::degreeOfContention(p.totalCyclesD(), c1));
  }
  return out;
}

std::string SweepResult::diagnostics() const {
  std::ostringstream out;
  out << profiles.size() << " run(s) completed";
  if (restoredRuns > 0) {
    out << " (" << restoredRuns << " restored from checkpoint)";
  }
  if (requestedWorkers > 1) {
    out << ", pool size " << requestedWorkers;
  }
  if (!poolStats.workers.empty() && poolStats.totalTasks() > 0) {
    // Parallel-efficiency one-liner: how evenly the pool shared the load
    // and whether producers ever hit backpressure — readable without
    // opening a Chrome trace.
    std::uint64_t busiest = 0;
    std::uint64_t totalBusyNs = 0;
    for (const exec::WorkerStats& w : poolStats.workers) {
      busiest = std::max(busiest, w.busyNs);
      totalBusyNs += w.busyNs;
    }
    out << "\n  pool: " << poolStats.totalTasks() << " task(s) over "
        << poolStats.workers.size() << " worker(s)";
    if (busiest > 0) {
      const double balance =
          static_cast<double>(totalBusyNs) /
          (static_cast<double>(busiest) *
           static_cast<double>(poolStats.workers.size()));
      out << ", balance " << std::fixed << std::setprecision(2) << balance
          << std::defaultfloat << std::setprecision(6);
    }
    out << ", peak queue depth " << poolStats.maxQueueDepth;
    if (poolStats.submitBlockNs > 0) {
      out << ", submit blocked "
          << poolStats.submitBlockNs / 1'000'000 << " ms";
    }
  }
  if (dist.used) {
    out << "\n  distributed: " << dist.workersSeen << " worker(s), "
        << dist.fleetCompleted << " task(s) via fleet";
    if (dist.leases.leasesExpired > 0) {
      out << ", " << dist.leases.leasesExpired << " lease expirie(s)";
    }
    if (dist.leases.redispatches > 0) {
      out << ", " << dist.leases.redispatches << " re-dispatch(es)";
    }
    if (dist.leases.speculativeLeases > 0) {
      out << ", " << dist.leases.speculativeLeases << " speculative lease(s)";
    }
    if (dist.leases.duplicatesDiscarded > 0) {
      out << ", " << dist.leases.duplicatesDiscarded
          << " duplicate(s) discarded";
    }
    if (dist.leases.workersEvicted > 0) {
      out << ", " << dist.leases.workersEvicted << " worker(s) evicted";
    }
    if (dist.degradedToLocal) {
      out << ", degraded to local";
    }
    if (!dist.error.empty()) {
      out << " (" << dist.error << ")";
    }
  }
  if (stopped) {
    out << ", stopped early (cancellation requested)";
  }
  const std::vector<int> pending = pendingCoreCounts();
  if (!pending.empty()) {
    std::set<int> cores(pending.begin(), pending.end());
    out << ", still pending: " << joinCores(cores);
  }
  if (!checkpointWarning.empty()) {
    out << "\n  checkpoint: " << checkpointWarning;
  }
  if (failures.empty()) {
    out << (checkpointWarning.empty() ? ", no failures" : "\n  no failures");
    return out.str();
  }
  out << (checkpointWarning.empty() ? ", " : "\n  ")
      << failures.size() << " failure record(s):";
  for (const RunFailure& f : failures) {
    out << "\n  n = " << f.cores << ": " << f.attempts << " attempt(s), "
        << (f.recovered ? "recovered" : "gave up");
    if (f.kind != RunFailureKind::kException) {
      out << " [" << toString(f.kind) << "]";
    }
    out << " — " << f.error;
  }
  return out.str();
}

perf::RunProfile runOnce(const topology::MachineSpec& machine,
                         const workloads::WorkloadSpec& workload,
                         int activeCores, const sim::SimConfig& simConfig) {
  workloads::WorkloadSpec spec = workload;
  if (spec.threads <= 0) {
    spec.threads = machine.logicalCores();
  }
  workloads::WorkloadInstance instance = workloads::makeWorkload(spec);
  sim::MachineSim simulator(machine, simConfig);
  return simulator.run(instance.threads, activeCores, instance.name);
}

SweepResult runSweep(const SweepConfig& config) {
  workloads::WorkloadSpec spec = config.workload;
  if (spec.threads <= 0) {
    spec.threads = config.machine.logicalCores();
  }
  // Invalid (program, class) pairs fail loudly here instead of surfacing
  // as per-task RunFailures on every core count.
  OCCM_REQUIRE_MSG(
      workloads::classValidFor(spec.program, spec.problemClass),
      "problem class not valid for this program");
  OCCM_REQUIRE_MSG(!config.isolation.enabled ||
                       exec::processIsolationSupported(),
                   "process isolation is not supported on this platform");
  // An injected crash executed in-process would take down the harness
  // itself — exactly what isolation exists to contain.
  OCCM_REQUIRE_MSG(!config.sim.faultPlan.hasCrash() ||
                       config.isolation.enabled,
                   "crash-injection fault plans require "
                   "SweepConfig::isolation.enabled");
  std::vector<int> coreCounts = config.coreCounts;
  if (coreCounts.empty()) {
    for (int n = 1; n <= config.machine.logicalCores(); ++n) {
      coreCounts.push_back(n);
    }
  }

  SweepCheckpoint identity;
  identity.program = workloads::workloadName(spec.program, spec.problemClass);
  identity.machine = config.machine.name;
  identity.seed = config.sim.seed;
  identity.threads = spec.threads;
  SweepCheckpoint restoredState = identity;
  std::string checkpointWarning;
  if (!config.checkpointPath.empty()) {
    // Tolerant restore: a checkpoint that exists but cannot be trusted
    // (truncated, garbage, version-skewed, CRC-failed) is quarantined to
    // <path>.corrupt and the sweep starts fresh; only its diagnosis
    // survives, as SweepResult::checkpointWarning.
    auto loaded = SweepCheckpoint::loadOrQuarantine(config.checkpointPath);
    if (loaded) {
      if (loaded->matches(identity.program, identity.machine, identity.seed,
                          identity.threads)) {
        restoredState = std::move(*loaded);
      }
    } else if (loaded.error().kind != CheckpointErrorKind::kMissing) {
      checkpointWarning = loaded.error().message();
    }
  }

  const int maxAttempts = std::max(1, config.maxAttempts);
  const int workers = exec::resolveWorkerCount(config.parallel.workers);
  exec::ThreadPoolStats poolStats;

  std::vector<TaskOutcome> outcomes(coreCounts.size());
  CheckpointWriter checkpoint(config, restoredState, outcomes);
  // One watchdog (and one slot per task) for the whole sweep; its thread
  // only exists when a wall deadline or a sweep token is configured.
  Watchdog watchdog(config.limits.wallSeconds, config.cancel,
                    coreCounts.size());

  DistributedStats distStats;
  std::vector<RunFailure> distIncidents;
  if (config.distributed.listen) {
    // Fleet phase: restore first (finished work never crosses the wire),
    // then shard the rest across connected workers. Whatever the fleet
    // leaves unsettled — grace window expired, leases abandoned,
    // cancellation — falls through to the local path below.
    for (std::size_t i = 0; i < coreCounts.size(); ++i) {
      if (std::optional<TaskOutcome> restored =
              restoredOutcome(restoredState, coreCounts[i])) {
        outcomes[i] = std::move(*restored);
        checkpoint.commit(i);
      }
    }
    DistributedPhaseOutcome phase = runDistributedPhase(
        config, spec, coreCounts, outcomes,
        [&checkpoint](std::size_t index) { checkpoint.commit(index); });
    distStats = std::move(phase.stats);
    distIncidents = std::move(phase.incidents);
  }

  // Local phase over whatever is still unsettled — everything when the
  // distributed phase did not run, the leftovers (or nothing) when it
  // did. runSweepTask observes a fired sweep token itself, so a cancelled
  // fleet leaves these tasks pending rather than re-running them.
  std::vector<std::size_t> pendingTasks;
  pendingTasks.reserve(coreCounts.size());
  for (std::size_t i = 0; i < coreCounts.size(); ++i) {
    const TaskOutcome& outcome = outcomes[i];
    if (!outcome.profile.has_value() && !outcome.failure.has_value() &&
        !outcome.skipped) {
      pendingTasks.push_back(i);
    }
  }
  if (distStats.used && !pendingTasks.empty() &&
      !config.cancel.stopRequested()) {
    distStats.degradedToLocal = true;
  }
  if (workers == 1 || pendingTasks.size() <= 1) {
    // Serial path: run inline on the calling thread, in request order —
    // no pool, no synchronization beyond the (still deterministic)
    // checkpoint writer.
    for (const std::size_t i : pendingTasks) {
      outcomes[i] = runSweepTask(config, spec, restoredState, coreCounts[i],
                                 maxAttempts, workers, watchdog, i);
      checkpoint.commit(i);
    }
  } else {
    exec::ThreadPool pool({workers, pendingTasks.size()});
    std::vector<std::future<void>> joins;
    joins.reserve(pendingTasks.size());
    for (const std::size_t i : pendingTasks) {
      joins.push_back(pool.submit([&, i] {
        outcomes[i] = runSweepTask(config, spec, restoredState,
                                   coreCounts[i], maxAttempts, workers,
                                   watchdog, i);
        checkpoint.commit(i);
      }));
    }
    for (std::future<void>& join : joins) {
      join.get();  // tasks catch run failures; nothing should rethrow
    }
    // Snapshot after every join: all tasks have finished, so the stats
    // describe the completed sweep, not a racing mid-flight view.
    poolStats = pool.stats();
  }

  // Deterministic merge: request order, independent of completion order.
  SweepResult result;
  result.requestedWorkers = workers;
  result.requestedCoreCounts = coreCounts;
  result.checkpointWarning = std::move(checkpointWarning);
  result.poolStats = std::move(poolStats);
  result.profiles.reserve(coreCounts.size());
  for (TaskOutcome& outcome : outcomes) {
    result.stopped = result.stopped || outcome.skipped;
    if (outcome.failure.has_value()) {
      result.stopped =
          result.stopped || outcome.failure->kind == RunFailureKind::kCancelled;
      result.failures.push_back(std::move(*outcome.failure));
    }
    if (outcome.profile.has_value()) {
      result.profiles.push_back(std::move(*outcome.profile));
      result.restoredRuns += outcome.restored ? 1 : 0;
    }
  }
  // Fleet evidence rides behind the per-task records. An incident whose
  // task ended up with a profile anyway (re-dispatch or local fallback
  // won) is marked recovered now that every path has run.
  for (RunFailure& incident : distIncidents) {
    if (incident.cores > 0 && !incident.recovered) {
      for (const perf::RunProfile& p : result.profiles) {
        incident.recovered = incident.recovered ||
                             p.activeCores == incident.cores;
      }
    }
    result.failures.push_back(std::move(incident));
  }
  result.dist = std::move(distStats);
  result.stopped = result.stopped || config.cancel.stopRequested();
  return result;
}

std::vector<model::MeasuredPoint> pointsAt(const SweepResult& sweep,
                                           const std::vector<int>& coreCounts) {
  std::vector<model::MeasuredPoint> out;
  out.reserve(coreCounts.size());
  for (int cores : coreCounts) {
    const perf::RunProfile& p = sweep.at(cores);
    out.push_back({p.activeCores, p.totalCyclesD()});
  }
  return out;
}

}  // namespace occm::analysis
