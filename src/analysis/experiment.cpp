#include "analysis/experiment.hpp"

#include "common/error.hpp"

namespace occm::analysis {

std::vector<model::MeasuredPoint> SweepResult::points() const {
  std::vector<model::MeasuredPoint> out;
  out.reserve(profiles.size());
  for (const perf::RunProfile& p : profiles) {
    out.push_back({p.activeCores, p.totalCyclesD()});
  }
  return out;
}

const perf::RunProfile& SweepResult::at(int cores) const {
  for (const perf::RunProfile& p : profiles) {
    if (p.activeCores == cores) {
      return p;
    }
  }
  OCCM_REQUIRE_MSG(false, "no run at the requested core count");
  return profiles.front();  // unreachable
}

std::vector<double> SweepResult::omegas() const {
  const double c1 = at(1).totalCyclesD();
  std::vector<double> out;
  out.reserve(profiles.size());
  for (const perf::RunProfile& p : profiles) {
    out.push_back(model::degreeOfContention(p.totalCyclesD(), c1));
  }
  return out;
}

perf::RunProfile runOnce(const topology::MachineSpec& machine,
                         const workloads::WorkloadSpec& workload,
                         int activeCores, const sim::SimConfig& simConfig) {
  workloads::WorkloadSpec spec = workload;
  if (spec.threads <= 0) {
    spec.threads = machine.logicalCores();
  }
  workloads::WorkloadInstance instance = workloads::makeWorkload(spec);
  sim::MachineSim simulator(machine, simConfig);
  return simulator.run(instance.threads, activeCores, instance.name);
}

SweepResult runSweep(const SweepConfig& config) {
  workloads::WorkloadSpec spec = config.workload;
  if (spec.threads <= 0) {
    spec.threads = config.machine.logicalCores();
  }
  std::vector<int> coreCounts = config.coreCounts;
  if (coreCounts.empty()) {
    for (int n = 1; n <= config.machine.logicalCores(); ++n) {
      coreCounts.push_back(n);
    }
  }
  workloads::WorkloadInstance instance = workloads::makeWorkload(spec);
  sim::MachineSim simulator(config.machine, config.sim);
  SweepResult result;
  result.profiles.reserve(coreCounts.size());
  for (int cores : coreCounts) {
    result.profiles.push_back(
        simulator.run(instance.threads, cores, instance.name));
  }
  return result;
}

std::vector<model::MeasuredPoint> pointsAt(const SweepResult& sweep,
                                           const std::vector<int>& coreCounts) {
  std::vector<model::MeasuredPoint> out;
  out.reserve(coreCounts.size());
  for (int cores : coreCounts) {
    const perf::RunProfile& p = sweep.at(cores);
    out.push_back({p.activeCores, p.totalCyclesD()});
  }
  return out;
}

}  // namespace occm::analysis
