#include "analysis/experiment.hpp"

#include <algorithm>
#include <exception>
#include <set>
#include <sstream>
#include <utility>

#include "common/error.hpp"

namespace occm::analysis {

namespace {

/// "1, 2, 12" — for contract-violation messages on lookups that miss.
std::string coreCountsPresent(const std::vector<perf::RunProfile>& profiles) {
  std::set<int> cores;
  for (const perf::RunProfile& p : profiles) {
    cores.insert(p.activeCores);
  }
  std::string out;
  for (int c : cores) {
    if (!out.empty()) {
      out += ", ";
    }
    out += std::to_string(c);
  }
  return out.empty() ? "none" : out;
}

}  // namespace

std::vector<model::MeasuredPoint> SweepResult::points() const {
  std::vector<model::MeasuredPoint> out;
  out.reserve(profiles.size());
  for (const perf::RunProfile& p : profiles) {
    out.push_back({p.activeCores, p.totalCyclesD()});
  }
  return out;
}

const perf::RunProfile& SweepResult::at(int cores) const {
  for (const perf::RunProfile& p : profiles) {
    if (p.activeCores == cores) {
      return p;
    }
  }
  throw ContractViolation(
      "sweep has no run at n = " + std::to_string(cores) +
      "; core counts present: " + coreCountsPresent(profiles));
}

std::vector<double> SweepResult::omegas() const {
  bool haveC1 = false;
  for (const perf::RunProfile& p : profiles) {
    haveC1 = haveC1 || p.activeCores == 1;
  }
  if (!haveC1) {
    throw ContractViolation(
        "omega(n) needs the sweep's 1-core run as its C(1) anchor; core "
        "counts present: " + coreCountsPresent(profiles));
  }
  const double c1 = at(1).totalCyclesD();
  std::vector<double> out;
  out.reserve(profiles.size());
  for (const perf::RunProfile& p : profiles) {
    out.push_back(model::degreeOfContention(p.totalCyclesD(), c1));
  }
  return out;
}

std::string SweepResult::diagnostics() const {
  std::ostringstream out;
  out << profiles.size() << " run(s) completed";
  if (restoredRuns > 0) {
    out << " (" << restoredRuns << " restored from checkpoint)";
  }
  if (failures.empty()) {
    out << ", no failures";
    return out.str();
  }
  out << ", " << failures.size() << " failure record(s):";
  for (const RunFailure& f : failures) {
    out << "\n  n = " << f.cores << ": " << f.attempts << " attempt(s), "
        << (f.recovered ? "recovered" : "gave up") << " — " << f.error;
  }
  return out.str();
}

perf::RunProfile runOnce(const topology::MachineSpec& machine,
                         const workloads::WorkloadSpec& workload,
                         int activeCores, const sim::SimConfig& simConfig) {
  workloads::WorkloadSpec spec = workload;
  if (spec.threads <= 0) {
    spec.threads = machine.logicalCores();
  }
  workloads::WorkloadInstance instance = workloads::makeWorkload(spec);
  sim::MachineSim simulator(machine, simConfig);
  return simulator.run(instance.threads, activeCores, instance.name);
}

SweepResult runSweep(const SweepConfig& config) {
  workloads::WorkloadSpec spec = config.workload;
  if (spec.threads <= 0) {
    spec.threads = config.machine.logicalCores();
  }
  std::vector<int> coreCounts = config.coreCounts;
  if (coreCounts.empty()) {
    for (int n = 1; n <= config.machine.logicalCores(); ++n) {
      coreCounts.push_back(n);
    }
  }
  workloads::WorkloadInstance instance = workloads::makeWorkload(spec);

  SweepCheckpoint state;
  state.program = instance.name;
  state.machine = config.machine.name;
  state.seed = config.sim.seed;
  state.threads = spec.threads;
  if (!config.checkpointPath.empty()) {
    if (auto loaded = SweepCheckpoint::load(config.checkpointPath);
        loaded.has_value() &&
        loaded->matches(state.program, state.machine, state.seed,
                        state.threads)) {
      state = std::move(*loaded);
    }
  }

  SweepResult result;
  result.profiles.reserve(coreCounts.size());
  const int maxAttempts = std::max(1, config.maxAttempts);
  for (int cores : coreCounts) {
    if (const RunRecord* record = state.find(cores)) {
      // Restored run: the lightweight counters are all the model needs.
      perf::RunProfile profile;
      profile.program = state.program;
      profile.machine = state.machine;
      profile.threads = state.threads;
      profile.activeCores = cores;
      profile.counters.totalCycles = static_cast<Cycles>(record->totalCycles);
      profile.counters.stallCycles = static_cast<Cycles>(record->stallCycles);
      profile.makespan = static_cast<Cycles>(record->makespan);
      result.profiles.push_back(std::move(profile));
      ++result.restoredRuns;
      continue;
    }
    RunFailure failure;
    failure.cores = cores;
    bool completed = false;
    for (int attempt = 0; attempt < maxAttempts && !completed; ++attempt) {
      try {
        if (config.beforeRun) {
          config.beforeRun(cores, attempt);
        }
        sim::SimConfig simConfig = config.sim;
        // Retry under a perturbed seed: if the failure was input-shaped
        // (a pathological arrival pattern), a different deterministic
        // stream can clear it; attempt 0 keeps the configured seed.
        constexpr std::uint64_t kSeedStep = 0x9E3779B97F4A7C15ULL;
        simConfig.seed =
            config.sim.seed + static_cast<std::uint64_t>(attempt) * kSeedStep;
        sim::MachineSim simulator(config.machine, simConfig);
        perf::RunProfile profile =
            simulator.run(instance.threads, cores, instance.name);
        failure.attempts = attempt + 1;
        if (attempt > 0) {
          failure.recovered = true;
          result.failures.push_back(failure);
          state.failures.push_back(failure);
        }
        state.runs.push_back({cores, profile.totalCyclesD(),
                              static_cast<double>(profile.counters.stallCycles),
                              static_cast<double>(profile.makespan)});
        result.profiles.push_back(std::move(profile));
        completed = true;
      } catch (const std::exception& e) {
        failure.error = e.what();
        failure.attempts = attempt + 1;
      }
    }
    if (!completed) {
      result.failures.push_back(failure);
      state.failures.push_back(failure);
    }
    if (!config.checkpointPath.empty()) {
      state.save(config.checkpointPath);
    }
  }
  return result;
}

std::vector<model::MeasuredPoint> pointsAt(const SweepResult& sweep,
                                           const std::vector<int>& coreCounts) {
  std::vector<model::MeasuredPoint> out;
  out.reserve(coreCounts.size());
  for (int cores : coreCounts) {
    const perf::RunProfile& p = sweep.at(cores);
    out.push_back({p.activeCores, p.totalCyclesD()});
  }
  return out;
}

}  // namespace occm::analysis
