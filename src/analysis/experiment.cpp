#include "analysis/experiment.hpp"

#include <algorithm>
#include <exception>
#include <future>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "exec/thread_pool.hpp"

namespace occm::analysis {

namespace {

/// "1, 2, 12" — for contract-violation messages on lookups that miss.
std::string joinCores(const std::set<int>& cores) {
  std::string out;
  for (int c : cores) {
    if (!out.empty()) {
      out += ", ";
    }
    out += std::to_string(c);
  }
  return out.empty() ? "none" : out;
}

std::string coreCountsPresent(const std::vector<perf::RunProfile>& profiles) {
  std::set<int> cores;
  for (const perf::RunProfile& p : profiles) {
    cores.insert(p.activeCores);
  }
  return joinCores(cores);
}

/// Suffix naming what a partially-merged sweep is missing and the pool
/// size that produced it — empty when nothing is pending.
std::string pendingSuffix(const SweepResult& sweep) {
  const std::vector<int> pending = sweep.pendingCoreCounts();
  if (pending.empty()) {
    return {};
  }
  std::set<int> cores(pending.begin(), pending.end());
  return "; still pending: " + joinCores(cores) + " (sweep pool size " +
         std::to_string(sweep.requestedWorkers) + ")";
}

/// Everything one (core count) task produces; merged in request order.
struct TaskOutcome {
  std::optional<perf::RunProfile> profile;
  std::optional<RunFailure> failure;  ///< recovered retry or permanent
  std::optional<RunRecord> record;    ///< checkpoint row for the profile
  bool restored = false;
};

/// Runs one core count to completion: restore from the checkpoint when
/// possible, otherwise attempt (with seed-perturbed retries) until a
/// profile or a permanent failure. Builds a private workload instance and
/// simulator per attempt, so concurrent tasks share nothing mutable; no
/// exception escapes.
TaskOutcome runSweepTask(const SweepConfig& config,
                         const workloads::WorkloadSpec& spec,
                         const SweepCheckpoint& restoredState, int cores,
                         int maxAttempts, int poolSize) {
  TaskOutcome outcome;
  if (const RunRecord* record = restoredState.find(cores)) {
    // Restored run: the lightweight counters are all the model needs.
    perf::RunProfile profile;
    profile.program = restoredState.program;
    profile.machine = restoredState.machine;
    profile.threads = restoredState.threads;
    profile.activeCores = cores;
    profile.counters.totalCycles = static_cast<Cycles>(record->totalCycles);
    profile.counters.stallCycles = static_cast<Cycles>(record->stallCycles);
    profile.makespan = static_cast<Cycles>(record->makespan);
    outcome.profile = std::move(profile);
    outcome.record = *record;
    outcome.restored = true;
    return outcome;
  }
  RunFailure failure;
  failure.cores = cores;
  failure.poolSize = poolSize;
  for (int attempt = 0; attempt < maxAttempts; ++attempt) {
    try {
      if (config.beforeRun) {
        config.beforeRun(cores, attempt);
      }
      sim::SimConfig simConfig = config.sim;
      // Retry under a perturbed seed: if the failure was input-shaped
      // (a pathological arrival pattern), a different deterministic
      // stream can clear it; attempt 0 keeps the configured seed.
      constexpr std::uint64_t kSeedStep = 0x9E3779B97F4A7C15ULL;
      simConfig.seed =
          config.sim.seed + static_cast<std::uint64_t>(attempt) * kSeedStep;
      // A fresh instance per task (not a shared reset one): building from
      // the same spec seed yields bit-identical streams, and private
      // streams are what lets tasks run concurrently at all.
      workloads::WorkloadInstance instance = workloads::makeWorkload(spec);
      sim::MachineSim simulator(config.machine, simConfig);
      perf::RunProfile profile =
          simulator.run(instance.threads, cores, instance.name);
      failure.attempts = attempt + 1;
      if (attempt > 0) {
        failure.recovered = true;
        outcome.failure = failure;
      }
      outcome.record = RunRecord{
          cores, profile.totalCyclesD(),
          static_cast<double>(profile.counters.stallCycles),
          static_cast<double>(profile.makespan)};
      outcome.profile = std::move(profile);
      return outcome;
    } catch (const std::exception& e) {
      failure.error = e.what();
      failure.attempts = attempt + 1;
    }
  }
  outcome.failure = failure;
  return outcome;
}

/// Serializes checkpoint writes and keeps their contents deterministic: a
/// snapshot is rebuilt from the restored state plus the completed
/// outcomes in request order, so the file never depends on which task
/// finished first. Records loaded from a prior checkpoint are preserved
/// even when this run requested a different core-count subset.
class CheckpointWriter {
 public:
  CheckpointWriter(const SweepConfig& config, SweepCheckpoint restoredState,
                   const std::vector<TaskOutcome>& outcomes)
      : path_(config.checkpointPath), base_(std::move(restoredState)),
        outcomes_(outcomes), done_(outcomes.size(), false) {}

  /// Marks task `index` complete and persists the snapshot (no-op without
  /// a checkpoint path). Thread-safe.
  void commit(std::size_t index) {
    if (path_.empty()) {
      return;
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    done_[index] = true;
    SweepCheckpoint snapshot = base_;
    for (std::size_t i = 0; i < outcomes_.size(); ++i) {
      if (!done_[i]) {
        continue;
      }
      const TaskOutcome& outcome = outcomes_[i];
      // Restored outcomes are already in the base snapshot.
      if (outcome.record.has_value() && !outcome.restored) {
        snapshot.runs.push_back(*outcome.record);
      }
      if (outcome.failure.has_value()) {
        snapshot.failures.push_back(*outcome.failure);
      }
    }
    snapshot.save(path_);
  }

 private:
  std::mutex mutex_;
  const std::string path_;
  const SweepCheckpoint base_;
  const std::vector<TaskOutcome>& outcomes_;
  std::vector<bool> done_;
};

}  // namespace

std::vector<model::MeasuredPoint> SweepResult::points() const {
  std::vector<model::MeasuredPoint> out;
  out.reserve(profiles.size());
  for (const perf::RunProfile& p : profiles) {
    out.push_back({p.activeCores, p.totalCyclesD()});
  }
  return out;
}

std::vector<int> SweepResult::pendingCoreCounts() const {
  std::vector<int> pending;
  for (int cores : requestedCoreCounts) {
    bool present = false;
    for (const perf::RunProfile& p : profiles) {
      present = present || p.activeCores == cores;
    }
    if (!present) {
      pending.push_back(cores);
    }
  }
  return pending;
}

const perf::RunProfile& SweepResult::at(int cores) const {
  for (const perf::RunProfile& p : profiles) {
    if (p.activeCores == cores) {
      return p;
    }
  }
  throw ContractViolation(
      "sweep has no run at n = " + std::to_string(cores) +
      "; core counts present: " + coreCountsPresent(profiles) +
      pendingSuffix(*this));
}

std::vector<double> SweepResult::omegas() const {
  bool haveC1 = false;
  for (const perf::RunProfile& p : profiles) {
    haveC1 = haveC1 || p.activeCores == 1;
  }
  if (!haveC1) {
    throw ContractViolation(
        "omega(n) needs the sweep's 1-core run as its C(1) anchor; core "
        "counts present: " + coreCountsPresent(profiles) +
        pendingSuffix(*this));
  }
  const double c1 = at(1).totalCyclesD();
  std::vector<double> out;
  out.reserve(profiles.size());
  for (const perf::RunProfile& p : profiles) {
    out.push_back(model::degreeOfContention(p.totalCyclesD(), c1));
  }
  return out;
}

std::string SweepResult::diagnostics() const {
  std::ostringstream out;
  out << profiles.size() << " run(s) completed";
  if (restoredRuns > 0) {
    out << " (" << restoredRuns << " restored from checkpoint)";
  }
  if (requestedWorkers > 1) {
    out << ", pool size " << requestedWorkers;
  }
  const std::vector<int> pending = pendingCoreCounts();
  if (!pending.empty()) {
    std::set<int> cores(pending.begin(), pending.end());
    out << ", still pending: " << joinCores(cores);
  }
  if (failures.empty()) {
    out << ", no failures";
    return out.str();
  }
  out << ", " << failures.size() << " failure record(s):";
  for (const RunFailure& f : failures) {
    out << "\n  n = " << f.cores << ": " << f.attempts << " attempt(s), "
        << (f.recovered ? "recovered" : "gave up") << " — " << f.error;
  }
  return out.str();
}

perf::RunProfile runOnce(const topology::MachineSpec& machine,
                         const workloads::WorkloadSpec& workload,
                         int activeCores, const sim::SimConfig& simConfig) {
  workloads::WorkloadSpec spec = workload;
  if (spec.threads <= 0) {
    spec.threads = machine.logicalCores();
  }
  workloads::WorkloadInstance instance = workloads::makeWorkload(spec);
  sim::MachineSim simulator(machine, simConfig);
  return simulator.run(instance.threads, activeCores, instance.name);
}

SweepResult runSweep(const SweepConfig& config) {
  workloads::WorkloadSpec spec = config.workload;
  if (spec.threads <= 0) {
    spec.threads = config.machine.logicalCores();
  }
  // Invalid (program, class) pairs fail loudly here instead of surfacing
  // as per-task RunFailures on every core count.
  OCCM_REQUIRE_MSG(
      workloads::classValidFor(spec.program, spec.problemClass),
      "problem class not valid for this program");
  std::vector<int> coreCounts = config.coreCounts;
  if (coreCounts.empty()) {
    for (int n = 1; n <= config.machine.logicalCores(); ++n) {
      coreCounts.push_back(n);
    }
  }

  SweepCheckpoint identity;
  identity.program = workloads::workloadName(spec.program, spec.problemClass);
  identity.machine = config.machine.name;
  identity.seed = config.sim.seed;
  identity.threads = spec.threads;
  SweepCheckpoint restoredState = identity;
  if (!config.checkpointPath.empty()) {
    if (auto loaded = SweepCheckpoint::load(config.checkpointPath);
        loaded.has_value() &&
        loaded->matches(identity.program, identity.machine, identity.seed,
                        identity.threads)) {
      restoredState = std::move(*loaded);
    }
  }

  const int maxAttempts = std::max(1, config.maxAttempts);
  const int workers = exec::resolveWorkerCount(config.parallel.workers);

  std::vector<TaskOutcome> outcomes(coreCounts.size());
  CheckpointWriter checkpoint(config, restoredState, outcomes);

  if (workers == 1 || coreCounts.size() <= 1) {
    // Serial path: run inline on the calling thread, in request order —
    // no pool, no synchronization beyond the (still deterministic)
    // checkpoint writer.
    for (std::size_t i = 0; i < coreCounts.size(); ++i) {
      outcomes[i] = runSweepTask(config, spec, restoredState, coreCounts[i],
                                 maxAttempts, workers);
      checkpoint.commit(i);
    }
  } else {
    exec::ThreadPool pool({workers, coreCounts.size()});
    std::vector<std::future<void>> joins;
    joins.reserve(coreCounts.size());
    for (std::size_t i = 0; i < coreCounts.size(); ++i) {
      joins.push_back(pool.submit([&, i] {
        outcomes[i] = runSweepTask(config, spec, restoredState,
                                   coreCounts[i], maxAttempts, workers);
        checkpoint.commit(i);
      }));
    }
    for (std::future<void>& join : joins) {
      join.get();  // tasks catch run failures; nothing should rethrow
    }
  }

  // Deterministic merge: request order, independent of completion order.
  SweepResult result;
  result.requestedWorkers = workers;
  result.requestedCoreCounts = coreCounts;
  result.profiles.reserve(coreCounts.size());
  for (TaskOutcome& outcome : outcomes) {
    if (outcome.failure.has_value()) {
      result.failures.push_back(std::move(*outcome.failure));
    }
    if (outcome.profile.has_value()) {
      result.profiles.push_back(std::move(*outcome.profile));
      result.restoredRuns += outcome.restored ? 1 : 0;
    }
  }
  return result;
}

std::vector<model::MeasuredPoint> pointsAt(const SweepResult& sweep,
                                           const std::vector<int>& coreCounts) {
  std::vector<model::MeasuredPoint> out;
  out.reserve(coreCounts.size());
  for (int cores : coreCounts) {
    const perf::RunProfile& p = sweep.at(cores);
    out.push_back({p.activeCores, p.totalCyclesD()});
  }
  return out;
}

}  // namespace occm::analysis
