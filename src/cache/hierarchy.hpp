#pragma once

// Multi-level cache hierarchy for one simulated machine.
//
// Instances are laid out per the topology's sharing scopes (private L1/L2
// per physical core, LLC per socket or die). The hierarchy is
// non-inclusive: a fill inserts the line at every level on the core's
// path; evictions are local to a level. Dirty evictions from the LLC are
// reported to the caller as writeback traffic for the memory system;
// dirty evictions from inner levels mark the line dirty in the next level
// when present (and are otherwise dropped — we track timing and traffic,
// not data).
//
// Shared-area addresses additionally consult the MESI-lite directory;
// a remote write invalidates this core's copies so its next access misses
// (coherence miss), which the caller treats like an off-chip request.

#include <memory>
#include <vector>

#include "cache/coherence.hpp"
#include "cache/set_assoc_cache.hpp"
#include "common/types.hpp"
#include "topology/topology_map.hpp"

namespace occm::cache {

/// Outcome of one hierarchy access.
struct AccessResult {
  /// Level that hit (1-based); 0 when the access missed every level.
  int hitLevel = 0;
  /// Lookup latency in cycles (hit latencies along the search path). The
  /// memory system adds DRAM/queueing latency for misses.
  Cycles latency = 0;
  /// True when the access must go off-chip (LLC miss or coherence miss).
  bool offChip = false;
  /// True when the miss was caused by a remote write invalidation.
  bool coherenceMiss = false;
  /// Dirty line evicted from the LLC by the fill, if any.
  bool writeback = false;
  Addr writebackLine = 0;
};

class CacheHierarchy {
 public:
  explicit CacheHierarchy(const topology::TopologyMap& topo);

  /// Performs a full access (lookup + fill on miss + coherence) by `core`.
  AccessResult access(CoreId core, Addr addr, bool write);

  /// Statistics of a level instance (level is 1-based).
  [[nodiscard]] const CacheStats& stats(int level, int instance) const;

  /// Sum of misses at the machine's last level across all instances — the
  /// PAPI LLC_MISSES analogue. Coherence misses are included (the line was
  /// invalidated, so the LLC lookup misses), exactly as hardware counters
  /// behave; this is what makes EP's miss count grow with active cores.
  [[nodiscard]] std::uint64_t llcMisses() const;

  [[nodiscard]] const CoherenceStats& coherenceStats() const noexcept {
    return directory_.stats();
  }

  [[nodiscard]] int levels() const noexcept {
    return static_cast<int>(levels_.size());
  }
  [[nodiscard]] Bytes lineSize() const noexcept { return lineSize_; }

  /// Drops all cached lines and directory state (not the counters).
  void flush();

 private:
  struct Level {
    topology::CacheLevelSpec spec;
    std::vector<SetAssocCache> instances;
  };

  [[nodiscard]] SetAssocCache& instanceFor(CoreId core, Level& level);

  const topology::TopologyMap& topo_;
  std::vector<Level> levels_;
  CoherenceDirectory directory_;
  Bytes lineSize_;
  /// Cached per-core instance indices, [core * levels + levelIdx].
  std::vector<int> instanceIndex_;
};

}  // namespace occm::cache
