#pragma once

// Multi-level cache hierarchy for one simulated machine.
//
// Instances are laid out per the topology's sharing scopes (private L1/L2
// per physical core, LLC per socket or die). The hierarchy is
// non-inclusive: a fill inserts the line at every level on the core's
// path; evictions are local to a level. Dirty evictions from the LLC are
// reported to the caller as writeback traffic for the memory system;
// dirty evictions from inner levels mark the line dirty in the next level
// when present (and are otherwise dropped — we track timing and traffic,
// not data).
//
// Shared-area addresses additionally consult the MESI-lite directory;
// a remote write invalidates this core's copies so its next access misses
// (coherence miss), which the caller treats like an off-chip request.

#include <bit>
#include <memory>
#include <vector>

#include "cache/coherence.hpp"
#include "cache/set_assoc_cache.hpp"
#include "common/types.hpp"
#include "topology/topology_map.hpp"
#include "trace/address_space.hpp"

namespace occm::cache {

/// Outcome of one hierarchy access.
struct AccessResult {
  /// Level that hit (1-based); 0 when the access missed every level.
  int hitLevel = 0;
  /// Lookup latency in cycles (hit latencies along the search path). The
  /// memory system adds DRAM/queueing latency for misses.
  Cycles latency = 0;
  /// True when the access must go off-chip (LLC miss or coherence miss).
  bool offChip = false;
  /// True when the miss was caused by a remote write invalidation.
  bool coherenceMiss = false;
  /// Dirty line evicted from the LLC by the fill, if any.
  bool writeback = false;
  Addr writebackLine = 0;
};

class CacheHierarchy {
 public:
  explicit CacheHierarchy(const topology::TopologyMap& topo);

  /// Performs a full access (lookup + fill on miss + coherence) by `core`.
  /// Defined inline below the class: this is the simulator's single
  /// hottest function and inlining it into the issue loop removes a call
  /// boundary the optimizer cannot see across (DESIGN.md §14).
  AccessResult access(CoreId core, Addr addr, bool write);

  /// Statistics of a level instance (level is 1-based).
  [[nodiscard]] const CacheStats& stats(int level, int instance) const;

  /// Sum of misses at the machine's last level across all instances — the
  /// PAPI LLC_MISSES analogue. Coherence misses are included (the line was
  /// invalidated, so the LLC lookup misses), exactly as hardware counters
  /// behave; this is what makes EP's miss count grow with active cores.
  [[nodiscard]] std::uint64_t llcMisses() const;

  [[nodiscard]] const CoherenceStats& coherenceStats() const noexcept {
    return directory_.stats();
  }

  [[nodiscard]] int levels() const noexcept {
    return static_cast<int>(levels_.size());
  }
  [[nodiscard]] Bytes lineSize() const noexcept { return lineSize_; }

  /// Drops all cached lines and directory state (not the counters).
  void flush();

 private:
  struct Level {
    topology::CacheLevelSpec spec;
    std::vector<SetAssocCache> instances;
  };

  const topology::TopologyMap& topo_;
  std::vector<Level> levels_;
  CoherenceDirectory directory_;
  Bytes lineSize_;
  /// Each core's cache instances, [core * levels + levelIdx] — one load
  /// per level on the access path instead of an index table plus an
  /// instance-vector dereference. Two cores share a level's instance iff
  /// their pointers here are equal, which is how the invalidation walks
  /// decide "not shared with the writer". Stable: the instance vectors
  /// are sized once in the constructor and never reallocated.
  std::vector<SetAssocCache*> corePath_;
  /// Per-level hit latency, contiguous (mirrors levels_[l].spec.hitLatency).
  std::vector<Cycles> hitLatency_;

  /// Cost of a write-upgrade broadcast (invalidating remote sharers).
  static constexpr Cycles kUpgradeCycles = 24;
};

inline AccessResult CacheHierarchy::access(CoreId core, Addr addr,
                                           bool write) {
  AccessResult result;
  const Addr line = addr & ~(lineSize_ - 1);
  const bool shared = trace::AddressSpace::isShared(addr);
  const std::size_t nLevels = levels_.size();
  SetAssocCache* const* path =
      &corePath_[static_cast<std::size_t>(core) * nLevels];

  // beginAccess folds the presence and owner probes into ONE table lookup
  // and hands back the entry so the post-fill update (commitAccess) needs
  // no second probe. It reports a core in exactly the cases the old
  // isInvalidatedFor + ownerOf pair reported invalidation. Creating the
  // entry before the cache walk instead of after is unobservable: nothing
  // between here and commitAccess touches the directory.
  CoherenceDirectory::AccessHandle handle;
  if (shared) {
    handle = directory_.beginAccess(line, core);
  }
  const CoreId owner = handle.invalidatingOwner;
  const bool invalidated = owner >= 0;
  if (invalidated) {
    // A remote write since our last access invalidated our copies — but
    // only in cache instances we do *not* share with the writing owner (a
    // shared LLC still holds the writer's copy). Dropping exactly those
    // copies makes within-socket false sharing a cheap LLC hit and
    // cross-socket false sharing a full off-chip miss, as on real
    // invalidation-based hardware.
    SetAssocCache* const* ownerPath =
        &corePath_[static_cast<std::size_t>(owner) * nLevels];
    for (std::size_t l = 0; l < nLevels; ++l) {
      if (path[l] != ownerPath[l]) {
        path[l]->invalidate(line);
      }
    }
  }

  // Search the hierarchy top-down.
  std::size_t hitIdx = nLevels;
  for (std::size_t l = 0; l < nLevels; ++l) {
    result.latency += hitLatency_[l];
    if (path[l]->access(addr, write)) {
      result.hitLevel = static_cast<int>(l) + 1;
      hitIdx = l;
      break;
    }
  }

  // Fill (on a full miss) or promote (on an outer-level hit) the line
  // into the levels above the hit on this core's path. insertAbsent skips
  // the presence rescan: the walk above just missed at each filled level,
  // and nothing since could have inserted the line there.
  const std::size_t fillBelow = result.hitLevel == 0 ? nLevels : hitIdx;
  if (result.hitLevel == 0) {
    result.offChip = true;
    result.coherenceMiss = invalidated;
  }
  for (std::size_t l = 0; l < fillBelow; ++l) {
    auto evicted = path[l]->insertAbsent(addr, write);
    if (!evicted.has_value() || !evicted->dirty) {
      continue;
    }
    if (l + 1 < nLevels) {
      // Dirty inner-level eviction: absorb into the next level if the
      // line is present there (non-inclusive hierarchy; see header).
      path[l + 1]->markDirty(evicted->lineAddr);
    } else {
      result.writeback = true;
      result.writebackLine = evicted->lineAddr;
    }
  }

  if (shared) {
    std::uint64_t victims = directory_.commitAccess(handle, core, write);
    if (victims != 0) {
      result.latency += kUpgradeCycles;
      // Walk victim cores in ascending order (the order the vector API
      // produced) straight off the sharer bitmask — no allocation.
      do {
        const CoreId victim = std::countr_zero(victims);
        victims &= victims - 1;
        // Invalidate the victim's copies at every level whose instance is
        // not shared with the writer (a shared LLC keeps the line).
        SetAssocCache* const* victimPath =
            &corePath_[static_cast<std::size_t>(victim) * nLevels];
        for (std::size_t l = 0; l < nLevels; ++l) {
          if (victimPath[l] != path[l]) {
            victimPath[l]->invalidate(line);
          }
        }
      } while (victims != 0);
    }
  }

  return result;
}

}  // namespace occm::cache
