#pragma once

// A single set-associative, write-back, LRU cache instance operating on
// line addresses. Purely a tag store: no data values are tracked, only
// presence, dirtiness and recency — all the simulator needs for timing
// and traffic.
//
// Layout (DESIGN.md §14): struct-of-arrays with *fixed tag slots* and
// rank-encoded LRU. Tags live in one flat cache-line-aligned
// std::uint64_t array, one slot per way, and never move; each way also
// has a 1-byte recency rank (0 = MRU, ways-1 = LRU) packed eight ways to
// a 64-bit lane so the "age everything newer than the touched line"
// update is a couple of branchless SWAR instructions instead of a tag
// memmove. Dirty bits are a per-set bitmask with fixed way positions.
// The rank permutation is exactly the position of the line in the MRU
// list the previous layout materialised, so hit/miss decisions, LRU
// victims and every stat are bit-identical (pinned by the golden corpus):
// invalid ways always occupy the highest ranks (they start there, are
// never hit, and inserts replace the top rank first), hence "evict rank
// ways-1" picks an empty way exactly when the set is not yet full.
//
// Line math is a shift (line sizes are powers of two) and the set mapping
// uses a precomputed FastDiv reciprocal — set counts need not be powers
// of two (e.g. a 384-set LLC), and a hardware divide on every access was
// the simulator's single hottest instruction.

#include <bit>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/aligned.hpp"
#include "common/error.hpp"
#include "common/fastdiv.hpp"
#include "common/types.hpp"

namespace occm::cache {

/// Aggregate counters for one cache instance.
struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirtyEvictions = 0;
  std::uint64_t invalidations = 0;

  [[nodiscard]] double missRatio() const noexcept {
    return accesses == 0 ? 0.0 : static_cast<double>(misses) /
                                     static_cast<double>(accesses);
  }
};

/// Result of inserting a line: the victim, if a valid line was evicted.
struct Eviction {
  Addr lineAddr = 0;
  bool dirty = false;
};

class SetAssocCache {
 public:
  /// `size` bytes, `lineSize` bytes per line, `ways` associativity
  /// (at most 32 ways).
  SetAssocCache(Bytes size, Bytes lineSize, std::uint32_t ways);

  // The per-access methods are defined inline below the class: they run
  // tens of millions of times per simulated second and the hierarchy's
  // access loop is their only hot caller, so cross-TU call overhead was
  // measurable (DESIGN.md §14).

  /// Looks up a byte address. On hit, updates recency (and dirtiness for
  /// writes) and returns true. On miss returns false and counts a miss;
  /// the caller decides whether to insert().
  bool access(Addr addr, bool write);

  /// True when the line holding `addr` is present (no stats, no recency).
  [[nodiscard]] bool contains(Addr addr) const;

  /// Inserts the line for `addr` (as dirty when `write`), evicting the LRU
  /// way if the set is full. Returns the eviction, if any.
  std::optional<Eviction> insert(Addr addr, bool write);

  /// insert() for callers that know the line is absent (the hierarchy's
  /// fill loop: the lookup walk just missed at this level and nothing
  /// since could have filled it). Skips the presence rescan.
  std::optional<Eviction> insertAbsent(Addr addr, bool write);

  /// Marks the line dirty when present, without touching stats or recency
  /// (used to sink dirty evictions from an inner level). Returns presence.
  bool markDirty(Addr addr);

  /// Removes the line if present; returns whether it was present and dirty.
  struct InvalidateResult {
    bool wasPresent = false;
    bool wasDirty = false;
  };
  InvalidateResult invalidate(Addr addr);

  /// Drops every line (e.g. between independent simulation runs).
  void flush();

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] Bytes lineSize() const noexcept { return lineSize_; }
  [[nodiscard]] std::uint32_t ways() const noexcept { return ways_; }
  [[nodiscard]] std::size_t sets() const noexcept { return sets_; }

 private:
  /// Invalid-way sentinel: no real line address reaches 2^64 - 1 (the
  /// private window tops out near 2^41 — trace/address_space.hpp), so
  /// "valid && tag == line" collapses to one compare.
  static constexpr Addr kNoLine = ~Addr{0};

  // SWAR lane constants: 8 rank bytes per 64-bit word.
  static constexpr std::uint64_t kLane01 = 0x0101010101010101ULL;
  static constexpr std::uint64_t kLaneMsb = kLane01 * 0x80;

  [[nodiscard]] std::size_t setIndex(Addr lineAddr) const noexcept {
    // Mix the upper bits so power-of-two strides don't all land in one set
    // pathologically more than on real hardware (simple xor-fold hash).
    // Set counts need not be powers of two (e.g. a 384-set 16-way LLC).
    const Addr mixed = lineAddr ^ (lineAddr >> 13);
    return static_cast<std::size_t>(setDiv_.modulo(mixed));
  }

  /// Tags of a set, fixed slot per way.
  [[nodiscard]] Addr* setBase(std::size_t set) noexcept {
    return &tags_[set * ways_];
  }
  [[nodiscard]] const Addr* setBase(std::size_t set) const noexcept {
    return &tags_[set * ways_];
  }
  /// Rank lanes of a set (`lanes_` words, 8 rank bytes each).
  [[nodiscard]] std::uint64_t* rankBase(std::size_t set) noexcept {
    return &ranks_[set * lanes_];
  }

  [[nodiscard]] static std::uint8_t rankOf(const std::uint64_t* lanes,
                                           std::uint32_t way) noexcept {
    return static_cast<std::uint8_t>(lanes[way >> 3] >> ((way & 7) * 8));
  }
  static void setRank(std::uint64_t* lanes, std::uint32_t way,
                      std::uint8_t rank) noexcept {
    const unsigned shift = (way & 7) * 8;
    std::uint64_t& lane = lanes[way >> 3];
    lane = (lane & ~(std::uint64_t{0xFF} << shift)) |
           (std::uint64_t{rank} << shift);
  }

  /// Ages every way whose rank is strictly below `limit` by one (SWAR
  /// increment-if-less; padding bytes are masked out via realMsb_). All
  /// rank bytes stay <= 127, which keeps the byte-wise compares
  /// borrow-free.
  void bumpBelow(std::uint64_t* lanes, std::uint32_t limit) noexcept {
    if (limit == 0) {
      return;
    }
    const std::uint64_t threshold =
        static_cast<std::uint64_t>(limit - 1) * kLane01 | kLaneMsb;
    for (std::uint32_t j = 0; j < lanes_; ++j) {
      // MSB of each byte set iff rank <= limit-1, i.e. rank < limit.
      const std::uint64_t le = (threshold - lanes[j]) & realMsb_[j];
      lanes[j] += le >> 7;
    }
  }

  /// Way currently holding rank `rank` (ranks are a permutation, so it is
  /// unique): SWAR byte-equality search.
  [[nodiscard]] std::uint32_t wayWithRank(const std::uint64_t* lanes,
                                          std::uint32_t rank) const noexcept {
    const std::uint64_t target = static_cast<std::uint64_t>(rank) * kLane01;
    for (std::uint32_t j = 0; j < lanes_; ++j) {
      const std::uint64_t diff = lanes[j] ^ target;
      // MSB of each byte set iff the byte matched (diff byte == 0).
      const std::uint64_t eq = (kLaneMsb - diff) & realMsb_[j];
      if (eq != 0) {
        return j * 8 + static_cast<std::uint32_t>(
                           std::countr_zero(eq) >> 3);
      }
    }
    OCCM_ASSERT(false);  // ranks are a permutation of 0..ways-1
    return ways_ - 1;
  }

  Bytes lineSize_;
  unsigned lineShift_ = 0;  ///< log2(lineSize_)
  std::uint32_t ways_;
  std::uint32_t lanes_ = 1;  ///< rank words per set: ceil(ways / 8)
  std::size_t sets_ = 0;
  FastDiv setDiv_;  ///< reciprocal for `% sets_`
  /// Per-lane mask of the MSB of each *real* way's rank byte; padding
  /// bytes (ways that don't exist) never match and never age.
  std::uint64_t realMsb_[4] = {0, 0, 0, 0};
  CacheAlignedVector<Addr> tags_;  ///< sets_ * ways_, fixed slot per way
  CacheAlignedVector<std::uint64_t> ranks_;  ///< sets_ * lanes_
  CacheAlignedVector<std::uint32_t> dirty_;  ///< per-set mask (bit = way)
  CacheStats stats_;
};

OCCM_FORCE_INLINE bool SetAssocCache::access(Addr addr, bool write) {
  ++stats_.accesses;
  const Addr line = addr >> lineShift_;
  const std::size_t set = setIndex(line);
  const Addr* base = setBase(set);
  for (std::uint32_t i = 0; i < ways_; ++i) {
    if (base[i] == line) {
      std::uint64_t* lanes = rankBase(set);
      const std::uint8_t rank = rankOf(lanes, i);
      if (rank != 0) {
        // Everything more recent than the hit line ages by one; the hit
        // line becomes MRU. Tags and dirty bits stay in place.
        bumpBelow(lanes, rank);
        setRank(lanes, i, 0);
      }
      if (write) {
        dirty_[set] |= std::uint32_t{1} << i;
      }
      ++stats_.hits;
      return true;
    }
  }
  ++stats_.misses;
  return false;
}

OCCM_FORCE_INLINE bool SetAssocCache::contains(Addr addr) const {
  const Addr line = addr >> lineShift_;
  const Addr* base = setBase(setIndex(line));
  for (std::uint32_t i = 0; i < ways_; ++i) {
    if (base[i] == line) {
      return true;
    }
  }
  return false;
}

OCCM_FORCE_INLINE std::optional<Eviction> SetAssocCache::insert(Addr addr,
                                                                bool write) {
  const Addr line = addr >> lineShift_;
  const std::size_t set = setIndex(line);
  const Addr* base = setBase(set);
  // If already present (e.g. racing fills), just refresh recency/dirty.
  for (std::uint32_t i = 0; i < ways_; ++i) {
    if (base[i] == line) {
      std::uint64_t* lanes = rankBase(set);
      const std::uint8_t rank = rankOf(lanes, i);
      if (rank != 0) {
        bumpBelow(lanes, rank);
        setRank(lanes, i, 0);
      }
      if (write) {
        dirty_[set] |= std::uint32_t{1} << i;
      }
      return std::nullopt;
    }
  }
  return insertAbsent(addr, write);
}

OCCM_FORCE_INLINE std::optional<Eviction> SetAssocCache::insertAbsent(
    Addr addr, bool write) {
  const Addr line = addr >> lineShift_;
  const std::size_t set = setIndex(line);
  Addr* base = setBase(set);
  std::uint64_t* lanes = rankBase(set);
  std::uint32_t& dirty = dirty_[set];
  // The way at the bottom of the recency order: the LRU valid line, or an
  // invalid way when the set is not yet full (invalid ways always hold
  // the highest ranks — see the header comment).
  const std::uint32_t victimWay = wayWithRank(lanes, ways_ - 1);
  const Addr victim = base[victimWay];
  const bool victimDirty = ((dirty >> victimWay) & 1u) != 0;
  std::optional<Eviction> evicted;
  if (victim != kNoLine) {
    evicted = Eviction{victim << lineShift_, victimDirty};
    ++stats_.evictions;
    if (victimDirty) {
      ++stats_.dirtyEvictions;
    }
  }
  // Every other way ages by one; the new line takes the slot as MRU.
  bumpBelow(lanes, ways_ - 1);
  setRank(lanes, victimWay, 0);
  base[victimWay] = line;
  const std::uint32_t bit = std::uint32_t{1} << victimWay;
  dirty = write ? (dirty | bit) : (dirty & ~bit);
  return evicted;
}

OCCM_FORCE_INLINE bool SetAssocCache::markDirty(Addr addr) {
  const Addr line = addr >> lineShift_;
  const std::size_t set = setIndex(line);
  const Addr* base = setBase(set);
  for (std::uint32_t i = 0; i < ways_; ++i) {
    if (base[i] == line) {
      dirty_[set] |= std::uint32_t{1} << i;
      return true;
    }
  }
  return false;
}

OCCM_FORCE_INLINE SetAssocCache::InvalidateResult SetAssocCache::invalidate(
    Addr addr) {
  const Addr line = addr >> lineShift_;
  const std::size_t set = setIndex(line);
  Addr* base = setBase(set);
  for (std::uint32_t i = 0; i < ways_; ++i) {
    if (base[i] == line) {
      std::uint64_t* lanes = rankBase(set);
      std::uint32_t& dirty = dirty_[set];
      InvalidateResult result{true, ((dirty >> i) & 1u) != 0};
      // Ways older than the removed line move up one rank; the freed way
      // drops to LRU, keeping invalid ways at the highest ranks.
      const std::uint8_t rank = rankOf(lanes, i);
      const std::uint64_t threshold =
          (static_cast<std::uint64_t>(rank) * kLane01) | kLaneMsb;
      for (std::uint32_t j = 0; j < lanes_; ++j) {
        // MSB of each byte set iff rank <= `rank`; invert within the real
        // ways for strictly-greater, then subtract one from those bytes.
        const std::uint64_t gt =
            ((threshold - lanes[j]) ^ kLaneMsb) & realMsb_[j];
        lanes[j] -= gt >> 7;
      }
      setRank(lanes, i, static_cast<std::uint8_t>(ways_ - 1));
      base[i] = kNoLine;
      dirty &= ~(std::uint32_t{1} << i);
      ++stats_.invalidations;
      return result;
    }
  }
  return {};
}

}  // namespace occm::cache
