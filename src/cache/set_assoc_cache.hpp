#pragma once

// A single set-associative, write-back, LRU cache instance operating on
// line addresses. Purely a tag store: no data values are tracked, only
// presence, dirtiness and recency — all the simulator needs for timing
// and traffic.

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace occm::cache {

/// Aggregate counters for one cache instance.
struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirtyEvictions = 0;
  std::uint64_t invalidations = 0;

  [[nodiscard]] double missRatio() const noexcept {
    return accesses == 0 ? 0.0 : static_cast<double>(misses) /
                                     static_cast<double>(accesses);
  }
};

/// Result of inserting a line: the victim, if a valid line was evicted.
struct Eviction {
  Addr lineAddr = 0;
  bool dirty = false;
};

class SetAssocCache {
 public:
  /// `size` bytes, `lineSize` bytes per line, `ways` associativity.
  SetAssocCache(Bytes size, Bytes lineSize, std::uint32_t ways);

  /// Looks up a byte address. On hit, updates recency (and dirtiness for
  /// writes) and returns true. On miss returns false and counts a miss;
  /// the caller decides whether to insert().
  bool access(Addr addr, bool write);

  /// True when the line holding `addr` is present (no stats, no recency).
  [[nodiscard]] bool contains(Addr addr) const;

  /// Inserts the line for `addr` (as dirty when `write`), evicting the LRU
  /// way if the set is full. Returns the eviction, if any.
  std::optional<Eviction> insert(Addr addr, bool write);

  /// Marks the line dirty when present, without touching stats or recency
  /// (used to sink dirty evictions from an inner level). Returns presence.
  bool markDirty(Addr addr);

  /// Removes the line if present; returns whether it was present and dirty.
  struct InvalidateResult {
    bool wasPresent = false;
    bool wasDirty = false;
  };
  InvalidateResult invalidate(Addr addr);

  /// Drops every line (e.g. between independent simulation runs).
  void flush();

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] Bytes lineSize() const noexcept { return lineSize_; }
  [[nodiscard]] std::uint32_t ways() const noexcept { return ways_; }
  [[nodiscard]] std::size_t sets() const noexcept { return sets_; }

 private:
  struct Way {
    Addr tag = 0;
    bool valid = false;
    bool dirty = false;
  };

  [[nodiscard]] std::size_t setIndex(Addr lineAddr) const noexcept {
    // Mix the upper bits so power-of-two strides don't all land in one set
    // pathologically more than on real hardware (simple xor-fold hash).
    // Set counts need not be powers of two (e.g. a 384-set 16-way LLC).
    const Addr mixed = lineAddr ^ (lineAddr >> 13);
    return static_cast<std::size_t>(mixed % sets_);
  }

  /// Ways of a set, most recently used first.
  [[nodiscard]] Way* setBase(std::size_t set) noexcept {
    return ways_ == 0 ? nullptr : &ways_store_[set * ways_];
  }
  [[nodiscard]] const Way* setBase(std::size_t set) const noexcept {
    return &ways_store_[set * ways_];
  }

  Bytes lineSize_;
  std::uint32_t ways_;
  std::size_t sets_;
  std::vector<Way> ways_store_;  ///< sets_ * ways_, MRU-first per set
  CacheStats stats_;
};

}  // namespace occm::cache
