#pragma once

// MESI-lite invalidation directory for shared cache lines.
//
// Threads are pinned for the lifetime of a run, so private data can only
// ever be cached by one core; the directory therefore tracks only
// addresses in the shared area (trace::AddressSpace::isShared). Per line
// it records which logical cores hold a copy and whether one of them has
// written it. A write by core c invalidates every other holder's copies
// (their next read becomes a coherence miss, served — simplification
// documented in DESIGN.md — like a memory access). This is the mechanism
// behind the paper's EP observation: LLC misses grow from ~2e3 to ~3e7 as
// active cores increase, driven by false sharing of result lines.
//
// Storage (DESIGN.md §14): a flat open-addressing table (linear probing,
// backward-shift deletion, power-of-two capacity) instead of
// std::unordered_map — the directory is probed on every shared access
// and the node-per-entry map was a visible fraction of the whole
// simulation. The sharer set is exposed as a bitmask so the hierarchy
// can walk victims with countr_zero instead of allocating a vector; the
// vector API remains as a thin wrapper. All counters and invalidation
// orders are identical to the map-based implementation (pinned by the
// golden corpus).

#include <bit>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace occm::cache {

struct CoherenceStats {
  std::uint64_t upgrades = 0;           ///< writes that invalidated sharers
  std::uint64_t invalidationsSent = 0;  ///< per-holder invalidation messages
  std::uint64_t coherenceMisses = 0;    ///< reads of an invalidated copy
};

class CoherenceDirectory {
 public:
  /// Up to 64 logical cores (a bitmask per line).
  explicit CoherenceDirectory(int cores) : cores_(cores) {
    OCCM_REQUIRE_MSG(cores >= 1 && cores <= 64,
                     "directory supports 1..64 cores");
    slots_.resize(kInitialCapacity);
  }

  /// Opaque handle to one shared line's directory state, valid until the
  /// next beginAccess/onAccess/onEviction/clear call. Lets the hierarchy
  /// pay ONE table probe per shared access: beginAccess answers the
  /// pre-lookup invalidation question, the handle carries the entry to
  /// commitAccess after the cache fills.
  struct AccessHandle {
    void* entry = nullptr;
    /// Owner whose remote write invalidated this core's copy, or -1 —
    /// exactly invalidatingOwner(lineAddr, core), minus the extra probe.
    CoreId invalidatingOwner = -1;
  };

  /// First half of an access: locates (or creates) the line's entry and
  /// reports whether `core`'s copy was invalidated by a remote write.
  [[nodiscard]] AccessHandle beginAccess(Addr lineAddr, CoreId core) {
    OCCM_ASSERT(core >= 0 && core < cores_);
    Slot& entry = findOrInsert(lineAddr);
    AccessHandle handle;
    handle.entry = &entry;
    if (entry.owner >= 0 && entry.owner != core &&
        ((entry.sharers >> core) & 1) == 0) {
      handle.invalidatingOwner = entry.owner;
    }
    return handle;
  }

  /// Second half: applies the access to the entry found by beginAccess
  /// and returns the bitmask of cores whose copies must be invalidated
  /// (0 for reads and for writes with no other sharer).
  std::uint64_t commitAccess(const AccessHandle& handle, CoreId core,
                             bool write) {
    Slot& entry = *static_cast<Slot*>(handle.entry);
    const std::uint64_t bit = std::uint64_t{1} << core;
    std::uint64_t toInvalidate = 0;
    if (write) {
      const std::uint64_t others = entry.sharers & ~bit;
      if (others != 0) {
        ++stats_.upgrades;
        stats_.invalidationsSent +=
            static_cast<std::uint64_t>(std::popcount(others));
        toInvalidate = others;
      }
      entry.sharers = bit;
      entry.modified = true;
      entry.owner = core;
    } else {
      if (entry.modified && entry.owner != core) {
        // Dirty data produced elsewhere: the read is a coherence miss.
        ++stats_.coherenceMisses;
        entry.modified = false;
      }
      entry.sharers |= bit;
    }
    return toInvalidate;
  }

  /// One-shot probe-and-update. Returns the bitmask of cores whose
  /// copies must be invalidated (0 for reads and for writes with no
  /// other sharer).
  std::uint64_t onAccessMask(Addr lineAddr, CoreId core, bool write) {
    return commitAccess(beginAccess(lineAddr, core), core, write);
  }

  /// As onAccessMask, expanded to a core list in ascending order.
  std::vector<CoreId> onAccess(Addr lineAddr, CoreId core, bool write) {
    std::uint64_t mask = onAccessMask(lineAddr, core, write);
    std::vector<CoreId> toInvalidate;
    while (mask != 0) {
      toInvalidate.push_back(std::countr_zero(mask));
      mask &= mask - 1;
    }
    return toInvalidate;
  }

  /// True when `core` lost its copy of the line to a remote write since it
  /// last accessed it. Note the asymmetry exploited by the hierarchy: the
  /// copy survives in any cache instance the core *shares with the owner*
  /// (e.g. the socket LLC when writer and reader are on one socket), so
  /// within-socket false sharing is a cheap LLC hit while cross-socket
  /// false sharing goes off-chip.
  [[nodiscard]] bool isInvalidatedFor(Addr lineAddr, CoreId core) const {
    const Slot* entry = find(lineAddr);
    if (entry == nullptr) {
      return false;
    }
    // Only a write creates invalid copies: read-shared lines (owner -1)
    // coexist in any number of caches.
    return entry->owner >= 0 && entry->owner != core &&
           ((entry->sharers >> core) & 1) == 0;
  }

  /// Core that most recently wrote the line, or -1.
  [[nodiscard]] CoreId ownerOf(Addr lineAddr) const {
    const Slot* entry = find(lineAddr);
    return entry == nullptr ? -1 : entry->owner;
  }

  /// Single-probe combination of isInvalidatedFor + ownerOf for the
  /// hierarchy's hot path: the owner whose remote write invalidated
  /// `core`'s copy, or -1 when the copy is still good (or untracked).
  [[nodiscard]] CoreId invalidatingOwner(Addr lineAddr,
                                         CoreId core) const {
    const Slot* entry = find(lineAddr);
    if (entry == nullptr || entry->owner < 0 || entry->owner == core ||
        ((entry->sharers >> core) & 1) != 0) {
      return -1;
    }
    return entry->owner;
  }

  /// Removes a core's sharing bit (e.g. natural eviction).
  void onEviction(Addr lineAddr, CoreId core) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hashOf(lineAddr) & mask;
    while (true) {
      Slot& slot = slots_[i];
      if (slot.key == kEmptyKey) {
        return;
      }
      if (slot.key == lineAddr) {
        slot.sharers &= ~(std::uint64_t{1} << core);
        if (slot.sharers == 0) {
          eraseAt(i);
        }
        return;
      }
      i = (i + 1) & mask;
    }
  }

  [[nodiscard]] const CoherenceStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t trackedLines() const noexcept { return size_; }

  void clear() {
    slots_.assign(slots_.size(), Slot{});
    size_ = 0;
    stats_ = {};
  }

 private:
  /// One open-addressing slot. No real line address is 2^64 - 1 (the
  /// address space tops out near 2^41), so it doubles as the empty key.
  static constexpr Addr kEmptyKey = ~Addr{0};
  static constexpr std::size_t kInitialCapacity = 1024;

  struct Slot {
    Addr key = kEmptyKey;
    std::uint64_t sharers = 0;
    CoreId owner = -1;
    bool modified = false;
  };

  static std::uint64_t hashOf(Addr key) noexcept {
    // SplitMix64 finalizer: full-avalanche, two multiplies.
    std::uint64_t x = key + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  [[nodiscard]] const Slot* find(Addr key) const noexcept {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hashOf(key) & mask;
    while (true) {
      const Slot& slot = slots_[i];
      if (slot.key == key) {
        return &slot;
      }
      if (slot.key == kEmptyKey) {
        return nullptr;
      }
      i = (i + 1) & mask;
    }
  }

  Slot& findOrInsert(Addr key) {
    if ((size_ + 1) * 8 > slots_.size() * 7) {
      grow();
    }
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hashOf(key) & mask;
    while (true) {
      Slot& slot = slots_[i];
      if (slot.key == key) {
        return slot;
      }
      if (slot.key == kEmptyKey) {
        slot.key = key;
        ++size_;
        return slot;
      }
      i = (i + 1) & mask;
    }
  }

  /// Backward-shift deletion: keeps probe chains gap-free without
  /// tombstones, so probe lengths never degrade over a run.
  void eraseAt(std::size_t hole) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hole;
    while (true) {
      i = (i + 1) & mask;
      const Slot& candidate = slots_[i];
      if (candidate.key == kEmptyKey) {
        break;
      }
      const std::size_t ideal = hashOf(candidate.key) & mask;
      // Move the candidate into the hole only if its probe chain spans
      // the hole (i.e. the hole lies between its ideal slot and it).
      if (((i - ideal) & mask) >= ((i - hole) & mask)) {
        slots_[hole] = candidate;
        hole = i;
      }
    }
    slots_[hole] = Slot{};
    --size_;
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    const std::size_t mask = slots_.size() - 1;
    for (const Slot& slot : old) {
      if (slot.key == kEmptyKey) {
        continue;
      }
      std::size_t i = hashOf(slot.key) & mask;
      while (slots_[i].key != kEmptyKey) {
        i = (i + 1) & mask;
      }
      slots_[i] = slot;
    }
  }

  int cores_;
  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  CoherenceStats stats_;
};

}  // namespace occm::cache
