#pragma once

// MESI-lite invalidation directory for shared cache lines.
//
// Threads are pinned for the lifetime of a run, so private data can only
// ever be cached by one core; the directory therefore tracks only
// addresses in the shared area (trace::AddressSpace::isShared). Per line
// it records which logical cores hold a copy and whether one of them has
// written it. A write by core c invalidates every other holder's copies
// (their next read becomes a coherence miss, served — simplification
// documented in DESIGN.md — like a memory access). This is the mechanism
// behind the paper's EP observation: LLC misses grow from ~2e3 to ~3e7 as
// active cores increase, driven by false sharing of result lines.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace occm::cache {

struct CoherenceStats {
  std::uint64_t upgrades = 0;           ///< writes that invalidated sharers
  std::uint64_t invalidationsSent = 0;  ///< per-holder invalidation messages
  std::uint64_t coherenceMisses = 0;    ///< reads of an invalidated copy
};

class CoherenceDirectory {
 public:
  /// Up to 64 logical cores (a bitmask per line).
  explicit CoherenceDirectory(int cores) : cores_(cores) {
    OCCM_REQUIRE_MSG(cores >= 1 && cores <= 64,
                     "directory supports 1..64 cores");
  }

  /// Records an access by `core` to the shared line `lineAddr`.
  /// Returns the cores whose copies must be invalidated (empty for reads
  /// and for writes with no other sharer).
  std::vector<CoreId> onAccess(Addr lineAddr, CoreId core, bool write) {
    OCCM_ASSERT(core >= 0 && core < cores_);
    Entry& entry = lines_[lineAddr];
    const std::uint64_t bit = std::uint64_t{1} << core;
    std::vector<CoreId> toInvalidate;
    if (write) {
      const std::uint64_t others = entry.sharers & ~bit;
      if (others != 0) {
        ++stats_.upgrades;
        for (int c = 0; c < cores_; ++c) {
          if ((others >> c) & 1) {
            toInvalidate.push_back(c);
            ++stats_.invalidationsSent;
          }
        }
      }
      entry.sharers = bit;
      entry.modified = true;
      entry.owner = core;
    } else {
      if (entry.modified && entry.owner != core) {
        // Dirty data produced elsewhere: the read is a coherence miss.
        ++stats_.coherenceMisses;
        entry.modified = false;
      }
      entry.sharers |= bit;
    }
    return toInvalidate;
  }

  /// True when `core` lost its copy of the line to a remote write since it
  /// last accessed it. Note the asymmetry exploited by the hierarchy: the
  /// copy survives in any cache instance the core *shares with the owner*
  /// (e.g. the socket LLC when writer and reader are on one socket), so
  /// within-socket false sharing is a cheap LLC hit while cross-socket
  /// false sharing goes off-chip.
  [[nodiscard]] bool isInvalidatedFor(Addr lineAddr, CoreId core) const {
    const auto it = lines_.find(lineAddr);
    if (it == lines_.end()) {
      return false;
    }
    // Only a write creates invalid copies: read-shared lines (owner -1)
    // coexist in any number of caches.
    return it->second.owner >= 0 && it->second.owner != core &&
           ((it->second.sharers >> core) & 1) == 0;
  }

  /// Core that most recently wrote the line, or -1.
  [[nodiscard]] CoreId ownerOf(Addr lineAddr) const {
    const auto it = lines_.find(lineAddr);
    return it == lines_.end() ? -1 : it->second.owner;
  }

  /// Removes a core's sharing bit (e.g. natural eviction).
  void onEviction(Addr lineAddr, CoreId core) {
    const auto it = lines_.find(lineAddr);
    if (it == lines_.end()) {
      return;
    }
    it->second.sharers &= ~(std::uint64_t{1} << core);
    if (it->second.sharers == 0) {
      lines_.erase(it);
    }
  }

  [[nodiscard]] const CoherenceStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t trackedLines() const noexcept {
    return lines_.size();
  }

  void clear() {
    lines_.clear();
    stats_ = {};
  }

 private:
  struct Entry {
    std::uint64_t sharers = 0;
    CoreId owner = -1;
    bool modified = false;
  };

  int cores_;
  std::unordered_map<Addr, Entry> lines_;
  CoherenceStats stats_;
};

}  // namespace occm::cache
