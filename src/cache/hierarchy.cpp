#include "cache/hierarchy.hpp"

#include "common/error.hpp"

namespace occm::cache {

CacheHierarchy::CacheHierarchy(const topology::TopologyMap& topo)
    : topo_(topo), directory_(topo.spec().logicalCores()) {
  const auto& spec = topo.spec();
  lineSize_ = spec.caches.front().lineSize;
  levels_.reserve(spec.caches.size());
  for (const auto& levelSpec : spec.caches) {
    Level level;
    level.spec = levelSpec;
    const int instances = topo.cacheInstanceCount(levelSpec);
    level.instances.reserve(static_cast<std::size_t>(instances));
    for (int i = 0; i < instances; ++i) {
      level.instances.emplace_back(levelSpec.size, levelSpec.lineSize,
                                   levelSpec.associativity);
    }
    levels_.push_back(std::move(level));
    hitLatency_.push_back(levelSpec.hitLatency);
  }
  // Resolve every (core, level) pair to its instance once; access() then
  // pays a single pointer load per level.
  const int cores = spec.logicalCores();
  corePath_.resize(static_cast<std::size_t>(cores) * levels_.size());
  for (CoreId core = 0; core < cores; ++core) {
    for (std::size_t l = 0; l < levels_.size(); ++l) {
      const int inst = topo.cacheInstance(core, levels_[l].spec);
      corePath_[static_cast<std::size_t>(core) * levels_.size() + l] =
          &levels_[l].instances[static_cast<std::size_t>(inst)];
    }
  }
}

const CacheStats& CacheHierarchy::stats(int level, int instance) const {
  OCCM_REQUIRE(level >= 1 && level <= static_cast<int>(levels_.size()));
  const Level& l = levels_[static_cast<std::size_t>(level - 1)];
  OCCM_REQUIRE(instance >= 0 &&
               instance < static_cast<int>(l.instances.size()));
  return l.instances[static_cast<std::size_t>(instance)].stats();
}

std::uint64_t CacheHierarchy::llcMisses() const {
  const Level& llc = levels_.back();
  std::uint64_t total = 0;
  for (const SetAssocCache& inst : llc.instances) {
    total += inst.stats().misses;
  }
  return total;
}

void CacheHierarchy::flush() {
  for (Level& level : levels_) {
    for (SetAssocCache& inst : level.instances) {
      inst.flush();
    }
  }
  directory_.clear();
}

}  // namespace occm::cache
