#include "cache/hierarchy.hpp"

#include "common/error.hpp"
#include "trace/address_space.hpp"

namespace occm::cache {

namespace {
/// Cost of a write-upgrade broadcast (invalidating remote sharers).
constexpr Cycles kUpgradeCycles = 24;
}  // namespace

CacheHierarchy::CacheHierarchy(const topology::TopologyMap& topo)
    : topo_(topo), directory_(topo.spec().logicalCores()) {
  const auto& spec = topo.spec();
  lineSize_ = spec.caches.front().lineSize;
  levels_.reserve(spec.caches.size());
  for (const auto& levelSpec : spec.caches) {
    Level level;
    level.spec = levelSpec;
    const int instances = topo.cacheInstanceCount(levelSpec);
    level.instances.reserve(static_cast<std::size_t>(instances));
    for (int i = 0; i < instances; ++i) {
      level.instances.emplace_back(levelSpec.size, levelSpec.lineSize,
                                   levelSpec.associativity);
    }
    levels_.push_back(std::move(level));
  }
  // Precompute the instance index for every (core, level) pair.
  const int cores = spec.logicalCores();
  instanceIndex_.resize(static_cast<std::size_t>(cores) * levels_.size());
  for (CoreId core = 0; core < cores; ++core) {
    for (std::size_t l = 0; l < levels_.size(); ++l) {
      instanceIndex_[static_cast<std::size_t>(core) * levels_.size() + l] =
          topo.cacheInstance(core, levels_[l].spec);
    }
  }
}

SetAssocCache& CacheHierarchy::instanceFor(CoreId core, Level& level) {
  const std::size_t levelIdx = static_cast<std::size_t>(level.spec.level) - 1;
  const int inst =
      instanceIndex_[static_cast<std::size_t>(core) * levels_.size() +
                     levelIdx];
  return level.instances[static_cast<std::size_t>(inst)];
}

AccessResult CacheHierarchy::access(CoreId core, Addr addr, bool write) {
  AccessResult result;
  const Addr line = addr & ~(lineSize_ - 1);
  const bool shared = trace::AddressSpace::isShared(addr);

  // A remote write since our last access invalidated our copies — but only
  // in cache instances we do *not* share with the writing owner (a shared
  // LLC still holds the writer's copy). Dropping exactly those copies makes
  // within-socket false sharing a cheap LLC hit and cross-socket false
  // sharing a full off-chip miss, as on real invalidation-based hardware.
  const bool invalidated = shared && directory_.isInvalidatedFor(line, core);
  if (invalidated) {
    const CoreId owner = directory_.ownerOf(line);
    for (Level& level : levels_) {
      const std::size_t levelIdx =
          static_cast<std::size_t>(level.spec.level) - 1;
      const int mine =
          instanceIndex_[static_cast<std::size_t>(core) * levels_.size() +
                         levelIdx];
      const int owners =
          owner < 0 ? -1
                    : instanceIndex_[static_cast<std::size_t>(owner) *
                                         levels_.size() +
                                     levelIdx];
      if (mine != owners) {
        level.instances[static_cast<std::size_t>(mine)].invalidate(line);
      }
    }
  }

  // Search the hierarchy top-down.
  for (Level& level : levels_) {
    result.latency += level.spec.hitLatency;
    if (instanceFor(core, level).access(addr, write)) {
      result.hitLevel = level.spec.level;
      break;
    }
  }

  // Fill (on a full miss) or promote (on an outer-level hit) the line
  // into the levels above the hit on this core's path.
  const std::size_t fillBelow =
      result.hitLevel == 0 ? levels_.size()
                           : static_cast<std::size_t>(result.hitLevel - 1);
  if (result.hitLevel == 0) {
    result.offChip = true;
    result.coherenceMiss = invalidated;
  }
  for (std::size_t l = 0; l < fillBelow; ++l) {
    auto evicted = instanceFor(core, levels_[l]).insert(addr, write);
    if (!evicted.has_value() || !evicted->dirty) {
      continue;
    }
    if (l + 1 < levels_.size()) {
      // Dirty inner-level eviction: absorb into the next level if the
      // line is present there (non-inclusive hierarchy; see header).
      instanceFor(core, levels_[l + 1]).markDirty(evicted->lineAddr);
    } else {
      result.writeback = true;
      result.writebackLine = evicted->lineAddr;
    }
  }

  if (shared) {
    const std::vector<CoreId> victims = directory_.onAccess(line, core, write);
    if (!victims.empty()) {
      result.latency += kUpgradeCycles;
      for (CoreId victim : victims) {
        // Invalidate the victim's copies at every level whose instance is
        // not shared with the writer (a shared LLC keeps the line).
        for (Level& level : levels_) {
          const std::size_t levelIdx =
              static_cast<std::size_t>(level.spec.level) - 1;
          const int victimInst =
              instanceIndex_[static_cast<std::size_t>(victim) *
                                 levels_.size() +
                             levelIdx];
          const int writerInst =
              instanceIndex_[static_cast<std::size_t>(core) * levels_.size() +
                             levelIdx];
          if (victimInst != writerInst) {
            level.instances[static_cast<std::size_t>(victimInst)].invalidate(
                line);
          }
        }
      }
    }
  }

  return result;
}

const CacheStats& CacheHierarchy::stats(int level, int instance) const {
  OCCM_REQUIRE(level >= 1 && level <= static_cast<int>(levels_.size()));
  const Level& l = levels_[static_cast<std::size_t>(level - 1)];
  OCCM_REQUIRE(instance >= 0 &&
               instance < static_cast<int>(l.instances.size()));
  return l.instances[static_cast<std::size_t>(instance)].stats();
}

std::uint64_t CacheHierarchy::llcMisses() const {
  const Level& llc = levels_.back();
  std::uint64_t total = 0;
  for (const SetAssocCache& inst : llc.instances) {
    total += inst.stats().misses;
  }
  return total;
}

void CacheHierarchy::flush() {
  for (Level& level : levels_) {
    for (SetAssocCache& inst : level.instances) {
      inst.flush();
    }
  }
  directory_.clear();
}

}  // namespace occm::cache
