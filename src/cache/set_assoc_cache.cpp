#include "cache/set_assoc_cache.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace occm::cache {

SetAssocCache::SetAssocCache(Bytes size, Bytes lineSize, std::uint32_t ways)
    : lineSize_(lineSize), ways_(ways) {
  OCCM_REQUIRE_MSG(lineSize > 0 && (lineSize & (lineSize - 1)) == 0,
                   "line size must be a power of two");
  OCCM_REQUIRE_MSG(size % lineSize == 0, "size must be a line multiple");
  OCCM_REQUIRE_MSG(ways >= 1, "need at least one way");
  const Bytes lines = size / lineSize;
  OCCM_REQUIRE_MSG(lines % ways == 0, "lines must divide into whole sets");
  sets_ = static_cast<std::size_t>(lines / ways);
  ways_store_.resize(sets_ * ways_);
}

bool SetAssocCache::access(Addr addr, bool write) {
  ++stats_.accesses;
  const Addr line = addr / lineSize_;
  Way* base = setBase(setIndex(line));
  for (std::uint32_t i = 0; i < ways_; ++i) {
    if (base[i].valid && base[i].tag == line) {
      // Move to front (MRU-first ordering).
      Way hit = base[i];
      hit.dirty = hit.dirty || write;
      std::rotate(base, base + i, base + i + 1);  // shift [0,i) right by one
      base[0] = hit;
      ++stats_.hits;
      return true;
    }
  }
  ++stats_.misses;
  return false;
}

bool SetAssocCache::contains(Addr addr) const {
  const Addr line = addr / lineSize_;
  const Way* base = setBase(setIndex(line));
  for (std::uint32_t i = 0; i < ways_; ++i) {
    if (base[i].valid && base[i].tag == line) {
      return true;
    }
  }
  return false;
}

std::optional<Eviction> SetAssocCache::insert(Addr addr, bool write) {
  const Addr line = addr / lineSize_;
  Way* base = setBase(setIndex(line));
  // If already present (e.g. racing fills), just refresh recency/dirty.
  for (std::uint32_t i = 0; i < ways_; ++i) {
    if (base[i].valid && base[i].tag == line) {
      Way hit = base[i];
      hit.dirty = hit.dirty || write;
      std::rotate(base, base + i, base + i + 1);
      base[0] = hit;
      return std::nullopt;
    }
  }
  std::optional<Eviction> evicted;
  const Way& victim = base[ways_ - 1];
  if (victim.valid) {
    evicted = Eviction{victim.tag * lineSize_, victim.dirty};
    ++stats_.evictions;
    if (victim.dirty) {
      ++stats_.dirtyEvictions;
    }
  }
  std::rotate(base, base + ways_ - 1, base + ways_);  // LRU slot to front
  base[0] = Way{line, true, write};
  return evicted;
}

bool SetAssocCache::markDirty(Addr addr) {
  const Addr line = addr / lineSize_;
  Way* base = setBase(setIndex(line));
  for (std::uint32_t i = 0; i < ways_; ++i) {
    if (base[i].valid && base[i].tag == line) {
      base[i].dirty = true;
      return true;
    }
  }
  return false;
}

SetAssocCache::InvalidateResult SetAssocCache::invalidate(Addr addr) {
  const Addr line = addr / lineSize_;
  Way* base = setBase(setIndex(line));
  for (std::uint32_t i = 0; i < ways_; ++i) {
    if (base[i].valid && base[i].tag == line) {
      InvalidateResult result{true, base[i].dirty};
      // Shift the remaining ways left; free slot becomes LRU.
      std::rotate(base + i, base + i + 1, base + ways_);
      base[ways_ - 1] = Way{};
      ++stats_.invalidations;
      return result;
    }
  }
  return {};
}

void SetAssocCache::flush() {
  std::fill(ways_store_.begin(), ways_store_.end(), Way{});
}

}  // namespace occm::cache
