#include "cache/set_assoc_cache.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace occm::cache {

namespace {

/// log2 of a power of two.
unsigned log2Exact(Bytes v) noexcept {
  unsigned s = 0;
  while ((v & 1) == 0) {
    v >>= 1;
    ++s;
  }
  return s;
}

}  // namespace

SetAssocCache::SetAssocCache(Bytes size, Bytes lineSize, std::uint32_t ways)
    : lineSize_(lineSize), ways_(ways) {
  OCCM_REQUIRE_MSG(lineSize > 0 && (lineSize & (lineSize - 1)) == 0,
                   "line size must be a power of two");
  OCCM_REQUIRE_MSG(size % lineSize == 0, "size must be a line multiple");
  OCCM_REQUIRE_MSG(ways >= 1, "need at least one way");
  OCCM_REQUIRE_MSG(ways <= 32, "dirty bitmask supports up to 32 ways");
  const Bytes lines = size / lineSize;
  OCCM_REQUIRE_MSG(lines % ways == 0, "lines must divide into whole sets");
  lineShift_ = log2Exact(lineSize);
  sets_ = static_cast<std::size_t>(lines / ways);
  setDiv_ = FastDiv(sets_);
  lanes_ = (ways_ + 7) / 8;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    realMsb_[w >> 3] |= std::uint64_t{0x80} << ((w & 7) * 8);
  }
  tags_.assign(sets_ * ways_, kNoLine);
  dirty_.assign(sets_, 0);
  ranks_.resize(sets_ * lanes_);
  flush();
}

void SetAssocCache::flush() {
  std::fill(tags_.begin(), tags_.end(), kNoLine);
  std::fill(dirty_.begin(), dirty_.end(), 0u);
  // Identity rank permutation: way w starts at rank w (all ways invalid,
  // so inserts consume ways from the highest way downwards, exactly like
  // the previous MRU-list layout filled its back slots first). Padding
  // bytes keep their way index too — always above every real rank, inert
  // under the realMsb_-masked SWAR updates.
  for (std::size_t set = 0; set < sets_; ++set) {
    for (std::uint32_t j = 0; j < lanes_; ++j) {
      ranks_[set * lanes_ + j] =
          kLane01 * 8 * j + 0x0706050403020100ULL;
    }
  }
}

}  // namespace occm::cache
