#pragma once

// Offline analysis of reference streams, used to characterise and test the
// workload generators: reference counts, working-set size (distinct cache
// lines), stride distribution and shared-data fraction.

#include <cstdint>
#include <map>

#include "common/types.hpp"
#include "trace/ref_stream.hpp"

namespace occm::trace {

struct StreamStats {
  std::uint64_t refs = 0;
  std::uint64_t writes = 0;
  std::uint64_t instructions = 0;
  Cycles workCycles = 0;
  /// Number of distinct cache lines touched (the working set in lines).
  std::uint64_t distinctLines = 0;
  /// Working set in bytes (distinctLines * lineSize).
  Bytes workingSetBytes = 0;
  /// References into the shared area (AddressSpace::isShared).
  std::uint64_t sharedRefs = 0;
  /// Histogram of successive-address deltas in bytes, capped to the most
  /// frequent 32 strides.
  std::map<std::int64_t, std::uint64_t> strides;

  [[nodiscard]] double writeFraction() const noexcept {
    return refs == 0 ? 0.0 : static_cast<double>(writes) /
                                 static_cast<double>(refs);
  }
  [[nodiscard]] double sharedFraction() const noexcept {
    return refs == 0 ? 0.0 : static_cast<double>(sharedRefs) /
                                 static_cast<double>(refs);
  }
  /// Mean work cycles between consecutive memory references.
  [[nodiscard]] double workPerRef() const noexcept {
    return refs == 0 ? 0.0 : static_cast<double>(workCycles) /
                                 static_cast<double>(refs);
  }
};

/// Drains up to `maxRefs` operations from the stream and summarises them.
/// The stream is left wherever draining stopped (call reset() to reuse).
[[nodiscard]] StreamStats analyzeStream(RefStream& stream,
                                        std::uint64_t maxRefs,
                                        Bytes lineSize = 64);

}  // namespace occm::trace
