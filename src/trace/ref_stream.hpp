#pragma once

// Memory-reference streams: the interface between workload kernels and the
// machine simulator.
//
// A thread's execution is a sequence of operations; each operation retires
// `work` cycles of compute (instructions whose operands are in registers or
// L1) and then performs one memory access. This compact encoding keeps the
// simulator's hot path free of variant dispatch.
//
// Thread safety: a RefStream is a mutable cursor — next()/reset() are not
// synchronized. Streams belong to exactly one simulation; concurrent
// simulations each get their own freshly built set (see workloads::).

#include <cstdint>
#include <memory>

#include "common/types.hpp"

namespace occm::trace {

/// One simulated operation: `work` compute cycles, then access `addr`.
struct Op {
  Cycles work = 0;               ///< compute cycles before the access
  Addr addr = 0;                 ///< byte address accessed
  bool write = false;
  /// True for accesses a hardware prefetcher covers (sequential or
  /// constant-stride streams): the core overlaps their miss latency up to
  /// the machine's prefetch MLP. False for dependent accesses (gathers,
  /// pointer chasing), which stall the core for the full miss latency.
  bool prefetchable = false;
  std::uint32_t instructions = 1;  ///< instructions retired by this op
};

/// Pull-interface for a thread's operation stream.
class RefStream {
 public:
  virtual ~RefStream() = default;

  /// Produces the next operation. Returns false when the thread finished.
  virtual bool next(Op& op) = 0;

  /// Restarts the stream from the beginning (same seed, same addresses).
  virtual void reset() = 0;
};

using RefStreamPtr = std::unique_ptr<RefStream>;

}  // namespace occm::trace
