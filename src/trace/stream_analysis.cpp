#include "trace/stream_analysis.hpp"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "common/error.hpp"
#include "trace/address_space.hpp"

namespace occm::trace {

StreamStats analyzeStream(RefStream& stream, std::uint64_t maxRefs,
                          Bytes lineSize) {
  OCCM_REQUIRE(lineSize > 0 && (lineSize & (lineSize - 1)) == 0);
  StreamStats stats;
  std::unordered_set<Addr> lines;
  std::map<std::int64_t, std::uint64_t> strides;
  Op op;
  bool havePrev = false;
  Addr prev = 0;
  while (stats.refs < maxRefs && stream.next(op)) {
    ++stats.refs;
    stats.writes += op.write ? 1u : 0u;
    stats.instructions += op.instructions;
    stats.workCycles += op.work;
    stats.sharedRefs += AddressSpace::isShared(op.addr) ? 1u : 0u;
    lines.insert(op.addr / lineSize);
    if (havePrev) {
      ++strides[static_cast<std::int64_t>(op.addr) -
                static_cast<std::int64_t>(prev)];
    }
    prev = op.addr;
    havePrev = true;
  }
  stats.distinctLines = lines.size();
  stats.workingSetBytes = stats.distinctLines * lineSize;

  // Keep only the 32 most frequent strides so the result stays small.
  std::vector<std::pair<std::int64_t, std::uint64_t>> sorted(strides.begin(),
                                                             strides.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (sorted.size() > 32) {
    sorted.resize(32);
  }
  for (const auto& [stride, count] : sorted) {
    stats.strides.emplace(stride, count);
  }
  return stats;
}

}  // namespace occm::trace
