#pragma once

// Simulated flat address-space layout with an O(1) shared-vs-private test.
//
// Shared data (matrices, grids, key arrays, shared accumulators) is
// allocated below kPrivateBase; per-thread private data (stack-like
// scratch, RNG state, local buffers) lives in a disjoint 4 GiB window per
// thread above it. Because threads are pinned for the lifetime of a run,
// only shared lines can ever be cached by more than one core, so the
// coherence directory (cache/coherence.hpp) only needs to track addresses
// with isShared() == true.

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace occm::trace {

class AddressSpace {
 public:
  /// First address of the private area; everything below is shared.
  static constexpr Addr kPrivateBase = Addr{1} << 40;
  /// Size of each thread's private window.
  static constexpr Addr kPrivateWindow = Addr{1} << 32;

  /// Allocates `size` bytes of shared memory aligned to `align`.
  [[nodiscard]] Addr allocShared(Bytes size, Bytes align = 64) {
    sharedTop_ = alignUp(sharedTop_, align);
    const Addr base = sharedTop_;
    sharedTop_ += size;
    OCCM_REQUIRE_MSG(sharedTop_ <= kPrivateBase, "shared area exhausted");
    return base;
  }

  /// Allocates `size` bytes in `thread`'s private window.
  [[nodiscard]] Addr allocPrivate(ThreadId thread, Bytes size,
                                  Bytes align = 64) {
    OCCM_REQUIRE(thread >= 0);
    const auto t = static_cast<std::size_t>(thread);
    if (privateTops_.size() <= t) {
      privateTops_.resize(t + 1, 0);
    }
    privateTops_[t] = alignUp(privateTops_[t], align);
    const Addr offset = privateTops_[t];
    privateTops_[t] += size;
    OCCM_REQUIRE_MSG(privateTops_[t] <= kPrivateWindow,
                     "private window exhausted");
    return kPrivateBase + static_cast<Addr>(t) * kPrivateWindow + offset;
  }

  /// True when the address belongs to the shared area.
  [[nodiscard]] static constexpr bool isShared(Addr addr) noexcept {
    return addr < kPrivateBase;
  }

  /// Owning thread of a private address.
  [[nodiscard]] static ThreadId privateOwner(Addr addr) {
    OCCM_REQUIRE(!isShared(addr));
    return static_cast<ThreadId>((addr - kPrivateBase) / kPrivateWindow);
  }

  [[nodiscard]] Bytes sharedBytes() const noexcept { return sharedTop_; }

 private:
  [[nodiscard]] static Addr alignUp(Addr value, Bytes align) {
    OCCM_REQUIRE_MSG(align > 0 && (align & (align - 1)) == 0,
                     "alignment must be a power of two");
    return (value + align - 1) & ~(align - 1);
  }

  Addr sharedTop_ = 0;
  std::vector<Addr> privateTops_;
};

}  // namespace occm::trace
